// KKT verification for candidate optima of a ConvexProblem.
//
// For convex f with linear constraints, x* is optimal iff it is feasible and
// there exist multipliers lambda >= 0 on the active constraints with
//   grad f(x*) + sum_j lambda_j a_j = 0
// (bounds are treated as constraints a = +-e_i). We recover least-squares
// multipliers over the active set and report the stationarity residual, so
// tests can assert optimality independently of which solver produced x*.
#pragma once

#include <string>
#include <vector>

#include "opt/problem.hpp"

namespace ripple::opt {

struct KktReport {
  double primal_infeasibility = 0.0;  ///< max constraint violation at x
  double stationarity_residual = 0.0; ///< ||grad f + A_act^T lambda||_inf
  double min_multiplier = 0.0;        ///< most negative multiplier (>= -tol ok)
  std::vector<std::string> active_labels;

  /// True when all three residuals are within `tolerance`.
  bool satisfied(double tolerance = 1e-6) const {
    return primal_infeasibility <= tolerance &&
           stationarity_residual <= tolerance &&
           min_multiplier >= -tolerance;
  }

  /// Like satisfied() but with one tolerance per residual: primal
  /// feasibility, stationarity, and multiplier sign live on different
  /// scales (constraint slacks are in cycles, gradients in 1/cycles), so a
  /// certificate-grade check — e.g. accepting a warm-start candidate as the
  /// exact optimum — needs them decoupled.
  bool certified(double primal_tolerance, double stationarity_tolerance,
                 double multiplier_tolerance) const {
    return primal_infeasibility <= primal_tolerance &&
           stationarity_residual <= stationarity_tolerance &&
           min_multiplier >= -multiplier_tolerance;
  }
};

/// Evaluate KKT conditions at `x`. `active_tolerance` is the slack threshold
/// below which a constraint counts as active.
KktReport check_kkt(const ConvexProblem& problem, const linalg::Vector& x,
                    double active_tolerance = 1e-6);

}  // namespace ripple::opt
