#include "opt/scalar.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ripple::opt {

ScalarResult golden_section_minimize(const ScalarFn& f, double lo, double hi,
                                     double x_tolerance, int max_evaluations) {
  RIPPLE_REQUIRE(hi >= lo, "interval must be ordered");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  ScalarResult result;

  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  result.evaluations = 2;

  while (b - a > x_tolerance && result.evaluations < max_evaluations) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    ++result.evaluations;
  }
  if (f1 <= f2) {
    result.x = x1;
    result.value = f1;
  } else {
    result.x = x2;
    result.value = f2;
  }
  result.converged = (b - a) <= x_tolerance;
  return result;
}

ScalarResult brent_minimize(const ScalarFn& f, double lo, double hi,
                            double x_tolerance, int max_iterations) {
  RIPPLE_REQUIRE(hi >= lo, "interval must be ordered");
  constexpr double kGolden = 0.3819660112501051;  // 2 - phi
  ScalarResult result;

  double a = lo;
  double b = hi;
  double x = a + kGolden * (b - a);
  double w = x;
  double v = x;
  double fx = f(x);
  double fw = fx;
  double fv = fx;
  result.evaluations = 1;
  double d = 0.0;
  double e = 0.0;

  for (int iter = 0; iter < max_iterations; ++iter) {
    const double m = 0.5 * (a + b);
    const double tol = x_tolerance * std::fabs(x) + 1e-15;
    const double tol2 = 2.0 * tol;
    if (std::fabs(x - m) <= tol2 - 0.5 * (b - a)) {
      result.converged = true;
      break;
    }
    bool use_golden = true;
    if (std::fabs(e) > tol) {
      // Fit a parabola through (v,fv), (w,fw), (x,fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) {
          d = (x < m) ? tol : -tol;
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < m) ? b - x : a - x;
      d = kGolden * e;
    }
    const double u = (std::fabs(d) >= tol) ? x + d : x + ((d > 0.0) ? tol : -tol);
    const double fu = f(u);
    ++result.evaluations;
    if (fu <= fx) {
      if (u < x) b = x;
      else a = x;
      v = w; fv = fw;
      w = x; fw = fx;
      x = u; fx = fu;
    } else {
      if (u < x) a = u;
      else b = u;
      if (fu <= fw || w == x) {
        v = w; fv = fw;
        w = u; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u; fv = fu;
      }
    }
  }
  result.x = x;
  result.value = fx;
  return result;
}

}  // namespace ripple::opt
