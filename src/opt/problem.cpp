#include "opt/problem.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ripple::opt {

double ConvexProblem::infeasibility(const linalg::Vector& x) const {
  return std::max(0.0, -min_slack(x));
}

bool ConvexProblem::is_feasible(const linalg::Vector& x, double tolerance) const {
  return min_slack(x) >= -tolerance;
}

double ConvexProblem::min_slack(const linalg::Vector& x) const {
  RIPPLE_REQUIRE(x.size() == dimension(), "point dimension mismatch");
  double smallest = kInf;
  for (const LinearInequality& constraint : constraints) {
    smallest = std::min(smallest, constraint.slack(x));
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (lower_bounds[i] > -kInf) smallest = std::min(smallest, x[i] - lower_bounds[i]);
    if (upper_bounds[i] < kInf) smallest = std::min(smallest, upper_bounds[i] - x[i]);
  }
  return smallest;
}

}  // namespace ripple::opt
