// Log-barrier interior-point solver for ConvexProblem.
//
// Standard path-following scheme: for decreasing barrier weight mu, minimize
//   f(x) - mu * [ sum_j log(slack_j(x)) + sum_i log(x_i - l_i) + log(u_i - x_i) ]
// by damped Newton with backtracking line search that maintains strict
// feasibility. The duality-gap proxy m*mu bounds suboptimality for convex f,
// so the final mu determines solution accuracy.
//
// This is the repo's stand-in for the paper's BONMIN continuous solves.
#pragma once

#include "opt/problem.hpp"
#include "util/result.hpp"

namespace ripple::opt {

struct BarrierOptions {
  double initial_mu = 1.0;
  double mu_shrink = 0.1;          ///< mu multiplier per outer iteration
  double gap_tolerance = 1e-9;     ///< stop when m * mu < gap_tolerance
  double newton_tolerance = 1e-10; ///< inner stop on Newton decrement^2 / 2
  int max_outer_iterations = 60;
  int max_newton_iterations = 80;
  double armijo_c = 1e-4;
  double backtrack_ratio = 0.5;
};

struct BarrierSolution {
  linalg::Vector x;
  double objective = 0.0;
  int outer_iterations = 0;
  int newton_iterations = 0;
  double final_mu = 0.0;
};

/// Solve starting from `interior_start`, which must be strictly feasible
/// (min_slack > 0). Failure codes:
///   "not_interior"   — the start point is not strictly feasible
///   "no_convergence" — iteration budget exhausted
///   "singular"       — Newton system unsolvable even with regularization
util::Result<BarrierSolution> barrier_minimize(const ConvexProblem& problem,
                                               const linalg::Vector& interior_start,
                                               const BarrierOptions& options = {});

}  // namespace ripple::opt
