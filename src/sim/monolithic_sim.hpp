// Discrete-event simulation of the monolithic batch strategy (paper
// Section 5): accumulate blocks of M inputs, then run the whole
// throughput-oriented pipeline over each block, one block at a time.
//
// Per-item gain paths are sampled individually, so block service times are
// data dependent: stage i of a block with n_i actual items costs
// ceil(n_i / v) * t_i. Blocks queue FCFS for the pipeline; every output of a
// block exits when its block finishes the final stage.
//
// On RIPPLE_OBS builds with recording enabled, each processed block emits a
// "block" trace span (with a "block_items" counter sample) on a dedicated
// track, plus a "deadline_miss" instant per missed input — blocks execute
// sequentially, so the spans never overlap (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>

#include "arrivals/arrival_process.hpp"
#include "sdf/pipeline.hpp"
#include "sim/metrics.hpp"
#include "util/types.hpp"

namespace ripple::sim {

struct MonolithicSimConfig {
  std::int64_t block_size = 1;    ///< M, inputs accumulated per block
  ItemCount input_count = 50000;  ///< the paper's stream length
  Cycles deadline = 0.0;          ///< D, for per-input miss accounting
  std::uint64_t seed = 0;         ///< gain-sampling RNG stream
  /// Process a final short block when the stream ends mid-accumulation.
  bool flush_final_partial_block = true;
};

TrialMetrics simulate_monolithic(const sdf::PipelineSpec& pipeline,
                                 arrivals::ArrivalProcess& arrival_process,
                                 const MonolithicSimConfig& config);

/// Buffer-reusing variant: writes the trial into `out`, which is reset (node
/// counters, histogram bins) but keeps its allocations. Produces results
/// identical to simulate_monolithic.
void simulate_monolithic_into(const sdf::PipelineSpec& pipeline,
                              arrivals::ArrivalProcess& arrival_process,
                              const MonolithicSimConfig& config,
                              TrialMetrics& out);

}  // namespace ripple::sim
