#include "sim/metrics.hpp"

namespace ripple::sim {

double TrialMetrics::active_fraction() const {
  if (makespan <= 0.0 || nodes.empty()) return 0.0;
  Cycles active = 0.0;
  for (const NodeMetrics& node : nodes) active += node.active_time;
  const std::size_t actors = sharing_actors == 0 ? nodes.size() : sharing_actors;
  return active / (static_cast<double>(actors) * makespan);
}

double TrialMetrics::overall_occupancy() const {
  std::uint64_t firings = 0;
  std::uint64_t items = 0;
  for (const NodeMetrics& node : nodes) {
    firings += node.firings;
    items += node.items_consumed;
  }
  if (firings == 0 || vector_width == 0) return 0.0;
  return static_cast<double>(items) /
         (static_cast<double>(firings) * static_cast<double>(vector_width));
}

}  // namespace ripple::sim
