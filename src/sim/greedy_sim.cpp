#include "sim/greedy_sim.hpp"

#include <algorithm>

#include "dist/rng.hpp"
#include "util/assert.hpp"
#include "util/ring_buffer.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::sim {

namespace {
using RootId = std::uint32_t;
}

TrialMetrics simulate_greedy_throughput(const sdf::PipelineSpec& pipeline,
                                        arrivals::ArrivalProcess& arrival_process,
                                        const GreedySimConfig& config) {
  const std::size_t n = pipeline.size();
  RIPPLE_REQUIRE(config.input_count > 0, "need at least one input");
  RIPPLE_REQUIRE(config.min_batch >= 1, "min_batch must be at least 1");

  dist::Xoshiro256 rng(config.seed);
  const std::uint32_t v = pipeline.simd_width();
  const double exclusive_scale = 1.0 / static_cast<double>(n);

  TrialMetrics metrics;
  metrics.nodes.resize(n);
  metrics.vector_width = v;
  metrics.sharing_actors = 1;  // one node at a time owns the whole processor
  metrics.arm_latency_histogram(config.deadline);

  // Flat caches for the firing loop (see enforced_sim.cpp).
  std::vector<Cycles> service_time(n);
  std::vector<const dist::GainDistribution*> gain(n, nullptr);
  for (NodeIndex i = 0; i < n; ++i) {
    service_time[i] = pipeline.service_time(i);
    if (i + 1 < n) gain[i] = pipeline.node(i).gain.get();
  }

  std::vector<util::RingBuffer<RootId>> queues(n);
  for (auto& queue : queues) queue.reserve(4 * v);
  std::vector<dist::OutputCount> gain_draws(v);

  std::vector<Cycles> root_arrival;
  root_arrival.reserve(config.input_count);
  std::vector<bool> root_missed(config.input_count, false);

  Cycles now = 0.0;
  Cycles next_arrival = arrival_process.next_interarrival(rng);
  ItemCount generated = 0;

  auto drain_arrivals_until = [&](Cycles time) {
    while (generated < config.input_count && next_arrival <= time + 1e-12) {
      const RootId root = static_cast<RootId>(root_arrival.size());
      root_arrival.push_back(next_arrival);
      ++metrics.inputs_arrived;
      queues[0].push_back(root);
      metrics.nodes[0].max_queue_length = std::max<std::uint64_t>(
          metrics.nodes[0].max_queue_length, queues[0].size());
      ++generated;
      if (generated < config.input_count) {
        next_arrival += arrival_process.next_interarrival(rng);
      }
    }
  };

#if RIPPLE_OBS
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    for (NodeIndex i = 0; i < n; ++i) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(i),
          pipeline.node(i).name);
    }
  }
#endif

  std::uint64_t firings = 0;
  while (firings < config.max_firings) {
    drain_arrivals_until(now);
    const bool arrivals_done = generated >= config.input_count;

    // Pick the fullest queue; ties go to the deeper stage (drives items
    // toward the sink). Respect min_batch until the stream has ended.
    std::size_t best = n;  // sentinel: nothing eligible
    std::size_t best_size = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t size = queues[i].size();
      if (size == 0) continue;
      if (!arrivals_done && size < config.min_batch) continue;
      if (size >= best_size) {  // >= : deeper stage wins ties
        best_size = size;
        best = i;
      }
    }

    if (best == n) {
      // Nothing eligible now: idle to the next arrival, or finish.
      bool any_queued = false;
      for (const auto& queue : queues) any_queued |= !queue.empty();
      if (arrivals_done && !any_queued) break;
      if (arrivals_done && any_queued) {
        // Only possible when min_batch gating blocked everything mid-stream;
        // post-stream we ignore the gate, so this cannot occur. Defensive:
        break;
      }
      now = std::max(now, next_arrival);
      continue;
    }

    // Fire node `best` exclusively.
    ++firings;
    NodeMetrics& node = metrics.nodes[best];
    auto& queue = queues[best];
    const std::uint32_t consumed =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(queue.size(), v));
    ++node.firings;
    node.items_consumed += consumed;
    const Cycles duration = service_time[best] * exclusive_scale;
    node.active_time += duration;
#if RIPPLE_OBS
    if (trace.active()) {
      trace.counter(obs::Domain::kSim, static_cast<std::uint32_t>(best),
                    "queue_depth", now, static_cast<double>(queue.size()));
      trace.begin(obs::Domain::kSim, static_cast<std::uint32_t>(best), "fire",
                  now);
    }
#endif
    now += duration;

    const bool is_sink = (best + 1 == n);
    if (is_sink) {
      for (std::uint32_t k = 0; k < consumed; ++k) {
        const RootId root = queue.pop_front();
        ++metrics.sink_outputs;
        const Cycles latency = now - root_arrival[root];
        metrics.record_latency(latency);
        if (config.deadline > 0.0 &&
            latency > config.deadline * (1.0 + 1e-12) && !root_missed[root]) {
          root_missed[root] = true;
          ++metrics.inputs_missed;
#if RIPPLE_OBS
          if (trace.active()) {
            trace.instant(obs::Domain::kSim,
                          static_cast<std::uint32_t>(best), "deadline_miss",
                          now, config.deadline - latency);
          }
#endif
        }
        metrics.makespan = std::max(metrics.makespan, now);
      }
    } else {
      // One batched virtual call per firing; RNG draw order matches the
      // per-item reference exactly.
      gain[best]->sample_n(rng, gain_draws.data(), consumed);
      auto& next_queue = queues[best + 1];
      std::uint64_t produced = 0;
      for (std::uint32_t k = 0; k < consumed; ++k) {
        const RootId root = queue.pop_front();
        const dist::OutputCount outputs = gain_draws[k];
        produced += outputs;
        for (dist::OutputCount o = 0; o < outputs; ++o) {
          next_queue.push_back(root);
        }
      }
      node.items_produced += produced;
      metrics.nodes[best + 1].max_queue_length = std::max<std::uint64_t>(
          metrics.nodes[best + 1].max_queue_length, next_queue.size());
    }
#if RIPPLE_OBS
    if (trace.active()) {
      trace.end(obs::Domain::kSim, static_cast<std::uint32_t>(best), "fire",
                now);
    }
#endif
  }
  RIPPLE_REQUIRE(firings < config.max_firings,
                 "firing budget exhausted (arrival rate beyond capacity?)");

  metrics.events_processed = firings;
  metrics.inputs_on_time = metrics.inputs_arrived - metrics.inputs_missed;
  if (metrics.makespan <= 0.0 && !root_arrival.empty()) {
    metrics.makespan = root_arrival.back();
  }
  return metrics;
}

}  // namespace ripple::sim
