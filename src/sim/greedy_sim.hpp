// Greedy throughput-oriented scheduling: the prior-work baseline the paper
// positions itself against (MERCATOR-style mappings, its refs [9, 21, 24]).
//
// A throughput scheduler has no notion of deadlines or enforced waits: the
// single processor repeatedly runs whichever node currently has the most
// queued work (preferring full SIMD vectors), and idles only when every
// queue is empty. Each firing takes the node's *exclusive* service time
// t_i / N (one node at a time owns the whole processor — this is how a
// throughput-oriented monolithic implementation actually executes).
//
// Against the paper's strategies this baseline shows why latency needs
// managing: occupancy and throughput are excellent, the processor is active
// only while work exists, but per-item latency is uncontrolled — items can
// sit in queues for as long as the greedy policy keeps harvesting fuller
// vectors elsewhere, and nothing bounds the time to drain a burst.
//
// On RIPPLE_OBS builds with recording enabled, each firing emits a "fire"
// trace span and a "queue_depth" counter sample on the chosen node's track,
// plus a "deadline_miss" instant per late sink output; firings are globally
// exclusive, so spans never overlap (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>

#include "arrivals/arrival_process.hpp"
#include "sdf/pipeline.hpp"
#include "sim/metrics.hpp"
#include "util/types.hpp"

namespace ripple::sim {

struct GreedySimConfig {
  ItemCount input_count = 20000;
  Cycles deadline = 0.0;  ///< only for miss accounting; never scheduled for
  std::uint64_t seed = 0;

  /// Policy knob: fire only when some queue holds at least this many items,
  /// unless the stream has ended (drain). 1 = fully eager; v = full vectors
  /// only. Higher thresholds raise occupancy and latency together.
  std::uint32_t min_batch = 1;

  std::uint64_t max_firings = 500'000'000;  ///< runaway guard
};

/// Run one trial of the greedy throughput schedule.
TrialMetrics simulate_greedy_throughput(const sdf::PipelineSpec& pipeline,
                                        arrivals::ArrivalProcess& arrival_process,
                                        const GreedySimConfig& config);

}  // namespace ripple::sim
