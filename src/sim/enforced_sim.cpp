#include "sim/enforced_sim.hpp"

#include <algorithm>
#include <deque>

#include "dist/rng.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"

namespace ripple::sim {

namespace {

/// Root-input identifier carried by every item so exits can be attributed.
using RootId = std::uint32_t;

/// Same-timestamp ordering: deliveries become visible before new arrivals,
/// and both before the firing that may consume them.
enum EventPriority : int {
  kPriorityFireEnd = 0,
  kPriorityArrival = 1,
  kPriorityFireStart = 2,
};

struct EventPayload {
  enum class Kind : std::uint8_t { kFireEnd, kArrival, kFireStart };
  Kind kind;
  NodeIndex node = 0;  // unused for arrivals
};

}  // namespace

std::vector<Cycles> aligned_phase_offsets(const sdf::PipelineSpec& pipeline) {
  std::vector<Cycles> offsets(pipeline.size());
  Cycles accumulated = 0.0;
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    offsets[i] = accumulated;
    // +epsilon so node i+1's firing strictly follows node i's delivery even
    // under floating-point ties.
    accumulated += pipeline.service_time(i) + 1e-6;
  }
  return offsets;
}

TrialMetrics simulate_enforced_waits(const sdf::PipelineSpec& pipeline,
                                     const std::vector<Cycles>& firing_intervals,
                                     arrivals::ArrivalProcess& arrival_process,
                                     const EnforcedSimConfig& config) {
  const std::size_t n = pipeline.size();
  RIPPLE_REQUIRE(firing_intervals.size() == n, "one firing interval per node");
  for (NodeIndex i = 0; i < n; ++i) {
    RIPPLE_REQUIRE(firing_intervals[i] >= pipeline.service_time(i) - 1e-9,
                   "firing interval below service time at node " +
                       std::to_string(i));
  }
  RIPPLE_REQUIRE(config.input_count > 0, "need at least one input");

  dist::Xoshiro256 rng(config.seed);
  const std::uint32_t v = pipeline.simd_width();

  TrialMetrics metrics;
  metrics.nodes.resize(n);
  metrics.vector_width = v;
  metrics.sharing_actors = n;  // each node is active or waiting all run long
  metrics.arm_latency_histogram(config.deadline);

  std::vector<std::deque<RootId>> queues(n);
  // Outputs of the in-progress firing of node i, delivered at its FireEnd.
  std::vector<std::vector<RootId>> in_flight(n);

  std::vector<Cycles> root_arrival;
  root_arrival.reserve(config.input_count);
  std::vector<bool> root_missed(config.input_count, false);

  // Items currently inside the pipeline (queued or in flight); the trial ends
  // when the stream is exhausted and this count reaches zero.
  std::uint64_t live_items = 0;
  bool arrivals_done = false;

  EventQueue<EventPayload> events;

  // First arrival after one inter-arrival gap; every node starts its cadence
  // with a firing at its phase offset (t = 0 by default).
  RIPPLE_REQUIRE(config.initial_offsets.empty() ||
                     config.initial_offsets.size() == n,
                 "one phase offset per node (or none)");
  events.push(arrival_process.next_interarrival(rng), kPriorityArrival,
              {EventPayload::Kind::kArrival, 0});
  for (NodeIndex i = 0; i < n; ++i) {
    const Cycles offset =
        config.initial_offsets.empty() ? 0.0 : config.initial_offsets[i];
    RIPPLE_REQUIRE(offset >= 0.0, "phase offsets must be non-negative");
    events.push(offset, kPriorityFireStart, {EventPayload::Kind::kFireStart, i});
  }

  std::uint64_t processed_events = 0;
  while (!events.empty() && processed_events < config.max_events) {
    const auto event = events.pop();
    ++processed_events;
    const Cycles now = event.time;

    switch (event.payload.kind) {
      case EventPayload::Kind::kArrival: {
        const RootId root = static_cast<RootId>(root_arrival.size());
        root_arrival.push_back(now);
        ++metrics.inputs_arrived;
        queues[0].push_back(root);
        ++live_items;
        metrics.nodes[0].max_queue_length =
            std::max<std::uint64_t>(metrics.nodes[0].max_queue_length,
                                    queues[0].size());
        if (root_arrival.size() < config.input_count) {
          events.push(now + arrival_process.next_interarrival(rng),
                      kPriorityArrival, {EventPayload::Kind::kArrival, 0});
        } else {
          arrivals_done = true;
        }
        break;
      }

      case EventPayload::Kind::kFireStart: {
        const NodeIndex i = event.payload.node;
        NodeMetrics& node = metrics.nodes[i];
        auto& queue = queues[i];
        const std::uint32_t consumed =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(queue.size(), v));

        if (consumed > 0 || config.charge_empty_firings) {
          ++node.firings;
          if (consumed == 0) ++node.empty_firings;
          node.active_time += pipeline.service_time(i);
        }

        if (consumed > 0) {
          node.items_consumed += consumed;
          auto& bundle = in_flight[i];
          const bool is_sink = (i + 1 == n);
          for (std::uint32_t k = 0; k < consumed; ++k) {
            const RootId root = queue.front();
            queue.pop_front();
            if (is_sink) {
              bundle.push_back(root);  // exits at fire end
            } else {
              const dist::OutputCount outputs =
                  pipeline.node(i).gain->sample(rng);
              node.items_produced += outputs;
              for (dist::OutputCount o = 0; o < outputs; ++o) {
                bundle.push_back(root);
              }
              // The consumed item is replaced by its outputs.
              live_items += outputs;
            }
          }
          if (!is_sink) live_items -= consumed;
          events.push(now + pipeline.service_time(i), kPriorityFireEnd,
                      {EventPayload::Kind::kFireEnd, i});
        }

        // Next firing on the fixed cadence — but once the stream has drained,
        // let idle nodes stop so the event loop terminates.
        if (!(arrivals_done && live_items == 0)) {
          events.push(now + firing_intervals[i], kPriorityFireStart,
                      {EventPayload::Kind::kFireStart, i});
        }
        break;
      }

      case EventPayload::Kind::kFireEnd: {
        const NodeIndex i = event.payload.node;
        auto& bundle = in_flight[i];
        const bool is_sink = (i + 1 == n);
        if (is_sink) {
          for (const RootId root : bundle) {
            ++metrics.sink_outputs;
            const Cycles latency = now - root_arrival[root];
            metrics.record_latency(latency);
            if (config.deadline > 0.0 && latency > config.deadline * (1.0 + 1e-12)) {
              if (!root_missed[root]) {
                root_missed[root] = true;
                ++metrics.inputs_missed;
              }
            }
            metrics.makespan = std::max(metrics.makespan, now);
          }
          live_items -= bundle.size();
        } else {
          auto& next_queue = queues[i + 1];
          for (const RootId root : bundle) next_queue.push_back(root);
          metrics.nodes[i + 1].max_queue_length =
              std::max<std::uint64_t>(metrics.nodes[i + 1].max_queue_length,
                                      next_queue.size());
        }
        bundle.clear();
        break;
      }
    }
  }

  RIPPLE_REQUIRE(processed_events < config.max_events,
                 "event budget exhausted (unstable schedule?)");
  metrics.inputs_on_time = metrics.inputs_arrived - metrics.inputs_missed;
  if (metrics.makespan <= 0.0 && !root_arrival.empty()) {
    metrics.makespan = root_arrival.back();
  }
  return metrics;
}

}  // namespace ripple::sim
