#include "sim/enforced_sim.hpp"

#include <algorithm>

#include "dist/rng.hpp"
#include "sim/event_sources.hpp"
#include "util/assert.hpp"
#include "util/ring_buffer.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::sim {

namespace {

/// Root-input identifier carried by every item so exits can be attributed.
using RootId = std::uint32_t;

/// Same-timestamp ordering: deliveries become visible before new arrivals,
/// and both before the firing that may consume them.
enum EventPriority : int {
  kPriorityFireEnd = 0,
  kPriorityArrival = 1,
  kPriorityFireStart = 2,
};

}  // namespace

std::vector<Cycles> aligned_phase_offsets(const sdf::PipelineSpec& pipeline) {
  std::vector<Cycles> offsets(pipeline.size());
  Cycles accumulated = 0.0;
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    offsets[i] = accumulated;
    // +epsilon so node i+1's firing strictly follows node i's delivery even
    // under floating-point ties.
    accumulated += pipeline.service_time(i) + 1e-6;
  }
  return offsets;
}

// The event structure is fixed and tiny — N periodic fire-start streams, one
// arrival stream, and at most one in-flight fire-end per node — so instead of
// a general heap the loop runs an IndexedScheduler over 2N+1 sources:
//   source 0         = the arrival stream           (priority kPriorityArrival)
//   source 1 + i     = node i's fire-start cadence  (priority kPriorityFireStart)
//   source 1 + N + i = node i's in-flight fire-end  (priority kPriorityFireEnd)
// Every schedule() consumes one global sequence number exactly like the
// reference EventQueue::push calls did (same call sites, same order), so the
// event order — including all same-timestamp tie-breaks — is bit-for-bit
// identical to the heap-based implementation (pinned by
// tests/test_sim_golden.cpp).
void simulate_enforced_waits_into(const sdf::PipelineSpec& pipeline,
                                  const std::vector<Cycles>& firing_intervals,
                                  arrivals::ArrivalProcess& arrival_process,
                                  const EnforcedSimConfig& config,
                                  TrialMetrics& metrics) {
  const std::size_t n = pipeline.size();
  RIPPLE_REQUIRE(firing_intervals.size() == n, "one firing interval per node");
  for (NodeIndex i = 0; i < n; ++i) {
    RIPPLE_REQUIRE(firing_intervals[i] >= pipeline.service_time(i) - 1e-9,
                   "firing interval below service time at node " +
                       std::to_string(i));
  }
  RIPPLE_REQUIRE(config.input_count > 0, "need at least one input");

  dist::Xoshiro256 rng(config.seed);
  const std::uint32_t v = pipeline.simd_width();

  metrics.reset(n);
  metrics.vector_width = v;
  metrics.sharing_actors = n;  // each node is active or waiting all run long
  metrics.arm_latency_histogram(config.deadline);

  // Hot-loop caches: service times and raw gain pointers in flat arrays so
  // the dispatch loop never walks the pipeline spec.
  std::vector<Cycles> service_time(n);
  std::vector<const dist::GainDistribution*> gain(n, nullptr);
  for (NodeIndex i = 0; i < n; ++i) {
    service_time[i] = pipeline.service_time(i);
    if (i + 1 < n) gain[i] = pipeline.node(i).gain.get();
  }

  std::vector<util::RingBuffer<RootId>> queues(n);
  for (auto& queue : queues) queue.reserve(4 * v);
  // Outputs of the in-progress firing of node i, delivered at its FireEnd.
  // Reused across firings; reserved to the per-firing worst case up front.
  std::vector<std::vector<RootId>> in_flight(n);
  for (NodeIndex i = 0; i < n; ++i) {
    in_flight[i].reserve(static_cast<std::size_t>(v) *
                         (gain[i] != nullptr ? gain[i]->max_outputs() : 1u));
  }
  // Per-firing gain draws: one batched virtual call instead of one per item.
  std::vector<dist::OutputCount> gain_draws(v);

  std::vector<Cycles> root_arrival;
  root_arrival.reserve(config.input_count);
  std::vector<bool> root_missed(config.input_count, false);

  // Items currently inside the pipeline (queued or in flight); the trial ends
  // when the stream is exhausted and this count reaches zero.
  std::uint64_t live_items = 0;
  bool arrivals_done = false;
  // Fixed-rate streams never touch the RNG, so their gap can be hoisted out
  // of the per-arrival virtual dispatch without changing any draw.
  const Cycles fixed_gap = arrival_process.fixed_interarrival();

  const std::size_t kArrivalSource = 0;
  const std::size_t kFireStartBase = 1;
  const std::size_t kFireEndBase = 1 + n;
  IndexedScheduler events(2 * n + 1);

  // First arrival after one inter-arrival gap; every node starts its cadence
  // with a firing at its phase offset (t = 0 by default).
  RIPPLE_REQUIRE(config.initial_offsets.empty() ||
                     config.initial_offsets.size() == n,
                 "one phase offset per node (or none)");
  events.schedule(kArrivalSource, arrival_process.next_interarrival(rng),
                  kPriorityArrival);
  for (NodeIndex i = 0; i < n; ++i) {
    const Cycles offset =
        config.initial_offsets.empty() ? 0.0 : config.initial_offsets[i];
    RIPPLE_REQUIRE(offset >= 0.0, "phase offsets must be non-negative");
    events.schedule(kFireStartBase + i, offset, kPriorityFireStart);
  }

#if RIPPLE_OBS
  // One branch on a cached pointer per record when tracing is on; a single
  // inactive-writer check when it is off. Tracks are node indices on the sim
  // timeline; labels come from the pipeline spec.
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    for (NodeIndex i = 0; i < n; ++i) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(i),
          pipeline.node(i).name);
    }
  }
#endif

  std::uint64_t processed_events = 0;
  while (!events.empty() && processed_events < config.max_events) {
    const IndexedScheduler::Next event = events.pop();
    ++processed_events;
    const Cycles now = event.time;

    if (event.source >= kFireEndBase) {
      // ------------------------------------------------------------ FireEnd
      const NodeIndex i = static_cast<NodeIndex>(event.source - kFireEndBase);
      auto& bundle = in_flight[i];
      const bool is_sink = (i + 1 == n);
      if (is_sink) {
        for (const RootId root : bundle) {
          ++metrics.sink_outputs;
          const Cycles latency = now - root_arrival[root];
          metrics.record_latency(latency);
          if (config.deadline > 0.0 && latency > config.deadline * (1.0 + 1e-12)) {
            if (!root_missed[root]) {
              root_missed[root] = true;
              ++metrics.inputs_missed;
#if RIPPLE_OBS
              if (trace.active()) {
                // Negative slack = how late the item exited.
                trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                              "deadline_miss", now, config.deadline - latency);
              }
#endif
            }
          }
          metrics.makespan = std::max(metrics.makespan, now);
        }
        live_items -= bundle.size();
      } else {
        auto& next_queue = queues[i + 1];
        for (const RootId root : bundle) next_queue.push_back(root);
      }
      bundle.clear();
#if RIPPLE_OBS
      if (trace.active()) {
        trace.end(obs::Domain::kSim, static_cast<std::uint32_t>(i), "fire",
                  now);
      }
#endif
    } else if (event.source >= kFireStartBase) {
      // ---------------------------------------------------------- FireStart
      const NodeIndex i = static_cast<NodeIndex>(event.source - kFireStartBase);
      NodeMetrics& node = metrics.nodes[i];
      auto& queue = queues[i];
      // Queue lengths only shrink at this node's own fire-starts, so the
      // running maximum observed here (pre-consume) equals the maximum the
      // reference implementation tracked push-by-push at arrivals/deliveries.
      node.max_queue_length =
          std::max<std::uint64_t>(node.max_queue_length, queue.size());
      const std::uint32_t consumed =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(queue.size(), v));
#if RIPPLE_OBS
      if (trace.active()) {
        trace.counter(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                      "queue_depth", now, static_cast<double>(queue.size()));
        if (consumed > 0) {
          // A FireEnd is guaranteed for every consuming firing, so the span
          // always closes; empty charged firings are instants instead.
          trace.begin(obs::Domain::kSim, static_cast<std::uint32_t>(i), "fire",
                      now);
        } else if (config.charge_empty_firings) {
          trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                        "empty_firing", now, service_time[i]);
        }
      }
#endif

      if (consumed > 0 || config.charge_empty_firings) {
        ++node.firings;
        if (consumed == 0) ++node.empty_firings;
        node.active_time += service_time[i];
      }

      if (consumed > 0) {
        node.items_consumed += consumed;
        auto& bundle = in_flight[i];
        const bool is_sink = (i + 1 == n);
        if (is_sink) {
          for (std::uint32_t k = 0; k < consumed; ++k) {
            bundle.push_back(queue[k]);  // exits at fire end
          }
        } else {
          // Gain draws consume the RNG stream in the same per-item order as
          // the reference implementation; batching only hoists the virtual
          // dispatch out of the loop.
          gain[i]->sample_n(rng, gain_draws.data(), consumed);
          std::uint64_t produced = 0;
          for (std::uint32_t k = 0; k < consumed; ++k) {
            const RootId root = queue[k];
            const dist::OutputCount outputs = gain_draws[k];
            produced += outputs;
            for (dist::OutputCount o = 0; o < outputs; ++o) {
              bundle.push_back(root);
            }
          }
          node.items_produced += produced;
          // Consumed items are replaced by their outputs.
          live_items += produced;
          live_items -= consumed;
        }
        queue.discard_front(consumed);
        events.schedule(kFireEndBase + i, now + service_time[i],
                        kPriorityFireEnd);
      }

      // Next firing on the fixed cadence — but once the stream has drained,
      // let idle nodes stop so the event loop terminates.
      if (!(arrivals_done && live_items == 0)) {
        events.schedule(kFireStartBase + i, now + firing_intervals[i],
                        kPriorityFireStart);
      }
    } else {
      // ------------------------------------------------------------ Arrival
      //
      // In a fast stream most events are arrivals landing between firings,
      // and while arrivals process, every *other* source is frozen — so take
      // the scheduler's horizon once and consume consecutive arrivals in a
      // tight loop for as long as they provably pop first. Event order is
      // unchanged (Horizon::beaten_by is exact on the (time, priority, seq)
      // comparator), and the skipped sequence numbers cannot change any
      // tie-break because the arrival stream is the only
      // kPriorityArrival-priority source.
      const IndexedScheduler::Horizon horizon = events.horizon();
      Cycles arrival_time = now;
      auto& queue0 = queues[0];
      while (true) {
        const RootId root = static_cast<RootId>(root_arrival.size());
        root_arrival.push_back(arrival_time);
        queue0.push_back(root);
        ++live_items;
        if (root_arrival.size() >= config.input_count) {
          arrivals_done = true;
          break;
        }
        const Cycles next_time =
            arrival_time + (fixed_gap > 0.0
                                ? fixed_gap
                                : arrival_process.next_interarrival(rng));
        if (processed_events >= config.max_events ||
            !horizon.beaten_by(next_time, kPriorityArrival)) {
          events.schedule(kArrivalSource, next_time, kPriorityArrival);
          break;
        }
        arrival_time = next_time;
        ++processed_events;
      }
    }
  }

  RIPPLE_REQUIRE(processed_events < config.max_events,
                 "event budget exhausted (unstable schedule?)");
  metrics.events_processed = processed_events;
  metrics.inputs_arrived = root_arrival.size();
  metrics.inputs_on_time = metrics.inputs_arrived - metrics.inputs_missed;
  if (metrics.makespan <= 0.0 && !root_arrival.empty()) {
    metrics.makespan = root_arrival.back();
  }
}

TrialMetrics simulate_enforced_waits(const sdf::PipelineSpec& pipeline,
                                     const std::vector<Cycles>& firing_intervals,
                                     arrivals::ArrivalProcess& arrival_process,
                                     const EnforcedSimConfig& config) {
  TrialMetrics metrics;
  simulate_enforced_waits_into(pipeline, firing_intervals, arrival_process,
                               config, metrics);
  return metrics;
}

}  // namespace ripple::sim
