// Multi-trial experiment driver: run R independent seeded trials (optionally
// across a thread pool) and aggregate the statistics the paper reports —
// the fraction of miss-free trials, mean miss fraction, and mean measured
// active fraction.
//
// On RIPPLE_OBS builds with recording enabled, every trial body is wrapped
// in a host-domain "trial" span on the executing worker's track, and the
// driver feeds the `trials.completed` counter and `trials.trial_wall_us`
// histogram in the global metrics registry (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dist/stats.hpp"
#include "sim/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ripple::sim {

/// Builds and runs one trial given its index; must be thread-safe across
/// distinct indices (derive the trial seed from the index).
using TrialFn = std::function<TrialMetrics(std::uint64_t trial_index)>;

/// In-place trial body: run the trial for `trial_index` into `out`. The
/// driver hands each worker a thread-local scratch TrialMetrics that is
/// reused across every trial that worker claims, so the body must fully
/// overwrite it (the simulate_*_into entry points do — they reset counters
/// and histogram bins while keeping allocations).
using TrialBodyFn =
    std::function<void(std::uint64_t trial_index, TrialMetrics& out)>;

struct TrialSummary {
  std::uint64_t trials = 0;
  std::uint64_t miss_free_trials = 0;

  dist::RunningStats active_fraction;  ///< across trials
  dist::RunningStats miss_fraction;    ///< across trials
  dist::RunningStats latency_mean;     ///< per-trial mean output latency
  dist::RunningStats latency_max;      ///< per-trial max output latency
  dist::RunningStats latency_p99;      ///< per-trial 99th-percentile latency
                                       ///< (histogram-based; needs a deadline)
  dist::RunningStats occupancy;        ///< per-trial overall SIMD occupancy

  /// Per-node maximum queue length observed across every trial, in items.
  std::vector<std::uint64_t> max_queue_lengths;

  double miss_free_fraction() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(miss_free_trials) /
                             static_cast<double>(trials);
  }

  /// Wilson 95% interval on the miss-free trial proportion.
  dist::ProportionInterval miss_free_interval() const {
    return dist::wilson_interval(miss_free_trials, trials);
  }
};

/// Run `trial_count` trials. `pool` may be null for serial execution.
///
/// `grain` is forwarded to ThreadPool::parallel_for: each worker claims
/// `grain` consecutive trial indices per atomic fetch. Results are identical
/// for every grain (and to serial execution) because each trial derives its
/// seed from its own index and aggregation happens serially in index order.
TrialSummary run_trials(const TrialFn& trial_fn, std::uint64_t trial_count,
                        util::ThreadPool* pool = nullptr, std::size_t grain = 1);

/// Buffer-reusing driver: each worker thread runs its claimed trials into one
/// thread-local scratch TrialMetrics (node vectors and histogram bins are
/// allocated once per worker, not once per trial) and only a small per-trial
/// digest is kept. Aggregation replicates run_trials exactly — serial, in
/// index order, with the same conditionals — so the TrialSummary is
/// bit-identical to the value-returning API for any pool/grain.
TrialSummary run_trials_into(const TrialBodyFn& body, std::uint64_t trial_count,
                             util::ThreadPool* pool = nullptr,
                             std::size_t grain = 1);

}  // namespace ripple::sim
