// Indexed next-event scheduler for simulations with a fixed event structure.
//
// The enforced-waits simulator only ever has 2N+1 pending events: one
// per-node fire-start cadence, one per-node in-flight fire-end, and one
// arrival stream. A general binary heap pays push/pop sifting and event
// copies for what is really "advance one slot and re-take the minimum". This
// scheduler instead keeps one pending-event slot per *source* in flat arrays
// and selects the next event with a branch-light argmin scan — O(S) with
// S ~ 9 for the canonical pipeline, which beats O(log E) heap maintenance by
// a wide margin at these sizes (and the scan is over contiguous doubles).
//
// Determinism contract: identical to EventQueue. Events are ordered by
// (time, priority, seq) where seq is a global insertion counter bumped on
// every schedule() call, so any simulation that previously kept at most one
// pending event per logical source on an EventQueue produces a bit-for-bit
// identical event order on this scheduler.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace ripple::sim {

class IndexedScheduler {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  explicit IndexedScheduler(std::size_t sources)
      : time_(sources, kIdle), priority_(sources, 0), seq_(sources, 0) {}

  std::size_t source_count() const noexcept { return time_.size(); }

  /// Arm (or re-arm) a source's single pending event. Consumes one global
  /// sequence number, exactly like EventQueue::push.
  void schedule(std::size_t source, Cycles time, int priority) {
    RIPPLE_REQUIRE(source < time_.size(), "scheduler source out of range");
    RIPPLE_REQUIRE(time < kIdle, "scheduled time must be finite");
    if (time_[source] == kIdle) ++armed_;
    time_[source] = time;
    priority_[source] = priority;
    seq_[source] = next_seq_++;
  }

  /// Disarm a source without firing it.
  void cancel(std::size_t source) {
    RIPPLE_REQUIRE(source < time_.size(), "scheduler source out of range");
    if (time_[source] != kIdle) {
      time_[source] = kIdle;
      --armed_;
    }
  }

  bool empty() const noexcept { return armed_ == 0; }

  bool armed(std::size_t source) const noexcept { return time_[source] != kIdle; }

  Cycles time_of(std::size_t source) const noexcept { return time_[source]; }

  /// Source of the next event, or kNone when nothing is armed. Does not
  /// disarm the source.
  std::size_t peek() const noexcept {
    // Time-first scan: the common case has a unique minimum time, so the
    // inner loop is a single double-compare per source (idle slots carry +inf
    // and lose automatically). Exact ties — tracked as a flag during the same
    // pass — fall through to the full (priority, seq) refinement, which
    // almost never runs.
    const std::size_t count = time_.size();
    std::size_t best = 0;
    bool tied = false;
    for (std::size_t s = 1; s < count; ++s) {
      if (time_[s] < time_[best]) {
        best = s;
        tied = false;
      } else if (time_[s] == time_[best]) {
        tied = true;
      }
    }
    if (time_[best] == kIdle) return kNone;
    if (tied) {
      for (std::size_t s = 0; s < count; ++s) {
        if (s != best && time_[s] == time_[best] && earlier(s, best)) best = s;
      }
    }
    return best;
  }

  /// The earliest armed (time, priority) pair, reduced to the test "would a
  /// new event at (t, p) with a fresh, maximal sequence number pop first?".
  /// Callers with a monotone private stream (e.g. the arrival process) can
  /// take the horizon once and then consume stream events in a tight loop —
  /// no schedule()/pop() round-trips — for as long as the horizon stands
  /// (i.e. until they arm or fire any other source). Ordering is identical
  /// to having gone through the scheduler.
  struct Horizon {
    Cycles time = std::numeric_limits<Cycles>::infinity();
    int min_priority = 0;  ///< smallest priority among sources at `time`

    /// Exact under the (time, priority, seq) comparator: a fresh event's seq
    /// exceeds every armed seq, so it must win on time or priority alone.
    bool beaten_by(Cycles t, int priority) const noexcept {
      return t < time || (t == time && priority < min_priority);
    }
  };

  Horizon horizon() const noexcept {
    Horizon h;
    for (std::size_t s = 0; s < time_.size(); ++s) {
      if (time_[s] < h.time) {
        h.time = time_[s];
        h.min_priority = priority_[s];
      } else if (time_[s] == h.time && time_[s] != kIdle) {
        h.min_priority = std::min(h.min_priority, priority_[s]);
      }
    }
    return h;
  }

  struct Next {
    std::size_t source = kNone;
    Cycles time = 0.0;
  };

  /// Take the next event: returns its source and firing time, disarming it.
  Next pop() {
    Next next;
    next.source = peek();
    if (next.source != kNone) {
      next.time = time_[next.source];
      time_[next.source] = kIdle;
      --armed_;
    }
    return next;
  }

 private:
  // Disarmed slots carry +inf so the argmin scan needs no validity branch
  // beyond the compare itself.
  static constexpr Cycles kIdle = std::numeric_limits<Cycles>::infinity();

  bool earlier(std::size_t a, std::size_t b) const noexcept {
    if (time_[a] != time_[b]) return time_[a] < time_[b];
    if (priority_[a] != priority_[b]) return priority_[a] < priority_[b];
    return seq_[a] < seq_[b];
  }

  std::vector<Cycles> time_;
  std::vector<int> priority_;
  std::vector<std::uint64_t> seq_;
  std::uint64_t next_seq_ = 0;
  std::size_t armed_ = 0;
};

}  // namespace ripple::sim
