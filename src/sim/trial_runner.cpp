#include "sim/trial_runner.hpp"

#include <algorithm>

#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::sim {

TrialSummary run_trials(const TrialFn& trial_fn, std::uint64_t trial_count,
                        util::ThreadPool* pool, std::size_t grain) {
  RIPPLE_REQUIRE(static_cast<bool>(trial_fn), "trial function required");

#if RIPPLE_OBS
  // Metric handles are resolved once per run, never per trial; the per-trial
  // cost when enabled is two counter bumps plus a host-domain span.
  obs::Counter* trials_completed = nullptr;
  obs::LatencyHistogram* trial_wall_us = nullptr;
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    trials_completed = registry.counter("trials.completed");
    trial_wall_us = registry.histogram("trials.trial_wall_us");
  }
#endif

  std::vector<TrialMetrics> results(trial_count);
  auto body = [&](std::size_t index) {
#if RIPPLE_OBS
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      auto& session = obs::TraceSession::global();
      const double begin_us = session.host_now_us();
      trace.begin(obs::Domain::kHost, trace.track(), "trial", begin_us);
      results[index] = trial_fn(index);
      const double end_us = session.host_now_us();
      trace.end(obs::Domain::kHost, trace.track(), "trial", end_us);
      if (trial_wall_us != nullptr) trial_wall_us->record(end_us - begin_us);
      if (trials_completed != nullptr) trials_completed->increment();
      return;
    }
#endif
    results[index] = trial_fn(index);
  };
  if (pool != nullptr) {
    pool->parallel_for(trial_count, body, grain);
  } else {
    for (std::uint64_t i = 0; i < trial_count; ++i) body(i);
  }

  // Aggregation is serial and deterministic (trial order, not thread order).
  TrialSummary summary;
  summary.trials = trial_count;
  for (const TrialMetrics& trial : results) {
    if (trial.miss_free()) ++summary.miss_free_trials;
    summary.active_fraction.add(trial.active_fraction());
    summary.miss_fraction.add(trial.miss_fraction());
    if (trial.output_latency.count() > 0) {
      summary.latency_mean.add(trial.output_latency.mean());
      summary.latency_max.add(trial.output_latency.max());
      if (trial.latency_histogram.has_value()) {
        summary.latency_p99.add(trial.latency_quantile(0.99));
      }
    }
    summary.occupancy.add(trial.overall_occupancy());
    if (summary.max_queue_lengths.size() < trial.nodes.size()) {
      summary.max_queue_lengths.resize(trial.nodes.size(), 0);
    }
    for (std::size_t i = 0; i < trial.nodes.size(); ++i) {
      summary.max_queue_lengths[i] =
          std::max(summary.max_queue_lengths[i], trial.nodes[i].max_queue_length);
    }
  }
  return summary;
}

}  // namespace ripple::sim
