#include "sim/trial_runner.hpp"

#include <algorithm>

#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::sim {
namespace {

/// Everything the aggregation loop reads from one trial, captured while the
/// trial's scratch TrialMetrics is still live. Small (one short vector) so
/// keeping trial_count of these is cheap where trial_count full TrialMetrics
/// (node vectors + 256-bin histograms) would not be.
struct TrialDigest {
  bool miss_free = false;
  double active_fraction = 0.0;
  double miss_fraction = 0.0;
  std::uint64_t latency_count = 0;
  double latency_mean = 0.0;
  double latency_max = 0.0;
  bool has_histogram = false;
  double latency_p99 = 0.0;
  double occupancy = 0.0;
  std::vector<std::uint64_t> max_queue_lengths;
};

void capture_digest(const TrialMetrics& trial, TrialDigest& digest) {
  digest.miss_free = trial.miss_free();
  digest.active_fraction = trial.active_fraction();
  digest.miss_fraction = trial.miss_fraction();
  digest.latency_count = trial.output_latency.count();
  digest.latency_mean = trial.output_latency.mean();
  digest.latency_max = trial.output_latency.max();
  digest.has_histogram = trial.latency_histogram.has_value();
  digest.latency_p99 =
      digest.has_histogram ? trial.latency_quantile(0.99) : 0.0;
  digest.occupancy = trial.overall_occupancy();
  digest.max_queue_lengths.resize(trial.nodes.size());
  for (std::size_t i = 0; i < trial.nodes.size(); ++i) {
    digest.max_queue_lengths[i] = trial.nodes[i].max_queue_length;
  }
}

}  // namespace

TrialSummary run_trials_into(const TrialBodyFn& body, std::uint64_t trial_count,
                             util::ThreadPool* pool, std::size_t grain) {
  RIPPLE_REQUIRE(static_cast<bool>(body), "trial body required");

#if RIPPLE_OBS
  // Metric handles are resolved once per run, never per trial; the per-trial
  // cost when enabled is two counter bumps plus a host-domain span.
  obs::Counter* trials_completed = nullptr;
  obs::LatencyHistogram* trial_wall_us = nullptr;
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    trials_completed = registry.counter("trials.completed");
    trial_wall_us = registry.histogram("trials.trial_wall_us");
  }
#endif

  std::vector<TrialDigest> digests(trial_count);
  auto run_one = [&](std::size_t index) {
    // One scratch TrialMetrics per worker thread, reused across every trial
    // the worker claims: the body resets counters and histogram bins in
    // place, so node vectors and histogram storage are allocated once per
    // worker rather than once per trial.
    thread_local TrialMetrics scratch;
    body(index, scratch);
    capture_digest(scratch, digests[index]);
  };
  auto wrapped = [&](std::size_t index) {
#if RIPPLE_OBS
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      auto& session = obs::TraceSession::global();
      const double begin_us = session.host_now_us();
      trace.begin(obs::Domain::kHost, trace.track(), "trial", begin_us);
      run_one(index);
      const double end_us = session.host_now_us();
      trace.end(obs::Domain::kHost, trace.track(), "trial", end_us);
      if (trial_wall_us != nullptr) trial_wall_us->record(end_us - begin_us);
      if (trials_completed != nullptr) trials_completed->increment();
      return;
    }
#endif
    run_one(index);
  };
  if (pool != nullptr) {
    pool->parallel_for(trial_count, wrapped, grain);
  } else {
    for (std::uint64_t i = 0; i < trial_count; ++i) wrapped(i);
  }

  // Aggregation is serial and deterministic (trial order, not thread order),
  // replicating the exact conditionals of the historical full-TrialMetrics
  // loop so summaries are bit-identical for any pool/grain.
  TrialSummary summary;
  summary.trials = trial_count;
  for (const TrialDigest& trial : digests) {
    if (trial.miss_free) ++summary.miss_free_trials;
    summary.active_fraction.add(trial.active_fraction);
    summary.miss_fraction.add(trial.miss_fraction);
    if (trial.latency_count > 0) {
      summary.latency_mean.add(trial.latency_mean);
      summary.latency_max.add(trial.latency_max);
      if (trial.has_histogram) {
        summary.latency_p99.add(trial.latency_p99);
      }
    }
    summary.occupancy.add(trial.occupancy);
    if (summary.max_queue_lengths.size() < trial.max_queue_lengths.size()) {
      summary.max_queue_lengths.resize(trial.max_queue_lengths.size(), 0);
    }
    for (std::size_t i = 0; i < trial.max_queue_lengths.size(); ++i) {
      summary.max_queue_lengths[i] =
          std::max(summary.max_queue_lengths[i], trial.max_queue_lengths[i]);
    }
  }
  return summary;
}

TrialSummary run_trials(const TrialFn& trial_fn, std::uint64_t trial_count,
                        util::ThreadPool* pool, std::size_t grain) {
  RIPPLE_REQUIRE(static_cast<bool>(trial_fn), "trial function required");
  return run_trials_into(
      [&trial_fn](std::uint64_t index, TrialMetrics& out) {
        out = trial_fn(index);
      },
      trial_count, pool, grain);
}

}  // namespace ripple::sim
