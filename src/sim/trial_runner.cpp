#include "sim/trial_runner.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ripple::sim {

TrialSummary run_trials(const TrialFn& trial_fn, std::uint64_t trial_count,
                        util::ThreadPool* pool, std::size_t grain) {
  RIPPLE_REQUIRE(static_cast<bool>(trial_fn), "trial function required");

  std::vector<TrialMetrics> results(trial_count);
  auto body = [&](std::size_t index) {
    results[index] = trial_fn(index);
  };
  if (pool != nullptr) {
    pool->parallel_for(trial_count, body, grain);
  } else {
    for (std::uint64_t i = 0; i < trial_count; ++i) body(i);
  }

  // Aggregation is serial and deterministic (trial order, not thread order).
  TrialSummary summary;
  summary.trials = trial_count;
  for (const TrialMetrics& trial : results) {
    if (trial.miss_free()) ++summary.miss_free_trials;
    summary.active_fraction.add(trial.active_fraction());
    summary.miss_fraction.add(trial.miss_fraction());
    if (trial.output_latency.count() > 0) {
      summary.latency_mean.add(trial.output_latency.mean());
      summary.latency_max.add(trial.output_latency.max());
      if (trial.latency_histogram.has_value()) {
        summary.latency_p99.add(trial.latency_quantile(0.99));
      }
    }
    summary.occupancy.add(trial.overall_occupancy());
    if (summary.max_queue_lengths.size() < trial.nodes.size()) {
      summary.max_queue_lengths.resize(trial.nodes.size(), 0);
    }
    for (std::size_t i = 0; i < trial.nodes.size(); ++i) {
      summary.max_queue_lengths[i] =
          std::max(summary.max_queue_lengths[i], trial.nodes[i].max_queue_length);
    }
  }
  return summary;
}

}  // namespace ripple::sim
