// Discrete-event simulation of the enforced-waits runtime (paper Sections 2
// and 4, used for the empirical study of Section 6.2).
//
// Each node n_i fires on a fixed cadence x_i = t_i + w_i measured from the
// start of its previous firing: it consumes up to v queued items at firing
// start, samples each item's gain, and delivers the outputs to the next
// node's queue at firing end (t_i later). Firings with an empty input vector
// are charged as active time by default (the paper's accounting); setting
// `charge_empty_firings = false` treats them as vacations instead (the
// alternative the paper mentions parenthetically).
//
// On RIPPLE_OBS builds with recording enabled, each trial emits a trace
// timeline (docs/OBSERVABILITY.md): a "fire" span per consuming firing and a
// "queue_depth" counter sample on the firing node's track, an
// "empty_firing" instant per vacuous firing, and a "deadline_miss" instant
// (value = remaining slack, negative) per missed root input.
#pragma once

#include <cstdint>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "sdf/pipeline.hpp"
#include "sim/metrics.hpp"
#include "util/types.hpp"

namespace ripple::sim {

struct EnforcedSimConfig {
  ItemCount input_count = 50000;  ///< the paper's stream length
  Cycles deadline = 0.0;          ///< D, for per-input miss accounting
  /// Count firings on an empty queue as active time (the paper's default
  /// accounting) rather than as vacations.
  bool charge_empty_firings = true;
  std::uint64_t seed = 0;  ///< gain-sampling RNG stream
  std::uint64_t max_events = 500'000'000;  ///< runaway guard

  /// Optional per-node first-firing times (phase offsets). Empty = all fire
  /// first at t = 0. Staggering node i's phase to just after node i-1's
  /// firing end (see aligned_phase_offsets) lets items flow through the
  /// pipeline in one pass when cadences line up, instead of waiting most of
  /// a firing interval at each stage.
  std::vector<Cycles> initial_offsets;
};

/// Pipeline-aligned offsets: node i first fires at sum_{j<i} t_j (+ epsilon
/// per stage so deliveries strictly precede the consuming firing).
std::vector<Cycles> aligned_phase_offsets(const sdf::PipelineSpec& pipeline);

/// Run one trial. `firing_intervals` are the x_i (from an
/// EnforcedWaitsSchedule or hand-chosen); the arrival process supplies the
/// input stream. Throws std::logic_error on malformed inputs (interval
/// below service time, wrong vector length).
TrialMetrics simulate_enforced_waits(const sdf::PipelineSpec& pipeline,
                                     const std::vector<Cycles>& firing_intervals,
                                     arrivals::ArrivalProcess& arrival_process,
                                     const EnforcedSimConfig& config);

/// Buffer-reusing variant: writes the trial into `out`, which is reset (node
/// counters, histogram bins) but keeps its allocations — so a trial loop that
/// passes the same TrialMetrics touches the allocator only on the first
/// trial. Produces results identical to simulate_enforced_waits.
void simulate_enforced_waits_into(const sdf::PipelineSpec& pipeline,
                                  const std::vector<Cycles>& firing_intervals,
                                  arrivals::ArrivalProcess& arrival_process,
                                  const EnforcedSimConfig& config,
                                  TrialMetrics& out);

}  // namespace ripple::sim
