// Deterministic discrete-event queue.
//
// Events are ordered by (time, priority, sequence). The priority field gives
// simulations explicit control over same-timestamp ordering (e.g. "outputs
// become visible before the next firing consumes"), and the sequence number
// makes ordering fully deterministic regardless of heap internals.
//
// Internally this is a hand-rolled 4-ary array heap rather than
// std::priority_queue: the shallower tree halves the number of comparison
// levels per sift, children share cache lines, and pop() moves the top event
// out instead of copying it (std::priority_queue::top() only exposes a const
// reference, forcing a copy on the hottest line of the simulators).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace ripple::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Cycles time;
    int priority;       ///< lower fires first at equal time
    std::uint64_t seq;  ///< insertion order, breaks remaining ties
    Payload payload;
  };

  void push(Cycles time, int priority, Payload payload) {
    heap_.push_back(Event{time, priority, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  const Event& top() const { return heap_.front(); }

  Event pop() {
    Event event = std::move(heap_.front());
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return event;
  }

 private:
  static constexpr std::size_t kArity = 4;

  /// True when a fires strictly before b.
  static bool earlier(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    Event moving = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(moving, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(moving);
  }

  void sift_down(std::size_t i) {
    const std::size_t count = heap_.size();
    Event moving = std::move(heap_[i]);
    while (true) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= count) break;
      const std::size_t last_child = std::min(first_child + kArity, count);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], moving)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(moving);
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ripple::sim
