// Deterministic discrete-event queue.
//
// Events are ordered by (time, priority, sequence). The priority field gives
// simulations explicit control over same-timestamp ordering (e.g. "outputs
// become visible before the next firing consumes"), and the sequence number
// makes ordering fully deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/types.hpp"

namespace ripple::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Cycles time;
    int priority;       ///< lower fires first at equal time
    std::uint64_t seq;  ///< insertion order, breaks remaining ties
    Payload payload;
  };

  void push(Cycles time, int priority, Payload payload) {
    heap_.push(Event{time, priority, next_seq_++, std::move(payload)});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  const Event& top() const { return heap_.top(); }

  Event pop() {
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ripple::sim
