#include "sim/monolithic_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dist/rng.hpp"
#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::sim {

void simulate_monolithic_into(const sdf::PipelineSpec& pipeline,
                              arrivals::ArrivalProcess& arrival_process,
                              const MonolithicSimConfig& config,
                              TrialMetrics& metrics) {
  RIPPLE_REQUIRE(config.block_size >= 1, "block size must be at least 1");
  RIPPLE_REQUIRE(config.input_count > 0, "need at least one input");

  const std::size_t n = pipeline.size();
  const std::uint32_t v = pipeline.simd_width();
  dist::Xoshiro256 rng(config.seed);

  metrics.reset(n);
  metrics.vector_width = v;
  metrics.sharing_actors = 1;  // the monolithic pipeline runs as one unit
  metrics.arm_latency_histogram(config.deadline);

  Cycles clock = 0.0;          // arrival clock
  Cycles server_free = 0.0;    // when the pipeline finishes its current block
  ItemCount generated = 0;

  std::vector<Cycles> block_arrivals;
  block_arrivals.reserve(static_cast<std::size_t>(config.block_size));

  // Per-item surviving-descendant counts while walking the block through the
  // stages; index parallel to block_arrivals.
  std::vector<std::uint64_t> descendant_counts;

#if RIPPLE_OBS
  // Blocks run back-to-back on one server, so a single dedicated track
  // (away from the per-node ids) holds non-overlapping "block" spans.
  constexpr std::uint32_t kBlockTrack = 1000;
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    obs::TraceSession::global().set_track_name(obs::Domain::kSim, kBlockTrack,
                                               "monolithic blocks");
  }
#endif

  auto process_block = [&](Cycles block_ready) {
    const std::size_t m = block_arrivals.size();
    if (m == 0) return;
    ++metrics.events_processed;  // one block walk = one scheduling event

    const Cycles start = std::max(block_ready, server_free);
    Cycles service = 0.0;
#if RIPPLE_OBS
    if (trace.active()) {
      trace.begin(obs::Domain::kSim, kBlockTrack, "block", start);
      trace.counter(obs::Domain::kSim, kBlockTrack, "block_items", start,
                    static_cast<double>(m));
    }
#endif

    descendant_counts.assign(m, 1);
    std::uint64_t stage_items = m;
    for (NodeIndex i = 0; i < n && stage_items > 0; ++i) {
      NodeMetrics& node = metrics.nodes[i];
      const std::uint64_t firings = (stage_items + v - 1) / v;
      node.firings += firings;
      node.items_consumed += stage_items;
      node.max_queue_length = std::max(node.max_queue_length, stage_items);
      const Cycles stage_service =
          static_cast<double>(firings) * pipeline.service_time(i);
      node.active_time += stage_service;
      service += stage_service;

      if (i + 1 == n) break;  // sink: items exit, no further expansion
      const dist::GainDistribution& gain = *pipeline.node(i).gain;
      std::uint64_t produced = 0;
      for (std::size_t j = 0; j < m; ++j) {
        // Batched: one virtual call per surviving root instead of one per
        // descendant; consumes the identical RNG stream.
        const std::uint64_t outputs = gain.sample_sum(rng, descendant_counts[j]);
        descendant_counts[j] = outputs;
        produced += outputs;
      }
      node.items_produced += produced;
      stage_items = produced;
    }

    const Cycles finish = start + service;
    server_free = finish;
    metrics.makespan = std::max(metrics.makespan, finish);

    for (std::size_t j = 0; j < m; ++j) {
      if (descendant_counts[j] == 0) {
        ++metrics.inputs_on_time;  // vacuously on time: nothing to emit
        continue;
      }
      const Cycles latency = finish - block_arrivals[j];
      for (std::uint64_t c = 0; c < descendant_counts[j]; ++c) {
        ++metrics.sink_outputs;
        metrics.record_latency(latency);
      }
      if (config.deadline > 0.0 && latency > config.deadline * (1.0 + 1e-12)) {
        ++metrics.inputs_missed;
#if RIPPLE_OBS
        if (trace.active()) {
          trace.instant(obs::Domain::kSim, kBlockTrack, "deadline_miss",
                        finish, config.deadline - latency);
        }
#endif
      } else {
        ++metrics.inputs_on_time;
      }
    }
#if RIPPLE_OBS
    if (trace.active()) {
      trace.end(obs::Domain::kSim, kBlockTrack, "block", finish);
    }
#endif
    block_arrivals.clear();
  };

  while (generated < config.input_count) {
    clock += arrival_process.next_interarrival(rng);
    ++generated;
    ++metrics.inputs_arrived;
    block_arrivals.push_back(clock);
    if (block_arrivals.size() ==
        static_cast<std::size_t>(config.block_size)) {
      process_block(clock);
    }
  }
  if (config.flush_final_partial_block) {
    process_block(clock);
  } else {
    // Unprocessed stragglers still count as on time: they never entered the
    // pipeline (matches the paper's steady-state accounting).
    metrics.inputs_on_time += block_arrivals.size();
    block_arrivals.clear();
  }

  if (metrics.makespan <= 0.0) metrics.makespan = clock;
}

TrialMetrics simulate_monolithic(const sdf::PipelineSpec& pipeline,
                                 arrivals::ArrivalProcess& arrival_process,
                                 const MonolithicSimConfig& config) {
  TrialMetrics metrics;
  simulate_monolithic_into(pipeline, arrival_process, config, metrics);
  return metrics;
}

}  // namespace ripple::sim
