// Measurements collected by one simulation trial.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dist/stats.hpp"
#include "util/types.hpp"

namespace ripple::sim {

/// Per-node counters. Cache-line aligned: adjacent nodes' counters live in a
/// contiguous vector and are hammered from different threads when shards run
/// side by side (and by the parallel executor's committer while pool workers
/// touch neighboring state), so sharing a line across nodes turns every
/// counter bump into cross-core traffic (see BM_MetricsContention).
struct alignas(64) NodeMetrics {
  std::uint64_t firings = 0;         ///< firings that consumed >= 1 item
  std::uint64_t empty_firings = 0;   ///< firings on an empty queue (paper §4)
  std::uint64_t items_consumed = 0;  ///< inputs taken across all firings
  std::uint64_t items_produced = 0;  ///< outputs emitted toward the next node
  Cycles active_time = 0.0;          ///< total service time charged
  std::uint64_t max_queue_length = 0;  ///< peak input-queue depth observed

  /// Mean SIMD occupancy: items consumed per firing relative to the vector
  /// width (the paper's per-node utilization measure). Zero when the node
  /// never fired.
  double mean_occupancy(std::uint32_t vector_width) const {
    if (firings == 0) return 0.0;
    return static_cast<double>(items_consumed) /
           (static_cast<double>(firings) * static_cast<double>(vector_width));
  }
};

/// Results of one trial.
struct TrialMetrics {
  std::vector<NodeMetrics> nodes;

  std::uint64_t inputs_arrived = 0;
  /// Root inputs whose every sink output left by the deadline (vacuously
  /// satisfied when an input is filtered out entirely).
  std::uint64_t inputs_on_time = 0;
  /// Root inputs with at least one late sink output (the paper's "inputs
  /// incurring a miss").
  std::uint64_t inputs_missed = 0;

  std::uint64_t sink_outputs = 0;
  dist::RunningStats output_latency;  ///< per sink output: exit - root arrival

  /// Latency histogram over [0, 4D) (present when a deadline was configured),
  /// for percentile reporting beyond min/mean/max.
  std::optional<dist::Histogram> latency_histogram;

  /// Record one output latency into both the running stats and (when armed)
  /// the histogram.
  void record_latency(Cycles latency) {
    output_latency.add(latency);
    if (latency_histogram.has_value()) latency_histogram->add(latency);
  }

  /// Arm the histogram for a given deadline; disarms when deadline <= 0. A
  /// histogram already shaped for this deadline is cleared in place rather
  /// than reallocated, so buffer-reusing trial loops (run_trials_into) touch
  /// the allocator only on the first trial.
  void arm_latency_histogram(Cycles deadline) {
    if (deadline > 0.0) {
      const Cycles hi = 4.0 * deadline;
      if (latency_histogram.has_value() && latency_histogram->lo() == 0.0 &&
          latency_histogram->hi() == hi &&
          latency_histogram->bin_count() == 256) {
        latency_histogram->reset();
      } else {
        latency_histogram.emplace(0.0, hi, 256);
      }
    } else {
      latency_histogram.reset();
    }
  }

  /// Reset every counter for a fresh trial while keeping allocated buffers
  /// (node storage; the histogram is handled by arm_latency_histogram).
  void reset(std::size_t node_count) {
    nodes.assign(node_count, NodeMetrics{});
    inputs_arrived = 0;
    inputs_on_time = 0;
    inputs_missed = 0;
    sink_outputs = 0;
    output_latency = dist::RunningStats{};
    makespan = 0.0;
    vector_width = 0;
    events_processed = 0;
    sharing_actors = 0;
  }

  /// Latency percentile (e.g. 0.99); falls back to max() without a histogram.
  Cycles latency_quantile(double q) const {
    if (latency_histogram.has_value() && latency_histogram->total() > 0) {
      return latency_histogram->quantile(q);
    }
    return output_latency.max();
  }

  Cycles makespan = 0.0;  ///< time at which the last output left
  std::uint32_t vector_width = 0;

  /// Scheduler events the trial dispatched (discrete-event sims) or firings
  /// executed (tick-based sims); 0 when the simulator does not track it.
  /// Drives the events/sec throughput counters in bench_micro.
  std::uint64_t events_processed = 0;

  /// Number of concurrent actors sharing the processor for active-fraction
  /// accounting: N for enforced waits (each node is active or waiting for
  /// the whole run), 1 for the monolithic strategy (the pipeline runs as a
  /// unit and owns the whole allocation). 0 defaults to nodes.size().
  std::size_t sharing_actors = 0;

  /// Fraction of inputs that missed the deadline.
  double miss_fraction() const {
    return inputs_arrived == 0
               ? 0.0
               : static_cast<double>(inputs_missed) /
                     static_cast<double>(inputs_arrived);
  }

  bool miss_free() const { return inputs_missed == 0; }

  /// Measured active fraction: total node-active time over the total
  /// active-plus-waiting time (each of N nodes is active or waiting for the
  /// whole makespan, so the denominator is N * makespan).
  double active_fraction() const;

  /// Items-weighted mean SIMD occupancy across all nodes' firings.
  double overall_occupancy() const;
};

}  // namespace ripple::sim
