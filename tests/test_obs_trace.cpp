#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace ripple::obs {
namespace {

TraceEvent make_event(const char* name, double ts,
                      TraceKind kind = TraceKind::kInstant) {
  TraceEvent event;
  event.name = name;
  event.ts = ts;
  event.kind = kind;
  return event;
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1, 0).capacity(), 16u);   // minimum
  EXPECT_EQ(TraceRing(16, 0).capacity(), 16u);
  EXPECT_EQ(TraceRing(17, 0).capacity(), 32u);
  EXPECT_EQ(TraceRing(1000, 0).capacity(), 1024u);
}

TEST(TraceRing, RetainsEventsInOrderBelowCapacity) {
  TraceRing ring(16, 3);
  for (int i = 0; i < 10; ++i) {
    ring.record(make_event("e", static_cast<double>(i)));
  }
  std::vector<TraceEvent> drained;
  ring.drain_into(drained);
  ASSERT_EQ(drained.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(drained[i].ts, static_cast<double>(i));
    EXPECT_EQ(drained[i].ring, 3u);  // ordinal stamped on record
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDropped) {
  TraceRing ring(16, 0);
  for (int i = 0; i < 40; ++i) {
    ring.record(make_event("e", static_cast<double>(i)));
  }
  std::vector<TraceEvent> drained;
  ring.drain_into(drained);
  // Oldest 24 overwritten; the retained window is [24, 40), oldest first.
  ASSERT_EQ(drained.size(), 16u);
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_DOUBLE_EQ(drained[i].ts, static_cast<double>(24 + i));
  }
  EXPECT_EQ(ring.recorded(), 40u);
  EXPECT_EQ(ring.dropped(), 24u);
}

// ------------------------------------------------------------------ session

/// Each test leaves the global session and runtime switch as it found them.
class TraceSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::global().clear();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    TraceSession::global().clear();
  }
};

TEST_F(TraceSessionTest, WriterIsInactiveWhenDisabled) {
  set_enabled(false);
  TraceWriter writer = TraceWriter::for_current_thread();
  EXPECT_FALSE(writer.active());
  EXPECT_EQ(writer.track(), 0u);
  EXPECT_TRUE(TraceSession::global().drain().empty());
}

TEST_F(TraceSessionTest, WriterRecordsIntoThreadRing) {
  TraceWriter writer = TraceWriter::for_current_thread();
  ASSERT_TRUE(writer.active());
  writer.begin(Domain::kSim, 2, "span", 1.0);
  writer.counter(Domain::kSim, 2, "depth", 1.5, 7.0);
  writer.instant(Domain::kHost, 0, "mark", 2.0, -3.0);
  writer.end(Domain::kSim, 2, "span", 4.0);

  const auto events = TraceSession::global().drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, TraceKind::kBegin);
  EXPECT_EQ(events[1].kind, TraceKind::kCounter);
  EXPECT_DOUBLE_EQ(events[1].value, 7.0);
  EXPECT_EQ(events[2].domain, Domain::kHost);
  EXPECT_DOUBLE_EQ(events[2].value, -3.0);
  EXPECT_EQ(events[3].kind, TraceKind::kEnd);
  EXPECT_EQ(events[3].track, 2u);
}

TEST_F(TraceSessionTest, RingsGetDistinctOrdinalsPerThread) {
  TraceWriter main_writer = TraceWriter::for_current_thread();
  ASSERT_TRUE(main_writer.active());
  std::uint32_t worker_track = 0;
  std::thread worker([&worker_track] {
    TraceWriter writer = TraceWriter::for_current_thread();
    ASSERT_TRUE(writer.active());
    worker_track = writer.track();
    writer.instant(Domain::kHost, writer.track(), "worker_mark", 1.0, 0.0);
  });
  worker.join();
  EXPECT_NE(worker_track, main_writer.track());

  const auto events = TraceSession::global().drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ring, worker_track);
}

TEST_F(TraceSessionTest, ClearInvalidatesCachedRings) {
  TraceWriter writer = TraceWriter::for_current_thread();
  writer.instant(Domain::kSim, 0, "before", 1.0, 0.0);
  TraceSession::global().clear();
  EXPECT_TRUE(TraceSession::global().drain().empty());

  // The thread-local cache must re-register instead of writing into the
  // freed ring.
  TraceWriter fresh = TraceWriter::for_current_thread();
  ASSERT_TRUE(fresh.active());
  fresh.instant(Domain::kSim, 0, "after", 2.0, 0.0);
  const auto events = TraceSession::global().drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "after");
}

TEST_F(TraceSessionTest, SetRingCapacityAppliesToNewRings) {
  TraceSession::global().set_ring_capacity(16);
  TraceWriter writer = TraceWriter::for_current_thread();
  for (int i = 0; i < 64; ++i) {
    writer.instant(Domain::kSim, 0, "e", static_cast<double>(i), 0.0);
  }
  EXPECT_EQ(TraceSession::global().drain().size(), 16u);
  EXPECT_EQ(TraceSession::global().dropped(), 48u);
  TraceSession::global().set_ring_capacity(1 << 16);  // restore default
}

TEST_F(TraceSessionTest, TrackNamesRoundTrip) {
  auto& session = TraceSession::global();
  session.set_track_name(Domain::kSim, 1, "seed_filter");
  session.set_track_name(Domain::kHost, 0, "sweep worker 0");
  const auto names = session.track_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names.at({0, 1}), "seed_filter");
  EXPECT_EQ(names.at({1, 0}), "sweep worker 0");
}

TEST_F(TraceSessionTest, HostClockIsMonotonic) {
  auto& session = TraceSession::global();
  const double first = session.host_now_us();
  const double second = session.host_now_us();
  EXPECT_GE(second, first);
  EXPECT_GE(first, 0.0);
}

TEST(ObsSwitch, InstrumentationFlagMatchesBuild) {
#if RIPPLE_OBS
  EXPECT_TRUE(instrumentation_compiled());
#else
  EXPECT_FALSE(instrumentation_compiled());
#endif
}

}  // namespace
}  // namespace ripple::obs
