// Closed-loop convergence: replay_trace() drives the controller against
// synthetic rate-step / rate-ramp / overload traces in virtual time and the
// steady-state plan is compared against the offline oracle (a cold solve at
// the true post-change rate's operating point).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "arrivals/nonstationary.hpp"
#include "core/enforced_waits.hpp"
#include "dist/gain.hpp"
#include "sdf/pipeline.hpp"
#include "service/replay.hpp"

namespace ripple::service {
namespace {

// Same pipeline as the control tests: L = {20, 10, 10}, optimistic
// b = {2, 1, 1}, minimal budget 60, feasibility floor tau0 = 5.
sdf::PipelineSpec make_spec() {
  auto spec = sdf::PipelineBuilder("svc")
                  .simd_width(4)
                  .add_node("expand", 8.0, dist::make_deterministic(2))
                  .add_node("filter", 6.0, dist::make_deterministic(1))
                  .add_node("sink", 10.0, nullptr)
                  .build();
  EXPECT_TRUE(spec.ok());
  return spec.value();
}

ReplayConfig base_config() {
  ReplayConfig config;
  config.deadline = 600.0;
  config.initial_tau0 = 20.0;
  config.chunk_items = 128;
  config.chunks = 48;
  config.sessions = 4;
  config.seed = 7;
  return config;
}

// The offline oracle: a cold solve at the plan's own operating point must
// reproduce the closed loop's steady-state schedule bit-for-bit (the warm
// starts may not change the solution).
void expect_plan_matches_cold_solve(const sdf::PipelineSpec& spec,
                                    const control::PlanPtr& plan,
                                    Cycles deadline) {
  const core::EnforcedWaitsStrategy oracle(
      spec, core::EnforcedWaitsConfig::optimistic(spec));
  const auto solved = oracle.solve(plan->planned_tau0, deadline);
  ASSERT_TRUE(solved.ok());
  const auto& warm = plan->schedule.firing_intervals;
  const auto& cold = solved.value().firing_intervals;
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i], cold[i]) << "node " << i;
  }
}

TEST(ReplayTest, RateStepConvergesToOracle) {
  const sdf::PipelineSpec spec = make_spec();
  // Gap 20 for ~8 chunks of virtual time, then a step to gap 10.
  auto rate = std::make_shared<arrivals::PiecewiseConstantRate>(
      std::vector<Cycles>{0.0, 20000.0}, std::vector<double>{0.05, 0.1});
  arrivals::VariableRateArrivals offered(rate);
  const ReplayConfig config = base_config();
  const ReplayReport report = replay_trace(spec, offered, config);

  ASSERT_EQ(report.chunks.size(), config.chunks);
  EXPECT_EQ(report.total_offered, config.chunks * config.chunk_items);

  // Both rates are feasible (gaps 20 and 10 vs floor 5): nothing is ever
  // shed and every session stays admitted.
  EXPECT_EQ(report.total_shed, 0u);
  EXPECT_EQ(report.total_admitted, report.total_offered);
  for (const ReplayChunk& chunk : report.chunks) {
    EXPECT_FALSE(chunk.shedding);
    EXPECT_EQ(chunk.admitted_sessions, config.sessions);
  }

  // The loop re-planned at least once and epochs never ran backwards.
  EXPECT_GE(report.controller.replans, 1u);
  for (std::size_t i = 1; i < report.chunks.size(); ++i) {
    EXPECT_GE(report.chunks[i].plan_epoch, report.chunks[i - 1].plan_epoch);
  }

  // Steady state: the plan's operating point sits within the hysteresis band
  // of the true post-step gap, and the schedule is exactly what the offline
  // oracle produces at that operating point.
  ASSERT_NE(report.final_plan, nullptr);
  EXPECT_NEAR(report.final_plan->planned_tau0, 10.0, 0.06 * 10.0);
  expect_plan_matches_cold_solve(spec, report.final_plan, config.deadline);

  // After convergence the plan serves the offered rate: no misses in the
  // last quarter of the replay.
  for (std::size_t i = report.chunks.size() - report.chunks.size() / 4;
       i < report.chunks.size(); ++i) {
    EXPECT_EQ(report.chunks[i].deadline_misses, 0u) << "chunk " << i;
    EXPECT_NEAR(report.chunks[i].mean_gap_offered, 10.0, 1e-9);
  }
}

TEST(ReplayTest, RateRampTracksAndConverges) {
  const sdf::PipelineSpec spec = make_spec();
  // Ramp from gap 20 (rate 0.05) to gap 8 (rate 0.125) over 40000 cycles of
  // virtual time, then hold.
  auto rate = std::make_shared<arrivals::LinearRampRate>(0.05, 0.125, 40000.0);
  arrivals::VariableRateArrivals offered(rate);
  ReplayConfig config = base_config();
  config.chunks = 64;
  const ReplayReport report = replay_trace(spec, offered, config);

  EXPECT_EQ(report.total_shed, 0u);
  EXPECT_EQ(report.total_misses, 0u);  // the ramp never outruns the floor
  // Multiple re-plans as the target walks down the ramp.
  EXPECT_GE(report.controller.replans, 2u);

  ASSERT_NE(report.final_plan, nullptr);
  EXPECT_NEAR(report.final_plan->planned_tau0, 8.0, 0.06 * 8.0);
  expect_plan_matches_cold_solve(spec, report.final_plan, config.deadline);

  const ReplayChunk& last = report.chunks.back();
  EXPECT_NEAR(last.mean_gap_offered, 8.0, 1e-9);
  EXPECT_EQ(last.deadline_misses, 0u);
}

TEST(ReplayTest, OverloadShedsOnlyWhileInfeasibleAndRecovers) {
  const sdf::PipelineSpec spec = make_spec();
  // Feasible (gap 20) -> overload (gap 2, rate 0.5 vs feasible 0.2) ->
  // recovery (gap 20 again).
  auto rate = std::make_shared<arrivals::PiecewiseConstantRate>(
      std::vector<Cycles>{0.0, 10000.0, 20000.0},
      std::vector<double>{0.05, 0.5, 0.05});
  arrivals::VariableRateArrivals offered(rate);
  ReplayConfig config = base_config();
  config.chunks = 64;
  const ReplayReport report = replay_trace(spec, offered, config);

  // Shedding happened, and only in chunks whose offered rate was infeasible
  // (mean gap below the floor of 5, modulo the estimator's lag by one chunk
  // on either side of each step).
  EXPECT_GT(report.total_shed, 0u);
  EXPECT_GT(report.controller.shed_ticks, 0u);
  std::size_t shed_chunks = 0;
  for (std::size_t i = 0; i < report.chunks.size(); ++i) {
    const ReplayChunk& chunk = report.chunks[i];
    if (chunk.shed > 0) {
      ++shed_chunks;
      // A shedding cut of 1-in-4 sessions: the admitted stream (mean gap 8)
      // fits under the floor-clamped plan, so shed chunks still meet the
      // deadline.
      EXPECT_EQ(chunk.admitted_sessions, 1u) << "chunk " << i;
      EXPECT_EQ(chunk.shed, chunk.offered - chunk.admitted);
    }
  }
  EXPECT_GT(shed_chunks, 4u);

  // While clamped to the floor the plan operates at ~floor_tau0.
  bool saw_floor_plan = false;
  for (const ReplayChunk& chunk : report.chunks) {
    if (chunk.shedding) {
      EXPECT_NEAR(chunk.planned_tau0, 5.0, 0.01);
      saw_floor_plan = true;
    }
  }
  EXPECT_TRUE(saw_floor_plan);

  // Recovery: the tail of the replay is back to gap 20, fully admitted, no
  // shedding, no misses.
  ASSERT_NE(report.final_plan, nullptr);
  EXPECT_FALSE(report.final_plan->shedding);
  EXPECT_NEAR(report.final_plan->planned_tau0, 20.0, 0.06 * 20.0);
  expect_plan_matches_cold_solve(spec, report.final_plan, config.deadline);
  for (std::size_t i = report.chunks.size() - 6; i < report.chunks.size();
       ++i) {
    EXPECT_FALSE(report.chunks[i].shedding) << "chunk " << i;
    EXPECT_EQ(report.chunks[i].shed, 0u) << "chunk " << i;
    EXPECT_EQ(report.chunks[i].admitted_sessions, config.sessions);
    EXPECT_EQ(report.chunks[i].deadline_misses, 0u) << "chunk " << i;
  }
}

TEST(ReplayTest, StochasticReplayIsDeterministic) {
  const sdf::PipelineSpec spec = make_spec();
  const ReplayConfig config = base_config();

  auto rate = std::make_shared<arrivals::SinusoidalRate>(0.08, 0.03, 30000.0);
  arrivals::ThinningArrivals first(rate);
  const ReplayReport a = replay_trace(spec, first, config);
  arrivals::ThinningArrivals second(rate);
  const ReplayReport b = replay_trace(spec, second, config);

  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t i = 0; i < a.chunks.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.chunks[i].mean_gap_offered, b.chunks[i].mean_gap_offered);
    ASSERT_DOUBLE_EQ(a.chunks[i].tau0_estimate, b.chunks[i].tau0_estimate);
    ASSERT_DOUBLE_EQ(a.chunks[i].planned_tau0, b.chunks[i].planned_tau0);
    ASSERT_EQ(a.chunks[i].plan_epoch, b.chunks[i].plan_epoch);
    ASSERT_EQ(a.chunks[i].deadline_misses, b.chunks[i].deadline_misses);
    ASSERT_DOUBLE_EQ(a.chunks[i].worst_latency, b.chunks[i].worst_latency);
  }
  ASSERT_EQ(a.final_plan->epoch, b.final_plan->epoch);
  ASSERT_EQ(a.final_plan->schedule.firing_intervals,
            b.final_plan->schedule.firing_intervals);
}

TEST(ReplayTest, MalformedConfigThrows) {
  const sdf::PipelineSpec spec = make_spec();
  auto rate = std::make_shared<arrivals::PiecewiseConstantRate>(
      std::vector<Cycles>{0.0}, std::vector<double>{0.05});
  arrivals::VariableRateArrivals offered(rate);

  ReplayConfig no_chunks = base_config();
  no_chunks.chunks = 0;
  EXPECT_THROW(replay_trace(spec, offered, no_chunks), std::logic_error);

  ReplayConfig no_items = base_config();
  no_items.chunk_items = 0;
  EXPECT_THROW(replay_trace(spec, offered, no_items), std::logic_error);

  ReplayConfig no_sessions = base_config();
  no_sessions.sessions = 0;
  EXPECT_THROW(replay_trace(spec, offered, no_sessions), std::logic_error);

  // A deadline below the minimal budget is a configuration error surfaced
  // at controller construction.
  ReplayConfig bad_deadline = base_config();
  bad_deadline.deadline = 50.0;
  EXPECT_THROW(replay_trace(spec, offered, bad_deadline), std::logic_error);
}

}  // namespace
}  // namespace ripple::service
