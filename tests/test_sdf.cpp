#include <gtest/gtest.h>

#include <cmath>

#include "blast/canonical.hpp"
#include "dist/gain.hpp"
#include "sdf/analysis.hpp"
#include "sdf/pipeline.hpp"

namespace ripple::sdf {
namespace {

PipelineSpec two_stage(double g0 = 0.5, Cycles t0 = 100.0, Cycles t1 = 50.0) {
  auto spec = PipelineBuilder("two")
                  .simd_width(8)
                  .add_node("a", t0, dist::make_bernoulli(g0))
                  .add_node("b", t1, dist::make_deterministic(1))
                  .build();
  return std::move(spec).take();
}

TEST(PipelineBuilder, RejectsEmptyPipeline) {
  auto spec = PipelineBuilder("x").build();
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.error().code, "empty");
}

TEST(PipelineBuilder, RejectsZeroWidth) {
  auto spec = PipelineBuilder("x")
                  .simd_width(0)
                  .add_node("a", 1.0, dist::make_deterministic(1))
                  .build();
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.error().code, "bad_width");
}

TEST(PipelineBuilder, RejectsNonPositiveServiceTime) {
  auto spec = PipelineBuilder("x")
                  .add_node("a", 0.0, dist::make_deterministic(1))
                  .build();
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.error().code, "bad_service");
}

TEST(PipelineBuilder, RejectsMissingGainOnNonTerminal) {
  auto spec = PipelineBuilder("x")
                  .add_node("a", 1.0, nullptr)
                  .add_node("b", 1.0, nullptr)
                  .build();
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.error().code, "missing_gain");
}

TEST(PipelineBuilder, TerminalNodeMayOmitGain) {
  auto spec = PipelineBuilder("x")
                  .add_node("a", 1.0, dist::make_deterministic(1))
                  .add_node("sink", 1.0, nullptr)
                  .build();
  EXPECT_TRUE(spec.ok());
}

TEST(PipelineSpec, DefaultsToPaperWidth) {
  auto spec = PipelineBuilder("x")
                  .add_node("a", 1.0, dist::make_deterministic(1))
                  .build();
  EXPECT_EQ(spec.value().simd_width(), 128u);
}

TEST(PipelineSpec, TotalGainsCompound) {
  const auto blast = blast::canonical_blast_pipeline();
  EXPECT_DOUBLE_EQ(blast.total_gain_into(0), 1.0);
  EXPECT_DOUBLE_EQ(blast.total_gain_into(1), 0.379);
  EXPECT_NEAR(blast.total_gain_into(2), 0.379 * 1.92, 1e-9);
  EXPECT_NEAR(blast.total_gain_into(3), 0.379 * 1.92 * 0.0332, 1e-9);
}

TEST(PipelineSpec, MeanServicePerInput) {
  // Hand computation for the Table 1 pipeline.
  const auto blast = blast::canonical_blast_pipeline();
  const double expected = (287.0 * 1.0 + 955.0 * 0.379 + 402.0 * 0.379 * 1.92 +
                           2753.0 * 0.379 * 1.92 * 0.0332) /
                          128.0;
  EXPECT_NEAR(blast.mean_service_per_input(), expected, 1e-6);
}

TEST(PipelineSpec, NodeIndexOutOfRangeThrows) {
  const auto spec = two_stage();
  EXPECT_THROW((void)spec.node(2), std::logic_error);
  EXPECT_THROW((void)spec.service_time(5), std::logic_error);
}

TEST(MinimalFiringIntervals, ServiceBoundDominatesWithSmallGain) {
  // g = 0.5: L_0 = max(100, 0.5 * 50) = 100.
  const auto spec = two_stage(0.5, 100.0, 50.0);
  const auto lower = minimal_firing_intervals(spec);
  EXPECT_DOUBLE_EQ(lower[0], 100.0);
  EXPECT_DOUBLE_EQ(lower[1], 50.0);
}

TEST(MinimalFiringIntervals, ChainBoundDominatesWithLargeGain) {
  // g = 4: node 1 must fire 4x as often as node 0 can supply; L_0 = 4 * t_1.
  auto spec = PipelineBuilder("expand")
                  .simd_width(8)
                  .add_node("a", 10.0, dist::make_censored_poisson(4.0, 100))
                  .add_node("b", 50.0, dist::make_deterministic(1))
                  .build();
  const auto lower = minimal_firing_intervals(spec.value());
  const double g = spec.value().mean_gain(0);
  EXPECT_NEAR(lower[0], g * 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(lower[1], 50.0);
}

TEST(MinimalFiringIntervals, PaperPipelineValues) {
  // Backward recursion on Table 1: L_3 = 2753, L_2 = max(402, .0332*2753),
  // L_1 = max(955, 1.92*402), L_0 = max(287, .379*955).
  const auto blast = blast::canonical_blast_pipeline();
  const auto lower = minimal_firing_intervals(blast);
  EXPECT_DOUBLE_EQ(lower[3], 2753.0);
  EXPECT_DOUBLE_EQ(lower[2], 402.0);
  EXPECT_NEAR(lower[1], 955.0, 1e-9);           // 1.92*402 = 771.8 < 955
  EXPECT_NEAR(lower[0], 0.379 * 955.0, 1e-9);   // 362.0 > 287
}

TEST(MinimalDeadlineBudget, PaperPipelineWithCalibratedB) {
  const auto blast = blast::canonical_blast_pipeline();
  const auto budget = minimal_deadline_budget(blast, {1.0, 3.0, 9.0, 6.0});
  // 362.0 + 3*955 + 9*402 + 6*2753 = 23363 (approximately).
  EXPECT_NEAR(budget, 0.379 * 955.0 + 3 * 955.0 + 9 * 402.0 + 6 * 2753.0, 1e-6);
  // The paper's observation: no feasible realization below D = 2e4 — indeed
  // the minimal budget exceeds 2e4.
  EXPECT_GT(budget, 2e4);
}

TEST(MinimalDeadlineBudget, WrongBSizeThrows) {
  const auto spec = two_stage();
  EXPECT_THROW((void)minimal_deadline_budget(spec, {1.0}), std::logic_error);
}

TEST(MinInterarrival, EnforcedMatchesHandComputation) {
  const auto blast = blast::canonical_blast_pipeline();
  EXPECT_NEAR(min_interarrival_enforced(blast), 0.379 * 955.0 / 128.0, 1e-9);
}

TEST(MinInterarrival, MonolithicIsMeanServicePerInput) {
  const auto blast = blast::canonical_blast_pipeline();
  EXPECT_DOUBLE_EQ(min_interarrival_monolithic(blast),
                   blast.mean_service_per_input());
  // ~7.87 cycles for Table 1: monolithic cannot sustain tau0 below that.
  EXPECT_NEAR(min_interarrival_monolithic(blast), 7.87, 0.05);
}

TEST(MaximalFiringIntervals, ScaleWithTau0) {
  const auto spec = two_stage(0.5);
  const auto at10 = maximal_firing_intervals(spec, 10.0);
  const auto at20 = maximal_firing_intervals(spec, 20.0);
  EXPECT_DOUBLE_EQ(at10[0], 8 * 10.0);
  EXPECT_DOUBLE_EQ(at20[0], 8 * 20.0);
  EXPECT_DOUBLE_EQ(at10[1], at10[0] / 0.5);
}

TEST(MaximalFiringIntervals, ZeroGainUnbounded) {
  auto spec = PipelineBuilder("dead-end")
                  .simd_width(4)
                  .add_node("a", 1.0, dist::make_bernoulli(0.0))
                  .add_node("b", 1.0, dist::make_deterministic(1))
                  .build();
  const auto upper = maximal_firing_intervals(spec.value(), 1.0);
  EXPECT_TRUE(std::isinf(upper[1]));
}

TEST(UnconstrainedActiveFraction, DecreasesWithTau0) {
  const auto blast = blast::canonical_blast_pipeline();
  const double af10 = unconstrained_active_fraction(blast, 10.0);
  const double af100 = unconstrained_active_fraction(blast, 100.0);
  EXPECT_LT(af100, af10);
  EXPECT_GT(af10, 0.0);
}

TEST(UnconstrainedActiveFraction, InfeasibleRateGivesOne) {
  const auto blast = blast::canonical_blast_pipeline();
  // tau0 = 1: v * tau0 = 128 < t_0 = 287, so node 0 can't keep up.
  EXPECT_DOUBLE_EQ(unconstrained_active_fraction(blast, 1.0), 1.0);
}

}  // namespace
}  // namespace ripple::sdf
