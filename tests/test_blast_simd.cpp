// Golden tests for the vectorized BLAST kernels: every registered variant —
// AVX2, AVX-512, and the lanes4 (NEON-portable) bodies — must agree with the
// scalar fallbacks output for output: same survivors, same scores, same
// emission order. Pins above the host's capability clamp down, so on hosts
// (or builds) without an ISA that pin resolves to the next level and the
// comparisons hold trivially; the lanes4 bodies are driven directly through
// their portable backend so the NEON port's arithmetic is covered on x86.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "blast/simd_kernels.hpp"
#include "blast/simd_kernels_detail.hpp"
#include "blast/stages.hpp"
#include "device/dispatch.hpp"
#include "dist/rng.hpp"
#include "runtime/lane_batch.hpp"

namespace ripple::blast {
namespace {

using device::SimdLevel;

/// Pin the dispatch level for one scope.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    device::set_simd_override(level);
  }
  ~ScopedSimdLevel() { device::set_simd_override(std::nullopt); }
};

struct Fixture {
  SequencePair pair;
  BlastStages::Config config;
  BlastStages stages;

  explicit Fixture(std::uint64_t seed, std::size_t subject_len = 1 << 13,
                   std::size_t query_len = 1 << 11)
      : pair(make_pair(seed, subject_len, query_len)),
        stages(pair, config) {}

  static SequencePair make_pair(std::uint64_t seed, std::size_t subject_len,
                                std::size_t query_len) {
    dist::Xoshiro256 rng(seed);
    SequencePairConfig pair_config;
    pair_config.subject_length = subject_len;
    pair_config.query_length = query_len;
    pair_config.homology_count = 8;
    pair_config.homology_length = 256;
    return make_sequence_pair(pair_config, rng);
  }

  std::vector<std::uint32_t> all_positions() const {
    std::vector<std::uint32_t> pos(stages.input_count());
    for (std::uint32_t i = 0; i < pos.size(); ++i) pos[i] = i;
    return pos;
  }
};

std::vector<std::uint32_t> run_encode(const Fixture& f, SimdLevel level) {
  ScopedSimdLevel pin(level);
  const auto pos = f.all_positions();
  std::vector<std::uint32_t> codes(pos.size());
  simd::encode_kmers_batch(f.pair.subject, f.config.k, pos.data(), pos.size(),
                           codes.data());
  return codes;
}

TEST(BlastSimd, EncodeMatchesScalarReference) {
  const Fixture f(7);
  const auto pos = f.all_positions();
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    const auto codes = run_encode(f, level);
    for (std::size_t i = 0; i < pos.size(); i += 97) {
      EXPECT_EQ(codes[i], encode_kmer(f.pair.subject, pos[i], f.config.k))
          << "lane " << i << " under " << device::to_string(level);
    }
  }
}

TEST(BlastSimd, EncodeVectorLevelsBitIdenticalToScalar) {
  const Fixture f(11);
  const auto scalar = run_encode(f, SimdLevel::kScalar);
  EXPECT_EQ(scalar, run_encode(f, SimdLevel::kAvx2));
  EXPECT_EQ(scalar, run_encode(f, SimdLevel::kAvx512));
}

struct EmitterSnapshot {
  std::vector<std::uint32_t> counts;
  std::vector<std::vector<std::uint32_t>> columns;

  static EmitterSnapshot of(const runtime::BatchEmitter& emitter,
                            std::size_t fields) {
    EmitterSnapshot snap;
    snap.counts.assign(emitter.counts(), emitter.counts() + emitter.lanes());
    snap.columns.resize(fields);
    for (std::size_t fld = 0; fld < fields; ++fld) {
      snap.columns[fld].assign(emitter.column(fld),
                               emitter.column(fld) + emitter.total());
    }
    return snap;
  }

  bool operator==(const EmitterSnapshot& other) const {
    return counts == other.counts && columns == other.columns;
  }
};

template <typename Kernel>
EmitterSnapshot run_kernel(SimdLevel level, std::size_t lanes,
                           std::size_t fields, Kernel&& kernel) {
  ScopedSimdLevel pin(level);
  runtime::BatchEmitter emitter;
  emitter.reset(lanes, fields, false);
  kernel(emitter);
  return EmitterSnapshot::of(emitter, fields);
}

TEST(BlastSimd, SeedFilterBitIdenticalAcrossLevels) {
  const Fixture f(23);
  const auto pos = f.all_positions();
  const auto run = [&](SimdLevel level) {
    return run_kernel(level, pos.size(), 1, [&](runtime::BatchEmitter& out) {
      simd::seed_filter_batch(f.stages, pos.data(), pos.size(), out);
    });
  };
  const EmitterSnapshot scalar = run(SimdLevel::kScalar);
  EXPECT_TRUE(scalar == run(SimdLevel::kAvx2));
  EXPECT_TRUE(scalar == run(SimdLevel::kAvx512));

  // And the scalar batch agrees with the per-item stage.
  std::size_t survivors = 0;
  StageCost cost;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const bool hit = f.stages.seed_match(pos[i], cost);
    EXPECT_EQ(scalar.counts[i], hit ? 1u : 0u) << "lane " << i;
    survivors += hit ? 1u : 0u;
  }
  EXPECT_EQ(scalar.columns[0].size(), survivors);
  EXPECT_GT(survivors, 0u) << "fixture produced no seed hits; weak test";
}

TEST(BlastSimd, ExpandSeedMatchesPerItemStage) {
  const Fixture f(31);
  const auto pos = f.all_positions();
  const auto snap =
      run_kernel(SimdLevel::kAvx2, pos.size(), 2,
                 [&](runtime::BatchEmitter& out) {
                   simd::expand_seed_batch(f.stages, pos.data(), pos.size(),
                                           out);
                 });
  std::size_t out_index = 0;
  StageCost cost;
  for (std::size_t lane = 0; lane < pos.size(); ++lane) {
    const auto hits = f.stages.expand_seed(pos[lane], cost);
    ASSERT_EQ(snap.counts[lane], hits.size()) << "lane " << lane;
    for (const HitItem& hit : hits) {
      EXPECT_EQ(snap.columns[0][out_index], hit.subject_pos);
      EXPECT_EQ(snap.columns[1][out_index], hit.query_pos);
      ++out_index;
    }
  }
  EXPECT_EQ(out_index, snap.columns[0].size());
}

TEST(BlastSimd, UngappedExtendBitIdenticalAcrossLevels) {
  const Fixture f(43);
  // Feed every (subject, query) hit pair the expansion stage would produce.
  std::vector<std::uint32_t> sp;
  std::vector<std::uint32_t> qp;
  StageCost cost;
  for (std::uint32_t pos = 0; pos < f.stages.input_count(); ++pos) {
    for (const HitItem& hit : f.stages.expand_seed(pos, cost)) {
      sp.push_back(hit.subject_pos);
      qp.push_back(hit.query_pos);
    }
  }
  ASSERT_GT(sp.size(), 100u) << "fixture produced too few hits; weak test";

  const auto run = [&](SimdLevel level) {
    return run_kernel(level, sp.size(), 3, [&](runtime::BatchEmitter& out) {
      simd::ungapped_extend_batch(f.stages, sp.data(), qp.data(), sp.size(),
                                  out);
    });
  };
  const EmitterSnapshot scalar = run(SimdLevel::kScalar);
  EXPECT_TRUE(scalar == run(SimdLevel::kAvx2));
  EXPECT_TRUE(scalar == run(SimdLevel::kAvx512));

  // The lanes4 (NEON-portable) body, driven directly: bit-identical too.
  {
    runtime::BatchEmitter emitter;
    emitter.reset(sp.size(), 3, false);
    simd::detail::ungapped_extend_lanes4(f.stages, sp.data(), qp.data(),
                                         sp.size(), emitter);
    EXPECT_TRUE(scalar == EmitterSnapshot::of(emitter, 3));
  }

  // Scalar batch agrees with the per-item stage, score for score.
  std::size_t out_index = 0;
  for (std::size_t lane = 0; lane < sp.size(); ++lane) {
    const auto extended =
        f.stages.ungapped_extend(HitItem{sp[lane], qp[lane]}, cost);
    ASSERT_EQ(scalar.counts[lane], extended.has_value() ? 1u : 0u)
        << "lane " << lane;
    if (extended.has_value()) {
      EXPECT_EQ(scalar.columns[0][out_index], extended->subject_pos);
      EXPECT_EQ(scalar.columns[1][out_index], extended->query_pos);
      EXPECT_EQ(runtime::field_to_i32(scalar.columns[2][out_index]),
                extended->ungapped_score);
      ++out_index;
    }
  }
  EXPECT_GT(out_index, 0u) << "no hits passed the threshold; weak test";
}

TEST(BlastSimd, GappedExtendBitIdenticalAcrossLevels) {
  const Fixture f(61);
  // Feed the gapped stage exactly what the upstream stages produce: expanded
  // hits that survived ungapped extension, scores included.
  std::vector<std::uint32_t> sp;
  std::vector<std::uint32_t> qp;
  std::vector<std::uint32_t> score;
  StageCost cost;
  for (std::uint32_t pos = 0; pos < f.stages.input_count(); ++pos) {
    for (const HitItem& hit : f.stages.expand_seed(pos, cost)) {
      if (const auto extended = f.stages.ungapped_extend(hit, cost)) {
        sp.push_back(extended->subject_pos);
        qp.push_back(extended->query_pos);
        score.push_back(runtime::field_from_i32(extended->ungapped_score));
      }
    }
  }
  ASSERT_GT(sp.size(), 50u) << "fixture produced too few survivors; weak test";

  const auto run = [&](SimdLevel level) {
    return run_kernel(level, sp.size(), 3, [&](runtime::BatchEmitter& out) {
      simd::gapped_extend_batch(f.stages, sp.data(), qp.data(), score.data(),
                                sp.size(), out);
    });
  };
  const EmitterSnapshot scalar = run(SimdLevel::kScalar);
  EXPECT_TRUE(scalar == run(SimdLevel::kAvx2));
  EXPECT_TRUE(scalar == run(SimdLevel::kAvx512));

  // The lanes4 (NEON-portable) body, driven directly: bit-identical too.
  {
    runtime::BatchEmitter emitter;
    emitter.reset(sp.size(), 3, false);
    simd::detail::gapped_extend_lanes4(f.stages, sp.data(), qp.data(),
                                       score.data(), sp.size(), emitter);
    EXPECT_TRUE(scalar == EmitterSnapshot::of(emitter, 3));
  }

  // Scalar batch agrees with the per-item stage, score for score (covers
  // window clamping at both sequence edges via the fixture's full scan).
  for (std::size_t lane = 0; lane < sp.size(); ++lane) {
    const Alignment alignment = f.stages.gapped_extend(
        ExtendedHit{sp[lane], qp[lane],
                    runtime::field_to_i32(score[lane])},
        cost);
    ASSERT_EQ(scalar.counts[lane], 1u) << "lane " << lane;
    EXPECT_EQ(scalar.columns[0][lane], alignment.subject_pos);
    EXPECT_EQ(scalar.columns[1][lane], alignment.query_pos);
    EXPECT_EQ(runtime::field_to_i32(scalar.columns[2][lane]),
              alignment.score)
        << "lane " << lane;
  }
}

TEST(BlastSimd, OddKmerLengthFallsBackToScalar) {
  // k = 7 is not word-aligned, so the x86 word-gather pins must still
  // produce scalar results (the wrappers reject the shape and fall back).
  dist::Xoshiro256 rng(57);
  SequencePairConfig pair_config;
  pair_config.subject_length = 4096;
  pair_config.query_length = 1024;
  const auto pair = make_sequence_pair(pair_config, rng);
  BlastStages::Config config;
  config.k = 7;
  const BlastStages stages(pair, config);
  std::vector<std::uint32_t> pos(stages.input_count());
  for (std::uint32_t i = 0; i < pos.size(); ++i) pos[i] = i;

  const auto run = [&](SimdLevel level) {
    return run_kernel(level, pos.size(), 1, [&](runtime::BatchEmitter& out) {
      simd::seed_filter_batch(stages, pos.data(), pos.size(), out);
    });
  };
  const EmitterSnapshot scalar = run(SimdLevel::kScalar);
  EXPECT_TRUE(scalar == run(SimdLevel::kAvx2));
  EXPECT_TRUE(scalar == run(SimdLevel::kAvx512));
}

}  // namespace
}  // namespace ripple::blast
