// Unit tests for the function-level SIMD dispatch registry
// (device/kernel_registry.hpp): registration validation, resolution policy
// (capability caps, per-kernel overrides, unsupported-ISA fallback),
// deterministic autotune, and the docs/KERNELS.md catalog sync check.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>

#include "blast/simd_kernels.hpp"
#include "cascade/simd_kernels.hpp"
#include "device/dispatch.hpp"
#include "device/kernel_registry.hpp"

namespace ripple::device {
namespace {

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { set_simd_override(level); }
  ~ScopedSimdLevel() { set_simd_override(std::nullopt); }
};

// A tiny concrete kernel signature for registry-only tests.
using TestFn = void (*)(int*);
std::atomic<int> scalar_calls{0};
std::atomic<int> vector_calls{0};
void test_scalar(int* out) {
  ++scalar_calls;
  *out = 1;
}
void test_vector(int* out) {
  ++vector_calls;
  *out = 2;
}
AnyKernelFn erase(TestFn fn) { return reinterpret_cast<AnyKernelFn>(fn); }

/// A vector level this binary/host cannot run: NEON on x86, AVX2 on ARM.
SimdLevel unsupported_level() {
  return level_supported(SimdLevel::kNeon) ? SimdLevel::kAvx2
                                           : SimdLevel::kNeon;
}

TEST(KernelRegistry, DuplicateRegistrationRejected) {
  KernelRegistry registry;
  registry.register_variant("k", "test", SimdLevel::kScalar, 1,
                            erase(&test_scalar));
  EXPECT_THROW(registry.register_variant("k", "test", SimdLevel::kScalar, 1,
                                         erase(&test_vector)),
               std::logic_error);
}

TEST(KernelRegistry, RegistrationValidation) {
  KernelRegistry registry;
  EXPECT_THROW(
      registry.register_variant("k", "test", SimdLevel::kScalar, 1, nullptr),
      std::logic_error);
  EXPECT_THROW(registry.register_variant("k", "test", SimdLevel::kScalar, 4,
                                         erase(&test_scalar)),
               std::logic_error);
  EXPECT_THROW(registry.register_variant("k", "test", SimdLevel::kAvx2, 0,
                                         erase(&test_vector)),
               std::logic_error);
}

TEST(KernelRegistry, ResolveRequiresScalarBaseline) {
  KernelRegistry registry;
  EXPECT_THROW(registry.resolve("missing"), std::logic_error);
  registry.register_variant("k", "test", SimdLevel::kAvx2, 8,
                            erase(&test_vector));
  EXPECT_THROW(registry.resolve("k"), std::logic_error);
}

TEST(KernelRegistry, UnsupportedIsaFallsBackToScalar) {
  KernelRegistry registry;
  registry.register_variant("k", "test", SimdLevel::kScalar, 1,
                            erase(&test_scalar));
  registry.register_variant("k", "test", unsupported_level(), 4,
                            erase(&test_vector));
  const KernelVariant variant = registry.resolve("k");
  EXPECT_EQ(variant.level, SimdLevel::kScalar);
  EXPECT_EQ(variant.lanes, 1u);
  EXPECT_EQ(variant.fn, erase(&test_scalar));
}

TEST(KernelRegistry, ResolvesHighestSupportedLevel) {
  KernelRegistry registry;
  registry.register_variant("k", "test", SimdLevel::kScalar, 1,
                            erase(&test_scalar));
  const SimdLevel best = active_simd_level();
  if (best == SimdLevel::kScalar) {
    GTEST_SKIP() << "host runs scalar only; nothing to prefer";
  }
  registry.register_variant("k", "test", best, 8, erase(&test_vector));
  EXPECT_EQ(registry.resolved_level("k"), best);
}

TEST(KernelRegistry, PerKernelOverrideClampsThatKernelOnly) {
  KernelRegistry registry;
  for (const char* name : {"a", "b"}) {
    registry.register_variant(name, "test", SimdLevel::kScalar, 1,
                              erase(&test_scalar));
  }
  const SimdLevel best = active_simd_level();
  if (best == SimdLevel::kScalar) {
    GTEST_SKIP() << "host runs scalar only; overrides cannot move anything";
  }
  registry.register_variant("a", "test", best, 8, erase(&test_vector));
  registry.register_variant("b", "test", best, 8, erase(&test_vector));

  registry.set_kernel_override("a", SimdLevel::kScalar);
  EXPECT_EQ(registry.resolved_level("a"), SimdLevel::kScalar);
  EXPECT_EQ(registry.resolved_level("b"), best);
  EXPECT_EQ(registry.kernel_override("a"), SimdLevel::kScalar);

  // Pinning above capability clamps by min(): kAvx512 on any host resolves
  // the best supported variant, never an unrunnable one.
  registry.set_kernel_override("a", SimdLevel::kAvx512);
  EXPECT_EQ(registry.resolved_level("a"), best);

  registry.set_kernel_override("a", std::nullopt);
  EXPECT_EQ(registry.resolved_level("a"), best);
  EXPECT_FALSE(registry.kernel_override("a").has_value());
}

TEST(KernelRegistry, GlobalOverrideCapsResolution) {
  KernelRegistry registry;
  registry.register_variant("k", "test", SimdLevel::kScalar, 1,
                            erase(&test_scalar));
  const SimdLevel best = active_simd_level();
  if (best == SimdLevel::kScalar) {
    GTEST_SKIP() << "host runs scalar only";
  }
  registry.register_variant("k", "test", best, 8, erase(&test_vector));
  ScopedSimdLevel pin(SimdLevel::kScalar);
  EXPECT_EQ(registry.resolved_level("k"), SimdLevel::kScalar);
}

TEST(KernelRegistry, DispatchGenerationMovesOnEveryChange) {
  KernelRegistry registry;
  std::uint64_t generation = dispatch_generation();
  const auto expect_bumped = [&generation](const char* what) {
    const std::uint64_t now = dispatch_generation();
    EXPECT_GT(now, generation) << what;
    generation = now;
  };
  registry.register_variant("k", "test", SimdLevel::kScalar, 1,
                            erase(&test_scalar));
  expect_bumped("register_variant");
  registry.set_kernel_override("k", SimdLevel::kScalar);
  expect_bumped("set_kernel_override");
  set_simd_override(SimdLevel::kScalar);
  expect_bumped("set_simd_override");
  set_simd_override(std::nullopt);
  expect_bumped("release override");
}

std::uint64_t microbench_test(AnyKernelFn variant) {
  int out = 0;
  reinterpret_cast<TestFn>(variant)(&out);
  return 1024;
}

TEST(KernelRegistry, AutotuneMeasuresEverySupportedVariantDeterministically) {
  KernelRegistry registry;
  registry.register_variant("k", "test", SimdLevel::kScalar, 1,
                            erase(&test_scalar));
  const SimdLevel best = active_simd_level();
  if (best != SimdLevel::kScalar) {
    registry.register_variant("k", "test", best, 8, erase(&test_vector));
  }
  registry.set_microbench("k", &microbench_test);

  scalar_calls = 0;
  vector_calls = 0;
  AutotuneOptions options;
  options.repeats = 2;
  const AutotuneReport report = registry.autotune(options);
  ASSERT_EQ(report.kernels.size(), 1u);
  const AutotuneKernelReport& kernel = report.kernels[0];
  EXPECT_EQ(kernel.kernel, "k");
  const std::size_t expected_variants =
      best == SimdLevel::kScalar ? 1u : 2u;
  ASSERT_EQ(kernel.measured.size(), expected_variants);
  // Warmup + repeats per variant.
  EXPECT_EQ(scalar_calls.load(), 3);
  if (best != SimdLevel::kScalar) EXPECT_EQ(vector_calls.load(), 3);
  for (const AutotuneMeasurement& m : kernel.measured) {
    EXPECT_GT(m.ns_per_item, 0.0);
    EXPECT_TRUE(report.ns_per_item("k", m.level).has_value());
  }
  EXPECT_GE(report.wall_us, 0.0);

  // The winner is recorded and preferred; clear_autotune releases it.
  EXPECT_EQ(registry.autotuned_level("k"), kernel.winner);
  EXPECT_EQ(registry.resolved_level("k"), kernel.winner);
  registry.clear_autotune();
  EXPECT_FALSE(registry.autotuned_level("k").has_value());
}

TEST(KernelRegistry, AutotuneWithoutApplyLeavesResolutionAlone) {
  KernelRegistry registry;
  registry.register_variant("k", "test", SimdLevel::kScalar, 1,
                            erase(&test_scalar));
  registry.set_microbench("k", &microbench_test);
  AutotuneOptions options;
  options.apply = false;
  const AutotuneReport report = registry.autotune(options);
  EXPECT_EQ(report.kernels.size(), 1u);
  EXPECT_FALSE(registry.autotuned_level("k").has_value());
}

TEST(KernelRegistry, DumpListsEveryVariantSorted) {
  KernelRegistry registry;
  registry.register_variant("b.k", "b", SimdLevel::kScalar, 1,
                            erase(&test_scalar));
  registry.register_variant("a.k", "a", SimdLevel::kScalar, 1,
                            erase(&test_scalar));
  registry.register_variant("a.k", "a", unsupported_level(), 4,
                            erase(&test_vector));
  const std::vector<KernelCatalogRow> rows = registry.dump();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].kernel, "a.k");
  EXPECT_EQ(rows[0].level, SimdLevel::kScalar);
  EXPECT_TRUE(rows[0].supported);
  EXPECT_EQ(rows[1].kernel, "a.k");
  EXPECT_EQ(rows[1].level, unsupported_level());
  EXPECT_FALSE(rows[1].supported);
  EXPECT_EQ(rows[2].kernel, "b.k");
  EXPECT_EQ(registry.kernel_names(),
            (std::vector<std::string>{"a.k", "b.k"}));
}

/// docs/KERNELS.md's catalog table and the live registry must list exactly
/// the same kernel names — the doc cannot go stale without failing CI.
TEST(KernelRegistry, CatalogDocMatchesRegistryDump) {
  blast::simd::register_kernels();
  cascade::simd::register_kernels();

  const std::string path = std::string(RIPPLE_REPO_ROOT) + "/docs/KERNELS.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  const std::string doc = text.str();

  // Every registered kernel appears in the doc...
  const std::vector<std::string> names =
      KernelRegistry::instance().kernel_names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "docs/KERNELS.md is missing kernel `" << name << "`";
  }

  // ...and every catalog-table kernel cell names a registered kernel: rows
  // look like "| `blast.seed_probe` | ...".
  std::istringstream lines(doc);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("| `", 0) != 0) continue;
    const std::size_t end = line.find('`', 3);
    ASSERT_NE(end, std::string::npos) << line;
    const std::string name = line.substr(3, end - 3);
    ++rows;
    EXPECT_TRUE(KernelRegistry::instance().has_kernel(name))
        << "docs/KERNELS.md lists unknown kernel `" << name << "`";
  }
  EXPECT_EQ(rows, names.size())
      << "docs/KERNELS.md catalog table row count diverged from the registry";
}

}  // namespace
}  // namespace ripple::device
