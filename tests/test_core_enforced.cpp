#include "core/enforced_waits.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blast/canonical.hpp"
#include "opt/projected_gradient.hpp"
#include "sdf/analysis.hpp"

namespace ripple::core {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

EnforcedWaitsConfig paper_config() {
  return EnforcedWaitsConfig{blast::paper_calibrated_b()};
}

TEST(Config, OptimisticMatchesPaperRule) {
  // b_i = max(1, ceil(g_i)): {1, 2, 1, 1} for Table 1.
  const auto config = EnforcedWaitsConfig::optimistic(blast_pipeline());
  ASSERT_EQ(config.b.size(), 4u);
  EXPECT_DOUBLE_EQ(config.b[0], 1.0);
  EXPECT_DOUBLE_EQ(config.b[1], 2.0);
  EXPECT_DOUBLE_EQ(config.b[2], 1.0);
  EXPECT_DOUBLE_EQ(config.b[3], 1.0);
}

TEST(Strategy, RejectsMalformedB) {
  EXPECT_THROW(EnforcedWaitsStrategy(blast_pipeline(), EnforcedWaitsConfig{{1.0}}),
               std::logic_error);
  EXPECT_THROW(EnforcedWaitsStrategy(blast_pipeline(),
                                     EnforcedWaitsConfig{{1.0, 0.5, 1.0, 1.0}}),
               std::logic_error);
}

TEST(Feasibility, RateConstraintFrontier) {
  const EnforcedWaitsStrategy strategy(blast_pipeline(), paper_config());
  // Minimal x_0 = 0.379 * 955 = 361.9; rate needs v * tau0 >= x_0, so
  // tau0 >= 2.83 cycles.
  const double tau_min = 0.379 * 955.0 / 128.0;
  EXPECT_FALSE(strategy.is_feasible(tau_min - 0.01, 1e9));
  EXPECT_TRUE(strategy.is_feasible(tau_min + 0.01, 1e9));
}

TEST(Feasibility, DeadlineFrontierMatchesMinimalBudget) {
  const auto pipeline = blast_pipeline();
  const EnforcedWaitsStrategy strategy(pipeline, paper_config());
  const Cycles budget =
      sdf::minimal_deadline_budget(pipeline, paper_config().b);
  EXPECT_FALSE(strategy.is_feasible(50.0, budget - 1.0));
  EXPECT_TRUE(strategy.is_feasible(50.0, budget + 1.0));
  EXPECT_DOUBLE_EQ(strategy.min_feasible_deadline(50.0), budget);
}

TEST(Feasibility, MinDeadlineInfiniteWhenRateInfeasible) {
  const EnforcedWaitsStrategy strategy(blast_pipeline(), paper_config());
  EXPECT_TRUE(std::isinf(strategy.min_feasible_deadline(1.0)));
}

TEST(Solve, InfeasibleReturnsDiagnosticError) {
  const EnforcedWaitsStrategy strategy(blast_pipeline(), paper_config());
  auto too_fast = strategy.solve(1.0, 3.5e5);
  ASSERT_FALSE(too_fast.ok());
  EXPECT_EQ(too_fast.error().code, "infeasible");
  EXPECT_NE(too_fast.error().message.find("arrival-rate"), std::string::npos);

  auto too_tight = strategy.solve(50.0, 2e4);
  ASSERT_FALSE(too_tight.ok());
  EXPECT_EQ(too_tight.error().code, "infeasible");
  EXPECT_NE(too_tight.error().message.find("deadline"), std::string::npos);
}

TEST(Solve, ScheduleInternallyConsistent) {
  const auto pipeline = blast_pipeline();
  const EnforcedWaitsStrategy strategy(pipeline, paper_config());
  auto solved = strategy.solve(50.0, 1.85e5);
  ASSERT_TRUE(solved.ok());
  const auto& schedule = solved.value();
  ASSERT_EQ(schedule.waits.size(), 4u);
  double budget = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(schedule.waits[i], 0.0);
    EXPECT_NEAR(schedule.firing_intervals[i],
                pipeline.service_time(i) + schedule.waits[i], 1e-9);
    budget += paper_config().b[i] * schedule.firing_intervals[i];
  }
  EXPECT_NEAR(schedule.deadline_budget_used, budget, 1e-6);
  EXPECT_LE(schedule.deadline_budget_used, 1.85e5 * (1.0 + 1e-9));
  EXPECT_NEAR(schedule.predicted_active_fraction,
              strategy.active_fraction(schedule.firing_intervals), 1e-12);
}

TEST(Solve, SatisfiesKktAcrossTheGrid) {
  const EnforcedWaitsStrategy strategy(blast_pipeline(), paper_config());
  for (double tau0 : {3.0, 5.0, 10.0, 30.0, 100.0}) {
    for (double deadline : {3e4, 5e4, 1e5, 2e5, 3.5e5}) {
      auto solved = strategy.solve(tau0, deadline);
      if (!solved.ok()) continue;
      EXPECT_TRUE(solved.value().kkt.satisfied(1e-3))
          << "tau0=" << tau0 << " D=" << deadline << " stationarity "
          << solved.value().kkt.stationarity_residual;
    }
  }
}

TEST(Solve, MatchesProjectedGradientCrossCheck) {
  const EnforcedWaitsStrategy strategy(blast_pipeline(), paper_config());
  const double tau0 = 20.0;
  const double deadline = 1.5e5;
  auto barrier = strategy.solve(tau0, deadline);
  ASSERT_TRUE(barrier.ok());

  const opt::ConvexProblem problem = strategy.build_problem(tau0, deadline);
  const linalg::Vector start = strategy.interior_start(tau0, deadline);
  ASSERT_FALSE(start.empty());
  auto pg = opt::projected_gradient_minimize(problem, start);
  ASSERT_TRUE(pg.ok());
  EXPECT_NEAR(barrier.value().predicted_active_fraction, pg.value().objective,
              2e-3);
  // Barrier should be at least as good (PG converges slowly near corners).
  EXPECT_LE(barrier.value().predicted_active_fraction,
            pg.value().objective + 1e-4);
}

TEST(Solve, ActiveFractionDecreasesWithDeadline) {
  const EnforcedWaitsStrategy strategy(blast_pipeline(), paper_config());
  double previous = 1.0;
  for (double deadline : {3e4, 6e4, 1.2e5, 2.4e5, 3.5e5}) {
    auto solved = strategy.solve(20.0, deadline);
    ASSERT_TRUE(solved.ok()) << deadline;
    EXPECT_LE(solved.value().predicted_active_fraction, previous + 1e-9)
        << deadline;
    previous = solved.value().predicted_active_fraction;
  }
}

TEST(Solve, InsensitiveToTau0WhenDeadlineBinds) {
  // Paper Figure 3: for moderate-to-large tau0 the enforced-waits active
  // fraction barely depends on tau0 (rate constraint slack).
  const EnforcedWaitsStrategy strategy(blast_pipeline(), paper_config());
  auto at50 = strategy.solve(50.0, 5e4);
  auto at100 = strategy.solve(100.0, 5e4);
  ASSERT_TRUE(at50.ok());
  ASSERT_TRUE(at100.ok());
  EXPECT_NEAR(at50.value().predicted_active_fraction,
              at100.value().predicted_active_fraction, 1e-3);
}

TEST(Solve, RateConstraintBindsAtSmallTau0) {
  const auto pipeline = blast_pipeline();
  const EnforcedWaitsStrategy strategy(pipeline, paper_config());
  auto solved = strategy.solve(3.0, 3.5e5);
  ASSERT_TRUE(solved.ok());
  // v * tau0 = 384; x_0 must sit at this cap.
  EXPECT_NEAR(solved.value().firing_intervals[0], 128.0 * 3.0, 1.0);
}

TEST(Solve, ChainConstraintRespected) {
  const auto pipeline = blast_pipeline();
  const EnforcedWaitsStrategy strategy(pipeline, paper_config());
  for (double tau0 : {3.0, 10.0, 100.0}) {
    auto solved = strategy.solve(tau0, 2e5);
    ASSERT_TRUE(solved.ok());
    const auto& x = solved.value().firing_intervals;
    for (std::size_t i = 1; i < x.size(); ++i) {
      EXPECT_LE(x[i] * pipeline.mean_gain(i - 1), x[i - 1] * (1.0 + 1e-6))
          << "chain at node " << i << ", tau0 " << tau0;
    }
  }
}

TEST(Solve, DegenerateDeadlineGivesMinimalPoint) {
  const auto pipeline = blast_pipeline();
  const auto config = paper_config();
  const EnforcedWaitsStrategy strategy(pipeline, config);
  const Cycles budget = sdf::minimal_deadline_budget(pipeline, config.b);
  auto solved = strategy.solve(50.0, budget);  // zero slack
  ASSERT_TRUE(solved.ok());
  const auto lower = sdf::minimal_firing_intervals(pipeline);
  for (std::size_t i = 0; i < lower.size(); ++i) {
    EXPECT_NEAR(solved.value().firing_intervals[i], lower[i],
                1e-6 * lower[i] + 1e-6);
  }
}

TEST(Solve, PaperScaleValueAtSlackCorner) {
  // tau0 = 100, D = 3.5e5: hand-computed water-filling optimum gives an
  // active fraction near 0.049 (see DESIGN.md). Guard the value so solver
  // regressions are caught.
  const EnforcedWaitsStrategy strategy(blast_pipeline(), paper_config());
  auto solved = strategy.solve(100.0, 3.5e5);
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.value().predicted_active_fraction, 0.049, 0.002);
}

TEST(Solve, SingleNodePipeline) {
  auto spec = sdf::PipelineBuilder("solo")
                  .simd_width(4)
                  .add_node("only", 10.0, dist::make_deterministic(1))
                  .build();
  const EnforcedWaitsStrategy strategy(std::move(spec).take(),
                                       EnforcedWaitsConfig{{1.0}});
  // Deadline 40, b=1: x <= 40; rate tau0=5 -> x <= 20. Optimum x = 20.
  auto solved = strategy.solve(5.0, 40.0);
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.value().firing_intervals[0], 20.0, 1e-4);
  EXPECT_NEAR(solved.value().predicted_active_fraction, 0.5, 1e-4);
}

TEST(WarmSolve, BitIdenticalToColdAcrossTheGrid) {
  // Warm hints nominate an active set; the certified canonical solve is the
  // same deterministic function of (tau0, D, active set) either way, so warm
  // results must equal cold ones exactly — including the chain-active
  // small-tau0 cells where the hint actually changes the code path taken.
  const auto pipeline = blast_pipeline();
  const EnforcedWaitsStrategy strategy(pipeline, paper_config());
  WarmStart warm;
  for (double tau0 : {2.9, 3.0, 3.5, 5.0, 10.0, 30.0, 100.0}) {
    for (double deadline : {2.4e4, 3e4, 5e4, 1e5, 2e5, 3.5e5}) {
      auto cold = strategy.solve(tau0, deadline);
      auto warmed = strategy.solve(tau0, deadline, &warm);
      ASSERT_EQ(cold.ok(), warmed.ok()) << tau0 << " " << deadline;
      if (cold.ok()) {
        const auto& cx = cold.value().firing_intervals;
        const auto& wx = warmed.value().firing_intervals;
        ASSERT_EQ(cx.size(), wx.size());
        for (std::size_t i = 0; i < cx.size(); ++i) {
          EXPECT_EQ(cx[i], wx[i]) << "node " << i << " tau0=" << tau0
                                  << " D=" << deadline;
        }
        EXPECT_EQ(cold.value().predicted_active_fraction,
                  warmed.value().predicted_active_fraction);
        warm.firing_intervals = warmed.value().firing_intervals;
      }
    }
  }
}

TEST(WarmSolve, GarbageHintIsRejectedNotTrusted) {
  const auto pipeline = blast_pipeline();
  const EnforcedWaitsStrategy strategy(pipeline, paper_config());
  auto cold = strategy.solve(20.0, 1.5e5);
  ASSERT_TRUE(cold.ok());

  // A hint whose nominated active set is nonsense for this cell: the
  // certificate gate must reject it and the result must match cold exactly.
  WarmStart garbage;
  garbage.firing_intervals = {1e9, 1e-9, 1e9, 1e-9};
  auto warmed = strategy.solve(20.0, 1.5e5, &garbage);
  ASSERT_TRUE(warmed.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cold.value().firing_intervals[i],
              warmed.value().firing_intervals[i]);
  }

  // A hint from an infeasible neighbor (wrong dimension) is ignored.
  WarmStart wrong_size;
  wrong_size.firing_intervals = {1.0, 2.0};
  auto sized = strategy.solve(20.0, 1.5e5, &wrong_size);
  ASSERT_TRUE(sized.ok());
  EXPECT_EQ(cold.value().predicted_active_fraction,
            sized.value().predicted_active_fraction);
}

TEST(WarmSolve, InfeasibleCellsFailIdenticallyWarmOrCold) {
  const EnforcedWaitsStrategy strategy(blast_pipeline(), paper_config());
  WarmStart warm;
  warm.firing_intervals = {400.0, 380.0, 290.0, 2800.0};  // plausible hint
  for (auto [tau0, deadline] : {std::pair{1.0, 3.5e5}, std::pair{50.0, 2e4}}) {
    auto cold = strategy.solve(tau0, deadline);
    auto warmed = strategy.solve(tau0, deadline, &warm);
    ASSERT_FALSE(cold.ok());
    ASSERT_FALSE(warmed.ok());
    EXPECT_EQ(cold.error().code, warmed.error().code);
    EXPECT_EQ(cold.error().message, warmed.error().message);
  }
}

TEST(InteriorStart, EmptyWhenNoInteriorPointExists) {
  // At zero deadline slack the feasible region has empty interior; the
  // Phase-I search must report that by returning an empty vector (the
  // degenerate-deadline branch in solve() handles the point itself).
  const auto pipeline = blast_pipeline();
  const auto config = paper_config();
  const EnforcedWaitsStrategy strategy(pipeline, config);
  const Cycles budget = sdf::minimal_deadline_budget(pipeline, config.b);
  EXPECT_TRUE(strategy.interior_start(50.0, budget).empty());
  // And with slack, the start must be strictly interior.
  EXPECT_FALSE(strategy.interior_start(50.0, budget + 100.0).empty());
}

/// Property sweep: every feasible solve satisfies all constraints and beats
/// the trivial zero-wait schedule.
struct GridPoint {
  double tau0;
  double deadline;
};

class EnforcedGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(EnforcedGrid, FeasibleSolutionsAreValidAndUseful) {
  const auto [tau0, deadline] = GetParam();
  const auto pipeline = blast_pipeline();
  const EnforcedWaitsStrategy strategy(pipeline, paper_config());
  auto solved = strategy.solve(tau0, deadline);
  ASSERT_EQ(solved.ok(), strategy.is_feasible(tau0, deadline));
  if (!solved.ok()) return;

  const opt::ConvexProblem problem = strategy.build_problem(tau0, deadline);
  const linalg::Vector x(solved.value().firing_intervals.begin(),
                         solved.value().firing_intervals.end());
  EXPECT_TRUE(problem.is_feasible(x, 1e-6));

  // Zero-wait schedule has active fraction 1; any feasible optimum is <= 1.
  EXPECT_LE(solved.value().predicted_active_fraction, 1.0 + 1e-9);
  EXPECT_GT(solved.value().predicted_active_fraction, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EnforcedGrid,
    ::testing::Values(GridPoint{2.5, 3e4}, GridPoint{2.9, 1e5},
                      GridPoint{5.0, 2.4e4}, GridPoint{5.0, 3.5e5},
                      GridPoint{10.0, 5e4}, GridPoint{20.0, 2.36e4},
                      GridPoint{50.0, 7e4}, GridPoint{100.0, 2.4e4},
                      GridPoint{100.0, 3.5e5}));

}  // namespace
}  // namespace ripple::core
