#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace ripple::util {
namespace {

CliParser make_parser() {
  CliParser cli;
  cli.add_flag("verbose", false, "enable verbose output");
  cli.add_int("trials", 100, "trial count");
  cli.add_double("tau0", 10.0, "inter-arrival time");
  cli.add_string("out", "results.csv", "output path");
  return cli;
}

util::Result<bool> parse(CliParser& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApplyWithoutArguments) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}).ok());
  EXPECT_FALSE(cli.get_flag("verbose"));
  EXPECT_EQ(cli.get_int("trials"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("tau0"), 10.0);
  EXPECT_EQ(cli.get_string("out"), "results.csv");
}

TEST(Cli, EqualsSyntax) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--trials=7", "--tau0=2.5", "--out=x.csv"}).ok());
  EXPECT_EQ(cli.get_int("trials"), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("tau0"), 2.5);
  EXPECT_EQ(cli.get_string("out"), "x.csv");
}

TEST(Cli, SpaceSeparatedValue) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--trials", "9"}).ok());
  EXPECT_EQ(cli.get_int("trials"), 9);
}

TEST(Cli, BareAndNegatedFlags) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose"}).ok());
  EXPECT_TRUE(cli.get_flag("verbose"));

  CliParser cli2 = make_parser();
  ASSERT_TRUE(parse(cli2, {"--verbose", "--no-verbose"}).ok());
  EXPECT_FALSE(cli2.get_flag("verbose"));
}

TEST(Cli, FlagWithExplicitValue) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose=true"}).ok());
  EXPECT_TRUE(cli.get_flag("verbose"));
  CliParser cli2 = make_parser();
  ASSERT_TRUE(parse(cli2, {"--verbose=false"}).ok());
  EXPECT_FALSE(cli2.get_flag("verbose"));
}

TEST(Cli, UnknownOptionFails) {
  CliParser cli = make_parser();
  auto result = parse(cli, {"--bogus=1"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "unknown_option");
}

TEST(Cli, MissingValueFails) {
  CliParser cli = make_parser();
  auto result = parse(cli, {"--trials"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "missing_value");
}

TEST(Cli, BadNumberFails) {
  CliParser cli = make_parser();
  auto result = parse(cli, {"--trials=abc"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "bad_value");
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"alpha", "--trials=3", "beta"}).ok());
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Cli, HelpRequested) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--help"}).ok());
  EXPECT_TRUE(cli.help_requested());
  const std::string usage = cli.usage("test program");
  EXPECT_NE(usage.find("--trials"), std::string::npos);
  EXPECT_NE(usage.find("test program"), std::string::npos);
}

TEST(Cli, UndeclaredLookupThrows) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}).ok());
  EXPECT_THROW((void)cli.get_int("nonexistent"), std::logic_error);
  EXPECT_THROW((void)cli.get_flag("trials"), std::logic_error);  // kind mismatch
}

}  // namespace
}  // namespace ripple::util
