#include "graph/graph_executor.hpp"

#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/gain.hpp"
#include "graph/scenarios.hpp"

namespace ripple::graph {
namespace {

using dist::make_deterministic;

void expect_same_base(const sim::TrialMetrics& expected,
                      const sim::TrialMetrics& got) {
  ASSERT_EQ(got.nodes.size(), expected.nodes.size());
  for (std::size_t i = 0; i < expected.nodes.size(); ++i) {
    EXPECT_EQ(got.nodes[i].firings, expected.nodes[i].firings) << i;
    EXPECT_EQ(got.nodes[i].empty_firings, expected.nodes[i].empty_firings)
        << i;
    EXPECT_EQ(got.nodes[i].items_consumed, expected.nodes[i].items_consumed)
        << i;
    EXPECT_EQ(got.nodes[i].items_produced, expected.nodes[i].items_produced)
        << i;
    EXPECT_EQ(got.nodes[i].active_time, expected.nodes[i].active_time) << i;
    EXPECT_EQ(got.nodes[i].max_queue_length,
              expected.nodes[i].max_queue_length)
        << i;
  }
  EXPECT_EQ(got.inputs_arrived, expected.inputs_arrived);
  EXPECT_EQ(got.inputs_on_time, expected.inputs_on_time);
  EXPECT_EQ(got.inputs_missed, expected.inputs_missed);
  EXPECT_EQ(got.sink_outputs, expected.sink_outputs);
  EXPECT_EQ(got.output_latency.count(), expected.output_latency.count());
  EXPECT_EQ(got.output_latency.mean(), expected.output_latency.mean());
  EXPECT_EQ(got.output_latency.min(), expected.output_latency.min());
  EXPECT_EQ(got.output_latency.max(), expected.output_latency.max());
  EXPECT_EQ(got.makespan, expected.makespan);
  EXPECT_EQ(got.events_processed, expected.events_processed);
}

void expect_same_execution(const runtime::ExecutionMetrics& expected,
                           const runtime::ExecutionMetrics& got) {
  expect_same_base(expected.base, got.base);
  ASSERT_EQ(got.results.size(), expected.results.size());
  for (std::size_t i = 0; i < expected.results.size(); ++i) {
    EXPECT_EQ(std::any_cast<std::uint64_t>(got.results[i]),
              std::any_cast<std::uint64_t>(expected.results[i]))
        << i;
  }
}

GraphExecutorConfig scenario_config(const GraphSpec& graph,
                                    double interval_scale, Cycles input_gap,
                                    Cycles deadline = 0.0) {
  GraphExecutorConfig config;
  config.firing_intervals = graph.minimal_firing_intervals();
  for (Cycles& x : config.firing_intervals) x *= interval_scale;
  config.input_gap = input_gap;
  config.deadline = deadline;
  config.max_collected_results = 1 << 20;
  return config;
}

TEST(Golden, BranchingBlastVectorMatchesReference) {
  GraphScenario scenario = branching_blast_scenario();
  const GraphExecutorConfig config =
      scenario_config(scenario.graph, 1.25, 20.0);
  const GraphExecutor executor(scenario.graph, scenario.stages);
  EXPECT_FALSE(executor.delegates_to_chain());

  auto vector_run = executor.run(scenario_inputs(400), config);
  ASSERT_TRUE(vector_run.ok()) << vector_run.error().message;
  auto reference = executor.run_reference(scenario_inputs(400), config);
  ASSERT_TRUE(reference.ok()) << reference.error().message;
  expect_same_execution(reference.value(), vector_run.value());

  // The probe filter actually drops part of the stream, and both extension
  // branches contribute to every surviving rescore tuple.
  const sim::TrialMetrics& base = vector_run.value().base;
  EXPECT_GT(base.sink_outputs, 0u);
  EXPECT_LT(base.sink_outputs, 400u);
  EXPECT_EQ(base.nodes[1].items_produced, 2 * base.nodes[1].items_consumed);
  EXPECT_EQ(base.nodes[4].items_consumed, 2 * base.nodes[4].items_produced);
}

TEST(Golden, TelemetryFaninVectorMatchesReference) {
  GraphScenario scenario = telemetry_fanin_scenario();
  const GraphExecutorConfig config =
      scenario_config(scenario.graph, 1.2, 12.0);
  const GraphExecutor executor(scenario.graph, scenario.stages);

  auto vector_run = executor.run(scenario_inputs(300, 7), config);
  ASSERT_TRUE(vector_run.ok()) << vector_run.error().message;
  auto reference = executor.run_reference(scenario_inputs(300, 7), config);
  ASSERT_TRUE(reference.ok()) << reference.error().message;
  expect_same_execution(reference.value(), vector_run.value());

  // All-deterministic stages: every input survives to the sink, and the
  // synchronizer forwards exactly what it consumes.
  const sim::TrialMetrics& base = vector_run.value().base;
  EXPECT_EQ(base.sink_outputs, 300u);
  EXPECT_EQ(base.nodes[5].items_consumed, base.nodes[5].items_produced);
  EXPECT_EQ(base.nodes[5].items_consumed, 900u);
}

/// Small linear chain with real per-item stages, for the delegation tests.
GraphScenario linear_scenario() {
  auto built = GraphBuilder("linear_hash")
                   .simd_width(16)
                   .add_node("scale", NodeKind::kSiso, 40.0)
                   .add_node("filter", NodeKind::kSiso, 30.0)
                   .add_node("emit", NodeKind::kSiso, 20.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(1, 2, make_deterministic(1))
                   .build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  GraphScenario scenario{std::move(built).take(), {}};
  scenario.stages = {
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::any_cast<std::uint64_t>(in[0]) * 2654435761u);
      },
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        const auto x = std::any_cast<std::uint64_t>(in[0]);
        if ((x & 3u) != 0u) out.push_back(x);
      },
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::any_cast<std::uint64_t>(in[0]) ^ 0xabcdu);
      },
  };
  return scenario;
}

TEST(LinearDelegation, ChainRunMatchesReferenceOracle) {
  GraphScenario scenario = linear_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  EXPECT_TRUE(executor.delegates_to_chain());

  const GraphExecutorConfig config =
      scenario_config(scenario.graph, 1.5, 5.0, /*deadline=*/5000.0);
  // run() goes through the lowered PipelineExecutor; run_reference() is the
  // independent scalar engine. Equality proves the delegation mapping.
  auto delegated = executor.run(scenario_inputs(250, 3), config);
  ASSERT_TRUE(delegated.ok()) << delegated.error().message;
  auto reference = executor.run_reference(scenario_inputs(250, 3), config);
  ASSERT_TRUE(reference.ok()) << reference.error().message;
  expect_same_execution(reference.value(), delegated.value());
}

TEST(LinearDelegation, ParallelChainRunStaysIdentical) {
  GraphScenario scenario = linear_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  GraphExecutorConfig config = scenario_config(scenario.graph, 1.5, 5.0);
  auto sequential = executor.run(scenario_inputs(250, 3), config);
  ASSERT_TRUE(sequential.ok());
  config.exec_threads = 4;
  auto parallel = executor.run(scenario_inputs(250, 3), config);
  ASSERT_TRUE(parallel.ok());
  expect_same_execution(sequential.value(), parallel.value());
}

TEST(Determinism, ThreadCountNeverChangesResults) {
  // 12 randomized trials over both branching scenarios: vary the input seed,
  // arrival spacing, and interval slack, and require exec_threads in
  // {2, 4, 8} to reproduce the single-threaded run bit for bit.
  for (std::uint64_t trial_seed = 0; trial_seed < 12; ++trial_seed) {
    GraphScenario scenario = (trial_seed % 2 == 0)
                                 ? branching_blast_scenario()
                                 : telemetry_fanin_scenario();
    const double scale = 1.1 + 0.1 * static_cast<double>(trial_seed % 5);
    const Cycles gap = 6.0 + 3.0 * static_cast<double>(trial_seed % 4);
    GraphExecutorConfig config = scenario_config(scenario.graph, scale, gap);
    const std::size_t count = 96 + 16 * (trial_seed % 3);
    const GraphExecutor executor(scenario.graph, scenario.stages);

    auto golden = executor.run(scenario_inputs(count, trial_seed), config);
    ASSERT_TRUE(golden.ok()) << trial_seed << ": " << golden.error().message;
    for (std::size_t threads : {2u, 4u, 8u}) {
      config.exec_threads = threads;
      auto parallel = executor.run(scenario_inputs(count, trial_seed), config);
      ASSERT_TRUE(parallel.ok())
          << trial_seed << " threads=" << threads << ": "
          << parallel.error().message;
      expect_same_execution(golden.value(), parallel.value());
    }
  }
}

TEST(Errors, StageExceptionNamesTheNode) {
  GraphScenario scenario = branching_blast_scenario();
  // Poison the thorough-extension stage (node 3).
  scenario.stages[3] = [](std::vector<Item>&&, std::vector<Item>&) {
    throw std::runtime_error("boom");
  };
  const GraphExecutor executor(scenario.graph, scenario.stages);
  const GraphExecutorConfig config =
      scenario_config(scenario.graph, 1.25, 20.0);

  auto vector_run = executor.run(scenario_inputs(64), config);
  ASSERT_FALSE(vector_run.ok());
  EXPECT_EQ(vector_run.error().code, "stage_exception");
  EXPECT_NE(vector_run.error().message.find("ext_thorough"),
            std::string::npos);

  auto reference = executor.run_reference(scenario_inputs(64), config);
  ASSERT_FALSE(reference.ok());
  EXPECT_EQ(reference.error().code, "stage_exception");
  EXPECT_EQ(reference.error().message, vector_run.error().message);
}

TEST(Errors, BadConfigsRejectedIdenticallyByBothEngines) {
  GraphScenario scenario = branching_blast_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);

  GraphExecutorConfig wrong_count;
  wrong_count.firing_intervals = {100.0, 100.0};
  auto a = executor.run(scenario_inputs(4), wrong_count);
  auto b = executor.run_reference(scenario_inputs(4), wrong_count);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(a.error().code, "bad_config");
  EXPECT_EQ(a.error().message, b.error().message);

  GraphExecutorConfig below = scenario_config(scenario.graph, 1.25, 20.0);
  below.firing_intervals[3] = 1.0;  // below ext_thorough's service time
  auto c = executor.run(scenario_inputs(4), below);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.error().code, "bad_config");
  EXPECT_NE(c.error().message.find("ext_thorough"), std::string::npos);

  GraphExecutorConfig empty_inputs = scenario_config(scenario.graph, 1.25, 20.0);
  auto d = executor.run({}, empty_inputs);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.error().code, "bad_config");
}

TEST(Errors, EventBudgetStopsRunawayRuns) {
  GraphScenario scenario = branching_blast_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  GraphExecutorConfig config = scenario_config(scenario.graph, 1.25, 20.0);
  config.max_events = 3;
  auto run = executor.run(scenario_inputs(64), config);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().code, "event_budget");
  auto reference = executor.run_reference(scenario_inputs(64), config);
  ASSERT_FALSE(reference.ok());
  EXPECT_EQ(reference.error().code, "event_budget");
}

TEST(Deadline, MissAccountingAgreesBetweenEngines) {
  GraphScenario scenario = branching_blast_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  // A deadline tight enough that late roots exist but not so tight that
  // everything misses.
  const GraphExecutorConfig config =
      scenario_config(scenario.graph, 1.25, 4.0, /*deadline=*/9000.0);
  auto vector_run = executor.run(scenario_inputs(256, 5), config);
  ASSERT_TRUE(vector_run.ok()) << vector_run.error().message;
  auto reference = executor.run_reference(scenario_inputs(256, 5), config);
  ASSERT_TRUE(reference.ok());
  expect_same_execution(reference.value(), vector_run.value());
  const sim::TrialMetrics& base = vector_run.value().base;
  EXPECT_EQ(base.inputs_arrived, 256u);
  EXPECT_LE(base.inputs_on_time + base.inputs_missed, base.inputs_arrived);
}

TEST(Construction, StageRegistrationRulesEnforced) {
  GraphScenario scenario = telemetry_fanin_scenario();
  // Too few stages.
  std::vector<GraphStageFn> short_stages(scenario.stages.begin(),
                                         scenario.stages.end() - 1);
  EXPECT_THROW(GraphExecutor(scenario.graph, short_stages), std::logic_error);
  // A synchronizer must be registered as nullptr.
  std::vector<GraphStageFn> sync_stage = scenario.stages;
  sync_stage[5] = [](std::vector<Item>&&, std::vector<Item>&) {};
  EXPECT_THROW(GraphExecutor(scenario.graph, sync_stage), std::logic_error);
  // A computing node must be callable.
  std::vector<GraphStageFn> null_stage = scenario.stages;
  null_stage[0] = nullptr;
  EXPECT_THROW(GraphExecutor(scenario.graph, null_stage), std::logic_error);
}

TEST(Arrivals, IrregularGapsReplayIdentically) {
  GraphScenario scenario = branching_blast_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  GraphExecutorConfig config = scenario_config(scenario.graph, 1.25, 20.0);
  // A constant per-input gap schedule reproduces the fixed-gap run.
  GraphExecutorConfig per_input = config;
  per_input.input_gaps.assign(200, 20.0);
  per_input.input_gap = 999.0;  // must be ignored
  auto fixed = executor.run(scenario_inputs(200, 2), config);
  ASSERT_TRUE(fixed.ok()) << fixed.error().message;
  auto replay = executor.run(scenario_inputs(200, 2), per_input);
  ASSERT_TRUE(replay.ok()) << replay.error().message;
  expect_same_execution(fixed.value(), replay.value());

  // And irregular gaps agree between the vector engine and the oracle.
  GraphExecutorConfig bursty = config;
  bursty.input_gaps.clear();
  for (std::size_t i = 0; i < 200; ++i) {
    bursty.input_gaps.push_back(i % 5 == 0 ? 90.0 : 3.0);
  }
  auto vector_run = executor.run(scenario_inputs(200, 2), bursty);
  ASSERT_TRUE(vector_run.ok()) << vector_run.error().message;
  auto reference = executor.run_reference(scenario_inputs(200, 2), bursty);
  ASSERT_TRUE(reference.ok());
  expect_same_execution(reference.value(), vector_run.value());
}

}  // namespace
}  // namespace ripple::graph
