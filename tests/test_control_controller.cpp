// Controller: the estimate -> re-plan -> admission loop. Covers steady-state
// hysteresis, drift-triggered re-planning, proportional admission cuts under
// overload, and the observed-slack force trigger.
#include <gtest/gtest.h>

#include <stdexcept>

#include "control/controller.hpp"
#include "dist/gain.hpp"
#include "sdf/pipeline.hpp"

namespace ripple::control {
namespace {

// Same pipeline as test_control_replanner: L = {20, 10, 10}, b = {2, 1, 1},
// minimal budget 60, feasibility floor tau0 = 5 at any deadline >= 60.
sdf::PipelineSpec make_spec() {
  auto spec = sdf::PipelineBuilder("ctl")
                  .simd_width(4)
                  .add_node("expand", 8.0, dist::make_deterministic(2))
                  .add_node("filter", 6.0, dist::make_deterministic(1))
                  .add_node("sink", 10.0, nullptr)
                  .build();
  EXPECT_TRUE(spec.ok());
  return spec.value();
}

Controller make_controller(ControllerConfig config = {}) {
  return Controller(make_spec(), core::EnforcedWaitsConfig::optimistic(make_spec()),
                    600.0, 20.0, config);
}

TEST(ControllerTest, PublishesInitialPlanOnConstruction) {
  Controller controller = make_controller();
  const PlanPtr plan = controller.plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->epoch, 1u);
  EXPECT_DOUBLE_EQ(plan->planned_tau0, 20.0);
  EXPECT_FALSE(plan->shedding);
  EXPECT_EQ(controller.stats().ticks, 0u);
  // Feasible estimate: everyone is admitted.
  EXPECT_EQ(controller.admitted_sessions(4), 4u);
  EXPECT_EQ(controller.admitted_sessions(0), 0u);
}

TEST(ControllerTest, SteadyStateTicksKeepThePlan) {
  Controller controller = make_controller();
  for (int i = 0; i < 2000; ++i) controller.observe_gap(20.0);
  for (int i = 0; i < 10; ++i) {
    const ControlDecision decision = controller.tick();
    EXPECT_EQ(decision.outcome, ReplanOutcome::kKept);
    EXPECT_FALSE(decision.shedding);
    EXPECT_EQ(decision.plan->epoch, 1u);
  }
  const ControllerStats stats = controller.stats();
  EXPECT_EQ(stats.ticks, 10u);
  EXPECT_EQ(stats.replans, 0u);
  EXPECT_EQ(stats.shed_ticks, 0u);
}

TEST(ControllerTest, DriftedEstimateReplans) {
  Controller controller = make_controller();
  // The offered rate halves: gaps double from the 20.0 prior to 40.0.
  for (int i = 0; i < 4000; ++i) controller.observe_gap(40.0);
  const ControlDecision decision = controller.tick();
  EXPECT_EQ(decision.outcome, ReplanOutcome::kReplanned);
  EXPECT_NEAR(decision.tau0_estimate, 40.0, 1e-6);
  EXPECT_EQ(decision.plan->epoch, 2u);
  EXPECT_NEAR(decision.plan->planned_tau0, 40.0, 1e-6);
  EXPECT_EQ(controller.stats().replans, 1u);
}

TEST(ControllerTest, OverloadShedsProportionally) {
  Controller controller = make_controller();
  // Offered gaps of 2.0 against a floor of 5.0: only 2/5 of the offered
  // stream fits. With symmetric sessions that is floor(S * 0.4).
  for (int i = 0; i < 4000; ++i) controller.observe_gap(2.0);
  const ControlDecision decision = controller.tick();
  EXPECT_EQ(decision.outcome, ReplanOutcome::kReplanned);
  EXPECT_TRUE(decision.shedding);
  EXPECT_TRUE(decision.plan->shedding);
  EXPECT_EQ(controller.admitted_sessions(10), 4u);
  EXPECT_EQ(controller.admitted_sessions(4), 1u);
  EXPECT_EQ(controller.admitted_sessions(1), 0u);
  EXPECT_EQ(controller.stats().shed_ticks, 1u);

  // Load returns to feasible: the next tick flips back and admits everyone.
  for (int i = 0; i < 8000; ++i) controller.observe_gap(20.0);
  const ControlDecision recovered = controller.tick();
  EXPECT_EQ(recovered.outcome, ReplanOutcome::kReplanned);
  EXPECT_FALSE(recovered.shedding);
  EXPECT_EQ(controller.admitted_sessions(10), 10u);
}

TEST(ControllerTest, SlackTriggerForcesReplanPastHysteresis) {
  ControllerConfig config;
  config.replanner.cooldown_ticks = 100;  // hysteresis would block everything
  Controller controller = make_controller(config);
  for (int i = 0; i < 2000; ++i) controller.observe_gap(20.0);

  // No drift, no slack pressure: kept.
  EXPECT_EQ(controller.tick().outcome, ReplanOutcome::kKept);

  // A batch grazes the deadline (> 0.9 * 600): the next tick is forced.
  controller.observe_worst_latency(580.0);
  const ControlDecision forced = controller.tick();
  EXPECT_TRUE(forced.slack_forced);
  EXPECT_EQ(forced.outcome, ReplanOutcome::kReplanned);
  EXPECT_EQ(controller.stats().slack_forced, 1u);

  // The latency observation is consumed by the tick, not sticky.
  const ControlDecision after = controller.tick();
  EXPECT_FALSE(after.slack_forced);
  EXPECT_EQ(after.outcome, ReplanOutcome::kKept);
}

TEST(ControllerTest, SlackTriggerCanBeDisabled) {
  ControllerConfig config;
  config.slack_trigger = 0.0;
  Controller controller = make_controller(config);
  controller.observe_worst_latency(599.0);
  const ControlDecision decision = controller.tick();
  EXPECT_FALSE(decision.slack_forced);
  EXPECT_EQ(decision.outcome, ReplanOutcome::kKept);
}

TEST(ControllerTest, ImpossibleDeadlinePropagates) {
  EXPECT_THROW(Controller(make_spec(),
                          core::EnforcedWaitsConfig::optimistic(make_spec()),
                          50.0, 20.0, {}),
               std::logic_error);
}

}  // namespace
}  // namespace ripple::control
