// The vector-wide executor against the seed per-item engine: golden
// equivalence on the real mini-BLAST pipeline (typed batch path and adapter
// path, under both pinned dispatch levels), config-validation regressions,
// and the adapter's throw-mid-batch contract.
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "blast/batch_stages.hpp"
#include "blast/measure.hpp"
#include "blast/sequence.hpp"
#include "blast/stages.hpp"
#include "core/enforced_waits.hpp"
#include "device/dispatch.hpp"
#include "dist/gain.hpp"
#include "dist/rng.hpp"
#include "runtime/pipeline_executor.hpp"
#include "runtime/reference_executor.hpp"
#include "sdf/pipeline.hpp"

namespace ripple::runtime {
namespace {

using device::SimdLevel;

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    device::set_simd_override(level);
  }
  ~ScopedSimdLevel() { device::set_simd_override(std::nullopt); }
};

// ---------------------------------------------------------------------------
// Golden equivalence on the mini-BLAST pipeline
// ---------------------------------------------------------------------------

struct BlastHarness {
  blast::SequencePair pair;
  blast::BlastStages::Config stage_config;
  blast::BlastStages stages;
  sdf::PipelineSpec spec;
  ExecutorConfig config;
  std::size_t windows;

  BlastHarness() : pair(make_pair()), stages(pair, stage_config),
                   spec(make_spec()), windows(12000) {
    core::EnforcedWaitsStrategy strategy(
        spec, core::EnforcedWaitsConfig{{2.0, 4.0, 9.0, 6.0}});
    const double tau0 = spec.mean_service_per_input() * 4.0;
    const double deadline = 600.0 * spec.service_time(3);
    auto schedule = strategy.solve(tau0, deadline);
    EXPECT_TRUE(schedule.ok());
    config.firing_intervals = schedule.value().firing_intervals;
    config.input_gap = tau0;
    config.deadline = deadline;
    config.max_collected_results = 256;
  }

  static blast::SequencePair make_pair() {
    dist::Xoshiro256 rng(404);
    blast::SequencePairConfig pair_config;
    pair_config.subject_length = 1 << 15;
    pair_config.query_length = 1 << 13;
    return blast::make_sequence_pair(pair_config, rng);
  }

  sdf::PipelineSpec make_spec() {
    blast::MeasureConfig measure_config;
    measure_config.window_count = 12000;
    const auto measurement = blast::measure_pipeline(stages, measure_config);
    auto spec_result = measurement.to_pipeline_spec(128);
    EXPECT_TRUE(spec_result.ok());
    return spec_result.value();
  }

  std::vector<Item> item_inputs() const {
    std::vector<Item> inputs;
    inputs.reserve(windows);
    for (std::size_t w = 0; w < windows; ++w) {
      inputs.emplace_back(
          static_cast<std::uint32_t>(w % stages.input_count()));
    }
    return inputs;
  }
};

void expect_metrics_identical(const ExecutionMetrics& got,
                              const ExecutionMetrics& want) {
  ASSERT_EQ(got.base.nodes.size(), want.base.nodes.size());
  for (std::size_t i = 0; i < got.base.nodes.size(); ++i) {
    const auto& g = got.base.nodes[i];
    const auto& w = want.base.nodes[i];
    EXPECT_EQ(g.firings, w.firings) << "node " << i;
    EXPECT_EQ(g.empty_firings, w.empty_firings) << "node " << i;
    EXPECT_EQ(g.items_consumed, w.items_consumed) << "node " << i;
    EXPECT_EQ(g.items_produced, w.items_produced) << "node " << i;
    EXPECT_EQ(g.max_queue_length, w.max_queue_length) << "node " << i;
    EXPECT_EQ(g.active_time, w.active_time) << "node " << i;
  }
  EXPECT_EQ(got.base.inputs_arrived, want.base.inputs_arrived);
  EXPECT_EQ(got.base.inputs_missed, want.base.inputs_missed);
  EXPECT_EQ(got.base.inputs_on_time, want.base.inputs_on_time);
  EXPECT_EQ(got.base.sink_outputs, want.base.sink_outputs);
  EXPECT_EQ(got.base.makespan, want.base.makespan);
  EXPECT_EQ(got.base.output_latency.count(), want.base.output_latency.count());
  EXPECT_EQ(got.base.output_latency.mean(), want.base.output_latency.mean());
  EXPECT_EQ(got.base.output_latency.max(), want.base.output_latency.max());
}

void expect_alignments_identical(const std::vector<Item>& got,
                                 const std::vector<Item>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto g = std::any_cast<blast::Alignment>(got[i]);
    const auto w = std::any_cast<blast::Alignment>(want[i]);
    EXPECT_EQ(g.subject_pos, w.subject_pos) << "result " << i;
    EXPECT_EQ(g.query_pos, w.query_pos) << "result " << i;
    EXPECT_EQ(g.score, w.score) << "result " << i;
  }
}

TEST(BatchExecutorGolden, TypedPathMatchesReferenceUnderBothLevels) {
  const BlastHarness h;
  const ReferenceExecutor reference(h.spec,
                                    blast::make_item_stages(h.stages));
  const auto golden = reference.run(h.item_inputs(), h.config);
  ASSERT_TRUE(golden.ok()) << golden.error().message;
  ASSERT_GT(golden.value().base.sink_outputs, 0u);

  const PipelineExecutor vector_engine(h.spec,
                                       blast::make_batch_stages(h.stages));
  const auto inputs = blast::make_batch_inputs(h.stages, h.windows);
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
    ScopedSimdLevel pin(level);
    const auto got = vector_engine.run_batch(inputs, h.config);
    ASSERT_TRUE(got.ok()) << got.error().message;
    expect_metrics_identical(got.value(), golden.value());
    expect_alignments_identical(got.value().results, golden.value().results);
  }
}

TEST(BatchExecutorGolden, AdapterPathMatchesReference) {
  const BlastHarness h;
  const ReferenceExecutor reference(h.spec,
                                    blast::make_item_stages(h.stages));
  const auto golden = reference.run(h.item_inputs(), h.config);
  ASSERT_TRUE(golden.ok()) << golden.error().message;

  const PipelineExecutor adapter_engine(h.spec,
                                        blast::make_item_stages(h.stages));
  const auto got = adapter_engine.run(h.item_inputs(), h.config);
  ASSERT_TRUE(got.ok()) << got.error().message;
  expect_metrics_identical(got.value(), golden.value());
  expect_alignments_identical(got.value().results, golden.value().results);
}

// ---------------------------------------------------------------------------
// Config validation regressions (both engines report "bad_config")
// ---------------------------------------------------------------------------

sdf::PipelineSpec toy_spec() {
  return sdf::PipelineBuilder("toy")
      .simd_width(4)
      .add_node("double", 10.0, dist::make_deterministic(1))
      .add_node("filter", 12.0, dist::make_deterministic(1))
      .build()
      .take();
}

std::vector<StageFn> toy_stage_fns() {
  std::vector<StageFn> fns;
  fns.push_back([](Item&& input, std::vector<Item>& outputs) {
    outputs.emplace_back(std::any_cast<int>(input) * 2);
  });
  fns.push_back([](Item&& input, std::vector<Item>& outputs) {
    const int value = std::any_cast<int>(input);
    if (value % 4 == 0) outputs.emplace_back(value);
  });
  return fns;
}

std::vector<Item> toy_inputs(int count) {
  std::vector<Item> items;
  for (int i = 1; i <= count; ++i) items.emplace_back(i);
  return items;
}

TEST(BatchExecutorValidation, NonPositiveInputGapIsBadConfig) {
  const PipelineExecutor engine(toy_spec(), toy_stage_fns());
  const ReferenceExecutor reference(toy_spec(), toy_stage_fns());
  for (double gap : {0.0, -3.0}) {
    ExecutorConfig config;
    config.firing_intervals = {40.0, 40.0};
    config.input_gap = gap;
    const auto got = engine.run(toy_inputs(4), config);
    ASSERT_FALSE(got.ok()) << "gap " << gap;
    EXPECT_EQ(got.error().code, "bad_config") << "gap " << gap;
    const auto ref = reference.run(toy_inputs(4), config);
    ASSERT_FALSE(ref.ok()) << "gap " << gap;
    EXPECT_EQ(ref.error().code, "bad_config") << "gap " << gap;
  }
}

TEST(BatchExecutorValidation, FiringIntervalArityMismatchIsBadConfig) {
  const PipelineExecutor engine(toy_spec(), toy_stage_fns());
  const ReferenceExecutor reference(toy_spec(), toy_stage_fns());
  for (const std::vector<Cycles>& intervals :
       {std::vector<Cycles>{40.0}, std::vector<Cycles>{40.0, 40.0, 40.0},
        std::vector<Cycles>{}}) {
    ExecutorConfig config;
    config.firing_intervals = intervals;
    const auto got = engine.run(toy_inputs(4), config);
    ASSERT_FALSE(got.ok()) << intervals.size() << " intervals";
    EXPECT_EQ(got.error().code, "bad_config");
    const auto ref = reference.run(toy_inputs(4), config);
    ASSERT_FALSE(ref.ok());
    EXPECT_EQ(ref.error().code, "bad_config");
  }
}

TEST(BatchExecutorValidation, RepresentationMismatchThrows) {
  // A typed stage downstream of an item-carrying stage (and mismatched
  // column arity) is a construction error, not a runtime failure.
  std::vector<BatchStage> mixed(2);
  mixed[0] = adapt_stage([](Item&& input, std::vector<Item>& outputs) {
    outputs.push_back(std::move(input));
  });
  mixed[1].fn = [](const LaneView&, BatchEmitter&) {};
  mixed[1].carries_items = false;
  EXPECT_THROW(PipelineExecutor(toy_spec(), std::move(mixed)),
               std::logic_error);

  std::vector<BatchStage> misaligned(2);
  misaligned[0].fn = [](const LaneView&, BatchEmitter&) {};
  misaligned[0].output_fields = 2;
  misaligned[1].fn = [](const LaneView&, BatchEmitter&) {};
  misaligned[1].input_fields = 3;
  EXPECT_THROW(PipelineExecutor(toy_spec(), std::move(misaligned)),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Emitter allocation behavior (raw kernel interface)
// ---------------------------------------------------------------------------

TEST(BatchEmitterAllocation, ReserveGrowsGeometrically) {
  // Many small raw reservations within one firing: the column buffer must
  // reallocate O(log n) times, not once per call. Distinct data() pointers
  // bound the reallocation count.
  BatchEmitter emitter;
  emitter.reset(1, 1, false);
  std::vector<const std::uint32_t*> bases;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    auto cursors = emitter.reserve(1);
    *cursors[0] = i;
    emitter.commit_lane(0, 1);
    if (bases.empty() || bases.back() != emitter.column(0)) {
      bases.push_back(emitter.column(0));
    }
  }
  emitter.finish_raw();
  ASSERT_EQ(emitter.total(), 4096u);
  EXPECT_LE(bases.size(), 16u) << "reserve() reallocated per call";
  for (std::uint32_t i = 0; i < 4096; ++i) ASSERT_EQ(emitter.column(0)[i], i);
}

TEST(BatchEmitterAllocation, SteadyStateFiringsAreAllocationFree) {
  // A warmed emitter re-armed by reset() must serve identical firings from
  // retained capacity: the column base pointer never moves again, through
  // both the raw reserve/commit interface and per-item emit().
  BatchEmitter emitter;
  const auto fire = [&emitter](std::size_t lanes, bool raw) {
    emitter.reset(lanes, 2, false);
    if (raw) {
      auto cursors = emitter.reserve(3 * lanes);
      for (std::size_t k = 0; k < 3 * lanes; ++k) {
        cursors[0][k] = static_cast<std::uint32_t>(k);
        cursors[1][k] = static_cast<std::uint32_t>(k + 1);
      }
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        emitter.commit_lane(lane, 3);
      }
      emitter.finish_raw();
    } else {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        for (int c = 0; c < 3; ++c) {
          emitter.emit(lane, static_cast<std::uint32_t>(lane), 7);
        }
      }
    }
  };

  fire(64, true);  // warm-up allocates
  const std::uint32_t* warm0 = emitter.column(0);
  const std::uint32_t* warm1 = emitter.column(1);
  for (int rep = 0; rep < 100; ++rep) {
    fire(64, (rep & 1) != 0);
    EXPECT_EQ(emitter.column(0), warm0) << "rep " << rep;
    EXPECT_EQ(emitter.column(1), warm1) << "rep " << rep;
    ASSERT_EQ(emitter.total(), 192u);
  }
}

// ---------------------------------------------------------------------------
// Adapter throw-mid-batch contract
// ---------------------------------------------------------------------------

TEST(BatchExecutorThrow, AdapterKeepsEarlierLanesOnThrow) {
  // Directly drive an adapted stage: lane 2 of 4 throws after lanes 0 and 1
  // emitted. Their outputs must survive, and no partial lane may follow.
  BatchStage stage = adapt_stage([](Item&& input, std::vector<Item>& outputs) {
    const int value = std::any_cast<int>(input);
    if (value == 30) throw std::runtime_error("poison item");
    outputs.emplace_back(value + 1);
    outputs.emplace_back(value + 2);
  });

  std::vector<Item> lanes;
  for (int value : {10, 20, 30, 40}) lanes.emplace_back(value);
  LaneView view;
  view.lanes = lanes.size();
  view.items = lanes.data();

  BatchEmitter emitter;
  emitter.reset(lanes.size(), 1, true);
  EXPECT_THROW(stage.fn(view, emitter), std::runtime_error);

  // Lanes 0 and 1 fully delivered; the throwing lane and its successors
  // contributed nothing.
  ASSERT_EQ(emitter.lanes(), 4u);
  EXPECT_EQ(emitter.counts()[0], 2u);
  EXPECT_EQ(emitter.counts()[1], 2u);
  EXPECT_EQ(emitter.counts()[2], 0u);
  EXPECT_EQ(emitter.counts()[3], 0u);
  ASSERT_EQ(emitter.total(), 4u);
  EXPECT_EQ(std::any_cast<int>(emitter.items()[0]), 11);
  EXPECT_EQ(std::any_cast<int>(emitter.items()[1]), 12);
  EXPECT_EQ(std::any_cast<int>(emitter.items()[2]), 21);
  EXPECT_EQ(std::any_cast<int>(emitter.items()[3]), 22);
}

TEST(BatchExecutorThrow, ExecutorSurfacesStageExceptionAndStaysUsable) {
  auto spec = toy_spec();
  int throws_armed = 1;
  std::vector<StageFn> fns;
  fns.push_back([&throws_armed](Item&& input, std::vector<Item>& outputs) {
    const int value = std::any_cast<int>(input);
    if (value == 3 && throws_armed > 0) {
      --throws_armed;
      throw std::runtime_error("poison item");
    }
    outputs.emplace_back(value * 2);
  });
  fns.push_back([](Item&& input, std::vector<Item>& outputs) {
    outputs.push_back(std::move(input));
  });
  const PipelineExecutor engine(std::move(spec), std::move(fns));

  ExecutorConfig config;
  config.firing_intervals = {40.0, 40.0};
  config.input_gap = 5.0;
  const auto failed = engine.run(toy_inputs(8), config);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, "stage_exception");
  EXPECT_NE(failed.error().message.find("double"), std::string::npos)
      << "failure names the throwing node: " << failed.error().message;

  // The poison consumed, a fresh run on the same executor is clean and
  // complete — no partial lanes leaked into any internal queue.
  const auto clean = engine.run(toy_inputs(8), config);
  ASSERT_TRUE(clean.ok()) << clean.error().message;
  EXPECT_EQ(clean.value().base.sink_outputs, 8u);
  EXPECT_EQ(clean.value().base.inputs_arrived, 8u);
  ASSERT_EQ(clean.value().results.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(std::any_cast<int>(clean.value().results[i]),
              2 * static_cast<int>(i + 1));
  }
}

}  // namespace
}  // namespace ripple::runtime
