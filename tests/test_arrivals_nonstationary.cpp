// Non-homogeneous arrival processes: rate-function shapes, the deterministic
// variable-rate stream (exact gaps, no RNG consumption), and Lewis-Shedler
// thinning (determinism, empirical rate tracking the profile).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "arrivals/nonstationary.hpp"
#include "dist/rng.hpp"

namespace ripple::arrivals {
namespace {

// ---------------------------------------------------------------------------
// Rate functions
// ---------------------------------------------------------------------------

TEST(PiecewiseConstantRateTest, SegmentsAndFinalExtension) {
  PiecewiseConstantRate rate({0.0, 100.0, 250.0}, {0.5, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(rate.rate_at(0.0), 0.5);
  EXPECT_DOUBLE_EQ(rate.rate_at(99.9), 0.5);
  EXPECT_DOUBLE_EQ(rate.rate_at(100.0), 2.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(249.9), 2.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(250.0), 1.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(1e9), 1.0);
  EXPECT_DOUBLE_EQ(rate.max_rate(), 2.0);
}

TEST(PiecewiseConstantRateTest, RejectsMalformedKnots) {
  EXPECT_THROW(PiecewiseConstantRate({1.0}, {0.5}), std::logic_error);
  EXPECT_THROW(PiecewiseConstantRate({0.0, 5.0, 5.0}, {1.0, 2.0, 3.0}),
               std::logic_error);
  EXPECT_THROW(PiecewiseConstantRate({0.0}, {0.0}), std::logic_error);
  EXPECT_THROW(PiecewiseConstantRate({0.0, 1.0}, {1.0}), std::logic_error);
}

TEST(LinearRampRateTest, InterpolatesThenHolds) {
  LinearRampRate rate(1.0, 3.0, 200.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(100.0), 2.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(200.0), 3.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(5000.0), 3.0);
  EXPECT_DOUBLE_EQ(rate.max_rate(), 3.0);

  LinearRampRate down(3.0, 1.0, 200.0);
  EXPECT_DOUBLE_EQ(down.rate_at(100.0), 2.0);
  EXPECT_DOUBLE_EQ(down.max_rate(), 3.0);
}

TEST(SinusoidalRateTest, BoundsAndPeriodicity) {
  SinusoidalRate rate(2.0, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(0.0), 2.0);
  EXPECT_NEAR(rate.rate_at(25.0), 3.0, 1e-12);   // quarter period: peak
  EXPECT_NEAR(rate.rate_at(75.0), 1.0, 1e-12);   // three quarters: trough
  EXPECT_NEAR(rate.rate_at(100.0), 2.0, 1e-9);   // full period
  EXPECT_DOUBLE_EQ(rate.max_rate(), 3.0);
  EXPECT_THROW(SinusoidalRate(1.0, 1.5, 100.0), std::logic_error);
}

// ---------------------------------------------------------------------------
// Deterministic variable-rate stream
// ---------------------------------------------------------------------------

TEST(VariableRateArrivalsTest, GapIsExactInverseRateAtPreviousArrival) {
  auto rate = std::make_shared<PiecewiseConstantRate>(
      std::vector<Cycles>{0.0, 100.0}, std::vector<double>{0.1, 0.5});
  VariableRateArrivals process(rate);
  dist::Xoshiro256 rng(7);

  // First segment: gap = 1/0.1 = 10 until the clock crosses t = 100.
  Cycles t = 0.0;
  while (t < 100.0) {
    const Cycles gap = process.next_interarrival(rng);
    EXPECT_DOUBLE_EQ(gap, 1.0 / rate->rate_at(t));
    t += gap;
  }
  // Second segment: gap = 1/0.5 = 2 exactly.
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(process.next_interarrival(rng), 2.0);
  }
}

TEST(VariableRateArrivalsTest, NeverConsumesRng) {
  auto rate = std::make_shared<LinearRampRate>(0.1, 0.4, 1000.0);
  VariableRateArrivals process(rate);
  dist::Xoshiro256 rng(42);
  dist::Xoshiro256 untouched(42);
  for (int i = 0; i < 100; ++i) process.next_interarrival(rng);
  // The RNG stream must be bit-identical to one never handed out.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng(), untouched());
  }
}

TEST(VariableRateArrivalsTest, FixedInterarrivalStaysZero) {
  auto rate = std::make_shared<PiecewiseConstantRate>(
      std::vector<Cycles>{0.0}, std::vector<double>{0.25});
  VariableRateArrivals process(rate);
  // The gap varies with rho(t) in general, so the hoisting hint must stay
  // disabled even for a constant profile.
  EXPECT_DOUBLE_EQ(process.fixed_interarrival(), 0.0);
}

// ---------------------------------------------------------------------------
// Thinned Poisson stream
// ---------------------------------------------------------------------------

TEST(ThinningArrivalsTest, DeterministicGivenSeed) {
  auto rate = std::make_shared<SinusoidalRate>(0.2, 0.1, 500.0);
  ThinningArrivals a(rate);
  ThinningArrivals b(rate);
  dist::Xoshiro256 rng_a(99);
  dist::Xoshiro256 rng_b(99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a.next_interarrival(rng_a), b.next_interarrival(rng_b));
  }
}

TEST(ThinningArrivalsTest, EmpiricalRateMatchesConstantProfile) {
  // With a constant profile thinning reduces to a plain Poisson process.
  auto rate = std::make_shared<PiecewiseConstantRate>(
      std::vector<Cycles>{0.0}, std::vector<double>{0.05});
  ThinningArrivals process(rate);
  dist::Xoshiro256 rng(2024);
  const int n = 20000;
  Cycles total = 0.0;
  for (int i = 0; i < n; ++i) total += process.next_interarrival(rng);
  const double empirical_rate = n / total;
  EXPECT_NEAR(empirical_rate, 0.05, 0.05 * 0.05);  // within 5%
}

TEST(ThinningArrivalsTest, TracksRateStep) {
  auto rate = std::make_shared<PiecewiseConstantRate>(
      std::vector<Cycles>{0.0, 50000.0}, std::vector<double>{0.02, 0.2});
  ThinningArrivals process(rate);
  dist::Xoshiro256 rng(11);
  // Run well past the step, then measure the post-step empirical rate.
  while (process.now() < 100000.0) process.next_interarrival(rng);
  const Cycles start = process.now();
  int count = 0;
  while (process.now() < start + 50000.0) {
    process.next_interarrival(rng);
    ++count;
  }
  const double empirical = count / (process.now() - start);
  EXPECT_NEAR(empirical, 0.2, 0.2 * 0.1);  // within 10%
}

TEST(FactoriesTest, ProduceIndependentProcesses) {
  auto rate = std::make_shared<PiecewiseConstantRate>(
      std::vector<Cycles>{0.0, 10.0}, std::vector<double>{1.0, 0.5});
  ArrivalFactory factory = variable_rate_factory(rate);
  ArrivalPtr first = factory();
  dist::Xoshiro256 rng(1);
  for (int i = 0; i < 30; ++i) first->next_interarrival(rng);
  // A second instance starts from t = 0 again (fresh clock per trial).
  ArrivalPtr second = factory();
  EXPECT_DOUBLE_EQ(second->next_interarrival(rng), 1.0);

  ArrivalFactory thinned = thinning_factory(rate);
  dist::Xoshiro256 rng_a(5);
  dist::Xoshiro256 rng_b(5);
  EXPECT_DOUBLE_EQ(thinned()->next_interarrival(rng_a),
                   thinned()->next_interarrival(rng_b));
}

}  // namespace
}  // namespace ripple::arrivals
