#include "blast/sequence.hpp"

#include <gtest/gtest.h>

#include <array>

namespace ripple::blast {
namespace {

TEST(RandomSequence, LengthAndAlphabet) {
  dist::Xoshiro256 rng(1);
  const Sequence seq = random_sequence(10000, rng);
  EXPECT_EQ(seq.size(), 10000u);
  for (Base base : seq) EXPECT_LT(base, kAlphabetSize);
}

TEST(RandomSequence, RoughlyUniformComposition) {
  dist::Xoshiro256 rng(2);
  const Sequence seq = random_sequence(100000, rng);
  std::array<int, 4> counts{};
  for (Base base : seq) ++counts[base];
  for (int c : counts) EXPECT_NEAR(c, 25000, 1200);
}

TEST(RandomSequence, DeterministicForSeed) {
  dist::Xoshiro256 a(3);
  dist::Xoshiro256 b(3);
  EXPECT_EQ(random_sequence(1000, a), random_sequence(1000, b));
}

TEST(PlantHomology, ZeroMutationCopiesExactly) {
  dist::Xoshiro256 rng(4);
  const Sequence source = random_sequence(100, rng);
  Sequence target = random_sequence(100, rng);
  plant_homology(source, 10, target, 20, 50, 0.0, rng);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(target[20 + i], source[10 + i]);
  }
}

TEST(PlantHomology, FullMutationChangesEveryBase) {
  dist::Xoshiro256 rng(5);
  const Sequence source = random_sequence(100, rng);
  Sequence target(100, 0);
  plant_homology(source, 0, target, 0, 100, 1.0, rng);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NE(target[i], source[i]) << i;
    EXPECT_LT(target[i], kAlphabetSize);
  }
}

TEST(PlantHomology, MutationRateApproximatelyRespected) {
  dist::Xoshiro256 rng(6);
  const Sequence source = random_sequence(20000, rng);
  Sequence target(20000, 0);
  plant_homology(source, 0, target, 0, 20000, 0.1, rng);
  int differences = 0;
  for (std::size_t i = 0; i < 20000; ++i) {
    differences += (target[i] != source[i]);
  }
  EXPECT_NEAR(differences, 2000, 250);
}

TEST(PlantHomology, BoundsChecked) {
  dist::Xoshiro256 rng(7);
  const Sequence source = random_sequence(100, rng);
  Sequence target = random_sequence(100, rng);
  EXPECT_THROW(plant_homology(source, 60, target, 0, 50, 0.1, rng),
               std::logic_error);
  EXPECT_THROW(plant_homology(source, 0, target, 60, 50, 0.1, rng),
               std::logic_error);
  EXPECT_THROW(plant_homology(source, 0, target, 0, 50, 1.5, rng),
               std::logic_error);
}

TEST(SequencePair, ConfiguredSizes) {
  dist::Xoshiro256 rng(8);
  SequencePairConfig config;
  config.subject_length = 5000;
  config.query_length = 2000;
  config.homology_count = 3;
  config.homology_length = 200;
  const SequencePair pair = make_sequence_pair(config, rng);
  EXPECT_EQ(pair.subject.size(), 5000u);
  EXPECT_EQ(pair.query.size(), 2000u);
}

TEST(SequencePair, HomologyTooLongRejected) {
  dist::Xoshiro256 rng(9);
  SequencePairConfig config;
  config.query_length = 100;
  config.homology_length = 200;
  EXPECT_THROW((void)make_sequence_pair(config, rng), std::logic_error);
}

TEST(ToString, RendersBases) {
  EXPECT_EQ(to_string({0, 1, 2, 3}), "ACGT");
  EXPECT_EQ(to_string({}), "");
}

}  // namespace
}  // namespace ripple::blast
