// ripple.frame.v1 codec: encode/decode roundtrips, incremental (split)
// feeding, and the malformed-input fuzz contract — truncated, bit-flipped,
// version-skewed, or random bytes must yield a DecodeStatus, never a crash,
// an over-read, or a bogus kOk.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

namespace ripple::net {
namespace {

std::vector<std::uint8_t> encode_batch(std::uint64_t session,
                                       std::initializer_list<std::uint64_t> items) {
  std::vector<std::uint64_t> values(items);
  std::vector<std::uint8_t> out;
  append_item_batch(out, session, values.data(), values.size());
  return out;
}

TEST(NetFrame, ControlFrameRoundtrip) {
  std::vector<std::uint8_t> buf;
  append_control_frame(buf, FrameType::kOpenSession, 0xDEADBEEFCAFEBABEull);
  ASSERT_EQ(buf.size(), kFrameHeaderSize);
  const DecodeResult result = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.frame.type, FrameType::kOpenSession);
  EXPECT_EQ(result.frame.session, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(result.frame.payload_len, 0u);
  EXPECT_EQ(result.consumed, buf.size());
}

TEST(NetFrame, U64FrameRoundtrip) {
  std::vector<std::uint8_t> buf;
  append_u64_frame(buf, FrameType::kBackpressure, 7, 123456789ull);
  const DecodeResult result = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.frame.type, FrameType::kBackpressure);
  std::uint64_t value = 0;
  ASSERT_TRUE(parse_u64_payload(result.frame, value));
  EXPECT_EQ(value, 123456789ull);
}

TEST(NetFrame, ItemBatchRoundtrip) {
  const std::vector<std::uint8_t> buf = encode_batch(42, {1, 2, 3, 0xFFFFFFFFFFFFFFFFull});
  const DecodeResult result = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.frame.session, 42u);
  ItemBatchView batch;
  ASSERT_TRUE(parse_item_batch(result.frame, batch));
  ASSERT_EQ(batch.count, 4u);
  EXPECT_EQ(batch.item(0), 1u);
  EXPECT_EQ(batch.item(3), 0xFFFFFFFFFFFFFFFFull);
}

TEST(NetFrame, BackToBackFramesDecodeSequentially) {
  std::vector<std::uint8_t> buf;
  append_control_frame(buf, FrameType::kOpenSession, 1);
  append_u64_frame(buf, FrameType::kSessionOpened, 1, 99);
  const DecodeResult first = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(first.status, DecodeStatus::kOk);
  EXPECT_EQ(first.frame.type, FrameType::kOpenSession);
  const DecodeResult second =
      decode_frame(buf.data() + first.consumed, buf.size() - first.consumed);
  ASSERT_EQ(second.status, DecodeStatus::kOk);
  EXPECT_EQ(second.frame.type, FrameType::kSessionOpened);
}

// Every strict prefix of a valid frame is kNeedMore — the incremental
// reader's contract: feeding a split stream never errors mid-frame.
TEST(NetFrame, EveryPrefixNeedsMore) {
  const std::vector<std::uint8_t> buf = encode_batch(5, {10, 20, 30});
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const DecodeResult result = decode_frame(buf.data(), len);
    EXPECT_EQ(result.status, DecodeStatus::kNeedMore) << "prefix " << len;
    EXPECT_EQ(result.consumed, 0u);
  }
}

TEST(NetFrame, RejectsBadMagic) {
  std::vector<std::uint8_t> buf;
  append_control_frame(buf, FrameType::kOpenSession, 1);
  buf[0] ^= 0xFF;
  EXPECT_EQ(decode_frame(buf.data(), buf.size()).status,
            DecodeStatus::kBadMagic);
}

TEST(NetFrame, RejectsVersionSkew) {
  std::vector<std::uint8_t> buf;
  append_control_frame(buf, FrameType::kOpenSession, 1);
  buf[4] = kFrameVersion + 1;  // a future version must not half-parse
  EXPECT_EQ(decode_frame(buf.data(), buf.size()).status,
            DecodeStatus::kBadVersion);
}

TEST(NetFrame, RejectsUnknownType) {
  std::vector<std::uint8_t> buf;
  append_control_frame(buf, FrameType::kOpenSession, 1);
  buf[5] = 0;
  EXPECT_EQ(decode_frame(buf.data(), buf.size()).status, DecodeStatus::kBadType);
  buf[5] = 200;
  EXPECT_EQ(decode_frame(buf.data(), buf.size()).status, DecodeStatus::kBadType);
}

TEST(NetFrame, RejectsReservedFlags) {
  std::vector<std::uint8_t> buf;
  append_control_frame(buf, FrameType::kOpenSession, 1);
  buf[6] = 1;
  EXPECT_EQ(decode_frame(buf.data(), buf.size()).status,
            DecodeStatus::kBadFlags);
}

TEST(NetFrame, RejectsOversizedPayloadWithoutBuffering) {
  std::vector<std::uint8_t> buf;
  append_control_frame(buf, FrameType::kItemBatch, 1);
  // Claim a payload beyond the bound; only the header is present, but the
  // length check must fire before kNeedMore asks the caller to buffer 2 GiB.
  const std::uint32_t huge = 1u << 31;
  buf[8] = static_cast<std::uint8_t>(huge);
  buf[9] = static_cast<std::uint8_t>(huge >> 8);
  buf[10] = static_cast<std::uint8_t>(huge >> 16);
  buf[11] = static_cast<std::uint8_t>(huge >> 24);
  EXPECT_EQ(decode_frame(buf.data(), buf.size()).status,
            DecodeStatus::kBadLength);
}

TEST(NetFrame, RejectsCorruptPayload) {
  std::vector<std::uint8_t> buf = encode_batch(1, {7, 8, 9});
  buf[kFrameHeaderSize + 5] ^= 0x40;  // flip a payload bit
  EXPECT_EQ(decode_frame(buf.data(), buf.size()).status, DecodeStatus::kBadCrc);
}

TEST(NetFrame, ItemBatchCountMustMatchLength) {
  // A structurally valid frame whose batch header lies about the count.
  std::vector<std::uint8_t> payload;
  put_u32(payload, 3);   // claims 3 items...
  put_u64(payload, 1);   // ...carries 1
  std::vector<std::uint8_t> buf;
  append_frame(buf, FrameType::kItemBatch, 1, payload.data(), payload.size());
  const DecodeResult result = decode_frame(buf.data(), buf.size());
  ASSERT_EQ(result.status, DecodeStatus::kOk);  // framing is fine
  ItemBatchView batch;
  EXPECT_FALSE(parse_item_batch(result.frame, batch));  // structure is not
}

// Single-bit corruption of a valid frame must never yield kOk with altered
// content: any flip lands in a validated header field or the CRC'd payload.
TEST(NetFrameFuzz, EveryBitFlipIsDetected) {
  const std::vector<std::uint8_t> golden = encode_batch(99, {11, 22, 33});
  for (std::size_t bit = 0; bit < golden.size() * 8; ++bit) {
    std::vector<std::uint8_t> buf = golden;
    buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const DecodeResult result = decode_frame(buf.data(), buf.size());
    if (result.status != DecodeStatus::kOk) continue;
    // The only flips that survive land in the two fields without payload
    // redundancy: the type byte (valid codes one bit apart) and the session
    // id. The CRC'd payload itself must be untouched either way.
    ASSERT_EQ(result.frame.payload_len, 4u + 3 * 8u);
    EXPECT_EQ(std::memcmp(result.frame.payload,
                          golden.data() + kFrameHeaderSize,
                          result.frame.payload_len),
              0);
    EXPECT_TRUE(result.frame.type != FrameType::kItemBatch ||
                result.frame.session != 99u)
        << "bit " << bit << " altered nothing the decoder checks";
  }
}

// Random garbage: the decoder must classify without crashing or over-reading
// (ASAN/valgrind would catch the latter; the guard bytes catch gross cases).
TEST(NetFrameFuzz, RandomBuffersNeverCrash) {
  std::mt19937_64 rng(0x52495046u);  // "RIPF"
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng() % 128);
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(byte(rng));
    const DecodeResult result = decode_frame(buf.data(), buf.size());
    if (result.status == DecodeStatus::kOk) {
      EXPECT_LE(result.consumed, buf.size());
      EXPECT_LE(result.frame.payload_len + kFrameHeaderSize, buf.size());
    } else {
      EXPECT_EQ(result.consumed, 0u);
    }
  }
}

// Truncating a valid multi-frame stream at every byte: the decodable prefix
// parses, the remainder reports kNeedMore — never an error status that would
// make the server drop a merely-slow client.
TEST(NetFrameFuzz, TruncatedStreamsReportNeedMore) {
  std::vector<std::uint8_t> stream;
  append_control_frame(stream, FrameType::kOpenSession, 3);
  const std::vector<std::uint8_t> batch = encode_batch(3, {5, 6});
  stream.insert(stream.end(), batch.begin(), batch.end());
  append_control_frame(stream, FrameType::kCloseSession, 3);

  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    std::size_t pos = 0;
    while (true) {
      const DecodeResult result = decode_frame(stream.data() + pos, cut - pos);
      if (result.status != DecodeStatus::kOk) {
        EXPECT_EQ(result.status, DecodeStatus::kNeedMore)
            << "cut=" << cut << " pos=" << pos;
        break;
      }
      pos += result.consumed;
      if (pos == cut) break;
    }
  }
}

TEST(NetFrame, Crc32MatchesKnownVector) {
  // The IEEE reflected CRC-32 of "123456789" is the classic check value.
  const char* check = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(check), 9),
            0xCBF43926u);
}

}  // namespace
}  // namespace ripple::net
