#include "core/tradeoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blast/canonical.hpp"
#include "sdf/analysis.hpp"

namespace ripple::core {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

EnforcedWaitsConfig paper_config() {
  return EnforcedWaitsConfig{blast::paper_calibrated_b()};
}

TEST(Tradeoff, RateBoundTau0Fails) {
  auto curve = trace_tradeoff(blast_pipeline(), paper_config(), {}, 1.0);
  ASSERT_FALSE(curve.ok());
  EXPECT_EQ(curve.error().code, "infeasible");
}

TEST(Tradeoff, CurveStartsAtTheFeasibilityFloor) {
  const auto pipeline = blast_pipeline();
  auto curve = trace_tradeoff(pipeline, paper_config(), {}, 50.0);
  ASSERT_TRUE(curve.ok());
  const auto& points = curve.value().points;
  ASSERT_GE(points.size(), 2u);
  const Cycles floor =
      sdf::minimal_deadline_budget(pipeline, blast::paper_calibrated_b());
  EXPECT_NEAR(points.front().deadline, floor, 1e-6 * floor);
  EXPECT_TRUE(points.front().enforced_feasible);
}

TEST(Tradeoff, EnforcedFractionDecreasesAlongTheCurve) {
  auto curve = trace_tradeoff(blast_pipeline(), paper_config(), {}, 50.0);
  ASSERT_TRUE(curve.ok());
  double previous = 2.0;
  for (const auto& point : curve.value().points) {
    if (!point.enforced_feasible) continue;
    EXPECT_LE(point.enforced_active_fraction, previous + 1e-9);
    previous = point.enforced_active_fraction;
  }
}

TEST(Tradeoff, ApproachesTheRateLimitedFloor) {
  const auto pipeline = blast_pipeline();
  TradeoffConfig config;
  config.floor_tolerance = 0.01;
  auto curve = trace_tradeoff(pipeline, paper_config(), {}, 50.0, config);
  ASSERT_TRUE(curve.ok());
  const auto& c = curve.value();
  EXPECT_NEAR(c.enforced_floor,
              sdf::unconstrained_active_fraction(pipeline, 50.0), 1e-12);
  // The last feasible point should be near the floor (auto-extended sweep).
  double last = 1.0;
  for (const auto& point : c.points) {
    if (point.enforced_feasible) last = point.enforced_active_fraction;
  }
  EXPECT_LT(last - c.enforced_floor, 0.02);
  EXPECT_GE(last, c.enforced_floor - 1e-9);  // never below the floor
}

TEST(Tradeoff, KneeSitsBetweenTheEndpoints) {
  auto curve = trace_tradeoff(blast_pipeline(), paper_config(), {}, 50.0);
  ASSERT_TRUE(curve.ok());
  const auto& c = curve.value();
  ASSERT_NE(c.knee(), nullptr);
  EXPECT_GT(c.knee()->deadline, c.points.front().deadline);
  EXPECT_LT(c.knee()->deadline, c.points.back().deadline);
  // The knee's fraction is strictly between floor and start.
  EXPECT_LT(c.knee()->enforced_active_fraction,
            c.points.front().enforced_active_fraction);
  EXPECT_GT(c.knee()->enforced_active_fraction, c.enforced_floor);
}

TEST(Tradeoff, MonolithicFlatOnceFeasible) {
  // At tau0 = 50, monolithic AF varies far less with D than enforced waits'
  // (paper Figure 3 right).
  auto curve = trace_tradeoff(blast_pipeline(), paper_config(), {}, 50.0);
  ASSERT_TRUE(curve.ok());
  double mono_min = 1.0;
  double mono_max = 0.0;
  double enforced_min = 1.0;
  double enforced_max = 0.0;
  for (const auto& point : curve.value().points) {
    if (point.monolithic_feasible) {
      mono_min = std::min(mono_min, point.monolithic_active_fraction);
      mono_max = std::max(mono_max, point.monolithic_active_fraction);
    }
    if (point.enforced_feasible) {
      enforced_min = std::min(enforced_min, point.enforced_active_fraction);
      enforced_max = std::max(enforced_max, point.enforced_active_fraction);
    }
  }
  EXPECT_LT(mono_max - mono_min, enforced_max - enforced_min);
}

TEST(Tradeoff, ExplicitMaxDeadlineRespected) {
  TradeoffConfig config;
  config.samples = 10;
  config.max_deadline = 1e5;
  auto curve = trace_tradeoff(blast_pipeline(), paper_config(), {}, 50.0, config);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve.value().points.size(), 10u);
  EXPECT_NEAR(curve.value().points.back().deadline, 1e5, 1.0);
}

}  // namespace
}  // namespace ripple::core
