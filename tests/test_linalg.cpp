#include <gtest/gtest.h>

#include <cmath>

#include "dist/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/vector.hpp"

namespace ripple::linalg {
namespace {

TEST(Vector, AddSubtractScale) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 5.0};
  EXPECT_EQ(add(a, b), (Vector{4.0, 7.0}));
  EXPECT_EQ(subtract(b, a), (Vector{2.0, 3.0}));
  EXPECT_EQ(scale(a, 2.0), (Vector{2.0, 4.0}));
}

TEST(Vector, AxpyAccumulates) {
  Vector a{1.0, 1.0};
  axpy(a, 2.0, Vector{3.0, 4.0});
  EXPECT_EQ(a, (Vector{7.0, 9.0}));
}

TEST(Vector, DotAndNorms) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-7.0, 2.0}), 7.0);
}

TEST(Vector, SizeMismatchThrows) {
  EXPECT_THROW((void)add({1.0}, {1.0, 2.0}), std::logic_error);
  EXPECT_THROW((void)dot({1.0}, {1.0, 2.0}), std::logic_error);
}

TEST(Matrix, IdentityAndMultiply) {
  const Matrix eye = Matrix::identity(3);
  const Vector x{1.0, 2.0, 3.0};
  EXPECT_EQ(eye.multiply(x), x);
}

TEST(Matrix, MatrixVectorMultiply) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  EXPECT_EQ(a.multiply(Vector{1.0, 1.0, 1.0}), (Vector{6.0, 15.0}));
}

TEST(Matrix, MatrixMatrixMultiply) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, Transpose) {
  Matrix a(2, 3);
  a(0, 2) = 7.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(Matrix, IndexOutOfRangeThrows) {
  Matrix a(2, 2);
  EXPECT_THROW((void)a(2, 0), std::logic_error);
}

TEST(SolveLu, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 3;
  auto x = solve_lu(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-12);
}

TEST(SolveLu, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 0;
  auto x = solve_lu(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 3.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-12);
}

TEST(SolveLu, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 4;
  auto x = solve_lu(a, {1.0, 2.0});
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.error().code, "singular");
}

TEST(SolveCholesky, SolvesSpdSystem) {
  Matrix a(3, 3);
  // SPD: A = L L^T with L = [[2,0,0],[1,2,0],[0,1,2]]
  a(0, 0) = 4; a(0, 1) = 2; a(0, 2) = 0;
  a(1, 0) = 2; a(1, 1) = 5; a(1, 2) = 2;
  a(2, 0) = 0; a(2, 1) = 2; a(2, 2) = 5;
  const Vector truth{1.0, -2.0, 3.0};
  const Vector rhs = a.multiply(truth);
  auto x = solve_cholesky(a, rhs);
  ASSERT_TRUE(x.ok());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x.value()[i], truth[i], 1e-10);
}

TEST(SolveCholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  auto x = solve_cholesky(a, {1.0, 1.0});
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.error().code, "not_spd");
}

TEST(Determinant, KnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 1; a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_NEAR(determinant(a), 10.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix::identity(4)), 1.0, 1e-12);
}

TEST(Determinant, SingularIsZero) {
  Matrix a(2, 2, 1.0);
  EXPECT_DOUBLE_EQ(determinant(a), 0.0);
}

/// Property: LU solve then multiply returns the rhs, over random SPD-ish
/// systems of several sizes.
class SolveRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SolveRoundTrip, LuRecoversRhs) {
  const int n = GetParam();
  dist::Xoshiro256 rng(1234 + n);
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = rng.uniform01() - 0.5;
    a(i, i) += static_cast<double>(n);  // diagonally dominant: invertible
  }
  Vector truth(n);
  for (int i = 0; i < n; ++i) truth[i] = rng.uniform01() * 10.0 - 5.0;
  const Vector rhs = a.multiply(truth);
  auto x = solve_lu(a, rhs);
  ASSERT_TRUE(x.ok());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x.value()[i], truth[i], 1e-8);
}

TEST_P(SolveRoundTrip, CholeskyMatchesLuOnSpd) {
  const int n = GetParam();
  dist::Xoshiro256 rng(77 + n);
  // Build SPD via B^T B + n I.
  Matrix b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b(i, j) = rng.uniform01() - 0.5;
  }
  Matrix a = b.transposed().multiply(b);
  a.add_diagonal(static_cast<double>(n));
  Vector rhs(n);
  for (int i = 0; i < n; ++i) rhs[i] = rng.uniform01();
  auto via_lu = solve_lu(a, rhs);
  auto via_chol = solve_cholesky(a, rhs);
  ASSERT_TRUE(via_lu.ok());
  ASSERT_TRUE(via_chol.ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(via_lu.value()[i], via_chol.value()[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

}  // namespace
}  // namespace ripple::linalg
