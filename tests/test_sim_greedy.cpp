#include "sim/greedy_sim.hpp"

#include <gtest/gtest.h>

#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "sim/enforced_sim.hpp"

namespace ripple::sim {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

TEST(GreedySim, ValidatesConfig) {
  const auto pipeline = blast_pipeline();
  arrivals::FixedRateArrivals arrival_process(10.0);
  GreedySimConfig config;
  config.min_batch = 0;
  EXPECT_THROW((void)simulate_greedy_throughput(pipeline, arrival_process, config),
               std::logic_error);
}

TEST(GreedySim, ConservesItems) {
  const auto pipeline = blast_pipeline();
  arrivals::FixedRateArrivals arrival_process(10.0);
  GreedySimConfig config;
  config.input_count = 20000;
  config.seed = 1;
  const auto metrics =
      simulate_greedy_throughput(pipeline, arrival_process, config);
  EXPECT_EQ(metrics.nodes[0].items_consumed, metrics.inputs_arrived);
  for (std::size_t i = 0; i + 1 < pipeline.size(); ++i) {
    EXPECT_EQ(metrics.nodes[i + 1].items_consumed,
              metrics.nodes[i].items_produced);
  }
  EXPECT_EQ(metrics.nodes.back().items_consumed, metrics.sink_outputs);
}

TEST(GreedySim, NoEmptyFirings) {
  const auto pipeline = blast_pipeline();
  arrivals::FixedRateArrivals arrival_process(50.0);
  GreedySimConfig config;
  config.input_count = 10000;
  config.seed = 2;
  const auto metrics =
      simulate_greedy_throughput(pipeline, arrival_process, config);
  for (const auto& node : metrics.nodes) {
    EXPECT_EQ(node.empty_firings, 0u);
  }
}

TEST(GreedySim, DeterministicForSeed) {
  const auto pipeline = blast_pipeline();
  GreedySimConfig config;
  config.input_count = 5000;
  config.seed = 3;
  arrivals::FixedRateArrivals a1(10.0);
  arrivals::FixedRateArrivals a2(10.0);
  const auto m1 = simulate_greedy_throughput(pipeline, a1, config);
  const auto m2 = simulate_greedy_throughput(pipeline, a2, config);
  EXPECT_EQ(m1.sink_outputs, m2.sink_outputs);
  EXPECT_DOUBLE_EQ(m1.makespan, m2.makespan);
}

TEST(GreedySim, FullVectorGatingRaisesOccupancy) {
  const auto pipeline = blast_pipeline();
  auto run = [&](std::uint32_t min_batch) {
    arrivals::FixedRateArrivals arrival_process(10.0);
    GreedySimConfig config;
    config.input_count = 30000;
    config.min_batch = min_batch;
    config.seed = 4;
    return simulate_greedy_throughput(pipeline, arrival_process, config);
  };
  const auto eager = run(1);
  const auto gated = run(128);
  EXPECT_GT(gated.overall_occupancy(), eager.overall_occupancy());
  // Higher occupancy = fewer firings = less active time for the same work.
  Cycles eager_active = 0.0;
  Cycles gated_active = 0.0;
  for (const auto& node : eager.nodes) eager_active += node.active_time;
  for (const auto& node : gated.nodes) gated_active += node.active_time;
  EXPECT_LT(gated_active, eager_active);
}

TEST(GreedySim, GatingTradesLatencyForOccupancy) {
  const auto pipeline = blast_pipeline();
  auto run = [&](std::uint32_t min_batch) {
    arrivals::FixedRateArrivals arrival_process(50.0);
    GreedySimConfig config;
    config.input_count = 20000;
    config.min_batch = min_batch;
    config.seed = 5;
    return simulate_greedy_throughput(pipeline, arrival_process, config);
  };
  const auto eager = run(1);
  const auto gated = run(128);
  ASSERT_GT(eager.output_latency.count(), 0u);
  ASSERT_GT(gated.output_latency.count(), 0u);
  EXPECT_GT(gated.output_latency.mean(), eager.output_latency.mean());
}

TEST(GreedySim, SustainsRatesTheStrategiesCannot) {
  // tau0 = 3 is infeasible for the monolithic strategy (stability needs
  // 7.87) and tight for enforced waits; the greedy throughput baseline,
  // which runs nodes exclusively at t_i / N, keeps up easily — the paper's
  // point that throughput-oriented mappings excel at throughput.
  const auto pipeline = blast_pipeline();
  arrivals::FixedRateArrivals arrival_process(3.0);
  GreedySimConfig config;
  config.input_count = 30000;
  config.seed = 6;
  const auto metrics =
      simulate_greedy_throughput(pipeline, arrival_process, config);
  EXPECT_EQ(metrics.sink_outputs, metrics.nodes.back().items_consumed);
  // Drained not long after the last arrival.
  EXPECT_LT(metrics.makespan, 3.0 * 30000 * 1.2);
}

TEST(GreedySim, UnboundedLatencyUnderGating) {
  // The baseline's flaw (the paper's motivation): nothing bounds how long an
  // item waits. With full-vector gating, stage-3 inputs trickle in at
  // G_3 = 0.024 per input, so a full 128-vector takes ~128 * tau0 / 0.024 ~
  // 212k cycles to accumulate at tau0 = 40: the first items of each vector
  // blow any reasonable deadline even though throughput is fine.
  const auto pipeline = blast_pipeline();
  arrivals::FixedRateArrivals arrival_process(40.0);
  GreedySimConfig config;
  config.input_count = 50000;
  config.min_batch = 128;
  config.deadline = 1.5e5;
  config.seed = 7;
  const auto metrics =
      simulate_greedy_throughput(pipeline, arrival_process, config);
  EXPECT_GT(metrics.inputs_missed, 0u);
  EXPECT_GT(metrics.output_latency.max(), 1.5e5);
}

TEST(GreedySim, EagerActiveFractionMatchesPerItemWork) {
  // Sparse arrivals and an eager policy: every firing carries ~1 item, so
  // the active time per input is sum_i G_i * t_i / N (no SIMD amortization),
  // and the active fraction is that over tau0.
  const auto pipeline = blast_pipeline();
  const double tau0 = 1000.0;
  arrivals::FixedRateArrivals arrival_process(tau0);
  GreedySimConfig config;
  config.input_count = 1000;
  config.seed = 8;
  const auto metrics =
      simulate_greedy_throughput(pipeline, arrival_process, config);
  double per_item_work = 0.0;
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    per_item_work +=
        pipeline.total_gain_into(i) * pipeline.service_time(i) / 4.0;
  }
  EXPECT_NEAR(metrics.active_fraction(), per_item_work / tau0,
              0.2 * per_item_work / tau0);

  // Full-vector gating amortizes the same work across up to v lanes: far
  // less active time for identical throughput.
  arrivals::FixedRateArrivals a2(tau0);
  GreedySimConfig gated = config;
  gated.min_batch = 128;
  const auto gated_metrics = simulate_greedy_throughput(pipeline, a2, gated);
  EXPECT_LT(gated_metrics.active_fraction(), 0.3 * metrics.active_fraction());
}

}  // namespace
}  // namespace ripple::sim
