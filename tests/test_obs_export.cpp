#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "obs/obs.hpp"
#include "sim/enforced_sim.hpp"
#include "util/jsonv.hpp"

namespace ripple::obs {
namespace {

TraceEvent make_event(const char* name, double ts, TraceKind kind,
                      Domain domain, std::uint32_t track, double value = 0.0) {
  TraceEvent event;
  event.name = name;
  event.ts = ts;
  event.value = value;
  event.track = track;
  event.domain = domain;
  event.kind = kind;
  return event;
}

/// A tiny two-domain sequence exercising every phase type.
std::vector<TraceEvent> sample_events() {
  return {
      make_event("fire", 1.0, TraceKind::kBegin, Domain::kSim, 0),
      make_event("queue_depth", 1.0, TraceKind::kCounter, Domain::kSim, 0, 3.0),
      make_event("deadline_miss", 2.5, TraceKind::kInstant, Domain::kSim, 0,
                 -10.0),
      make_event("fire", 4.0, TraceKind::kEnd, Domain::kSim, 0),
      make_event("trial", 0.0, TraceKind::kBegin, Domain::kHost, 1),
      make_event("trial", 9.0, TraceKind::kEnd, Domain::kHost, 1),
  };
}

// The exact bytes the exporter must produce for sample_events(): the schema
// header, process/thread metadata from sorted sets, then the events in input
// order. Any change to the document format must update this golden (and
// docs/OBSERVABILITY.md).
constexpr const char* kGolden =
    "{\"schema\":\"ripple.trace.v1\",\"displayTimeUnit\":\"ms\","
    "\"otherData\":{\"dropped_events\":0,"
    "\"sim_clock\":\"virtual cycles rendered as us\","
    "\"host_clock\":\"wall-clock us since session epoch\"},"
    "\"traceEvents\":["
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
    "\"args\":{\"name\":\"host (wall-clock us)\"}},"
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":100,"
    "\"args\":{\"name\":\"sim ring 0 (virtual cycles)\"}},"
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
    "\"args\":{\"name\":\"worker 1\"}},"
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":100,\"tid\":0,"
    "\"args\":{\"name\":\"seed_filter\"}},"
    "{\"name\":\"fire\",\"ph\":\"B\",\"pid\":100,\"tid\":0,\"ts\":1},"
    "{\"name\":\"queue_depth\",\"ph\":\"C\",\"pid\":100,\"tid\":0,\"ts\":1,"
    "\"args\":{\"value\":3}},"
    "{\"name\":\"deadline_miss\",\"ph\":\"i\",\"pid\":100,\"tid\":0,"
    "\"ts\":2.5,\"s\":\"t\",\"args\":{\"value\":-10}},"
    "{\"name\":\"fire\",\"ph\":\"E\",\"pid\":100,\"tid\":0,\"ts\":4},"
    "{\"name\":\"trial\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},"
    "{\"name\":\"trial\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":9}"
    "]}";

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::global().clear();
    set_enabled(false);
  }
  void TearDown() override {
    set_enabled(false);
    TraceSession::global().clear();
  }
};

TEST_F(ExportTest, GoldenDocumentIsByteExact) {
  auto& session = TraceSession::global();
  session.set_track_name(Domain::kSim, 0, "seed_filter");
  session.set_track_name(Domain::kHost, 1, "worker 1");
  std::ostringstream out;
  write_chrome_trace(out, sample_events(), session);
  EXPECT_EQ(out.str(), kGolden);
}

TEST_F(ExportTest, DocumentIsDeterministicAndParses) {
  auto& session = TraceSession::global();
  session.set_track_name(Domain::kSim, 0, "seed_filter");
  std::ostringstream first;
  write_chrome_trace(first, sample_events(), session);
  std::ostringstream second;
  write_chrome_trace(second, sample_events(), session);
  EXPECT_EQ(first.str(), second.str());

  auto document = util::parse_json(first.str());
  ASSERT_TRUE(document.ok()) << document.error().message;
  const util::JsonValue* events = document.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 process_name + 2 thread_name metadata rows precede the 6 events
  // (track 1 falls back to a generated "track 1" label).
  EXPECT_EQ(events->as_array().size(), 10u);
}

TEST_F(ExportTest, ValidatorAcceptsWellNestedSpans) {
  auto nested = sample_events();
  auto verdict = validate_span_nesting(nested);
  EXPECT_TRUE(verdict.ok()) << verdict.error().message;
}

TEST_F(ExportTest, ValidatorRejectsMismatchedAndUnclosedSpans) {
  // End without a begin.
  std::vector<TraceEvent> orphan_end = {
      make_event("fire", 1.0, TraceKind::kEnd, Domain::kSim, 0)};
  EXPECT_EQ(validate_span_nesting(orphan_end).error().code, "bad_nesting");

  // End name does not match the innermost open span.
  std::vector<TraceEvent> mismatched = {
      make_event("fire", 1.0, TraceKind::kBegin, Domain::kSim, 0),
      make_event("service", 2.0, TraceKind::kEnd, Domain::kSim, 0)};
  EXPECT_EQ(validate_span_nesting(mismatched).error().code, "bad_nesting");

  // Begin that never closes.
  std::vector<TraceEvent> unclosed = {
      make_event("fire", 1.0, TraceKind::kBegin, Domain::kSim, 0)};
  EXPECT_EQ(validate_span_nesting(unclosed).error().code, "bad_nesting");

  // Same names on different tracks are independent lanes, not a mismatch.
  std::vector<TraceEvent> lanes = {
      make_event("fire", 1.0, TraceKind::kBegin, Domain::kSim, 0),
      make_event("fire", 2.0, TraceKind::kBegin, Domain::kSim, 1),
      make_event("fire", 3.0, TraceKind::kEnd, Domain::kSim, 0),
      make_event("fire", 4.0, TraceKind::kEnd, Domain::kSim, 1)};
  EXPECT_TRUE(validate_span_nesting(lanes).ok());
}

// ------------------------------------------------- end-to-end (paper cell)
//
// Runs the enforced-waits simulator for one cell of the paper grid
// (tau0 = 20, D = 1.85e5) with tracing on and checks the drained timeline:
// spans nest, the document is byte-deterministic across identical runs, and
// the deadline-miss instants agree with the simulator's own miss count.

#if RIPPLE_OBS

std::string traced_paper_cell_run(std::uint64_t* misses_out) {
  auto& session = TraceSession::global();
  session.clear();
  set_enabled(true);

  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  auto solved = strategy.solve(20.0, 1.85e5);
  EXPECT_TRUE(solved.ok());

  arrivals::FixedRateArrivals arrival_process(20.0);
  sim::EnforcedSimConfig config;
  config.input_count = 2000;
  config.deadline = 1.85e5;
  config.seed = 2021;
  const auto metrics = sim::simulate_enforced_waits(
      pipeline, solved.value().firing_intervals, arrival_process, config);
  if (misses_out != nullptr) *misses_out = metrics.inputs_missed;

  set_enabled(false);
  const auto events = session.drain();
  EXPECT_GT(events.size(), 0u);
  auto verdict = validate_span_nesting(events);
  EXPECT_TRUE(verdict.ok()) << verdict.error().message;

  std::uint64_t miss_instants = 0;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceKind::kInstant &&
        std::string_view(event.name) == "deadline_miss") {
      ++miss_instants;
    }
  }
  EXPECT_EQ(miss_instants, metrics.inputs_missed);

  std::ostringstream out;
  write_chrome_trace(out, events, session);
  return out.str();
}

TEST_F(ExportTest, PaperCellTraceIsDeterministicAndWellNested) {
  std::uint64_t misses = 0;
  const std::string first = traced_paper_cell_run(&misses);
  const std::string second = traced_paper_cell_run(nullptr);
  EXPECT_EQ(first, second);
}

#else

TEST_F(ExportTest, PaperCellTraceIsDeterministicAndWellNested) {
  GTEST_SKIP() << "simulator instrumentation requires -DRIPPLE_OBS=ON";
}

#endif  // RIPPLE_OBS

}  // namespace
}  // namespace ripple::obs
