#include <gtest/gtest.h>

#include <cmath>

#include "arrivals/arrival_process.hpp"
#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "sched/quantum_sim.hpp"
#include "sched/stride_scheduler.hpp"
#include "sim/enforced_sim.hpp"

namespace ripple::sched {
namespace {

// ------------------------------------------------------------ StrideScheduler

TEST(StrideScheduler, RejectsDegenerateConfigs) {
  EXPECT_THROW(StrideScheduler({}), std::logic_error);
  EXPECT_THROW(StrideScheduler({1, 0}), std::logic_error);
}

TEST(StrideScheduler, EqualSharesAlternate) {
  StrideScheduler scheduler = StrideScheduler::equal_shares(2);
  scheduler.set_runnable(0, true);
  scheduler.set_runnable(1, true);
  int counts[2] = {0, 0};
  for (int i = 0; i < 100; ++i) ++counts[scheduler.pick_and_charge()];
  EXPECT_EQ(counts[0], 50);
  EXPECT_EQ(counts[1], 50);
}

TEST(StrideScheduler, TicketsProportionalService) {
  StrideScheduler scheduler({3, 1});  // task 0 gets 3x the quanta
  scheduler.set_runnable(0, true);
  scheduler.set_runnable(1, true);
  for (int i = 0; i < 400; ++i) (void)scheduler.pick_and_charge();
  EXPECT_NEAR(static_cast<double>(scheduler.quanta_received(0)), 300.0, 2.0);
  EXPECT_NEAR(static_cast<double>(scheduler.quanta_received(1)), 100.0, 2.0);
}

TEST(StrideScheduler, OnlyRunnableTasksPicked) {
  StrideScheduler scheduler = StrideScheduler::equal_shares(3);
  scheduler.set_runnable(1, true);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(scheduler.pick_and_charge(), 1u);
}

TEST(StrideScheduler, PickWithNothingRunnableThrows) {
  StrideScheduler scheduler = StrideScheduler::equal_shares(2);
  EXPECT_THROW((void)scheduler.pick_and_charge(), std::logic_error);
}

TEST(StrideScheduler, SleeperCannotMonopolizeOnWake) {
  // Task 1 sleeps while task 0 accumulates pass; on wake task 1's pass is
  // brought forward, so it only gets its fair share from then on.
  StrideScheduler scheduler = StrideScheduler::equal_shares(2);
  scheduler.set_runnable(0, true);
  for (int i = 0; i < 1000; ++i) (void)scheduler.pick_and_charge();
  scheduler.set_runnable(1, true);
  int task1 = 0;
  for (int i = 0; i < 100; ++i) task1 += (scheduler.pick_and_charge() == 1);
  EXPECT_LE(task1, 51);  // fair share, not 100 catch-up quanta
  EXPECT_GE(task1, 49);
}

TEST(StrideScheduler, RunnableCountTracked) {
  StrideScheduler scheduler = StrideScheduler::equal_shares(3);
  EXPECT_EQ(scheduler.runnable_count(), 0u);
  scheduler.set_runnable(0, true);
  scheduler.set_runnable(2, true);
  EXPECT_EQ(scheduler.runnable_count(), 2u);
  scheduler.set_runnable(0, true);  // idempotent
  EXPECT_EQ(scheduler.runnable_count(), 2u);
  scheduler.set_runnable(0, false);
  EXPECT_EQ(scheduler.runnable_count(), 1u);
}

// --------------------------------------------------------------- QuantumSim

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

std::vector<Cycles> blast_intervals(double tau0, double deadline) {
  core::EnforcedWaitsStrategy strategy(
      blast_pipeline(), core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  return strategy.solve(tau0, deadline).value().firing_intervals;
}

TEST(QuantumSim, ValidatesConfig) {
  const auto pipeline = blast_pipeline();
  arrivals::FixedRateArrivals arrival_process(20.0);
  QuantumSimConfig config;
  config.quantum = 0.0;
  EXPECT_THROW((void)simulate_quantum_scheduled(
                   pipeline, blast_intervals(20.0, 1.85e5), arrival_process,
                   config),
               std::logic_error);
}

TEST(QuantumSim, DeterministicForSeed) {
  const auto pipeline = blast_pipeline();
  const auto intervals = blast_intervals(20.0, 1.85e5);
  QuantumSimConfig config;
  config.quantum = 25.0;
  config.input_count = 3000;
  config.deadline = 1.85e5;
  config.seed = 7;
  arrivals::FixedRateArrivals a1(20.0);
  arrivals::FixedRateArrivals a2(20.0);
  const auto m1 = simulate_quantum_scheduled(pipeline, intervals, a1, config);
  const auto m2 = simulate_quantum_scheduled(pipeline, intervals, a2, config);
  EXPECT_EQ(m1.base.sink_outputs, m2.base.sink_outputs);
  EXPECT_DOUBLE_EQ(m1.base.makespan, m2.base.makespan);
  EXPECT_EQ(m1.quanta_executed, m2.quanta_executed);
}

TEST(QuantumSim, ConservationAcrossNodes) {
  const auto pipeline = blast_pipeline();
  const auto intervals = blast_intervals(10.0, 1.85e5);
  arrivals::FixedRateArrivals arrival_process(10.0);
  QuantumSimConfig config;
  config.quantum = 10.0;
  config.input_count = 5000;
  config.seed = 13;
  const auto metrics =
      simulate_quantum_scheduled(pipeline, intervals, arrival_process, config);
  EXPECT_EQ(metrics.base.nodes[0].items_consumed, metrics.base.inputs_arrived);
  for (std::size_t i = 0; i + 1 < pipeline.size(); ++i) {
    EXPECT_EQ(metrics.base.nodes[i + 1].items_consumed,
              metrics.base.nodes[i].items_produced);
  }
  EXPECT_EQ(metrics.base.nodes.back().items_consumed, metrics.base.sink_outputs);
}

TEST(QuantumSim, SmallQuantumMatchesFluidModelThroughput) {
  // With a tiny quantum the realized item flow matches the fluid simulator
  // (same seed -> same gain samples are NOT guaranteed since consumption
  // batching differs, so compare aggregate counts loosely).
  const auto pipeline = blast_pipeline();
  const auto intervals = blast_intervals(20.0, 1.85e5);
  QuantumSimConfig qconfig;
  qconfig.quantum = 1.0;
  qconfig.input_count = 10000;
  qconfig.deadline = 1.85e5;
  qconfig.seed = 99;
  arrivals::FixedRateArrivals a1(20.0);
  const auto quantum =
      simulate_quantum_scheduled(pipeline, intervals, a1, qconfig);

  sim::EnforcedSimConfig fconfig;
  fconfig.input_count = 10000;
  fconfig.deadline = 1.85e5;
  fconfig.seed = 99;
  arrivals::FixedRateArrivals a2(20.0);
  const auto fluid =
      sim::simulate_enforced_waits(pipeline, intervals, a2, fconfig);

  EXPECT_EQ(quantum.base.inputs_arrived, fluid.inputs_arrived);
  const double q_outputs = static_cast<double>(quantum.base.sink_outputs);
  const double f_outputs = static_cast<double>(fluid.sink_outputs);
  EXPECT_NEAR(q_outputs, f_outputs, 0.1 * f_outputs);
  // No misses in either world at this operating point.
  EXPECT_EQ(quantum.base.inputs_missed, 0u);
}

TEST(QuantumSim, ServiceSpansBoundedByPaperAssumption) {
  // The paper assumes every firing spans t_i (the 1/N-share service time).
  // Under stride scheduling a firing can only go faster (when fewer than N
  // tasks compete) or slower by at most the quantization slack.
  const auto pipeline = blast_pipeline();
  const auto intervals = blast_intervals(20.0, 1.85e5);
  arrivals::FixedRateArrivals arrival_process(20.0);
  QuantumSimConfig config;
  config.quantum = 5.0;
  config.input_count = 5000;
  config.seed = 3;
  const auto metrics =
      simulate_quantum_scheduled(pipeline, intervals, arrival_process, config);
  const double n = static_cast<double>(pipeline.size());
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    ASSERT_GT(metrics.service_span[i].count(), 0u) << i;
    // Fastest possible: exclusive execution, t_i / N.
    EXPECT_GE(metrics.service_span[i].min(),
              pipeline.service_time(i) / n - 1e-6)
        << i;
    // Never slower than the paper's t_i plus quantization slack (one extra
    // slot per competitor for the ceil'd final slice).
    EXPECT_LE(metrics.service_span[i].max(),
              pipeline.service_time(i) + 2.0 * n * config.quantum + 1e-6)
        << i;
  }
}

TEST(QuantumSim, DispatchDelayGrowsWithQuantum) {
  const auto pipeline = blast_pipeline();
  const auto intervals = blast_intervals(20.0, 1.85e5);
  auto run = [&](double quantum) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    QuantumSimConfig config;
    config.quantum = quantum;
    config.input_count = 5000;
    config.seed = 17;
    return simulate_quantum_scheduled(pipeline, intervals, arrival_process,
                                      config);
  };
  const auto fine = run(2.0);
  const auto coarse = run(500.0);
  EXPECT_LT(fine.dispatch_delay.mean(), coarse.dispatch_delay.mean());
}

TEST(QuantumSim, CoarseQuantaCauseMissesNearTheFrontier) {
  // Operate close to the deadline frontier: the fluid model just fits, and
  // coarse quanta push latency over the line.
  const auto pipeline = blast_pipeline();
  const double tau0 = 20.0;
  const double deadline = 2.6e4;  // just above the 23,363 budget floor
  const auto intervals = blast_intervals(tau0, deadline);

  auto run = [&](double quantum) {
    arrivals::FixedRateArrivals arrival_process(tau0);
    QuantumSimConfig config;
    config.quantum = quantum;
    config.input_count = 10000;
    config.deadline = deadline;
    config.seed = 23;
    return simulate_quantum_scheduled(pipeline, intervals, arrival_process,
                                      config);
  };
  const auto fine = run(1.0);
  const auto coarse = run(2000.0);
  EXPECT_LE(fine.base.inputs_missed, coarse.base.inputs_missed);
  EXPECT_GT(coarse.base.inputs_missed, 0u);
}

TEST(QuantumSim, BusyFractionConsistentWithWork) {
  const auto pipeline = blast_pipeline();
  const auto intervals = blast_intervals(50.0, 1.85e5);
  arrivals::FixedRateArrivals arrival_process(50.0);
  QuantumSimConfig config;
  config.quantum = 10.0;
  config.input_count = 5000;
  config.seed = 29;
  const auto metrics =
      simulate_quantum_scheduled(pipeline, intervals, arrival_process, config);
  EXPECT_GT(metrics.processor_busy_fraction(), 0.0);
  EXPECT_LE(metrics.processor_busy_fraction(), 1.0);
  // Total executed work equals firings' exclusive cycles.
  Cycles expected_work = 0.0;
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    expected_work += static_cast<double>(metrics.base.nodes[i].firings) *
                     pipeline.service_time(i) / 4.0;
  }
  EXPECT_NEAR(metrics.busy_time, expected_work, 1e-6 * expected_work + 1e-6);
  // And the per-1/N-share accounting matches the fluid convention: the
  // quantum world's busy time is 1/N of the summed node active time.
  Cycles active = 0.0;
  for (const auto& node : metrics.base.nodes) active += node.active_time;
  EXPECT_NEAR(metrics.busy_time, active / 4.0, 1e-6 * active + 1e-6);
}

TEST(QuantumSim, VacationModeSkipsEmptyFirings) {
  const auto pipeline = blast_pipeline();
  const auto intervals = blast_intervals(100.0, 3.5e5);
  auto run = [&](bool charge) {
    arrivals::FixedRateArrivals arrival_process(100.0);
    QuantumSimConfig config;
    config.quantum = 10.0;
    config.input_count = 2000;
    config.charge_empty_firings = charge;
    config.seed = 31;
    return simulate_quantum_scheduled(pipeline, intervals, arrival_process,
                                      config);
  };
  const auto charged = run(true);
  const auto vacation = run(false);
  EXPECT_LT(vacation.busy_time, charged.busy_time);
  EXPECT_EQ(vacation.base.sink_outputs, charged.base.sink_outputs);
  std::uint64_t vacation_empty = 0;
  for (const auto& node : vacation.base.nodes) vacation_empty += node.empty_firings;
  EXPECT_EQ(vacation_empty, 0u);
}

}  // namespace
}  // namespace ripple::sched
