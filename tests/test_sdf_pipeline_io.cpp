#include "sdf/pipeline_io.hpp"

#include <gtest/gtest.h>

#include "blast/canonical.hpp"

namespace ripple::sdf {
namespace {

TEST(PipelineIo, BlastRoundTrip) {
  const auto original = blast::canonical_blast_pipeline();
  const std::string text = pipeline_to_json(original);
  auto parsed = pipeline_from_json(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const auto& pipeline = parsed.value();
  EXPECT_EQ(pipeline.name(), original.name());
  EXPECT_EQ(pipeline.simd_width(), original.simd_width());
  ASSERT_EQ(pipeline.size(), original.size());
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(pipeline.service_time(i), original.service_time(i)) << i;
    EXPECT_NEAR(pipeline.mean_gain(i), original.mean_gain(i), 1e-12) << i;
    EXPECT_EQ(pipeline.node(i).gain->name(), original.node(i).gain->name()) << i;
  }
}

TEST(PipelineIo, AllGainFamiliesRoundTrip) {
  auto spec =
      PipelineBuilder("zoo")
          .simd_width(32)
          .add_node("a", 10.0, dist::make_deterministic(2))
          .add_node("b", 20.0, dist::make_bernoulli(0.25))
          .add_node("c", 30.0, dist::make_censored_poisson(1.5, 8))
          .add_node("d", 40.0,
                    std::make_shared<const dist::TruncatedGeometricGain>(0.4, 6))
          .add_node("e", 50.0,
                    std::make_shared<const dist::EmpiricalGain>(
                        std::vector<double>{1.0, 2.0, 1.0}))
          .add_node("sink", 60.0, nullptr)
          .build();
  const auto original = std::move(spec).take();
  auto parsed = pipeline_from_json(pipeline_to_json(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const auto& pipeline = parsed.value();
  ASSERT_EQ(pipeline.size(), 6u);
  for (NodeIndex i = 0; i + 1 < pipeline.size(); ++i) {
    EXPECT_NEAR(pipeline.mean_gain(i), original.mean_gain(i), 1e-9) << i;
    EXPECT_NEAR(pipeline.node(i).gain->variance(),
                original.node(i).gain->variance(), 1e-9)
        << i;
    EXPECT_EQ(pipeline.node(i).gain->max_outputs(),
              original.node(i).gain->max_outputs())
        << i;
  }
  EXPECT_EQ(pipeline.node(5).gain, nullptr);
}

TEST(PipelineIo, ParseMinimalDocument) {
  auto parsed = pipeline_from_json(
      R"({"nodes":[{"service_time":10,"gain":{"type":"bernoulli","p":0.5}},
                   {"service_time":20}]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().name(), "pipeline");      // default
  EXPECT_EQ(parsed.value().simd_width(), 128u);       // default
  EXPECT_EQ(parsed.value().node(0).name, "node0");    // default
}

TEST(PipelineIo, SchemaErrors) {
  EXPECT_EQ(pipeline_from_json("[1,2]").error().code, "bad_schema");
  EXPECT_EQ(pipeline_from_json("{}").error().code, "bad_schema");
  EXPECT_EQ(pipeline_from_json("not json at all").error().code, "parse_error");
  // Missing service time.
  EXPECT_EQ(pipeline_from_json(R"({"nodes":[{"name":"a"}]})").error().code,
            "bad_schema");
  // Unknown gain type.
  EXPECT_EQ(pipeline_from_json(
                R"({"nodes":[{"service_time":1,"gain":{"type":"zipf"}}]})")
                .error()
                .code,
            "bad_schema");
  // Bad parameter.
  EXPECT_EQ(pipeline_from_json(
                R"({"nodes":[{"service_time":1,"gain":{"type":"bernoulli","p":2}}]})")
                .error()
                .code,
            "bad_schema");
  // Fractional SIMD width.
  EXPECT_EQ(pipeline_from_json(
                R"({"simd_width":2.5,"nodes":[{"service_time":1}]})")
                .error()
                .code,
            "bad_schema");
}

TEST(PipelineIo, BuilderValidationStillApplies) {
  // Non-terminal node without a gain: the builder's own code surfaces.
  auto parsed = pipeline_from_json(
      R"({"nodes":[{"service_time":10},{"service_time":20}]})");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "missing_gain");
}

TEST(PipelineIo, SerializedFormIsValidSingleLineJson) {
  const std::string text =
      pipeline_to_json(blast::canonical_blast_pipeline());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text.find('\n'), text.size() - 1);
  EXPECT_TRUE(util::parse_json(text.substr(0, text.size() - 1)).ok());
}

}  // namespace
}  // namespace ripple::sdf
