// Adversarial wraparound fuzz for the two ring structures the runtime leans
// on: util::RingBuffer and runtime::SoaQueue. Irregular push/pop batch sizes
// driven near capacity force head wraps, growth mid-stream, and the
// gather-front wrap-fixing copy; every element is checked against a plain
// std::deque oracle.
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <deque>
#include <vector>

#include "dist/rng.hpp"
#include "runtime/lane_batch.hpp"
#include "runtime/soa_queue.hpp"
#include "util/ring_buffer.hpp"

namespace ripple {
namespace {

// ---------------------------------------------------------------------------
// util::RingBuffer vs deque oracle
// ---------------------------------------------------------------------------

TEST(RingBufferFuzzTest, IrregularBatchesMatchDequeOracle) {
  dist::Xoshiro256 rng(0xF00D);
  util::RingBuffer<std::uint64_t> ring;
  std::deque<std::uint64_t> oracle;
  std::uint64_t next_value = 0;

  for (int round = 0; round < 20000; ++round) {
    // Skew pushes early, pops late, so occupancy sweeps up then down and the
    // head crosses the wrap point at many different capacities.
    const bool push_biased = round < 10000;
    const auto action = rng() % 100;
    if ((push_biased && action < 70) || (!push_biased && action < 30)) {
      const std::size_t n = 1 + rng() % 17;
      for (std::size_t i = 0; i < n; ++i) {
        ring.push_back(next_value);
        oracle.push_back(next_value);
        ++next_value;
      }
    } else if (!oracle.empty()) {
      const std::size_t n = 1 + rng() % std::min<std::size_t>(
                                    oracle.size(), 13);
      if (action % 2 == 0) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(ring.pop_front(), oracle.front());
          oracle.pop_front();
        }
      } else {
        // Batch-consumer path: random-access then discard in one step.
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(ring[i], oracle[i]);
        }
        ring.discard_front(n);
        oracle.erase(oracle.begin(),
                     oracle.begin() + static_cast<std::ptrdiff_t>(n));
      }
    }
    ASSERT_EQ(ring.size(), oracle.size());
    if (!oracle.empty()) {
      ASSERT_EQ(ring.front(), oracle.front());
      ASSERT_EQ(ring[oracle.size() - 1], oracle.back());
    }
  }
}

TEST(RingBufferFuzzTest, NearCapacityOscillation) {
  // Hold occupancy within one element of a power-of-two capacity while the
  // head advances: every push lands exactly on the wrap seam.
  util::RingBuffer<std::uint32_t> ring(64);
  std::deque<std::uint32_t> oracle;
  std::uint32_t next_value = 0;
  for (std::uint32_t i = 0; i < 63; ++i) {
    ring.push_back(next_value);
    oracle.push_back(next_value);
    ++next_value;
  }
  const std::size_t capacity_before = ring.capacity();
  for (int step = 0; step < 4096; ++step) {
    ring.push_back(next_value);
    oracle.push_back(next_value);
    ++next_value;
    ASSERT_EQ(ring.pop_front(), oracle.front());
    oracle.pop_front();
    ASSERT_EQ(ring.size(), oracle.size());
    ASSERT_EQ(ring[62], oracle[62]);
  }
  EXPECT_EQ(ring.capacity(), capacity_before);  // never grew
}

// ---------------------------------------------------------------------------
// runtime::SoaQueue vs oracle (typed and item representations)
// ---------------------------------------------------------------------------

struct TypedLane {
  std::uint32_t f0, f1;
  runtime::RootId root;
};

TEST(SoaQueueFuzzTest, TypedWraparoundMatchesOracle) {
  dist::Xoshiro256 rng(0xBEEF);
  runtime::SoaQueue queue;
  queue.configure(/*field_count=*/2, /*carries_items=*/false);
  std::deque<TypedLane> oracle;
  runtime::SoaQueue::GatherScratch scratch;
  std::uint32_t next_value = 0;

  for (int round = 0; round < 8000; ++round) {
    const auto action = rng() % 100;
    if (action < 55) {
      const std::size_t n = 1 + rng() % 9;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t fields[2] = {next_value, next_value * 7 + 1};
        queue.push_fields(fields, runtime::RootId{next_value});
        oracle.push_back({fields[0], fields[1], runtime::RootId{next_value}});
        ++next_value;
      }
    } else if (!oracle.empty()) {
      // Firing-style consume: gather up to v front lanes, verify the dense
      // window (wrapped or not), then discard.
      const std::size_t v =
          1 + rng() % std::min<std::size_t>(oracle.size(), 8);
      const auto window = queue.gather_front(v, scratch);
      for (std::size_t k = 0; k < v; ++k) {
        ASSERT_EQ(window.field[0][k], oracle[k].f0);
        ASSERT_EQ(window.field[1][k], oracle[k].f1);
        ASSERT_EQ(window.roots[k], oracle[k].root);
      }
      queue.discard_front(v);
      oracle.erase(oracle.begin(), oracle.begin() + static_cast<std::ptrdiff_t>(v));
    }
    ASSERT_EQ(queue.size(), oracle.size());
  }
}

TEST(SoaQueueFuzzTest, AppendFromEmitterAcrossWrapSeam) {
  dist::Xoshiro256 rng(0xCAFE);
  runtime::SoaQueue queue;
  queue.configure(1, false);
  std::deque<TypedLane> oracle;
  runtime::SoaQueue::GatherScratch scratch;
  runtime::BatchEmitter emitter;
  std::uint32_t next_value = 0;

  for (int round = 0; round < 6000; ++round) {
    // A firing consumes up to 4 lanes and emits 0-3 outputs per lane via the
    // emitter (the compaction path), exercising append()'s wrap-split copy.
    const std::size_t lanes = 1 + rng() % 4;
    std::vector<runtime::RootId> roots;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      roots.push_back(runtime::RootId{next_value + 1000000});
    }
    emitter.reset(lanes, 1, false);
    std::vector<TypedLane> emitted;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::uint32_t outputs = rng() % 4;
      for (std::uint32_t c = 0; c < outputs; ++c) {
        emitter.emit(lane, next_value);
        emitted.push_back({next_value, 0, roots[lane]});
        ++next_value;
      }
    }
    queue.append(emitter, roots.data());
    for (const TypedLane& lane : emitted) oracle.push_back(lane);

    // Drain roughly as fast as we fill, keeping occupancy near the seam.
    if (!oracle.empty() && round % 2 == 1) {
      const std::size_t v =
          1 + rng() % std::min<std::size_t>(oracle.size(), 5);
      const auto window = queue.gather_front(v, scratch);
      for (std::size_t k = 0; k < v; ++k) {
        ASSERT_EQ(window.field[0][k], oracle[k].f0);
        ASSERT_EQ(window.roots[k], oracle[k].root);
      }
      queue.discard_front(v);
      oracle.erase(oracle.begin(), oracle.begin() + static_cast<std::ptrdiff_t>(v));
    }
    ASSERT_EQ(queue.size(), oracle.size());
  }
}

TEST(SoaQueueFuzzTest, ItemQueueWraparound) {
  dist::Xoshiro256 rng(0xD1CE);
  runtime::SoaQueue queue;
  queue.configure(0, /*carries_items=*/true);
  std::deque<std::pair<std::uint64_t, runtime::RootId>> oracle;
  std::uint64_t next_value = 0;

  for (int round = 0; round < 8000; ++round) {
    const auto action = rng() % 100;
    if (action < 55) {
      const std::size_t n = 1 + rng() % 7;
      for (std::size_t i = 0; i < n; ++i) {
        queue.push_item(runtime::Item{next_value},
                        runtime::RootId{static_cast<std::uint32_t>(next_value)});
        oracle.emplace_back(next_value,
                            runtime::RootId{static_cast<std::uint32_t>(next_value)});
        ++next_value;
      }
    } else if (!oracle.empty()) {
      const std::size_t v =
          1 + rng() % std::min<std::size_t>(oracle.size(), 6);
      for (std::size_t k = 0; k < v; ++k) {
        ASSERT_EQ(std::any_cast<std::uint64_t>(queue.item_at(k)),
                  oracle[k].first);
        ASSERT_EQ(queue.root_at(k), oracle[k].second);
      }
      queue.discard_front(v);
      oracle.erase(oracle.begin(), oracle.begin() + static_cast<std::ptrdiff_t>(v));
    }
    ASSERT_EQ(queue.size(), oracle.size());
  }
}

}  // namespace
}  // namespace ripple
