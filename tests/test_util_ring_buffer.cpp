#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <string>

#include "dist/rng.hpp"

namespace ripple::util {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 0u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> buffer;
  for (int i = 0; i < 100; ++i) buffer.push_back(i);
  EXPECT_EQ(buffer.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(buffer.front(), i);
    EXPECT_EQ(buffer.pop_front(), i);
  }
  EXPECT_TRUE(buffer.empty());
}

TEST(RingBuffer, IndexingIsFrontRelative) {
  RingBuffer<int> buffer;
  // Advance head so the live window wraps the backing array.
  for (int i = 0; i < 6; ++i) buffer.push_back(i);
  for (int i = 0; i < 5; ++i) (void)buffer.pop_front();
  for (int i = 6; i < 12; ++i) buffer.push_back(i);
  ASSERT_EQ(buffer.size(), 7u);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], static_cast<int>(i) + 5);
  }
}

TEST(RingBuffer, GrowthPreservesOrderAcrossWrap) {
  RingBuffer<int> buffer;
  // Interleave pushes and pops so head_ is mid-array when growth hits.
  for (int i = 0; i < 5; ++i) buffer.push_back(i);
  for (int i = 0; i < 3; ++i) (void)buffer.pop_front();
  for (int i = 5; i < 40; ++i) buffer.push_back(i);  // forces several regrows
  EXPECT_EQ(buffer.size(), 37u);
  for (int i = 3; i < 40; ++i) {
    EXPECT_EQ(buffer.pop_front(), i);
  }
}

TEST(RingBuffer, ReserveRoundsUpAndKeepsContents) {
  RingBuffer<int> buffer;
  buffer.push_back(1);
  buffer.push_back(2);
  buffer.reserve(100);
  EXPECT_GE(buffer.capacity(), 100u);
  // Power-of-two capacity.
  EXPECT_EQ(buffer.capacity() & (buffer.capacity() - 1), 0u);
  EXPECT_EQ(buffer.pop_front(), 1);
  EXPECT_EQ(buffer.pop_front(), 2);
}

TEST(RingBuffer, ClearRetainsCapacity) {
  RingBuffer<int> buffer(64);
  const std::size_t capacity = buffer.capacity();
  for (int i = 0; i < 50; ++i) buffer.push_back(i);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.capacity(), capacity);
  buffer.push_back(7);
  EXPECT_EQ(buffer.front(), 7);
}

TEST(RingBuffer, DiscardFrontDropsExactlyN) {
  RingBuffer<int> buffer;
  for (int i = 0; i < 20; ++i) buffer.push_back(i);
  buffer.discard_front(0);
  EXPECT_EQ(buffer.size(), 20u);
  buffer.discard_front(7);
  EXPECT_EQ(buffer.size(), 13u);
  EXPECT_EQ(buffer.front(), 7);
  EXPECT_THROW(buffer.discard_front(14), std::logic_error);
  buffer.discard_front(13);
  EXPECT_TRUE(buffer.empty());
}

TEST(RingBuffer, EmptyAccessesThrow) {
  RingBuffer<int> buffer;
  EXPECT_THROW((void)buffer.front(), std::logic_error);
  EXPECT_THROW((void)buffer.pop_front(), std::logic_error);
}

TEST(RingBuffer, HandlesMoveOnlyFriendlyTypes) {
  RingBuffer<std::string> buffer;
  for (int i = 0; i < 20; ++i) buffer.push_back("item-" + std::to_string(i));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(buffer.pop_front(), "item-" + std::to_string(i));
  }
}

/// Randomized differential test against std::deque — the structure the
/// simulators replaced with RingBuffer.
TEST(RingBuffer, MatchesDequeUnderRandomWorkload) {
  RingBuffer<std::uint32_t> buffer;
  std::deque<std::uint32_t> reference;
  dist::Xoshiro256 rng(2026);
  std::uint32_t next_value = 0;
  for (int step = 0; step < 100000; ++step) {
    const double u = rng.uniform01();
    if (u < 0.55 || reference.empty()) {
      buffer.push_back(next_value);
      reference.push_back(next_value);
      ++next_value;
    } else if (u < 0.9) {
      ASSERT_EQ(buffer.pop_front(), reference.front());
      reference.pop_front();
    } else {
      const std::size_t n =
          static_cast<std::size_t>(rng.uniform01() *
                                   static_cast<double>(reference.size() + 1));
      buffer.discard_front(n);
      reference.erase(reference.begin(),
                      reference.begin() + static_cast<std::ptrdiff_t>(n));
    }
    ASSERT_EQ(buffer.size(), reference.size());
    if (!reference.empty()) {
      ASSERT_EQ(buffer.front(), reference.front());
      const std::size_t mid = reference.size() / 2;
      ASSERT_EQ(buffer[mid], reference[mid]);
    }
  }
}

}  // namespace
}  // namespace ripple::util
