#include "util/result.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ripple::util {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  auto r = Result<int>::failure("infeasible", "deadline too tight");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "infeasible");
  EXPECT_EQ(r.error().message, "deadline too tight");
}

TEST(Result, ValueOnErrorThrows) {
  auto r = Result<int>::failure("x", "y");
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, ErrorOnValueThrows) {
  Result<int> r(1);
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(Result, ValueOrFallsBack) {
  auto bad = Result<int>::failure("x", "y");
  EXPECT_EQ(bad.value_or(7), 7);
  Result<int> good(3);
  EXPECT_EQ(good.value_or(7), 3);
}

TEST(Result, TakeMovesOut) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> taken = std::move(r).take();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(Result, MutableValueAccess) {
  Result<std::string> r(std::string("ab"));
  r.value() += "c";
  EXPECT_EQ(r.value(), "abc");
}

}  // namespace
}  // namespace ripple::util
