// Arrival journal + recovery: the kill-and-recover bit-identity contract.
// A service run with the journal attached, killed at an arbitrary record
// boundary (modeled by copying the journal directory mid-run), must recover
// to a controller whose checkpoint is bit-for-bit equal to the live
// controller at the same boundary — same EWMA, same quantile window, same
// plan epoch and firing intervals. Also covers snapshot+tail recovery, torn
// tails, fingerprint mismatches, and group-commit bookkeeping.
#include "net/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/enforced_waits.hpp"
#include "dist/gain.hpp"
#include "net/frame.hpp"
#include "sdf/pipeline.hpp"
#include "service/service.hpp"

namespace ripple::net {
namespace {

namespace fs = std::filesystem;

sdf::PipelineSpec make_spec() {
  auto spec = sdf::PipelineBuilder("journal")
                  .simd_width(4)
                  .add_node("expand", 8.0, dist::make_deterministic(2))
                  .add_node("filter", 6.0, dist::make_deterministic(1))
                  .add_node("sink", 10.0, nullptr)
                  .build();
  EXPECT_TRUE(spec.ok());
  return spec.value();
}

service::ServiceConfig base_config() {
  service::ServiceConfig config;
  config.deadline = 600.0;
  config.initial_tau0 = 20.0;
  return config;
}

std::vector<runtime::Item> make_items(std::size_t n, std::uint64_t base) {
  std::vector<runtime::Item> items;
  for (std::uint64_t i = 0; i < n; ++i) items.emplace_back(base + i);
  return items;
}

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag) {
    path = fs::temp_directory_path() /
           (std::string("ripple_journal_") + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

void copy_dir(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    fs::copy_file(entry.path(), to / entry.path().filename());
  }
}

/// Fresh controller with the config the journal fingerprints — what the
/// `recover` path constructs before replaying.
control::Controller make_controller(const sdf::PipelineSpec& spec,
                                    const service::ServiceConfig& config) {
  // Mirror the service's shard-controller construction: empty `b` selects
  // the optimistic enforced-waits multipliers.
  return control::Controller(spec, core::EnforcedWaitsConfig::optimistic(spec),
                             config.deadline, config.initial_tau0,
                             config.controller);
}

bool checkpoints_equal(const control::ControllerCheckpoint& a,
                       const control::ControllerCheckpoint& b) {
  return a.estimator.prior == b.estimator.prior &&
         a.estimator.ewma == b.estimator.ewma &&
         a.estimator.samples == b.estimator.samples &&
         a.estimator.window == b.estimator.window &&
         a.replanner.ticks == b.replanner.ticks &&
         a.replanner.last_replan_tick == b.replanner.last_replan_tick &&
         a.replanner.replans == b.replanner.replans &&
         a.replanner.solve_failures == b.replanner.solve_failures &&
         a.replanner.plan_epoch == b.replanner.plan_epoch &&
         a.replanner.planned_tau0 == b.replanner.planned_tau0 &&
         a.replanner.plan_deadline == b.replanner.plan_deadline &&
         a.replanner.shedding == b.replanner.shedding &&
         a.replanner.waits == b.replanner.waits &&
         a.replanner.firing_intervals == b.replanner.firing_intervals &&
         a.replanner.predicted_active_fraction ==
             b.replanner.predicted_active_fraction &&
         a.replanner.deadline_budget_used == b.replanner.deadline_budget_used &&
         a.worst_latency == b.worst_latency && a.stats.ticks == b.stats.ticks &&
         a.stats.replans == b.stats.replans &&
         a.stats.solve_failures == b.stats.solve_failures &&
         a.stats.shed_ticks == b.stats.shed_ticks &&
         a.stats.slack_forced == b.stats.slack_forced;
}

/// Drive a journaled single-shard service for `rounds` drain cycles, copying
/// the journal directory into `kill_dir` after `kill_after_rounds` and
/// capturing the live controller checkpoint at that same boundary.
control::ControllerCheckpoint run_journaled(
    const fs::path& dir, const fs::path& kill_dir, int rounds,
    int kill_after_rounds, const JournalConfig& base,
    service::ServiceConfig config) {
  const sdf::PipelineSpec spec = make_spec();
  service::PipelineService service(spec, service::synthetic_stages(spec),
                                   config);
  JournalConfig jconfig = base;
  jconfig.dir = dir.string();
  jconfig.fingerprint = ControlFingerprint::from(
      config.deadline, config.initial_tau0, config.controller);
  ArrivalJournal journal(jconfig, &service.controller());
  service.set_ingest_observer(&journal);

  const service::SessionId a = service.open_session();
  const service::SessionId b = service.open_session();
  control::ControllerCheckpoint at_kill;
  for (int round = 0; round < rounds; ++round) {
    service.submit(round % 2 == 0 ? a : b, make_items(16, 1000u * round));
    service.drain_once();
    if (round + 1 == kill_after_rounds) {
      journal.flush();
      copy_dir(dir, kill_dir);  // the "kill -9" disk image
      at_kill = service.controller().checkpoint();
    }
  }
  service.close_session(a);
  service.set_ingest_observer(nullptr);
  return at_kill;
}

TEST(NetJournal, KillAndRecoverConvergesBitIdentically) {
  TempDir live("live");
  TempDir killed("killed");
  const service::ServiceConfig config = base_config();
  JournalConfig jbase;
  jbase.commit_drains = 1;  // flush every drain: the kill image is complete
  jbase.snapshot_records = 0;
  const control::ControllerCheckpoint at_kill = run_journaled(
      live.path, killed.path, /*rounds=*/12, /*kill_after_rounds=*/7, jbase,
      config);

  const sdf::PipelineSpec spec = make_spec();
  control::Controller recovered = make_controller(spec, config);
  const ControlFingerprint fp = ControlFingerprint::from(
      config.deadline, config.initial_tau0, config.controller);
  const RecoveryReport report =
      recover_journal(killed.path.string(), fp, recovered);

  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(report.drains_replayed, 7u);
  EXPECT_EQ(report.arrivals_replayed, 7u * 16u);
  EXPECT_EQ(report.torn_bytes, 0u);
  EXPECT_EQ(report.open_sessions.size(), 2u);
  EXPECT_TRUE(checkpoints_equal(recovered.checkpoint(), at_kill))
      << "recovered controller diverged from the live run at the kill point";
  // The recovered plan is the live plan, not an approximation of it.
  EXPECT_EQ(recovered.plan()->epoch, at_kill.replanner.plan_epoch);
  EXPECT_EQ(recovered.plan()->schedule.firing_intervals,
            at_kill.replanner.firing_intervals);
}

TEST(NetJournal, SnapshotPlusTailRecoversIdentically) {
  TempDir live("snap");
  TempDir killed("snapkill");
  const service::ServiceConfig config = base_config();
  JournalConfig jbase;
  jbase.commit_drains = 1;
  jbase.snapshot_records = 8;  // force several snapshots across the run
  const control::ControllerCheckpoint at_kill = run_journaled(
      live.path, killed.path, /*rounds=*/20, /*kill_after_rounds=*/17, jbase,
      config);

  const sdf::PipelineSpec spec = make_spec();
  control::Controller recovered = make_controller(spec, config);
  const ControlFingerprint fp = ControlFingerprint::from(
      config.deadline, config.initial_tau0, config.controller);
  const RecoveryReport report =
      recover_journal(killed.path.string(), fp, recovered);

  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_GT(report.records_in_snapshot, 0u);
  EXPECT_LT(report.drains_replayed, 17u);  // the snapshot absorbed a prefix
  EXPECT_TRUE(checkpoints_equal(recovered.checkpoint(), at_kill));
}

TEST(NetJournal, TornTailIsDetectedAndDiscarded) {
  TempDir live("torn");
  TempDir killed("tornkill");
  const service::ServiceConfig config = base_config();
  JournalConfig jbase;
  jbase.commit_drains = 1;
  jbase.snapshot_records = 0;
  run_journaled(live.path, killed.path, /*rounds=*/6, /*kill_after_rounds=*/6,
                jbase, config);

  // Model a torn final write: chop bytes off the log's tail.
  const fs::path log = killed.path / "journal.log";
  const std::uintmax_t size = fs::file_size(log);
  fs::resize_file(log, size - 5);

  const sdf::PipelineSpec spec = make_spec();
  control::Controller recovered = make_controller(spec, config);
  const ControlFingerprint fp = ControlFingerprint::from(
      config.deadline, config.initial_tau0, config.controller);
  const RecoveryReport report =
      recover_journal(killed.path.string(), fp, recovered);
  EXPECT_GT(report.torn_bytes, 0u);     // detected, reported...
  EXPECT_GT(report.drains_replayed, 0u);  // ...and the intact prefix replayed
}

TEST(NetJournal, FingerprintMismatchRefusesRecovery) {
  TempDir live("fp");
  TempDir killed("fpkill");
  service::ServiceConfig config = base_config();
  JournalConfig jbase;
  jbase.commit_drains = 1;
  jbase.snapshot_records = 4;  // need a snapshot: the fingerprint lives there
  run_journaled(live.path, killed.path, /*rounds=*/12, /*kill_after_rounds=*/12,
                jbase, config);

  const sdf::PipelineSpec spec = make_spec();
  control::Controller recovered = make_controller(spec, config);
  ControlFingerprint wrong = ControlFingerprint::from(
      config.deadline, config.initial_tau0, config.controller);
  wrong.deadline += 1.0;
  EXPECT_THROW(recover_journal(killed.path.string(), wrong, recovered),
               std::runtime_error);
}

TEST(NetJournal, MissingJournalIsAnError) {
  const sdf::PipelineSpec spec = make_spec();
  const service::ServiceConfig config = base_config();
  control::Controller recovered = make_controller(spec, config);
  EXPECT_THROW(recover_journal("/nonexistent/ripple-journal",
                               ControlFingerprint{}, recovered),
               std::runtime_error);
}

TEST(NetJournal, GroupCommitBuffersUntilThreshold) {
  TempDir dir("commit");
  const sdf::PipelineSpec spec = make_spec();
  const service::ServiceConfig config = base_config();
  service::PipelineService service(spec, service::synthetic_stages(spec),
                                   config);
  JournalConfig jconfig;
  jconfig.dir = dir.path.string();
  jconfig.commit_bytes = 1 << 20;
  jconfig.commit_drains = 4;  // commit every 4th drain
  jconfig.snapshot_records = 0;
  jconfig.fingerprint = ControlFingerprint::from(
      config.deadline, config.initial_tau0, config.controller);
  ArrivalJournal journal(jconfig, &service.controller());
  service.set_ingest_observer(&journal);
  const service::SessionId id = service.open_session();
  for (int round = 0; round < 7; ++round) {
    service.submit(id, make_items(8, 0));
    service.drain_once();
  }
  const JournalStats stats = journal.stats();
  EXPECT_EQ(stats.drains, 7u);
  EXPECT_EQ(stats.commits, 1u);  // only the 4-drain threshold fired so far
  journal.flush();
  EXPECT_EQ(journal.stats().commits, 2u);
  EXPECT_GT(journal.stats().bytes, 0u);
  service.set_ingest_observer(nullptr);
}

TEST(NetJournal, ObserverRequiresSingleShard) {
  const sdf::PipelineSpec spec = make_spec();
  service::ServiceConfig config = base_config();
  config.shards = 2;
  service::PipelineService service(
      spec, service::synthetic_stage_factory(spec), config);
  TempDir dir("shards");
  JournalConfig jconfig;
  jconfig.dir = dir.path.string();
  jconfig.fingerprint = ControlFingerprint::from(
      config.deadline, config.initial_tau0, config.controller);
  ArrivalJournal journal(jconfig, &service.controller());
  EXPECT_THROW(service.set_ingest_observer(&journal), std::logic_error);
}

}  // namespace
}  // namespace ripple::net
