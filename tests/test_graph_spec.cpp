#include "graph/graph_spec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/gain.hpp"

namespace ripple::graph {
namespace {

using dist::make_bernoulli;
using dist::make_deterministic;

/// The canonical branching fixture:
///
///   src --bern(0.5)--> tee --> {a, b} --> merge --> snk      (all det(1))
///
/// service times {10, 2, 5, 8, 4, 6}.
GraphSpec diamond() {
  auto built = GraphBuilder("diamond")
                   .simd_width(16)
                   .add_node("src", NodeKind::kSiso, 10.0)
                   .add_node("tee", NodeKind::kSimoTee, 2.0)
                   .add_node("a", NodeKind::kSiso, 5.0)
                   .add_node("b", NodeKind::kSiso, 8.0)
                   .add_node("merge", NodeKind::kMisoElementwise, 4.0)
                   .add_node("snk", NodeKind::kSiso, 6.0)
                   .add_edge(0, 1, make_bernoulli(0.5))
                   .add_edge(1, 2, make_deterministic(1))
                   .add_edge(1, 3, make_deterministic(1))
                   .add_edge(2, 4, make_deterministic(1))
                   .add_edge(3, 4, make_deterministic(1))
                   .add_edge(4, 5, make_deterministic(1))
                   .build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  return std::move(built).take();
}

TEST(Linear, ChainLowersToPipelineLosslessly) {
  auto built = GraphBuilder("chain")
                   .simd_width(32)
                   .add_node("n0", NodeKind::kSiso, 100.0)
                   .add_node("n1", NodeKind::kSiso, 50.0)
                   .add_node("n2", NodeKind::kSiso, 25.0)
                   .add_edge(0, 1, make_bernoulli(0.5))
                   .add_edge(1, 2, make_deterministic(2))
                   .build();
  ASSERT_TRUE(built.ok()) << built.error().message;
  const GraphSpec graph = std::move(built).take();

  EXPECT_TRUE(graph.is_linear());
  EXPECT_EQ(graph.source(), 0u);
  EXPECT_EQ(graph.sink(), 2u);
  ASSERT_EQ(graph.topo_order().size(), 3u);
  EXPECT_EQ(graph.topo_order()[0], 0u);
  EXPECT_EQ(graph.topo_order()[2], 2u);

  auto lowered = graph.lower_to_pipeline();
  ASSERT_TRUE(lowered.ok()) << lowered.error().message;
  const sdf::PipelineSpec& pipeline = lowered.value();
  ASSERT_EQ(pipeline.size(), 3u);
  EXPECT_EQ(pipeline.simd_width(), 32u);
  EXPECT_EQ(pipeline.node(0).name, "n0");
  EXPECT_DOUBLE_EQ(pipeline.service_time(0), 100.0);
  EXPECT_DOUBLE_EQ(pipeline.mean_gain(0), 0.5);
  EXPECT_DOUBLE_EQ(pipeline.mean_gain(1), 2.0);
  // Sink gain is the Deterministic(1) convention.
  EXPECT_DOUBLE_EQ(pipeline.mean_gain(2), 1.0);
}

TEST(Linear, BranchingGraphRefusesToLower) {
  const GraphSpec graph = diamond();
  EXPECT_FALSE(graph.is_linear());
  auto lowered = graph.lower_to_pipeline();
  ASSERT_FALSE(lowered.ok());
  EXPECT_EQ(lowered.error().code, "not_linear");
}

TEST(Diamond, TopologyAndAdjacency) {
  const GraphSpec graph = diamond();
  EXPECT_EQ(graph.size(), 6u);
  EXPECT_EQ(graph.edge_count(), 6u);
  EXPECT_EQ(graph.source(), 0u);
  EXPECT_EQ(graph.sink(), 5u);
  // Kahn with smallest-ready-index first: indices already topological.
  const std::vector<NodeIndex> expected{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(graph.topo_order(), expected);
  // Out-/in-edge lists preserve insertion order (load-bearing for tee
  // replication and merge tuple layout).
  ASSERT_EQ(graph.out_edges(1).size(), 2u);
  EXPECT_EQ(graph.edge(graph.out_edges(1)[0]).to, 2u);
  EXPECT_EQ(graph.edge(graph.out_edges(1)[1]).to, 3u);
  ASSERT_EQ(graph.in_edges(4).size(), 2u);
  EXPECT_EQ(graph.edge(graph.in_edges(4)[0]).from, 2u);
  EXPECT_EQ(graph.edge(graph.in_edges(4)[1]).from, 3u);
}

TEST(Diamond, FlowsFollowEdgeGains) {
  const GraphSpec graph = diamond();
  EXPECT_DOUBLE_EQ(graph.node_flow(0), 1.0);
  EXPECT_DOUBLE_EQ(graph.node_flow(1), 0.5);
  EXPECT_DOUBLE_EQ(graph.node_flow(2), 0.5);
  EXPECT_DOUBLE_EQ(graph.node_flow(3), 0.5);
  EXPECT_DOUBLE_EQ(graph.node_flow(4), 0.5);
  EXPECT_DOUBLE_EQ(graph.node_flow(5), 0.5);
  EXPECT_DOUBLE_EQ(graph.edge_flow(0), 0.5);  // src -> tee, bern(0.5)
  EXPECT_DOUBLE_EQ(graph.edge_flow(1), 0.5);  // tee -> a
}

TEST(Diamond, MinimalIntervalsBackwardRecursion) {
  const GraphSpec graph = diamond();
  // L_snk = 6; L_merge = max(4, 6) = 6; L_a = max(5, 6) = 6;
  // L_b = max(8, 6) = 8; L_tee = max(2, max(6, 8)) = 8;
  // L_src = max(10, 0.5 * 8) = 10.
  const auto minimal = graph.minimal_firing_intervals();
  ASSERT_EQ(minimal.size(), 6u);
  EXPECT_DOUBLE_EQ(minimal[0], 10.0);
  EXPECT_DOUBLE_EQ(minimal[1], 8.0);
  EXPECT_DOUBLE_EQ(minimal[2], 6.0);
  EXPECT_DOUBLE_EQ(minimal[3], 8.0);
  EXPECT_DOUBLE_EQ(minimal[4], 6.0);
  EXPECT_DOUBLE_EQ(minimal[5], 6.0);
}

TEST(Diamond, PathEnumerationDeterministicOrder) {
  const GraphSpec graph = diamond();
  auto paths = graph.enumerate_paths();
  ASSERT_TRUE(paths.ok()) << paths.error().message;
  ASSERT_EQ(paths.value().size(), 2u);
  // DFS in out-edge insertion order: the a-branch path comes first.
  const std::vector<NodeIndex> via_a{0, 1, 2, 4, 5};
  const std::vector<NodeIndex> via_b{0, 1, 3, 4, 5};
  EXPECT_EQ(paths.value()[0].nodes, via_a);
  EXPECT_EQ(paths.value()[1].nodes, via_b);
  EXPECT_DOUBLE_EQ(paths.value()[0].total_gain, 0.5);
  EXPECT_DOUBLE_EQ(paths.value()[1].total_gain, 0.5);

  auto capped = graph.enumerate_paths(1);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.error().code, "too_many_paths");
}

TEST(Diamond, MaxPathBudgetMatchesEnumeration) {
  const GraphSpec graph = diamond();
  const std::vector<double> b(6, 1.0);
  const auto x = graph.minimal_firing_intervals();
  // Path via a: 10+8+6+6+6 = 36; via b: 10+8+8+6+6 = 38.
  EXPECT_DOUBLE_EQ(graph.max_path_budget(b, x), 38.0);

  // Cross-check the topological DP against explicit path sums.
  auto paths = graph.enumerate_paths();
  ASSERT_TRUE(paths.ok());
  double best = 0.0;
  for (const GraphPath& path : paths.value()) {
    double sum = 0.0;
    for (NodeIndex u : path.nodes) sum += b[u] * x[u];
    best = std::max(best, sum);
  }
  EXPECT_DOUBLE_EQ(graph.max_path_budget(b, x), best);
}

/// A ladder of `layers` diamonds has 2^layers source->sink paths.
GraphSpec diamond_ladder(std::size_t layers) {
  GraphBuilder builder("ladder");
  builder.simd_width(8);
  builder.add_node("src", NodeKind::kSiso, 10.0);
  NodeIndex prev = 0;
  NodeIndex next = 1;
  for (std::size_t l = 0; l < layers; ++l) {
    const NodeIndex tee = next++;
    const NodeIndex a = next++;
    const NodeIndex b = next++;
    const NodeIndex merge = next++;
    const std::string tag = std::to_string(l);
    builder.add_node("tee" + tag, NodeKind::kSimoTee, 2.0)
        .add_node("a" + tag, NodeKind::kSiso, 3.0 + static_cast<double>(l))
        .add_node("b" + tag, NodeKind::kSiso, 4.0)
        .add_node("merge" + tag, NodeKind::kMisoElementwise, 2.0)
        .add_edge(prev, tee, make_deterministic(1))
        .add_edge(tee, a, make_deterministic(1))
        .add_edge(tee, b, make_deterministic(1))
        .add_edge(a, merge, make_deterministic(1))
        .add_edge(b, merge, make_deterministic(1));
    prev = merge;
  }
  const NodeIndex sink = next;
  builder.add_node("snk", NodeKind::kSiso, 5.0);
  builder.add_edge(prev, sink, make_deterministic(1));
  auto built = builder.build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  return std::move(built).take();
}

TEST(Paths, LadderOverflowsDefaultCapButNotALargerOne) {
  const GraphSpec graph = diamond_ladder(7);  // 128 paths
  auto capped = graph.enumerate_paths();      // default cap 64
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.error().code, "too_many_paths");

  auto all = graph.enumerate_paths(128);
  ASSERT_TRUE(all.ok()) << all.error().message;
  EXPECT_EQ(all.value().size(), 128u);

  // DP budget equals the max over all 128 explicit path sums.
  const std::vector<double> b(graph.size(), 1.0);
  const auto x = graph.minimal_firing_intervals();
  double best = 0.0;
  for (const GraphPath& path : all.value()) {
    double sum = 0.0;
    for (NodeIndex u : path.nodes) sum += x[u];
    best = std::max(best, sum);
  }
  EXPECT_NEAR(graph.max_path_budget(b, x), best, 1e-9);
}

TEST(Builder, RejectsEmptyGraph) {
  auto built = GraphBuilder("e").build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, "empty");
}

TEST(Builder, RejectsZeroWidth) {
  auto built = GraphBuilder("w")
                   .simd_width(0)
                   .add_node("only", NodeKind::kSiso, 1.0)
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, "bad_width");
}

TEST(Builder, RejectsNonPositiveServiceTime) {
  auto built = GraphBuilder("s")
                   .add_node("bad", NodeKind::kSiso, 0.0)
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, "bad_service");
  EXPECT_NE(built.error().message.find("bad"), std::string::npos);
}

TEST(Builder, RejectsMalformedEdges) {
  auto range = GraphBuilder("r")
                   .add_node("a", NodeKind::kSiso, 1.0)
                   .add_node("b", NodeKind::kSiso, 1.0)
                   .add_edge(0, 5, make_deterministic(1))
                   .build();
  ASSERT_FALSE(range.ok());
  EXPECT_EQ(range.error().code, "bad_edge");

  auto self = GraphBuilder("l")
                  .add_node("a", NodeKind::kSiso, 1.0)
                  .add_edge(0, 0, make_deterministic(1))
                  .build();
  ASSERT_FALSE(self.ok());
  EXPECT_EQ(self.error().code, "bad_edge");
  EXPECT_NE(self.error().message.find("self-loop"), std::string::npos);

  auto dup = GraphBuilder("d")
                 .add_node("a", NodeKind::kSiso, 1.0)
                 .add_node("b", NodeKind::kSiso, 1.0)
                 .add_edge(0, 1, make_deterministic(1))
                 .add_edge(0, 1, make_deterministic(1))
                 .build();
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, "bad_edge");
  EXPECT_NE(dup.error().message.find("duplicate"), std::string::npos);

  auto gainless = GraphBuilder("g")
                      .add_node("a", NodeKind::kSiso, 1.0)
                      .add_node("b", NodeKind::kSiso, 1.0)
                      .add_edge(0, 1, nullptr)
                      .build();
  ASSERT_FALSE(gainless.ok());
  EXPECT_EQ(gainless.error().code, "missing_gain");
  EXPECT_NE(gainless.error().message.find("a->b"), std::string::npos);
}

TEST(Builder, RejectsCycles) {
  auto built = GraphBuilder("c")
                   .add_node("a", NodeKind::kSiso, 1.0)
                   .add_node("b", NodeKind::kSiso, 1.0)
                   .add_node("c", NodeKind::kSiso, 1.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(1, 2, make_deterministic(1))
                   .add_edge(2, 0, make_deterministic(1))
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, "cycle");
}

TEST(Builder, RejectsMultipleSourcesOrSinks) {
  auto sources = GraphBuilder("ms")
                     .add_node("s1", NodeKind::kSiso, 1.0)
                     .add_node("s2", NodeKind::kSiso, 1.0)
                     .add_node("t", NodeKind::kMisoElementwise, 1.0)
                     .add_edge(0, 2, make_deterministic(1))
                     .add_edge(1, 2, make_deterministic(1))
                     .build();
  ASSERT_FALSE(sources.ok());
  EXPECT_EQ(sources.error().code, "multi_source");
  EXPECT_NE(sources.error().message.find("s1"), std::string::npos);

  auto sinks = GraphBuilder("mk")
                   .add_node("s", NodeKind::kSimoTee, 1.0)
                   .add_node("a", NodeKind::kSiso, 1.0)
                   .add_node("b", NodeKind::kSiso, 1.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(0, 2, make_deterministic(1))
                   .build();
  ASSERT_FALSE(sinks.ok());
  EXPECT_EQ(sinks.error().code, "multi_sink");
}

TEST(Builder, RejectsDegreeKindMismatch) {
  // A tee with a single out-edge is just a mislabeled SISO node.
  auto built = GraphBuilder("deg")
                   .add_node("s", NodeKind::kSiso, 1.0)
                   .add_node("t", NodeKind::kSimoTee, 1.0)
                   .add_node("k", NodeKind::kSiso, 1.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(1, 2, make_deterministic(1))
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, "bad_degree");
  EXPECT_NE(built.error().message.find("tee"), std::string::npos);
}

TEST(Builder, RejectsRateMismatchedMerge) {
  // tee -> a carries det(1) flow, tee -> b carries det(2) flow; the merge
  // cannot consume elementwise from streams with different mean rates.
  auto built = GraphBuilder("rm")
                   .add_node("src", NodeKind::kSiso, 10.0)
                   .add_node("tee", NodeKind::kSimoTee, 2.0)
                   .add_node("a", NodeKind::kSiso, 5.0)
                   .add_node("b", NodeKind::kSiso, 8.0)
                   .add_node("merge", NodeKind::kMisoElementwise, 4.0)
                   .add_node("snk", NodeKind::kSiso, 6.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(1, 2, make_deterministic(1))
                   .add_edge(1, 3, make_deterministic(2))
                   .add_edge(2, 4, make_deterministic(1))
                   .add_edge(3, 4, make_deterministic(1))
                   .add_edge(4, 5, make_deterministic(1))
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, "rate_mismatch");
  EXPECT_NE(built.error().message.find("merge"), std::string::npos);
}

TEST(Kinds, NamesAreTheJsonVocabulary) {
  EXPECT_STREQ(node_kind_name(NodeKind::kSiso), "siso");
  EXPECT_STREQ(node_kind_name(NodeKind::kSimoTee), "tee");
  EXPECT_STREQ(node_kind_name(NodeKind::kMisoElementwise), "merge");
  EXPECT_STREQ(node_kind_name(NodeKind::kMimoSynchronizer), "synchronizer");
}

}  // namespace
}  // namespace ripple::graph
