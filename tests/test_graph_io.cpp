#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <string>

#include "dist/gain.hpp"
#include "graph/scenarios.hpp"

namespace ripple::graph {
namespace {

using dist::make_bernoulli;
using dist::make_censored_poisson;
using dist::make_deterministic;

GraphSpec diamond() {
  auto built = GraphBuilder("diamond")
                   .simd_width(16)
                   .add_node("src", NodeKind::kSiso, 10.0)
                   .add_node("tee", NodeKind::kSimoTee, 2.0)
                   .add_node("a", NodeKind::kSiso, 5.0)
                   .add_node("b", NodeKind::kSiso, 8.0)
                   .add_node("merge", NodeKind::kMisoElementwise, 4.0)
                   .add_node("snk", NodeKind::kSiso, 6.0)
                   .add_edge(0, 1, make_bernoulli(0.5))
                   .add_edge(1, 2, make_deterministic(1))
                   .add_edge(1, 3, make_deterministic(1))
                   .add_edge(2, 4, make_deterministic(1))
                   .add_edge(3, 4, make_deterministic(1))
                   .add_edge(4, 5, make_deterministic(1))
                   .build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  return std::move(built).take();
}

void expect_same_structure(const GraphSpec& expected, const GraphSpec& got) {
  EXPECT_EQ(got.name(), expected.name());
  EXPECT_EQ(got.simd_width(), expected.simd_width());
  ASSERT_EQ(got.size(), expected.size());
  for (NodeIndex u = 0; u < expected.size(); ++u) {
    EXPECT_EQ(got.node(u).name, expected.node(u).name) << u;
    EXPECT_EQ(got.node(u).kind, expected.node(u).kind) << u;
    EXPECT_DOUBLE_EQ(got.service_time(u), expected.service_time(u)) << u;
  }
  ASSERT_EQ(got.edge_count(), expected.edge_count());
  for (EdgeIndex e = 0; e < expected.edge_count(); ++e) {
    EXPECT_EQ(got.edge(e).from, expected.edge(e).from) << e;
    EXPECT_EQ(got.edge(e).to, expected.edge(e).to) << e;
    EXPECT_DOUBLE_EQ(got.edge(e).mean_gain(), expected.edge(e).mean_gain())
        << e;
  }
}

TEST(RoundTrip, DiamondSurvivesSerializeParse) {
  const GraphSpec graph = diamond();
  const std::string text = graph_to_json(graph);
  auto parsed = graph_from_json(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  expect_same_structure(graph, parsed.value());
  // Serialization is deterministic: a second trip is byte-identical.
  EXPECT_EQ(graph_to_json(parsed.value()), text);
}

TEST(RoundTrip, MeasuredScenariosSurvive) {
  for (const GraphSpec& graph : {branching_blast_scenario().graph,
                                 telemetry_fanin_scenario().graph}) {
    const std::string text = graph_to_json(graph);
    auto parsed = graph_from_json(text);
    ASSERT_TRUE(parsed.ok()) << graph.name() << ": " << parsed.error().message;
    expect_same_structure(graph, parsed.value());
    EXPECT_EQ(graph_to_json(parsed.value()), text) << graph.name();
  }
}

TEST(RoundTrip, GainVocabularyIsPreserved) {
  auto built = GraphBuilder("gains")
                   .simd_width(8)
                   .add_node("a", NodeKind::kSiso, 3.0)
                   .add_node("b", NodeKind::kSiso, 2.0)
                   .add_node("c", NodeKind::kSiso, 1.0)
                   .add_edge(0, 1, make_censored_poisson(2.5, 16))
                   .add_edge(1, 2, make_bernoulli(0.379))
                   .build();
  ASSERT_TRUE(built.ok()) << built.error().message;
  auto parsed = graph_from_json(graph_to_json(built.value()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_DOUBLE_EQ(parsed.value().edge(0).mean_gain(),
                   built.value().edge(0).mean_gain());
  EXPECT_DOUBLE_EQ(parsed.value().edge(1).mean_gain(), 0.379);
}

TEST(Parse, HandwrittenDocument) {
  const std::string text = R"({
    "schema": "ripple.graph.v1",
    "name": "tiny",
    "simd_width": 4,
    "nodes": [
      {"name": "head", "kind": "siso", "service_time": 20},
      {"name": "tail", "kind": "siso", "service_time": 10}
    ],
    "edges": [
      {"from": "head", "to": "tail", "gain": {"type": "bernoulli", "p": 0.25}}
    ]
  })";
  auto parsed = graph_from_json(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().name(), "tiny");
  EXPECT_EQ(parsed.value().simd_width(), 4u);
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value().node(0).name, "head");
  EXPECT_DOUBLE_EQ(parsed.value().edge(0).mean_gain(), 0.25);
  EXPECT_TRUE(parsed.value().is_linear());
}

TEST(Parse, RejectsNonObjectAndWrongSchema) {
  auto array = graph_from_json("[1, 2]");
  ASSERT_FALSE(array.ok());
  EXPECT_EQ(array.error().code, "bad_schema");

  auto wrong = graph_from_json(R"({"schema": "nope", "nodes": [], "edges": []})");
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.error().code, "bad_schema");
  EXPECT_NE(wrong.error().message.find("ripple.graph.v1"), std::string::npos);
  EXPECT_NE(wrong.error().message.find("nope"), std::string::npos);

  auto truncated = graph_from_json("{\"schema\": ");
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code, "parse_error");
}

TEST(Parse, ErrorsNameTheOffendingNode) {
  auto kind = graph_from_json(R"({
    "schema": "ripple.graph.v1",
    "nodes": [{"name": "odd", "kind": "teleport", "service_time": 5}],
    "edges": []
  })");
  ASSERT_FALSE(kind.ok());
  EXPECT_EQ(kind.error().code, "bad_schema");
  EXPECT_NE(kind.error().message.find("odd"), std::string::npos);
  EXPECT_NE(kind.error().message.find("teleport"), std::string::npos);

  auto service = graph_from_json(R"({
    "schema": "ripple.graph.v1",
    "nodes": [{"name": "lazy", "kind": "siso"}],
    "edges": []
  })");
  ASSERT_FALSE(service.ok());
  EXPECT_NE(service.error().message.find("lazy"), std::string::npos);
  EXPECT_NE(service.error().message.find("service_time"), std::string::npos);

  auto dup = graph_from_json(R"({
    "schema": "ripple.graph.v1",
    "nodes": [{"name": "twin", "kind": "siso", "service_time": 1},
              {"name": "twin", "kind": "siso", "service_time": 2}],
    "edges": []
  })");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.error().message.find("duplicate node name 'twin'"),
            std::string::npos);
}

TEST(Parse, ErrorsNameTheOffendingEdge) {
  auto unknown = graph_from_json(R"({
    "schema": "ripple.graph.v1",
    "nodes": [{"name": "a", "kind": "siso", "service_time": 1},
              {"name": "b", "kind": "siso", "service_time": 1}],
    "edges": [{"from": "a", "to": "zzz",
               "gain": {"type": "deterministic", "k": 1}}]
  })");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, "bad_schema");
  EXPECT_NE(unknown.error().message.find("zzz"), std::string::npos);

  auto gainless = graph_from_json(R"({
    "schema": "ripple.graph.v1",
    "nodes": [{"name": "a", "kind": "siso", "service_time": 1},
              {"name": "b", "kind": "siso", "service_time": 1}],
    "edges": [{"from": "a", "to": "b"}]
  })");
  ASSERT_FALSE(gainless.ok());
  EXPECT_NE(gainless.error().message.find("a->b"), std::string::npos);
  EXPECT_NE(gainless.error().message.find("gain"), std::string::npos);

  auto badgain = graph_from_json(R"({
    "schema": "ripple.graph.v1",
    "nodes": [{"name": "a", "kind": "siso", "service_time": 1},
              {"name": "b", "kind": "siso", "service_time": 1}],
    "edges": [{"from": "a", "to": "b", "gain": {"type": "mystery"}}]
  })");
  ASSERT_FALSE(badgain.ok());
  EXPECT_NE(badgain.error().message.find("a->b"), std::string::npos);
}

TEST(Parse, BuilderValidationCodesSurface) {
  // Structurally valid JSON whose graph has a cycle: the builder's own code
  // comes through unchanged.
  auto cyclic = graph_from_json(R"({
    "schema": "ripple.graph.v1",
    "nodes": [{"name": "a", "kind": "siso", "service_time": 1},
              {"name": "b", "kind": "siso", "service_time": 1}],
    "edges": [{"from": "a", "to": "b",
               "gain": {"type": "deterministic", "k": 1}},
              {"from": "b", "to": "a",
               "gain": {"type": "deterministic", "k": 1}}]
  })");
  ASSERT_FALSE(cyclic.ok());
  EXPECT_EQ(cyclic.error().code, "cycle");
}

TEST(Parse, RejectsBadSimdWidth) {
  auto fractional = graph_from_json(R"({
    "schema": "ripple.graph.v1",
    "simd_width": 2.5,
    "nodes": [{"name": "a", "kind": "siso", "service_time": 1}],
    "edges": []
  })");
  ASSERT_FALSE(fractional.ok());
  EXPECT_EQ(fractional.error().code, "bad_schema");
  EXPECT_NE(fractional.error().message.find("simd_width"), std::string::npos);
}

}  // namespace
}  // namespace ripple::graph
