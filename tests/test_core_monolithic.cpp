#include "core/monolithic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blast/canonical.hpp"
#include "dist/rng.hpp"
#include "sdf/analysis.hpp"

namespace ripple::core {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

TEST(Config, RejectsSubUnitParameters) {
  EXPECT_THROW(MonolithicStrategy(blast_pipeline(), {0.5, 1.0}),
               std::logic_error);
  EXPECT_THROW(MonolithicStrategy(blast_pipeline(), {1.0, 0.9}),
               std::logic_error);
}

TEST(BlockService, HandComputedValues) {
  const MonolithicStrategy strategy(blast_pipeline(), {});
  // M = 100: ceil(100/128)=1, ceil(37.9/128)=1, ceil(72.8/128)=1,
  // ceil(2.42/128)=1 -> 287+955+402+2753 = 4397.
  EXPECT_DOUBLE_EQ(strategy.mean_block_service(100), 4397.0);
  // M = 128: stage 0 exactly one full vector.
  EXPECT_DOUBLE_EQ(strategy.mean_block_service(128), 4397.0);
  // M = 129: stage 0 spills into a second firing.
  EXPECT_DOUBLE_EQ(strategy.mean_block_service(129), 4397.0 + 287.0);
}

TEST(BlockService, AsymptoticPerItemCostMatchesAnalysis) {
  const auto pipeline = blast_pipeline();
  const MonolithicStrategy strategy(pipeline, {});
  const std::int64_t m = 10'000'000;
  EXPECT_NEAR(strategy.mean_block_service(m) / static_cast<double>(m),
              pipeline.mean_service_per_input(), 1e-3);
}

TEST(BlockService, RejectsNonPositiveBlock) {
  const MonolithicStrategy strategy(blast_pipeline(), {});
  EXPECT_THROW((void)strategy.mean_block_service(0), std::logic_error);
}

TEST(Feasibility, StabilityExcludesFastArrivals) {
  const auto pipeline = blast_pipeline();
  const MonolithicStrategy strategy(pipeline, {});
  // Stability limit: tau0 >= mean service per input ~ 7.87.
  const double tau_min = sdf::min_interarrival_monolithic(pipeline);
  EXPECT_FALSE(strategy.is_feasible(tau_min * 0.9, 1e9));
  EXPECT_TRUE(strategy.is_feasible(tau_min * 1.3, 1e9));
}

TEST(Feasibility, SmallBlockStabilityIsWorseThanAsymptotic) {
  // At tau0 slightly above the asymptotic limit, small blocks are still
  // unstable (ceil overhead) but large ones work.
  const MonolithicStrategy strategy(blast_pipeline(), {});
  const double tau0 = 9.0;
  EXPECT_FALSE(strategy.is_block_feasible(10, tau0, 1e9));
  EXPECT_TRUE(strategy.is_block_feasible(5000, tau0, 1e9));
}

TEST(MaxBlockSize, ScalesWithDeadline) {
  // Cap formula: M <= D / (b*tau0 + S*c) with c the per-input service floor.
  const auto pipeline = blast_pipeline();
  const MonolithicStrategy strategy(pipeline, {});
  const double c = pipeline.mean_service_per_input();
  EXPECT_EQ(strategy.max_block_size(10.0, 2e4),
            static_cast<std::int64_t>(2e4 / (10.0 + c)));
  EXPECT_EQ(strategy.max_block_size(10.0, 3.5e5),
            static_cast<std::int64_t>(3.5e5 / (10.0 + c)));
  const MonolithicStrategy doubled(pipeline, {2.0, 1.0});
  EXPECT_EQ(doubled.max_block_size(10.0, 2e4),
            static_cast<std::int64_t>(2e4 / (20.0 + c)));
  const MonolithicStrategy scaled(pipeline, {1.0, 2.0});
  EXPECT_EQ(scaled.max_block_size(10.0, 2e4),
            static_cast<std::int64_t>(2e4 / (10.0 + 2.0 * c)));
}

TEST(MaxBlockSize, TightenedCapNeverCutsAFeasibleBlock) {
  // The cap only drops deadline-infeasible blocks: above it,
  // is_block_feasible must be false; the argmin over the loose cap
  // D/(b*tau0) therefore equals the argmin over the tight cap. Checked
  // across the paper grid corners used by Figures 3/4.
  const MonolithicStrategy strategy(blast_pipeline(), {});
  for (double tau0 : {10.0, 25.0, 50.0, 100.0}) {
    for (double deadline : {2e4, 1e5, 2.3e5, 3.5e5}) {
      const std::int64_t tight = strategy.max_block_size(tau0, deadline);
      const std::int64_t loose = static_cast<std::int64_t>(deadline / tau0);
      ASSERT_LE(tight, loose);
      for (std::int64_t m = tight + 1; m <= loose; ++m) {
        ASSERT_FALSE(strategy.is_block_feasible(m, tau0, deadline))
            << "block " << m << " feasible above the tightened cap at tau0="
            << tau0 << " D=" << deadline;
      }
      double best = 2.0;
      std::int64_t best_m = 0;
      for (std::int64_t m = 1; m <= loose; ++m) {
        if (!strategy.is_block_feasible(m, tau0, deadline)) continue;
        const double value = strategy.active_fraction(m, tau0);
        if (value < best) {
          best = value;
          best_m = m;
        }
      }
      auto solved = strategy.solve(tau0, deadline);
      ASSERT_EQ(solved.ok(), best_m != 0) << tau0 << " " << deadline;
      if (solved.ok()) {
        EXPECT_EQ(solved.value().block_size, best_m);
        EXPECT_DOUBLE_EQ(solved.value().predicted_active_fraction, best);
      }
    }
  }
}

TEST(Solve, InfeasibleWhenDeadlineAdmitsNoBlock) {
  const MonolithicStrategy strategy(blast_pipeline(), {});
  auto solved = strategy.solve(100.0, 50.0);  // b*tau0 = 100 > D
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.error().code, "infeasible");
}

TEST(Solve, InfeasibleWhenUnstable) {
  const MonolithicStrategy strategy(blast_pipeline(), {});
  auto solved = strategy.solve(5.0, 3.5e5);  // below stability limit
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.error().code, "infeasible");
}

TEST(Solve, ScheduleSatisfiesBothConstraints) {
  const MonolithicStrategy strategy(blast_pipeline(), {});
  for (double tau0 : {10.0, 20.0, 50.0, 100.0}) {
    for (double deadline : {2e4, 1e5, 3.5e5}) {
      auto solved = strategy.solve(tau0, deadline);
      // Some corners are genuinely infeasible (e.g. tau0=10, D=2e4: the
      // block big enough for stability no longer fits the deadline); the
      // solver's verdict must then agree with the exhaustive test.
      ASSERT_EQ(solved.ok(), strategy.is_feasible(tau0, deadline))
          << tau0 << " " << deadline;
      if (!solved.ok()) continue;
      const auto& schedule = solved.value();
      EXPECT_TRUE(strategy.is_block_feasible(schedule.block_size, tau0, deadline));
      EXPECT_LE(schedule.mean_block_service,
                static_cast<double>(schedule.block_size) * tau0 + 1e-9);
      EXPECT_LE(schedule.worst_case_latency, deadline + 1e-6);
      EXPECT_NEAR(schedule.predicted_active_fraction,
                  schedule.mean_block_service /
                      (static_cast<double>(schedule.block_size) * tau0),
                  1e-12);
    }
  }
}

TEST(Solve, ScanIsExact) {
  // Verify optimality against a brute-force re-scan at one point.
  const MonolithicStrategy strategy(blast_pipeline(), {});
  const double tau0 = 25.0;
  const double deadline = 1e5;
  auto solved = strategy.solve(tau0, deadline);
  ASSERT_TRUE(solved.ok());
  double best = 1e9;
  for (std::int64_t m = 1; m <= strategy.max_block_size(tau0, deadline); ++m) {
    if (!strategy.is_block_feasible(m, tau0, deadline)) continue;
    best = std::min(best, strategy.active_fraction(m, tau0));
  }
  EXPECT_DOUBLE_EQ(solved.value().predicted_active_fraction, best);
}

TEST(Solve, BranchAndBoundMatchesScan) {
  const MonolithicStrategy strategy(blast_pipeline(), {});
  for (double tau0 : {10.0, 30.0, 100.0}) {
    for (double deadline : {2e4, 1.2e5, 3.5e5}) {
      auto scan = strategy.solve(tau0, deadline);
      auto bnb = strategy.solve_branch_and_bound(tau0, deadline);
      ASSERT_EQ(scan.ok(), bnb.ok()) << tau0 << " " << deadline;
      if (!scan.ok()) continue;
      EXPECT_NEAR(scan.value().predicted_active_fraction,
                  bnb.value().predicted_active_fraction, 1e-12)
          << tau0 << " " << deadline;
    }
  }
}

TEST(Solve, ActiveFractionDecreasesWithTau0) {
  // Paper Figure 3: monolithic utilization scales inversely with tau0.
  const MonolithicStrategy strategy(blast_pipeline(), {});
  auto at20 = strategy.solve(20.0, 3.5e5);
  auto at100 = strategy.solve(100.0, 3.5e5);
  ASSERT_TRUE(at20.ok());
  ASSERT_TRUE(at100.ok());
  EXPECT_GT(at20.value().predicted_active_fraction,
            3.0 * at100.value().predicted_active_fraction);
}

TEST(Solve, ActiveFractionNearlyInsensitiveToDeadlineWhenLarge) {
  // Paper Figure 3: monolithic utilization tends to a constant in D.
  const MonolithicStrategy strategy(blast_pipeline(), {});
  auto d1 = strategy.solve(50.0, 2e5);
  auto d2 = strategy.solve(50.0, 3.5e5);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_NEAR(d1.value().predicted_active_fraction,
              d2.value().predicted_active_fraction, 0.02);
}

TEST(Solve, LargerSInflatesWorstCaseAndShrinksBlocks) {
  const MonolithicStrategy base(blast_pipeline(), {1.0, 1.0});
  const MonolithicStrategy scaled(blast_pipeline(), {1.0, 2.0});
  auto b = base.solve(20.0, 1e5);
  auto s = scaled.solve(20.0, 1e5);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_LT(s.value().block_size, b.value().block_size);
  EXPECT_GE(s.value().predicted_active_fraction,
            b.value().predicted_active_fraction - 1e-12);
}

TEST(Solve, AsymptoticActiveFractionMatchesTheory) {
  // Large D, tau0 = 100: AF approaches rho0 * sum G_i t_i / v ~ 0.0787.
  const auto pipeline = blast_pipeline();
  const MonolithicStrategy strategy(pipeline, {});
  auto solved = strategy.solve(100.0, 3.5e5);
  ASSERT_TRUE(solved.ok());
  const double limit = pipeline.mean_service_per_input() / 100.0;
  EXPECT_NEAR(solved.value().predicted_active_fraction, limit, 0.15 * limit);
}

class MonolithicDeadlineSweep : public ::testing::TestWithParam<double> {};

TEST_P(MonolithicDeadlineSweep, BlockGrowsWithDeadline) {
  const MonolithicStrategy strategy(blast_pipeline(), {});
  const double deadline = GetParam();
  auto solved = strategy.solve(50.0, deadline);
  ASSERT_TRUE(solved.ok());
  auto larger = strategy.solve(50.0, deadline * 1.5);
  ASSERT_TRUE(larger.ok());
  EXPECT_GE(larger.value().block_size, solved.value().block_size);
  EXPECT_LE(larger.value().predicted_active_fraction,
            solved.value().predicted_active_fraction + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Deadlines, MonolithicDeadlineSweep,
                         ::testing::Values(2e4, 4e4, 8e4, 1.6e5, 2.3e5));

/// Property: on random pipelines, solve() equals an independent brute-force
/// minimum and branch-and-bound agrees.
class MonolithicRandom : public ::testing::TestWithParam<int> {};

TEST_P(MonolithicRandom, SolverIsExactOnRandomPipelines) {
  dist::Xoshiro256 rng(4000 + GetParam());
  sdf::PipelineBuilder builder("random");
  const std::uint32_t v = 8u << rng.uniform_below(4);  // 8..64
  builder.simd_width(v);
  const std::size_t n = 2 + rng.uniform_below(3);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add_node("n" + std::to_string(i), 20.0 + rng.uniform01() * 500.0,
                     i + 1 == n
                         ? dist::make_deterministic(1)
                         : dist::make_censored_poisson(
                               0.1 + rng.uniform01() * 1.2, 8));
  }
  const auto pipeline = std::move(builder.build()).take();
  const MonolithicStrategy strategy(pipeline, {});

  const double tau0 =
      pipeline.mean_service_per_input() * (1.2 + rng.uniform01() * 4.0);
  const double deadline = tau0 * (200.0 + rng.uniform01() * 3000.0);

  auto solved = strategy.solve(tau0, deadline);
  double brute_best = 2.0;
  for (std::int64_t m = 1; m <= strategy.max_block_size(tau0, deadline); ++m) {
    if (!strategy.is_block_feasible(m, tau0, deadline)) continue;
    brute_best = std::min(brute_best, strategy.active_fraction(m, tau0));
  }
  if (brute_best > 1.5) {
    EXPECT_FALSE(solved.ok());
    return;
  }
  ASSERT_TRUE(solved.ok());
  EXPECT_DOUBLE_EQ(solved.value().predicted_active_fraction, brute_best);
  auto bnb = strategy.solve_branch_and_bound(tau0, deadline);
  ASSERT_TRUE(bnb.ok());
  EXPECT_DOUBLE_EQ(bnb.value().predicted_active_fraction, brute_best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonolithicRandom, ::testing::Range(0, 20));

}  // namespace
}  // namespace ripple::core
