// Property-based node-compliance bench: every node kind is pushed through
// randomized batch sizes, arrival spacings, and compaction patterns, and
// checked for the invariants the DAG model promises — item conservation,
// per-root ordering, elementwise pairing across branches, and gain
// accounting — on BOTH the vector-wide engine and the scalar reference
// oracle (whose agreement is itself asserted on every trial).
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <vector>

#include "dist/gain.hpp"
#include "graph/graph_executor.hpp"
#include "graph/graph_spec.hpp"

namespace ripple::graph {
namespace {

using dist::make_deterministic;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::vector<Item> make_inputs(std::size_t count, std::uint64_t seed) {
  std::vector<Item> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    inputs.push_back(splitmix64(seed * 1000003ull + i));
  }
  return inputs;
}

/// One randomized trial shape, derived deterministically from its index.
struct TrialShape {
  std::size_t input_count;
  Cycles input_gap;
  double interval_scale;
  std::uint64_t salt;
};

TrialShape shape_for(std::uint64_t trial) {
  // Batch shapes straddle the SIMD width (v = 8 in these fixtures): single
  // item, partial vector, exact vector, vector + remainder, many vectors.
  static constexpr std::size_t kCounts[] = {1, 3, 7, 8, 11, 33};
  static constexpr Cycles kGaps[] = {1.0, 7.0, 31.0};
  static constexpr double kScales[] = {1.0, 1.6};
  return TrialShape{kCounts[trial % 6], kGaps[trial % 3],
                    kScales[trial % 2], splitmix64(trial)};
}

GraphExecutorConfig config_for(const GraphSpec& graph,
                               const TrialShape& shape) {
  GraphExecutorConfig config;
  config.firing_intervals = graph.minimal_firing_intervals();
  for (Cycles& x : config.firing_intervals) x *= shape.interval_scale;
  config.input_gap = shape.input_gap;
  config.max_collected_results = 1 << 20;
  return config;
}

void expect_engines_agree(const GraphExecutor& executor,
                          const std::vector<Item>& inputs,
                          const GraphExecutorConfig& config,
                          runtime::ExecutionMetrics& out) {
  auto vector_run = executor.run(inputs, config);
  ASSERT_TRUE(vector_run.ok()) << vector_run.error().message;
  auto reference = executor.run_reference(inputs, config);
  ASSERT_TRUE(reference.ok()) << reference.error().message;
  const sim::TrialMetrics& v = vector_run.value().base;
  const sim::TrialMetrics& r = reference.value().base;
  ASSERT_EQ(v.nodes.size(), r.nodes.size());
  for (std::size_t i = 0; i < v.nodes.size(); ++i) {
    EXPECT_EQ(v.nodes[i].firings, r.nodes[i].firings) << i;
    EXPECT_EQ(v.nodes[i].items_consumed, r.nodes[i].items_consumed) << i;
    EXPECT_EQ(v.nodes[i].items_produced, r.nodes[i].items_produced) << i;
    EXPECT_EQ(v.nodes[i].active_time, r.nodes[i].active_time) << i;
    EXPECT_EQ(v.nodes[i].max_queue_length, r.nodes[i].max_queue_length) << i;
  }
  EXPECT_EQ(v.sink_outputs, r.sink_outputs);
  EXPECT_EQ(v.makespan, r.makespan);
  ASSERT_EQ(vector_run.value().results.size(),
            reference.value().results.size());
  for (std::size_t i = 0; i < vector_run.value().results.size(); ++i) {
    EXPECT_EQ(std::any_cast<std::uint64_t>(vector_run.value().results[i]),
              std::any_cast<std::uint64_t>(reference.value().results[i]))
        << i;
  }
  out = std::move(vector_run).take();
}

// ---------------------------------------------------------------------------
// SISO: a filtering/expanding transform whose exact output sequence is
// reproduced by a scalar fold over the inputs (FIFO order end to end).

/// The transform under test: h = splitmix(x ^ salt) picks 0..3 outputs, each
/// a fresh hash — so trials exercise drop, keep, and expansion lanes.
void xform_model(std::uint64_t x, std::uint64_t salt,
                 std::vector<std::uint64_t>& out) {
  const std::uint64_t h = splitmix64(x ^ salt);
  const std::uint64_t count = h % 4;
  for (std::uint64_t j = 0; j < count; ++j) {
    out.push_back(splitmix64(x + j));
  }
}

struct GraphScenarioLike {
  GraphSpec graph;
  std::vector<GraphStageFn> stages;
};

GraphScenarioLike siso_fixture(std::uint64_t salt) {
  auto built = GraphBuilder("siso_compliance")
                   .simd_width(8)
                   .add_node("src", NodeKind::kSiso, 10.0)
                   .add_node("xform", NodeKind::kSiso, 6.0)
                   .add_node("snk", NodeKind::kSiso, 4.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(1, 2, make_deterministic(1))
                   .build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  GraphScenarioLike fixture{std::move(built).take(), {}};
  fixture.stages = {
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::any_cast<std::uint64_t>(in[0]));
      },
      [salt](std::vector<Item>&& in, std::vector<Item>& out) {
        std::vector<std::uint64_t> produced;
        xform_model(std::any_cast<std::uint64_t>(in[0]), salt, produced);
        for (std::uint64_t value : produced) out.push_back(value);
      },
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::any_cast<std::uint64_t>(in[0]));
      },
  };
  return fixture;
}

TEST(SisoCompliance, ConservationOrderingAndGainAcrossShapes) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const TrialShape shape = shape_for(trial);
    GraphScenarioLike fixture = siso_fixture(shape.salt);
    const GraphExecutor executor(fixture.graph, fixture.stages);
    const auto inputs = make_inputs(shape.input_count, trial);
    const GraphExecutorConfig config = config_for(fixture.graph, shape);

    runtime::ExecutionMetrics metrics;
    expect_engines_agree(executor, inputs, config, metrics);

    // Scalar fold: the exact expected sink sequence.
    std::vector<std::uint64_t> expected;
    for (const Item& item : inputs) {
      xform_model(std::any_cast<std::uint64_t>(item), shape.salt, expected);
    }
    ASSERT_EQ(metrics.results.size(), expected.size()) << "trial " << trial;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(std::any_cast<std::uint64_t>(metrics.results[i]), expected[i])
          << "trial " << trial << " result " << i;
    }

    // Conservation + gain accounting.
    const auto& nodes = metrics.base.nodes;
    EXPECT_EQ(nodes[0].items_consumed, shape.input_count);
    EXPECT_EQ(nodes[1].items_consumed, shape.input_count);
    EXPECT_EQ(nodes[1].items_produced, expected.size());
    EXPECT_EQ(nodes[2].items_consumed, expected.size());
    EXPECT_EQ(metrics.base.sink_outputs, expected.size());
  }
}

// ---------------------------------------------------------------------------
// Tee + merge: variable-count tee outputs are replicated onto both branches;
// each branch transforms differently; the merge recovers the original value
// from one branch and cross-checks the other, so any pairing or ordering
// slip produces a sentinel.

constexpr std::uint64_t kSentinel = 0xdeadull;

GraphScenarioLike tee_fixture(std::uint64_t salt) {
  auto built = GraphBuilder("tee_compliance")
                   .simd_width(8)
                   .add_node("src", NodeKind::kSiso, 10.0)
                   .add_node("tee", NodeKind::kSimoTee, 4.0)
                   .add_node("left", NodeKind::kSiso, 6.0)
                   .add_node("right", NodeKind::kSiso, 6.0)
                   .add_node("merge", NodeKind::kMisoElementwise, 5.0)
                   .add_node("snk", NodeKind::kSiso, 3.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(1, 2, make_deterministic(1))
                   .add_edge(1, 3, make_deterministic(1))
                   .add_edge(2, 4, make_deterministic(1))
                   .add_edge(3, 4, make_deterministic(1))
                   .add_edge(4, 5, make_deterministic(1))
                   .build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  GraphScenarioLike fixture{std::move(built).take(), {}};
  fixture.stages = {
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::any_cast<std::uint64_t>(in[0]));
      },
      // Tee with a compaction pattern: 0..2 outputs per input.
      [salt](std::vector<Item>&& in, std::vector<Item>& out) {
        const auto x = std::any_cast<std::uint64_t>(in[0]);
        const std::uint64_t count = splitmix64(x ^ salt) % 3;
        for (std::uint64_t j = 0; j < count; ++j) {
          out.push_back(splitmix64(x) + j);
        }
      },
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::any_cast<std::uint64_t>(in[0]) * 3);
      },
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::uint64_t{std::any_cast<std::uint64_t>(in[0]) ^ 0x5555u});
      },
      // Merge sees (left, right) in in-edge insertion order; both derive
      // from the SAME tee output when pairing is correct.
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        const auto left = std::any_cast<std::uint64_t>(in[0]);
        const auto right = std::any_cast<std::uint64_t>(in[1]);
        const std::uint64_t original = right ^ 0x5555ull;
        out.push_back(left == original * 3 ? original : kSentinel);
      },
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::any_cast<std::uint64_t>(in[0]));
      },
  };
  return fixture;
}

TEST(TeeMergeCompliance, ReplicationStaysPairedAcrossShapes) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const TrialShape shape = shape_for(trial);
    GraphScenarioLike fixture = tee_fixture(shape.salt);
    const GraphExecutor executor(fixture.graph, fixture.stages);
    const auto inputs = make_inputs(shape.input_count, trial + 100);
    const GraphExecutorConfig config = config_for(fixture.graph, shape);

    runtime::ExecutionMetrics metrics;
    expect_engines_agree(executor, inputs, config, metrics);

    // Pairing invariant: no merge firing ever saw mismatched branch items.
    for (const Item& result : metrics.results) {
      EXPECT_NE(std::any_cast<std::uint64_t>(result), kSentinel)
          << "trial " << trial;
    }

    // Conservation: tee replicates its per-lane outputs onto both edges.
    const auto& nodes = metrics.base.nodes;
    EXPECT_EQ(nodes[1].items_produced % 2, 0u);
    const std::uint64_t per_branch = nodes[1].items_produced / 2;
    EXPECT_EQ(nodes[2].items_consumed, per_branch);
    EXPECT_EQ(nodes[3].items_consumed, per_branch);
    EXPECT_EQ(nodes[4].items_consumed, 2 * nodes[4].items_produced);
    EXPECT_EQ(metrics.base.sink_outputs, per_branch);
  }
}

// ---------------------------------------------------------------------------
// Synchronizer: two rate-matched streams realigned into lockstep, then
// merged with the same pairing check. The synchronizer must forward exactly
// (consumed == produced, per stream, order preserved).

GraphScenarioLike sync_fixture() {
  auto built = GraphBuilder("sync_compliance")
                   .simd_width(8)
                   .add_node("src", NodeKind::kSiso, 10.0)
                   .add_node("tee", NodeKind::kSimoTee, 4.0)
                   .add_node("p", NodeKind::kSiso, 6.0)
                   .add_node("q", NodeKind::kSiso, 7.0)
                   .add_node("sync", NodeKind::kMimoSynchronizer, 3.0)
                   .add_node("np", NodeKind::kSiso, 5.0)
                   .add_node("nq", NodeKind::kSiso, 5.0)
                   .add_node("merge", NodeKind::kMisoElementwise, 5.0)
                   .add_node("snk", NodeKind::kSiso, 3.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(1, 2, make_deterministic(1))
                   .add_edge(1, 3, make_deterministic(1))
                   .add_edge(2, 4, make_deterministic(1))
                   .add_edge(3, 4, make_deterministic(1))
                   .add_edge(4, 5, make_deterministic(1))
                   .add_edge(4, 6, make_deterministic(1))
                   .add_edge(5, 7, make_deterministic(1))
                   .add_edge(6, 7, make_deterministic(1))
                   .add_edge(7, 8, make_deterministic(1))
                   .build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  GraphScenarioLike fixture{std::move(built).take(), {}};
  auto pass = [](std::vector<Item>&& in, std::vector<Item>& out) {
    out.push_back(std::any_cast<std::uint64_t>(in[0]));
  };
  fixture.stages = {
      pass,
      pass,  // tee forwards one copy per out-edge
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::any_cast<std::uint64_t>(in[0]) * 3);
      },
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        out.push_back(std::uint64_t{std::any_cast<std::uint64_t>(in[0]) ^ 0x5555u});
      },
      nullptr,  // synchronizer: pure forwarding
      pass,
      pass,
      [](std::vector<Item>&& in, std::vector<Item>& out) {
        const auto left = std::any_cast<std::uint64_t>(in[0]);
        const auto right = std::any_cast<std::uint64_t>(in[1]);
        const std::uint64_t original = right ^ 0x5555ull;
        out.push_back(left == original * 3 ? original : kSentinel);
      },
      pass,
  };
  return fixture;
}

TEST(SynchronizerCompliance, ForwardsLocksteppedStreamsAcrossShapes) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const TrialShape shape = shape_for(trial);
    GraphScenarioLike fixture = sync_fixture();
    const GraphExecutor executor(fixture.graph, fixture.stages);
    const auto inputs = make_inputs(shape.input_count, trial + 200);
    const GraphExecutorConfig config = config_for(fixture.graph, shape);

    runtime::ExecutionMetrics metrics;
    expect_engines_agree(executor, inputs, config, metrics);

    const std::uint64_t n = shape.input_count;
    const auto& nodes = metrics.base.nodes;
    // Synchronizer conservation: consumed == produced across both streams.
    EXPECT_EQ(nodes[4].items_consumed, nodes[4].items_produced);
    EXPECT_EQ(nodes[4].items_consumed, 2 * n);
    // Stream identity preserved through the sync: every merge pair matched.
    ASSERT_EQ(metrics.results.size(), n);
    for (std::size_t i = 0; i < metrics.results.size(); ++i) {
      const auto value = std::any_cast<std::uint64_t>(metrics.results[i]);
      EXPECT_NE(value, kSentinel) << "trial " << trial << " result " << i;
      // Per-root ordering: results come out in arrival order.
      EXPECT_EQ(value, std::any_cast<std::uint64_t>(inputs[i]))
          << "trial " << trial << " result " << i;
    }
    EXPECT_EQ(metrics.base.sink_outputs, n);
  }
}

}  // namespace
}  // namespace ripple::graph
