#include "runtime/pipeline_executor.hpp"

#include <gtest/gtest.h>

#include "blast/measure.hpp"
#include "blast/sequence.hpp"
#include "blast/stages.hpp"
#include "core/enforced_waits.hpp"

namespace ripple::runtime {
namespace {

/// A 2-stage integer pipeline: double the value, then keep multiples of 4.
PipelineExecutor make_toy_executor() {
  auto spec = sdf::PipelineBuilder("toy")
                  .simd_width(4)
                  .add_node("double", 10.0, dist::make_deterministic(1))
                  .add_node("filter", 20.0, dist::make_deterministic(1))
                  .build();
  std::vector<StageFn> stages;
  stages.push_back([](Item&& input, std::vector<Item>& outputs) {
    outputs.emplace_back(std::any_cast<int>(input) * 2);
  });
  stages.push_back([](Item&& input, std::vector<Item>& outputs) {
    const int value = std::any_cast<int>(input);
    if (value % 4 == 0) outputs.emplace_back(value);
  });
  return PipelineExecutor(std::move(spec).take(), std::move(stages));
}

std::vector<Item> iota_items(int count) {
  std::vector<Item> items;
  items.reserve(count);
  for (int i = 1; i <= count; ++i) items.emplace_back(i);
  return items;
}

TEST(Executor, ArityMismatchThrows) {
  auto spec = sdf::PipelineBuilder("one")
                  .simd_width(4)
                  .add_node("a", 1.0, dist::make_deterministic(1))
                  .build();
  EXPECT_THROW(PipelineExecutor(std::move(spec).take(), std::vector<StageFn>{}),
               std::logic_error);
}

TEST(Executor, ConfigValidation) {
  const auto executor = make_toy_executor();
  ExecutorConfig config;
  config.firing_intervals = {40.0};  // wrong arity
  EXPECT_FALSE(executor.run(iota_items(4), config).ok());
  config.firing_intervals = {5.0, 40.0};  // below service time
  EXPECT_FALSE(executor.run(iota_items(4), config).ok());
  config.firing_intervals = {40.0, 40.0};
  config.input_gap = 0.0;
  EXPECT_FALSE(executor.run(iota_items(4), config).ok());
  config.input_gap = 10.0;
  EXPECT_FALSE(executor.run({}, config).ok());  // no inputs
}

TEST(Executor, RealComputationFlowsThrough) {
  const auto executor = make_toy_executor();
  ExecutorConfig config;
  config.firing_intervals = {40.0, 40.0};
  config.input_gap = 10.0;
  auto result = executor.run(iota_items(100), config);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const auto& metrics = result.value();
  EXPECT_EQ(metrics.base.inputs_arrived, 100u);
  // double(i) = 2i; multiples of 4 <=> even i: exactly 50 survive.
  EXPECT_EQ(metrics.base.sink_outputs, 50u);
  ASSERT_EQ(metrics.results.size(), 50u);
  EXPECT_EQ(std::any_cast<int>(metrics.results[0]), 4);
  EXPECT_EQ(std::any_cast<int>(metrics.results[1]), 8);
  EXPECT_EQ(std::any_cast<int>(metrics.results[49]), 200);
  // Stage accounting: node 0 consumed all inputs, produced one each.
  EXPECT_EQ(metrics.base.nodes[0].items_consumed, 100u);
  EXPECT_EQ(metrics.base.nodes[0].items_produced, 100u);
  EXPECT_EQ(metrics.base.nodes[1].items_consumed, 100u);
  EXPECT_EQ(metrics.base.nodes[1].items_produced, 50u);
}

TEST(Executor, ResultCollectionCapped) {
  const auto executor = make_toy_executor();
  ExecutorConfig config;
  config.firing_intervals = {40.0, 40.0};
  config.input_gap = 10.0;
  config.max_collected_results = 7;
  auto result = executor.run(iota_items(100), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().results.size(), 7u);
  EXPECT_EQ(result.value().base.sink_outputs, 50u);  // counting unaffected
}

TEST(Executor, DeadlineMissAccounting) {
  const auto executor = make_toy_executor();
  ExecutorConfig config;
  config.firing_intervals = {400.0, 400.0};  // long waits
  config.input_gap = 10.0;
  config.deadline = 100.0;  // impossible: one pass takes >= 800 cycles
  auto result = executor.run(iota_items(50), config);
  ASSERT_TRUE(result.ok());
  // Every even input produces a late output.
  EXPECT_EQ(result.value().base.inputs_missed, 25u);
}

TEST(Executor, LatencyBoundedByScheduleDesign) {
  const auto executor = make_toy_executor();
  ExecutorConfig config;
  config.firing_intervals = {40.0, 60.0};
  config.input_gap = 15.0;
  auto result = executor.run(iota_items(500), config);
  ASSERT_TRUE(result.ok());
  // Worst case across the run: one full interval of queueing per node plus
  // service, with stable queues (gap*4 > intervals' demand).
  EXPECT_LE(result.value().base.output_latency.max(),
            2.0 * (40.0 + 60.0) + 10.0 + 20.0);
}

TEST(Executor, MiniBlastRealDataPath) {
  // Drive the actual mini-BLAST computation through the executor and check
  // the item flow matches the measurement pass exactly (same windows, same
  // deterministic stages).
  dist::Xoshiro256 rng(404);
  blast::SequencePairConfig pair_config;
  pair_config.subject_length = 1 << 15;
  pair_config.query_length = 1 << 13;
  const auto pair = blast::make_sequence_pair(pair_config, rng);
  blast::BlastStages::Config stage_config;
  const blast::BlastStages stages(pair, stage_config);

  constexpr std::uint64_t kWindows = 20000;
  blast::MeasureConfig measure_config;
  measure_config.window_count = kWindows;
  const auto measurement = blast::measure_pipeline(stages, measure_config);
  auto spec = measurement.to_pipeline_spec(128);
  ASSERT_TRUE(spec.ok());

  std::vector<StageFn> stage_fns;
  stage_fns.push_back([&](Item&& input, std::vector<Item>& outputs) {
    const auto pos = std::any_cast<std::uint32_t>(input);
    blast::StageCost cost;
    if (stages.seed_match(pos, cost)) outputs.emplace_back(pos);
  });
  stage_fns.push_back([&](Item&& input, std::vector<Item>& outputs) {
    const auto pos = std::any_cast<std::uint32_t>(input);
    blast::StageCost cost;
    for (const blast::HitItem& hit : stages.expand_seed(pos, cost)) {
      outputs.emplace_back(hit);
    }
  });
  stage_fns.push_back([&](Item&& input, std::vector<Item>& outputs) {
    const auto hit = std::any_cast<blast::HitItem>(input);
    blast::StageCost cost;
    if (auto extended = stages.ungapped_extend(hit, cost)) {
      outputs.emplace_back(*extended);
    }
  });
  stage_fns.push_back([&](Item&& input, std::vector<Item>& outputs) {
    const auto extended = std::any_cast<blast::ExtendedHit>(input);
    blast::StageCost cost;
    outputs.emplace_back(stages.gapped_extend(extended, cost));
  });

  const PipelineExecutor executor(spec.value(), std::move(stage_fns));

  std::vector<Item> inputs;
  inputs.reserve(kWindows);
  for (std::uint64_t w = 0; w < kWindows; ++w) {
    inputs.emplace_back(
        static_cast<std::uint32_t>(w % stages.input_count()));
  }

  // Generous schedule: stable queues so everything drains.
  const auto& pipeline = spec.value();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{{2.0, 4.0, 9.0, 6.0}});
  const double tau0 = pipeline.mean_service_per_input() * 4.0;
  const double deadline = 600.0 * pipeline.service_time(3);
  auto schedule = strategy.solve(tau0, deadline);
  ASSERT_TRUE(schedule.ok()) << schedule.error().message;

  ExecutorConfig config;
  config.firing_intervals = schedule.value().firing_intervals;
  config.input_gap = tau0;
  config.deadline = deadline;
  config.max_collected_results = 64;
  auto result = executor.run(std::move(inputs), config);
  ASSERT_TRUE(result.ok()) << result.error().message;
  const auto& metrics = result.value();

  // The real data path reproduces the measurement's flow exactly.
  EXPECT_EQ(metrics.base.nodes[0].items_consumed, measurement.stages[0].inputs);
  EXPECT_EQ(metrics.base.nodes[0].items_produced, measurement.stages[0].outputs);
  EXPECT_EQ(metrics.base.nodes[1].items_produced, measurement.stages[1].outputs);
  EXPECT_EQ(metrics.base.nodes[2].items_produced, measurement.stages[2].outputs);
  EXPECT_EQ(metrics.base.sink_outputs, measurement.alignments_reported);

  // Collected results are genuine alignments.
  for (const Item& item : metrics.results) {
    const auto alignment = std::any_cast<blast::Alignment>(item);
    EXPECT_GE(alignment.score, stage_config.ungapped_threshold);
  }
}

}  // namespace
}  // namespace ripple::runtime
