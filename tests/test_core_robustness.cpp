#include "core/robustness.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blast/canonical.hpp"

namespace ripple::core {
namespace {

EnforcedWaitsStrategy blast_strategy() {
  return EnforcedWaitsStrategy(blast::canonical_blast_pipeline(),
                               EnforcedWaitsConfig{blast::paper_calibrated_b()});
}

const ConstraintSlack& find_slack(const ScheduleSensitivity& sensitivity,
                                  const std::string& label) {
  for (const auto& slack : sensitivity.slacks) {
    if (slack.label == label) return slack;
  }
  throw std::logic_error("slack not found: " + label);
}

TEST(Sensitivity, InfeasiblePointFails) {
  const auto strategy = blast_strategy();
  auto result = analyze_sensitivity(strategy, 1.0, 3.5e5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "infeasible");
}

TEST(Sensitivity, DeadlineAlwaysActive) {
  const auto strategy = blast_strategy();
  for (double tau0 : {10.0, 50.0, 100.0}) {
    auto result = analyze_sensitivity(strategy, tau0, 1.85e5);
    ASSERT_TRUE(result.ok()) << tau0;
    EXPECT_TRUE(find_slack(result.value(), "deadline").active) << tau0;
  }
}

TEST(Sensitivity, MultiplierMatchesFiniteDifference) {
  const auto strategy = blast_strategy();
  for (double tau0 : {50.0, 100.0}) {
    for (double deadline : {1e5, 2e5, 3.5e5}) {
      auto result = analyze_sensitivity(strategy, tau0, deadline);
      ASSERT_TRUE(result.ok());
      const double h = 500.0;
      auto lo = strategy.solve(tau0, deadline - h);
      auto hi = strategy.solve(tau0, deadline + h);
      ASSERT_TRUE(lo.ok() && hi.ok());
      const double fd = (lo.value().predicted_active_fraction -
                         hi.value().predicted_active_fraction) /
                        (2.0 * h);
      EXPECT_NEAR(result.value().deadline_multiplier, fd,
                  0.05 * fd + 1e-10)
          << tau0 << " " << deadline;
    }
  }
}

TEST(Sensitivity, ExactWhenChainInactive) {
  const auto strategy = blast_strategy();
  auto result = analyze_sensitivity(strategy, 100.0, 3.5e5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().exact);
  EXPECT_GT(result.value().deadline_multiplier, 0.0);
}

TEST(Sensitivity, MultiplierFallsWithDeadline) {
  // Diminishing returns: the marginal value of deadline shrinks as D grows.
  const auto strategy = blast_strategy();
  auto tight = analyze_sensitivity(strategy, 100.0, 5e4);
  auto slack = analyze_sensitivity(strategy, 100.0, 3.5e5);
  ASSERT_TRUE(tight.ok() && slack.ok());
  EXPECT_GT(tight.value().deadline_multiplier,
            slack.value().deadline_multiplier);
}

TEST(Sensitivity, RateBottleneckAtSmallTau0) {
  const auto strategy = blast_strategy();
  // tau0 = 3: x_0 pinned to v*tau0 = 384.
  auto result = analyze_sensitivity(strategy, 3.0, 3.5e5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(find_slack(result.value(), "rate").active);
  EXPECT_EQ(result.value().bottleneck, "rate");
}

TEST(Sensitivity, DeadlineBottleneckAtLargeTau0) {
  const auto strategy = blast_strategy();
  auto result = analyze_sensitivity(strategy, 100.0, 1e5);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(find_slack(result.value(), "rate").active);
  EXPECT_EQ(result.value().bottleneck, "deadline");
}

TEST(Sensitivity, SlackValuesNonNegativeAtOptimum) {
  const auto strategy = blast_strategy();
  auto result = analyze_sensitivity(strategy, 20.0, 1.85e5);
  ASSERT_TRUE(result.ok());
  for (const auto& slack : result.value().slacks) {
    EXPECT_GE(slack.slack, -1e-6) << slack.label;
  }
  // Slack count: rate + deadline + 3 chains + 4 waits.
  EXPECT_EQ(result.value().slacks.size(), 9u);
}

}  // namespace
}  // namespace ripple::core
