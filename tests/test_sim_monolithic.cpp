#include "sim/monolithic_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blast/canonical.hpp"
#include "core/monolithic.hpp"

namespace ripple::sim {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

sdf::PipelineSpec passthrough_pipeline() {
  auto spec = sdf::PipelineBuilder("pass")
                  .simd_width(4)
                  .add_node("a", 10.0, dist::make_deterministic(1))
                  .add_node("b", 20.0, dist::make_deterministic(1))
                  .build();
  return std::move(spec).take();
}

TEST(MonolithicSim, ValidatesConfig) {
  const auto pipeline = passthrough_pipeline();
  arrivals::FixedRateArrivals arrival_process(10.0);
  MonolithicSimConfig config;
  config.block_size = 0;
  EXPECT_THROW((void)simulate_monolithic(pipeline, arrival_process, config),
               std::logic_error);
}

TEST(MonolithicSim, DeterministicPipelineExactService) {
  // M = 4 = v: each stage fires exactly once per block.
  const auto pipeline = passthrough_pipeline();
  arrivals::FixedRateArrivals arrival_process(100.0);
  MonolithicSimConfig config;
  config.block_size = 4;
  config.input_count = 40;  // 10 blocks
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  EXPECT_EQ(metrics.sink_outputs, 40u);
  EXPECT_EQ(metrics.nodes[0].firings, 10u);
  EXPECT_EQ(metrics.nodes[1].firings, 10u);
  EXPECT_DOUBLE_EQ(metrics.nodes[0].active_time, 100.0);
  EXPECT_DOUBLE_EQ(metrics.nodes[1].active_time, 200.0);
}

TEST(MonolithicSim, BlockLatencyIncludesAccumulation) {
  // One block of 4, gaps of 100: first item waits 3 gaps + service.
  const auto pipeline = passthrough_pipeline();
  arrivals::FixedRateArrivals arrival_process(100.0);
  MonolithicSimConfig config;
  config.block_size = 4;
  config.input_count = 4;
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  ASSERT_EQ(metrics.output_latency.count(), 4u);
  // Arrivals at 100..400; block ready 400; finish 400 + 30 = 430.
  EXPECT_DOUBLE_EQ(metrics.output_latency.max(), 330.0);  // first item
  EXPECT_DOUBLE_EQ(metrics.output_latency.min(), 30.0);   // last item
}

TEST(MonolithicSim, FlushProcessesPartialBlock) {
  const auto pipeline = passthrough_pipeline();
  arrivals::FixedRateArrivals arrival_process(10.0);
  MonolithicSimConfig config;
  config.block_size = 100;
  config.input_count = 7;  // never fills a block
  config.flush_final_partial_block = true;
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  EXPECT_EQ(metrics.sink_outputs, 7u);

  MonolithicSimConfig no_flush = config;
  no_flush.flush_final_partial_block = false;
  arrivals::FixedRateArrivals a2(10.0);
  const auto metrics2 = simulate_monolithic(pipeline, a2, no_flush);
  EXPECT_EQ(metrics2.sink_outputs, 0u);
  EXPECT_EQ(metrics2.inputs_on_time, 7u);  // unprocessed, counted on time
}

TEST(MonolithicSim, DeterministicForSeed) {
  const auto pipeline = blast_pipeline();
  MonolithicSimConfig config;
  config.block_size = 500;
  config.input_count = 10000;
  config.seed = 55;
  arrivals::FixedRateArrivals a1(20.0);
  arrivals::FixedRateArrivals a2(20.0);
  const auto m1 = simulate_monolithic(pipeline, a1, config);
  const auto m2 = simulate_monolithic(pipeline, a2, config);
  EXPECT_EQ(m1.sink_outputs, m2.sink_outputs);
  EXPECT_DOUBLE_EQ(m1.makespan, m2.makespan);
}

TEST(MonolithicSim, ActiveFractionApproachesPredictionWithManyBlocks) {
  const auto pipeline = blast_pipeline();
  const core::MonolithicStrategy strategy(pipeline, {});
  const double tau0 = 50.0;
  auto solved = strategy.solve(tau0, 5e4);  // small blocks -> many of them
  ASSERT_TRUE(solved.ok());
  MonolithicSimConfig config;
  config.block_size = solved.value().block_size;
  config.input_count = 100000;  // >> block size
  config.seed = 66;
  arrivals::FixedRateArrivals arrival_process(tau0);
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  EXPECT_NEAR(metrics.active_fraction(),
              solved.value().predicted_active_fraction,
              0.1 * solved.value().predicted_active_fraction);
}

TEST(MonolithicSim, NoMissesWithPaperParameters) {
  // The paper observed no misses for monolithic even with b = 1, S = 1.
  const auto pipeline = blast_pipeline();
  const core::MonolithicStrategy strategy(pipeline, {});
  const double tau0 = 20.0;
  const double deadline = 1.85e5;
  auto solved = strategy.solve(tau0, deadline);
  ASSERT_TRUE(solved.ok());
  MonolithicSimConfig config;
  config.block_size = solved.value().block_size;
  config.input_count = 50000;
  config.deadline = deadline;
  config.seed = 77;
  arrivals::FixedRateArrivals arrival_process(tau0);
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  EXPECT_EQ(metrics.inputs_missed, 0u);
}

TEST(MonolithicSim, OversizedBlocksMissDeadlines) {
  // Force a block far beyond what the deadline allows.
  const auto pipeline = blast_pipeline();
  MonolithicSimConfig config;
  config.block_size = 20000;
  config.input_count = 40000;
  config.deadline = 5e4;
  config.seed = 88;
  arrivals::FixedRateArrivals arrival_process(20.0);
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  EXPECT_GT(metrics.inputs_missed, 0u);
}

TEST(MonolithicSim, StochasticGainsPropagate) {
  const auto pipeline = blast_pipeline();
  MonolithicSimConfig config;
  config.block_size = 1000;
  config.input_count = 50000;
  config.seed = 99;
  arrivals::FixedRateArrivals arrival_process(20.0);
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  // Sink inputs per pipeline input ~ total gain into the sink.
  const double measured = static_cast<double>(metrics.sink_outputs) /
                          static_cast<double>(metrics.inputs_arrived);
  EXPECT_NEAR(measured, pipeline.total_gain_into(3), 0.15 * pipeline.total_gain_into(3));
}

TEST(MonolithicSim, VacuouslyOnTimeInputsCounted) {
  // A pipeline whose first stage filters everything: all inputs on time,
  // nothing emitted.
  auto spec = sdf::PipelineBuilder("drop-all")
                  .simd_width(4)
                  .add_node("filter", 10.0, dist::make_bernoulli(0.0))
                  .add_node("sink", 10.0, dist::make_deterministic(1))
                  .build();
  const auto pipeline = std::move(spec).take();
  MonolithicSimConfig config;
  config.block_size = 4;
  config.input_count = 100;
  config.deadline = 1.0;  // impossibly tight — but nothing ever exits
  arrivals::FixedRateArrivals arrival_process(10.0);
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  EXPECT_EQ(metrics.sink_outputs, 0u);
  EXPECT_EQ(metrics.inputs_missed, 0u);
  EXPECT_EQ(metrics.inputs_on_time, 100u);
}

TEST(MonolithicSim, SharingActorsIsOne) {
  const auto pipeline = passthrough_pipeline();
  arrivals::FixedRateArrivals arrival_process(1000.0);
  MonolithicSimConfig config;
  config.block_size = 4;
  config.input_count = 8;
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  EXPECT_EQ(metrics.sharing_actors, 1u);
  // Active fraction uses makespan directly (not N * makespan).
  Cycles active = 0.0;
  for (const auto& node : metrics.nodes) active += node.active_time;
  EXPECT_NEAR(metrics.active_fraction(), active / metrics.makespan, 1e-12);
}

TEST(MonolithicSim, BacklogQueuesBlocksFcfs) {
  // Deliberately unstable: service far exceeds accumulation; blocks queue and
  // latency grows monotonically across blocks.
  const auto pipeline = blast_pipeline();
  MonolithicSimConfig config;
  config.block_size = 128;
  config.input_count = 1280;
  config.deadline = 0.0;  // no miss accounting; just watch latency
  config.seed = 123;
  arrivals::FixedRateArrivals arrival_process(1.0);  // tau0 = 1: unstable
  const auto metrics = simulate_monolithic(pipeline, arrival_process, config);
  // All inputs processed despite backlog.
  EXPECT_GT(metrics.sink_outputs, 0u);
  // Makespan far exceeds the arrival span (1280 cycles) because of queueing.
  EXPECT_GT(metrics.makespan, 10.0 * 1280.0);
}

}  // namespace
}  // namespace ripple::sim
