// ExecutorConfig::input_gaps — the irregular arrival schedule the service
// layer feeds the executor: bit-exact equivalence with the fixed-gap path
// for a constant vector, validation regressions, and latency accounting
// under genuinely irregular spacing.
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <vector>

#include "dist/gain.hpp"
#include "runtime/pipeline_executor.hpp"
#include "sdf/pipeline.hpp"

namespace ripple::runtime {
namespace {

sdf::PipelineSpec make_spec() {
  auto spec = sdf::PipelineBuilder("gaps")
                  .simd_width(4)
                  .add_node("expand", 8.0, dist::make_deterministic(2))
                  .add_node("filter", 6.0, dist::make_deterministic(1))
                  .add_node("sink", 10.0, nullptr)
                  .build();
  EXPECT_TRUE(spec.ok());
  return spec.value();
}

std::vector<StageFn> make_stages() {
  return {
      [](Item&& input, std::vector<Item>& outputs) {
        const auto value = std::any_cast<std::uint64_t>(input);
        outputs.emplace_back(value * 2);
        outputs.emplace_back(value * 2 + 1);
      },
      [](Item&& input, std::vector<Item>& outputs) {
        outputs.push_back(std::move(input));
      },
      [](Item&& input, std::vector<Item>& outputs) {
        outputs.push_back(std::move(input));
      },
  };
}

std::vector<Item> make_inputs(std::size_t n) {
  std::vector<Item> inputs;
  for (std::uint64_t i = 0; i < n; ++i) inputs.emplace_back(i);
  return inputs;
}

ExecutorConfig base_config() {
  ExecutorConfig config;
  config.firing_intervals = {32.0, 16.0, 16.0};
  config.input_gap = 16.0;
  config.deadline = 600.0;
  return config;
}

TEST(InputGapsTest, ConstantVectorMatchesFixedGapBitForBit) {
  PipelineExecutor executor(make_spec(), make_stages());
  const std::size_t n = 500;

  auto fixed = executor.run(make_inputs(n), base_config());
  ASSERT_TRUE(fixed.ok());

  ExecutorConfig config = base_config();
  config.input_gaps.assign(n, config.input_gap);
  config.input_gap = 0.0;  // must be ignored when input_gaps is set
  auto irregular = executor.run(make_inputs(n), config);
  ASSERT_TRUE(irregular.ok());

  const auto& a = fixed.value().base;
  const auto& b = irregular.value().base;
  EXPECT_EQ(a.inputs_arrived, b.inputs_arrived);
  EXPECT_EQ(a.inputs_missed, b.inputs_missed);
  EXPECT_EQ(a.sink_outputs, b.sink_outputs);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.output_latency.mean(), b.output_latency.mean());
  EXPECT_DOUBLE_EQ(a.output_latency.max(), b.output_latency.max());
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].firings, b.nodes[i].firings);
    EXPECT_EQ(a.nodes[i].items_consumed, b.nodes[i].items_consumed);
    EXPECT_EQ(a.nodes[i].items_produced, b.nodes[i].items_produced);
    EXPECT_DOUBLE_EQ(a.nodes[i].active_time, b.nodes[i].active_time);
  }
  ASSERT_EQ(fixed.value().results.size(), irregular.value().results.size());
  for (std::size_t i = 0; i < fixed.value().results.size(); ++i) {
    EXPECT_EQ(std::any_cast<std::uint64_t>(fixed.value().results[i]),
              std::any_cast<std::uint64_t>(irregular.value().results[i]));
  }
}

TEST(InputGapsTest, SizeMismatchIsBadConfig) {
  PipelineExecutor executor(make_spec(), make_stages());
  ExecutorConfig config = base_config();
  config.input_gaps = {16.0, 16.0, 16.0};  // 3 gaps for 5 inputs
  auto result = executor.run(make_inputs(5), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "bad_config");
}

TEST(InputGapsTest, NonPositiveGapIsBadConfig) {
  PipelineExecutor executor(make_spec(), make_stages());
  ExecutorConfig config = base_config();
  config.input_gaps = {16.0, 0.0, 16.0};
  auto result = executor.run(make_inputs(3), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "bad_config");
}

TEST(InputGapsTest, BurstThenIdleChangesLatencyProfile) {
  PipelineExecutor executor(make_spec(), make_stages());
  const std::size_t n = 64;

  // A burst (tiny gaps) followed by a long idle tail: queueing delay must
  // exceed what the same item count sees when evenly spaced.
  ExecutorConfig burst = base_config();
  for (std::size_t i = 0; i < n; ++i) {
    burst.input_gaps.push_back(i < n / 2 ? 1.0 : 31.0);
  }
  auto bursty = executor.run(make_inputs(n), burst);
  ASSERT_TRUE(bursty.ok());

  auto even = executor.run(make_inputs(n), base_config());
  ASSERT_TRUE(even.ok());

  EXPECT_EQ(bursty.value().base.inputs_arrived, n);
  EXPECT_EQ(bursty.value().base.sink_outputs,
            even.value().base.sink_outputs);
  EXPECT_GT(bursty.value().base.output_latency.max(),
            even.value().base.output_latency.max());
}

TEST(InputGapsTest, ArrivalTimesFollowTheSchedule) {
  // One item per gap; with v-wide firings on an interval equal to the sum of
  // two gaps, the first firing consumes exactly the items that arrived.
  PipelineExecutor executor(make_spec(), make_stages());
  ExecutorConfig config = base_config();
  config.input_gaps = {5.0, 5.0, 100.0, 5.0};
  auto result = executor.run(make_inputs(4), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().base.inputs_arrived, 4u);
  // Every input eventually reaches the sink (gains are deterministic 2x).
  EXPECT_EQ(result.value().base.sink_outputs, 8u);
}

}  // namespace
}  // namespace ripple::runtime
