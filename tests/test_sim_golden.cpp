// Golden-metrics pin: the optimized enforced-waits simulator (indexed
// scheduler, arrival fast path, batched gain sampling, ring-buffer queues)
// must reproduce the original heap-based reference implementation
// *bit-for-bit* on fixed seeds. The reference below is a frozen copy of the
// pre-optimization simulate_enforced_waits; if the production simulator ever
// reorders events, consumes the RNG stream differently, or changes how a
// metric is accumulated, these comparisons fail.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"

namespace ripple::sim {
namespace {

using RootId = std::uint32_t;

enum EventPriority : int {
  kPriorityFireEnd = 0,
  kPriorityArrival = 1,
  kPriorityFireStart = 2,
};

struct EventPayload {
  enum class Kind : std::uint8_t { kFireEnd, kArrival, kFireStart };
  Kind kind;
  NodeIndex node = 0;
};

/// Frozen copy of the original simulator (std::priority_queue-era event
/// queue, per-node std::deque, one virtual gain sample per item). Only
/// addition: it records events_processed so every TrialMetrics field can be
/// compared.
TrialMetrics reference_simulate(const sdf::PipelineSpec& pipeline,
                                const std::vector<Cycles>& firing_intervals,
                                arrivals::ArrivalProcess& arrival_process,
                                const EnforcedSimConfig& config) {
  const std::size_t n = pipeline.size();
  dist::Xoshiro256 rng(config.seed);
  const std::uint32_t v = pipeline.simd_width();

  TrialMetrics metrics;
  metrics.nodes.resize(n);
  metrics.vector_width = v;
  metrics.sharing_actors = n;
  metrics.arm_latency_histogram(config.deadline);

  std::vector<std::deque<RootId>> queues(n);
  std::vector<std::vector<RootId>> in_flight(n);

  std::vector<Cycles> root_arrival;
  root_arrival.reserve(config.input_count);
  std::vector<bool> root_missed(config.input_count, false);

  std::uint64_t live_items = 0;
  bool arrivals_done = false;

  EventQueue<EventPayload> events;

  events.push(arrival_process.next_interarrival(rng), kPriorityArrival,
              {EventPayload::Kind::kArrival, 0});
  for (NodeIndex i = 0; i < n; ++i) {
    const Cycles offset =
        config.initial_offsets.empty() ? 0.0 : config.initial_offsets[i];
    events.push(offset, kPriorityFireStart, {EventPayload::Kind::kFireStart, i});
  }

  std::uint64_t processed_events = 0;
  while (!events.empty() && processed_events < config.max_events) {
    const auto event = events.pop();
    ++processed_events;
    const Cycles now = event.time;

    switch (event.payload.kind) {
      case EventPayload::Kind::kArrival: {
        const RootId root = static_cast<RootId>(root_arrival.size());
        root_arrival.push_back(now);
        ++metrics.inputs_arrived;
        queues[0].push_back(root);
        ++live_items;
        metrics.nodes[0].max_queue_length =
            std::max<std::uint64_t>(metrics.nodes[0].max_queue_length,
                                    queues[0].size());
        if (root_arrival.size() < config.input_count) {
          events.push(now + arrival_process.next_interarrival(rng),
                      kPriorityArrival, {EventPayload::Kind::kArrival, 0});
        } else {
          arrivals_done = true;
        }
        break;
      }

      case EventPayload::Kind::kFireStart: {
        const NodeIndex i = event.payload.node;
        NodeMetrics& node = metrics.nodes[i];
        auto& queue = queues[i];
        const std::uint32_t consumed =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(queue.size(), v));

        if (consumed > 0 || config.charge_empty_firings) {
          ++node.firings;
          if (consumed == 0) ++node.empty_firings;
          node.active_time += pipeline.service_time(i);
        }

        if (consumed > 0) {
          node.items_consumed += consumed;
          auto& bundle = in_flight[i];
          const bool is_sink = (i + 1 == n);
          for (std::uint32_t k = 0; k < consumed; ++k) {
            const RootId root = queue.front();
            queue.pop_front();
            if (is_sink) {
              bundle.push_back(root);
            } else {
              const dist::OutputCount outputs =
                  pipeline.node(i).gain->sample(rng);
              node.items_produced += outputs;
              for (dist::OutputCount o = 0; o < outputs; ++o) {
                bundle.push_back(root);
              }
              live_items += outputs;
            }
          }
          if (!is_sink) live_items -= consumed;
          events.push(now + pipeline.service_time(i), kPriorityFireEnd,
                      {EventPayload::Kind::kFireEnd, i});
        }

        if (!(arrivals_done && live_items == 0)) {
          events.push(now + firing_intervals[i], kPriorityFireStart,
                      {EventPayload::Kind::kFireStart, i});
        }
        break;
      }

      case EventPayload::Kind::kFireEnd: {
        const NodeIndex i = event.payload.node;
        auto& bundle = in_flight[i];
        const bool is_sink = (i + 1 == n);
        if (is_sink) {
          for (const RootId root : bundle) {
            ++metrics.sink_outputs;
            const Cycles latency = now - root_arrival[root];
            metrics.record_latency(latency);
            if (config.deadline > 0.0 &&
                latency > config.deadline * (1.0 + 1e-12)) {
              if (!root_missed[root]) {
                root_missed[root] = true;
                ++metrics.inputs_missed;
              }
            }
            metrics.makespan = std::max(metrics.makespan, now);
          }
          live_items -= bundle.size();
        } else {
          auto& next_queue = queues[i + 1];
          for (const RootId root : bundle) next_queue.push_back(root);
          metrics.nodes[i + 1].max_queue_length =
              std::max<std::uint64_t>(metrics.nodes[i + 1].max_queue_length,
                                      next_queue.size());
        }
        bundle.clear();
        break;
      }
    }
  }

  metrics.events_processed = processed_events;
  metrics.inputs_on_time = metrics.inputs_arrived - metrics.inputs_missed;
  if (metrics.makespan <= 0.0 && !root_arrival.empty()) {
    metrics.makespan = root_arrival.back();
  }
  return metrics;
}

/// Exact, field-by-field comparison. Doubles are compared with EXPECT_EQ on
/// purpose: the optimized simulator accumulates every statistic in the same
/// order as the reference, so the results must be identical bits, not merely
/// close.
void expect_identical(const TrialMetrics& got, const TrialMetrics& want) {
  ASSERT_EQ(got.nodes.size(), want.nodes.size());
  for (std::size_t i = 0; i < want.nodes.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_EQ(got.nodes[i].firings, want.nodes[i].firings);
    EXPECT_EQ(got.nodes[i].empty_firings, want.nodes[i].empty_firings);
    EXPECT_EQ(got.nodes[i].items_consumed, want.nodes[i].items_consumed);
    EXPECT_EQ(got.nodes[i].items_produced, want.nodes[i].items_produced);
    EXPECT_EQ(got.nodes[i].active_time, want.nodes[i].active_time);
    EXPECT_EQ(got.nodes[i].max_queue_length, want.nodes[i].max_queue_length);
  }
  EXPECT_EQ(got.inputs_arrived, want.inputs_arrived);
  EXPECT_EQ(got.inputs_on_time, want.inputs_on_time);
  EXPECT_EQ(got.inputs_missed, want.inputs_missed);
  EXPECT_EQ(got.sink_outputs, want.sink_outputs);
  EXPECT_EQ(got.output_latency.count(), want.output_latency.count());
  EXPECT_EQ(got.output_latency.mean(), want.output_latency.mean());
  EXPECT_EQ(got.output_latency.variance(), want.output_latency.variance());
  EXPECT_EQ(got.output_latency.min(), want.output_latency.min());
  EXPECT_EQ(got.output_latency.max(), want.output_latency.max());
  ASSERT_EQ(got.latency_histogram.has_value(),
            want.latency_histogram.has_value());
  if (want.latency_histogram.has_value()) {
    ASSERT_EQ(got.latency_histogram->bin_count(),
              want.latency_histogram->bin_count());
    EXPECT_EQ(got.latency_histogram->total(), want.latency_histogram->total());
    for (std::size_t b = 0; b < want.latency_histogram->bin_count(); ++b) {
      EXPECT_EQ(got.latency_histogram->bin(b), want.latency_histogram->bin(b))
          << "histogram bin " << b;
    }
  }
  EXPECT_EQ(got.makespan, want.makespan);
  EXPECT_EQ(got.vector_width, want.vector_width);
  EXPECT_EQ(got.events_processed, want.events_processed);
  EXPECT_EQ(got.sharing_actors, want.sharing_actors);
}

std::vector<Cycles> solved_intervals(const sdf::PipelineSpec& pipeline,
                                     double tau0, double deadline) {
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  auto solved = strategy.solve(tau0, deadline);
  RIPPLE_REQUIRE(solved.ok(), "golden test probe point must be feasible");
  return solved.value().firing_intervals;
}

TEST(EnforcedGolden, CanonicalBlastFixedRate) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const auto intervals = solved_intervals(pipeline, 20.0, 1.85e5);
  for (std::uint64_t seed : {1u, 17u, 12345u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EnforcedSimConfig config;
    config.input_count = 4000;
    config.deadline = 1.85e5;
    config.seed = seed;
    arrivals::FixedRateArrivals ref_arrivals(20.0);
    const auto want = reference_simulate(pipeline, intervals, ref_arrivals,
                                         config);
    arrivals::FixedRateArrivals got_arrivals(20.0);
    const auto got = simulate_enforced_waits(pipeline, intervals, got_arrivals,
                                             config);
    expect_identical(got, want);
  }
}

TEST(EnforcedGolden, CanonicalBlastPoissonArrivals) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const auto intervals = solved_intervals(pipeline, 30.0, 2.5e5);
  for (std::uint64_t seed : {2u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EnforcedSimConfig config;
    config.input_count = 3000;
    config.deadline = 2.5e5;
    config.seed = seed;
    arrivals::PoissonArrivals ref_arrivals(30.0);
    const auto want = reference_simulate(pipeline, intervals, ref_arrivals,
                                         config);
    arrivals::PoissonArrivals got_arrivals(30.0);
    const auto got = simulate_enforced_waits(pipeline, intervals, got_arrivals,
                                             config);
    expect_identical(got, want);
  }
}

TEST(EnforcedGolden, PhaseOffsetsAndEmptyFiringCharging) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const auto intervals = solved_intervals(pipeline, 25.0, 2.0e5);
  EnforcedSimConfig config;
  config.input_count = 2000;
  config.deadline = 2.0e5;
  config.seed = 7;
  config.initial_offsets = aligned_phase_offsets(pipeline);
  config.charge_empty_firings = true;
  arrivals::FixedRateArrivals ref_arrivals(25.0);
  const auto want = reference_simulate(pipeline, intervals, ref_arrivals,
                                       config);
  arrivals::FixedRateArrivals got_arrivals(25.0);
  const auto got = simulate_enforced_waits(pipeline, intervals, got_arrivals,
                                           config);
  expect_identical(got, want);
}

/// Bursty (MMPP) arrivals produce same-timestamp pile-ups when the burst
/// state's gaps are tiny relative to service times — a stress test for the
/// tie-break ordering in the arrival fast path.
TEST(EnforcedGolden, BurstyArrivalsTieStress) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const auto intervals = solved_intervals(pipeline, 40.0, 3.0e5);
  EnforcedSimConfig config;
  config.input_count = 2000;
  config.deadline = 3.0e5;
  config.seed = 21;
  arrivals::BurstyArrivals::Config bursty;
  bursty.tau_quiet = 120.0;
  bursty.tau_burst = 2.0;
  bursty.mean_quiet_dwell = 2e4;
  bursty.mean_burst_dwell = 5e3;
  arrivals::BurstyArrivals ref_arrivals(bursty);
  const auto want = reference_simulate(pipeline, intervals, ref_arrivals,
                                       config);
  arrivals::BurstyArrivals got_arrivals(bursty);
  const auto got = simulate_enforced_waits(pipeline, intervals, got_arrivals,
                                           config);
  expect_identical(got, want);
}

}  // namespace
}  // namespace ripple::sim
