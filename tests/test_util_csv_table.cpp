#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace ripple::util {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({"1", "2"});
  csv.row({"3", "4"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, QuotesFieldsWithCommas) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"x,y", "plain"});
  EXPECT_EQ(out.str(), "\"x,y\",plain\n");
}

TEST(Csv, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"he said \"hi\""});
  EXPECT_EQ(out.str(), "\"he said \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"line1\nline2"});
  EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(Csv, NumericRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row_numeric({1.5, 2.0, 0.25}, 4);
  EXPECT_EQ(out.str(), "1.5,2,0.25\n");
}

TEST(Table, AlignsColumns) {
  TextTable table({"name", "x"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  // Header present, separator rule present, both rows present.
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_NE(text.find("alpha  1"), std::string::npos);
  EXPECT_NE(text.find("b      22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::logic_error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::logic_error);
}

TEST(Table, RowCount) {
  TextTable table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"x"});
  table.add_row({"y"});
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace ripple::util
