#include "blast/stages.hpp"

#include <gtest/gtest.h>

namespace ripple::blast {
namespace {

/// Build a pair where the subject's head is copied verbatim into the query,
/// guaranteeing strong hits, and the tail is independent noise.
struct Fixture {
  SequencePair pair;
  BlastStages::Config config;

  explicit Fixture(std::uint64_t seed = 1, double mutation = 0.0) {
    dist::Xoshiro256 rng(seed);
    pair.subject = random_sequence(4096, rng);
    pair.query = random_sequence(2048, rng);
    plant_homology(pair.subject, 0, pair.query, 100, 512, mutation, rng);
    config.k = 8;
  }
};

TEST(BlastStages, InputCountIsWindows) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  EXPECT_EQ(stages.input_count(), 4096u - 8u + 1u);
}

TEST(BlastStages, SeedMatchFindsPlantedHomology) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  StageCost cost;
  // Subject positions 0..504 were copied into the query: exact k-mer hits.
  EXPECT_TRUE(stages.seed_match(0, cost));
  EXPECT_TRUE(stages.seed_match(100, cost));
  EXPECT_GT(cost.ops, 0u);
}

TEST(BlastStages, SeedMatchBackgroundRateLow) {
  // Without homologies, an 8-mer against a 2 kb query hits rarely
  // (expected rate ~ 2048/65536 ~ 3%).
  dist::Xoshiro256 rng(9);
  SequencePair pair;
  pair.subject = random_sequence(20000, rng);
  pair.query = random_sequence(2048, rng);
  BlastStages::Config config;
  config.k = 8;
  const BlastStages stages(pair, config);
  int hits = 0;
  StageCost cost;
  for (std::uint32_t pos = 0; pos < 10000; ++pos) {
    hits += stages.seed_match(pos, cost);
  }
  EXPECT_LT(hits, 800);
  EXPECT_GT(hits, 50);
}

TEST(BlastStages, ExpandSeedRespectsCap) {
  // A query of all-As makes every A-run k-mer hit everywhere: expansion must
  // clip at u.
  SequencePair pair;
  pair.subject = Sequence(100, 0);  // all A
  pair.query = Sequence(500, 0);    // all A
  BlastStages::Config config;
  config.k = 4;
  config.max_hits_per_seed = 16;
  const BlastStages stages(pair, config);
  StageCost cost;
  const auto hits = stages.expand_seed(0, cost);
  EXPECT_EQ(hits.size(), 16u);
  for (const HitItem& hit : hits) EXPECT_EQ(hit.subject_pos, 0u);
}

TEST(BlastStages, ExpandSeedEmptyOnMiss) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  StageCost cost;
  // Find a window with no seed match, then expansion must be empty.
  for (std::uint32_t pos = 600; pos < 4000; ++pos) {
    StageCost probe_cost;
    if (!stages.seed_match(pos, probe_cost)) {
      EXPECT_TRUE(stages.expand_seed(pos, cost).empty());
      return;
    }
  }
  FAIL() << "no missing window found (degenerate fixture)";
}

TEST(BlastStages, UngappedExtensionPassesOnExactHomology) {
  Fixture f(2, /*mutation=*/0.0);
  const BlastStages stages(f.pair, f.config);
  StageCost cost;
  // Subject 200 corresponds to query 300 inside the 512-base exact copy.
  const HitItem hit{200, 300};
  const auto extended = stages.ungapped_extend(hit, cost);
  ASSERT_TRUE(extended.has_value());
  // Long exact extension: score far above the default threshold.
  EXPECT_GT(extended->ungapped_score, 100);
  EXPECT_GT(cost.ops, 50u);  // really walked the sequence
}

TEST(BlastStages, UngappedExtensionRejectsChanceSeed) {
  // A k-mer match between unrelated sequences should rarely extend: build a
  // fully synthetic chance hit by copying only k bases.
  dist::Xoshiro256 rng(11);
  SequencePair pair;
  pair.subject = random_sequence(1000, rng);
  pair.query = random_sequence(1000, rng);
  BlastStages::Config config;
  config.k = 8;
  for (std::size_t i = 0; i < config.k; ++i) pair.query[500 + i] = pair.subject[300 + i];
  const BlastStages stages(pair, config);
  StageCost cost;
  const auto extended = stages.ungapped_extend(HitItem{300, 500}, cost);
  EXPECT_FALSE(extended.has_value());
}

TEST(BlastStages, UngappedExtensionToleratesMutations) {
  Fixture f(3, /*mutation=*/0.05);
  const BlastStages stages(f.pair, f.config);
  // Locate a surviving seed inside the homologous block.
  StageCost cost;
  int passes = 0;
  int attempts = 0;
  for (std::uint32_t pos = 0; pos + 8 < 500; ++pos) {
    if (!stages.seed_match(pos, cost)) continue;
    const auto hits = stages.expand_seed(pos, cost);
    for (const auto& hit : hits) {
      ++attempts;
      passes += stages.ungapped_extend(hit, cost).has_value();
    }
  }
  ASSERT_GT(attempts, 0);
  EXPECT_GT(passes, attempts / 4);  // most true-homology hits survive
}

TEST(BlastStages, GappedExtensionScoresHomologyAboveNoise) {
  Fixture f(4, /*mutation=*/0.05);
  const BlastStages stages(f.pair, f.config);
  StageCost cost;
  const Alignment aligned =
      stages.gapped_extend(ExtendedHit{200, 300, 20}, cost);
  EXPECT_GT(aligned.score, 40);
  EXPECT_GT(cost.ops, 100u);  // DP cells actually evaluated

  // Noise region: alignment score stays near the seed score.
  const Alignment noise =
      stages.gapped_extend(ExtendedHit{3000, 1500, 20}, cost);
  EXPECT_LT(noise.score, aligned.score);
}

TEST(BlastStages, GappedExtensionNearSequenceEdges) {
  Fixture f(5);
  const BlastStages stages(f.pair, f.config);
  StageCost cost;
  // Must not crash or read out of bounds at the extreme corners.
  (void)stages.gapped_extend(ExtendedHit{0, 0, 10}, cost);
  (void)stages.gapped_extend(
      ExtendedHit{static_cast<std::uint32_t>(f.pair.subject.size() - 1),
                  static_cast<std::uint32_t>(f.pair.query.size() - 1), 10},
      cost);
  SUCCEED();
}

TEST(BlastStages, CostAccumulatesAcrossCalls) {
  Fixture f(6);
  const BlastStages stages(f.pair, f.config);
  StageCost cost;
  (void)stages.seed_match(0, cost);
  const std::uint64_t after_one = cost.ops;
  (void)stages.seed_match(1, cost);
  EXPECT_GT(cost.ops, after_one);
}

TEST(BlastStages, ConfigValidation) {
  Fixture f(7);
  BlastStages::Config bad = f.config;
  bad.match_score = 0;
  EXPECT_THROW(BlastStages(f.pair, bad), std::logic_error);
  bad = f.config;
  bad.mismatch_penalty = 1;
  EXPECT_THROW(BlastStages(f.pair, bad), std::logic_error);
  bad = f.config;
  bad.gap_penalty = 0;
  EXPECT_THROW(BlastStages(f.pair, bad), std::logic_error);
  bad = f.config;
  bad.max_hits_per_seed = 0;
  EXPECT_THROW(BlastStages(f.pair, bad), std::logic_error);
}

}  // namespace
}  // namespace ripple::blast
