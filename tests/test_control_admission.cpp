// AdmissionLedger: the global admission tier that clamps each shard's local
// admitted-session count against the aggregate load picture. Covers the
// single-shard identity contract (the determinism guarantee the shards=1
// golden tests rely on), the aggregate-feasibility clamp, and the pressure
// relief for queue-hot and latency-hot shards.
#include <gtest/gtest.h>

#include "control/admission.hpp"

namespace ripple::control {
namespace {

ShardLoad make_load(std::size_t open, double offered, double feasible,
                    std::size_t depth = 0, double latency = 0.0,
                    double deadline = 1000.0) {
  ShardLoad load;
  load.open_sessions = open;
  load.offered_rate = offered;
  load.feasible_rate = feasible;
  load.queue_depth = depth;
  load.worst_latency = latency;
  load.deadline = deadline;
  return load;
}

TEST(AdmissionLedgerTest, SingleShardIsIdentity) {
  AdmissionLedger ledger(1);
  // Publish a grossly overloaded picture: with one shard the local
  // controller already saw everything, so apportion must not touch the
  // local decision (bit-identical shards=1 contract).
  ledger.publish(0, make_load(10, /*offered=*/100.0, /*feasible=*/1.0,
                              /*depth=*/5000, /*latency=*/1e9));
  EXPECT_EQ(ledger.apportion(0, 7), 7u);
  EXPECT_EQ(ledger.apportion(0, 0), 0u);
  EXPECT_EQ(ledger.apportion(0, 10), 10u);
}

TEST(AdmissionLedgerTest, NoClampWhenAggregateFeasible) {
  AdmissionLedger ledger(2);
  ledger.publish(0, make_load(4, 1.0, 2.0));
  ledger.publish(1, make_load(4, 1.5, 2.0));
  // Aggregate offered 2.5 <= feasible 4.0: local decisions pass through.
  EXPECT_EQ(ledger.apportion(0, 4), 4u);
  EXPECT_EQ(ledger.apportion(1, 3), 3u);
}

TEST(AdmissionLedgerTest, AggregateOverloadCapsProportionally) {
  AdmissionLedger ledger(2);
  // Aggregate offered 4.0 > feasible 2.0: fraction = 0.5, so a shard with 8
  // open sessions is capped at floor(8 * 0.5) = 4 even when its own (lagging)
  // controller would still admit all 8.
  ledger.publish(0, make_load(8, 2.0, 1.0));
  ledger.publish(1, make_load(8, 2.0, 1.0));
  EXPECT_EQ(ledger.apportion(0, 8), 4u);
  // The clamp only ever lowers: a stricter local decision wins.
  EXPECT_EQ(ledger.apportion(1, 2), 2u);
}

TEST(AdmissionLedgerTest, QueueHotShardGivesUpOneMore) {
  // Four shards (with two, one shard's depth can never exceed twice the
  // mean — 2x mean IS the total): globally overloaded at fraction 0.5, and
  // shard 0's ingest depth (90) is over twice the per-shard mean (30), so
  // it sheds one extra session beyond the proportional cut.
  AdmissionLedger ledger(4);
  ledger.publish(0, make_load(8, 2.0, 1.0, /*depth=*/90));
  ledger.publish(1, make_load(8, 2.0, 1.0, /*depth=*/10));
  ledger.publish(2, make_load(8, 2.0, 1.0, /*depth=*/10));
  ledger.publish(3, make_load(8, 2.0, 1.0, /*depth=*/10));
  EXPECT_EQ(ledger.apportion(0, 8), 3u);  // 4 proportional - 1 relief
  EXPECT_EQ(ledger.apportion(1, 8), 4u);  // cool shard keeps its share
}

TEST(AdmissionLedgerTest, LatencyHotShardGivesUpOneMore) {
  AdmissionLedger ledger(2);
  ledger.publish(0, make_load(8, 2.0, 1.0, 0, /*latency=*/1500.0,
                              /*deadline=*/1000.0));
  ledger.publish(1, make_load(8, 2.0, 1.0, 0, /*latency=*/100.0,
                              /*deadline=*/1000.0));
  EXPECT_EQ(ledger.apportion(0, 8), 3u);
  EXPECT_EQ(ledger.apportion(1, 8), 4u);
}

TEST(AdmissionLedgerTest, ReliefNeverUnderflowsZero) {
  AdmissionLedger ledger(2);
  ledger.publish(0, make_load(1, 10.0, 0.1, /*depth=*/1000));
  ledger.publish(1, make_load(1, 10.0, 0.1, /*depth=*/0));
  // floor(1 * 0.01) = 0 admitted; pressure relief must not wrap.
  EXPECT_EQ(ledger.apportion(0, 1), 0u);
}

TEST(AdmissionLedgerTest, TotalsAggregateAcrossShards) {
  AdmissionLedger ledger(3);
  ledger.publish(0, make_load(2, 1.0, 2.0, 10, 50.0));
  ledger.publish(1, make_load(3, 1.5, 2.0, 20, 250.0));
  ledger.publish(2, make_load(5, 0.5, 2.0, 30, 150.0));
  const AdmissionLedger::Totals totals = ledger.totals();
  EXPECT_EQ(totals.open_sessions, 10u);
  EXPECT_DOUBLE_EQ(totals.offered_rate, 3.0);
  EXPECT_DOUBLE_EQ(totals.feasible_rate, 6.0);
  EXPECT_EQ(totals.queue_depth, 60u);
  EXPECT_DOUBLE_EQ(totals.worst_latency, 250.0);  // max, not sum

  const ShardLoad load = ledger.load(1);
  EXPECT_EQ(load.open_sessions, 3u);
  EXPECT_DOUBLE_EQ(load.offered_rate, 1.5);
  EXPECT_EQ(load.queue_depth, 20u);
}

}  // namespace
}  // namespace ripple::control
