#include "dist/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/rng.hpp"

namespace ripple::dist {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats left;
  RunningStats right;
  RunningStats all;
  Xoshiro256 rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 9
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 18.0);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(Quantile, ExactOnSortedSamples) {
  std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.25), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  std::vector<double> samples{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(samples, 0.75), 7.5);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW((void)quantile({}, 0.5), std::logic_error);
}

TEST(WilsonInterval, ZeroTrials) {
  const auto interval = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(interval.lower, 0.0);
  EXPECT_DOUBLE_EQ(interval.upper, 1.0);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const auto interval = wilson_interval(95, 100);
  EXPECT_DOUBLE_EQ(interval.point, 0.95);
  EXPECT_LT(interval.lower, 0.95);
  EXPECT_GT(interval.upper, 0.95);
  EXPECT_GT(interval.lower, 0.85);  // known value ~0.887
  EXPECT_LT(interval.upper, 1.0);
}

TEST(WilsonInterval, AllSuccessesUpperIsOne) {
  const auto interval = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(interval.upper, 1.0);
  EXPECT_GT(interval.lower, 0.95);
}

TEST(WilsonInterval, ShrinksWithMoreTrials) {
  const auto small = wilson_interval(9, 10);
  const auto large = wilson_interval(900, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

}  // namespace
}  // namespace ripple::dist
