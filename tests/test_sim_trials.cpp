#include "sim/trial_runner.hpp"

#include <gtest/gtest.h>

#include "arrivals/arrival_process.hpp"
#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"

namespace ripple::sim {
namespace {

/// A tiny synthetic trial for exercising the aggregator without full sims.
TrialMetrics synthetic_trial(std::uint64_t index) {
  TrialMetrics metrics;
  metrics.nodes.resize(2);
  metrics.vector_width = 4;
  metrics.inputs_arrived = 100;
  metrics.inputs_missed = (index % 3 == 0) ? 2 : 0;  // every third trial misses
  metrics.inputs_on_time = metrics.inputs_arrived - metrics.inputs_missed;
  metrics.nodes[0].active_time = 50.0;
  metrics.nodes[0].max_queue_length = 10 + index;
  metrics.nodes[1].active_time = 30.0;
  metrics.makespan = 100.0;
  metrics.output_latency.add(static_cast<double>(10 + index));
  metrics.sink_outputs = 1;
  return metrics;
}

TEST(TrialRunner, RequiresTrialFunction) {
  EXPECT_THROW((void)run_trials(TrialFn{}, 3), std::logic_error);
}

TEST(TrialRunner, AggregatesMissFreeFraction) {
  const TrialSummary summary = run_trials(synthetic_trial, 9);
  EXPECT_EQ(summary.trials, 9u);
  // Indices 0,3,6 miss: 6 of 9 miss-free.
  EXPECT_EQ(summary.miss_free_trials, 6u);
  EXPECT_NEAR(summary.miss_free_fraction(), 6.0 / 9.0, 1e-12);
}

TEST(TrialRunner, AggregatesActiveFraction) {
  const TrialSummary summary = run_trials(synthetic_trial, 4);
  // Each synthetic trial: (50+30)/(2*100) = 0.4.
  EXPECT_NEAR(summary.active_fraction.mean(), 0.4, 1e-12);
  EXPECT_NEAR(summary.active_fraction.stddev(), 0.0, 1e-12);
}

TEST(TrialRunner, TracksMaxQueueAcrossTrials) {
  const TrialSummary summary = run_trials(synthetic_trial, 5);
  ASSERT_EQ(summary.max_queue_lengths.size(), 2u);
  EXPECT_EQ(summary.max_queue_lengths[0], 14u);  // 10 + 4
  EXPECT_EQ(summary.max_queue_lengths[1], 0u);
}

TEST(TrialRunner, LatencyStatsPerTrial) {
  const TrialSummary summary = run_trials(synthetic_trial, 3);
  // Latencies 10, 11, 12 across trials.
  EXPECT_NEAR(summary.latency_mean.mean(), 11.0, 1e-12);
  EXPECT_NEAR(summary.latency_max.max(), 12.0, 1e-12);
}

TEST(TrialRunner, WilsonIntervalExposed) {
  const TrialSummary summary = run_trials(synthetic_trial, 9);
  const auto interval = summary.miss_free_interval();
  EXPECT_LT(interval.lower, summary.miss_free_fraction());
  EXPECT_GT(interval.upper, summary.miss_free_fraction());
}

TEST(TrialRunner, ParallelMatchesSerial) {
  const auto pipeline = blast::canonical_blast_pipeline();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  auto solved = strategy.solve(20.0, 1.85e5);
  ASSERT_TRUE(solved.ok());
  const auto intervals = solved.value().firing_intervals;

  auto trial_fn = [&](std::uint64_t trial) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    EnforcedSimConfig config;
    config.input_count = 2000;
    config.deadline = 1.85e5;
    config.seed = dist::derive_seed({12345, trial});
    return simulate_enforced_waits(pipeline, intervals, arrival_process, config);
  };

  const TrialSummary serial = run_trials(trial_fn, 8);
  util::ThreadPool pool(4);
  const TrialSummary parallel = run_trials(trial_fn, 8, &pool);

  EXPECT_EQ(serial.miss_free_trials, parallel.miss_free_trials);
  EXPECT_DOUBLE_EQ(serial.active_fraction.mean(),
                   parallel.active_fraction.mean());
  EXPECT_DOUBLE_EQ(serial.latency_mean.mean(), parallel.latency_mean.mean());
  EXPECT_EQ(serial.max_queue_lengths, parallel.max_queue_lengths);
}

/// Chunked claiming must be invisible in the results: trial seeds derive from
/// the trial index and aggregation runs serially in index order, so every
/// grain (and serial execution) produces an identical TrialSummary.
TEST(TrialRunner, ChunkGrainNeverChangesResults) {
  const auto pipeline = blast::canonical_blast_pipeline();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  auto solved = strategy.solve(20.0, 1.85e5);
  ASSERT_TRUE(solved.ok());
  const auto intervals = solved.value().firing_intervals;

  auto trial_fn = [&](std::uint64_t trial) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    EnforcedSimConfig config;
    config.input_count = 1000;
    config.deadline = 1.85e5;
    config.seed = dist::derive_seed({777, trial});
    return simulate_enforced_waits(pipeline, intervals, arrival_process, config);
  };

  const TrialSummary serial = run_trials(trial_fn, 11);
  util::ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{16}}) {
    SCOPED_TRACE("grain " + std::to_string(grain));
    const TrialSummary chunked = run_trials(trial_fn, 11, &pool, grain);
    EXPECT_EQ(serial.trials, chunked.trials);
    EXPECT_EQ(serial.miss_free_trials, chunked.miss_free_trials);
    EXPECT_EQ(serial.max_queue_lengths, chunked.max_queue_lengths);
    // Aggregation order is fixed (trial index), so the running stats must be
    // bitwise identical, not merely close.
    EXPECT_EQ(serial.active_fraction.mean(), chunked.active_fraction.mean());
    EXPECT_EQ(serial.active_fraction.variance(),
              chunked.active_fraction.variance());
    EXPECT_EQ(serial.miss_fraction.mean(), chunked.miss_fraction.mean());
    EXPECT_EQ(serial.latency_mean.mean(), chunked.latency_mean.mean());
    EXPECT_EQ(serial.latency_max.max(), chunked.latency_max.max());
    EXPECT_EQ(serial.latency_p99.mean(), chunked.latency_p99.mean());
    EXPECT_EQ(serial.occupancy.mean(), chunked.occupancy.mean());
  }
}

/// The buffer-reusing in-place API must be a pure optimization: for the same
/// trial bodies it produces a TrialSummary bitwise identical to the
/// value-returning API, serial or pooled, at any grain — the golden
/// "no change in metrics" guarantee for the scratch-reuse path.
TEST(TrialRunner, InPlaceApiMatchesValueApiBitwise) {
  const auto pipeline = blast::canonical_blast_pipeline();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  auto solved = strategy.solve(20.0, 1.85e5);
  ASSERT_TRUE(solved.ok());
  const auto intervals = solved.value().firing_intervals;

  const auto configure = [&](std::uint64_t trial) {
    EnforcedSimConfig config;
    config.input_count = 1500;
    config.deadline = 1.85e5;  // arms the histogram, exercising its reuse
    config.seed = dist::derive_seed({4242, trial});
    return config;
  };
  auto trial_fn = [&](std::uint64_t trial) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    return simulate_enforced_waits(pipeline, intervals, arrival_process,
                                   configure(trial));
  };
  auto trial_body = [&](std::uint64_t trial, TrialMetrics& out) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    simulate_enforced_waits_into(pipeline, intervals, arrival_process,
                                 configure(trial), out);
  };

  const TrialSummary value = run_trials(trial_fn, 9);
  util::ThreadPool pool(4);
  for (const std::size_t grain :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
    SCOPED_TRACE("grain " + std::to_string(grain));
    // grain 0 marks the serial (no pool) run.
    const TrialSummary in_place =
        grain == 0 ? run_trials_into(trial_body, 9)
                   : run_trials_into(trial_body, 9, &pool, grain);
    EXPECT_EQ(value.trials, in_place.trials);
    EXPECT_EQ(value.miss_free_trials, in_place.miss_free_trials);
    EXPECT_EQ(value.max_queue_lengths, in_place.max_queue_lengths);
    EXPECT_EQ(value.active_fraction.mean(), in_place.active_fraction.mean());
    EXPECT_EQ(value.active_fraction.variance(),
              in_place.active_fraction.variance());
    EXPECT_EQ(value.miss_fraction.mean(), in_place.miss_fraction.mean());
    EXPECT_EQ(value.latency_mean.mean(), in_place.latency_mean.mean());
    EXPECT_EQ(value.latency_max.max(), in_place.latency_max.max());
    EXPECT_EQ(value.latency_p99.count(), in_place.latency_p99.count());
    EXPECT_EQ(value.latency_p99.mean(), in_place.latency_p99.mean());
    EXPECT_EQ(value.occupancy.mean(), in_place.occupancy.mean());
  }
}

/// A dirty scratch from a previous (different-shaped) trial must not leak
/// into the next: the _into simulators reset counters, node vectors and
/// histogram bins in place.
TEST(TrialRunner, ScratchReuseLeavesNoResidue) {
  const auto pipeline = blast::canonical_blast_pipeline();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  auto solved = strategy.solve(20.0, 1.85e5);
  ASSERT_TRUE(solved.ok());
  const auto intervals = solved.value().firing_intervals;

  arrivals::FixedRateArrivals arrivals_a(20.0);
  EnforcedSimConfig config;
  config.input_count = 1200;
  config.deadline = 1.85e5;
  config.seed = dist::derive_seed({7, 0});
  const TrialMetrics fresh =
      simulate_enforced_waits(pipeline, intervals, arrivals_a, config);

  // Pre-soil the scratch with a different trial (different seed => different
  // counters and histogram contents), then rerun the reference trial into it.
  TrialMetrics scratch;
  arrivals::FixedRateArrivals arrivals_b(20.0);
  EnforcedSimConfig other = config;
  other.seed = dist::derive_seed({7, 1});
  simulate_enforced_waits_into(pipeline, intervals, arrivals_b, other, scratch);
  arrivals::FixedRateArrivals arrivals_c(20.0);
  simulate_enforced_waits_into(pipeline, intervals, arrivals_c, config,
                               scratch);

  EXPECT_EQ(fresh.inputs_arrived, scratch.inputs_arrived);
  EXPECT_EQ(fresh.inputs_missed, scratch.inputs_missed);
  EXPECT_EQ(fresh.inputs_on_time, scratch.inputs_on_time);
  EXPECT_EQ(fresh.sink_outputs, scratch.sink_outputs);
  EXPECT_EQ(fresh.events_processed, scratch.events_processed);
  EXPECT_EQ(fresh.makespan, scratch.makespan);
  EXPECT_EQ(fresh.output_latency.count(), scratch.output_latency.count());
  EXPECT_EQ(fresh.output_latency.mean(), scratch.output_latency.mean());
  EXPECT_EQ(fresh.output_latency.max(), scratch.output_latency.max());
  ASSERT_EQ(fresh.nodes.size(), scratch.nodes.size());
  for (std::size_t i = 0; i < fresh.nodes.size(); ++i) {
    EXPECT_EQ(fresh.nodes[i].firings, scratch.nodes[i].firings) << i;
    EXPECT_EQ(fresh.nodes[i].items_consumed, scratch.nodes[i].items_consumed)
        << i;
    EXPECT_EQ(fresh.nodes[i].max_queue_length,
              scratch.nodes[i].max_queue_length)
        << i;
  }
  ASSERT_TRUE(fresh.latency_histogram.has_value());
  ASSERT_TRUE(scratch.latency_histogram.has_value());
  EXPECT_EQ(fresh.latency_histogram->total(),
            scratch.latency_histogram->total());
  for (std::size_t b = 0; b < fresh.latency_histogram->bin_count(); ++b) {
    ASSERT_EQ(fresh.latency_histogram->bin(b), scratch.latency_histogram->bin(b))
        << "bin " << b;
  }
}

TEST(TrialRunner, LatencyP99Aggregated) {
  const auto pipeline = blast::canonical_blast_pipeline();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  auto solved = strategy.solve(20.0, 1.85e5);
  ASSERT_TRUE(solved.ok());
  auto trial_fn = [&](std::uint64_t trial) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    EnforcedSimConfig config;
    config.input_count = 5000;
    config.deadline = 1.85e5;  // arms the histogram
    config.seed = dist::derive_seed({0x99, trial});
    return simulate_enforced_waits(pipeline, solved.value().firing_intervals,
                                   arrival_process, config);
  };
  const TrialSummary summary = run_trials(trial_fn, 5);
  ASSERT_EQ(summary.latency_p99.count(), 5u);
  // p99 sits between the mean and the max.
  EXPECT_GE(summary.latency_p99.mean(), summary.latency_mean.mean());
  EXPECT_LE(summary.latency_p99.mean(), summary.latency_max.max() * 1.02);
}

TEST(TrialRunner, NoHistogramWithoutDeadline) {
  const auto pipeline = blast::canonical_blast_pipeline();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  auto solved = strategy.solve(20.0, 1.85e5);
  ASSERT_TRUE(solved.ok());
  arrivals::FixedRateArrivals arrival_process(20.0);
  EnforcedSimConfig config;
  config.input_count = 2000;
  config.deadline = 0.0;  // histogram unarmed
  const auto metrics = simulate_enforced_waits(
      pipeline, solved.value().firing_intervals, arrival_process, config);
  EXPECT_FALSE(metrics.latency_histogram.has_value());
  // Quantile falls back to the running max.
  EXPECT_DOUBLE_EQ(metrics.latency_quantile(0.99), metrics.output_latency.max());
}

TEST(TrialRunner, ZeroTrials) {
  const TrialSummary summary = run_trials(synthetic_trial, 0);
  EXPECT_EQ(summary.trials, 0u);
  EXPECT_DOUBLE_EQ(summary.miss_free_fraction(), 0.0);
}

}  // namespace
}  // namespace ripple::sim
