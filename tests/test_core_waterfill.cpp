#include "core/waterfill.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "dist/rng.hpp"
#include "opt/barrier.hpp"
#include "sdf/analysis.hpp"

namespace ripple::core {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

TEST(Waterfill, InfeasibleCases) {
  const auto pipeline = blast_pipeline();
  const auto b = blast::paper_calibrated_b();
  // Rate cap below t_0's chain-free lower bound (t_0 = 287, v*tau0 = 128).
  auto rate = waterfill_solve(pipeline, b, 1.0, 1e6);
  ASSERT_FALSE(rate.ok());
  EXPECT_EQ(rate.error().code, "infeasible");
  // Deadline below even sum b_i t_i.
  auto deadline = waterfill_solve(pipeline, b, 50.0, 1000.0);
  ASSERT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.error().code, "infeasible");
}

TEST(Waterfill, BudgetBindsExactly) {
  const auto pipeline = blast_pipeline();
  const auto b = blast::paper_calibrated_b();
  auto solved = waterfill_solve(pipeline, b, 100.0, 3.5e5);
  ASSERT_TRUE(solved.ok());
  double budget = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    budget += b[i] * solved.value().firing_intervals[i];
  }
  EXPECT_NEAR(budget, 3.5e5, 1e-4);
  EXPECT_GT(solved.value().lambda, 0.0);
}

TEST(Waterfill, UnclampedComponentsFollowSqrtLaw) {
  // Interior components satisfy x_i = sqrt(t_i / (lambda * b_i)).
  const auto pipeline = blast_pipeline();
  const auto b = blast::paper_calibrated_b();
  auto solved = waterfill_solve(pipeline, b, 100.0, 3.5e5);
  ASSERT_TRUE(solved.ok());
  const auto& x = solved.value().firing_intervals;
  const double lambda = solved.value().lambda;
  const double rate_cap = 128.0 * 100.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const bool at_lower = std::fabs(x[i] - pipeline.service_time(i)) < 1e-6;
    const bool at_upper = (i == 0) && std::fabs(x[i] - rate_cap) < 1e-6;
    if (!at_lower && !at_upper) {
      EXPECT_NEAR(x[i], std::sqrt(pipeline.service_time(i) / (lambda * b[i])),
                  1e-6 * x[i])
          << i;
    }
  }
}

TEST(Waterfill, MatchesHandComputedOptimum) {
  // The DESIGN.md hand computation: tau0 = 100, D = 3.5e5 gives an active
  // fraction near 0.049 with x_0 clamped at the 12800 rate cap.
  const auto pipeline = blast_pipeline();
  auto solved = waterfill_solve(pipeline, blast::paper_calibrated_b(), 100.0,
                                3.5e5);
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(solved.value().chain_feasible);
  EXPECT_NEAR(solved.value().firing_intervals[0], 12800.0, 1.0);
  EXPECT_NEAR(solved.value().active_fraction, 0.049, 0.002);
}

TEST(Waterfill, AgreesWithBarrierWhenChainInactive) {
  const auto pipeline = blast_pipeline();
  const auto b = blast::paper_calibrated_b();
  const EnforcedWaitsStrategy strategy(pipeline, EnforcedWaitsConfig{b});
  for (double tau0 : {30.0, 50.0, 100.0}) {
    for (double deadline : {5e4, 1.2e5, 3.5e5}) {
      auto filled = waterfill_solve(pipeline, b, tau0, deadline);
      ASSERT_TRUE(filled.ok()) << tau0 << " " << deadline;
      if (!filled.value().chain_feasible) continue;
      // Compare against a direct barrier solve of the full problem.
      const auto problem = strategy.build_problem(tau0, deadline);
      const auto start = strategy.interior_start(tau0, deadline);
      ASSERT_FALSE(start.empty());
      auto barrier = opt::barrier_minimize(problem, start);
      ASSERT_TRUE(barrier.ok()) << tau0 << " " << deadline;
      EXPECT_NEAR(filled.value().active_fraction, barrier.value().objective,
                  1e-5)
          << tau0 << " " << deadline;
    }
  }
}

TEST(Waterfill, DetectsChainActiveRegion) {
  // Small tau0 forces x_0 to the rate cap and the chain constraint on x_1
  // becomes active: the relaxed optimum must self-report chain violation.
  const auto pipeline = blast_pipeline();
  auto solved = waterfill_solve(pipeline, blast::paper_calibrated_b(), 5.0,
                                3.5e5);
  ASSERT_TRUE(solved.ok());
  EXPECT_FALSE(solved.value().chain_feasible);
}

TEST(Waterfill, SingleNodeSlackBudget) {
  auto spec = sdf::PipelineBuilder("solo")
                  .simd_width(4)
                  .add_node("only", 10.0, dist::make_deterministic(1))
                  .build();
  const auto pipeline = std::move(spec).take();
  // Budget is slack: D = 1000 but the rate cap limits x to 4 * 20 = 80.
  auto solved = waterfill_solve(pipeline, {1.0}, 20.0, 1000.0);
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.value().firing_intervals[0], 80.0, 1e-9);
  EXPECT_DOUBLE_EQ(solved.value().lambda, 0.0);
}

TEST(WaterfillChained, AllInactiveReducesToPlainWaterfillBitExactly) {
  // With an empty active set every block is a singleton with ratio 1.0, and
  // multiplying/dividing by 1.0 is exact in IEEE arithmetic — so the chained
  // solver must reproduce the plain one bit for bit, not merely closely.
  const auto pipeline = blast_pipeline();
  const auto b = blast::paper_calibrated_b();
  for (double tau0 : {30.0, 100.0}) {
    for (double deadline : {5e4, 3.5e5}) {
      auto plain = waterfill_solve(pipeline, b, tau0, deadline);
      auto chained = waterfill_solve_chained(
          pipeline, b, tau0, deadline, std::vector<std::uint8_t>(4, 0));
      ASSERT_EQ(plain.ok(), chained.ok());
      if (!plain.ok()) continue;
      EXPECT_EQ(plain.value().lambda, chained.value().lambda);
      EXPECT_EQ(plain.value().active_fraction, chained.value().active_fraction);
      for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(plain.value().firing_intervals[i],
                  chained.value().firing_intervals[i]);
      }
    }
  }
}

TEST(WaterfillChained, ActiveSetReproducesTheFullSolverExactly) {
  // In the chain-active region, solving the chained system on the active set
  // detected from the full solver's optimum is exactly the canonical polish
  // that solve() itself performs — the intervals must agree bit for bit.
  const auto pipeline = blast_pipeline();
  const auto b = blast::paper_calibrated_b();
  const EnforcedWaitsStrategy strategy(pipeline, EnforcedWaitsConfig{b});
  auto full = strategy.solve(5.0, 3.5e5);
  ASSERT_TRUE(full.ok());
  const auto active = strategy.detect_active_chain(full.value().firing_intervals);
  ASSERT_TRUE(std::any_of(active.begin(), active.end(),
                          [](std::uint8_t a) { return a != 0; }));
  auto chained = waterfill_solve_chained(pipeline, b, 5.0, 3.5e5, active);
  ASSERT_TRUE(chained.ok());
  EXPECT_TRUE(chained.value().chain_feasible);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(full.value().firing_intervals[i],
              chained.value().firing_intervals[i]);
  }
}

TEST(WaterfillChained, LambdaZeroWithMergedBlock) {
  // Two unit-gain nodes chained into one block whose representative clamps
  // at the rate cap with budget to spare: the degenerate lambda = 0 branch,
  // exercised through the block machinery rather than a singleton.
  auto spec = sdf::PipelineBuilder("pair")
                  .simd_width(4)
                  .add_node("a", 10.0, dist::make_deterministic(1))
                  .add_node("b", 10.0, dist::make_deterministic(1))
                  .build();
  ASSERT_TRUE(spec.ok());
  const auto pipeline = std::move(spec).take();
  auto solved = waterfill_solve_chained(pipeline, {1.0, 1.0}, 5.0, 1000.0,
                                        {0, 1});
  ASSERT_TRUE(solved.ok());
  EXPECT_DOUBLE_EQ(solved.value().lambda, 0.0);
  // Rate cap v * tau0 = 20 binds the merged block: x_0 = x_1 = 20.
  EXPECT_NEAR(solved.value().firing_intervals[0], 20.0, 1e-9);
  EXPECT_NEAR(solved.value().firing_intervals[1], 20.0, 1e-9);
}

/// Property: across random pipelines, whenever the water-filled point is
/// chain-feasible it matches the strategy's solve() (which cross-checks the
/// barrier path), and it never beats it (it solves a relaxation, so equal
/// objective implies the relaxation was tight).
class WaterfillRandom : public ::testing::TestWithParam<int> {};

TEST_P(WaterfillRandom, ConsistentWithFullSolver) {
  dist::Xoshiro256 rng(1000 + GetParam());
  sdf::PipelineBuilder builder("random");
  builder.simd_width(64);
  const std::size_t n = 2 + rng.uniform_below(4);
  std::vector<double> b;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 50.0 + rng.uniform01() * 2000.0;
    const double gain = 0.05 + rng.uniform01() * 1.5;
    builder.add_node("n" + std::to_string(i), t,
                     i + 1 == n ? dist::make_deterministic(1)
                                : dist::make_censored_poisson(gain, 16));
    b.push_back(1.0 + rng.uniform_below(6));
  }
  auto spec = builder.build();
  ASSERT_TRUE(spec.ok());
  const auto pipeline = std::move(spec).take();
  const EnforcedWaitsStrategy strategy(pipeline, EnforcedWaitsConfig{b});

  const double tau0 = 20.0 + rng.uniform01() * 80.0;
  const double deadline =
      sdf::minimal_deadline_budget(pipeline, b) * (1.5 + rng.uniform01() * 4.0);
  if (!strategy.is_feasible(tau0, deadline)) GTEST_SKIP();

  auto filled = waterfill_solve(pipeline, b, tau0, deadline);
  ASSERT_TRUE(filled.ok());
  auto full = strategy.solve(tau0, deadline);
  ASSERT_TRUE(full.ok());
  if (filled.value().chain_feasible) {
    EXPECT_NEAR(filled.value().active_fraction,
                full.value().predicted_active_fraction, 1e-6);
  } else {
    // Relaxation bound: the chain-free optimum can only be better or equal.
    EXPECT_LE(filled.value().active_fraction,
              full.value().predicted_active_fraction + 1e-9);
  }
  EXPECT_TRUE(full.value().kkt.satisfied(1e-3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterfillRandom, ::testing::Range(0, 25));

}  // namespace
}  // namespace ripple::core
