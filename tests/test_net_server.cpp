// Ingest server loopback end-to-end: frames in over TCP, items through the
// sharded MPSC ingest path, backpressure/shed surfaced back as frames, and
// protocol errors closing the connection (with the sessions it owned).
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "dist/gain.hpp"
#include "net/frame.hpp"
#include "sdf/pipeline.hpp"
#include "service/service.hpp"

namespace ripple::net {
namespace {

sdf::PipelineSpec make_spec() {
  auto spec = sdf::PipelineBuilder("net")
                  .simd_width(4)
                  .add_node("expand", 8.0, dist::make_deterministic(2))
                  .add_node("filter", 6.0, dist::make_deterministic(1))
                  .add_node("sink", 10.0, nullptr)
                  .build();
  EXPECT_TRUE(spec.ok());
  return spec.value();
}

service::ServiceConfig base_config() {
  service::ServiceConfig config;
  config.deadline = 600.0;
  config.initial_tau0 = 20.0;
  // Huge virtual gaps per wall microsecond keep the estimator far from the
  // feasibility floor: no shedding, deterministic acceptance.
  config.cycles_per_us = 1e6;
  return config;
}

void wait_until(const std::function<bool()>& done) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (!done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(NetServer, LoopbackItemsFlowThroughTheService) {
  const sdf::PipelineSpec spec = make_spec();
  service::PipelineService service(spec, service::synthetic_stages(spec),
                                   base_config());
  service.start();
  IngestServer server(service, ServerConfig{});
  server.start();
  ASSERT_GT(server.port(), 0);

  IngestClient client("127.0.0.1", server.port());
  const std::uint64_t session = client.open_session(/*wire_id=*/1);
  EXPECT_GT(session, 0u);

  std::vector<std::uint64_t> items(64);
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = i;
  for (int batch = 0; batch < 10; ++batch) {
    client.send_items(1, items.data(), items.size());
  }
  client.close_session(1);
  client.finish();  // blocks until every batch has been answered or EOF

  wait_until([&] { return service.stats().accepted >= 640u; });
  server.stop();
  service.stop();

  const service::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted + stats.rejected_backpressure + stats.shed, 640u);
  EXPECT_EQ(stats.executed_items, stats.accepted);
  EXPECT_EQ(stats.accepted,
            640u - client.backpressure_items() - client.shed_items());
  EXPECT_EQ(stats.open_sessions, 0u);

  const ServerStats sstats = server.stats();
  EXPECT_EQ(sstats.connections_accepted, 1u);
  EXPECT_EQ(sstats.connections_closed, 1u);
  EXPECT_EQ(sstats.frames_in, 12u);  // open + 10 batches + close
  EXPECT_EQ(sstats.items_in, stats.accepted);
  EXPECT_EQ(sstats.protocol_errors, 0u);
}

TEST(NetServer, TwoClientsInterleave) {
  const sdf::PipelineSpec spec = make_spec();
  service::PipelineService service(spec, service::synthetic_stages(spec),
                                   base_config());
  service.start();
  IngestServer server(service, ServerConfig{});
  server.start();

  IngestClient first("127.0.0.1", server.port());
  IngestClient second("127.0.0.1", server.port());
  first.open_session(7);
  second.open_session(7);  // wire ids are connection-scoped: no clash

  std::vector<std::uint64_t> items(32, 5);
  first.send_items(7, items.data(), items.size());
  second.send_items(7, items.data(), items.size());
  first.close_session(7);
  second.close_session(7);
  first.finish();
  second.finish();

  wait_until([&] {
    const service::ServiceStats s = service.stats();
    return s.accepted + s.rejected_backpressure + s.shed >= 64u &&
           s.open_sessions == 0u;
  });
  server.stop();
  service.stop();
  EXPECT_EQ(server.stats().connections_accepted, 2u);
}

TEST(NetServer, DroppedConnectionClosesItsSessions) {
  const sdf::PipelineSpec spec = make_spec();
  service::PipelineService service(spec, service::synthetic_stages(spec),
                                   base_config());
  service.start();
  IngestServer server(service, ServerConfig{});
  server.start();

  {
    IngestClient client("127.0.0.1", server.port());
    client.open_session(1);
    client.open_session(2);
    wait_until([&] { return service.stats().open_sessions == 2u; });
  }  // destructor closes the socket without kCloseSession frames

  wait_until([&] { return service.stats().open_sessions == 0u; });
  server.stop();
  service.stop();
}

TEST(NetServer, MalformedFrameDropsTheConnection) {
  const sdf::PipelineSpec spec = make_spec();
  service::PipelineService service(spec, service::synthetic_stages(spec),
                                   base_config());
  service.start();
  IngestServer server(service, ServerConfig{});
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "this is not a ripple frame at all, not even close";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), 0), 0);

  // The server must close on the protocol error: read() sees EOF.
  char buf[64];
  ssize_t n;
  do {
    n = ::recv(fd, buf, sizeof(buf), 0);
  } while (n > 0 || (n < 0 && errno == EINTR));
  EXPECT_EQ(n, 0);
  ::close(fd);

  wait_until([&] { return server.stats().protocol_errors >= 1u; });
  server.stop();
  service.stop();
  EXPECT_EQ(service.stats().accepted, 0u);
}

TEST(NetServer, ItemBatchOnUnknownSessionIsAProtocolError) {
  const sdf::PipelineSpec spec = make_spec();
  service::PipelineService service(spec, service::synthetic_stages(spec),
                                   base_config());
  service.start();
  IngestServer server(service, ServerConfig{});
  server.start();

  IngestClient client("127.0.0.1", server.port());
  const std::uint64_t item = 1;
  client.send_items(/*wire_id=*/42, &item, 1);  // never opened
  // Server drops the connection; the blocking drain sees EOF.
  client.finish();
  wait_until([&] { return server.stats().protocol_errors >= 1u; });
  server.stop();
  service.stop();
}

}  // namespace
}  // namespace ripple::net
