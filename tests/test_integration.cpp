// End-to-end integration tests: the full path the paper's evaluation takes —
// canonical pipeline -> optimization -> simulation -> paper-level claims.
#include <gtest/gtest.h>

#include "arrivals/arrival_process.hpp"
#include "blast/canonical.hpp"
#include "blast/measure.hpp"
#include "calib/calibrate.hpp"
#include "core/sweep.hpp"
#include "sdf/analysis.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/monolithic_sim.hpp"
#include "sim/trial_runner.hpp"

namespace ripple {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

core::EnforcedWaitsConfig paper_config() {
  return core::EnforcedWaitsConfig{blast::paper_calibrated_b()};
}

TEST(Integration, Table1ConstantsMatchPaper) {
  const auto pipeline = blast_pipeline();
  ASSERT_EQ(pipeline.size(), 4u);
  EXPECT_EQ(pipeline.simd_width(), 128u);
  EXPECT_DOUBLE_EQ(pipeline.service_time(0), 287.0);
  EXPECT_DOUBLE_EQ(pipeline.service_time(1), 955.0);
  EXPECT_DOUBLE_EQ(pipeline.service_time(2), 402.0);
  EXPECT_DOUBLE_EQ(pipeline.service_time(3), 2753.0);
  EXPECT_DOUBLE_EQ(pipeline.mean_gain(0), 0.379);
  EXPECT_NEAR(pipeline.mean_gain(1), 1.92, 1e-9);
  EXPECT_DOUBLE_EQ(pipeline.mean_gain(2), 0.0332);
  EXPECT_EQ(pipeline.node(1).gain->max_outputs(), 16u);
}

TEST(Integration, PredictedVsSimulatedActiveFractionEnforced) {
  // Paper Section 6.2: "the active fractions measured in the simulator
  // closely matched those predicted by the optimizer".
  const auto pipeline = blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(pipeline, paper_config());
  for (double tau0 : {5.0, 20.0, 80.0}) {
    for (double deadline : {6e4, 1.85e5, 3.5e5}) {
      auto solved = strategy.solve(tau0, deadline);
      if (!solved.ok()) continue;
      arrivals::FixedRateArrivals arrival_process(tau0);
      sim::EnforcedSimConfig config;
      config.input_count = 20000;
      config.deadline = deadline;
      config.seed = dist::derive_seed({static_cast<std::uint64_t>(tau0 * 100),
                                       static_cast<std::uint64_t>(deadline)});
      const auto metrics = sim::simulate_enforced_waits(
          pipeline, solved.value().firing_intervals, arrival_process, config);
      const double predicted = solved.value().predicted_active_fraction;
      EXPECT_NEAR(metrics.active_fraction(), predicted, 0.06 * predicted + 0.01)
          << "tau0=" << tau0 << " D=" << deadline;
    }
  }
}

TEST(Integration, PredictedVsSimulatedActiveFractionMonolithic) {
  const auto pipeline = blast_pipeline();
  const core::MonolithicStrategy strategy(pipeline, {});
  const double tau0 = 60.0;
  const double deadline = 4e4;  // small blocks -> many blocks per stream
  auto solved = strategy.solve(tau0, deadline);
  ASSERT_TRUE(solved.ok());
  arrivals::FixedRateArrivals arrival_process(tau0);
  sim::MonolithicSimConfig config;
  config.block_size = solved.value().block_size;
  config.input_count = 60000;
  config.deadline = deadline;
  config.seed = 5150;
  const auto metrics = sim::simulate_monolithic(pipeline, arrival_process, config);
  const double predicted = solved.value().predicted_active_fraction;
  EXPECT_NEAR(metrics.active_fraction(), predicted, 0.1 * predicted);
}

TEST(Integration, CalibratedBGivesHighMissFreeFraction) {
  // A scaled-down version of the paper's calibration acceptance criterion:
  // with b = {1,3,9,6}, at least 95% of trials are miss-free.
  const auto pipeline = blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(pipeline, paper_config());
  const double tau0 = 10.0;
  const double deadline = 1.85e5;
  auto solved = strategy.solve(tau0, deadline);
  ASSERT_TRUE(solved.ok());
  const auto intervals = solved.value().firing_intervals;

  auto trial_fn = [&](std::uint64_t trial) {
    arrivals::FixedRateArrivals arrival_process(tau0);
    sim::EnforcedSimConfig config;
    config.input_count = 10000;  // scaled down from 50000
    config.deadline = deadline;
    config.seed = dist::derive_seed({0xCA11B, trial});
    return sim::simulate_enforced_waits(pipeline, intervals, arrival_process,
                                        config);
  };
  const sim::TrialSummary summary = sim::run_trials(trial_fn, 20);
  EXPECT_GE(summary.miss_free_fraction(), 0.95);
  // And when misses do occur they affect under 1% of inputs (paper claim).
  EXPECT_LT(summary.miss_fraction.max(), 0.01);
}

TEST(Integration, OptimisticBMissesMoreThanCalibrated) {
  // Paper: "Smaller values for the b parameters empirically incurred much
  // more frequent deadline misses." Optimistic b shrinks the budget, letting
  // the optimizer stretch firing intervals beyond what transients allow.
  const auto pipeline = blast_pipeline();
  const double tau0 = 10.0;
  const double deadline = 6e4;

  auto run_with = [&](const core::EnforcedWaitsConfig& config) {
    const core::EnforcedWaitsStrategy strategy(pipeline, config);
    auto solved = strategy.solve(tau0, deadline);
    EXPECT_TRUE(solved.ok());
    auto trial_fn = [&, intervals = solved.value().firing_intervals](
                        std::uint64_t trial) {
      arrivals::FixedRateArrivals arrival_process(tau0);
      sim::EnforcedSimConfig sim_config;
      sim_config.input_count = 10000;
      sim_config.deadline = deadline;
      sim_config.seed = dist::derive_seed({0x0B5E55ED, trial});
      return sim::simulate_enforced_waits(pipeline, intervals, arrival_process,
                                          sim_config);
    };
    return sim::run_trials(trial_fn, 10);
  };

  const auto optimistic =
      run_with(core::EnforcedWaitsConfig::optimistic(pipeline));
  const auto calibrated = run_with(paper_config());
  EXPECT_LT(optimistic.miss_free_fraction(), calibrated.miss_free_fraction());
  EXPECT_GE(calibrated.miss_free_fraction(), 0.9);
}

TEST(Integration, Figure4DominanceRegions) {
  // The qualitative content of Figures 3-4 on a coarse grid.
  util::ThreadPool pool(2);
  // 12 tau0 points (step 9) include tau0 = 10, where the monolithic strategy
  // is barely stable and the enforced-waits advantage peaks.
  const auto surface = core::run_sweep(blast_pipeline(), paper_config(), {},
                                       core::SweepGrid::paper_ranges(12, 6), &pool);
  const auto summary = core::summarize_dominance(surface);
  // Enforced waits dominate somewhere by at least 0.4 (paper's figure).
  EXPECT_GE(summary.max_enforced_advantage, 0.4);
  // Monolithic dominates somewhere too (slow arrivals, tight deadline).
  EXPECT_GT(summary.max_monolithic_advantage, 0.1);
  // Both regions are non-trivial.
  EXPECT_GT(summary.enforced_wins, 3u);
  EXPECT_GT(summary.monolithic_wins, 3u);
}

TEST(Integration, MeasuredMiniBlastPipelineIsSchedulable) {
  // The full substrate path: synthesize sequences, measure the real
  // computation, build a pipeline spec from measurements, then optimize and
  // simulate it under both strategies.
  dist::Xoshiro256 rng(515);
  blast::SequencePairConfig pair_config;
  pair_config.subject_length = 1 << 16;
  pair_config.query_length = 1 << 14;
  const auto pair = blast::make_sequence_pair(pair_config, rng);
  blast::BlastStages::Config stage_config;
  stage_config.k = 8;
  const blast::BlastStages stages(pair, stage_config);
  blast::MeasureConfig measure_config;
  measure_config.window_count = 30000;
  const auto measurement = blast::measure_pipeline(stages, measure_config);
  auto spec = measurement.to_pipeline_spec(128);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  const auto& pipeline = spec.value();

  // Generous deadline and moderate rate: both strategies feasible.
  const double tau0 = pipeline.mean_service_per_input() * 4.0;
  const double deadline = 400.0 * pipeline.service_time(3);

  const core::EnforcedWaitsStrategy enforced(
      pipeline, core::EnforcedWaitsConfig{{2.0, 4.0, 9.0, 6.0}});
  auto e = enforced.solve(tau0, deadline);
  ASSERT_TRUE(e.ok()) << e.error().message;
  EXPECT_LT(e.value().predicted_active_fraction, 1.0);

  const core::MonolithicStrategy monolithic(pipeline, {});
  auto m = monolithic.solve(tau0, deadline);
  ASSERT_TRUE(m.ok()) << m.error().message;

  // Simulate the enforced schedule briefly: it must be stable and produce
  // sink outputs.
  arrivals::FixedRateArrivals arrival_process(tau0);
  sim::EnforcedSimConfig sim_config;
  sim_config.input_count = 5000;
  sim_config.deadline = deadline;
  sim_config.seed = 161;
  const auto metrics = sim::simulate_enforced_waits(
      pipeline, e.value().firing_intervals, arrival_process, sim_config);
  EXPECT_GT(metrics.sink_outputs, 0u);
  EXPECT_LT(metrics.miss_fraction(), 0.05);
}

TEST(Integration, PoissonArrivalsDegradeGracefully) {
  // Future-work extension: Poisson arrivals at the same mean rate produce
  // transient bursts; the calibrated schedule should still keep misses rare.
  const auto pipeline = blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(pipeline, paper_config());
  const double tau0 = 20.0;
  const double deadline = 1.85e5;
  auto solved = strategy.solve(tau0, deadline);
  ASSERT_TRUE(solved.ok());
  arrivals::PoissonArrivals arrival_process(tau0);
  sim::EnforcedSimConfig config;
  config.input_count = 20000;
  config.deadline = deadline;
  config.seed = 818;
  const auto metrics = sim::simulate_enforced_waits(
      pipeline, solved.value().firing_intervals, arrival_process, config);
  EXPECT_LT(metrics.miss_fraction(), 0.02);
}

TEST(Integration, DeepPipelineSixteenStages) {
  // Nothing in the stack may assume N = 4: build a 16-stage pipeline,
  // optimize, certify, and simulate it end to end.
  dist::Xoshiro256 rng(1616);
  sdf::PipelineBuilder builder("deep");
  builder.simd_width(64);
  std::vector<double> b;
  for (int i = 0; i < 16; ++i) {
    const double t = 40.0 + rng.uniform01() * 300.0;
    if (i == 15) {
      builder.add_node("sink", t, dist::make_deterministic(1));
    } else if (i % 5 == 2) {
      builder.add_node("expand" + std::to_string(i), t,
                       dist::make_censored_poisson(1.4, 8));
    } else {
      builder.add_node("filter" + std::to_string(i), t,
                       dist::make_bernoulli(0.6 + 0.3 * rng.uniform01()));
    }
    b.push_back(3.0);
  }
  const auto pipeline = std::move(builder.build()).take();
  const core::EnforcedWaitsStrategy strategy(pipeline,
                                             core::EnforcedWaitsConfig{b});

  const double tau0 = pipeline.mean_service_per_input() * 3.0;
  const double deadline =
      2.5 * sdf::minimal_deadline_budget(pipeline, b);
  auto solved = strategy.solve(tau0, deadline);
  ASSERT_TRUE(solved.ok()) << solved.error().message;
  EXPECT_TRUE(solved.value().kkt.satisfied(1e-3));

  arrivals::FixedRateArrivals arrival_process(tau0);
  sim::EnforcedSimConfig config;
  config.input_count = 10000;
  config.deadline = deadline;
  config.seed = 7;
  const auto metrics = sim::simulate_enforced_waits(
      pipeline, solved.value().firing_intervals, arrival_process, config);
  EXPECT_GT(metrics.sink_outputs, 0u);
  EXPECT_NEAR(metrics.active_fraction(),
              solved.value().predicted_active_fraction,
              0.05 * solved.value().predicted_active_fraction + 0.01);
  EXPECT_LT(metrics.miss_fraction(), 0.01);
}

}  // namespace
}  // namespace ripple
