// The task-parallel pipeline engine against the sequential engine: the
// contract is bit-identity at every exec_threads value — metrics, results,
// and exported sim-domain traces. Covered here: golden equivalence on the
// real mini-BLAST pipeline (typed and adapter paths), a randomized
// determinism fuzz over irregular pipelines/arrival schedules/thread counts,
// exception parity in commit order, scheduler reuse across runs and thread
// counts, and the all-filtered makespan fallback. The multi-thread scheduler
// paths also serve as the TSan soak target in CI.
#include <gtest/gtest.h>

#include <any>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "blast/batch_stages.hpp"
#include "blast/measure.hpp"
#include "blast/sequence.hpp"
#include "blast/stages.hpp"
#include "core/enforced_waits.hpp"
#include "dist/gain.hpp"
#include "dist/rng.hpp"
#include "runtime/pipeline_executor.hpp"
#include "sdf/pipeline.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::runtime {
namespace {

// ---------------------------------------------------------------------------
// Shared comparators
// ---------------------------------------------------------------------------

void expect_metrics_identical(const ExecutionMetrics& got,
                              const ExecutionMetrics& want) {
  ASSERT_EQ(got.base.nodes.size(), want.base.nodes.size());
  for (std::size_t i = 0; i < got.base.nodes.size(); ++i) {
    const auto& g = got.base.nodes[i];
    const auto& w = want.base.nodes[i];
    EXPECT_EQ(g.firings, w.firings) << "node " << i;
    EXPECT_EQ(g.empty_firings, w.empty_firings) << "node " << i;
    EXPECT_EQ(g.items_consumed, w.items_consumed) << "node " << i;
    EXPECT_EQ(g.items_produced, w.items_produced) << "node " << i;
    EXPECT_EQ(g.max_queue_length, w.max_queue_length) << "node " << i;
    EXPECT_EQ(g.active_time, w.active_time) << "node " << i;
  }
  EXPECT_EQ(got.base.inputs_arrived, want.base.inputs_arrived);
  EXPECT_EQ(got.base.inputs_missed, want.base.inputs_missed);
  EXPECT_EQ(got.base.inputs_on_time, want.base.inputs_on_time);
  EXPECT_EQ(got.base.sink_outputs, want.base.sink_outputs);
  EXPECT_EQ(got.base.makespan, want.base.makespan);
  EXPECT_EQ(got.base.output_latency.count(), want.base.output_latency.count());
  EXPECT_EQ(got.base.output_latency.mean(), want.base.output_latency.mean());
  EXPECT_EQ(got.base.output_latency.max(), want.base.output_latency.max());
}

// ---------------------------------------------------------------------------
// Golden equivalence on the mini-BLAST pipeline
// ---------------------------------------------------------------------------

struct BlastHarness {
  blast::SequencePair pair;
  blast::BlastStages::Config stage_config;
  blast::BlastStages stages;
  sdf::PipelineSpec spec;
  ExecutorConfig config;
  std::size_t windows;

  BlastHarness() : pair(make_pair()), stages(pair, stage_config),
                   spec(make_spec()), windows(8000) {
    core::EnforcedWaitsStrategy strategy(
        spec, core::EnforcedWaitsConfig{{2.0, 4.0, 9.0, 6.0}});
    const double tau0 = spec.mean_service_per_input() * 4.0;
    const double deadline = 600.0 * spec.service_time(3);
    auto schedule = strategy.solve(tau0, deadline);
    EXPECT_TRUE(schedule.ok());
    config.firing_intervals = schedule.value().firing_intervals;
    config.input_gap = tau0;
    config.deadline = deadline;
    config.max_collected_results = 256;
  }

  static blast::SequencePair make_pair() {
    dist::Xoshiro256 rng(404);
    blast::SequencePairConfig pair_config;
    pair_config.subject_length = 1 << 15;
    pair_config.query_length = 1 << 13;
    return blast::make_sequence_pair(pair_config, rng);
  }

  sdf::PipelineSpec make_spec() {
    blast::MeasureConfig measure_config;
    measure_config.window_count = 8000;
    const auto measurement = blast::measure_pipeline(stages, measure_config);
    auto spec_result = measurement.to_pipeline_spec(128);
    EXPECT_TRUE(spec_result.ok());
    return spec_result.value();
  }

  std::vector<Item> item_inputs() const {
    std::vector<Item> inputs;
    inputs.reserve(windows);
    for (std::size_t w = 0; w < windows; ++w) {
      inputs.emplace_back(
          static_cast<std::uint32_t>(w % stages.input_count()));
    }
    return inputs;
  }
};

void expect_alignments_identical(const std::vector<Item>& got,
                                 const std::vector<Item>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto g = std::any_cast<blast::Alignment>(got[i]);
    const auto w = std::any_cast<blast::Alignment>(want[i]);
    EXPECT_EQ(g.subject_pos, w.subject_pos) << "result " << i;
    EXPECT_EQ(g.query_pos, w.query_pos) << "result " << i;
    EXPECT_EQ(g.score, w.score) << "result " << i;
  }
}

TEST(ParallelExecutorGolden, BlastTypedBitIdenticalAcrossThreadCounts) {
  const BlastHarness h;
  const PipelineExecutor engine(h.spec, blast::make_batch_stages(h.stages));
  const auto inputs = blast::make_batch_inputs(h.stages, h.windows);

  ExecutorConfig sequential = h.config;
  sequential.exec_threads = 1;
  const auto golden = engine.run_batch(inputs, sequential);
  ASSERT_TRUE(golden.ok()) << golden.error().message;
  ASSERT_GT(golden.value().base.sink_outputs, 0u);

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                              std::size_t{0}}) {
    ExecutorConfig parallel = h.config;
    parallel.exec_threads = threads;
    const auto got = engine.run_batch(inputs, parallel);
    ASSERT_TRUE(got.ok()) << got.error().message;
    SCOPED_TRACE("exec_threads=" + std::to_string(threads));
    expect_metrics_identical(got.value(), golden.value());
    expect_alignments_identical(got.value().results, golden.value().results);
  }
}

TEST(ParallelExecutorGolden, BlastAdapterBitIdentical) {
  const BlastHarness h;
  const PipelineExecutor engine(h.spec, blast::make_item_stages(h.stages));

  ExecutorConfig sequential = h.config;
  sequential.exec_threads = 1;
  const auto golden = engine.run(h.item_inputs(), sequential);
  ASSERT_TRUE(golden.ok()) << golden.error().message;

  ExecutorConfig parallel = h.config;
  parallel.exec_threads = 4;
  const auto got = engine.run(h.item_inputs(), parallel);
  ASSERT_TRUE(got.ok()) << got.error().message;
  expect_metrics_identical(got.value(), golden.value());
  expect_alignments_identical(got.value().results, golden.value().results);
}

#if RIPPLE_OBS
TEST(ParallelExecutorGolden, TraceExportBitIdentical) {
  // With trace_workers off (the default), the parallel engine's exported
  // trace must be event-for-event identical to the sequential engine's: the
  // committer emits every sim-domain event in commit order and the workers
  // emit nothing.
  const BlastHarness h;
  const PipelineExecutor engine(h.spec, blast::make_batch_stages(h.stages));
  const auto inputs = blast::make_batch_inputs(h.stages, h.windows);

  const auto traced_run = [&](std::size_t threads) {
    ExecutorConfig config = h.config;
    config.exec_threads = threads;
    obs::TraceSession::global().clear();
    obs::set_enabled(true);
    const auto result = engine.run_batch(inputs, config);
    obs::set_enabled(false);
    EXPECT_TRUE(result.ok());
    return obs::TraceSession::global().drain();
  };

  const auto want = traced_run(1);
  const auto got = traced_run(4);
  obs::TraceSession::global().clear();
  ASSERT_GT(want.size(), 0u);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t e = 0; e < want.size(); ++e) {
    EXPECT_STREQ(got[e].name, want[e].name) << "event " << e;
    EXPECT_EQ(got[e].ts, want[e].ts) << "event " << e;
    EXPECT_EQ(got[e].value, want[e].value) << "event " << e;
    EXPECT_EQ(got[e].track, want[e].track) << "event " << e;
    EXPECT_EQ(got[e].domain, want[e].domain) << "event " << e;
    EXPECT_EQ(got[e].kind, want[e].kind) << "event " << e;
  }
}
#endif

// ---------------------------------------------------------------------------
// Randomized determinism fuzz: irregular pipelines, irregular arrivals
// ---------------------------------------------------------------------------

/// A typed stage whose per-lane gain is an irregular (but deterministic)
/// function of the lane value: 0, 1 or 2 outputs per input, so queues grow
/// and drain unevenly and firings routinely straddle segment boundaries.
BatchStage make_fuzz_stage(std::uint32_t salt) {
  BatchStage stage;
  stage.input_fields = 1;
  stage.output_fields = 1;
  stage.fn = [salt](const LaneView& in, BatchEmitter& out) {
    for (std::size_t lane = 0; lane < in.lanes; ++lane) {
      const std::uint32_t x = in.field[0][lane];
      const std::uint32_t mixed = (x ^ salt) * 2654435761u;
      const std::uint32_t count = (mixed >> 13) % 3;
      for (std::uint32_t c = 0; c < count; ++c) {
        out.emit(lane, mixed + c);
      }
    }
  };
  return stage;
}

struct FuzzCase {
  sdf::PipelineSpec spec;
  std::vector<BatchStage> stages;
  ExecutorConfig config;
  BatchInputs inputs;

  explicit FuzzCase(sdf::PipelineSpec s) : spec(std::move(s)) {}
};

FuzzCase make_fuzz_case(std::uint64_t seed) {
  dist::Xoshiro256 rng(seed);

  const std::size_t nodes = 2 + rng.uniform_below(3);
  const std::uint32_t width = 4u << rng.uniform_below(3);  // 4, 8, 16
  sdf::PipelineBuilder builder("fuzz");
  builder.simd_width(width);
  std::vector<Cycles> service(nodes);
  std::vector<BatchStage> stages;
  for (std::size_t i = 0; i < nodes; ++i) {
    service[i] = 1.0 + 9.0 * rng.uniform01();
    builder.add_node("n" + std::to_string(i), service[i],
                     dist::make_deterministic(1));
    stages.push_back(make_fuzz_stage(static_cast<std::uint32_t>(
        seed * 1000 + i)));
  }
  FuzzCase c(builder.build().take());
  c.stages = std::move(stages);

  for (std::size_t i = 0; i < nodes; ++i) {
    c.config.firing_intervals.push_back(service[i] * (1.0 + 1.5 * rng.uniform01()));
  }
  const std::size_t input_count = 200 + rng.uniform_below(400);
  const double tau = c.spec.mean_service_per_input() * (1.0 + 3.0 * rng.uniform01());
  if (rng.uniform_below(4) != 0) {
    // Irregular arrival schedule: bursts (short gaps) and lulls (long gaps).
    for (std::size_t k = 0; k < input_count; ++k) {
      c.config.input_gaps.push_back(tau * (0.1 + 1.9 * rng.uniform01()));
    }
  } else {
    c.config.input_gap = tau;
  }
  if (rng.uniform_below(2) != 0) {
    c.config.deadline = tau * static_cast<double>(4 + rng.uniform_below(60));
  }
  c.config.charge_empty_firings = rng.uniform_below(2) != 0;
  c.config.max_collected_results = 64 + rng.uniform_below(512);

  for (std::size_t k = 0; k < input_count; ++k) {
    c.inputs.push(static_cast<std::uint32_t>(rng.uniform_below(1u << 20)));
  }
  return c;
}

TEST(ParallelExecutorFuzz, RandomPipelinesBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    FuzzCase c = make_fuzz_case(seed);
    const PipelineExecutor engine(c.spec, c.stages);

    ExecutorConfig sequential = c.config;
    sequential.exec_threads = 1;
    const auto golden = engine.run_batch(c.inputs, sequential);
    ASSERT_TRUE(golden.ok()) << "seed " << seed << ": "
                             << golden.error().message;

    for (std::size_t threads : {std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
      ExecutorConfig parallel = c.config;
      parallel.exec_threads = threads;
      const auto got = engine.run_batch(c.inputs, parallel);
      ASSERT_TRUE(got.ok()) << "seed " << seed << ": " << got.error().message;
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " exec_threads=" + std::to_string(threads));
      expect_metrics_identical(got.value(), golden.value());
      ASSERT_EQ(got.value().results.size(), golden.value().results.size());
      for (std::size_t r = 0; r < got.value().results.size(); ++r) {
        using Tuple = std::array<std::uint32_t, kMaxLaneFields>;
        EXPECT_EQ(std::any_cast<Tuple>(got.value().results[r]),
                  std::any_cast<Tuple>(golden.value().results[r]))
            << "result " << r;
      }
    }
  }
}

TEST(ParallelExecutorFuzz, AllFilteredMakespanFallbackMatches) {
  // Every input is dropped at stage 0, so no sink output ever sets the
  // makespan and both engines must take the arrival-clock fallback — under
  // both the fixed-gap and the per-input-gap arithmetic.
  sdf::PipelineSpec spec = sdf::PipelineBuilder("filter")
                               .simd_width(4)
                               .add_node("drop", 3.0, dist::make_deterministic(1))
                               .add_node("sink", 2.0, dist::make_deterministic(1))
                               .build()
                               .take();
  std::vector<BatchStage> stages(2);
  stages[0].fn = [](const LaneView&, BatchEmitter&) {};
  stages[1].fn = [](const LaneView& in, BatchEmitter& out) {
    for (std::size_t lane = 0; lane < in.lanes; ++lane) {
      out.emit(lane, in.field[0][lane]);
    }
  };
  const PipelineExecutor engine(spec, stages);

  BatchInputs inputs;
  for (std::uint32_t k = 0; k < 37; ++k) inputs.push(k);

  for (const bool per_input : {false, true}) {
    ExecutorConfig config;
    config.firing_intervals = {5.0, 4.0};
    config.input_gap = 2.5;
    if (per_input) {
      for (std::uint32_t k = 0; k < 37; ++k) {
        config.input_gaps.push_back(1.0 + 0.25 * static_cast<double>(k % 7));
      }
    }
    const auto golden = engine.run_batch(inputs, config);
    ASSERT_TRUE(golden.ok());
    EXPECT_EQ(golden.value().base.sink_outputs, 0u);
    EXPECT_GT(golden.value().base.makespan, 0.0);

    ExecutorConfig parallel = config;
    parallel.exec_threads = 4;
    const auto got = engine.run_batch(inputs, parallel);
    ASSERT_TRUE(got.ok());
    SCOPED_TRACE(per_input ? "per-input gaps" : "fixed gap");
    expect_metrics_identical(got.value(), golden.value());
  }
}

// ---------------------------------------------------------------------------
// Exception parity and executor/scheduler reuse
// ---------------------------------------------------------------------------

sdf::PipelineSpec toy_spec() {
  return sdf::PipelineBuilder("toy")
      .simd_width(4)
      .add_node("double", 10.0, dist::make_deterministic(1))
      .add_node("keep", 12.0, dist::make_deterministic(1))
      .build()
      .take();
}

TEST(ParallelExecutorError, StageExceptionParityAndReuse) {
  // The poison counter is atomic: under exec_threads>1 several firings may
  // execute concurrently, but only the firing containing value 3 can throw,
  // so the committed failure is deterministic.
  auto make_engine = [](std::atomic<int>& armed) {
    std::vector<StageFn> fns;
    fns.push_back([&armed](Item&& input, std::vector<Item>& outputs) {
      const int value = std::any_cast<int>(input);
      if (value == 3 && armed.fetch_sub(1) > 0) {
        throw std::runtime_error("poison item");
      }
      outputs.emplace_back(value * 2);
    });
    fns.push_back([](Item&& input, std::vector<Item>& outputs) {
      outputs.push_back(std::move(input));
    });
    return PipelineExecutor(toy_spec(), std::move(fns));
  };
  auto toy_inputs = [] {
    std::vector<Item> items;
    for (int i = 1; i <= 8; ++i) items.emplace_back(i);
    return items;
  };

  ExecutorConfig config;
  config.firing_intervals = {40.0, 40.0};
  config.input_gap = 5.0;

  std::atomic<int> seq_armed{1};
  const PipelineExecutor seq_engine = make_engine(seq_armed);
  const auto seq_fail = seq_engine.run(toy_inputs(), config);
  ASSERT_FALSE(seq_fail.ok());

  std::atomic<int> par_armed{1};
  const PipelineExecutor par_engine = make_engine(par_armed);
  ExecutorConfig parallel = config;
  parallel.exec_threads = 4;
  const auto par_fail = par_engine.run(toy_inputs(), parallel);
  ASSERT_FALSE(par_fail.ok());
  EXPECT_EQ(par_fail.error().code, seq_fail.error().code);
  EXPECT_EQ(par_fail.error().message, seq_fail.error().message);

  // Both executors stay usable; the parallel one reuses its live scheduler.
  const auto seq_clean = seq_engine.run(toy_inputs(), config);
  const auto par_clean = par_engine.run(toy_inputs(), parallel);
  ASSERT_TRUE(seq_clean.ok()) << seq_clean.error().message;
  ASSERT_TRUE(par_clean.ok()) << par_clean.error().message;
  expect_metrics_identical(par_clean.value(), seq_clean.value());
  ASSERT_EQ(par_clean.value().results.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(std::any_cast<int>(par_clean.value().results[i]),
              2 * static_cast<int>(i + 1));
  }
}

TEST(ParallelExecutorReuse, SchedulerSurvivesThreadCountChanges) {
  // One executor, many runs with different exec_threads: the pool is resized
  // lazily and each run stays bit-identical to the sequential baseline.
  FuzzCase c = make_fuzz_case(77);
  const PipelineExecutor engine(c.spec, c.stages);
  ExecutorConfig sequential = c.config;
  sequential.exec_threads = 1;
  const auto golden = engine.run_batch(c.inputs, sequential);
  ASSERT_TRUE(golden.ok());

  for (std::size_t threads : {std::size_t{4}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}, std::size_t{2}}) {
    ExecutorConfig config = c.config;
    config.exec_threads = threads;
    const auto got = engine.run_batch(c.inputs, config);
    ASSERT_TRUE(got.ok());
    SCOPED_TRACE("exec_threads=" + std::to_string(threads));
    expect_metrics_identical(got.value(), golden.value());
  }
}

}  // namespace
}  // namespace ripple::runtime
