#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/jsonv.hpp"

namespace ripple::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, MovesBothWays) {
  Gauge gauge;
  gauge.set(3.0);
  gauge.add(2.5);
  gauge.add(-4.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.0);
}

TEST(Gauge, ConcurrentAddsAreLossless) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 10000; ++i) gauge.add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.value(), 40000.0);
}

// ---------------------------------------------------------------- histogram

TEST(LatencyHistogram, BucketZeroIsSubUnitAndClampsBadInput) {
  EXPECT_EQ(LatencyHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(0.999), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::nan("")), 0u);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper(0), 1.0);
}

TEST(LatencyHistogram, BucketLayoutMatchesDocumentedFormula) {
  // bucket 1 + 8e + s = [2^e (1 + s/8), 2^e (1 + (s+1)/8)).
  for (std::size_t e = 0; e < 6; ++e) {
    for (std::size_t s = 0; s < LatencyHistogram::kSubBuckets; ++s) {
      const std::size_t index = 1 + LatencyHistogram::kSubBuckets * e + s;
      const double lo = std::ldexp(1.0 + static_cast<double>(s) / 8.0,
                                   static_cast<int>(e));
      const double hi = std::ldexp(1.0 + static_cast<double>(s + 1) / 8.0,
                                   static_cast<int>(e));
      EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_lower(index), lo);
      EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper(index), hi);
      // Both edges and an interior point land in the right bucket.
      EXPECT_EQ(LatencyHistogram::bucket_index(lo), index);
      EXPECT_EQ(LatencyHistogram::bucket_index((lo + hi) / 2.0), index);
      EXPECT_EQ(LatencyHistogram::bucket_index(std::nextafter(hi, 0.0)), index);
      EXPECT_NE(LatencyHistogram::bucket_index(hi), index);
    }
  }
}

TEST(LatencyHistogram, BucketsTileTheRangeWithoutGaps) {
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper(i),
                     LatencyHistogram::bucket_lower(i + 1));
  }
  // The top edge is finite (2^40) so the JSON dump never emits null.
  const double top =
      LatencyHistogram::bucket_upper(LatencyHistogram::kBucketCount - 1);
  EXPECT_DOUBLE_EQ(top, std::ldexp(1.0, 40));
  EXPECT_EQ(LatencyHistogram::bucket_index(1e18),
            LatencyHistogram::kBucketCount - 1);
}

TEST(LatencyHistogram, SumMeanMinMaxAreExact) {
  LatencyHistogram histogram;
  histogram.record(10.0);
  histogram.record(20.0);
  histogram.record(100.0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 130.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 130.0 / 3.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 10.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 100.0);
}

TEST(LatencyHistogram, QuantileFollowsDocumentedContract) {
  // 100 samples at exact values 1..100; quantile(q) must return the upper
  // bound of the bucket holding the rank-ceil(q*100) sample, clamped to the
  // exact max.
  LatencyHistogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.record(static_cast<double>(i));

  for (const double q : {0.5, 0.95, 0.99}) {
    const auto rank =
        static_cast<std::uint64_t>(std::ceil(q * 100.0));
    // Recompute the expected value straight from the documented layout.
    std::uint64_t cumulative = 0;
    double expected = 0.0;
    for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      cumulative += histogram.bucket_count(i);
      if (cumulative >= rank) {
        expected = std::min(LatencyHistogram::bucket_upper(i),
                            histogram.max());
        break;
      }
    }
    EXPECT_DOUBLE_EQ(histogram.quantile(q), expected) << "q = " << q;
  }
  // The extreme quantile clamps to the exact observed maximum.
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 100.0);
  // Single-sample histograms report that sample for every quantile.
  LatencyHistogram single;
  single.record(42.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.99), 42.0);
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram histogram;
  histogram.record(5.0);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_EQ(histogram.bucket_count(LatencyHistogram::bucket_index(5.0)), 0u);
}

// ----------------------------------------------------------------- registry

TEST(Registry, GetOrCreateReturnsStableIdentity) {
  Registry registry;
  Counter* counter = registry.counter("a.counter");
  EXPECT_EQ(registry.counter("a.counter"), counter);
  counter->increment();
  EXPECT_EQ(registry.counter("a.counter")->value(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  Registry registry;
  registry.counter("metric");
  EXPECT_THROW(registry.gauge("metric"), std::logic_error);
  EXPECT_THROW(registry.histogram("metric"), std::logic_error);
}

TEST(Registry, JsonDumpIsDeterministicAndParses) {
  Registry registry;
  registry.counter("z.last")->add(7);
  registry.gauge("m.level")->set(2.5);
  registry.histogram("a.lat")->record(100.0);
  registry.counter("b.first")->add(1);

  std::ostringstream first;
  registry.write_json(first);
  std::ostringstream second;
  registry.write_json(second);
  EXPECT_EQ(first.str(), second.str());  // byte-identical on re-dump

  auto document = util::parse_json(first.str());
  ASSERT_TRUE(document.ok()) << document.error().message;
  EXPECT_EQ(document.value().string_or("schema", ""), "ripple.metrics.v1");
  const auto& counters = document.value().find("counters")->as_array();
  ASSERT_EQ(counters.size(), 2u);
  // Name order, not registration order.
  EXPECT_EQ(counters[0].string_or("name", ""), "b.first");
  EXPECT_EQ(counters[1].string_or("name", ""), "z.last");
  const auto& histograms = document.value().find("histograms")->as_array();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(histograms[0].number_or("max", 0.0), 100.0);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  Registry registry;
  Counter* counter = registry.counter("c");
  LatencyHistogram* histogram = registry.histogram("h");
  counter->add(5);
  histogram->record(3.0);
  registry.reset_values();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(registry.counter("c"), counter);  // same object, still registered
}

}  // namespace
}  // namespace ripple::obs
