#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "blast/canonical.hpp"

namespace ripple::core {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

EnforcedWaitsConfig paper_config() {
  return EnforcedWaitsConfig{blast::paper_calibrated_b()};
}

TEST(SweepGrid, LinearSpacingInclusive) {
  const auto grid = SweepGrid::linear(1.0, 5.0, 5, 10.0, 20.0, 3);
  ASSERT_EQ(grid.tau0_values.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.tau0_values.front(), 1.0);
  EXPECT_DOUBLE_EQ(grid.tau0_values.back(), 5.0);
  EXPECT_DOUBLE_EQ(grid.tau0_values[1], 2.0);
  ASSERT_EQ(grid.deadline_values.size(), 3u);
  EXPECT_DOUBLE_EQ(grid.deadline_values[1], 15.0);
  EXPECT_EQ(grid.cell_count(), 15u);
}

TEST(SweepGrid, SinglePointAxis) {
  const auto grid = SweepGrid::linear(2.0, 9.0, 1, 5.0, 5.0, 1);
  EXPECT_DOUBLE_EQ(grid.tau0_values[0], 2.0);
  EXPECT_DOUBLE_EQ(grid.deadline_values[0], 5.0);
}

TEST(SweepGrid, PaperRangesMatchPaper) {
  const auto grid = SweepGrid::paper_ranges(4, 4);
  EXPECT_DOUBLE_EQ(grid.tau0_values.front(), 1.0);
  EXPECT_DOUBLE_EQ(grid.tau0_values.back(), 100.0);
  EXPECT_DOUBLE_EQ(grid.deadline_values.front(), 2e4);
  EXPECT_DOUBLE_EQ(grid.deadline_values.back(), 3.5e5);
}

TEST(SweepGrid, RejectsDegenerate) {
  EXPECT_THROW((void)SweepGrid::linear(1.0, 2.0, 0, 1.0, 2.0, 1),
               std::logic_error);
  EXPECT_THROW((void)SweepGrid::linear(2.0, 1.0, 2, 1.0, 2.0, 1),
               std::logic_error);
}

TEST(RunSweep, CellsMatchDirectSolves) {
  const auto pipeline = blast_pipeline();
  const auto grid = SweepGrid::linear(10.0, 100.0, 3, 5e4, 3.5e5, 3);
  const auto surface = run_sweep(pipeline, paper_config(), {}, grid);

  const EnforcedWaitsStrategy enforced(pipeline, paper_config());
  const MonolithicStrategy monolithic(pipeline, {});
  for (std::size_t ti = 0; ti < 3; ++ti) {
    for (std::size_t di = 0; di < 3; ++di) {
      const SweepCell& cell = surface.cell(ti, di);
      auto e = enforced.solve(cell.tau0, cell.deadline);
      auto m = monolithic.solve(cell.tau0, cell.deadline);
      EXPECT_EQ(cell.enforced_feasible, e.ok());
      EXPECT_EQ(cell.monolithic_feasible, m.ok());
      if (e.ok()) {
        EXPECT_NEAR(cell.enforced_active_fraction,
                    e.value().predicted_active_fraction, 1e-9);
      }
      if (m.ok()) {
        EXPECT_NEAR(cell.monolithic_active_fraction,
                    m.value().predicted_active_fraction, 1e-12);
        EXPECT_EQ(cell.monolithic_block, m.value().block_size);
      }
    }
  }
}

TEST(RunSweep, ParallelMatchesSerial) {
  const auto pipeline = blast_pipeline();
  const auto grid = SweepGrid::linear(5.0, 100.0, 4, 3e4, 3.5e5, 4);
  const auto serial = run_sweep(pipeline, paper_config(), {}, grid);
  util::ThreadPool pool(4);
  const auto parallel = run_sweep(pipeline, paper_config(), {}, grid, &pool);
  ASSERT_EQ(serial.cells().size(), parallel.cells().size());
  for (std::size_t i = 0; i < serial.cells().size(); ++i) {
    EXPECT_EQ(serial.cells()[i].enforced_feasible,
              parallel.cells()[i].enforced_feasible);
    EXPECT_NEAR(serial.cells()[i].enforced_active_fraction,
                parallel.cells()[i].enforced_active_fraction, 1e-9);
    EXPECT_EQ(serial.cells()[i].monolithic_block,
              parallel.cells()[i].monolithic_block);
  }
}

TEST(RunSweep, InfeasibleCellsChargedFullFraction) {
  const auto grid = SweepGrid::linear(1.0, 1.0, 1, 3.5e5, 3.5e5, 1);
  const auto surface = run_sweep(blast_pipeline(), paper_config(), {}, grid);
  const SweepCell& cell = surface.cell(0, 0);
  EXPECT_FALSE(cell.enforced_feasible);
  EXPECT_FALSE(cell.monolithic_feasible);
  EXPECT_DOUBLE_EQ(cell.enforced_active_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cell.monolithic_active_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cell.difference(), 0.0);
}

TEST(Dominance, ReproducesPaperFigure4Structure) {
  // Coarse version of the paper's grid; the qualitative claims must hold:
  // enforced waits win for fast arrivals + slack deadlines (by >= 0.4),
  // monolithic wins for slow arrivals + tight deadlines. The 12-point tau0
  // axis (step 9) lands on tau0 = 10, inside the band where the monolithic
  // strategy is barely stable and the gap is widest.
  const auto grid = SweepGrid::paper_ranges(12, 8);
  const auto surface = run_sweep(blast_pipeline(), paper_config(), {}, grid);
  const DominanceSummary summary = summarize_dominance(surface);

  EXPECT_EQ(summary.cells_total, 96u);
  EXPECT_GT(summary.enforced_wins, 0u);
  EXPECT_GT(summary.monolithic_wins, 0u);
  EXPECT_GE(summary.max_enforced_advantage, 0.4);
  // Enforced-waits' best region: fast arrivals (small tau0), slack deadline.
  EXPECT_LT(summary.argmax_enforced_tau0, 40.0);
  EXPECT_GT(summary.argmax_enforced_deadline, 1e5);
  // Monolithic's best region: tight deadline.
  EXPECT_LT(summary.argmax_monolithic_deadline, 1.5e5);
}

TEST(Dominance, EmptyishGridCounts) {
  const auto grid = SweepGrid::linear(1.0, 1.5, 2, 2.05e4, 2.1e4, 2);
  const auto surface = run_sweep(blast_pipeline(), paper_config(), {}, grid);
  const DominanceSummary summary = summarize_dominance(surface);
  EXPECT_EQ(summary.cells_total, 4u);
  EXPECT_EQ(summary.neither, 4u);  // all infeasible down there
}

TEST(Surface, CsvRoundTripStructure) {
  const auto grid = SweepGrid::linear(20.0, 100.0, 2, 1e5, 3.5e5, 2);
  const auto surface = run_sweep(blast_pipeline(), paper_config(), {}, grid);
  std::ostringstream out;
  surface.write_csv(out);
  const std::string text = out.str();
  // Header + 4 rows.
  std::size_t lines = 0;
  for (char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(text.find("tau0,deadline,enforced_feasible"), std::string::npos);
}

/// Field-by-field bitwise equality of two surfaces; EXPECT_EQ on doubles is
/// exact comparison, which is the whole point of the warm-start contract.
void expect_surfaces_bit_identical(const SweepSurface& a,
                                   const SweepSurface& b) {
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (std::size_t i = 0; i < a.cells().size(); ++i) {
    const SweepCell& x = a.cells()[i];
    const SweepCell& y = b.cells()[i];
    EXPECT_EQ(x.tau0, y.tau0) << "cell " << i;
    EXPECT_EQ(x.deadline, y.deadline) << "cell " << i;
    EXPECT_EQ(x.enforced_feasible, y.enforced_feasible) << "cell " << i;
    EXPECT_EQ(x.enforced_active_fraction, y.enforced_active_fraction)
        << "cell " << i;
    EXPECT_EQ(x.monolithic_feasible, y.monolithic_feasible) << "cell " << i;
    EXPECT_EQ(x.monolithic_active_fraction, y.monolithic_active_fraction)
        << "cell " << i;
    EXPECT_EQ(x.monolithic_block, y.monolithic_block) << "cell " << i;
  }
}

TEST(WarmSweep, GoldenSurfaceBitIdenticalToColdOnPaperGrid) {
  // The central warm-start contract: over the full paper parameter ranges —
  // including the feasibility boundaries of both strategies and the
  // chain-active small-tau0 region — the warm surface equals the cold one
  // bit for bit, not merely within tolerance.
  const auto pipeline = blast_pipeline();
  const auto grid = SweepGrid::paper_ranges(32, 32);

  SweepOptions cold;
  cold.warm_start = false;
  SweepOptions warm;
  warm.warm_start = true;

  const auto cold_surface =
      run_sweep(pipeline, paper_config(), {}, grid, cold);
  const auto warm_surface =
      run_sweep(pipeline, paper_config(), {}, grid, warm);
  expect_surfaces_bit_identical(cold_surface, warm_surface);
}

TEST(WarmSweep, ParallelWarmDeterministic) {
  // Tiles own their warm state, so neither the thread count nor the grain
  // may perturb a single bit of the surface.
  const auto pipeline = blast_pipeline();
  const auto grid = SweepGrid::paper_ranges(16, 16);

  SweepOptions serial;
  const auto serial_surface =
      run_sweep(pipeline, paper_config(), {}, grid, serial);

  util::ThreadPool pool(4);
  SweepOptions parallel;
  parallel.pool = &pool;
  parallel.tile_rows = 3;  // deliberately not dividing 16
  const auto parallel_surface =
      run_sweep(pipeline, paper_config(), {}, grid, parallel);
  expect_surfaces_bit_identical(serial_surface, parallel_surface);
}

TEST(WarmSweep, WarmAcrossFeasibilityBoundary) {
  // A single snake row that starts deep in the feasible region and walks
  // into the infeasible corner (small D) and back: hints go stale across
  // the boundary and must be rejected, never smuggled into results.
  const auto pipeline = blast_pipeline();
  const auto grid = SweepGrid::linear(8.0, 12.0, 3, 2e4, 3.5e5, 9);

  SweepOptions cold;
  cold.warm_start = false;
  SweepOptions warm;
  warm.tile_rows = 3;  // one tile: maximally long warm chain
  const auto cold_surface = run_sweep(pipeline, paper_config(), {}, grid, cold);
  const auto warm_surface = run_sweep(pipeline, paper_config(), {}, grid, warm);

  // The strip must actually cross both feasibility boundaries for the test
  // to mean anything.
  bool any_enforced = false, any_mono = false, any_neither = false;
  for (const SweepCell& cell : cold_surface.cells()) {
    any_enforced |= cell.enforced_feasible;
    any_mono |= cell.monolithic_feasible;
    any_neither |= (!cell.enforced_feasible && !cell.monolithic_feasible);
  }
  ASSERT_TRUE(any_enforced);
  ASSERT_TRUE(any_mono);
  ASSERT_TRUE(any_neither);
  expect_surfaces_bit_identical(cold_surface, warm_surface);
}

TEST(Surface, CellIndexValidation) {
  const auto grid = SweepGrid::linear(20.0, 100.0, 2, 1e5, 3.5e5, 2);
  const auto surface = run_sweep(blast_pipeline(), paper_config(), {}, grid);
  EXPECT_THROW((void)surface.cell(2, 0), std::logic_error);
  EXPECT_THROW((void)surface.cell(0, 2), std::logic_error);
}

}  // namespace
}  // namespace ripple::core
