#include "opt/kkt.hpp"

#include <gtest/gtest.h>

namespace ripple::opt {
namespace {

/// min (x-2)^2 s.t. x <= 1 (as a linear constraint, no bounds).
ConvexProblem one_dim_capped() {
  ConvexProblem p;
  p.objective = [](const linalg::Vector& x) { return (x[0] - 2.0) * (x[0] - 2.0); };
  p.gradient = [](const linalg::Vector& x) {
    return linalg::Vector{2.0 * (x[0] - 2.0)};
  };
  p.lower_bounds = {-kInf};
  p.upper_bounds = {kInf};
  LinearInequality c;
  c.coefficients = {1.0};
  c.rhs = 1.0;
  c.label = "cap";
  p.constraints.push_back(c);
  return p;
}

TEST(Kkt, OptimalBoundaryPointSatisfies) {
  const ConvexProblem p = one_dim_capped();
  const KktReport report = check_kkt(p, {1.0});
  EXPECT_TRUE(report.satisfied(1e-9));
  ASSERT_EQ(report.active_labels.size(), 1u);
  EXPECT_EQ(report.active_labels[0], "cap");
}

TEST(Kkt, InteriorNonStationaryPointFails) {
  const ConvexProblem p = one_dim_capped();
  const KktReport report = check_kkt(p, {0.0});
  EXPECT_FALSE(report.satisfied(1e-6));
  EXPECT_GT(report.stationarity_residual, 1.0);
}

TEST(Kkt, InfeasiblePointReportsViolation) {
  const ConvexProblem p = one_dim_capped();
  const KktReport report = check_kkt(p, {2.0});
  EXPECT_GT(report.primal_infeasibility, 0.5);
  EXPECT_FALSE(report.satisfied(1e-6));
}

TEST(Kkt, WrongSideOfConstraintGivesNegativeMultiplier) {
  // min (x-0)^2 with constraint x <= 1 active at x = 1 is NOT optimal (the
  // unconstrained optimum 0 is feasible): multiplier must come out negative.
  ConvexProblem p = one_dim_capped();
  p.objective = [](const linalg::Vector& x) { return x[0] * x[0]; };
  p.gradient = [](const linalg::Vector& x) { return linalg::Vector{2.0 * x[0]}; };
  const KktReport report = check_kkt(p, {1.0});
  EXPECT_LT(report.min_multiplier, -1e-6);
  EXPECT_FALSE(report.satisfied(1e-6));
}

TEST(Kkt, BoundsTreatedAsConstraints) {
  // min (x-2)^2 over [0, 1]: optimum at upper bound.
  ConvexProblem p;
  p.objective = [](const linalg::Vector& x) { return (x[0] - 2.0) * (x[0] - 2.0); };
  p.gradient = [](const linalg::Vector& x) {
    return linalg::Vector{2.0 * (x[0] - 2.0)};
  };
  p.lower_bounds = {0.0};
  p.upper_bounds = {1.0};
  const KktReport report = check_kkt(p, {1.0});
  EXPECT_TRUE(report.satisfied(1e-9));
  ASSERT_EQ(report.active_labels.size(), 1u);
  EXPECT_EQ(report.active_labels[0], "upper[0]");
}

TEST(Kkt, UnconstrainedStationaryPoint) {
  ConvexProblem p;
  p.objective = [](const linalg::Vector& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  p.gradient = [](const linalg::Vector& x) {
    return linalg::Vector{2.0 * (x[0] - 1.0), 2.0 * (x[1] + 2.0)};
  };
  p.lower_bounds = {-kInf, -kInf};
  p.upper_bounds = {kInf, kInf};
  EXPECT_TRUE(check_kkt(p, {1.0, -2.0}).satisfied(1e-9));
  EXPECT_FALSE(check_kkt(p, {1.5, -2.0}).satisfied(1e-6));
}

TEST(Kkt, TwoActiveConstraintsResolved) {
  // min x + y s.t. x >= 0, y >= 0: optimum at the origin with both bounds
  // active, multipliers both +1.
  ConvexProblem p;
  p.objective = [](const linalg::Vector& x) { return x[0] + x[1]; };
  p.gradient = [](const linalg::Vector& x) {
    return linalg::Vector(x.size(), 1.0);
  };
  p.lower_bounds = {0.0, 0.0};
  p.upper_bounds = {kInf, kInf};
  const KktReport report = check_kkt(p, {0.0, 0.0});
  EXPECT_TRUE(report.satisfied(1e-9));
  EXPECT_EQ(report.active_labels.size(), 2u);
}

}  // namespace
}  // namespace ripple::opt
