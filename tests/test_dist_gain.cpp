#include "dist/gain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "dist/rng.hpp"
#include "dist/stats.hpp"

namespace ripple::dist {
namespace {

/// Sample a gain distribution and return observed running stats.
RunningStats sample_stats(const GainDistribution& gain, int samples,
                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  RunningStats stats;
  for (int i = 0; i < samples; ++i) {
    stats.add(static_cast<double>(gain.sample(rng)));
  }
  return stats;
}

TEST(DeterministicGain, AlwaysK) {
  DeterministicGain gain(3);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gain.sample(rng), 3u);
  EXPECT_DOUBLE_EQ(gain.mean(), 3.0);
  EXPECT_DOUBLE_EQ(gain.variance(), 0.0);
  EXPECT_EQ(gain.max_outputs(), 3u);
}

TEST(BernoulliGain, RejectsBadProbability) {
  EXPECT_THROW(BernoulliGain(-0.1), std::logic_error);
  EXPECT_THROW(BernoulliGain(1.1), std::logic_error);
}

TEST(BernoulliGain, MomentsExact) {
  BernoulliGain gain(0.379);  // the paper's stage-0 gain
  EXPECT_DOUBLE_EQ(gain.mean(), 0.379);
  EXPECT_DOUBLE_EQ(gain.variance(), 0.379 * 0.621);
  EXPECT_EQ(gain.max_outputs(), 1u);
}

TEST(BernoulliGain, DegenerateEndpoints) {
  BernoulliGain never(0.0);
  BernoulliGain always(1.0);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(never.sample(rng), 0u);
    EXPECT_EQ(always.sample(rng), 1u);
  }
  EXPECT_EQ(never.max_outputs(), 0u);
}

TEST(CensoredPoissonGain, NeverExceedsCap) {
  CensoredPoissonGain gain(1.92, 16);  // the paper's stage 1
  Xoshiro256 rng(3);
  for (int i = 0; i < 100000; ++i) EXPECT_LE(gain.sample(rng), 16u);
}

TEST(CensoredPoissonGain, MeanNearLambdaWhenCapIsLoose) {
  // P(Poisson(1.92) > 16) ~ 1e-12: censoring is negligible.
  CensoredPoissonGain gain(1.92, 16);
  EXPECT_NEAR(gain.mean(), 1.92, 1e-9);
  EXPECT_NEAR(gain.variance(), 1.92, 1e-6);
}

TEST(CensoredPoissonGain, TightCapLowersMean) {
  CensoredPoissonGain gain(5.0, 3);
  EXPECT_LT(gain.mean(), 5.0);
  EXPECT_LE(gain.max_outputs(), 3u);
  Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_LE(gain.sample(rng), 3u);
}

TEST(CensoredPoissonGain, ZeroLambdaAlwaysZero) {
  CensoredPoissonGain gain(0.0, 16);
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gain.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(gain.mean(), 0.0);
}

TEST(TruncatedGeometricGain, WithMeanHitsTarget) {
  auto gain = TruncatedGeometricGain::with_mean(1.92, 16);
  EXPECT_NEAR(gain->mean(), 1.92, 1e-6);
}

TEST(TruncatedGeometricGain, HeavierTailThanPoissonAtSameMean) {
  CensoredPoissonGain poisson(1.92, 16);
  auto geometric = TruncatedGeometricGain::with_mean(1.92, 16);
  EXPECT_GT(geometric->variance(), poisson.variance());
}

TEST(EmpiricalGain, MatchesHistogram) {
  // 50% zero, 25% one, 25% four.
  EmpiricalGain gain({2.0, 1.0, 0.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(gain.mean(), 0.25 + 1.0);
  EXPECT_EQ(gain.max_outputs(), 4u);
}

TEST(EmpiricalGain, RejectsInvalidWeights) {
  EXPECT_THROW(EmpiricalGain({}), std::logic_error);
  EXPECT_THROW(EmpiricalGain({0.0, 0.0}), std::logic_error);
  EXPECT_THROW(EmpiricalGain({1.0, -1.0}), std::logic_error);
}

TEST(Factories, ProduceExpectedTypes) {
  EXPECT_EQ(make_deterministic(2)->mean(), 2.0);
  EXPECT_DOUBLE_EQ(make_bernoulli(0.25)->mean(), 0.25);
  // Censoring at 8 trims a ~1e-6 sliver of the Poisson(1) tail.
  EXPECT_NEAR(make_censored_poisson(1.0, 8)->mean(), 1.0, 1e-5);
}

/// The batched APIs are drop-in replacements for n successive sample()
/// calls: same values, and — critically for simulator determinism — exactly
/// the same RNG stream consumption, so code mixing batched and scalar
/// sampling stays reproducible.
TEST(BatchSampling, SampleNMatchesScalarStream) {
  const std::vector<std::pair<const char*, GainPtr>> cases = [] {
    std::vector<std::pair<const char*, GainPtr>> list;
    list.emplace_back("deterministic", make_deterministic(3));
    list.emplace_back("bernoulli", make_bernoulli(0.379));
    list.emplace_back("censored_poisson", make_censored_poisson(1.92, 16));
    list.emplace_back("trunc_geometric",
                      TruncatedGeometricGain::with_mean(2.3, 12));
    list.emplace_back("empirical",
                      std::make_shared<EmpiricalGain>(
                          std::vector<double>{0.2, 0.5, 0.0, 0.3}));
    return list;
  }();
  for (const auto& [label, gain] : cases) {
    SCOPED_TRACE(label);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{128}, std::size_t{1000}}) {
      Xoshiro256 scalar_rng(42);
      std::vector<OutputCount> expected(n);
      for (std::size_t i = 0; i < n; ++i) expected[i] = gain->sample(scalar_rng);

      Xoshiro256 batch_rng(42);
      std::vector<OutputCount> got(n);
      gain->sample_n(batch_rng, got.data(), n);
      EXPECT_EQ(got, expected) << "n=" << n;
      // Both generators must sit at the same stream position afterwards.
      EXPECT_EQ(batch_rng(), scalar_rng()) << "n=" << n;
    }
  }
}

TEST(BatchSampling, SampleSumMatchesScalarStream) {
  const std::vector<std::pair<const char*, GainPtr>> cases = [] {
    std::vector<std::pair<const char*, GainPtr>> list;
    list.emplace_back("deterministic", make_deterministic(2));
    list.emplace_back("bernoulli", make_bernoulli(0.0332));
    list.emplace_back("censored_poisson", make_censored_poisson(1.92, 16));
    return list;
  }();
  for (const auto& [label, gain] : cases) {
    SCOPED_TRACE(label);
    for (const std::uint64_t n : {0ull, 1ull, 9ull, 500ull}) {
      Xoshiro256 scalar_rng(7);
      std::uint64_t expected = 0;
      for (std::uint64_t i = 0; i < n; ++i) expected += gain->sample(scalar_rng);

      Xoshiro256 batch_rng(7);
      EXPECT_EQ(gain->sample_sum(batch_rng, n), expected) << "n=" << n;
      EXPECT_EQ(batch_rng(), scalar_rng()) << "n=" << n;
    }
  }
}

TEST(Names, AreDescriptive) {
  EXPECT_EQ(DeterministicGain(1).name(), "deterministic(1)");
  EXPECT_NE(BernoulliGain(0.3).name().find("bernoulli"), std::string::npos);
  EXPECT_NE(CensoredPoissonGain(1.0, 4).name().find("censored_poisson"),
            std::string::npos);
}

/// Property: sampled moments converge to analytic moments for every
/// distribution family (the simulator's fidelity rests on this).
struct MomentCase {
  const char* label;
  GainPtr gain;
};

class GainMoments : public ::testing::TestWithParam<MomentCase> {};

TEST_P(GainMoments, SampleMeanMatchesAnalytic) {
  const auto& param = GetParam();
  const RunningStats stats = sample_stats(*param.gain, 200000, 99);
  const double tolerance =
      4.0 * std::sqrt(std::max(param.gain->variance(), 1e-12) / 200000.0);
  EXPECT_NEAR(stats.mean(), param.gain->mean(), tolerance) << param.label;
}

TEST_P(GainMoments, SampleVarianceMatchesAnalytic) {
  const auto& param = GetParam();
  const RunningStats stats = sample_stats(*param.gain, 200000, 101);
  const double v = param.gain->variance();
  EXPECT_NEAR(stats.variance(), v, 0.05 * (v + 0.05)) << param.label;
}

TEST_P(GainMoments, SamplesNeverExceedMax) {
  const auto& param = GetParam();
  Xoshiro256 rng(103);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LE(param.gain->sample(rng), param.gain->max_outputs()) << param.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, GainMoments,
    ::testing::Values(
        MomentCase{"bernoulli_stage0", make_bernoulli(0.379)},
        MomentCase{"bernoulli_stage2", make_bernoulli(0.0332)},
        MomentCase{"poisson_stage1", make_censored_poisson(1.92, 16)},
        MomentCase{"poisson_tight_cap", make_censored_poisson(4.0, 5)},
        MomentCase{"deterministic", make_deterministic(2)},
        MomentCase{"geometric",
                   TruncatedGeometricGain::with_mean(1.5, 16)},
        MomentCase{"empirical",
                   std::make_shared<const EmpiricalGain>(
                       std::vector<double>{4.0, 2.0, 1.0, 1.0})}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace ripple::dist
