#include "opt/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "opt/projected_gradient.hpp"

namespace ripple::opt {
namespace {

ConvexProblem box_only(linalg::Vector lo, linalg::Vector hi) {
  ConvexProblem p;
  p.lower_bounds = std::move(lo);
  p.upper_bounds = std::move(hi);
  p.objective = [](const linalg::Vector&) { return 0.0; };
  p.gradient = [](const linalg::Vector& x) { return linalg::zeros(x.size()); };
  return p;
}

TEST(Projection, InsidePointUnchanged) {
  const ConvexProblem p = box_only({0.0, 0.0}, {1.0, 1.0});
  auto projected = project_to_feasible(p, {0.4, 0.6});
  ASSERT_TRUE(projected.ok());
  EXPECT_NEAR(projected.value()[0], 0.4, 1e-10);
  EXPECT_NEAR(projected.value()[1], 0.6, 1e-10);
}

TEST(Projection, ClampsToBox) {
  const ConvexProblem p = box_only({0.0, 0.0}, {1.0, 1.0});
  auto projected = project_to_feasible(p, {2.0, -3.0});
  ASSERT_TRUE(projected.ok());
  EXPECT_NEAR(projected.value()[0], 1.0, 1e-10);
  EXPECT_NEAR(projected.value()[1], 0.0, 1e-10);
}

TEST(Projection, HalfSpaceProjection) {
  ConvexProblem p = box_only({-kInf, -kInf}, {kInf, kInf});
  LinearInequality c;
  c.coefficients = {1.0, 1.0};
  c.rhs = 1.0;
  p.constraints.push_back(c);
  // Project (1, 1): nearest point on x+y <= 1 is (0.5, 0.5).
  auto projected = project_to_feasible(p, {1.0, 1.0});
  ASSERT_TRUE(projected.ok());
  EXPECT_NEAR(projected.value()[0], 0.5, 1e-8);
  EXPECT_NEAR(projected.value()[1], 0.5, 1e-8);
}

TEST(Projection, IntersectionOfHalfSpaceAndBox) {
  ConvexProblem p = box_only({0.0, 0.0}, {kInf, kInf});
  LinearInequality c;
  c.coefficients = {1.0, 1.0};
  c.rhs = 1.0;
  p.constraints.push_back(c);
  // Project (2, -1): Dykstra converges to the true projection (1, 0).
  auto projected = project_to_feasible(p, {2.0, -1.0});
  ASSERT_TRUE(projected.ok());
  EXPECT_NEAR(projected.value()[0], 1.0, 1e-6);
  EXPECT_NEAR(projected.value()[1], 0.0, 1e-6);
}

TEST(Projection, DetectsEmptyFeasibleSet) {
  ConvexProblem p = box_only({0.0}, {1.0});
  LinearInequality c;
  c.coefficients = {1.0};
  c.rhs = -1.0;  // x <= -1 conflicts with x >= 0
  p.constraints.push_back(c);
  ProjectionOptions options;
  options.max_sweeps = 200;
  auto projected = project_to_feasible(p, {0.5}, options);
  EXPECT_FALSE(projected.ok());
}

TEST(ProjectedGradient, MatchesAnalyticQuadratic) {
  // min (x-2)^2 over [0, 1]: optimum 1.
  ConvexProblem p = box_only({0.0}, {1.0});
  p.objective = [](const linalg::Vector& x) { return (x[0] - 2.0) * (x[0] - 2.0); };
  p.gradient = [](const linalg::Vector& x) {
    return linalg::Vector{2.0 * (x[0] - 2.0)};
  };
  auto solved = projected_gradient_minimize(p, {0.2});
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.value().x[0], 1.0, 1e-6);
}

TEST(ProjectedGradient, StartsFromInfeasiblePoint) {
  ConvexProblem p = box_only({0.0, 0.0}, {2.0, 2.0});
  p.objective = [](const linalg::Vector& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] - 1.0) * (x[1] - 1.0);
  };
  p.gradient = [](const linalg::Vector& x) {
    return linalg::Vector{2.0 * (x[0] - 1.0), 2.0 * (x[1] - 1.0)};
  };
  auto solved = projected_gradient_minimize(p, {-10.0, 10.0});
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.value().x[0], 1.0, 1e-5);
  EXPECT_NEAR(solved.value().x[1], 1.0, 1e-5);
}

TEST(ProblemHelpers, MinSlackAndFeasibility) {
  ConvexProblem p = box_only({0.0, 0.0}, {1.0, 1.0});
  LinearInequality c;
  c.coefficients = {1.0, 1.0};
  c.rhs = 1.5;
  p.constraints.push_back(c);

  EXPECT_TRUE(p.is_feasible({0.5, 0.5}));
  EXPECT_NEAR(p.min_slack({0.5, 0.5}), 0.5, 1e-12);
  EXPECT_FALSE(p.is_feasible({0.9, 0.9}));       // violates half-space
  EXPECT_NEAR(p.infeasibility({0.9, 0.9}), 0.3, 1e-12);
  EXPECT_FALSE(p.is_feasible({-0.1, 0.5}));      // violates lower bound
}

TEST(ProblemHelpers, DimensionMismatchThrows) {
  const ConvexProblem p = box_only({0.0, 0.0}, {1.0, 1.0});
  EXPECT_THROW((void)p.is_feasible({0.5}), std::logic_error);
}

}  // namespace
}  // namespace ripple::opt
