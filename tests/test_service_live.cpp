// PipelineService: single-threaded deterministic paths (drain_once
// conservation, backpressure, session lifecycle, shed-newest-first and the
// shed-stream liveness tick) plus the multi-threaded soak the CI TSan job
// runs to validate the lock/atomic discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/gain.hpp"
#include "sdf/pipeline.hpp"
#include "service/service.hpp"

namespace ripple::service {
namespace {

// Same pipeline as the other service tests: floor tau0 = 5, minimal
// budget 60. Synthetic stages give deterministic gain 2 end to end, so every
// executed item yields exactly two sink outputs.
sdf::PipelineSpec make_spec() {
  auto spec = sdf::PipelineBuilder("live")
                  .simd_width(4)
                  .add_node("expand", 8.0, dist::make_deterministic(2))
                  .add_node("filter", 6.0, dist::make_deterministic(1))
                  .add_node("sink", 10.0, nullptr)
                  .build();
  EXPECT_TRUE(spec.ok());
  return spec.value();
}

ServiceConfig base_config() {
  ServiceConfig config;
  config.deadline = 600.0;
  config.initial_tau0 = 20.0;
  return config;
}

std::vector<runtime::Item> make_items(std::size_t n) {
  std::vector<runtime::Item> items;
  for (std::uint64_t i = 0; i < n; ++i) items.emplace_back(i);
  return items;
}

TEST(ServiceLiveTest, DrainOnceConservesEveryAcceptedItem) {
  const sdf::PipelineSpec spec = make_spec();
  PipelineService service(spec, synthetic_stages(spec), base_config());
  const SessionId a = service.open_session();
  const SessionId b = service.open_session();

  std::size_t accepted = 0;
  for (int round = 0; round < 10; ++round) {
    accepted += service.submit(round % 2 == 0 ? a : b, make_items(16)).accepted;
  }
  const std::size_t executed = service.drain_once();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 160u);
  EXPECT_EQ(executed, accepted);
  EXPECT_EQ(stats.executed_items, stats.accepted);
  EXPECT_EQ(stats.submitted,
            stats.accepted + stats.rejected_backpressure + stats.shed);
  EXPECT_EQ(stats.sink_outputs, 2 * stats.executed_items);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.open_sessions, 2u);
  EXPECT_GE(stats.plan_epoch, 1u);
  // Nothing pending: a second drain is a no-op (no new arrivals to tick on).
  EXPECT_EQ(service.drain_once(), 0u);
}

TEST(ServiceLiveTest, BackpressureBoundsTheSessionQueue) {
  const sdf::PipelineSpec spec = make_spec();
  ServiceConfig config = base_config();
  config.session_capacity = 8;
  PipelineService service(spec, synthetic_stages(spec), config);
  const SessionId id = service.open_session();

  const SubmitOutcome first = service.submit(id, make_items(20));
  EXPECT_EQ(first.accepted, 8u);
  EXPECT_EQ(first.rejected_backpressure, 12u);
  EXPECT_EQ(first.shed, 0u);

  // Draining frees the whole queue for the next submit.
  EXPECT_EQ(service.drain_once(), 8u);
  EXPECT_EQ(service.submit(id, make_items(5)).accepted, 5u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_backpressure, 12u);
  EXPECT_EQ(stats.accepted, 13u);
}

TEST(ServiceLiveTest, SessionLifecycle) {
  const sdf::PipelineSpec spec = make_spec();
  PipelineService service(spec, synthetic_stages(spec), base_config());

  EXPECT_THROW(service.submit(42, make_items(1)), std::logic_error);

  const SessionId id = service.open_session();
  EXPECT_EQ(service.submit(id, make_items(3)).accepted, 3u);
  EXPECT_TRUE(service.close_session(id));
  EXPECT_FALSE(service.close_session(id));   // already closed
  EXPECT_FALSE(service.close_session(999));  // never existed
  EXPECT_THROW(service.submit(id, make_items(1)), std::logic_error);
  EXPECT_EQ(service.stats().open_sessions, 0u);

  // Pending items of a closed session still execute.
  EXPECT_EQ(service.drain_once(), 3u);
  EXPECT_EQ(service.stats().executed_items, 3u);
}

TEST(ServiceLiveTest, OverloadShedsNewestSessionsFirst) {
  const sdf::PipelineSpec spec = make_spec();
  ServiceConfig config = base_config();
  // Collapse the virtual clock: every wall-clock gap maps to ~0 cycles, so
  // the observed inter-arrival gaps clamp to epsilon and the estimator
  // decays deterministically toward overload regardless of host timing.
  config.cycles_per_us = 1e-6;
  PipelineService service(spec, synthetic_stages(spec), config);
  const SessionId oldest = service.open_session();
  const SessionId newest = service.open_session();

  // 35 near-simultaneous arrivals: the EWMA decays to 20 * 0.95^35 ~ 3.33,
  // between half the floor (2.5) and the floor (5), so the controller admits
  // exactly one of the two sessions — the oldest.
  EXPECT_EQ(service.submit(oldest, make_items(35)).accepted, 35u);
  EXPECT_EQ(service.drain_once(), 35u);
  ASSERT_TRUE(service.current_plan()->shedding);

  const SubmitOutcome admitted = service.submit(oldest, make_items(10));
  EXPECT_EQ(admitted.accepted, 10u);
  EXPECT_EQ(admitted.shed, 0u);
  const SubmitOutcome rejected = service.submit(newest, make_items(10));
  EXPECT_EQ(rejected.shed, 10u);
  EXPECT_EQ(rejected.accepted, 0u);

  // The next drain sees 20 more epsilon gaps (admitted and shed arrivals
  // both feed the estimator): the EWMA falls below half the floor and the
  // gate closes completely.
  EXPECT_EQ(service.drain_once(), 10u);
  const SubmitOutcome all_shed = service.submit(oldest, make_items(3));
  EXPECT_EQ(all_shed.shed, 3u);

  // Liveness while fully shed: a drain with only shed arrivals still ticks
  // the controller, so the estimator keeps seeing the offered stream and
  // can reopen the gate when the load drops.
  const std::uint64_t ticks_before = service.controller().stats().ticks;
  EXPECT_EQ(service.drain_once(), 0u);
  EXPECT_EQ(service.controller().stats().ticks, ticks_before + 1);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 13u);
  EXPECT_EQ(stats.executed_items, stats.accepted);
  EXPECT_EQ(stats.sink_outputs, 2 * stats.executed_items);
  EXPECT_EQ(stats.submitted, stats.accepted + stats.shed);
}

TEST(ServiceLiveTest, StartStopIsIdempotent) {
  const sdf::PipelineSpec spec = make_spec();
  PipelineService service(spec, synthetic_stages(spec), base_config());
  service.start();
  service.start();  // no-op
  const SessionId id = service.open_session();
  service.submit(id, make_items(8));
  service.stop();   // drains pending items before joining
  service.stop();   // no-op
  EXPECT_EQ(service.stats().executed_items, service.stats().accepted);
  // drain_once is valid again once the worker is stopped.
  service.submit(id, make_items(4));
  EXPECT_EQ(service.drain_once(), 4u);
}

// Pins the teardown semantics documented on PipelineService::submit():
// submitting while stop() tears the worker down — or after it returns —
// never throws and never loses accepted items. Whatever stop()'s final
// drain leaves queued is picked up, exactly once, by the next drain_once().
TEST(ServiceLiveTest, SubmitDuringAndAfterStop) {
  const sdf::PipelineSpec spec = make_spec();
  PipelineService service(spec, synthetic_stages(spec), base_config());
  const SessionId id = service.open_session();
  service.start();

  // Bounded rounds, not a free-running flag loop: stop()'s final drain waits
  // for the queue to empty, and unbounded producers could refill it for as
  // long as the scheduler lets them (a livelock under TSan on one core).
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      for (int round = 0; round < 300; ++round) {
        accepted.fetch_add(service.submit(id, make_items(4)).accepted,
                           std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service.stop();  // races the producers by design
  for (std::thread& producer : producers) producer.join();
  // After stop() submit still succeeds; acceptances queue for a later drain.
  for (int i = 0; i < 8; ++i) {
    accepted.fetch_add(service.submit(id, make_items(4)).accepted,
                       std::memory_order_relaxed);
  }

  const ServiceStats mid = service.stats();
  EXPECT_EQ(mid.accepted, accepted.load());
  EXPECT_LE(mid.executed_items, mid.accepted);

  // Conservation across the race: executed + still-queued == accepted.
  const std::size_t leftovers = service.drain_once();
  const ServiceStats fin = service.stats();
  EXPECT_EQ(fin.executed_items, mid.executed_items + leftovers);
  EXPECT_EQ(fin.executed_items, fin.accepted);
  EXPECT_EQ(fin.sink_outputs, 2 * fin.executed_items);
  EXPECT_EQ(service.drain_once(), 0u);
}

// The multi-threaded soak the CI ThreadSanitizer job runs: concurrent
// producers, session churn, and a stats/plan reader hammering the RCU plan
// pointer while the worker drains and re-plans.
TEST(ServiceLiveTest, MultiThreadedSoak) {
  const sdf::PipelineSpec spec = make_spec();
  PipelineService service(spec, synthetic_stages(spec), base_config());
  service.start();

  constexpr int kProducers = 4;
  constexpr int kRounds = 40;
  constexpr std::size_t kBatch = 8;

  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const ServiceStats stats = service.stats();
      const control::PlanPtr plan = service.current_plan();
      ASSERT_NE(plan, nullptr);
      ASSERT_GE(plan->epoch, 1u);
      ASSERT_LE(stats.accepted, stats.submitted);
      // Quantile reads race the worker's observe_gap on purpose: the window
      // is atomic slots, so TSan validates the estimator's reader contract.
      ASSERT_GE(service.controller().estimator().gap_quantile(0.9), 0.0);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  std::thread churn([&] {
    // Sessions that open, maybe submit once, and close while producers run.
    for (int i = 0; i < 50; ++i) {
      const SessionId id = service.open_session();
      service.submit(id, make_items(2));
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      service.close_session(id);
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const SessionId id = service.open_session();
      for (int round = 0; round < kRounds; ++round) {
        service.submit(id, make_items(kBatch));
        if (round % 4 == p % 4) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      service.close_session(id);
    });
  }

  for (std::thread& producer : producers) producer.join();
  churn.join();
  service.stop();
  stop_reader.store(true);
  reader.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, stats.accepted + stats.rejected_backpressure +
                                 stats.shed);
  // stop() drains everything that was accepted.
  EXPECT_EQ(stats.executed_items, stats.accepted);
  EXPECT_EQ(stats.sink_outputs, 2 * stats.executed_items);
  EXPECT_EQ(stats.open_sessions, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(service.controller().stats().ticks, 1u);
}

TEST(ServiceShardedTest, SessionsSpreadAcrossShardsAndConserveItems) {
  const sdf::PipelineSpec spec = make_spec();
  ServiceConfig config = base_config();
  config.shards = 4;
  PipelineService service(spec, synthetic_stage_factory(spec), config);
  ASSERT_EQ(service.shards(), 4u);

  // Open enough sessions that the splitmix64 placement hits every shard.
  std::vector<SessionId> sessions;
  for (int i = 0; i < 32; ++i) sessions.push_back(service.open_session());
  bool hit[4] = {};
  for (const SessionId id : sessions) hit[service.shard_of(id)] = true;
  EXPECT_TRUE(hit[0] && hit[1] && hit[2] && hit[3]);

  std::size_t accepted = 0;
  for (const SessionId id : sessions) {
    accepted += service.submit(id, make_items(8)).accepted;
  }
  EXPECT_EQ(service.drain_once(), accepted);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 32u * 8u);
  EXPECT_EQ(stats.executed_items, stats.accepted);
  EXPECT_EQ(stats.sink_outputs, 2 * stats.executed_items);
  EXPECT_EQ(stats.open_sessions, 32u);

  // Per-shard counters partition the global ones.
  std::size_t shard_items = 0;
  std::size_t shard_sessions = 0;
  for (std::size_t s = 0; s < service.shards(); ++s) {
    const ShardStats shard = service.shard_stats(s);
    EXPECT_EQ(shard.shard, s);
    EXPECT_GE(shard.plan_epoch, 1u);
    shard_items += shard.executed_items;
    shard_sessions += shard.open_sessions;
  }
  EXPECT_EQ(shard_items, stats.executed_items);
  EXPECT_EQ(shard_sessions, 32u);
}

TEST(ServiceShardedTest, ShardOfIsStableAndInRange) {
  const sdf::PipelineSpec spec = make_spec();
  ServiceConfig config = base_config();
  config.shards = 4;
  PipelineService service(spec, synthetic_stage_factory(spec), config);
  for (SessionId id = 1; id <= 1000; ++id) {
    const std::size_t shard = service.shard_of(id);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(service.shard_of(id), shard);  // placement is pure
  }
}

// Multi-shard version of the TSan soak: four shard workers, concurrent
// producers spread across shards by session hash, session churn, and a
// reader polling global and per-shard stats. Item conservation must hold
// globally across all shard queues.
TEST(ServiceShardedTest, MultiShardSoakConservesItems) {
  const sdf::PipelineSpec spec = make_spec();
  ServiceConfig config = base_config();
  config.shards = 4;
  PipelineService service(spec, synthetic_stage_factory(spec), config);
  service.start();

  constexpr int kProducers = 4;
  constexpr int kRounds = 40;
  constexpr std::size_t kBatch = 8;

  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const ServiceStats stats = service.stats();
      ASSERT_LE(stats.accepted, stats.submitted);
      for (std::size_t s = 0; s < service.shards(); ++s) {
        const control::PlanPtr plan = service.plan(s);
        ASSERT_NE(plan, nullptr);
        ASSERT_GE(plan->epoch, 1u);
        (void)service.shard_stats(s);
        // Races each shard worker's observe_gap; safe by the atomic-slot
        // window contract (TSan-checked here).
        ASSERT_GE(service.controller(s).estimator().gap_quantile(0.5), 0.0);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  std::thread churn([&] {
    for (int i = 0; i < 50; ++i) {
      const SessionId id = service.open_session();
      service.submit(id, make_items(2));
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      service.close_session(id);
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Two sessions per producer raises the odds every shard sees load.
      const SessionId a = service.open_session();
      const SessionId b = service.open_session();
      for (int round = 0; round < kRounds; ++round) {
        service.submit(round % 2 == 0 ? a : b, make_items(kBatch));
        if (round % 4 == p % 4) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      service.close_session(a);
      service.close_session(b);
    });
  }

  for (std::thread& producer : producers) producer.join();
  churn.join();
  service.stop();
  stop_reader.store(true);
  reader.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, stats.accepted + stats.rejected_backpressure +
                                 stats.shed);
  EXPECT_EQ(stats.executed_items, stats.accepted);
  EXPECT_EQ(stats.sink_outputs, 2 * stats.executed_items);
  EXPECT_EQ(stats.open_sessions, 0u);

  std::size_t shard_items = 0;
  for (std::size_t s = 0; s < service.shards(); ++s) {
    shard_items += service.shard_stats(s).executed_items;
  }
  EXPECT_EQ(shard_items, stats.executed_items);
}

// Deterministic parity: the same submission sequence drained through the
// task-parallel executor (exec_threads = 4) must produce exactly the stats
// the sequential engine produces. Single shard, single driving thread, so
// any divergence is the parallel engine's fault, not scheduling noise.
TEST(ServiceParallelTest, DrainOnceMatchesSequentialEngine) {
  const sdf::PipelineSpec spec = make_spec();
  ServiceStats got[2];
  for (int variant = 0; variant < 2; ++variant) {
    ServiceConfig config = base_config();
    config.exec_threads = variant == 0 ? 1 : 4;
    PipelineService service(spec, synthetic_stages(spec), config);
    const SessionId a = service.open_session();
    const SessionId b = service.open_session();
    for (int round = 0; round < 10; ++round) {
      service.submit(round % 2 == 0 ? a : b, make_items(16));
    }
    service.drain_once();
    got[variant] = service.stats();
  }
  EXPECT_EQ(got[0].submitted, got[1].submitted);
  EXPECT_EQ(got[0].accepted, got[1].accepted);
  EXPECT_EQ(got[0].executed_items, got[1].executed_items);
  EXPECT_EQ(got[0].sink_outputs, got[1].sink_outputs);
  EXPECT_EQ(got[0].batches, got[1].batches);
}

// The cross-product soak the CI TSan job runs: two shard workers, each
// driving a four-thread task-parallel executor (committer + three pool
// workers), with concurrent producers and a stats reader. Exercises the
// work-stealing deques and the commit protocol under real contention; item
// conservation must hold globally.
TEST(ServiceParallelTest, ShardedParallelExecutorSoakConservesItems) {
  const sdf::PipelineSpec spec = make_spec();
  ServiceConfig config = base_config();
  config.shards = 2;
  config.exec_threads = 4;
  PipelineService service(spec, synthetic_stage_factory(spec), config);
  service.start();

  constexpr int kProducers = 4;
  constexpr int kRounds = 40;
  constexpr std::size_t kBatch = 8;

  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const ServiceStats stats = service.stats();
      ASSERT_LE(stats.accepted, stats.submitted);
      for (std::size_t s = 0; s < service.shards(); ++s) {
        (void)service.shard_stats(s);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const SessionId a = service.open_session();
      const SessionId b = service.open_session();
      for (int round = 0; round < kRounds; ++round) {
        service.submit(round % 2 == 0 ? a : b, make_items(kBatch));
        if (round % 4 == p % 4) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      service.close_session(a);
      service.close_session(b);
    });
  }

  for (std::thread& producer : producers) producer.join();
  service.stop();
  stop_reader.store(true);
  reader.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted,
            stats.accepted + stats.rejected_backpressure + stats.shed);
  EXPECT_EQ(stats.executed_items, stats.accepted);
  EXPECT_EQ(stats.sink_outputs, 2 * stats.executed_items);
  EXPECT_EQ(stats.open_sessions, 0u);

  std::size_t shard_items = 0;
  for (std::size_t s = 0; s < service.shards(); ++s) {
    shard_items += service.shard_stats(s).executed_items;
  }
  EXPECT_EQ(shard_items, stats.executed_items);
}

TEST(ServiceLiveTest, RejectsMalformedConfig) {
  const sdf::PipelineSpec spec = make_spec();
  ServiceConfig no_deadline = base_config();
  no_deadline.deadline = 0.0;
  EXPECT_THROW(PipelineService(spec, synthetic_stages(spec), no_deadline),
               std::logic_error);

  ServiceConfig tight = base_config();
  tight.deadline = 50.0;  // below the minimal budget of 60
  EXPECT_THROW(PipelineService(spec, synthetic_stages(spec), tight),
               std::logic_error);

  ServiceConfig no_capacity = base_config();
  no_capacity.session_capacity = 0;
  EXPECT_THROW(PipelineService(spec, synthetic_stages(spec), no_capacity),
               std::logic_error);

  // Stage arity must match the pipeline.
  EXPECT_THROW(PipelineService(spec, std::vector<runtime::StageFn>{},
                               base_config()),
               std::logic_error);

  // Multi-shard construction needs a factory: stateful stages cannot be
  // shared across shard workers.
  ServiceConfig sharded = base_config();
  sharded.shards = 2;
  EXPECT_THROW(PipelineService(spec, synthetic_stages(spec), sharded),
               std::logic_error);

  ServiceConfig wide = base_config();
  wide.exec_threads = 257;  // above the sanity cap (0 = hardware concurrency)
  EXPECT_THROW(PipelineService(spec, synthetic_stages(spec), wide),
               std::logic_error);
}

}  // namespace
}  // namespace ripple::service
