#include "util/log.hpp"

#include <gtest/gtest.h>

namespace ripple::util {
namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet unless a tool opts in.
  LevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, SetAndGetRoundTrip) {
  LevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST(Log, ParseUnknownFallsBackToWarn) {
  EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::kWarn);
}

TEST(Log, SuppressedStatementsDoNotEvaluate) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "costly";
  };
  RIPPLE_LOG(LogLevel::kDebug) << expensive();
  RIPPLE_LOG(LogLevel::kInfo) << expensive();
  EXPECT_EQ(evaluations, 0);  // short-circuited below the threshold
}

TEST(Log, EnabledStatementsEvaluate) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);  // emit() still runs; kOff only gates below
  int evaluations = 0;
  set_log_level(LogLevel::kDebug);
  RIPPLE_LOG(LogLevel::kInfo) << [&] {
    ++evaluations;
    return 1;
  }();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, OffSuppressesEverything) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  RIPPLE_LOG(LogLevel::kError) << [&] {
    ++evaluations;
    return 1;
  }();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace ripple::util
