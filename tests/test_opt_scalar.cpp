#include "opt/scalar.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ripple::opt {
namespace {

TEST(GoldenSection, QuadraticMinimum) {
  auto result = golden_section_minimize([](double x) { return (x - 3.0) * (x - 3.0); },
                                        0.0, 10.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 3.0, 1e-7);
  EXPECT_NEAR(result.value, 0.0, 1e-12);
}

TEST(GoldenSection, MinimumAtBoundary) {
  auto result = golden_section_minimize([](double x) { return x; }, 2.0, 5.0);
  EXPECT_NEAR(result.x, 2.0, 1e-7);
}

TEST(GoldenSection, DegenerateInterval) {
  auto result = golden_section_minimize([](double x) { return x * x; }, 4.0, 4.0);
  EXPECT_NEAR(result.x, 4.0, 1e-12);
}

TEST(GoldenSection, CountsEvaluations) {
  int calls = 0;
  auto result = golden_section_minimize(
      [&](double x) {
        ++calls;
        return x * x;
      },
      -1.0, 1.0);
  EXPECT_EQ(result.evaluations, calls);
}

TEST(Brent, QuadraticExact) {
  auto result = brent_minimize([](double x) { return (x - 1.5) * (x - 1.5) + 2.0; },
                               -10.0, 10.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 1.5, 1e-7);
  EXPECT_NEAR(result.value, 2.0, 1e-12);
}

TEST(Brent, NonPolynomialUnimodal) {
  // f(x) = x - log(x), minimum at x = 1.
  auto result = brent_minimize([](double x) { return x - std::log(x); }, 0.1, 10.0);
  EXPECT_NEAR(result.x, 1.0, 1e-6);
}

TEST(Brent, FasterThanGoldenOnSmooth) {
  auto f = [](double x) { return std::cosh(x - 2.0); };
  auto brent = brent_minimize(f, -5.0, 8.0, 1e-10);
  auto golden = golden_section_minimize(f, -5.0, 8.0, 1e-10);
  EXPECT_NEAR(brent.x, 2.0, 1e-6);
  EXPECT_NEAR(golden.x, 2.0, 1e-6);
  EXPECT_LT(brent.evaluations, golden.evaluations);
}

TEST(Brent, ActiveFractionShapedObjective) {
  // The enforced-waits per-node term t/x restricted to a budget line is the
  // 1-D slice our solvers see; minimum of t0/x + t1/(B - x) over x.
  const double t0 = 287.0;
  const double t1 = 2753.0;
  const double budget = 10000.0;
  auto result = brent_minimize(
      [&](double x) { return t0 / x + t1 / (budget - x); }, 1.0, budget - 1.0);
  // Analytic optimum: x = B * sqrt(t0) / (sqrt(t0) + sqrt(t1)).
  const double expected =
      budget * std::sqrt(t0) / (std::sqrt(t0) + std::sqrt(t1));
  EXPECT_NEAR(result.x, expected, 1e-4);
}

TEST(ScalarBoth, IntervalOrderingEnforced) {
  EXPECT_THROW(
      (void)golden_section_minimize([](double x) { return x; }, 1.0, 0.0),
      std::logic_error);
  EXPECT_THROW((void)brent_minimize([](double x) { return x; }, 1.0, 0.0),
               std::logic_error);
}

class UnimodalRecovery : public ::testing::TestWithParam<double> {};

TEST_P(UnimodalRecovery, BothMethodsFindShiftedMinimum) {
  const double shift = GetParam();
  auto f = [shift](double x) { return (x - shift) * (x - shift) * (1.0 + 0.1 * std::fabs(x - shift)); };
  auto golden = golden_section_minimize(f, shift - 20.0, shift + 20.0);
  auto brent = brent_minimize(f, shift - 20.0, shift + 20.0);
  EXPECT_NEAR(golden.x, shift, 1e-6);
  EXPECT_NEAR(brent.x, shift, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Shifts, UnimodalRecovery,
                         ::testing::Values(-100.0, -1.0, 0.0, 0.5, 7.0, 1234.5));

}  // namespace
}  // namespace ripple::opt
