#include <gtest/gtest.h>

#include <cmath>

#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "queueing/bulk_queue.hpp"
#include "queueing/pmf.hpp"
#include "queueing/predict.hpp"

namespace ripple::queueing {
namespace {

double pmf_total(const Pmf& pmf) {
  double total = 0.0;
  for (double p : pmf) total += p;
  return total;
}

// ------------------------------------------------------------------------ Pmf

TEST(Pmf, DeltaIsPointMass) {
  const Pmf pmf = delta_pmf(3);
  EXPECT_EQ(pmf.size(), 4u);
  EXPECT_DOUBLE_EQ(pmf[3], 1.0);
  EXPECT_DOUBLE_EQ(pmf_mean(pmf), 3.0);
  EXPECT_DOUBLE_EQ(pmf_variance(pmf), 0.0);
}

TEST(Pmf, PoissonMomentsMatch) {
  for (double lambda : {0.5, 1.92, 10.0, 60.0}) {
    const Pmf pmf = poisson_pmf(lambda);
    EXPECT_NEAR(pmf_total(pmf), 1.0, 1e-12) << lambda;
    EXPECT_NEAR(pmf_mean(pmf), lambda, 1e-6) << lambda;
    EXPECT_NEAR(pmf_variance(pmf), lambda, 1e-4) << lambda;
  }
}

TEST(Pmf, PoissonZeroIsDelta) {
  EXPECT_EQ(poisson_pmf(0.0), delta_pmf(0));
}

TEST(Pmf, GainPmfBernoulli) {
  const dist::BernoulliGain gain(0.379);
  const Pmf pmf = gain_pmf(gain);
  ASSERT_EQ(pmf.size(), 2u);
  EXPECT_NEAR(pmf[1], 0.379, 1e-12);
  EXPECT_NEAR(pmf[0], 0.621, 1e-12);
}

TEST(Pmf, GainPmfCensoredPoissonMatchesMoments) {
  const dist::CensoredPoissonGain gain(1.92, 16);
  const Pmf pmf = gain_pmf(gain);
  EXPECT_EQ(pmf.size(), 17u);
  EXPECT_NEAR(pmf_total(pmf), 1.0, 1e-12);
  EXPECT_NEAR(pmf_mean(pmf), gain.mean(), 1e-9);
  EXPECT_NEAR(pmf_variance(pmf), gain.variance(), 1e-6);
}

TEST(Pmf, GainPmfDeterministic) {
  const dist::DeterministicGain gain(2);
  EXPECT_EQ(gain_pmf(gain), delta_pmf(2));
}

TEST(Pmf, ConvolveMatchesHandComputation) {
  // (0.5, 0.5) + (0.5, 0.5) = (0.25, 0.5, 0.25)
  const Pmf coin{0.5, 0.5};
  const Pmf two = convolve(coin, coin);
  ASSERT_EQ(two.size(), 3u);
  EXPECT_DOUBLE_EQ(two[0], 0.25);
  EXPECT_DOUBLE_EQ(two[1], 0.5);
  EXPECT_DOUBLE_EQ(two[2], 0.25);
}

TEST(Pmf, ConvolvePowerAdditiveMoments) {
  const dist::CensoredPoissonGain gain(1.5, 12);
  const Pmf one = gain_pmf(gain);
  const Pmf fifty = convolve_power(one, 50);
  EXPECT_NEAR(pmf_mean(fifty), 50.0 * pmf_mean(one), 1e-6);
  EXPECT_NEAR(pmf_variance(fifty), 50.0 * pmf_variance(one), 1e-3);
  EXPECT_NEAR(pmf_total(fifty), 1.0, 1e-9);
}

TEST(Pmf, ConvolvePowerZeroIsDelta) {
  EXPECT_EQ(convolve_power({0.5, 0.5}, 0), delta_pmf(0));
}

TEST(Pmf, FractionalCountMean) {
  const Pmf pmf = fractional_count_pmf(2.3);
  EXPECT_NEAR(pmf_mean(pmf), 2.3, 1e-12);
  EXPECT_NEAR(pmf[2], 0.7, 1e-12);
  EXPECT_NEAR(pmf[3], 0.3, 1e-12);
  EXPECT_EQ(fractional_count_pmf(4.0), delta_pmf(4));
}

TEST(Pmf, QuantileSteps) {
  const Pmf pmf{0.25, 0.5, 0.25};
  EXPECT_EQ(pmf_quantile(pmf, 0.2), 0u);
  EXPECT_EQ(pmf_quantile(pmf, 0.5), 1u);
  EXPECT_EQ(pmf_quantile(pmf, 0.8), 2u);
  EXPECT_EQ(pmf_quantile(pmf, 1.0), 2u);
}

TEST(Pmf, TruncateTailPreservesMass) {
  Pmf pmf{0.9, 0.0999999, 1e-8, 1e-15, 1e-16};
  const Pmf trimmed = truncate_tail(pmf, 1e-10);
  EXPECT_LT(trimmed.size(), pmf.size());
  EXPECT_NEAR(pmf_total(trimmed), pmf_total(pmf), 1e-15);
}

// ------------------------------------------------------------------ BulkQueue

TEST(BulkQueue, DeterministicFullLoadStable) {
  BulkQueueConfig config;
  config.batch_size = 4;
  config.arrivals_per_interval = delta_pmf(4);  // exactly v per interval
  auto analysis = analyze_bulk_queue(config);
  ASSERT_TRUE(analysis.ok());
  EXPECT_DOUBLE_EQ(analysis.value().utilization, 1.0);
  EXPECT_EQ(analysis.value().queue_quantile(0.999), 4u);
}

TEST(BulkQueue, DeterministicOverloadRejected) {
  BulkQueueConfig config;
  config.batch_size = 4;
  config.arrivals_per_interval = delta_pmf(5);
  auto analysis = analyze_bulk_queue(config);
  ASSERT_FALSE(analysis.ok());
  EXPECT_EQ(analysis.error().code, "unstable");
}

TEST(BulkQueue, StochasticOverloadRejected) {
  BulkQueueConfig config;
  config.batch_size = 2;
  config.arrivals_per_interval = poisson_pmf(2.5);
  auto analysis = analyze_bulk_queue(config);
  ASSERT_FALSE(analysis.ok());
  EXPECT_EQ(analysis.error().code, "unstable");
}

TEST(BulkQueue, CriticalLoadRejected) {
  BulkQueueConfig config;
  config.batch_size = 100;
  config.arrivals_per_interval = poisson_pmf(99.95);
  auto analysis = analyze_bulk_queue(config);
  ASSERT_FALSE(analysis.ok());
  EXPECT_EQ(analysis.error().code, "critical");
}

TEST(BulkQueue, LowLoadQueueStaysSmall) {
  BulkQueueConfig config;
  config.batch_size = 128;
  config.arrivals_per_interval = poisson_pmf(16.0);  // 12.5% load
  auto analysis = analyze_bulk_queue(config);
  ASSERT_TRUE(analysis.ok());
  // At 12.5% load everything queued is consumed every firing: queue is just
  // the fresh arrivals, so quantiles track the Poisson itself.
  EXPECT_NEAR(analysis.value().mean_queue, 16.0, 0.1);
  EXPECT_LE(analysis.value().queue_quantile(0.9999), 40u);
}

TEST(BulkQueue, MatchesMonteCarloQuantiles) {
  // Cross-check the embedded-chain solution against direct simulation of
  // the recursion q' = max(q - v, 0) + A.
  BulkQueueConfig config;
  config.batch_size = 8;
  config.arrivals_per_interval = poisson_pmf(6.0);  // 75% load
  auto analysis = analyze_bulk_queue(config);
  ASSERT_TRUE(analysis.ok());

  dist::Xoshiro256 rng(777);
  const Pmf& a = config.arrivals_per_interval;
  std::vector<double> cdf(a.size());
  double acc = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    acc += a[k];
    cdf[k] = acc;
  }
  auto sample_a = [&] {
    const double u = rng.uniform01();
    for (std::size_t k = 0; k < cdf.size(); ++k) {
      if (u < cdf[k]) return k;
    }
    return cdf.size() - 1;
  };
  std::uint64_t q = 0;
  std::vector<std::uint64_t> histogram(1024, 0);
  constexpr int kSteps = 2'000'000;
  for (int s = 0; s < kSteps; ++s) {
    q = (q > 8 ? q - 8 : 0) + sample_a();
    ++histogram[std::min<std::uint64_t>(q, histogram.size() - 1)];
  }
  // Compare P(queue <= k) at several k.
  double chain_cum = 0.0;
  double mc_cum = 0.0;
  for (std::size_t k = 0; k < 40; ++k) {
    chain_cum += k < analysis.value().stationary.size()
                     ? analysis.value().stationary[k]
                     : 0.0;
    mc_cum += static_cast<double>(histogram[k]) / kSteps;
    EXPECT_NEAR(chain_cum, mc_cum, 0.01) << "k=" << k;
  }
}

TEST(BulkQueue, HigherVarianceLongerQueues) {
  // At the same mean load, batchier arrivals produce longer queues.
  BulkQueueConfig smooth;
  smooth.batch_size = 16;
  smooth.arrivals_per_interval = poisson_pmf(12.0);
  BulkQueueConfig batchy;
  batchy.batch_size = 16;
  // Same mean (12), arrivals in clumps of 4: variance x4.
  Pmf clump = delta_pmf(0);
  clump = convolve_power(mix(delta_pmf(4), delta_pmf(0), 0.5), 6);
  batchy.arrivals_per_interval = clump;
  auto a = analyze_bulk_queue(smooth);
  auto b = analyze_bulk_queue(batchy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(pmf_mean(batchy.arrivals_per_interval), 12.0, 1e-9);
  EXPECT_GT(b.value().queue_quantile(0.9999), a.value().queue_quantile(0.9999));
}

TEST(BulkQueue, FiringsToDrainQuantile) {
  BulkQueueConfig config;
  config.batch_size = 4;
  config.arrivals_per_interval = delta_pmf(3);
  auto analysis = analyze_bulk_queue(config);
  ASSERT_TRUE(analysis.ok());
  // Queue is always 3: an arriving item drains within ceil(4/4) = 1 firing.
  EXPECT_DOUBLE_EQ(analysis.value().firings_to_drain_quantile(0.999, 4), 1.0);
}

// -------------------------------------------------------------------- Predict

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

std::vector<Cycles> headroom_intervals(double tau0, double deadline) {
  core::EnforcedWaitsStrategy strategy(
      blast_pipeline(), core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  // Solve with ~10% headroom so no constraint sits exactly at criticality.
  return strategy.solve(0.9 * tau0, 0.9 * deadline).value().firing_intervals;
}

TEST(Predict, ValidatesInputs) {
  const auto pipeline = blast_pipeline();
  EXPECT_THROW(
      (void)predict_b(pipeline, {1.0}, 10.0, 1e-4, ArrivalModel::kPoisson),
      std::logic_error);
  const auto x = headroom_intervals(20.0, 5e4);
  EXPECT_THROW((void)predict_b(pipeline, x, 20.0, 0.0), std::logic_error);
}

TEST(Predict, PoissonModelProducesSaneB) {
  const auto pipeline = blast_pipeline();
  const auto x = headroom_intervals(20.0, 5e4);
  auto prediction = predict_b(pipeline, x, 20.0, 1e-4, ArrivalModel::kPoisson);
  ASSERT_TRUE(prediction.ok()) << prediction.error().message;
  ASSERT_EQ(prediction.value().b.size(), 4u);
  for (double b : prediction.value().b) {
    EXPECT_GE(b, 1.0);
    EXPECT_LE(b, 16.0);
  }
  // Node 0 is deterministic at sub-critical load: b = 1 exactly.
  EXPECT_DOUBLE_EQ(prediction.value().b[0], 1.0);
}

TEST(Predict, BatchModelAtLeastPoisson) {
  // Batch arrivals have strictly more variance than the Poisson
  // approximation at the same rate, so the predicted b dominate.
  const auto pipeline = blast_pipeline();
  const auto x = headroom_intervals(20.0, 5e4);
  auto poisson = predict_b(pipeline, x, 20.0, 1e-4, ArrivalModel::kPoisson);
  auto batch = predict_b(pipeline, x, 20.0, 1e-4, ArrivalModel::kBatch);
  ASSERT_TRUE(poisson.ok());
  ASSERT_TRUE(batch.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(batch.value().b[i], poisson.value().b[i]) << i;
  }
}

TEST(Predict, SmallerEpsilonRaisesB) {
  const auto pipeline = blast_pipeline();
  const auto x = headroom_intervals(20.0, 1e5);
  auto loose = predict_b(pipeline, x, 20.0, 1e-2, ArrivalModel::kBatch);
  auto tight = predict_b(pipeline, x, 20.0, 1e-6, ArrivalModel::kBatch);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  double loose_sum = 0.0;
  double tight_sum = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    loose_sum += loose.value().b[i];
    tight_sum += tight.value().b[i];
  }
  EXPECT_GE(tight_sum, loose_sum);
}

TEST(Predict, PredictedLatencyIsBudget) {
  const auto pipeline = blast_pipeline();
  const auto x = headroom_intervals(20.0, 5e4);
  auto prediction = predict_b(pipeline, x, 20.0, 1e-4, ArrivalModel::kPoisson);
  ASSERT_TRUE(prediction.ok());
  double budget = 0.0;
  for (std::size_t i = 0; i < 4; ++i) budget += prediction.value().b[i] * x[i];
  EXPECT_NEAR(prediction.value().predicted_worst_latency, budget, 1e-9);
}

TEST(Predict, CriticalScheduleRefused) {
  // Solving *without* headroom leaves node 0 exactly at the rate constraint:
  // the stochastic models must refuse rather than fabricate a b.
  const auto pipeline = blast_pipeline();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  const auto x = strategy.solve(20.0, 1.85e5).value().firing_intervals;
  auto prediction = predict_b(pipeline, x, 20.0, 1e-4, ArrivalModel::kPoisson);
  // Node 0 is deterministic (OK at full load), but node 1 sits on the chain
  // constraint at utilization 1 under the Poisson model.
  ASSERT_FALSE(prediction.ok());
  EXPECT_TRUE(prediction.error().code == "critical" ||
              prediction.error().code == "unstable")
      << prediction.error().code;
}

TEST(Predict, ZeroGainUpstreamGivesIdleNode) {
  auto spec = sdf::PipelineBuilder("dead-end")
                  .simd_width(8)
                  .add_node("a", 10.0, dist::make_bernoulli(0.0))
                  .add_node("b", 10.0, dist::make_deterministic(1))
                  .build();
  const auto pipeline = std::move(spec).take();
  auto prediction =
      predict_b(pipeline, {80.0, 80.0}, 10.0, 1e-4, ArrivalModel::kBatch);
  ASSERT_TRUE(prediction.ok());
  EXPECT_DOUBLE_EQ(prediction.value().b[1], 1.0);
  EXPECT_DOUBLE_EQ(prediction.value().utilization[1], 0.0);
}

}  // namespace
}  // namespace ripple::queueing
