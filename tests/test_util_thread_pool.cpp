#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ripple::util {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForSingleThreadedPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("unlucky");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForGrainCoversAllIndicesOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1003;  // deliberately not a grain multiple
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{4}, std::size_t{64},
                                  std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); },
                      grain);
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ThreadPool, ParallelForGrainPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          256,
          [&](std::size_t i) {
            if (i == 200) throw std::runtime_error("unlucky");
          },
          16),
      std::runtime_error);
  // The pool must remain usable after a failed chunked run.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 4);
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  long long total = 0;
  for (auto& f : futures) total += f.get();
  // sum of squares 0..199
  long long expected = 0;
  for (int i = 0; i < 200; ++i) expected += static_cast<long long>(i) * i;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, SubmitAfterDestructionDetected) {
  // Construct and destroy; a new pool must still work (regression guard for
  // stop-flag handling).
  {
    ThreadPool pool(2);
    (void)pool;
  }
  ThreadPool pool2(2);
  EXPECT_EQ(pool2.submit([] { return 1; }).get(), 1);
}

}  // namespace
}  // namespace ripple::util
