#include "sim/enforced_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "sdf/analysis.hpp"

namespace ripple::sim {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

/// A small deterministic pipeline: 2 nodes, gain exactly 1, width 4.
sdf::PipelineSpec deterministic_pipeline() {
  auto spec = sdf::PipelineBuilder("det")
                  .simd_width(4)
                  .add_node("a", 10.0, dist::make_deterministic(1))
                  .add_node("b", 20.0, dist::make_deterministic(1))
                  .build();
  return std::move(spec).take();
}

std::vector<Cycles> solved_intervals(const sdf::PipelineSpec& pipeline,
                                     const std::vector<double>& b, double tau0,
                                     double deadline) {
  core::EnforcedWaitsStrategy strategy(pipeline, core::EnforcedWaitsConfig{b});
  auto solved = strategy.solve(tau0, deadline);
  return solved.value().firing_intervals;
}

TEST(EnforcedSim, ValidatesInputs) {
  const auto pipeline = deterministic_pipeline();
  arrivals::FixedRateArrivals arrival_process(10.0);
  EnforcedSimConfig config;
  // Wrong interval count.
  EXPECT_THROW((void)simulate_enforced_waits(pipeline, {10.0}, arrival_process,
                                             config),
               std::logic_error);
  // Interval below service time.
  EXPECT_THROW((void)simulate_enforced_waits(pipeline, {5.0, 20.0},
                                             arrival_process, config),
               std::logic_error);
}

TEST(EnforcedSim, AllItemsTraverseDeterministicPipeline) {
  const auto pipeline = deterministic_pipeline();
  arrivals::FixedRateArrivals arrival_process(10.0);
  EnforcedSimConfig config;
  config.input_count = 1000;
  const auto metrics =
      simulate_enforced_waits(pipeline, {40.0, 40.0}, arrival_process, config);
  EXPECT_EQ(metrics.inputs_arrived, 1000u);
  EXPECT_EQ(metrics.sink_outputs, 1000u);  // gain 1 everywhere
  EXPECT_EQ(metrics.nodes[0].items_consumed, 1000u);
  EXPECT_EQ(metrics.nodes[1].items_consumed, 1000u);
  EXPECT_EQ(metrics.inputs_missed + metrics.inputs_on_time, 1000u);
}

TEST(EnforcedSim, DeterministicForSeed) {
  const auto pipeline = blast_pipeline();
  const auto intervals =
      solved_intervals(pipeline, blast::paper_calibrated_b(), 20.0, 1.5e5);
  EnforcedSimConfig config;
  config.input_count = 5000;
  config.deadline = 1.5e5;
  config.seed = 777;
  arrivals::FixedRateArrivals a1(20.0);
  arrivals::FixedRateArrivals a2(20.0);
  const auto m1 = simulate_enforced_waits(pipeline, intervals, a1, config);
  const auto m2 = simulate_enforced_waits(pipeline, intervals, a2, config);
  EXPECT_EQ(m1.sink_outputs, m2.sink_outputs);
  EXPECT_EQ(m1.inputs_missed, m2.inputs_missed);
  EXPECT_DOUBLE_EQ(m1.makespan, m2.makespan);
  EXPECT_DOUBLE_EQ(m1.output_latency.mean(), m2.output_latency.mean());
}

TEST(EnforcedSim, DifferentSeedsDiffer) {
  const auto pipeline = blast_pipeline();
  const auto intervals =
      solved_intervals(pipeline, blast::paper_calibrated_b(), 20.0, 1.5e5);
  EnforcedSimConfig c1;
  c1.input_count = 5000;
  c1.seed = 1;
  EnforcedSimConfig c2 = c1;
  c2.seed = 2;
  arrivals::FixedRateArrivals a1(20.0);
  arrivals::FixedRateArrivals a2(20.0);
  const auto m1 = simulate_enforced_waits(pipeline, intervals, a1, c1);
  const auto m2 = simulate_enforced_waits(pipeline, intervals, a2, c2);
  EXPECT_NE(m1.sink_outputs, m2.sink_outputs);  // stochastic gains resampled
}

TEST(EnforcedSim, MeasuredActiveFractionMatchesPrediction) {
  // With empty firings charged, each node is active exactly t_i out of every
  // x_i cycles, so the measured fraction must track (1/N) sum t_i/x_i.
  const auto pipeline = blast_pipeline();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  for (double tau0 : {10.0, 50.0}) {
    auto solved = strategy.solve(tau0, 1.85e5);
    ASSERT_TRUE(solved.ok());
    arrivals::FixedRateArrivals arrival_process(tau0);
    EnforcedSimConfig config;
    config.input_count = 20000;
    config.deadline = 1.85e5;
    config.seed = 99;
    const auto metrics = simulate_enforced_waits(
        pipeline, solved.value().firing_intervals, arrival_process, config);
    EXPECT_NEAR(metrics.active_fraction(),
                solved.value().predicted_active_fraction,
                0.05 * solved.value().predicted_active_fraction + 0.005)
        << "tau0 " << tau0;
  }
}

TEST(EnforcedSim, NoMissesWithCalibratedParameters) {
  // The paper's headline calibration claim at a mid-grid point.
  const auto pipeline = blast_pipeline();
  const auto intervals =
      solved_intervals(pipeline, blast::paper_calibrated_b(), 10.0, 1.85e5);
  arrivals::FixedRateArrivals arrival_process(10.0);
  EnforcedSimConfig config;
  config.input_count = 50000;
  config.deadline = 1.85e5;
  config.seed = 4242;
  const auto metrics =
      simulate_enforced_waits(pipeline, intervals, arrival_process, config);
  EXPECT_EQ(metrics.inputs_missed, 0u);
}

TEST(EnforcedSim, TightDeadlineProducesMisses) {
  // Run the same schedule but judge it against an impossible deadline.
  const auto pipeline = blast_pipeline();
  const auto intervals =
      solved_intervals(pipeline, blast::paper_calibrated_b(), 10.0, 1.85e5);
  arrivals::FixedRateArrivals arrival_process(10.0);
  EnforcedSimConfig config;
  config.input_count = 5000;
  config.deadline = 5000.0;  // below even one pass through the pipeline
  config.seed = 7;
  const auto metrics =
      simulate_enforced_waits(pipeline, intervals, arrival_process, config);
  EXPECT_GT(metrics.inputs_missed, 0u);
  // Only ~2.4% of inputs (total gain into the sink) produce any output at
  // all; essentially all of those must be late against this deadline.
  const double producing_fraction = pipeline.total_gain_into(3);
  EXPECT_GT(metrics.miss_fraction(), 0.6 * producing_fraction);
}

TEST(EnforcedSim, LatencyAtLeastServiceChain) {
  // Any output must spend at least sum_i t_i in service.
  const auto pipeline = blast_pipeline();
  const auto intervals =
      solved_intervals(pipeline, blast::paper_calibrated_b(), 20.0, 1e5);
  arrivals::FixedRateArrivals arrival_process(20.0);
  EnforcedSimConfig config;
  config.input_count = 10000;
  config.seed = 3;
  const auto metrics =
      simulate_enforced_waits(pipeline, intervals, arrival_process, config);
  ASSERT_GT(metrics.output_latency.count(), 0u);
  Cycles min_service = 0.0;
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    min_service += pipeline.service_time(i);
  }
  EXPECT_GE(metrics.output_latency.min(), min_service);
}

TEST(EnforcedSim, VacationAccountingLowersActiveTime) {
  const auto pipeline = blast_pipeline();
  // Deliberately slow arrivals so many firings are empty.
  const auto intervals =
      solved_intervals(pipeline, blast::paper_calibrated_b(), 100.0, 3.5e5);
  EnforcedSimConfig charged;
  charged.input_count = 5000;
  charged.seed = 11;
  EnforcedSimConfig vacation = charged;
  vacation.charge_empty_firings = false;
  arrivals::FixedRateArrivals a1(100.0);
  arrivals::FixedRateArrivals a2(100.0);
  const auto m_charged = simulate_enforced_waits(pipeline, intervals, a1, charged);
  const auto m_vacation =
      simulate_enforced_waits(pipeline, intervals, a2, vacation);
  EXPECT_LT(m_vacation.active_fraction(), m_charged.active_fraction());
  // Same data path: outputs identical.
  EXPECT_EQ(m_vacation.sink_outputs, m_charged.sink_outputs);
}

TEST(EnforcedSim, LongerWaitsImproveOccupancy) {
  const auto pipeline = blast_pipeline();
  arrivals::FixedRateArrivals a1(10.0);
  arrivals::FixedRateArrivals a2(10.0);
  EnforcedSimConfig config;
  config.input_count = 20000;
  config.seed = 5;
  // Minimal intervals vs. deadline-slack intervals.
  const auto tight = sdf::minimal_firing_intervals(pipeline);
  const auto slack =
      solved_intervals(pipeline, blast::paper_calibrated_b(), 10.0, 3.5e5);
  const auto m_tight = simulate_enforced_waits(pipeline, tight, a1, config);
  const auto m_slack = simulate_enforced_waits(pipeline, slack, a2, config);
  EXPECT_GT(m_slack.overall_occupancy(), m_tight.overall_occupancy());
  EXPECT_LT(m_slack.active_fraction(), m_tight.active_fraction());
}

TEST(EnforcedSim, ConservationAcrossNodes) {
  const auto pipeline = blast_pipeline();
  const auto intervals =
      solved_intervals(pipeline, blast::paper_calibrated_b(), 10.0, 1.85e5);
  arrivals::FixedRateArrivals arrival_process(10.0);
  EnforcedSimConfig config;
  config.input_count = 20000;
  config.seed = 13;
  const auto metrics =
      simulate_enforced_waits(pipeline, intervals, arrival_process, config);
  // Everything arriving is consumed by node 0 (schedule is stable).
  EXPECT_EQ(metrics.nodes[0].items_consumed, metrics.inputs_arrived);
  // Node i+1 consumes exactly what node i produced (stream fully drains).
  for (std::size_t i = 0; i + 1 < pipeline.size(); ++i) {
    EXPECT_EQ(metrics.nodes[i + 1].items_consumed,
              metrics.nodes[i].items_produced)
        << "edge " << i;
  }
  // Sink consumption equals recorded sink outputs.
  EXPECT_EQ(metrics.nodes.back().items_consumed, metrics.sink_outputs);
}

TEST(EnforcedSim, MeanGainsReflectDistributions) {
  const auto pipeline = blast_pipeline();
  const auto intervals =
      solved_intervals(pipeline, blast::paper_calibrated_b(), 10.0, 1.85e5);
  arrivals::FixedRateArrivals arrival_process(10.0);
  EnforcedSimConfig config;
  config.input_count = 50000;
  config.seed = 17;
  const auto metrics =
      simulate_enforced_waits(pipeline, intervals, arrival_process, config);
  for (std::size_t i = 0; i + 1 < pipeline.size(); ++i) {
    const double measured =
        static_cast<double>(metrics.nodes[i].items_produced) /
        static_cast<double>(metrics.nodes[i].items_consumed);
    EXPECT_NEAR(measured, pipeline.mean_gain(i), 0.05 * pipeline.mean_gain(i) + 0.01)
        << "node " << i;
  }
}

TEST(EnforcedSim, EmptyFiringsCountedSeparately) {
  const auto pipeline = deterministic_pipeline();
  arrivals::FixedRateArrivals arrival_process(1000.0);  // very sparse
  EnforcedSimConfig config;
  config.input_count = 10;
  config.seed = 19;
  const auto metrics =
      simulate_enforced_waits(pipeline, {10.0, 20.0}, arrival_process, config);
  EXPECT_GT(metrics.nodes[0].empty_firings, 0u);
  EXPECT_LE(metrics.nodes[0].empty_firings, metrics.nodes[0].firings);
}


TEST(EnforcedSim, LatencyWithinDeadlineBudgetWhenCalibrated) {
  // The design intent of the b multipliers: an item waits at most b_i
  // firings at node i, so end-to-end latency stays within sum b_i x_i (the
  // optimizer spends exactly the deadline budget on this bound). With the
  // calibrated b's the simulated maximum must respect it.
  const auto pipeline = blast_pipeline();
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  for (double tau0 : {10.0, 50.0}) {
    auto solved = strategy.solve(tau0, 1.85e5);
    ASSERT_TRUE(solved.ok());
    arrivals::FixedRateArrivals arrival_process(tau0);
    EnforcedSimConfig config;
    config.input_count = 30000;
    config.deadline = 1.85e5;
    config.seed = 2718;
    const auto metrics = simulate_enforced_waits(
        pipeline, solved.value().firing_intervals, arrival_process, config);
    EXPECT_EQ(metrics.inputs_missed, 0u) << tau0;
    EXPECT_LE(metrics.output_latency.max(),
              solved.value().deadline_budget_used * (1.0 + 1e-9))
        << tau0;
  }
}

TEST(EnforcedSim, PhaseOffsetsValidated) {
  const auto pipeline = deterministic_pipeline();
  arrivals::FixedRateArrivals arrival_process(10.0);
  EnforcedSimConfig config;
  config.initial_offsets = {1.0};  // wrong length
  EXPECT_THROW((void)simulate_enforced_waits(pipeline, {40.0, 40.0},
                                             arrival_process, config),
               std::logic_error);
  EnforcedSimConfig negative;
  negative.initial_offsets = {0.0, -1.0};
  EXPECT_THROW((void)simulate_enforced_waits(pipeline, {40.0, 40.0},
                                             arrival_process, negative),
               std::logic_error);
}

TEST(EnforcedSim, AlignedOffsetsAreCumulativeServiceTimes) {
  const auto pipeline = blast_pipeline();
  const auto offsets = aligned_phase_offsets(pipeline);
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_DOUBLE_EQ(offsets[0], 0.0);
  EXPECT_NEAR(offsets[1], 287.0, 1e-3);
  EXPECT_NEAR(offsets[2], 287.0 + 955.0, 1e-3);
  EXPECT_NEAR(offsets[3], 287.0 + 955.0 + 402.0, 1e-3);
}

TEST(EnforcedSim, AlignedPhasesCutLatencyOnSynchronousCadence) {
  // With identical firing intervals the relative phases persist forever, so
  // alignment shows its full effect: each stage consumes the previous
  // stage's outputs on the very next firing rather than waiting most of an
  // interval.
  auto spec = sdf::PipelineBuilder("sync")
                  .simd_width(8)
                  .add_node("a", 50.0, dist::make_deterministic(1))
                  .add_node("b", 60.0, dist::make_deterministic(1))
                  .add_node("c", 70.0, dist::make_deterministic(1))
                  .build();
  const auto pipeline = std::move(spec).take();
  const std::vector<Cycles> intervals = {400.0, 400.0, 400.0};

  EnforcedSimConfig base;
  base.input_count = 2000;
  base.seed = 9;
  EnforcedSimConfig aligned = base;
  aligned.initial_offsets = aligned_phase_offsets(pipeline);

  arrivals::FixedRateArrivals a1(100.0);
  arrivals::FixedRateArrivals a2(100.0);
  const auto unaligned = simulate_enforced_waits(pipeline, intervals, a1, base);
  const auto phased = simulate_enforced_waits(pipeline, intervals, a2, aligned);

  EXPECT_EQ(unaligned.sink_outputs, phased.sink_outputs);
  // All nodes fire in phase at 0: an item consumed by node 0 at time T is
  // delivered at T+50, then waits ~350 for node 1's next slot, etc. Aligned
  // phases collapse that to the bare service chain.
  EXPECT_LT(phased.output_latency.mean(),
            0.6 * unaligned.output_latency.mean());
}

}  // namespace
}  // namespace ripple::sim
