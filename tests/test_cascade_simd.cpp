// Golden tests for the vectorized Haar kernels: the AVX2 and AVX-512
// corner-gather responses must equal the scalar IntegralImage walk bit for
// bit, for every feature kind, and detector training must be invariant
// under the dispatch level. Pins above the host's capability clamp down, so
// the comparisons hold trivially on lesser hosts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cascade/detector.hpp"
#include "cascade/features.hpp"
#include "cascade/image.hpp"
#include "cascade/simd_kernels.hpp"
#include "device/dispatch.hpp"
#include "dist/rng.hpp"

namespace ripple::cascade {
namespace {

using device::SimdLevel;

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    device::set_simd_override(level);
  }
  ~ScopedSimdLevel() { device::set_simd_override(std::nullopt); }
};

struct Fixture {
  Scene scene;
  IntegralImage integral;
  std::vector<std::uint32_t> wx;
  std::vector<std::uint32_t> wy;

  explicit Fixture(std::uint64_t seed, std::size_t extent = 512,
                   std::size_t windows = 1000, std::size_t window = 24)
      : scene(make_fixture_scene(seed, extent)), integral(scene.image) {
    dist::Xoshiro256 rng(seed + 1);
    for (std::size_t i = 0; i < windows; ++i) {
      wx.push_back(static_cast<std::uint32_t>(
          rng.uniform_below(extent - window + 1)));
      wy.push_back(static_cast<std::uint32_t>(
          rng.uniform_below(extent - window + 1)));
    }
  }

  static Scene make_fixture_scene(std::uint64_t seed, std::size_t extent) {
    dist::Xoshiro256 rng(seed);
    SceneConfig config;
    config.width = extent;
    config.height = extent;
    config.object_count = 8;
    return make_scene(config, rng);
  }
};

TEST(CascadeSimd, HaarResponsesBitIdenticalAcrossLevelsForAllKinds) {
  const Fixture f(5);
  dist::Xoshiro256 rng(99);
  // Random features cover all kinds over enough draws; pin a couple of each
  // kind explicitly as well.
  std::vector<HaarFeature> features;
  for (int i = 0; i < 32; ++i) features.push_back(random_feature(24, rng));
  for (auto kind :
       {HaarFeature::Kind::kTwoRectHorizontal,
        HaarFeature::Kind::kTwoRectVertical,
        HaarFeature::Kind::kThreeRectHorizontal,
        HaarFeature::Kind::kFourRectChecker}) {
    HaarFeature feature;
    feature.kind = kind;
    feature.x = 3;
    feature.y = 5;
    feature.width = kind == HaarFeature::Kind::kThreeRectHorizontal ? 12 : 8;
    feature.height = 10;
    features.push_back(feature);
  }

  for (const HaarFeature& feature : features) {
    const auto run_at = [&](SimdLevel level) {
      ScopedSimdLevel pin(level);
      std::vector<std::int64_t> responses(f.wx.size());
      simd::haar_response_batch(feature, f.integral, f.wx.data(), f.wy.data(),
                                f.wx.size(), responses.data());
      return responses;
    };
    const std::vector<std::int64_t> scalar = run_at(SimdLevel::kScalar);
    EXPECT_EQ(scalar, run_at(SimdLevel::kAvx2))
        << "feature kind " << static_cast<int>(feature.kind);
    EXPECT_EQ(scalar, run_at(SimdLevel::kAvx512))
        << "feature kind " << static_cast<int>(feature.kind);

    // And all agree with the per-window evaluation.
    std::uint64_t ops = 0;
    for (std::size_t i = 0; i < f.wx.size(); i += 131) {
      EXPECT_EQ(scalar[i], feature.evaluate(f.integral, f.wx[i], f.wy[i], ops))
          << "window " << i;
    }
  }
}

TEST(CascadeSimd, StageVotesMatchScalarEvaluate) {
  const Fixture f(17);
  dist::Xoshiro256 rng(3);
  DetectorConfig config;
  config.stage_sizes = {2, 6};
  config.stage_pass_rates = {0.4, 0.25};
  config.calibration_windows = 800;
  const auto trained = Detector::train(f.scene, config, rng);
  ASSERT_TRUE(trained.ok()) << trained.error().message;
  const Detector& detector = trained.value();

  for (std::size_t s = 0; s < detector.stage_count(); ++s) {
    const CascadeStage& stage = detector.stage(s);
    std::vector<std::uint32_t> votes(f.wx.size());
    simd::stage_votes_batch(stage, f.integral, f.wx.data(), f.wy.data(),
                            f.wx.size(), votes.data());
    std::uint64_t ops = 0;
    for (std::size_t i = 0; i < f.wx.size(); ++i) {
      std::uint32_t expected = 0;
      for (const Stump& stump : stage.stumps) {
        expected += stump.vote(
            stump.feature.evaluate(f.integral, f.wx[i], f.wy[i], ops));
      }
      ASSERT_EQ(votes[i], expected) << "stage " << s << " window " << i;
    }
  }
}

TEST(CascadeSimd, DetectorTrainingInvariantUnderDispatchLevel) {
  const Fixture f(29);
  DetectorConfig config;
  config.stage_sizes = {2, 6, 12};
  config.stage_pass_rates = {0.4, 0.25, 0.12};
  config.calibration_windows = 1000;

  const auto train_at = [&](SimdLevel level) {
    ScopedSimdLevel pin(level);
    dist::Xoshiro256 rng(71);
    return Detector::train(f.scene, config, rng);
  };
  const auto scalar = train_at(SimdLevel::kScalar);
  const auto avx2 = train_at(SimdLevel::kAvx512);
  ASSERT_TRUE(scalar.ok()) << scalar.error().message;
  ASSERT_TRUE(avx2.ok()) << avx2.error().message;

  ASSERT_EQ(scalar.value().stage_count(), avx2.value().stage_count());
  for (std::size_t s = 0; s < scalar.value().stage_count(); ++s) {
    const CascadeStage& a = scalar.value().stage(s);
    const CascadeStage& b = avx2.value().stage(s);
    EXPECT_EQ(a.vote_threshold, b.vote_threshold) << "stage " << s;
    ASSERT_EQ(a.stumps.size(), b.stumps.size()) << "stage " << s;
    for (std::size_t t = 0; t < a.stumps.size(); ++t) {
      EXPECT_EQ(a.stumps[t].threshold, b.stumps[t].threshold)
          << "stage " << s << " stump " << t;
      EXPECT_EQ(a.stumps[t].invert, b.stumps[t].invert)
          << "stage " << s << " stump " << t;
      EXPECT_EQ(a.stumps[t].feature.x, b.stumps[t].feature.x);
      EXPECT_EQ(a.stumps[t].feature.y, b.stumps[t].feature.y);
    }
  }
}

}  // namespace
}  // namespace ripple::cascade
