#include "util/jsonv.hpp"

#include <gtest/gtest.h>

namespace ripple::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").value().is_null());
  EXPECT_TRUE(parse_json("true").value().as_bool());
  EXPECT_FALSE(parse_json("false").value().as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").value().as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.25e2").value().as_number(), -325.0);
  EXPECT_EQ(parse_json("\"hello\"").value().as_string(), "hello");
}

TEST(JsonParse, Whitespace) {
  auto doc = parse_json("  \n\t {  \"a\" : 1 }  ");
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc.value().number_or("a", 0.0), 1.0);
}

TEST(JsonParse, NestedStructure) {
  auto doc = parse_json(R"({"xs":[1,2,3],"inner":{"flag":true,"s":"x"}})");
  ASSERT_TRUE(doc.ok());
  const JsonValue& root = doc.value();
  ASSERT_TRUE(root.is_object());
  const JsonValue* xs = root.find("xs");
  ASSERT_NE(xs, nullptr);
  ASSERT_TRUE(xs->is_array());
  EXPECT_EQ(xs->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(xs->as_array()[2].as_number(), 3.0);
  const JsonValue* inner = root.find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(inner->find("flag")->as_bool());
  EXPECT_EQ(inner->string_or("s", ""), "x");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse_json("{}").value().as_object().empty());
  EXPECT_TRUE(parse_json("[]").value().as_array().empty());
}

TEST(JsonParse, StringEscapes) {
  auto doc = parse_json(R"("a\"b\\c\tA")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().as_string(), "a\"b\\c\tA");
}

TEST(JsonParse, UnicodeEscapeToUtf8) {
  auto doc = parse_json(R"("é")");  // é
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().as_string(), "\xc3\xa9");
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(parse_json("").ok());
  EXPECT_FALSE(parse_json("{").ok());
  EXPECT_FALSE(parse_json("[1,]").ok());
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok());
  EXPECT_FALSE(parse_json("\"unterminated").ok());
  EXPECT_FALSE(parse_json("tru").ok());
  EXPECT_FALSE(parse_json("1 2").ok());       // trailing garbage
  EXPECT_FALSE(parse_json("{\"a\":1} x").ok());
  EXPECT_EQ(parse_json("{").error().code, "parse_error");
}

TEST(JsonParse, KindMismatchThrows) {
  const JsonValue value = parse_json("42").value();
  EXPECT_THROW((void)value.as_string(), std::logic_error);
  EXPECT_THROW((void)value.as_array(), std::logic_error);
  EXPECT_EQ(value.find("k"), nullptr);  // non-object find is safe
}

TEST(JsonParse, DefaultsOnMissingMembers) {
  const JsonValue value = parse_json(R"({"present": 2.5})").value();
  EXPECT_DOUBLE_EQ(value.number_or("present", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(value.number_or("absent", 7.0), 7.0);
  EXPECT_EQ(value.string_or("absent", "fallback"), "fallback");
}

TEST(JsonParse, RoundTripWithWriter) {
  // Parse the exact bytes the streaming writer produces.
  const std::string text =
      R"({"name":"x","nodes":[{"t":287,"g":0.379},{"t":955,"g":1.92}],"ok":true})";
  auto doc = parse_json(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().string_or("name", ""), "x");
  EXPECT_EQ(doc.value().find("nodes")->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(
      doc.value().find("nodes")->as_array()[1].number_or("g", 0.0), 1.92);
}

TEST(JsonParse, FuzzNeverCrashes) {
  // Mutate a valid document at random positions: the parser must either
  // succeed or return a parse error — never crash or hang.
  const std::string base =
      R"({"name":"x","simd_width":128,"nodes":[{"service_time":287,)"
      R"("gain":{"type":"bernoulli","p":0.379}},{"service_time":2753}],)"
      R"("flags":[true,false,null],"score":-1.5e3})";
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  int ok_count = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = next() % mutated.size();
      switch (next() % 3) {
        case 0: mutated[pos] = static_cast<char>(next() % 128); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, static_cast<char>(next() % 128)); break;
      }
      if (mutated.empty()) mutated = "0";
    }
    auto doc = parse_json(mutated);
    ok_count += doc.ok();
    if (!doc.ok()) {
      EXPECT_EQ(doc.error().code, "parse_error");
    }
  }
  // Some mutations stay valid (e.g. edits inside string contents).
  EXPECT_GT(ok_count, 0);
}

}  // namespace
}  // namespace ripple::util
