#include "blast/measure.hpp"

#include <gtest/gtest.h>

#include "blast/canonical.hpp"

namespace ripple::blast {
namespace {

struct Fixture {
  SequencePair pair;
  BlastStages::Config config;

  explicit Fixture(std::uint64_t seed = 21) {
    dist::Xoshiro256 rng(seed);
    SequencePairConfig pair_config;
    pair_config.subject_length = 1 << 16;
    pair_config.query_length = 1 << 14;
    pair_config.homology_count = 8;
    pair_config.homology_length = 256;
    pair_config.mutation_rate = 0.08;
    pair = make_sequence_pair(pair_config, rng);
    config.k = 8;
  }
};

TEST(Measure, StageFlowConserved) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  MeasureConfig mc;
  mc.window_count = 20000;
  const PipelineMeasurement m = measure_pipeline(stages, mc);

  EXPECT_EQ(m.windows_streamed, 20000u);
  EXPECT_EQ(m.stages[0].inputs, 20000u);
  // Stage outputs feed the next stage's inputs exactly.
  EXPECT_EQ(m.stages[1].inputs, m.stages[0].outputs);
  EXPECT_EQ(m.stages[2].inputs, m.stages[1].outputs);
  EXPECT_EQ(m.stages[3].inputs, m.stages[2].outputs);
  EXPECT_EQ(m.alignments_reported, m.stages[3].outputs);
}

TEST(Measure, GainHistogramsConsistent) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  MeasureConfig mc;
  mc.window_count = 20000;
  const PipelineMeasurement m = measure_pipeline(stages, mc);
  for (int s = 0; s < 3; ++s) {
    std::uint64_t histogram_inputs = 0;
    std::uint64_t histogram_outputs = 0;
    for (std::size_t k = 0; k < m.stages[s].gain_histogram.size(); ++k) {
      histogram_inputs += m.stages[s].gain_histogram[k];
      histogram_outputs += k * m.stages[s].gain_histogram[k];
    }
    EXPECT_EQ(histogram_inputs, m.stages[s].inputs) << "stage " << s;
    EXPECT_EQ(histogram_outputs, m.stages[s].outputs) << "stage " << s;
  }
}

TEST(Measure, GainShapesMatchBlastStructure) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  MeasureConfig mc;
  mc.window_count = 40000;
  const PipelineMeasurement m = measure_pipeline(stages, mc);

  // Stage 0 is a filter: gain in (0, 1).
  EXPECT_GT(m.stages[0].mean_gain(), 0.0);
  EXPECT_LT(m.stages[0].mean_gain(), 1.0);
  // Stage 1 expands: mean >= 1, capped at u.
  EXPECT_GE(m.stages[1].mean_gain(), 1.0);
  EXPECT_LE(m.stages[1].gain_histogram.size(), 17u);  // counts 0..16
  // Stage 2 is a strong filter: small gain.
  EXPECT_LT(m.stages[2].mean_gain(), 0.6);
  // Gapped extension dominates per-item cost, as in Table 1.
  EXPECT_GT(m.stages[3].mean_ops(), m.stages[0].mean_ops());
}

TEST(Measure, StrideSkipsWindows) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  MeasureConfig mc;
  mc.window_count = 1000;
  mc.stride = 64;
  const PipelineMeasurement m = measure_pipeline(stages, mc);
  EXPECT_EQ(m.stages[0].inputs, 1000u);
}

TEST(Measure, ToPipelineSpecBuildsValidPipeline) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  MeasureConfig mc;
  mc.window_count = 40000;
  const PipelineMeasurement m = measure_pipeline(stages, mc);
  auto spec = m.to_pipeline_spec(128);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  const auto& pipeline = spec.value();
  EXPECT_EQ(pipeline.size(), 4u);
  EXPECT_EQ(pipeline.simd_width(), 128u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(pipeline.mean_gain(i), m.stages[i].mean_gain(), 1e-9);
    EXPECT_GT(pipeline.service_time(i), 0.0);
  }
}

TEST(Measure, ToPipelineSpecScalesServiceTimes) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  MeasureConfig mc;
  mc.window_count = 10000;
  const PipelineMeasurement m = measure_pipeline(stages, mc);
  auto unit = m.to_pipeline_spec(128, 1.0);
  auto doubled = m.to_pipeline_spec(128, 2.0);
  ASSERT_TRUE(unit.ok());
  ASSERT_TRUE(doubled.ok());
  EXPECT_NEAR(doubled.value().service_time(3), 2.0 * unit.value().service_time(3),
              1e-6);
}

TEST(Measure, EmptyDownstreamFailsGracefully) {
  // Deterministically starve every stage past the seed filter: the subject
  // is all-A while the query contains no A, so no subject k-mer can occur in
  // the query. to_pipeline_spec must fail with a clear error rather than
  // produce a bogus spec.
  dist::Xoshiro256 rng(31);
  SequencePair pair;
  pair.subject = Sequence(5000, 0);  // AAAA...
  pair.query.resize(512);
  for (Base& base : pair.query) {
    base = static_cast<Base>(1 + rng.uniform_below(3));  // C/G/T only
  }
  BlastStages::Config config;
  config.k = 8;
  const BlastStages stages(pair, config);
  MeasureConfig mc;
  mc.window_count = 200;
  const PipelineMeasurement m = measure_pipeline(stages, mc);
  ASSERT_EQ(m.stages[1].inputs, 0u);
  auto spec = m.to_pipeline_spec(128);
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.error().code, "no_data");
}

TEST(Measure, RequiresWindows) {
  Fixture f;
  const BlastStages stages(f.pair, f.config);
  MeasureConfig mc;
  mc.window_count = 0;
  EXPECT_THROW((void)measure_pipeline(stages, mc), std::logic_error);
}

}  // namespace
}  // namespace ripple::blast
