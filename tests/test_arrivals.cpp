#include "arrivals/arrival_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/stats.hpp"

namespace ripple::arrivals {
namespace {

TEST(FixedRate, ConstantGaps) {
  FixedRateArrivals process(7.5);
  dist::Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(process.next_interarrival(rng), 7.5);
  }
  EXPECT_DOUBLE_EQ(process.mean_interarrival(), 7.5);
}

TEST(FixedRate, RejectsNonPositiveTau) {
  EXPECT_THROW(FixedRateArrivals(0.0), std::logic_error);
  EXPECT_THROW(FixedRateArrivals(-1.0), std::logic_error);
}

TEST(Poisson, MeanGapMatchesTau) {
  PoissonArrivals process(10.0);
  dist::Xoshiro256 rng(2);
  dist::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(process.next_interarrival(rng));
  EXPECT_NEAR(stats.mean(), 10.0, 0.15);
  // Exponential: stddev equals the mean.
  EXPECT_NEAR(stats.stddev(), 10.0, 0.2);
}

TEST(Poisson, GapsArePositive) {
  PoissonArrivals process(1.0);
  dist::Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(process.next_interarrival(rng), 0.0);
  }
}

TEST(Bursty, LongRunRateMatchesMixture) {
  BurstyArrivals::Config config;
  config.tau_quiet = 50.0;
  config.tau_burst = 5.0;
  config.mean_quiet_dwell = 10000.0;
  config.mean_burst_dwell = 2000.0;
  BurstyArrivals process(config);
  dist::Xoshiro256 rng(4);
  double total_time = 0.0;
  constexpr int kArrivals = 200000;
  for (int i = 0; i < kArrivals; ++i) {
    total_time += process.next_interarrival(rng);
  }
  const double measured_mean = total_time / kArrivals;
  EXPECT_NEAR(measured_mean, process.mean_interarrival(),
              0.05 * process.mean_interarrival());
}

TEST(Bursty, MixedRateIsBetweenStateRates) {
  BurstyArrivals::Config config;
  BurstyArrivals process(config);
  EXPECT_GT(process.mean_interarrival(), config.tau_burst);
  EXPECT_LT(process.mean_interarrival(), config.tau_quiet);
}

TEST(Bursty, RejectsBadConfig) {
  BurstyArrivals::Config config;
  config.tau_burst = 0.0;
  EXPECT_THROW((void)BurstyArrivals{config}, std::logic_error);
  BurstyArrivals::Config config2;
  config2.mean_quiet_dwell = -1.0;
  EXPECT_THROW((void)BurstyArrivals{config2}, std::logic_error);
}

TEST(Trace, ReplaysAndWraps) {
  TraceArrivals process({1.0, 2.0, 3.0});
  dist::Xoshiro256 rng(5);
  EXPECT_DOUBLE_EQ(process.next_interarrival(rng), 1.0);
  EXPECT_DOUBLE_EQ(process.next_interarrival(rng), 2.0);
  EXPECT_DOUBLE_EQ(process.next_interarrival(rng), 3.0);
  EXPECT_DOUBLE_EQ(process.next_interarrival(rng), 1.0);  // wrapped
  EXPECT_DOUBLE_EQ(process.mean_interarrival(), 2.0);
}

TEST(Trace, RejectsDegenerateTraces) {
  EXPECT_THROW(TraceArrivals({}), std::logic_error);
  EXPECT_THROW(TraceArrivals({0.0, 0.0}), std::logic_error);   // zero mean
  EXPECT_THROW(TraceArrivals({1.0, -1.0}), std::logic_error);  // negative gap
}

TEST(Factories, ProduceFreshProcesses) {
  auto factory = fixed_rate_factory(3.0);
  auto p1 = factory();
  auto p2 = factory();
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_DOUBLE_EQ(p1->mean_interarrival(), 3.0);

  auto poisson = poisson_factory(4.0)();
  EXPECT_DOUBLE_EQ(poisson->mean_interarrival(), 4.0);

  auto bursty = bursty_factory({})();
  EXPECT_GT(bursty->mean_interarrival(), 0.0);
}

TEST(Names, Descriptive) {
  dist::Xoshiro256 rng(6);
  EXPECT_NE(FixedRateArrivals(2.0).name().find("fixed"), std::string::npos);
  EXPECT_NE(PoissonArrivals(2.0).name().find("poisson"), std::string::npos);
  EXPECT_NE(BurstyArrivals({}).name().find("bursty"), std::string::npos);
  EXPECT_NE(TraceArrivals({1.0}).name().find("trace"), std::string::npos);
}

}  // namespace
}  // namespace ripple::arrivals
