#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "blast/canonical.hpp"

namespace ripple::core {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

EnforcedWaitsConfig paper_config() {
  return EnforcedWaitsConfig{blast::paper_calibrated_b()};
}

TEST(Report, PipelineJsonStructure) {
  std::ostringstream out;
  write_pipeline_json(out, blast_pipeline());
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\":\"blast(table1)\""), std::string::npos);
  EXPECT_NE(text.find("\"simd_width\":128"), std::string::npos);
  EXPECT_NE(text.find("\"seed_expand\""), std::string::npos);
  EXPECT_NE(text.find("\"service_time\":2753"), std::string::npos);
  // Four node objects.
  std::size_t nodes = 0;
  for (std::size_t pos = 0;
       (pos = text.find("\"service_time\"", pos)) != std::string::npos; ++pos) {
    ++nodes;
  }
  EXPECT_EQ(nodes, 4u);
}

TEST(Report, EnforcedScheduleJson) {
  const auto pipeline = blast_pipeline();
  const EnforcedWaitsStrategy strategy(pipeline, paper_config());
  auto solved = strategy.solve(20.0, 1.85e5);
  ASSERT_TRUE(solved.ok());
  std::ostringstream out;
  write_enforced_schedule_json(out, pipeline, paper_config(), solved.value(),
                               20.0, 1.85e5);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"strategy\":\"enforced_waits\""), std::string::npos);
  EXPECT_NE(text.find("\"tau0\":20"), std::string::npos);
  EXPECT_NE(text.find("\"b\":[1,3,9,6]"), std::string::npos);
  EXPECT_NE(text.find("\"firing_intervals\":["), std::string::npos);
  EXPECT_NE(text.find("\"kkt_satisfied\":true"), std::string::npos);
}

TEST(Report, MonolithicScheduleJson) {
  const auto pipeline = blast_pipeline();
  const MonolithicStrategy strategy(pipeline, {});
  auto solved = strategy.solve(20.0, 1.85e5);
  ASSERT_TRUE(solved.ok());
  std::ostringstream out;
  write_monolithic_schedule_json(out, pipeline, {}, solved.value(), 20.0,
                                 1.85e5);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"strategy\":\"monolithic\""), std::string::npos);
  EXPECT_NE(text.find("\"block_size\":" +
                      std::to_string(solved.value().block_size)),
            std::string::npos);
  EXPECT_NE(text.find("\"S\":1"), std::string::npos);
}

TEST(Report, SurfaceJsonCellCount) {
  const auto grid = SweepGrid::linear(20.0, 100.0, 3, 1e5, 3.5e5, 2);
  const auto surface = run_sweep(blast_pipeline(), paper_config(), {}, grid);
  std::ostringstream out;
  write_surface_json(out, surface);
  const std::string text = out.str();
  std::size_t cells = 0;
  for (std::size_t pos = 0;
       (pos = text.find("\"difference\"", pos)) != std::string::npos; ++pos) {
    ++cells;
  }
  EXPECT_EQ(cells, 6u);
  EXPECT_NE(text.find("\"tau0_values\":[20,60,100]"), std::string::npos);
}

TEST(Report, JsonIsSingleLineTerminated) {
  std::ostringstream out;
  write_pipeline_json(out, blast_pipeline());
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  // No embedded newlines besides the terminator (single-line JSON).
  EXPECT_EQ(text.find('\n'), text.size() - 1);
}

}  // namespace
}  // namespace ripple::core
