// RateEstimator: prior pinning, EWMA convergence, windowed quantiles, and
// determinism — the properties the closed-loop convergence tests lean on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "control/rate_estimator.hpp"

namespace ripple::control {
namespace {

TEST(RateEstimatorTest, ReportsPriorUntilWarm) {
  RateEstimatorConfig config;
  config.min_samples = 8;
  RateEstimator estimator(40.0, config);
  EXPECT_DOUBLE_EQ(estimator.tau0(), 40.0);
  EXPECT_FALSE(estimator.warm());
  for (int i = 0; i < 7; ++i) {
    estimator.observe_gap(10.0);
    EXPECT_DOUBLE_EQ(estimator.tau0(), 40.0) << "still cold at sample " << i;
  }
  estimator.observe_gap(10.0);
  EXPECT_TRUE(estimator.warm());
  EXPECT_LT(estimator.tau0(), 40.0);  // EWMA has been pulling toward 10
}

TEST(RateEstimatorTest, ConvergesToConstantGap) {
  RateEstimator estimator(100.0, {});
  for (int i = 0; i < 4000; ++i) estimator.observe_gap(25.0);
  EXPECT_NEAR(estimator.tau0(), 25.0, 1e-9);
  EXPECT_NEAR(estimator.rate(), 1.0 / 25.0, 1e-12);
}

TEST(RateEstimatorTest, TracksStepChange) {
  RateEstimatorConfig config;
  config.alpha = 0.05;
  RateEstimator estimator(40.0, config);
  for (int i = 0; i < 2000; ++i) estimator.observe_gap(40.0);
  EXPECT_NEAR(estimator.tau0(), 40.0, 1e-9);
  for (int i = 0; i < 2000; ++i) estimator.observe_gap(20.0);
  EXPECT_NEAR(estimator.tau0(), 20.0, 1e-9);
}

TEST(RateEstimatorTest, ClampsNonPositiveGaps) {
  RateEstimator estimator(10.0, {});
  estimator.observe_gap(0.0);
  estimator.observe_gap(-5.0);
  EXPECT_EQ(estimator.samples(), 2u);
  // Simultaneous arrivals must not poison the estimate into zero/negative.
  for (int i = 0; i < 100; ++i) estimator.observe_gap(10.0);
  EXPECT_GT(estimator.tau0(), 0.0);
}

TEST(RateEstimatorTest, QuantilesOverWindow) {
  RateEstimatorConfig config;
  config.window = 16;
  config.min_samples = 1;
  RateEstimator estimator(50.0, config);
  // Empty window: quantile falls back to the prior.
  EXPECT_DOUBLE_EQ(estimator.gap_quantile(0.5), 50.0);

  for (int i = 1; i <= 16; ++i) estimator.observe_gap(static_cast<Cycles>(i));
  // Rank convention: value v with at least ceil(q * n) gaps <= v.
  EXPECT_DOUBLE_EQ(estimator.gap_quantile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(estimator.gap_quantile(1.0), 16.0);
  EXPECT_DOUBLE_EQ(estimator.gap_quantile(0.0625), 1.0);

  // Window slides: 16 more gaps of 100 evict everything older.
  for (int i = 0; i < 16; ++i) estimator.observe_gap(100.0);
  EXPECT_DOUBLE_EQ(estimator.gap_quantile(0.1), 100.0);
}

TEST(RateEstimatorTest, DeterministicAcrossInstances) {
  RateEstimator a(30.0, {});
  RateEstimator b(30.0, {});
  const Cycles gaps[] = {10.0, 80.0, 25.0, 3.0, 44.0, 17.5};
  for (int round = 0; round < 500; ++round) {
    for (const Cycles gap : gaps) {
      a.observe_gap(gap);
      b.observe_gap(gap);
    }
    ASSERT_DOUBLE_EQ(a.tau0(), b.tau0());
    ASSERT_DOUBLE_EQ(a.gap_quantile(0.9), b.gap_quantile(0.9));
  }
}

TEST(RateEstimatorTest, ResetRestoresPrior) {
  RateEstimator estimator(60.0, {});
  for (int i = 0; i < 200; ++i) estimator.observe_gap(5.0);
  EXPECT_NE(estimator.tau0(), 60.0);
  estimator.reset(75.0);
  EXPECT_DOUBLE_EQ(estimator.tau0(), 75.0);
  EXPECT_EQ(estimator.samples(), 0u);
  EXPECT_FALSE(estimator.warm());
  EXPECT_DOUBLE_EQ(estimator.gap_quantile(0.5), 75.0);
}

TEST(RateEstimatorTest, CheckpointRestoreContinuesBitIdentically) {
  RateEstimatorConfig config;
  config.window = 13;  // non-power-of-two: exercises the modular rotation
  config.min_samples = 5;
  RateEstimator live(42.0, config);
  // Enough gaps to wrap the window more than twice, so the checkpoint must
  // capture mid-rotation state, not just a fresh prefix.
  for (int i = 1; i <= 31; ++i) {
    live.observe_gap(static_cast<Cycles>(3 + (i * 7) % 11));
  }

  const RateEstimatorCheckpoint state = live.checkpoint();
  EXPECT_EQ(state.samples, 31u);
  EXPECT_EQ(state.window.size(), 13u);

  RateEstimator restored(999.0, config);  // different prior: must be replaced
  restored.restore(state);
  EXPECT_DOUBLE_EQ(restored.tau0(), live.tau0());
  EXPECT_EQ(restored.samples(), live.samples());
  EXPECT_EQ(restored.warm(), live.warm());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    ASSERT_DOUBLE_EQ(restored.gap_quantile(q), live.gap_quantile(q)) << q;
  }

  // The futures diverge from identical state: feeding both the same tail
  // keeps them bit-identical (same EWMA, same slot rotation).
  const Cycles tail[] = {2.5, 80.0, 14.0, 1.0, 33.0};
  for (int round = 0; round < 40; ++round) {
    for (const Cycles gap : tail) {
      live.observe_gap(gap);
      restored.observe_gap(gap);
      ASSERT_DOUBLE_EQ(restored.tau0(), live.tau0());
      ASSERT_DOUBLE_EQ(restored.gap_quantile(0.75), live.gap_quantile(0.75));
    }
  }
}

TEST(RateEstimatorTest, CheckpointRestoreBeforeWindowFills) {
  RateEstimatorConfig config;
  config.window = 16;
  config.min_samples = 8;
  RateEstimator live(50.0, config);
  for (int i = 0; i < 5; ++i) live.observe_gap(10.0 + i);

  const RateEstimatorCheckpoint state = live.checkpoint();
  EXPECT_EQ(state.window.size(), 5u);  // only the observed prefix is retained

  RateEstimator restored(50.0, config);
  restored.restore(state);
  EXPECT_FALSE(restored.warm());  // still cold, exactly like the original
  EXPECT_DOUBLE_EQ(restored.tau0(), 50.0);
  EXPECT_DOUBLE_EQ(restored.gap_quantile(0.5), live.gap_quantile(0.5));
  // Warmup completes at the same observation count as the live estimator.
  for (int i = 0; i < 3; ++i) {
    live.observe_gap(12.0);
    restored.observe_gap(12.0);
  }
  EXPECT_TRUE(restored.warm());
  EXPECT_DOUBLE_EQ(restored.tau0(), live.tau0());
}

TEST(RateEstimatorTest, RestoreRejectsInconsistentCheckpoints) {
  RateEstimatorConfig config;
  config.window = 8;
  RateEstimator estimator(10.0, config);

  RateEstimatorCheckpoint bad_prior;
  bad_prior.prior = 0.0;
  EXPECT_THROW(estimator.restore(bad_prior), std::logic_error);

  RateEstimatorCheckpoint oversized;
  oversized.prior = 10.0;
  oversized.samples = 20;
  oversized.window.assign(9, 1.0);  // larger than the configured window
  EXPECT_THROW(estimator.restore(oversized), std::logic_error);

  RateEstimatorCheckpoint mismatched;
  mismatched.prior = 10.0;
  mismatched.samples = 3;
  mismatched.window.assign(5, 1.0);  // claims 3 samples but carries 5 gaps
  EXPECT_THROW(estimator.restore(mismatched), std::logic_error);
}

TEST(RateEstimatorTest, RejectsBadConfig) {
  EXPECT_THROW(RateEstimator(0.0, {}), std::logic_error);
  RateEstimatorConfig bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_THROW(RateEstimator(10.0, bad_alpha), std::logic_error);
  RateEstimatorConfig bad_window;
  bad_window.window = 0;
  EXPECT_THROW(RateEstimator(10.0, bad_window), std::logic_error);
}

}  // namespace
}  // namespace ripple::control
