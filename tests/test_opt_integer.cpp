#include "opt/integer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ripple::opt {
namespace {

TEST(IntegerScan, FindsMinimumOfConvexSequence) {
  auto result = minimize_integer_scan(-10, 10, [](std::int64_t m) {
    return std::optional<double>(static_cast<double>((m - 3) * (m - 3)));
  });
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.argmin, 3);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_EQ(result.evaluations, 21u);
}

TEST(IntegerScan, SkipsInfeasiblePoints) {
  auto result = minimize_integer_scan(0, 10, [](std::int64_t m) -> std::optional<double> {
    if (m % 2 == 0) return std::nullopt;  // only odd points feasible
    return static_cast<double>(m);
  });
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.argmin, 1);
}

TEST(IntegerScan, AllInfeasible) {
  auto result = minimize_integer_scan(0, 5, [](std::int64_t) -> std::optional<double> {
    return std::nullopt;
  });
  EXPECT_FALSE(result.feasible);
}

TEST(IntegerScan, EmptyRange) {
  auto result = minimize_integer_scan(5, 4, [](std::int64_t) {
    return std::optional<double>(0.0);
  });
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.evaluations, 0u);
}

TEST(IntegerScan, TiesGoToLowestIndex) {
  auto result = minimize_integer_scan(0, 10, [](std::int64_t) {
    return std::optional<double>(1.0);
  });
  EXPECT_EQ(result.argmin, 0);
}

/// The monolithic-shaped objective: non-increasing relaxation lower bound.
struct MonoShaped {
  double operator()(std::int64_t m) const {
    // Mimics Tbar(M)/M with a ceil-induced sawtooth.
    const double tbar = std::ceil(static_cast<double>(m) / 128.0) * 287.0 +
                        std::ceil(static_cast<double>(m) * 0.379 / 128.0) * 955.0;
    return tbar / static_cast<double>(m);
  }
};

TEST(BranchAndBound, MatchesScanOnMonolithicShape) {
  MonoShaped f;
  auto objective = [&](std::int64_t m) -> std::optional<double> {
    if (m > 7000) return std::nullopt;  // deadline-style cutoff
    return f(m);
  };
  // Valid lower bound: limit of f as M -> inf of the relaxation, evaluated at
  // interval's upper end (f_relax non-increasing).
  auto bound = [&](std::int64_t, std::int64_t hi) {
    const double relax = (287.0 / 128.0) + (0.379 * 955.0 / 128.0);
    const double floor_terms = (287.0 + 955.0) / static_cast<double>(hi);
    return std::max(relax, floor_terms);
  };
  auto scan = minimize_integer_scan(1, 10000, objective);
  auto bnb = branch_and_bound_minimize(1, 10000, objective, bound);
  ASSERT_TRUE(scan.feasible);
  ASSERT_TRUE(bnb.feasible);
  EXPECT_DOUBLE_EQ(bnb.value, scan.value);
}

TEST(BranchAndBound, PrunesWithTightBound) {
  // Strictly decreasing objective: optimum at hi; a perfect bound lets B&B
  // evaluate far fewer points than the scan.
  auto objective = [](std::int64_t m) -> std::optional<double> {
    return 1000.0 / static_cast<double>(m);
  };
  auto bound = [](std::int64_t, std::int64_t hi) {
    return 1000.0 / static_cast<double>(hi);
  };
  auto result = branch_and_bound_minimize(1, 1 << 20, objective, bound);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.argmin, 1 << 20);
  EXPECT_LT(result.evaluations, 1u << 12);  // pruned hard
}

TEST(BranchAndBound, AllInfeasible) {
  auto result = branch_and_bound_minimize(
      1, 1000, [](std::int64_t) -> std::optional<double> { return std::nullopt; },
      [](std::int64_t, std::int64_t) { return 0.0; });
  EXPECT_FALSE(result.feasible);
}

TEST(BranchAndBound, EmptyRange) {
  auto result = branch_and_bound_minimize(
      10, 5, [](std::int64_t) -> std::optional<double> { return 0.0; },
      [](std::int64_t, std::int64_t) { return 0.0; });
  EXPECT_FALSE(result.feasible);
}

TEST(BranchAndBound, SmallRangeEnumerated) {
  auto result = branch_and_bound_minimize(
      3, 8,
      [](std::int64_t m) -> std::optional<double> {
        return static_cast<double>((m - 5) * (m - 5));
      },
      [](std::int64_t, std::int64_t) { return 0.0; });
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.argmin, 5);
}

TEST(IntegerScan, AlwaysComplete) {
  auto feasible = minimize_integer_scan(
      0, 10, [](std::int64_t m) { return std::optional<double>(double(m)); });
  EXPECT_TRUE(feasible.complete);
  auto infeasible = minimize_integer_scan(
      0, 10, [](std::int64_t) -> std::optional<double> { return std::nullopt; });
  EXPECT_TRUE(infeasible.complete);
  auto empty = minimize_integer_scan(
      5, 4, [](std::int64_t) { return std::optional<double>(0.0); });
  EXPECT_TRUE(empty.complete);
}

TEST(BranchAndBound, ReportsIncompleteOnNodeBudgetExhaustion) {
  // All-infeasible range with a useless bound: nothing prunes, so draining
  // [1, 2^20] at leaf width 64 needs ~2^15 nodes; a budget of 100 cannot
  // finish and the result must say so instead of silently claiming the
  // (absent) incumbent is optimal.
  BranchAndBoundOptions options;
  options.max_nodes = 100;
  auto result = branch_and_bound_minimize(
      1, 1 << 20,
      [](std::int64_t) -> std::optional<double> { return std::nullopt; },
      [](std::int64_t, std::int64_t) { return 0.0; }, options);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.complete);

  // Same search with an adequate budget completes.
  auto full = branch_and_bound_minimize(
      1, 1 << 20,
      [](std::int64_t) -> std::optional<double> { return std::nullopt; },
      [](std::int64_t, std::int64_t) { return 0.0; });
  EXPECT_FALSE(full.feasible);
  EXPECT_TRUE(full.complete);
}

TEST(BranchAndBound, WarmIncumbentPrunesWithoutChangingTheAnswer) {
  // Strictly decreasing objective; the exact optimum (at hi) supplied as the
  // incumbent lets the relaxation prune every interval unseen.
  auto objective = [](std::int64_t m) -> std::optional<double> {
    return 1000.0 / static_cast<double>(m);
  };
  auto bound = [](std::int64_t, std::int64_t hi) {
    return 1000.0 / static_cast<double>(hi);
  };
  BranchAndBoundOptions options;
  options.incumbent_argmin = 1 << 20;
  options.incumbent_value = 1000.0 / static_cast<double>(1 << 20);
  auto primed = branch_and_bound_minimize(1, 1 << 20, objective, bound, options);
  EXPECT_TRUE(primed.feasible);
  EXPECT_TRUE(primed.complete);
  EXPECT_EQ(primed.argmin, 1 << 20);
  // Only the right spine down to the incumbent's own leaf survives pruning
  // (equal-bound intervals left of the incumbent must be checked for a
  // lower-index tie).
  EXPECT_LE(primed.evaluations, 64u);
}

TEST(BranchAndBound, TiesResolveToLowestIndexLikeTheScan) {
  // Flat objective: every point ties. The lexicographic (value, argmin)
  // rule must recover the scan's answer (lowest index) even when a warm
  // incumbent sits at a high index.
  auto objective = [](std::int64_t) { return std::optional<double>(1.0); };
  auto bound = [](std::int64_t, std::int64_t) { return 1.0; };
  auto cold = branch_and_bound_minimize(0, 1000, objective, bound);
  EXPECT_TRUE(cold.complete);
  EXPECT_EQ(cold.argmin, 0);

  BranchAndBoundOptions options;
  options.incumbent_argmin = 900;
  options.incumbent_value = 1.0;
  auto primed = branch_and_bound_minimize(0, 1000, objective, bound, options);
  EXPECT_TRUE(primed.complete);
  EXPECT_EQ(primed.argmin, 0);
}

TEST(BranchAndBound, IncumbentValueWithoutArgminRejected) {
  BranchAndBoundOptions options;
  options.incumbent_value = 1.0;
  EXPECT_THROW(
      (void)branch_and_bound_minimize(
          0, 10, [](std::int64_t) { return std::optional<double>(1.0); },
          [](std::int64_t, std::int64_t) { return 0.0; }, options),
      std::logic_error);
}

class BnbVsScan : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BnbVsScan, AgreeOnSawtoothObjectives) {
  const std::int64_t hi = GetParam();
  auto objective = [](std::int64_t m) -> std::optional<double> {
    if (m % 7 == 0) return std::nullopt;  // punch feasibility holes
    return std::ceil(static_cast<double>(m) / 16.0) * 100.0 /
           static_cast<double>(m);
  };
  auto bound = [](std::int64_t, std::int64_t interval_hi) {
    return std::max(100.0 / 16.0, 100.0 / static_cast<double>(interval_hi));
  };
  auto scan = minimize_integer_scan(1, hi, objective);
  auto bnb = branch_and_bound_minimize(1, hi, objective, bound);
  EXPECT_EQ(scan.feasible, bnb.feasible);
  if (scan.feasible) {
    EXPECT_DOUBLE_EQ(scan.value, bnb.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, BnbVsScan,
                         ::testing::Values(1, 2, 15, 16, 17, 100, 1000, 12345));

}  // namespace
}  // namespace ripple::opt
