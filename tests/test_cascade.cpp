#include <gtest/gtest.h>

#include "cascade/detector.hpp"
#include "cascade/features.hpp"
#include "cascade/image.hpp"
#include "cascade/measure.hpp"
#include "core/enforced_waits.hpp"

namespace ripple::cascade {
namespace {

// -------------------------------------------------------------------- Image

TEST(CascadeImage, ConstructionAndAccess) {
  Image image(4, 3, 7);
  EXPECT_EQ(image.width(), 4u);
  EXPECT_EQ(image.height(), 3u);
  EXPECT_EQ(image.at(3, 2), 7);
  image.set(1, 1, 200);
  EXPECT_EQ(image.at(1, 1), 200);
  EXPECT_THROW((void)image.at(4, 0), std::logic_error);
  EXPECT_THROW(Image(0, 5), std::logic_error);
}

TEST(CascadeImage, NoiseCoversRange) {
  dist::Xoshiro256 rng(1);
  const Image image = noise_image(200, 200, rng);
  int low = 0;
  int high = 0;
  for (std::size_t y = 0; y < 200; ++y) {
    for (std::size_t x = 0; x < 200; ++x) {
      low += image.at(x, y) < 64;
      high += image.at(x, y) >= 192;
    }
  }
  EXPECT_NEAR(low, 10000, 1000);
  EXPECT_NEAR(high, 10000, 1000);
}

TEST(CascadeImage, PlantObjectCheckerStructure) {
  dist::Xoshiro256 rng(2);
  Image image(64, 64, 128);
  plant_object(image, 10, 10, 16, 0, rng);  // no jitter
  EXPECT_EQ(image.at(10, 10), 208);   // bright top-left
  EXPECT_EQ(image.at(25, 25), 208);   // bright bottom-right
  EXPECT_EQ(image.at(25, 10), 48);    // dark top-right
  EXPECT_EQ(image.at(10, 25), 48);    // dark bottom-left
  EXPECT_THROW(plant_object(image, 60, 60, 16, 0, rng), std::logic_error);
}

TEST(CascadeImage, IntegralRectSums) {
  Image image(4, 4, 1);  // all ones
  image.set(2, 2, 5);
  const IntegralImage integral(image);
  EXPECT_EQ(integral.rect_sum(0, 0, 4, 4), 16 - 1 + 5);
  EXPECT_EQ(integral.rect_sum(0, 0, 1, 1), 1);
  EXPECT_EQ(integral.rect_sum(2, 2, 3, 3), 5);
  EXPECT_EQ(integral.rect_sum(1, 1, 1, 3), 0);  // empty width
  EXPECT_THROW((void)integral.rect_sum(0, 0, 5, 1), std::logic_error);
}

TEST(CascadeImage, IntegralMatchesBruteForce) {
  dist::Xoshiro256 rng(3);
  const Image image = noise_image(37, 29, rng);
  const IntegralImage integral(image);
  for (int check = 0; check < 50; ++check) {
    const std::size_t x0 = rng.uniform_below(37);
    const std::size_t y0 = rng.uniform_below(29);
    const std::size_t x1 = x0 + rng.uniform_below(37 - x0 + 1);
    const std::size_t y1 = y0 + rng.uniform_below(29 - y0 + 1);
    std::int64_t expected = 0;
    for (std::size_t y = y0; y < y1; ++y) {
      for (std::size_t x = x0; x < x1; ++x) expected += image.at(x, y);
    }
    EXPECT_EQ(integral.rect_sum(x0, y0, x1, y1), expected);
  }
}

// ----------------------------------------------------------------- Features

TEST(CascadeFeatures, CheckerFeatureFiresOnPlantedObject) {
  dist::Xoshiro256 rng(4);
  Image image(96, 96, 128);
  plant_object(image, 40, 40, 24, 0, rng);
  const IntegralImage integral(image);

  HaarFeature checker;
  checker.kind = HaarFeature::Kind::kFourRectChecker;
  checker.x = 0;
  checker.y = 0;
  checker.width = 24;
  checker.height = 24;
  std::uint64_t ops = 0;
  // On the object: strongly positive (bright diagonal quadrants).
  EXPECT_GT(checker.evaluate(integral, 40, 40, ops), 20000);
  // On flat background far from the object: exactly zero.
  EXPECT_EQ(checker.evaluate(integral, 0, 0, ops), 0);
  EXPECT_EQ(ops, 8u);  // two evaluations x 4 rectangles
}

TEST(CascadeFeatures, TwoRectOnGradient) {
  // Left half bright, right half dark: horizontal two-rect is positive.
  Image image(16, 16, 0);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 8; ++x) image.set(x, y, 100);
  }
  const IntegralImage integral(image);
  HaarFeature feature;
  feature.kind = HaarFeature::Kind::kTwoRectHorizontal;
  feature.width = 16;
  feature.height = 16;
  std::uint64_t ops = 0;
  EXPECT_EQ(feature.evaluate(integral, 0, 0, ops), 100 * 8 * 16);
  feature.kind = HaarFeature::Kind::kTwoRectVertical;
  EXPECT_EQ(feature.evaluate(integral, 0, 0, ops), 0);  // symmetric halves
}

TEST(CascadeFeatures, RandomFeaturesFitWindow) {
  dist::Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const HaarFeature feature = random_feature(24, rng);
    EXPECT_LE(feature.x + feature.width, 24u);
    EXPECT_LE(feature.y + feature.height, 24u);
    EXPECT_GE(feature.width, 2u);
    EXPECT_GE(feature.height, 2u);
    if (feature.kind == HaarFeature::Kind::kThreeRectHorizontal) {
      EXPECT_EQ(feature.width % 3, 0u);
    }
  }
}

// ----------------------------------------------------------------- Detector

struct Trained {
  Scene scene;
  Detector detector;
};

Trained train_fixture(std::uint64_t seed = 6) {
  dist::Xoshiro256 rng(seed);
  SceneConfig scene_config;
  scene_config.width = 512;
  scene_config.height = 512;
  scene_config.object_count = 12;
  Scene scene = make_scene(scene_config, rng);
  DetectorConfig config;
  auto detector = Detector::train(scene, config, rng);
  EXPECT_TRUE(detector.ok());
  return Trained{std::move(scene), std::move(detector).take()};
}

TEST(Detector, TrainValidatesConfig) {
  dist::Xoshiro256 rng(7);
  const Scene scene = make_scene({}, rng);
  DetectorConfig mismatched;
  mismatched.stage_pass_rates = {0.5};
  EXPECT_FALSE(Detector::train(scene, mismatched, rng).ok());
  DetectorConfig bad_rate;
  bad_rate.stage_pass_rates = {0.4, 0.25, 0.12, 1.5};
  EXPECT_FALSE(Detector::train(scene, bad_rate, rng).ok());
}

TEST(Detector, StagesGrowInCost) {
  const Trained fixture = train_fixture();
  for (std::size_t s = 1; s < fixture.detector.stage_count(); ++s) {
    EXPECT_GT(fixture.detector.stage(s).stumps.size(),
              fixture.detector.stage(s - 1).stumps.size());
  }
}

TEST(Detector, BackgroundPassRatesNearTargets) {
  const Trained fixture = train_fixture();
  const IntegralImage integral(fixture.scene.image);
  dist::Xoshiro256 rng(8);
  // Fresh background windows (mostly background: objects cover ~1%).
  int passed = 0;
  constexpr int kProbes = 5000;
  std::uint64_t ops = 0;
  for (int i = 0; i < kProbes; ++i) {
    const std::size_t wx = rng.uniform_below(512 - 24 + 1);
    const std::size_t wy = rng.uniform_below(512 - 24 + 1);
    passed += fixture.detector.stage_pass(0, integral, wx, wy, ops);
  }
  const double rate = static_cast<double>(passed) / kProbes;
  // Calibrated to <= 0.4; discrete vote thresholds can undershoot.
  EXPECT_LE(rate, 0.45);
  EXPECT_GT(rate, 0.02);
}

TEST(Detector, ObjectsScoreBetterThanBackground) {
  const Trained fixture = train_fixture();
  const IntegralImage integral(fixture.scene.image);
  std::uint64_t ops = 0;
  int objects_passing_stage0 = 0;
  for (const auto& [x, y] : fixture.scene.object_origins) {
    objects_passing_stage0 +=
        fixture.detector.stage_pass(0, integral, x, y, ops);
  }
  // Stage 0 passes <= 40% of background; planted objects should do better.
  EXPECT_GT(objects_passing_stage0,
            static_cast<int>(fixture.scene.object_origins.size() / 2));
}

TEST(Detector, FirstRejectingStageConsistent) {
  const Trained fixture = train_fixture();
  const IntegralImage integral(fixture.scene.image);
  dist::Xoshiro256 rng(9);
  std::uint64_t ops = 0;
  for (int i = 0; i < 200; ++i) {
    const std::size_t wx = rng.uniform_below(512 - 24 + 1);
    const std::size_t wy = rng.uniform_below(512 - 24 + 1);
    const auto rejecting =
        fixture.detector.first_rejecting_stage(integral, wx, wy, ops);
    if (rejecting.has_value()) {
      std::uint64_t check_ops = 0;
      EXPECT_FALSE(fixture.detector.stage_pass(*rejecting, integral, wx, wy,
                                               check_ops));
      for (std::size_t s = 0; s < *rejecting; ++s) {
        EXPECT_TRUE(fixture.detector.stage_pass(s, integral, wx, wy, check_ops));
      }
    }
  }
}

// ------------------------------------------------------------------ Measure

TEST(CascadeMeasure, FlowConservedAndCostsGrow) {
  const Trained fixture = train_fixture(10);
  CascadeMeasureConfig config;
  config.window_count = 50000;
  const auto measurement = measure_cascade(fixture.detector, fixture.scene, config);
  ASSERT_EQ(measurement.stages.size(), 4u);
  EXPECT_EQ(measurement.stages[0].inputs, 50000u);
  for (std::size_t s = 1; s < 4; ++s) {
    EXPECT_EQ(measurement.stages[s].inputs, measurement.stages[s - 1].passed);
    EXPECT_GT(measurement.stages[s].mean_ops(),
              measurement.stages[s - 1].mean_ops());
  }
  EXPECT_EQ(measurement.detections, measurement.stages[3].passed);
}

TEST(CascadeMeasure, PipelineSpecIsSchedulable) {
  const Trained fixture = train_fixture(11);
  CascadeMeasureConfig config;
  config.window_count = 80000;
  const auto measurement = measure_cascade(fixture.detector, fixture.scene, config);
  auto spec = measurement.to_pipeline_spec(64);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  const auto& pipeline = spec.value();
  ASSERT_EQ(pipeline.size(), 4u);
  for (std::size_t s = 0; s + 1 < 4; ++s) {
    EXPECT_LT(pipeline.mean_gain(s), 1.0);  // pure filter cascade
  }

  // Schedule it: generous deadline relative to the (tiny) op-costs.
  const double tau0 = pipeline.mean_service_per_input() * 5.0;
  const double deadline = 500.0 * pipeline.service_time(3);
  core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig::optimistic(pipeline));
  auto solved = strategy.solve(tau0, deadline);
  ASSERT_TRUE(solved.ok()) << solved.error().message;
  EXPECT_LT(solved.value().predicted_active_fraction, 1.0);
}

TEST(CascadeMeasure, NoDataFailure) {
  CascadeMeasurement empty;
  EXPECT_FALSE(empty.to_pipeline_spec(64).ok());
}

}  // namespace
}  // namespace ripple::cascade
