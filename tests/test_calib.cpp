#include "calib/calibrate.hpp"

#include <gtest/gtest.h>

#include "blast/canonical.hpp"

namespace ripple::calib {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

CalibrationOptions fast_options() {
  CalibrationOptions options;
  options.trials = 10;            // reduced from the paper's 100 for test speed
  options.inputs_per_trial = 5000;  // reduced from 50000
  options.target_miss_free = 0.9;
  options.max_rounds = 24;
  options.base_seed = 2024;
  return options;
}

TEST(DefaultProbes, CoverPaperCorners) {
  const auto probes = default_probes();
  ASSERT_GE(probes.size(), 4u);
  bool fast_slack = false;
  bool slow_tight = false;
  for (const Probe& probe : probes) {
    if (probe.tau0 <= 1.0 && probe.deadline >= 3.5e5) fast_slack = true;
    if (probe.tau0 >= 100.0 && probe.deadline <= 2e4) slow_tight = true;
  }
  EXPECT_TRUE(fast_slack);
  EXPECT_TRUE(slow_tight);
}

TEST(CalibrateEnforced, RequiresProbes) {
  EXPECT_THROW((void)calibrate_enforced_waits(
                   blast_pipeline(),
                   core::EnforcedWaitsConfig::optimistic(blast_pipeline()), {},
                   fast_options()),
               std::logic_error);
}

TEST(CalibrateEnforced, PaperParametersAlreadyPass) {
  // With the paper's calibrated b = {1,3,9,6}, the loop should accept
  // immediately (round 0) on a mid-grid probe set.
  const std::vector<Probe> probes = {{10.0, 1.85e5}, {50.0, 1.85e5},
                                     {20.0, 1e5}};
  const auto result = calibrate_enforced_waits(
      blast_pipeline(),
      core::EnforcedWaitsConfig{blast::paper_calibrated_b()}, probes,
      fast_options());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_EQ(result.config.b, blast::paper_calibrated_b());
  EXPECT_GE(result.worst_miss_free, 0.9);
}

TEST(CalibrateEnforced, RaisesFromOptimisticStart) {
  // The paper's optimistic start (b_i = ceil(g_i)) missed frequently and had
  // to be raised; our loop must do the same and end with larger multipliers.
  // Probes sit at moderately tight deadlines where optimistic multipliers
  // let the optimizer over-stretch the firing intervals.
  const std::vector<Probe> probes = {{10.0, 6e4}, {20.0, 6e4}};
  CalibrationOptions options = fast_options();
  options.inputs_per_trial = 10000;
  const auto initial = core::EnforcedWaitsConfig::optimistic(blast_pipeline());
  const auto result =
      calibrate_enforced_waits(blast_pipeline(), initial, probes, options);
  EXPECT_TRUE(result.success) << result.log.back();
  double initial_sum = 0.0;
  double final_sum = 0.0;
  for (std::size_t i = 0; i < initial.b.size(); ++i) {
    initial_sum += initial.b[i];
    final_sum += result.config.b[i];
  }
  EXPECT_GT(final_sum, initial_sum);
  EXPECT_GE(result.worst_miss_free, options.target_miss_free);
  EXPECT_FALSE(result.log.empty());
}

TEST(CalibrateEnforced, InfeasibleProbesReported) {
  // All probes infeasible (deadline below minimal budget): no rounds help.
  const std::vector<Probe> probes = {{50.0, 1e4}};
  const auto result = calibrate_enforced_waits(
      blast_pipeline(),
      core::EnforcedWaitsConfig{blast::paper_calibrated_b()}, probes,
      fast_options());
  EXPECT_FALSE(result.success);
  ASSERT_FALSE(result.final_outcomes.empty());
  EXPECT_FALSE(result.final_outcomes[0].feasible);
}

TEST(CalibrateMonolithic, UnitParametersSuffice) {
  // Paper: "we observed no deadline misses in simulation even with b=1, S=1".
  const std::vector<Probe> probes = {{20.0, 1.85e5}, {50.0, 1e5},
                                     {100.0, 3.5e5}};
  const auto result = calibrate_monolithic(blast_pipeline(), {}, probes,
                                           fast_options());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_DOUBLE_EQ(result.config.b, 1.0);
  EXPECT_DOUBLE_EQ(result.config.S, 1.0);
}

TEST(CalibrateMonolithic, ReportsPerProbeOutcomes) {
  const std::vector<Probe> probes = {{20.0, 1.85e5}, {5.0, 1.85e5}};
  const auto result = calibrate_monolithic(blast_pipeline(), {}, probes,
                                           fast_options());
  ASSERT_EQ(result.final_outcomes.size(), 2u);
  EXPECT_TRUE(result.final_outcomes[0].feasible);
  EXPECT_FALSE(result.final_outcomes[1].feasible);  // tau0=5 is unstable
  EXPECT_GT(result.final_outcomes[0].mean_active_fraction, 0.0);
}

TEST(CalibrateMonolithic, GivesUpWhenNothingFeasible) {
  const std::vector<Probe> probes = {{5.0, 1.85e5}};  // unstable for monolithic
  const auto result = calibrate_monolithic(blast_pipeline(), {}, probes,
                                           fast_options());
  EXPECT_FALSE(result.success);
}

}  // namespace
}  // namespace ripple::calib
