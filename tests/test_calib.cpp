#include "calib/calibrate.hpp"

#include <gtest/gtest.h>

#include "blast/batch_stages.hpp"
#include "blast/canonical.hpp"
#include "calib/kernel_costs.hpp"
#include "core/enforced_waits.hpp"

namespace ripple::calib {
namespace {

sdf::PipelineSpec blast_pipeline() { return blast::canonical_blast_pipeline(); }

CalibrationOptions fast_options() {
  CalibrationOptions options;
  options.trials = 10;            // reduced from the paper's 100 for test speed
  options.inputs_per_trial = 5000;  // reduced from 50000
  options.target_miss_free = 0.9;
  options.max_rounds = 24;
  options.base_seed = 2024;
  return options;
}

TEST(DefaultProbes, CoverPaperCorners) {
  const auto probes = default_probes();
  ASSERT_GE(probes.size(), 4u);
  bool fast_slack = false;
  bool slow_tight = false;
  for (const Probe& probe : probes) {
    if (probe.tau0 <= 1.0 && probe.deadline >= 3.5e5) fast_slack = true;
    if (probe.tau0 >= 100.0 && probe.deadline <= 2e4) slow_tight = true;
  }
  EXPECT_TRUE(fast_slack);
  EXPECT_TRUE(slow_tight);
}

TEST(CalibrateEnforced, RequiresProbes) {
  EXPECT_THROW((void)calibrate_enforced_waits(
                   blast_pipeline(),
                   core::EnforcedWaitsConfig::optimistic(blast_pipeline()), {},
                   fast_options()),
               std::logic_error);
}

TEST(CalibrateEnforced, PaperParametersAlreadyPass) {
  // With the paper's calibrated b = {1,3,9,6}, the loop should accept
  // immediately (round 0) on a mid-grid probe set.
  const std::vector<Probe> probes = {{10.0, 1.85e5}, {50.0, 1.85e5},
                                     {20.0, 1e5}};
  const auto result = calibrate_enforced_waits(
      blast_pipeline(),
      core::EnforcedWaitsConfig{blast::paper_calibrated_b()}, probes,
      fast_options());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_EQ(result.config.b, blast::paper_calibrated_b());
  EXPECT_GE(result.worst_miss_free, 0.9);
}

TEST(CalibrateEnforced, RaisesFromOptimisticStart) {
  // The paper's optimistic start (b_i = ceil(g_i)) missed frequently and had
  // to be raised; our loop must do the same and end with larger multipliers.
  // Probes sit at moderately tight deadlines where optimistic multipliers
  // let the optimizer over-stretch the firing intervals.
  const std::vector<Probe> probes = {{10.0, 6e4}, {20.0, 6e4}};
  CalibrationOptions options = fast_options();
  options.inputs_per_trial = 10000;
  const auto initial = core::EnforcedWaitsConfig::optimistic(blast_pipeline());
  const auto result =
      calibrate_enforced_waits(blast_pipeline(), initial, probes, options);
  EXPECT_TRUE(result.success) << result.log.back();
  double initial_sum = 0.0;
  double final_sum = 0.0;
  for (std::size_t i = 0; i < initial.b.size(); ++i) {
    initial_sum += initial.b[i];
    final_sum += result.config.b[i];
  }
  EXPECT_GT(final_sum, initial_sum);
  EXPECT_GE(result.worst_miss_free, options.target_miss_free);
  EXPECT_FALSE(result.log.empty());
}

TEST(CalibrateEnforced, InfeasibleProbesReported) {
  // All probes infeasible (deadline below minimal budget): no rounds help.
  const std::vector<Probe> probes = {{50.0, 1e4}};
  const auto result = calibrate_enforced_waits(
      blast_pipeline(),
      core::EnforcedWaitsConfig{blast::paper_calibrated_b()}, probes,
      fast_options());
  EXPECT_FALSE(result.success);
  ASSERT_FALSE(result.final_outcomes.empty());
  EXPECT_FALSE(result.final_outcomes[0].feasible);
}

TEST(CalibrateMonolithic, UnitParametersSuffice) {
  // Paper: "we observed no deadline misses in simulation even with b=1, S=1".
  const std::vector<Probe> probes = {{20.0, 1.85e5}, {50.0, 1e5},
                                     {100.0, 3.5e5}};
  const auto result = calibrate_monolithic(blast_pipeline(), {}, probes,
                                           fast_options());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_DOUBLE_EQ(result.config.b, 1.0);
  EXPECT_DOUBLE_EQ(result.config.S, 1.0);
}

TEST(CalibrateMonolithic, ReportsPerProbeOutcomes) {
  const std::vector<Probe> probes = {{20.0, 1.85e5}, {5.0, 1.85e5}};
  const auto result = calibrate_monolithic(blast_pipeline(), {}, probes,
                                           fast_options());
  ASSERT_EQ(result.final_outcomes.size(), 2u);
  EXPECT_TRUE(result.final_outcomes[0].feasible);
  EXPECT_FALSE(result.final_outcomes[1].feasible);  // tau0=5 is unstable
  EXPECT_GT(result.final_outcomes[0].mean_active_fraction, 0.0);
}

TEST(CalibrateMonolithic, GivesUpWhenNothingFeasible) {
  const std::vector<Probe> probes = {{5.0, 1.85e5}};  // unstable for monolithic
  const auto result = calibrate_monolithic(blast_pipeline(), {}, probes,
                                           fast_options());
  EXPECT_FALSE(result.success);
}


// --- Per-ISA kernel costs -> solver pricing (calib/kernel_costs.hpp) ---

/// A synthetic per-ISA cost surface: enough structure to exercise the
/// fall-down lookup (xdrop has no AVX2 measurement) and strongly non-uniform
/// speedups (the late stages gain far more than the early ones).
device::AutotuneReport synthetic_report() {
  using device::SimdLevel;
  device::AutotuneReport report;
  report.kernels = {
      {"blast.banded_dp",
       {{SimdLevel::kScalar, 1, 5000.0},
        {SimdLevel::kAvx2, 8, 1000.0},
        {SimdLevel::kAvx512, 16, 500.0}},
       SimdLevel::kAvx512},
      {"blast.seed_probe",
       {{SimdLevel::kScalar, 1, 8.0},
        {SimdLevel::kAvx2, 8, 4.0},
        {SimdLevel::kAvx512, 16, 2.0}},
       SimdLevel::kAvx512},
      {"blast.xdrop_extend",
       {{SimdLevel::kScalar, 1, 250.0},
        {SimdLevel::kAvx512, 16, 50.0}},
       SimdLevel::kAvx512},
  };
  return report;
}

TEST(KernelCosts, ResolvedCostFallsDownLikeTheRegistry) {
  using device::SimdLevel;
  const device::AutotuneReport report = synthetic_report();
  EXPECT_EQ(resolved_ns_per_item(report, "blast.banded_dp", SimdLevel::kAvx2),
            1000.0);
  // No AVX2 measurement for xdrop: capping at kAvx2 falls to scalar.
  EXPECT_EQ(resolved_ns_per_item(report, "blast.xdrop_extend",
                                 SimdLevel::kAvx2),
            250.0);
  EXPECT_EQ(resolved_ns_per_item(report, "blast.xdrop_extend",
                                 SimdLevel::kAvx512),
            50.0);
  EXPECT_FALSE(resolved_ns_per_item(report, "unknown", SimdLevel::kAvx512)
                   .has_value());
}

TEST(KernelCosts, StageScalesAreMeasuredRatios) {
  using device::SimdLevel;
  const std::vector<double> scales =
      stage_scales(synthetic_report(), blast::stage_kernel_names(),
                   SimdLevel::kScalar, SimdLevel::kAvx512);
  ASSERT_EQ(scales.size(), 4u);
  EXPECT_DOUBLE_EQ(scales[0], 2.0 / 8.0);     // seed_probe
  EXPECT_DOUBLE_EQ(scales[1], 1.0);           // expansion: no vector kernel
  EXPECT_DOUBLE_EQ(scales[2], 50.0 / 250.0);  // xdrop_extend
  EXPECT_DOUBLE_EQ(scales[3], 500.0 / 5000.0);  // banded_dp
}

TEST(KernelCosts, RepriceKeepsStructureAndScalesServiceTimes) {
  const sdf::PipelineSpec base = blast_pipeline();
  const std::vector<double> scales = {0.25, 1.0, 0.2, 0.1};
  const auto repriced = reprice_pipeline(base, scales);
  ASSERT_TRUE(repriced.ok()) << repriced.error().message;
  const sdf::PipelineSpec& spec = repriced.value();
  ASSERT_EQ(spec.size(), base.size());
  EXPECT_EQ(spec.simd_width(), base.simd_width());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(spec.service_time(i),
                     base.service_time(i) * scales[i])
        << "node " << i;
    EXPECT_EQ(spec.node(i).name, base.node(i).name);
    EXPECT_DOUBLE_EQ(spec.mean_gain(i), base.mean_gain(i));
  }
}

TEST(KernelCosts, PerIsaStageCostsShiftTheSolvedPlan) {
  // The demonstration the registry's calib loop exists for: t_i measured
  // under scalar kernels vs the same pipeline repriced for AVX-512 dispatch
  // produce materially different enforced-waits schedules, not a rescaled
  // copy — the late stages get 5-10x cheaper while the front barely moves,
  // so the optimizer re-balances the firing intervals across nodes.
  const sdf::PipelineSpec scalar_priced = blast_pipeline();
  const auto repriced = reprice_pipeline(
      scalar_priced,
      stage_scales(synthetic_report(), blast::stage_kernel_names(),
                   device::SimdLevel::kScalar, device::SimdLevel::kAvx512));
  ASSERT_TRUE(repriced.ok()) << repriced.error().message;

  const core::EnforcedWaitsConfig config{blast::paper_calibrated_b()};
  const core::EnforcedWaitsStrategy before(scalar_priced, config);
  const core::EnforcedWaitsStrategy after(repriced.value(), config);

  // Solve where the deadline budget binds (slack deadlines let the chain
  // constraints pin the interval ratios regardless of t_i, hiding the
  // shift). Both pipelines are feasible here: the scalar-priced one needs
  // ~2.3e4 cycles minimum at this rate.
  const Cycles tau0 = 20.0;
  const Cycles deadline = 5e4;
  const auto plan_before = before.solve(tau0, deadline);
  const auto plan_after = after.solve(tau0, deadline);
  ASSERT_TRUE(plan_before.ok()) << plan_before.error().message;
  ASSERT_TRUE(plan_after.ok()) << plan_after.error().message;

  // Cheaper kernels buy a lower active fraction and a smaller minimum
  // feasible deadline...
  EXPECT_LT(plan_after.value().predicted_active_fraction,
            plan_before.value().predicted_active_fraction);
  EXPECT_LT(after.min_feasible_deadline(tau0),
            before.min_feasible_deadline(tau0));

  // ...and the plan *shape* moves: the sink's share of the firing-interval
  // budget collapses relative to the front stage (its kernel got 10x
  // cheaper, the front's only 4x).
  const auto share = [](const core::EnforcedWaitsSchedule& plan) {
    return plan.firing_intervals[3] / plan.firing_intervals[0];
  };
  EXPECT_LT(share(plan_after.value()), 0.75 * share(plan_before.value()));
}

}  // namespace
}  // namespace ripple::calib
