#include "blast/index.hpp"

#include <gtest/gtest.h>

namespace ripple::blast {
namespace {

Sequence from_text(const std::string& text) {
  Sequence seq;
  for (char c : text) {
    switch (c) {
      case 'A': seq.push_back(0); break;
      case 'C': seq.push_back(1); break;
      case 'G': seq.push_back(2); break;
      case 'T': seq.push_back(3); break;
      default: ADD_FAILURE() << "bad base " << c;
    }
  }
  return seq;
}

TEST(EncodeKmer, KnownCodes) {
  const Sequence seq = from_text("ACGT");
  EXPECT_EQ(encode_kmer(seq, 0, 1), 0u);               // A
  EXPECT_EQ(encode_kmer(seq, 1, 1), 1u);               // C
  EXPECT_EQ(encode_kmer(seq, 0, 2), 0b0001u);          // AC
  EXPECT_EQ(encode_kmer(seq, 0, 4), 0b00011011u);      // ACGT
}

TEST(EncodeKmer, BoundsChecked) {
  const Sequence seq = from_text("ACGT");
  EXPECT_THROW((void)encode_kmer(seq, 2, 4), std::logic_error);
  EXPECT_THROW((void)encode_kmer(seq, 0, 0), std::logic_error);
}

TEST(KmerIndex, FindsAllOccurrences) {
  // "ACACAC": AC occurs at 0, 2, 4; CA at 1, 3.
  const Sequence query = from_text("ACACAC");
  const KmerIndex index(query, 2);
  std::size_t count = 0;
  const auto* positions = index.positions(encode_kmer(query, 0, 2), count);
  ASSERT_EQ(count, 3u);
  EXPECT_EQ(positions[0], 0u);
  EXPECT_EQ(positions[1], 2u);
  EXPECT_EQ(positions[2], 4u);

  const Sequence ca = from_text("CA");
  (void)index.positions(encode_kmer(ca, 0, 2), count);
  EXPECT_EQ(count, 2u);
}

TEST(KmerIndex, AbsentKmerEmpty) {
  const Sequence query = from_text("AAAA");
  const KmerIndex index(query, 2);
  const Sequence gg = from_text("GG");
  EXPECT_FALSE(index.contains(encode_kmer(gg, 0, 2)));
  std::size_t count = 99;
  (void)index.positions(encode_kmer(gg, 0, 2), count);
  EXPECT_EQ(count, 0u);
}

TEST(KmerIndex, TotalOccurrencesIsAllWindows) {
  dist::Xoshiro256 rng(1);
  const Sequence query = random_sequence(1000, rng);
  const KmerIndex index(query, 8);
  EXPECT_EQ(index.total_occurrences(), 1000u - 8u + 1u);
}

TEST(KmerIndex, DistinctCountBounded) {
  dist::Xoshiro256 rng(2);
  const Sequence query = random_sequence(5000, rng);
  const KmerIndex index(query, 6);
  EXPECT_LE(index.distinct_kmers(), 4096u);  // 4^6
  EXPECT_GT(index.distinct_kmers(), 2000u);  // birthday-style coverage
}

TEST(KmerIndex, RejectsOutOfRangeK) {
  dist::Xoshiro256 rng(3);
  const Sequence query = random_sequence(100, rng);
  EXPECT_THROW(KmerIndex(query, 0), std::logic_error);
  EXPECT_THROW(KmerIndex(query, 13), std::logic_error);
}

TEST(KmerIndex, RejectsShortQuery) {
  const Sequence query = from_text("AC");
  EXPECT_THROW(KmerIndex(query, 4), std::logic_error);
}

TEST(KmerIndex, RollingEncodeMatchesDirect) {
  // The constructor uses a rolling code; verify every indexed position
  // matches direct encoding.
  dist::Xoshiro256 rng(4);
  const Sequence query = random_sequence(2000, rng);
  const std::size_t k = 5;
  const KmerIndex index(query, k);
  for (std::size_t pos = 0; pos + k <= query.size(); pos += 37) {
    const KmerCode code = encode_kmer(query, pos, k);
    std::size_t count = 0;
    const auto* positions = index.positions(code, count);
    bool found = false;
    for (std::size_t i = 0; i < count; ++i) {
      found |= (positions[i] == pos);
    }
    EXPECT_TRUE(found) << "position " << pos;
  }
}

}  // namespace
}  // namespace ripple::blast
