// WorkStealingDeque unit and fuzz coverage: owner LIFO vs thief FIFO order,
// ring wraparound and growth, a single-threaded steal-vs-pop oracle, and a
// multi-thread delivery-exactly-once fuzz (the TSan soak target for the
// deque itself; the scheduler-level soak lives in test_runtime_parallel).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "dist/rng.hpp"
#include "util/work_deque.hpp"

namespace ripple::util {
namespace {

TEST(WorkDeque, OwnerPopsNewestThievesStealOldest) {
  WorkStealingDeque<int> deque;
  for (int i = 0; i < 8; ++i) deque.push(i);
  EXPECT_EQ(deque.size(), 8u);

  int out = -1;
  ASSERT_TRUE(deque.pop(out));
  EXPECT_EQ(out, 7);  // owner side is LIFO
  ASSERT_TRUE(deque.steal(out));
  EXPECT_EQ(out, 0);  // thief side is FIFO
  ASSERT_TRUE(deque.steal(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(deque.pop(out));
  EXPECT_EQ(out, 6);
  EXPECT_EQ(deque.size(), 4u);
}

TEST(WorkDeque, EmptyAndSingleElementRaces) {
  WorkStealingDeque<int> deque;
  int out = -1;
  EXPECT_FALSE(deque.pop(out));
  EXPECT_FALSE(deque.steal(out));

  deque.push(42);
  ASSERT_TRUE(deque.pop(out));
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(deque.pop(out));
  EXPECT_FALSE(deque.steal(out));

  deque.push(43);
  ASSERT_TRUE(deque.steal(out));
  EXPECT_EQ(out, 43);
  EXPECT_FALSE(deque.steal(out));
  EXPECT_FALSE(deque.pop(out));
}

TEST(WorkDeque, WraparoundAndGrowthKeepEveryValue) {
  // Interleave pushes and consumption so indices travel far past the initial
  // ring capacity (forcing wraparound) while the live size also exceeds it
  // (forcing growth). Every pushed value must come out exactly once.
  WorkStealingDeque<int> deque(8);
  std::vector<int> seen(20000, 0);
  int next = 0;
  int out = -1;
  dist::Xoshiro256 rng(7);
  while (next < 20000) {
    const std::uint64_t burst = 1 + rng.uniform_below(64);
    for (std::uint64_t b = 0; b < burst && next < 20000; ++b) {
      deque.push(next++);
    }
    // Drain roughly half of what is queued, alternating ends.
    std::uint64_t drain = deque.size() / 2;
    for (std::uint64_t d = 0; d < drain; ++d) {
      const bool from_top = (d & 1) != 0;
      if (from_top ? deque.steal(out) : deque.pop(out)) ++seen[out];
    }
  }
  while (deque.pop(out)) ++seen[out];
  for (int i = 0; i < 20000; ++i) ASSERT_EQ(seen[i], 1) << "value " << i;
}

TEST(WorkDeque, StealVsPopOracle) {
  // Single-threaded script fuzz against a std::deque oracle: pop must agree
  // with back(), steal with front(), size with size(). In the absence of
  // concurrency neither operation may spuriously fail.
  dist::Xoshiro256 rng(2024);
  for (int rep = 0; rep < 50; ++rep) {
    WorkStealingDeque<int> deque(8);
    std::deque<int> oracle;
    int next = 0;
    for (int op = 0; op < 4000; ++op) {
      const std::uint64_t dice = rng.uniform_below(10);
      int out = -1;
      if (dice < 5) {
        deque.push(next);
        oracle.push_back(next);
        ++next;
      } else if (dice < 8) {
        const bool got = deque.pop(out);
        ASSERT_EQ(got, !oracle.empty());
        if (got) {
          ASSERT_EQ(out, oracle.back());
          oracle.pop_back();
        }
      } else {
        const bool got = deque.steal(out);
        ASSERT_EQ(got, !oracle.empty());
        if (got) {
          ASSERT_EQ(out, oracle.front());
          oracle.pop_front();
        }
      }
      ASSERT_EQ(deque.size(), oracle.size());
    }
  }
}

TEST(WorkDeque, ConcurrentStealsDeliverExactlyOnce) {
  // One owner pushing and popping, several thieves stealing: every value is
  // delivered to exactly one consumer. Run under TSan in CI.
  constexpr int kValues = 200000;
  constexpr int kThieves = 3;
  WorkStealingDeque<int> deque(8);
  std::vector<std::atomic<int>> delivered(kValues);
  for (auto& d : delivered) d.store(0, std::memory_order_relaxed);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int out = -1;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.steal(out)) {
          delivered[out].fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (deque.steal(out)) {
        delivered[out].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  dist::Xoshiro256 rng(99);
  int next = 0;
  int out = -1;
  while (next < kValues) {
    const std::uint64_t burst = 1 + rng.uniform_below(32);
    for (std::uint64_t b = 0; b < burst && next < kValues; ++b) {
      deque.push(next++);
    }
    const std::uint64_t pops = rng.uniform_below(16);
    for (std::uint64_t p = 0; p < pops; ++p) {
      if (deque.pop(out)) {
        delivered[out].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  while (deque.pop(out)) delivered[out].fetch_add(1, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  for (auto& thief : thieves) thief.join();

  for (int i = 0; i < kValues; ++i) {
    ASSERT_EQ(delivered[i].load(std::memory_order_relaxed), 1)
        << "value " << i;
  }
}

}  // namespace
}  // namespace ripple::util
