// Adversarial wraparound fuzz and multi-producer concurrency tests for
// util::MpscQueue, the bounded lock-free ingest ring each service shard owns.
// The single-threaded fuzz drives irregular push/pop batches near capacity so
// the sequence stamps cross the wrap seam at many occupancies, checking every
// element against a std::deque oracle; the concurrent tests hammer one
// consumer with many producers and assert exact item conservation (every
// accepted push is popped exactly once, in per-producer FIFO order). The
// TSan CI job runs this binary to validate the acquire/release protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/rng.hpp"
#include "util/mpsc_queue.hpp"

namespace ripple {
namespace {

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(util::MpscQueue<int>(1).capacity(), 8u);
  EXPECT_EQ(util::MpscQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(util::MpscQueue<int>(9).capacity(), 16u);
  EXPECT_EQ(util::MpscQueue<int>(1000).capacity(), 1024u);
}

TEST(MpscQueueTest, RejectsCapacityBeyondTheRingBound) {
  // Regression: the power-of-two rounding loop used to be unchecked, so a
  // capacity above 2^63 overflowed `rounded` to zero and spun forever. The
  // constructor now rejects anything past the 2^32 ring bound up front.
  const std::size_t bound = std::size_t{1} << 32;
  EXPECT_THROW(util::MpscQueue<int>(bound + 1), std::logic_error);
  EXPECT_THROW(util::MpscQueue<int>(std::size_t{1} << 33), std::logic_error);
  // The old infinite-spin input, now an immediate error.
  EXPECT_THROW(util::MpscQueue<int>(~std::size_t{0}), std::logic_error);
  // In-bounds capacities still round up as documented.
  EXPECT_EQ(util::MpscQueue<int>(0).capacity(), 8u);
  EXPECT_EQ(util::MpscQueue<int>(7).capacity(), 8u);
}

TEST(MpscQueueTest, FullRingRejectsWithoutDropping) {
  util::MpscQueue<std::uint64_t> queue(8);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99));  // full: rejected, not overwritten
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
  // The freed lap is reusable.
  EXPECT_TRUE(queue.try_push(100));
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 100u);
}

TEST(MpscQueueFuzzTest, IrregularBatchesMatchDequeOracle) {
  dist::Xoshiro256 rng(0x5EED);
  util::MpscQueue<std::uint64_t> queue(64);
  std::deque<std::uint64_t> oracle;
  std::uint64_t next_value = 0;

  for (int round = 0; round < 40000; ++round) {
    // Skew pushes early, pops late: occupancy sweeps up to the full ring and
    // back so the stamp arithmetic wraps at every occupancy level, including
    // the full (diff < 0) and empty boundaries.
    const bool push_biased = round < 20000;
    const auto action = rng() % 100;
    if ((push_biased && action < 70) || (!push_biased && action < 30)) {
      const std::size_t n = 1 + rng() % 17;
      for (std::size_t i = 0; i < n; ++i) {
        if (queue.try_push(next_value)) {
          oracle.push_back(next_value);
        } else {
          ASSERT_EQ(oracle.size(), queue.capacity());  // full, and only full
        }
        ++next_value;
      }
    } else if (!oracle.empty()) {
      const std::size_t n =
          1 + rng() % std::min<std::size_t>(oracle.size(), 13);
      std::uint64_t out = 0;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(queue.try_pop(out));
        ASSERT_EQ(out, oracle.front());
        oracle.pop_front();
      }
    }
    ASSERT_EQ(queue.approx_size(), oracle.size());
  }
}

TEST(MpscQueueFuzzTest, ManyLapsAtNearFullOccupancy) {
  // Hold the ring one short of full while the positions advance thousands of
  // laps: every push and pop lands adjacent to the wrap seam.
  util::MpscQueue<std::uint32_t> queue(8);
  std::deque<std::uint32_t> oracle;
  std::uint32_t next_value = 0;
  for (std::uint32_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(queue.try_push(next_value));
    oracle.push_back(next_value);
    ++next_value;
  }
  std::uint32_t out = 0;
  for (int lap = 0; lap < 8192; ++lap) {
    ASSERT_TRUE(queue.try_push(next_value));
    oracle.push_back(next_value);
    ++next_value;
    ASSERT_FALSE(queue.try_push(next_value));  // exactly full now
    ASSERT_TRUE(queue.try_pop(out));
    ASSERT_EQ(out, oracle.front());
    oracle.pop_front();
  }
}

TEST(MpscQueueFuzzTest, MoveOnlyPayloadsSurviveRecycling) {
  // unique_ptr payloads: double-free or a dropped item would crash or leak
  // (ASan-visible); the value reset on pop releases each lap's payloads.
  util::MpscQueue<std::unique_ptr<std::uint64_t>> queue(8);
  std::uint64_t next_value = 0;
  std::uint64_t expected = 0;
  std::unique_ptr<std::uint64_t> out;
  for (int round = 0; round < 5000; ++round) {
    for (int i = 0; i < 3; ++i) {
      queue.try_push(std::make_unique<std::uint64_t>(next_value++));
    }
    for (int i = 0; i < 3 && queue.try_pop(out); ++i) {
      ASSERT_NE(out, nullptr);
      ASSERT_EQ(*out, expected++);
    }
  }
  while (queue.try_pop(out)) ASSERT_EQ(*out, expected++);
  ASSERT_EQ(expected, next_value);
}

TEST(MpscQueueConcurrencyTest, MultiProducerConservationAndFifoPerProducer) {
  // Each pushed value encodes (producer, sequence). The consumer checks that
  // per-producer sequences arrive strictly increasing (per-producer FIFO is
  // the order guarantee MPSC makes) and that accepted == popped exactly.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  util::MpscQueue<std::uint64_t> queue(256);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value = (static_cast<std::uint64_t>(p) << 32) | i;
        // Spin until accepted: conservation needs every value in exactly once.
        while (!queue.try_push(value)) std::this_thread::yield();
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::uint64_t popped = 0;
  std::uint64_t last_seq[kProducers] = {};
  bool seen[kProducers] = {};
  std::thread consumer([&] {
    std::uint64_t value = 0;
    for (;;) {
      if (queue.try_pop(value)) {
        const auto p = static_cast<std::size_t>(value >> 32);
        const std::uint64_t seq = value & 0xFFFFFFFFull;
        ASSERT_LT(p, kProducers);
        if (seen[p]) ASSERT_GT(seq, last_seq[p]);
        seen[p] = true;
        last_seq[p] = seq;
        ++popped;
      } else if (done.load(std::memory_order_acquire)) {
        if (!queue.try_pop(value)) break;
        const auto p = static_cast<std::size_t>(value >> 32);
        const std::uint64_t seq = value & 0xFFFFFFFFull;
        if (seen[p]) ASSERT_GT(seq, last_seq[p]);
        seen[p] = true;
        last_seq[p] = seq;
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (std::thread& thread : producers) thread.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped, kProducers * kPerProducer);
  std::uint64_t leftover = 0;
  EXPECT_FALSE(queue.try_pop(leftover));
}

TEST(MpscQueueConcurrencyTest, BoundedLossyProducersConserveCounts) {
  // Producers do NOT retry (the service's backpressure path): accepted and
  // rejected must partition the attempts, and exactly the accepted items
  // come out. Tiny ring maximizes full-ring contention.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kAttempts = 30000;
  util::MpscQueue<std::uint64_t> queue(16);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kAttempts; ++i) {
        if (queue.try_push((static_cast<std::uint64_t>(p) << 32) | i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::atomic<std::uint64_t> popped{0};
  std::thread consumer([&] {
    std::uint64_t value = 0;
    for (;;) {
      if (queue.try_pop(value)) {
        popped.fetch_add(1, std::memory_order_relaxed);
      } else if (done.load(std::memory_order_acquire)) {
        if (!queue.try_pop(value)) break;
        popped.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::thread& thread : producers) thread.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kAttempts);
  EXPECT_EQ(popped.load(), accepted.load());
}

}  // namespace
}  // namespace ripple
