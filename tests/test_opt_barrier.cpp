#include "opt/barrier.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "opt/kkt.hpp"

namespace ripple::opt {
namespace {

/// min (x-2)^2 + (y-3)^2 over the box [0,1]^2: optimum at the corner (1,1).
ConvexProblem boxed_quadratic() {
  ConvexProblem p;
  p.objective = [](const linalg::Vector& x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] - 3.0) * (x[1] - 3.0);
  };
  p.gradient = [](const linalg::Vector& x) {
    return linalg::Vector{2.0 * (x[0] - 2.0), 2.0 * (x[1] - 3.0)};
  };
  p.hessian = [](const linalg::Vector& x) {
    linalg::Matrix h(x.size(), x.size());
    h(0, 0) = 2.0;
    h(1, 1) = 2.0;
    return h;
  };
  p.lower_bounds = {0.0, 0.0};
  p.upper_bounds = {1.0, 1.0};
  return p;
}

/// min sum t_i/x_i  s.t.  sum x_i <= B, x_i >= t_i — a 2-node instance of the
/// enforced-waits objective with analytic water-filling optimum
/// x_i proportional to sqrt(t_i).
ConvexProblem waterfilling(double t0, double t1, double budget) {
  ConvexProblem p;
  p.objective = [t0, t1](const linalg::Vector& x) {
    return t0 / x[0] + t1 / x[1];
  };
  p.gradient = [t0, t1](const linalg::Vector& x) {
    return linalg::Vector{-t0 / (x[0] * x[0]), -t1 / (x[1] * x[1])};
  };
  p.hessian = [t0, t1](const linalg::Vector& x) {
    linalg::Matrix h(2, 2);
    h(0, 0) = 2.0 * t0 / (x[0] * x[0] * x[0]);
    h(1, 1) = 2.0 * t1 / (x[1] * x[1] * x[1]);
    return h;
  };
  p.lower_bounds = {t0, t1};
  p.upper_bounds = {kInf, kInf};
  LinearInequality sum;
  sum.coefficients = {1.0, 1.0};
  sum.rhs = budget;
  sum.label = "budget";
  p.constraints.push_back(sum);
  return p;
}

TEST(Barrier, BoxCornerOptimum) {
  const ConvexProblem p = boxed_quadratic();
  auto solved = barrier_minimize(p, {0.5, 0.5});
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.value().x[0], 1.0, 1e-5);
  EXPECT_NEAR(solved.value().x[1], 1.0, 1e-5);
  EXPECT_NEAR(solved.value().objective, 1.0 + 4.0, 1e-4);
}

TEST(Barrier, InteriorOptimumWhenUnconstrained) {
  ConvexProblem p = boxed_quadratic();
  p.upper_bounds = {10.0, 10.0};  // now (2,3) is interior
  auto solved = barrier_minimize(p, {0.5, 0.5});
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.value().x[0], 2.0, 1e-5);
  EXPECT_NEAR(solved.value().x[1], 3.0, 1e-5);
}

TEST(Barrier, WaterfillingMatchesAnalyticOptimum) {
  const double t0 = 287.0;
  const double t1 = 2753.0;
  const double budget = 20000.0;
  const ConvexProblem p = waterfilling(t0, t1, budget);
  auto solved = barrier_minimize(p, {1000.0, 5000.0});
  ASSERT_TRUE(solved.ok());
  const double denom = std::sqrt(t0) + std::sqrt(t1);
  EXPECT_NEAR(solved.value().x[0], budget * std::sqrt(t0) / denom, 0.5);
  EXPECT_NEAR(solved.value().x[1], budget * std::sqrt(t1) / denom, 0.5);
}

TEST(Barrier, SolutionSatisfiesKkt) {
  const ConvexProblem p = waterfilling(100.0, 900.0, 5000.0);
  auto solved = barrier_minimize(p, {500.0, 1500.0});
  ASSERT_TRUE(solved.ok());
  const KktReport report = check_kkt(p, solved.value().x, 1e-3);
  EXPECT_TRUE(report.satisfied(1e-4))
      << "stationarity " << report.stationarity_residual << ", infeas "
      << report.primal_infeasibility << ", min mult " << report.min_multiplier;
}

TEST(Barrier, RejectsNonInteriorStart) {
  const ConvexProblem p = boxed_quadratic();
  auto on_boundary = barrier_minimize(p, {0.0, 0.5});
  ASSERT_FALSE(on_boundary.ok());
  EXPECT_EQ(on_boundary.error().code, "not_interior");
  auto outside = barrier_minimize(p, {-1.0, 0.5});
  ASSERT_FALSE(outside.ok());
}

TEST(Barrier, WorksWithoutExplicitHessian) {
  ConvexProblem p = boxed_quadratic();
  p.hessian = nullptr;  // falls back to barrier-only curvature
  auto solved = barrier_minimize(p, {0.5, 0.5});
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.value().x[0], 1.0, 1e-3);
  EXPECT_NEAR(solved.value().x[1], 1.0, 1e-3);
}

TEST(Barrier, TightBudgetPinsToLowerBounds) {
  // Budget exactly t0 + t1 + small slack: optimum hugs the lower bounds.
  const ConvexProblem p = waterfilling(100.0, 400.0, 510.0);
  auto solved = barrier_minimize(p, {102.0, 405.0});
  ASSERT_TRUE(solved.ok());
  EXPECT_GE(solved.value().x[0], 100.0 - 1e-9);
  EXPECT_GE(solved.value().x[1], 400.0 - 1e-9);
  EXPECT_LE(solved.value().x[0] + solved.value().x[1], 510.0 + 1e-6);
}

/// Property: across budgets, the solver's objective is never worse than the
/// value at any vertex of a feasibility probe grid.
class BarrierBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BarrierBudgetSweep, BeatsGridProbes) {
  const double budget = GetParam();
  const double t0 = 287.0;
  const double t1 = 955.0;
  const ConvexProblem p = waterfilling(t0, t1, budget);
  // Strictly interior start near the lower corner.
  auto solved = barrier_minimize(p, {t0 + 1.0, t1 + 1.0});
  ASSERT_TRUE(solved.ok());
  for (double f = 0.05; f < 1.0; f += 0.05) {
    const double x0 = t0 + f * (budget - t0 - t1);
    const double x1 = budget - x0;
    if (x1 < t1) continue;
    const double probe = t0 / x0 + t1 / x1;
    EXPECT_LE(solved.value().objective, probe + 1e-6) << "f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BarrierBudgetSweep,
                         ::testing::Values(1250.0, 1500.0, 2000.0, 5000.0,
                                           20000.0, 100000.0));

}  // namespace
}  // namespace ripple::opt
