#include <gtest/gtest.h>

#include "blast/canonical.hpp"
#include "device/occupancy.hpp"
#include "device/simd_device.hpp"

namespace ripple::device {
namespace {

TEST(SimdDevice, RejectsDegenerateConfigurations) {
  EXPECT_THROW(SimdDevice(0, 4), std::logic_error);
  EXPECT_THROW(SimdDevice(128, 0), std::logic_error);
}

TEST(SimdDevice, ForPipelineMatchesSpec) {
  const auto blast = blast::canonical_blast_pipeline();
  const SimdDevice device = SimdDevice::for_pipeline(blast);
  EXPECT_EQ(device.vector_width(), 128u);
  EXPECT_EQ(device.node_count(), 4u);
}

TEST(SimdDevice, NodeShareIsOneOverN) {
  SimdDevice device(128, 4);
  EXPECT_DOUBLE_EQ(device.node_share(), 0.25);
}

TEST(SimdDevice, FiringDurationIsServiceTime) {
  // The paper defines t_i as already measured under the 1/N share.
  SimdDevice device(128, 4);
  EXPECT_DOUBLE_EQ(device.firing_duration(955.0), 955.0);
}

TEST(SimdDevice, ExclusiveFiringScalesByShare) {
  SimdDevice device(128, 4);
  EXPECT_DOUBLE_EQ(device.exclusive_firing_duration(955.0), 955.0 / 4.0);
}

TEST(SimdDevice, ItemsConsumedCapsAtWidth) {
  SimdDevice device(128, 4);
  EXPECT_EQ(device.items_consumed(0), 0u);
  EXPECT_EQ(device.items_consumed(57), 57u);
  EXPECT_EQ(device.items_consumed(128), 128u);
  EXPECT_EQ(device.items_consumed(1000), 128u);
}

TEST(SimdDevice, OccupancyFractions) {
  SimdDevice device(128, 4);
  EXPECT_DOUBLE_EQ(device.occupancy(0), 0.0);
  EXPECT_DOUBLE_EQ(device.occupancy(64), 0.5);
  EXPECT_DOUBLE_EQ(device.occupancy(128), 1.0);
}

TEST(OccupancyTracker, CountsPerNode) {
  SimdDevice device(4, 2);
  OccupancyTracker tracker(device, 2);
  tracker.record_firing(0, 4);
  tracker.record_firing(0, 2);
  tracker.record_firing(0, 0);
  tracker.record_firing(1, 1);

  EXPECT_EQ(tracker.firings(0), 3u);
  EXPECT_EQ(tracker.empty_firings(0), 1u);
  EXPECT_EQ(tracker.items_consumed(0), 6u);
  EXPECT_DOUBLE_EQ(tracker.mean_occupancy(0), 6.0 / 12.0);
  EXPECT_DOUBLE_EQ(tracker.mean_nonempty_occupancy(0), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(tracker.mean_occupancy(1), 0.25);
}

TEST(OccupancyTracker, OverallWeightsByFirings) {
  SimdDevice device(4, 2);
  OccupancyTracker tracker(device, 2);
  tracker.record_firing(0, 4);
  tracker.record_firing(1, 0);
  EXPECT_DOUBLE_EQ(tracker.overall_occupancy(), 4.0 / 8.0);
}

TEST(OccupancyTracker, NoFiringsIsZero) {
  SimdDevice device(4, 1);
  OccupancyTracker tracker(device, 1);
  EXPECT_DOUBLE_EQ(tracker.mean_occupancy(0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.mean_nonempty_occupancy(0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.overall_occupancy(), 0.0);
}

TEST(OccupancyTracker, RejectsOverWidthConsumption) {
  SimdDevice device(4, 1);
  OccupancyTracker tracker(device, 1);
  EXPECT_THROW(tracker.record_firing(0, 5), std::logic_error);
}

TEST(OccupancyTracker, RejectsBadNodeIndex) {
  SimdDevice device(4, 2);
  OccupancyTracker tracker(device, 2);
  EXPECT_THROW(tracker.record_firing(2, 1), std::logic_error);
  EXPECT_THROW((void)tracker.firings(2), std::logic_error);
}

}  // namespace
}  // namespace ripple::device
