#include "dist/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ripple::dist {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, ReseedResets) {
  Xoshiro256 a(9);
  const std::uint64_t first = a();
  a.reseed(9);
  EXPECT_EQ(a(), first);
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, Uniform01MeanNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Xoshiro, UniformBelowRespectsBound) {
  Xoshiro256 rng(11);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Xoshiro, UniformBelowOneAlwaysZero) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Xoshiro, UniformBelowCoversAllResidues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, UniformBelowApproximatelyUniform) {
  Xoshiro256 rng(19);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_below(kBound)];
  for (std::uint64_t r = 0; r < kBound; ++r) {
    EXPECT_NEAR(counts[r], kSamples / kBound, 500) << "residue " << r;
  }
}

TEST(DeriveSeed, DifferentCoordinatesDiffer) {
  EXPECT_NE(derive_seed({1, 2, 3}), derive_seed({1, 2, 4}));
  EXPECT_NE(derive_seed({1, 2, 3}), derive_seed({3, 2, 1}));
  EXPECT_NE(derive_seed({0}), derive_seed({0, 0}));
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed({5, 6}), derive_seed({5, 6}));
}

TEST(DeriveSeed, ZeroCoordinateWellMixed) {
  // Seeds near zero must not produce near-zero outputs.
  EXPECT_GT(derive_seed({0}), 1u << 20);
}

}  // namespace
}  // namespace ripple::dist
