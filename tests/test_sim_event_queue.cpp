#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ripple::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.push(3.0, 0, 3);
  q.push(1.0, 0, 1);
  q.push(2.0, 0, 2);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
}

TEST(EventQueue, PriorityBreaksTimeTies) {
  EventQueue<std::string> q;
  q.push(5.0, 2, "fire-start");
  q.push(5.0, 0, "fire-end");
  q.push(5.0, 1, "arrival");
  EXPECT_EQ(q.pop().payload, "fire-end");
  EXPECT_EQ(q.pop().payload, "arrival");
  EXPECT_EQ(q.pop().payload, "fire-start");
}

TEST(EventQueue, SequenceBreaksRemainingTies) {
  EventQueue<int> q;
  q.push(1.0, 0, 10);
  q.push(1.0, 0, 20);
  q.push(1.0, 0, 30);
  EXPECT_EQ(q.pop().payload, 10);  // FIFO among full ties
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
}

TEST(EventQueue, SizeAndEmpty) {
  EventQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1.0, 0, 1);
  q.push(2.0, 0, 2);
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue<int> q;
  q.push(1.0, 0, 42);
  EXPECT_EQ(q.top().payload, 42);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> q;
  q.push(10.0, 0, 1);
  q.push(20.0, 0, 2);
  EXPECT_EQ(q.pop().payload, 1);
  q.push(15.0, 0, 3);
  q.push(5.0, 0, 4);
  EXPECT_EQ(q.pop().payload, 4);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_EQ(q.pop().payload, 2);
}

TEST(EventQueue, LargeVolumeStaysSorted) {
  EventQueue<int> q;
  // Deterministic pseudo-random times.
  std::uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    q.push(static_cast<double>(state >> 40), 0, i);
  }
  double last = -1.0;
  while (!q.empty()) {
    const auto event = q.pop();
    EXPECT_GE(event.time, last);
    last = event.time;
  }
}

}  // namespace
}  // namespace ripple::sim
