#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "sim/event_sources.hpp"

namespace ripple::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.push(3.0, 0, 3);
  q.push(1.0, 0, 1);
  q.push(2.0, 0, 2);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
}

TEST(EventQueue, PriorityBreaksTimeTies) {
  EventQueue<std::string> q;
  q.push(5.0, 2, "fire-start");
  q.push(5.0, 0, "fire-end");
  q.push(5.0, 1, "arrival");
  EXPECT_EQ(q.pop().payload, "fire-end");
  EXPECT_EQ(q.pop().payload, "arrival");
  EXPECT_EQ(q.pop().payload, "fire-start");
}

TEST(EventQueue, SequenceBreaksRemainingTies) {
  EventQueue<int> q;
  q.push(1.0, 0, 10);
  q.push(1.0, 0, 20);
  q.push(1.0, 0, 30);
  EXPECT_EQ(q.pop().payload, 10);  // FIFO among full ties
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
}

TEST(EventQueue, SizeAndEmpty) {
  EventQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1.0, 0, 1);
  q.push(2.0, 0, 2);
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue<int> q;
  q.push(1.0, 0, 42);
  EXPECT_EQ(q.top().payload, 42);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> q;
  q.push(10.0, 0, 1);
  q.push(20.0, 0, 2);
  EXPECT_EQ(q.pop().payload, 1);
  q.push(15.0, 0, 3);
  q.push(5.0, 0, 4);
  EXPECT_EQ(q.pop().payload, 4);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_EQ(q.pop().payload, 2);
}

TEST(EventQueue, LargeVolumeStaysSorted) {
  EventQueue<int> q;
  // Deterministic pseudo-random times.
  std::uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    q.push(static_cast<double>(state >> 40), 0, i);
  }
  double last = -1.0;
  while (!q.empty()) {
    const auto event = q.pop();
    EXPECT_GE(event.time, last);
    last = event.time;
  }
}

TEST(EventQueue, StableOrderAcrossMixedTies) {
  // All three tie dimensions at once: time first, then priority, then the
  // insertion sequence.
  EventQueue<int> q;
  q.push(2.0, 1, 6);
  q.push(1.0, 1, 2);
  q.push(1.0, 0, 0);
  q.push(1.0, 1, 3);
  q.push(1.0, 2, 4);
  q.push(1.0, 0, 1);
  q.push(2.0, 0, 5);
  for (int expected = 0; expected < 7; ++expected) {
    EXPECT_EQ(q.pop().payload, expected);
  }
}

TEST(IndexedScheduler, OrdersByTime) {
  IndexedScheduler sched(3);
  sched.schedule(0, 3.0, 0);
  sched.schedule(1, 1.0, 0);
  sched.schedule(2, 2.0, 0);
  EXPECT_EQ(sched.pop().source, 1u);
  EXPECT_EQ(sched.pop().source, 2u);
  EXPECT_EQ(sched.pop().source, 0u);
  EXPECT_TRUE(sched.empty());
}

TEST(IndexedScheduler, PriorityBreaksTimeTies) {
  IndexedScheduler sched(3);
  sched.schedule(0, 5.0, 2);  // fire-start
  sched.schedule(1, 5.0, 0);  // fire-end
  sched.schedule(2, 5.0, 1);  // arrival
  EXPECT_EQ(sched.pop().source, 1u);
  EXPECT_EQ(sched.pop().source, 2u);
  EXPECT_EQ(sched.pop().source, 0u);
}

TEST(IndexedScheduler, InsertionOrderBreaksRemainingTies) {
  IndexedScheduler sched(3);
  sched.schedule(2, 1.0, 0);
  sched.schedule(0, 1.0, 0);
  sched.schedule(1, 1.0, 0);
  EXPECT_EQ(sched.pop().source, 2u);  // FIFO among full ties
  EXPECT_EQ(sched.pop().source, 0u);
  EXPECT_EQ(sched.pop().source, 1u);
}

TEST(IndexedScheduler, ReschedulingRefreshesSequence) {
  IndexedScheduler sched(2);
  sched.schedule(0, 1.0, 0);
  sched.schedule(1, 1.0, 0);
  // Re-arming source 0 at the same (time, priority) moves it behind source 1
  // in FIFO order, exactly as pop-and-repush would on an EventQueue.
  sched.schedule(0, 1.0, 0);
  EXPECT_EQ(sched.pop().source, 1u);
  EXPECT_EQ(sched.pop().source, 0u);
}

TEST(IndexedScheduler, CancelDisarms) {
  IndexedScheduler sched(2);
  sched.schedule(0, 1.0, 0);
  sched.schedule(1, 2.0, 0);
  sched.cancel(0);
  sched.cancel(0);  // idempotent
  EXPECT_FALSE(sched.armed(0));
  EXPECT_EQ(sched.pop().source, 1u);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.pop().source, IndexedScheduler::kNone);
}

TEST(IndexedScheduler, PopReturnsTimeAndDisarms) {
  IndexedScheduler sched(2);
  sched.schedule(1, 4.5, 1);
  const auto next = sched.pop();
  EXPECT_EQ(next.source, 1u);
  EXPECT_EQ(next.time, 4.5);
  EXPECT_FALSE(sched.armed(1));
}

TEST(IndexedScheduler, RejectsBadArguments) {
  IndexedScheduler sched(2);
  EXPECT_THROW(sched.schedule(2, 1.0, 0), std::logic_error);
  EXPECT_THROW(
      sched.schedule(0, std::numeric_limits<Cycles>::infinity(), 0),
      std::logic_error);
}

TEST(IndexedScheduler, HorizonMatchesComparatorExactly) {
  IndexedScheduler sched(3);
  sched.schedule(0, 10.0, 2);
  sched.schedule(1, 10.0, 0);
  sched.schedule(2, 12.0, 1);
  const auto horizon = sched.horizon();
  EXPECT_EQ(horizon.time, 10.0);
  EXPECT_EQ(horizon.min_priority, 0);
  // Strictly earlier time wins regardless of priority.
  EXPECT_TRUE(horizon.beaten_by(9.0, 5));
  // Equal time: only a strictly smaller priority wins (a fresh event's seq is
  // maximal, so a tie on both time and priority loses).
  EXPECT_FALSE(horizon.beaten_by(10.0, 0));
  EXPECT_FALSE(horizon.beaten_by(10.0, 1));
  EXPECT_FALSE(horizon.beaten_by(10.5, 0));
}

TEST(IndexedScheduler, EmptyHorizonBeatenByEverything) {
  IndexedScheduler sched(2);
  EXPECT_TRUE(sched.horizon().beaten_by(1e18, 99));
}

/// Differential test: drive an IndexedScheduler and an EventQueue with the
/// same single-pending-event-per-source workload and require the identical
/// pop order, including all tie-breaks.
TEST(IndexedScheduler, MatchesEventQueueOnRandomWorkload) {
  constexpr std::size_t kSources = 9;
  IndexedScheduler sched(kSources);
  EventQueue<std::size_t> queue;

  std::uint64_t state = 99;
  auto next_u64 = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
  };

  double now = 0.0;
  // Arm every source once, then repeatedly pop the winner from both
  // structures and re-arm that source at a later (often colliding) time.
  for (std::size_t s = 0; s < kSources; ++s) {
    const double t = static_cast<double>(next_u64() % 8);
    const int priority = static_cast<int>(next_u64() % 3);
    sched.schedule(s, t, priority);
    queue.push(t, priority, s);
  }
  for (int step = 0; step < 20000; ++step) {
    const auto expected = queue.pop();
    const auto got = sched.pop();
    ASSERT_EQ(got.source, expected.payload) << "step " << step;
    ASSERT_EQ(got.time, expected.time) << "step " << step;
    now = expected.time;
    // Re-arm with a small integer increment so timestamp collisions (and
    // therefore priority/seq tie-breaks) are frequent.
    const double t = now + static_cast<double>(next_u64() % 4);
    const int priority = static_cast<int>(next_u64() % 3);
    sched.schedule(got.source, t, priority);
    queue.push(t, priority, got.source);
  }
}

}  // namespace
}  // namespace ripple::sim
