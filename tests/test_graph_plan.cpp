#include "graph/graph_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "blast/canonical.hpp"
#include "dist/gain.hpp"

namespace ripple::graph {
namespace {

using dist::make_bernoulli;
using dist::make_deterministic;

/// The canonical 4-node BLAST chain expressed as a linear GraphSpec: node i's
/// chain gain becomes edge (i, i+1)'s gain, sharing the same distribution
/// objects so delegation is comparing like with like.
GraphSpec blast_chain_graph() {
  const sdf::PipelineSpec pipeline = blast::canonical_blast_pipeline();
  GraphBuilder builder(pipeline.name());
  builder.simd_width(pipeline.simd_width());
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    builder.add_node(pipeline.node(i).name, NodeKind::kSiso,
                     pipeline.service_time(i));
  }
  for (NodeIndex i = 0; i + 1 < pipeline.size(); ++i) {
    builder.add_edge(i, i + 1, pipeline.node(i).gain);
  }
  auto built = builder.build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  return std::move(built).take();
}

/// Branching fixture sized for the solver: a diamond whose tee halves the
/// stream (bern 0.5 into the tee) with deterministic unit edges below.
GraphSpec solver_diamond() {
  auto built = GraphBuilder("solver_diamond")
                   .simd_width(16)
                   .add_node("src", NodeKind::kSiso, 100.0)
                   .add_node("tee", NodeKind::kSimoTee, 20.0)
                   .add_node("a", NodeKind::kSiso, 50.0)
                   .add_node("b", NodeKind::kSiso, 80.0)
                   .add_node("merge", NodeKind::kMisoElementwise, 40.0)
                   .add_node("snk", NodeKind::kSiso, 60.0)
                   .add_edge(0, 1, make_bernoulli(0.5))
                   .add_edge(1, 2, make_deterministic(1))
                   .add_edge(1, 3, make_deterministic(1))
                   .add_edge(2, 4, make_deterministic(1))
                   .add_edge(3, 4, make_deterministic(1))
                   .add_edge(4, 5, make_deterministic(1))
                   .build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  return std::move(built).take();
}

TEST(Config, OptimisticUsesHeaviestOutEdge) {
  auto built = GraphBuilder("wide")
                   .simd_width(8)
                   .add_node("src", NodeKind::kSiso, 10.0)
                   .add_node("tee", NodeKind::kSimoTee, 2.0)
                   .add_node("a", NodeKind::kSiso, 5.0)
                   .add_node("b", NodeKind::kSiso, 8.0)
                   .add_node("merge", NodeKind::kMisoElementwise, 4.0)
                   .add_node("snk", NodeKind::kSiso, 6.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(1, 2, make_deterministic(2))
                   .add_edge(1, 3, make_deterministic(2))
                   .add_edge(2, 4, make_deterministic(1))
                   .add_edge(3, 4, make_deterministic(1))
                   .add_edge(4, 5, make_deterministic(1))
                   .build();
  ASSERT_TRUE(built.ok()) << built.error().message;
  const auto config = GraphPlanConfig::optimistic(built.value());
  ASSERT_EQ(config.b.size(), 6u);
  EXPECT_DOUBLE_EQ(config.b[0], 1.0);
  EXPECT_DOUBLE_EQ(config.b[1], 2.0);  // heaviest out-edge gain 2
  EXPECT_DOUBLE_EQ(config.b[2], 1.0);
  EXPECT_DOUBLE_EQ(config.b[3], 1.0);
  EXPECT_DOUBLE_EQ(config.b[4], 1.0);
  EXPECT_DOUBLE_EQ(config.b[5], 1.0);  // sink
}

TEST(Planner, RejectsMalformedB) {
  const GraphSpec graph = solver_diamond();
  EXPECT_THROW(GraphPlanner(graph, GraphPlanConfig{{1.0}}), std::logic_error);
  EXPECT_THROW(
      GraphPlanner(graph, GraphPlanConfig{{1.0, 0.5, 1.0, 1.0, 1.0, 1.0}}),
      std::logic_error);
}

TEST(LinearDelegation, SolvesBitIdenticalToChainSolver) {
  const GraphSpec graph = blast_chain_graph();
  const std::vector<double> b = blast::paper_calibrated_b();
  const GraphPlanner planner(graph, GraphPlanConfig{b});
  EXPECT_TRUE(planner.delegates_to_chain());

  const core::EnforcedWaitsStrategy chain(blast::canonical_blast_pipeline(),
                                          core::EnforcedWaitsConfig{b});
  for (double tau0 : {3.0, 5.0, 10.0, 30.0, 100.0}) {
    for (double deadline : {3e4, 5e4, 1e5, 2e5, 3.5e5}) {
      auto graph_solved = planner.solve(tau0, deadline);
      auto chain_solved = chain.solve(tau0, deadline);
      ASSERT_EQ(graph_solved.ok(), chain_solved.ok())
          << "tau0=" << tau0 << " D=" << deadline;
      if (!graph_solved.ok()) {
        EXPECT_EQ(graph_solved.error().code, chain_solved.error().code);
        EXPECT_EQ(graph_solved.error().message, chain_solved.error().message);
        continue;
      }
      const GraphSchedule& gs = graph_solved.value();
      const core::EnforcedWaitsSchedule& cs = chain_solved.value();
      EXPECT_TRUE(gs.lowered_linear);
      ASSERT_EQ(gs.firing_intervals.size(), cs.firing_intervals.size());
      for (std::size_t i = 0; i < cs.firing_intervals.size(); ++i) {
        EXPECT_EQ(gs.firing_intervals[i], cs.firing_intervals[i])
            << "node " << i << " tau0=" << tau0 << " D=" << deadline;
        EXPECT_EQ(gs.waits[i], cs.waits[i]) << "node " << i;
      }
      EXPECT_EQ(gs.predicted_active_fraction, cs.predicted_active_fraction);
      EXPECT_EQ(gs.deadline_budget_used, cs.deadline_budget_used);
    }
  }
}

TEST(LinearDelegation, FeasibilityFrontiersMatchChainSolver) {
  const GraphSpec graph = blast_chain_graph();
  const std::vector<double> b = blast::paper_calibrated_b();
  const GraphPlanner planner(graph, GraphPlanConfig{b});
  const core::EnforcedWaitsStrategy chain(blast::canonical_blast_pipeline(),
                                          core::EnforcedWaitsConfig{b});
  for (double tau0 : {1.0, 2.9, 3.0, 20.0, 100.0}) {
    EXPECT_EQ(planner.min_feasible_deadline(tau0),
              chain.min_feasible_deadline(tau0))
        << tau0;
    for (double deadline : {2e4, 5e4, 3.5e5}) {
      EXPECT_EQ(planner.is_feasible(tau0, deadline),
                chain.is_feasible(tau0, deadline))
          << tau0 << " " << deadline;
    }
  }
  for (double deadline : {2e4, 1e5, 3.5e5}) {
    EXPECT_EQ(planner.min_feasible_tau0(deadline),
              chain.min_feasible_tau0(deadline))
        << deadline;
  }
}

TEST(DagSolve, ScheduleSatisfiesEveryConstraintFamily) {
  const GraphSpec graph = solver_diamond();
  const GraphPlanner planner(graph, GraphPlanConfig::optimistic(graph));
  EXPECT_FALSE(planner.delegates_to_chain());

  const double tau0 = 20.0;
  const double deadline = 800.0;
  auto solved = planner.solve(tau0, deadline);
  ASSERT_TRUE(solved.ok()) << solved.error().message;
  const GraphSchedule& schedule = solved.value();
  EXPECT_FALSE(schedule.lowered_linear);
  ASSERT_EQ(schedule.firing_intervals.size(), graph.size());

  // w >= 0 and x = t + w.
  for (NodeIndex u = 0; u < graph.size(); ++u) {
    EXPECT_GE(schedule.waits[u], -1e-9) << u;
    EXPECT_NEAR(schedule.firing_intervals[u],
                graph.service_time(u) + schedule.waits[u], 1e-9)
        << u;
  }
  // Rate constraint at the source.
  EXPECT_LE(schedule.firing_intervals[graph.source()],
            graph.simd_width() * tau0 * (1.0 + 1e-6));
  // Per-edge stability g_e * x_v <= x_u.
  for (EdgeIndex e = 0; e < graph.edge_count(); ++e) {
    const GraphEdgeSpec& edge = graph.edge(e);
    EXPECT_LE(edge.mean_gain() * schedule.firing_intervals[edge.to],
              schedule.firing_intervals[edge.from] * (1.0 + 1e-6))
        << "edge " << e;
  }
  // Max-path deadline budget, reported and honored.
  const Cycles budget = graph.max_path_budget(
      planner.config().b, schedule.firing_intervals);
  EXPECT_NEAR(schedule.deadline_budget_used, budget, 1e-6 * (1.0 + budget));
  EXPECT_LE(schedule.deadline_budget_used, deadline * (1.0 + 1e-9));
  // Certified optimum.
  EXPECT_TRUE(schedule.kkt.satisfied(1e-3))
      << "stationarity " << schedule.kkt.stationarity_residual;
  EXPECT_NEAR(schedule.predicted_active_fraction,
              planner.active_fraction(schedule.firing_intervals), 1e-12);
}

TEST(DagSolve, ActiveFractionDecreasesWithDeadline) {
  const GraphSpec graph = solver_diamond();
  const GraphPlanner planner(graph, GraphPlanConfig::optimistic(graph));
  double previous = 1.0;
  for (double deadline : {400.0, 600.0, 900.0, 1400.0, 2200.0}) {
    auto solved = planner.solve(25.0, deadline);
    ASSERT_TRUE(solved.ok()) << deadline << ": " << solved.error().message;
    EXPECT_LE(solved.value().predicted_active_fraction, previous + 1e-9)
        << deadline;
    previous = solved.value().predicted_active_fraction;
  }
}

TEST(DagSolve, FeasibilityFrontierMatchesMinimalBudget) {
  const GraphSpec graph = solver_diamond();
  const GraphPlanner planner(graph, GraphPlanConfig::optimistic(graph));
  // Minimal intervals {100, 80, 60, 80, 60, 60}; with b = 1 everywhere the
  // deepest path (src, tee, b, merge, snk) costs 100+80+80+60+60 = 380.
  const auto& minimal = planner.minimal_intervals();
  ASSERT_EQ(minimal.size(), 6u);
  EXPECT_DOUBLE_EQ(minimal[0], 100.0);
  EXPECT_DOUBLE_EQ(minimal[3], 80.0);
  const Cycles frontier = planner.min_feasible_deadline(20.0);
  EXPECT_DOUBLE_EQ(frontier, 380.0);
  EXPECT_FALSE(planner.is_feasible(20.0, frontier - 1.0));
  EXPECT_TRUE(planner.is_feasible(20.0, frontier + 1.0));
  // Rate alone infeasible: minimal x_src = 100 needs tau0 >= 100/16.
  EXPECT_TRUE(std::isinf(planner.min_feasible_deadline(100.0 / 16.0 - 0.1)));
}

TEST(DagSolve, InfeasibleCellsReturnDiagnostics) {
  const GraphSpec graph = solver_diamond();
  const GraphPlanner planner(graph, GraphPlanConfig::optimistic(graph));
  auto too_fast = planner.solve(1.0, 1e6);
  ASSERT_FALSE(too_fast.ok());
  EXPECT_EQ(too_fast.error().code, "infeasible");
  auto too_tight = planner.solve(50.0, 100.0);
  ASSERT_FALSE(too_tight.ok());
  EXPECT_EQ(too_tight.error().code, "infeasible");
  EXPECT_NE(too_tight.error().message.find("deadline"), std::string::npos);
}

TEST(DagSolve, TightDeadlineLandsOnMinimalIntervals) {
  const GraphSpec graph = solver_diamond();
  const GraphPlanner planner(graph, GraphPlanConfig::optimistic(graph));
  auto solved = planner.solve(20.0, 380.0);  // zero slack
  ASSERT_TRUE(solved.ok()) << solved.error().message;
  const auto& minimal = planner.minimal_intervals();
  for (NodeIndex u = 0; u < graph.size(); ++u) {
    EXPECT_NEAR(solved.value().firing_intervals[u], minimal[u],
                1e-6 * minimal[u] + 1e-6)
        << u;
  }
}

TEST(DagSolve, SolutionIsFeasibleForTheExposedProblem) {
  const GraphSpec graph = solver_diamond();
  const GraphPlanner planner(graph, GraphPlanConfig::optimistic(graph));
  for (double tau0 : {10.0, 25.0, 60.0}) {
    for (double deadline : {450.0, 800.0, 2000.0}) {
      auto solved = planner.solve(tau0, deadline);
      ASSERT_EQ(solved.ok(), planner.is_feasible(tau0, deadline))
          << tau0 << " " << deadline;
      if (!solved.ok()) continue;
      auto problem = planner.build_problem(tau0, deadline);
      ASSERT_TRUE(problem.ok()) << problem.error().message;
      const linalg::Vector x(solved.value().firing_intervals.begin(),
                             solved.value().firing_intervals.end());
      EXPECT_TRUE(problem.value().is_feasible(x, 1e-6))
          << tau0 << " " << deadline;
      EXPECT_LE(solved.value().predicted_active_fraction, 1.0 + 1e-9);
      EXPECT_GT(solved.value().predicted_active_fraction, 0.0);
    }
  }
}

}  // namespace
}  // namespace ripple::graph
