#include "util/string_utils.hpp"

#include <gtest/gtest.h>

namespace ripple::util {
namespace {

TEST(Split, SingleField) {
  EXPECT_EQ(split("abc", ','), std::vector<std::string>{"abc"});
}

TEST(Split, MultipleFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(split("", ','), std::vector<std::string>{""});
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\thi\n"), "hi");
}

TEST(Trim, AllWhitespaceBecomesEmpty) { EXPECT_EQ(trim("   "), ""); }

TEST(Trim, NoWhitespaceUnchanged) { EXPECT_EQ(trim("abc"), "abc"); }

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-flag", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.25), "1.25");
  EXPECT_EQ(format_double(3.0), "3");
  EXPECT_EQ(format_double(0.5, 3), "0.5");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_double(2.0 / 3.0, 2), "0.67");
}

TEST(FormatDouble, NegativeZeroNormalized) {
  EXPECT_EQ(format_double(-1e-9, 3), "0");
}

TEST(WithCommas, GroupsOfThree) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(123456), "123,456");
}

TEST(ParseDouble, Valid) {
  double out = 0.0;
  EXPECT_TRUE(parse_double("3.5", out));
  EXPECT_DOUBLE_EQ(out, 3.5);
  EXPECT_TRUE(parse_double(" -2e4 ", out));
  EXPECT_DOUBLE_EQ(out, -2e4);
}

TEST(ParseDouble, RejectsGarbage) {
  double out = 0.0;
  EXPECT_FALSE(parse_double("abc", out));
  EXPECT_FALSE(parse_double("1.5x", out));
  EXPECT_FALSE(parse_double("", out));
}

TEST(ParseInt64, Valid) {
  long long out = 0;
  EXPECT_TRUE(parse_int64("42", out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(parse_int64("-7", out));
  EXPECT_EQ(out, -7);
}

TEST(ParseInt64, RejectsNonIntegers) {
  long long out = 0;
  EXPECT_FALSE(parse_int64("3.5", out));
  EXPECT_FALSE(parse_int64("", out));
  EXPECT_FALSE(parse_int64("12a", out));
}

}  // namespace
}  // namespace ripple::util
