#include "graph/graph_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "arrivals/arrival_process.hpp"
#include "blast/canonical.hpp"
#include "dist/gain.hpp"
#include "graph/scenarios.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/greedy_sim.hpp"

namespace ripple::graph {
namespace {

using dist::make_bernoulli;
using dist::make_deterministic;

void expect_same_metrics(const sim::TrialMetrics& expected,
                         const sim::TrialMetrics& got) {
  ASSERT_EQ(got.nodes.size(), expected.nodes.size());
  for (std::size_t i = 0; i < expected.nodes.size(); ++i) {
    EXPECT_EQ(got.nodes[i].firings, expected.nodes[i].firings) << i;
    EXPECT_EQ(got.nodes[i].empty_firings, expected.nodes[i].empty_firings)
        << i;
    EXPECT_EQ(got.nodes[i].items_consumed, expected.nodes[i].items_consumed)
        << i;
    EXPECT_EQ(got.nodes[i].items_produced, expected.nodes[i].items_produced)
        << i;
    EXPECT_EQ(got.nodes[i].active_time, expected.nodes[i].active_time) << i;
    EXPECT_EQ(got.nodes[i].max_queue_length,
              expected.nodes[i].max_queue_length)
        << i;
  }
  EXPECT_EQ(got.inputs_arrived, expected.inputs_arrived);
  EXPECT_EQ(got.inputs_on_time, expected.inputs_on_time);
  EXPECT_EQ(got.inputs_missed, expected.inputs_missed);
  EXPECT_EQ(got.sink_outputs, expected.sink_outputs);
  EXPECT_EQ(got.output_latency.count(), expected.output_latency.count());
  EXPECT_EQ(got.output_latency.mean(), expected.output_latency.mean());
  EXPECT_EQ(got.output_latency.min(), expected.output_latency.min());
  EXPECT_EQ(got.output_latency.max(), expected.output_latency.max());
}

GraphSpec blast_chain_graph() {
  const sdf::PipelineSpec pipeline = blast::canonical_blast_pipeline();
  GraphBuilder builder(pipeline.name());
  builder.simd_width(pipeline.simd_width());
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    builder.add_node(pipeline.node(i).name, NodeKind::kSiso,
                     pipeline.service_time(i));
  }
  for (NodeIndex i = 0; i + 1 < pipeline.size(); ++i) {
    builder.add_edge(i, i + 1, pipeline.node(i).gain);
  }
  auto built = builder.build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  return std::move(built).take();
}

/// Rate-matched branching fixture: every edge det(1), so item counts at
/// every node are exact functions of the input count.
GraphSpec flat_diamond() {
  auto built = GraphBuilder("flat_diamond")
                   .simd_width(8)
                   .add_node("src", NodeKind::kSiso, 10.0)
                   .add_node("tee", NodeKind::kSimoTee, 2.0)
                   .add_node("a", NodeKind::kSiso, 5.0)
                   .add_node("b", NodeKind::kSiso, 8.0)
                   .add_node("merge", NodeKind::kMisoElementwise, 4.0)
                   .add_node("snk", NodeKind::kSiso, 6.0)
                   .add_edge(0, 1, make_deterministic(1))
                   .add_edge(1, 2, make_deterministic(1))
                   .add_edge(1, 3, make_deterministic(1))
                   .add_edge(2, 4, make_deterministic(1))
                   .add_edge(3, 4, make_deterministic(1))
                   .add_edge(4, 5, make_deterministic(1))
                   .build();
  EXPECT_TRUE(built.ok()) << built.error().message;
  return std::move(built).take();
}

TEST(LinearDelegation, EnforcedTrialBitEqualToChainSim) {
  const GraphSpec graph = blast_chain_graph();
  auto lowered = graph.lower_to_pipeline();
  ASSERT_TRUE(lowered.ok());
  const sdf::PipelineSpec& pipeline = lowered.value();

  auto intervals = graph.minimal_firing_intervals();
  for (Cycles& x : intervals) x *= 1.3;

  GraphSimConfig graph_config;
  graph_config.input_count = 4000;
  graph_config.deadline = 3.5e5;
  graph_config.seed = 17;
  graph_config.initial_offsets = aligned_graph_phase_offsets(graph);

  sim::EnforcedSimConfig chain_config;
  chain_config.input_count = 4000;
  chain_config.deadline = 3.5e5;
  chain_config.seed = 17;
  chain_config.initial_offsets = sim::aligned_phase_offsets(pipeline);

  // The aligned offsets themselves must agree on a chain.
  ASSERT_EQ(graph_config.initial_offsets.size(),
            chain_config.initial_offsets.size());
  for (std::size_t i = 0; i < chain_config.initial_offsets.size(); ++i) {
    EXPECT_EQ(graph_config.initial_offsets[i], chain_config.initial_offsets[i])
        << i;
  }

  arrivals::FixedRateArrivals graph_arrivals(50.0);
  const auto graph_trial =
      simulate_graph_enforced(graph, intervals, graph_arrivals, graph_config);
  arrivals::FixedRateArrivals chain_arrivals(50.0);
  const auto chain_trial = sim::simulate_enforced_waits(
      pipeline, intervals, chain_arrivals, chain_config);
  expect_same_metrics(chain_trial, graph_trial);
}

TEST(LinearDelegation, GreedyTrialBitEqualToChainSim) {
  const GraphSpec graph = blast_chain_graph();
  auto lowered = graph.lower_to_pipeline();
  ASSERT_TRUE(lowered.ok());

  GraphGreedyConfig graph_config;
  graph_config.input_count = 3000;
  graph_config.deadline = 3.5e5;
  graph_config.seed = 5;
  graph_config.min_batch = 4;

  sim::GreedySimConfig chain_config;
  chain_config.input_count = 3000;
  chain_config.deadline = 3.5e5;
  chain_config.seed = 5;
  chain_config.min_batch = 4;

  arrivals::FixedRateArrivals graph_arrivals(40.0);
  const auto graph_trial =
      simulate_graph_greedy(graph, graph_arrivals, graph_config);
  arrivals::FixedRateArrivals chain_arrivals(40.0);
  const auto chain_trial = sim::simulate_greedy_throughput(
      lowered.value(), chain_arrivals, chain_config);
  expect_same_metrics(chain_trial, graph_trial);
}

TEST(DagEnforced, FlatDiamondConservesItemsExactly) {
  const GraphSpec graph = flat_diamond();
  const auto intervals = graph.minimal_firing_intervals();
  GraphSimConfig config;
  config.input_count = 500;
  config.seed = 3;
  arrivals::FixedRateArrivals arrivals(2.0);
  const auto trial = simulate_graph_enforced(graph, intervals, arrivals, config);

  ASSERT_EQ(trial.nodes.size(), 6u);
  const std::uint64_t n = 500;
  EXPECT_EQ(trial.inputs_arrived, n);
  EXPECT_EQ(trial.sink_outputs, n);
  EXPECT_EQ(trial.nodes[0].items_consumed, n);
  EXPECT_EQ(trial.nodes[0].items_produced, n);
  // Tee replicates onto both out-edges.
  EXPECT_EQ(trial.nodes[1].items_consumed, n);
  EXPECT_EQ(trial.nodes[1].items_produced, 2 * n);
  EXPECT_EQ(trial.nodes[2].items_consumed, n);
  EXPECT_EQ(trial.nodes[3].items_consumed, n);
  // Merge consumes one matched item per in-edge, emits one combined item.
  EXPECT_EQ(trial.nodes[4].items_consumed, 2 * n);
  EXPECT_EQ(trial.nodes[4].items_produced, n);
  EXPECT_EQ(trial.nodes[5].items_consumed, n);
  EXPECT_EQ(trial.output_latency.count(), n);
}

TEST(DagEnforced, TelemetryFaninConservesPerStream) {
  const GraphSpec graph = telemetry_fanin_scenario().graph;
  const auto intervals = graph.minimal_firing_intervals();
  GraphSimConfig config;
  config.input_count = 300;
  config.seed = 11;
  arrivals::FixedRateArrivals arrivals(5.0);
  const auto trial = simulate_graph_enforced(graph, intervals, arrivals, config);

  const std::uint64_t n = 300;
  EXPECT_EQ(trial.inputs_arrived, n);
  EXPECT_EQ(trial.sink_outputs, n);
  // fan (node 1) tees into three parsers.
  EXPECT_EQ(trial.nodes[1].items_produced, 3 * n);
  // align (node 5) is the synchronizer: pure forwarding, three streams.
  EXPECT_EQ(trial.nodes[5].items_consumed, 3 * n);
  EXPECT_EQ(trial.nodes[5].items_produced, 3 * n);
  // fuse (node 9) merges the three normalized streams elementwise.
  EXPECT_EQ(trial.nodes[9].items_consumed, 3 * n);
  EXPECT_EQ(trial.nodes[9].items_produced, n);
}

TEST(DagEnforced, SameSeedReproducesBitIdenticalTrials) {
  auto built = GraphBuilder("stochastic_diamond")
                   .simd_width(8)
                   .add_node("src", NodeKind::kSiso, 10.0)
                   .add_node("tee", NodeKind::kSimoTee, 2.0)
                   .add_node("a", NodeKind::kSiso, 5.0)
                   .add_node("b", NodeKind::kSiso, 8.0)
                   .add_node("merge", NodeKind::kMisoElementwise, 4.0)
                   .add_node("snk", NodeKind::kSiso, 6.0)
                   .add_edge(0, 1, make_bernoulli(0.5))
                   .add_edge(1, 2, make_deterministic(1))
                   .add_edge(1, 3, make_deterministic(1))
                   .add_edge(2, 4, make_deterministic(1))
                   .add_edge(3, 4, make_deterministic(1))
                   .add_edge(4, 5, make_deterministic(1))
                   .build();
  ASSERT_TRUE(built.ok());
  const GraphSpec graph = std::move(built).take();
  const auto intervals = graph.minimal_firing_intervals();

  GraphSimConfig config;
  config.input_count = 2000;
  config.seed = 42;
  arrivals::FixedRateArrivals first_arrivals(2.0);
  const auto first =
      simulate_graph_enforced(graph, intervals, first_arrivals, config);
  arrivals::FixedRateArrivals second_arrivals(2.0);
  const auto second =
      simulate_graph_enforced(graph, intervals, second_arrivals, config);
  expect_same_metrics(first, second);

  // The bernoulli filter keeps about half the stream.
  EXPECT_NEAR(static_cast<double>(first.sink_outputs), 1000.0, 120.0);
  // Post-filter the branches stay rate-matched: merge consumed twice what it
  // produced.
  EXPECT_EQ(first.nodes[4].items_consumed, 2 * first.nodes[4].items_produced);
}

TEST(DagGreedy, FlatDiamondDrainsAndConserves) {
  const GraphSpec graph = flat_diamond();
  GraphGreedyConfig config;
  config.input_count = 400;
  config.seed = 9;
  arrivals::FixedRateArrivals arrivals(3.0);
  const auto trial = simulate_graph_greedy(graph, arrivals, config);

  const std::uint64_t n = 400;
  EXPECT_EQ(trial.inputs_arrived, n);
  EXPECT_EQ(trial.sink_outputs, n);
  EXPECT_EQ(trial.nodes[1].items_produced, 2 * n);
  EXPECT_EQ(trial.nodes[4].items_consumed, 2 * n);
  EXPECT_EQ(trial.nodes[4].items_produced, n);
}

TEST(Validation, MalformedInputsThrow) {
  const GraphSpec graph = flat_diamond();
  GraphSimConfig config;
  config.input_count = 10;
  arrivals::FixedRateArrivals arrivals(2.0);

  std::vector<Cycles> short_intervals{10.0, 2.0};
  EXPECT_THROW(
      simulate_graph_enforced(graph, short_intervals, arrivals, config),
      std::logic_error);

  auto below_service = graph.minimal_firing_intervals();
  below_service[3] = 1.0;  // b's service time is 8
  EXPECT_THROW(
      simulate_graph_enforced(graph, below_service, arrivals, config),
      std::logic_error);
}

}  // namespace
}  // namespace ripple::graph
