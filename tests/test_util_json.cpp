#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace ripple::util {
namespace {

std::string render(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream out;
  JsonWriter json(out);
  body(json);
  return out.str();
}

TEST(Json, EmptyObjectAndArray) {
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_object().end_object(); }), "{}");
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_array().end_array(); }), "[]");
}

TEST(Json, ObjectMembers) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_object();
    j.member("name", "ripple");
    j.member("count", 3);
    j.member("ratio", 0.5);
    j.member("on", true);
    j.key("missing").null();
    j.end_object();
  });
  EXPECT_EQ(text,
            "{\"name\":\"ripple\",\"count\":3,\"ratio\":0.5,\"on\":true,"
            "\"missing\":null}");
}

TEST(Json, NestedContainers) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_object();
    j.key("xs").begin_array().value(1).value(2).end_array();
    j.key("inner").begin_object().member("a", 1).end_object();
    j.end_object();
  });
  EXPECT_EQ(text, "{\"xs\":[1,2],\"inner\":{\"a\":1}}");
}

TEST(Json, ArrayCommas) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_array();
    j.value("a");
    j.begin_array().end_array();
    j.value(7);
    j.end_array();
  });
  EXPECT_EQ(text, "[\"a\",[],7]");
}

TEST(Json, StringEscaping) {
  const std::string text = render([](JsonWriter& j) {
    j.value("quote\" backslash\\ newline\n tab\t ctrl\x01");
  });
  EXPECT_EQ(text, "\"quote\\\" backslash\\\\ newline\\n tab\\t ctrl\\u0001\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(render([](JsonWriter& j) {
              j.begin_array();
              j.value(std::numeric_limits<double>::infinity());
              j.value(std::nan(""));
              j.end_array();
            }),
            "[null,null]");
}

TEST(Json, DoubleRoundTripPrecision) {
  const std::string text =
      render([](JsonWriter& j) { j.value(0.1234567890123456789); });
  EXPECT_EQ(std::stod(text), 0.1234567890123456789);
}

TEST(Json, CompleteTracksTopLevel) {
  std::ostringstream out;
  JsonWriter json(out);
  EXPECT_FALSE(json.complete());
  json.begin_object();
  EXPECT_FALSE(json.complete());
  json.end_object();
  EXPECT_TRUE(json.complete());
}

TEST(Json, MisuseThrows) {
  {
    std::ostringstream out;
    JsonWriter json(out);
    json.begin_object();
    EXPECT_THROW(json.value(1), std::logic_error);  // value without key
  }
  {
    std::ostringstream out;
    JsonWriter json(out);
    json.begin_array();
    EXPECT_THROW(json.key("k"), std::logic_error);  // key inside array
  }
  {
    std::ostringstream out;
    JsonWriter json(out);
    json.begin_object();
    json.key("k");
    EXPECT_THROW(json.end_object(), std::logic_error);  // dangling key
  }
  {
    std::ostringstream out;
    JsonWriter json(out);
    json.begin_object();
    EXPECT_THROW(json.end_array(), std::logic_error);  // mismatched close
  }
  {
    std::ostringstream out;
    JsonWriter json(out);
    json.value(1);
    EXPECT_THROW(json.value(2), std::logic_error);  // document already done
  }
}

}  // namespace
}  // namespace ripple::util
