// Replanner + PlanStore: initial publish, drift hysteresis, cooldown,
// feasibility flips, warm/cold bit-identity, and the atomic hot-swap.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "control/plan_store.hpp"
#include "control/replanner.hpp"
#include "core/enforced_waits.hpp"
#include "dist/gain.hpp"
#include "sdf/pipeline.hpp"

namespace ripple::control {
namespace {

// expand(t=8, g=2) -> filter(t=6, g=1) -> sink(t=10), v = 4.
// Minimal chain-feasible intervals L = {20, 10, 10}; optimistic b = {2, 1, 1}
// gives minimal budget 60 and feasibility floor tau0 >= L0 / v = 5.
sdf::PipelineSpec make_spec() {
  auto spec = sdf::PipelineBuilder("ctl")
                  .simd_width(4)
                  .add_node("expand", 8.0, dist::make_deterministic(2))
                  .add_node("filter", 6.0, dist::make_deterministic(1))
                  .add_node("sink", 10.0, nullptr)
                  .build();
  EXPECT_TRUE(spec.ok());
  return spec.value();
}

core::EnforcedWaitsConfig optimistic() {
  return core::EnforcedWaitsConfig::optimistic(make_spec());
}

TEST(ReplannerTest, ConstructorPublishesInitialPlan) {
  Replanner replanner(make_spec(), optimistic(), 600.0, 20.0, {});
  const PlanPtr plan = replanner.plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->epoch, 1u);
  EXPECT_DOUBLE_EQ(plan->planned_tau0, 20.0);
  EXPECT_DOUBLE_EQ(plan->deadline, 600.0);
  EXPECT_FALSE(plan->shedding);
  EXPECT_EQ(plan->schedule.firing_intervals.size(), 3u);
  EXPECT_NEAR(replanner.floor_tau0(), 5.0, 1e-9);
}

TEST(ReplannerTest, ImpossibleDeadlineThrows) {
  // Deadline below the minimal budget (60): no rate is ever feasible.
  EXPECT_THROW(Replanner(make_spec(), optimistic(), 50.0, 20.0, {}),
               std::logic_error);
}

TEST(ReplannerTest, SmallDriftKeepsPlan) {
  Replanner replanner(make_spec(), optimistic(), 600.0, 20.0, {});
  const ReplanDecision decision = replanner.consider(20.5);  // 2.5% < 5%
  EXPECT_EQ(decision.outcome, ReplanOutcome::kKept);
  EXPECT_EQ(decision.plan->epoch, 1u);
  EXPECT_EQ(replanner.replans(), 1u);  // just the initial solve
}

TEST(ReplannerTest, DriftPastThresholdReplans) {
  Replanner replanner(make_spec(), optimistic(), 600.0, 20.0, {});
  const ReplanDecision decision = replanner.consider(25.0);  // 25% drift
  EXPECT_EQ(decision.outcome, ReplanOutcome::kReplanned);
  EXPECT_EQ(decision.plan->epoch, 2u);
  EXPECT_DOUBLE_EQ(decision.plan->planned_tau0, 25.0);
  EXPECT_FALSE(decision.shedding);
}

TEST(ReplannerTest, WarmStartedReplanIsBitIdenticalToColdSolve) {
  const sdf::PipelineSpec spec = make_spec();
  Replanner replanner(spec, optimistic(), 600.0, 20.0, {});
  // A few drifting re-solves, each warm-started from the previous plan.
  for (const Cycles target : {25.0, 31.0, 24.0, 40.0}) {
    const ReplanDecision decision = replanner.consider(target);
    ASSERT_EQ(decision.outcome, ReplanOutcome::kReplanned);
    const core::EnforcedWaitsStrategy cold(spec, optimistic());
    const auto reference = cold.solve(target, 600.0);
    ASSERT_TRUE(reference.ok());
    const auto& warm_intervals = decision.plan->schedule.firing_intervals;
    const auto& cold_intervals = reference.value().firing_intervals;
    ASSERT_EQ(warm_intervals.size(), cold_intervals.size());
    for (std::size_t i = 0; i < warm_intervals.size(); ++i) {
      EXPECT_EQ(warm_intervals[i], cold_intervals[i])
          << "node " << i << " at target " << target;
    }
  }
}

TEST(ReplannerTest, CooldownDefersDriftReplans) {
  ReplannerConfig config;
  config.cooldown_ticks = 3;
  Replanner replanner(make_spec(), optimistic(), 600.0, 20.0, config);
  EXPECT_EQ(replanner.consider(30.0).outcome, ReplanOutcome::kKept);
  EXPECT_EQ(replanner.consider(30.0).outcome, ReplanOutcome::kKept);
  const ReplanDecision third = replanner.consider(30.0);
  EXPECT_EQ(third.outcome, ReplanOutcome::kReplanned);
  EXPECT_EQ(third.plan->epoch, 2u);
}

TEST(ReplannerTest, ForceBypassesCooldownAndDrift) {
  ReplannerConfig config;
  config.cooldown_ticks = 100;
  Replanner replanner(make_spec(), optimistic(), 600.0, 20.0, config);
  // No drift at all, but forced (the slack trigger path).
  const ReplanDecision decision = replanner.consider(20.0, /*force=*/true);
  EXPECT_EQ(decision.outcome, ReplanOutcome::kReplanned);
  EXPECT_EQ(decision.plan->epoch, 2u);
}

TEST(ReplannerTest, FeasibilityFlipBypassesCooldown) {
  ReplannerConfig config;
  config.cooldown_ticks = 100;
  Replanner replanner(make_spec(), optimistic(), 600.0, 20.0, config);

  // Offered rate far beyond the floor: clamp + shed, despite the cooldown.
  const ReplanDecision overload = replanner.consider(1.0);
  EXPECT_EQ(overload.outcome, ReplanOutcome::kReplanned);
  EXPECT_TRUE(overload.shedding);
  EXPECT_TRUE(overload.plan->shedding);
  EXPECT_GE(overload.target_tau0, replanner.floor_tau0());
  EXPECT_NEAR(overload.target_tau0, replanner.floor_tau0(), 1e-3);

  // Load drops again: flip back out of shedding, also bypassing cooldown.
  const ReplanDecision recovered = replanner.consider(20.0);
  EXPECT_EQ(recovered.outcome, ReplanOutcome::kReplanned);
  EXPECT_FALSE(recovered.shedding);
  EXPECT_FALSE(recovered.plan->shedding);
  EXPECT_DOUBLE_EQ(recovered.plan->planned_tau0, 20.0);
}

TEST(ReplannerTest, HeadroomSolvesBelowTheEstimate) {
  ReplannerConfig config;
  config.headroom = 0.8;
  Replanner replanner(make_spec(), optimistic(), 600.0, 20.0, config);
  EXPECT_DOUBLE_EQ(replanner.plan()->planned_tau0, 16.0);  // 0.8 * 20
  const ReplanDecision decision = replanner.consider(30.0);
  EXPECT_EQ(decision.outcome, ReplanOutcome::kReplanned);
  EXPECT_DOUBLE_EQ(decision.plan->planned_tau0, 24.0);  // 0.8 * 30
}

TEST(ReplannerTest, RejectsBadConfig) {
  ReplannerConfig bad_headroom;
  bad_headroom.headroom = 1.5;
  EXPECT_THROW(Replanner(make_spec(), optimistic(), 600.0, 20.0, bad_headroom),
               std::logic_error);
  EXPECT_THROW(Replanner(make_spec(), optimistic(), 600.0, -1.0, {}),
               std::logic_error);
  EXPECT_THROW(Replanner(make_spec(), optimistic(), 0.0, 20.0, {}),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// PlanStore
// ---------------------------------------------------------------------------

TEST(PlanStoreTest, EpochsIncreaseMonotonically) {
  PlanStore store;
  EXPECT_EQ(store.load(), nullptr);
  EXPECT_EQ(store.epoch(), 0u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    core::EnforcedWaitsSchedule schedule;
    schedule.firing_intervals = {static_cast<Cycles>(i)};
    const PlanPtr plan = store.publish(std::move(schedule), 10.0, 100.0, false);
    EXPECT_EQ(plan->epoch, i);
    EXPECT_EQ(store.epoch(), i);
    EXPECT_EQ(store.load(), plan);
  }
}

TEST(PlanStoreTest, ReadersAlwaysSeeACoherentPlan) {
  PlanStore store;
  {
    core::EnforcedWaitsSchedule schedule;
    schedule.firing_intervals = {1.0};
    store.publish(std::move(schedule), 1.0, 1.0, false);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const PlanPtr plan = store.load();
        ASSERT_NE(plan, nullptr);
        // The plan a reader holds is immutable and internally consistent:
        // its epoch matches the tau0 the writer stamped with it.
        ASSERT_DOUBLE_EQ(plan->planned_tau0,
                         static_cast<double>(plan->epoch));
        ASSERT_GE(plan->epoch, last_epoch);  // epochs never run backwards
        last_epoch = plan->epoch;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint64_t i = 2; i <= 2000; ++i) {
    core::EnforcedWaitsSchedule schedule;
    schedule.firing_intervals = {static_cast<Cycles>(i)};
    store.publish(std::move(schedule), static_cast<double>(i), 1.0, false);
  }
  // On a loaded single-core host the readers may not have been scheduled at
  // all yet; hold the final plan until at least one read lands.
  while (reads.load(std::memory_order_relaxed) == 0) std::this_thread::yield();
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace ripple::control
