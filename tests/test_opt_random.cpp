// Property suite: the optimizer stack (barrier Newton, projected gradient,
// KKT verification) cross-checked on randomly generated convex QPs
//
//     min 0.5 x^T Q x + c^T x   s.t.  A x <= b,  l <= x <= u
//
// with Q diagonal positive definite. Random instances cover active and
// inactive constraint mixes that the hand-written tests cannot enumerate.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/rng.hpp"
#include "opt/barrier.hpp"
#include "opt/kkt.hpp"
#include "opt/projected_gradient.hpp"

namespace ripple::opt {
namespace {

struct RandomQp {
  ConvexProblem problem;
  linalg::Vector interior;  // strictly feasible point
};

/// Build a random diagonal QP with box bounds and a few half-spaces that all
/// contain a known interior point (so feasibility is guaranteed).
RandomQp make_random_qp(std::uint64_t seed) {
  dist::Xoshiro256 rng(seed);
  const std::size_t n = 2 + rng.uniform_below(4);

  auto q = std::make_shared<linalg::Vector>(n);
  auto c = std::make_shared<linalg::Vector>(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*q)[i] = 0.5 + rng.uniform01() * 4.0;
    (*c)[i] = (rng.uniform01() - 0.5) * 10.0;
  }

  RandomQp qp;
  qp.problem.objective = [q, c](const linalg::Vector& x) {
    double value = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      value += 0.5 * (*q)[i] * x[i] * x[i] + (*c)[i] * x[i];
    }
    return value;
  };
  qp.problem.gradient = [q, c](const linalg::Vector& x) {
    linalg::Vector g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      g[i] = (*q)[i] * x[i] + (*c)[i];
    }
    return g;
  };
  qp.problem.hessian = [q](const linalg::Vector& x) {
    linalg::Matrix h(x.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) h(i, i) = (*q)[i];
    return h;
  };

  // Box around an interior point.
  qp.interior = linalg::Vector(n);
  qp.problem.lower_bounds = linalg::Vector(n);
  qp.problem.upper_bounds = linalg::Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    qp.interior[i] = (rng.uniform01() - 0.5) * 4.0;
    qp.problem.lower_bounds[i] = qp.interior[i] - 0.5 - rng.uniform01() * 3.0;
    qp.problem.upper_bounds[i] = qp.interior[i] + 0.5 + rng.uniform01() * 3.0;
  }

  // Half-spaces through points beyond the interior point.
  const std::size_t constraints = rng.uniform_below(4);
  for (std::size_t k = 0; k < constraints; ++k) {
    LinearInequality inequality;
    inequality.coefficients = linalg::Vector(n);
    double at_interior = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      inequality.coefficients[i] = (rng.uniform01() - 0.5) * 2.0;
      at_interior += inequality.coefficients[i] * qp.interior[i];
    }
    inequality.rhs = at_interior + 0.25 + rng.uniform01() * 2.0;
    inequality.label = "hs" + std::to_string(k);
    qp.problem.constraints.push_back(std::move(inequality));
  }
  return qp;
}

class RandomQpSuite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomQpSuite, BarrierSatisfiesKkt) {
  const RandomQp qp = make_random_qp(GetParam());
  auto solved = barrier_minimize(qp.problem, qp.interior);
  ASSERT_TRUE(solved.ok()) << solved.error().message;
  const KktReport report = check_kkt(qp.problem, solved.value().x, 1e-4);
  EXPECT_TRUE(report.satisfied(2e-3))
      << "seed " << GetParam() << ": stationarity "
      << report.stationarity_residual << ", infeas "
      << report.primal_infeasibility << ", min mult " << report.min_multiplier;
}

TEST_P(RandomQpSuite, BarrierMatchesProjectedGradient) {
  const RandomQp qp = make_random_qp(GetParam());
  auto barrier = barrier_minimize(qp.problem, qp.interior);
  ASSERT_TRUE(barrier.ok());
  auto pg = projected_gradient_minimize(qp.problem, qp.interior);
  ASSERT_TRUE(pg.ok());
  const double scale = 1.0 + std::fabs(barrier.value().objective);
  EXPECT_NEAR(barrier.value().objective, pg.value().objective, 2e-3 * scale)
      << "seed " << GetParam();
}

TEST_P(RandomQpSuite, SolutionIsFeasible) {
  const RandomQp qp = make_random_qp(GetParam());
  auto solved = barrier_minimize(qp.problem, qp.interior);
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(qp.problem.is_feasible(solved.value().x, 1e-7));
}

TEST_P(RandomQpSuite, NoInteriorProbeBeatsTheOptimum) {
  const RandomQp qp = make_random_qp(GetParam());
  auto solved = barrier_minimize(qp.problem, qp.interior);
  ASSERT_TRUE(solved.ok());
  // Random feasible probes must never score below the reported optimum.
  dist::Xoshiro256 rng(GetParam() ^ 0xABCDEF);
  const std::size_t n = qp.problem.dimension();
  int probes = 0;
  for (int attempt = 0; attempt < 400 && probes < 50; ++attempt) {
    linalg::Vector probe(n);
    for (std::size_t i = 0; i < n; ++i) {
      probe[i] = qp.problem.lower_bounds[i] +
                 rng.uniform01() *
                     (qp.problem.upper_bounds[i] - qp.problem.lower_bounds[i]);
    }
    if (!qp.problem.is_feasible(probe)) continue;
    ++probes;
    EXPECT_GE(qp.problem.objective(probe),
              solved.value().objective - 1e-7)
        << "seed " << GetParam();
  }
  EXPECT_GT(probes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQpSuite, ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace ripple::opt
