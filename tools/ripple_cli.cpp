// ripple_cli — command-line front end to the RIPPLE scheduling library.
//
//   ripple_cli describe   <pipeline.json|blast>
//   ripple_cli solve      <pipeline.json|blast> --tau0 T --deadline D [--b 1,3,9,6]
//                         [--strategy enforced|monolithic] [--json FILE]
//   ripple_cli sweep      <pipeline.json|blast> [--tau0-points N] [--d-points N]
//                         [ranges] [--csv FILE] [--json FILE]
//   ripple_cli simulate   <pipeline.json|blast> --tau0 T --deadline D
//                         [--b ...] [--trials N] [--inputs N]
//   ripple_cli predict-b  <pipeline.json|blast> --tau0 T --deadline D
//                         [--model poisson|batch] [--headroom H]
//   ripple_cli sensitivity <pipeline.json|blast> --tau0 T --deadline D [--b ...]
//   ripple_cli replay     <pipeline.json|blast> --tau0 T --tau1 T' --deadline D
//                         [--profile step|ramp|sine|fixed] [--stochastic]
//   ripple_cli serve      <pipeline.json|blast> --tau0 T --deadline D
//                         [--producers N] [--duration-ms MS]
//                         [--listen PORT] [--journal-dir DIR]
//   ripple_cli recover    <pipeline.json|blast> --journal-dir DIR
//                         --tau0 T --deadline D [control flags as recorded]
//   ripple_cli graph      <graph.json|branching-blast|telemetry-fanin>
//                         [--mode validate|plan|run] [--tau0 T --deadline D]
//                         [--b ...] [--inputs N] [--exec-threads N]
//
// The literal pipeline name "blast" loads the paper's canonical Table 1
// pipeline; anything else is read as a JSON file in the schema documented in
// src/sdf/pipeline_io.hpp (emit one with `describe --json FILE`). The graph
// command takes a ripple.graph.v1 JSON file (src/graph/graph_io.hpp) or a
// builtin measured scenario name instead; builtin scenarios run through the
// vector-wide DAG executor, JSON graphs through the stochastic DAG
// simulator (arbitrary JSON carries gain models but no stage code).
#include <any>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "arrivals/arrival_process.hpp"
#include "arrivals/nonstationary.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "blast/canonical.hpp"
#include "blast/simd_kernels.hpp"
#include "cascade/simd_kernels.hpp"
#include "core/report.hpp"
#include "core/robustness.hpp"
#include "core/sweep.hpp"
#include "core/tradeoff.hpp"
#include "device/dispatch.hpp"
#include "device/kernel_registry.hpp"
#include "dist/rng.hpp"
#include "graph/graph_executor.hpp"
#include "graph/graph_io.hpp"
#include "graph/graph_plan.hpp"
#include "graph/graph_sim.hpp"
#include "graph/scenarios.hpp"
#include "net/journal.hpp"
#include "net/server.hpp"
#include "queueing/predict.hpp"
#include "sdf/analysis.hpp"
#include "sdf/pipeline_io.hpp"
#include "service/replay.hpp"
#include "service/service.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/trial_runner.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ripple;

int usage(int code) {
  std::cerr
      << "usage: ripple_cli <command> <pipeline.json|blast> [options]\n"
         "commands:\n"
         "  describe     print the pipeline, its floors and asymptotics\n"
         "  solve        optimize a schedule (--strategy enforced|monolithic)\n"
         "  sweep        (tau0, D) active-fraction surfaces for both strategies\n"
         "  simulate     run seeded trials of the enforced-waits schedule\n"
         "  predict-b    queueing-theoretic worst-case multipliers\n"
         "  sensitivity  deadline pricing and bottleneck analysis\n"
         "  tradeoff     deadline vs active-fraction Pareto curve + knee\n"
         "  replay       closed-loop control replay over a rate profile\n"
         "  serve        live service demo: producer threads + online control\n"
         "  recover      rebuild the controller from a serve --journal-dir\n"
         "  kernels      dump the SIMD kernel dispatch catalog (no pipeline "
         "argument)\n"
         "  graph        validate/plan/run a DAG topology (ripple.graph.v1 "
         "JSON, 'branching-blast', or 'telemetry-fanin')\n"
         "run `ripple_cli <command> --help` for command options\n";
  return code;
}

util::Result<sdf::PipelineSpec> load_pipeline(const std::string& source) {
  using R = util::Result<sdf::PipelineSpec>;
  if (source == "blast") return blast::canonical_blast_pipeline();
  std::ifstream in(source);
  if (!in) return R::failure("io_error", "cannot open " + source);
  std::ostringstream text;
  text << in.rdbuf();
  return sdf::pipeline_from_json(text.str());
}

std::vector<double> parse_b(const std::string& text, std::size_t node_count) {
  if (text.empty()) return {};
  std::vector<double> b;
  for (const std::string& field : util::split(text, ',')) {
    double value = 0.0;
    if (!util::parse_double(field, value)) return {};
    b.push_back(value);
  }
  if (b.size() != node_count) return {};
  return b;
}

core::EnforcedWaitsConfig enforced_config(const sdf::PipelineSpec& pipeline,
                                          const std::string& b_text) {
  const std::vector<double> b = parse_b(b_text, pipeline.size());
  if (!b.empty()) return core::EnforcedWaitsConfig{b};
  if (b_text.empty()) return core::EnforcedWaitsConfig::optimistic(pipeline);
  throw std::logic_error("--b must list one multiplier (>= 1) per node");
}

std::string fmt(double v, int p = 4) { return util::format_double(v, p); }

/// Count flags (--trials, --shards, --producers, ...) must be positive.
/// A non-positive count is reported as the user error it is — never
/// silently clamped (a `--shards -4` that quietly ran one shard used to
/// hide real mistakes).
std::size_t positive_count(const util::CliParser& cli,
                           const std::string& name) {
  const long long value = cli.get_int(name);
  if (value <= 0) {
    throw std::logic_error("--" + name + " must be a positive count (got " +
                           std::to_string(value) + ")");
  }
  return static_cast<std::size_t>(value);
}

/// Flags where zero is meaningful (--cooldown 0, --submit-gap-us 0, seeds)
/// but negatives are still nonsense.
std::uint64_t non_negative_count(const util::CliParser& cli,
                                 const std::string& name) {
  const long long value = cli.get_int(name);
  if (value < 0) {
    throw std::logic_error("--" + name + " must be non-negative (got " +
                           std::to_string(value) + ")");
  }
  return static_cast<std::uint64_t>(value);
}

/// Arm observability recording when --trace-out/--metrics-out was given.
void enable_observability(const util::CliParser& cli) {
  if (cli.get_string("trace-out").empty() &&
      cli.get_string("metrics-out").empty()) {
    return;
  }
  obs::set_enabled(true);
  if (!obs::instrumentation_compiled()) {
    std::cerr << "warning: --trace-out/--metrics-out requested but this "
                 "build has RIPPLE_OBS=OFF; outputs will be empty\n";
  }
}

/// Write the requested observability artifacts after the command has run.
int export_observability(const util::CliParser& cli, int code) {
  const std::string& trace_path = cli.get_string("trace-out");
  if (!trace_path.empty()) {
    if (auto written = obs::export_chrome_trace_file(trace_path);
        !written.ok()) {
      std::cerr << "cannot write trace: " << written.error().message << "\n";
      return 2;
    }
    std::cout << "wrote trace " << trace_path << "\n";
  }
  const std::string& metrics_path = cli.get_string("metrics-out");
  if (!metrics_path.empty()) {
    if (auto written = obs::export_metrics_file(metrics_path);
        !written.ok()) {
      std::cerr << "cannot write metrics: " << written.error().message
                << "\n";
      return 2;
    }
    std::cout << "wrote metrics " << metrics_path << "\n";
  }
  return code;
}

// ---------------------------------------------------------------- commands

int cmd_describe(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  util::TextTable table({"node", "t_i", "mean gain", "G_i", "gain model"});
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    const bool terminal = (i + 1 == pipeline.size());
    table.add_row({pipeline.node(i).name, fmt(pipeline.service_time(i), 1),
                   terminal ? "N/A" : fmt(pipeline.mean_gain(i)),
                   fmt(pipeline.total_gain_into(i)),
                   pipeline.node(i).gain ? pipeline.node(i).gain->name() : "N/A"});
  }
  std::cout << "pipeline '" << pipeline.name() << "', v = "
            << pipeline.simd_width() << ", N = " << pipeline.size() << "\n";
  table.print(std::cout);
  std::cout << "\nmean service per input:        "
            << fmt(pipeline.mean_service_per_input()) << " cycles\n"
            << "enforced-waits rate floor:     tau0 >= "
            << fmt(sdf::min_interarrival_enforced(pipeline)) << "\n"
            << "monolithic stability floor:    tau0 >= "
            << fmt(sdf::min_interarrival_monolithic(pipeline)) << "\n";
  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    sdf::write_pipeline_spec_json(out, pipeline);
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

int cmd_solve(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  const double tau0 = cli.get_double("tau0");
  const double deadline = cli.get_double("deadline");
  const std::string strategy_name = cli.get_string("strategy");
  const std::string json_path = cli.get_string("json");

  if (strategy_name == "monolithic") {
    const core::MonolithicStrategy strategy(
        pipeline, {cli.get_double("block-b"), cli.get_double("S")});
    auto solved = strategy.solve(tau0, deadline);
    if (!solved.ok()) {
      std::cerr << "infeasible: " << solved.error().message << "\n";
      return 1;
    }
    std::cout << "block size M = " << solved.value().block_size
              << "\npredicted active fraction = "
              << fmt(solved.value().predicted_active_fraction)
              << "\nmean block service = "
              << fmt(solved.value().mean_block_service, 1)
              << "\nworst-case latency bound = "
              << fmt(solved.value().worst_case_latency, 1) << "\n";
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      core::write_monolithic_schedule_json(
          out, pipeline, {cli.get_double("block-b"), cli.get_double("S")},
          solved.value(), tau0, deadline);
      std::cout << "wrote " << json_path << "\n";
    }
    return 0;
  }

  const auto config = enforced_config(pipeline, cli.get_string("b"));
  const core::EnforcedWaitsStrategy strategy(pipeline, config);
  auto solved = strategy.solve(tau0, deadline);
  if (!solved.ok()) {
    std::cerr << "infeasible: " << solved.error().message << "\n";
    return 1;
  }
  util::TextTable table({"node", "t_i", "wait w_i", "interval x_i"});
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    table.add_row({pipeline.node(i).name, fmt(pipeline.service_time(i), 1),
                   fmt(solved.value().waits[i], 2),
                   fmt(solved.value().firing_intervals[i], 2)});
  }
  table.print(std::cout);
  std::cout << "\npredicted active fraction = "
            << fmt(solved.value().predicted_active_fraction)
            << "\ndeadline budget used = "
            << fmt(solved.value().deadline_budget_used, 1) << " / "
            << fmt(deadline, 1) << "\nKKT certified = "
            << (solved.value().kkt.satisfied(1e-4) ? "yes" : "NO") << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    core::write_enforced_schedule_json(out, pipeline, config, solved.value(),
                                       tau0, deadline);
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

int cmd_sweep(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  const auto grid = core::SweepGrid::linear(
      cli.get_double("tau0-lo"), cli.get_double("tau0-hi"),
      positive_count(cli, "tau0-points"), cli.get_double("d-lo"),
      cli.get_double("d-hi"), positive_count(cli, "d-points"));
  util::ThreadPool pool;
  const auto surface = core::run_sweep(
      pipeline, enforced_config(pipeline, cli.get_string("b")),
      {cli.get_double("block-b"), cli.get_double("S")}, grid, &pool);
  const auto summary = core::summarize_dominance(surface);
  std::cout << "cells: " << summary.cells_total
            << ", enforced wins " << summary.enforced_wins
            << " (max advantage " << fmt(summary.max_enforced_advantage, 3)
            << "), monolithic wins " << summary.monolithic_wins
            << " (max advantage " << fmt(summary.max_monolithic_advantage, 3)
            << ")\n";
  const std::string csv_path = cli.get_string("csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    surface.write_csv(out);
    std::cout << "wrote " << csv_path << "\n";
  }
  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    core::write_surface_json(out, surface);
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

int cmd_simulate(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  const double tau0 = cli.get_double("tau0");
  const double deadline = cli.get_double("deadline");
  const auto config = enforced_config(pipeline, cli.get_string("b"));
  const core::EnforcedWaitsStrategy strategy(pipeline, config);
  auto solved = strategy.solve(tau0, deadline);
  if (!solved.ok()) {
    std::cerr << "infeasible: " << solved.error().message << "\n";
    return 1;
  }
  const auto intervals = solved.value().firing_intervals;
  const auto trials = static_cast<std::uint64_t>(positive_count(cli, "trials"));
  const auto inputs = static_cast<ItemCount>(positive_count(cli, "inputs"));
  const std::uint64_t seed = non_negative_count(cli, "seed");

  util::ThreadPool pool;
  const auto summary = sim::run_trials(
      [&](std::uint64_t trial) {
        arrivals::FixedRateArrivals arrival_process(tau0);
        sim::EnforcedSimConfig sim_config;
        sim_config.input_count = inputs;
        sim_config.deadline = deadline;
        sim_config.seed = dist::derive_seed({seed, trial});
        return sim::simulate_enforced_waits(pipeline, intervals,
                                            arrival_process, sim_config);
      },
      trials, &pool);
  std::cout << "trials: " << summary.trials << " x "
            << util::with_commas(inputs) << " inputs\n"
            << "miss-free trials: " << summary.miss_free_trials << " ("
            << fmt(summary.miss_free_fraction(), 3) << ", 95% CI ["
            << fmt(summary.miss_free_interval().lower, 3) << ", "
            << fmt(summary.miss_free_interval().upper, 3) << "])\n"
            << "mean miss fraction: " << fmt(summary.miss_fraction.mean(), 6)
            << "\nmeasured active fraction: "
            << fmt(summary.active_fraction.mean()) << " (predicted "
            << fmt(solved.value().predicted_active_fraction) << ")\n"
            << "worst latency: " << fmt(summary.latency_max.max(), 1)
            << " (deadline " << fmt(deadline, 1) << ")\n";
  return summary.miss_free_fraction() >= 0.95 ? 0 : 1;
}

int cmd_predict_b(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  const double tau0 = cli.get_double("tau0");
  const double deadline = cli.get_double("deadline");
  const double headroom = cli.get_double("headroom");
  const auto model = cli.get_string("model") == "poisson"
                         ? queueing::ArrivalModel::kPoisson
                         : queueing::ArrivalModel::kBatch;
  const auto config = enforced_config(pipeline, cli.get_string("b"));
  const core::EnforcedWaitsStrategy strategy(pipeline, config);
  auto solved = strategy.solve(headroom * tau0, headroom * deadline);
  if (!solved.ok()) {
    std::cerr << "headroom solve infeasible: " << solved.error().message << "\n";
    return 1;
  }
  auto prediction =
      queueing::predict_b(pipeline, solved.value().firing_intervals, tau0,
                          cli.get_double("epsilon"), model);
  if (!prediction.ok()) {
    std::cerr << "prediction failed (" << prediction.error().code
              << "): " << prediction.error().message << "\n";
    return 1;
  }
  util::TextTable table({"node", "utilization", "queue q(1-eps)", "b_i"});
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    table.add_row({pipeline.node(i).name,
                   fmt(prediction.value().utilization[i], 3),
                   std::to_string(prediction.value().queue_quantiles[i]),
                   fmt(prediction.value().b[i], 0)});
  }
  table.print(std::cout);
  std::cout << "\nmodel: " << to_string(model) << ", epsilon = "
            << fmt(cli.get_double("epsilon"), 6)
            << "\npredicted worst-case latency budget: "
            << fmt(prediction.value().predicted_worst_latency, 1)
            << " (deadline " << fmt(deadline, 1) << ")\n";
  return 0;
}

int cmd_sensitivity(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  const auto config = enforced_config(pipeline, cli.get_string("b"));
  const core::EnforcedWaitsStrategy strategy(pipeline, config);
  auto analysis = core::analyze_sensitivity(strategy, cli.get_double("tau0"),
                                            cli.get_double("deadline"));
  if (!analysis.ok()) {
    std::cerr << "infeasible: " << analysis.error().message << "\n";
    return 1;
  }
  util::TextTable table({"constraint", "slack", "active"});
  for (const auto& slack : analysis.value().slacks) {
    table.add_row({slack.label, fmt(slack.slack, 3), slack.active ? "yes" : ""});
  }
  table.print(std::cout);
  std::cout << "\nbottleneck: " << analysis.value().bottleneck
            << "\nmarginal value of deadline: "
            << fmt(analysis.value().deadline_multiplier * 1000.0, 6)
            << " active fraction per 1000 cycles ("
            << (analysis.value().exact ? "exact" : "finite difference") << ")\n";
  return 0;
}

int cmd_tradeoff(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  const double tau0 = cli.get_double("tau0");
  core::TradeoffConfig config;
  config.samples = positive_count(cli, "tau0-points") * 4;
  auto curve = core::trace_tradeoff(
      pipeline, enforced_config(pipeline, cli.get_string("b")),
      {cli.get_double("block-b"), cli.get_double("S")}, tau0, config);
  if (!curve.ok()) {
    std::cerr << "infeasible: " << curve.error().message << "\n";
    return 1;
  }
  util::TextTable table({"deadline D", "enforced AF", "monolithic AF", ""});
  for (std::size_t i = 0; i < curve.value().points.size(); ++i) {
    const auto& point = curve.value().points[i];
    table.add_row(
        {fmt(point.deadline, 0),
         point.enforced_feasible ? fmt(point.enforced_active_fraction) : "--",
         point.monolithic_feasible ? fmt(point.monolithic_active_fraction)
                                   : "--",
         static_cast<std::ptrdiff_t>(i) == curve.value().knee_index ? "<- knee"
                                                                    : ""});
  }
  table.print(std::cout);
  std::cout << "\nrate/chain-limited floor: "
            << fmt(curve.value().enforced_floor) << "\n";
  if (const auto* knee = curve.value().knee()) {
    std::cout << "knee: D = " << fmt(knee->deadline, 0)
              << " (active fraction "
              << fmt(knee->enforced_active_fraction)
              << ") — past this, deadline slack buys little\n";
  }
  return 0;
}

arrivals::RateFnPtr make_rate_profile(const std::string& profile, double tau0,
                                      double tau1, Cycles switch_t) {
  const double r0 = 1.0 / tau0;
  const double r1 = 1.0 / tau1;
  if (profile == "fixed") {
    return std::make_shared<arrivals::PiecewiseConstantRate>(
        std::vector<Cycles>{0.0}, std::vector<double>{r0});
  }
  if (profile == "step") {
    return std::make_shared<arrivals::PiecewiseConstantRate>(
        std::vector<Cycles>{0.0, switch_t}, std::vector<double>{r0, r1});
  }
  if (profile == "ramp") {
    return std::make_shared<arrivals::LinearRampRate>(r0, r1, switch_t);
  }
  if (profile == "sine") {
    return std::make_shared<arrivals::SinusoidalRate>(
        0.5 * (r0 + r1), 0.5 * std::abs(r1 - r0), switch_t);
  }
  throw std::logic_error("--profile must be step|ramp|sine|fixed");
}

int cmd_replay(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  const double tau0 = cli.get_double("tau0");
  const double tau1 = cli.get_double("tau1");
  const auto rate = make_rate_profile(cli.get_string("profile"), tau0, tau1,
                                      cli.get_double("switch-t"));

  service::ReplayConfig config;
  config.deadline = cli.get_double("deadline");
  config.initial_tau0 = tau0;
  config.b = parse_b(cli.get_string("b"), pipeline.size());
  config.controller.estimator.alpha = cli.get_double("alpha");
  config.controller.replanner.drift_threshold = cli.get_double("drift");
  config.controller.replanner.headroom = cli.get_double("headroom");
  config.controller.replanner.cooldown_ticks =
      non_negative_count(cli, "cooldown");
  config.chunk_items = positive_count(cli, "chunk-items");
  config.chunks = positive_count(cli, "chunks");
  config.sessions = positive_count(cli, "sessions");
  config.seed = non_negative_count(cli, "seed");

  arrivals::ArrivalPtr offered;
  if (cli.get_flag("stochastic")) {
    offered = std::make_unique<arrivals::ThinningArrivals>(rate);
  } else {
    offered = std::make_unique<arrivals::VariableRateArrivals>(rate);
  }

  const auto report = service::replay_trace(pipeline, *offered, config);

  util::TextTable table({"chunk", "true gap", "tau0_est", "planned", "epoch",
                         "admit", "shed", "misses", "AF"});
  const std::size_t stride = std::max<std::size_t>(1, report.chunks.size() / 16);
  for (std::size_t i = 0; i < report.chunks.size(); ++i) {
    if (i % stride != 0 && i + 1 != report.chunks.size()) continue;
    const auto& chunk = report.chunks[i];
    table.add_row({std::to_string(i), fmt(chunk.mean_gap_offered, 2),
                   fmt(chunk.tau0_estimate, 2), fmt(chunk.planned_tau0, 2),
                   std::to_string(chunk.plan_epoch),
                   std::to_string(chunk.admitted_sessions),
                   std::to_string(chunk.shed),
                   std::to_string(chunk.deadline_misses),
                   fmt(chunk.active_fraction, 3)});
  }
  table.print(std::cout);

  std::cout << "\noffered " << util::with_commas(report.total_offered)
            << ", admitted " << util::with_commas(report.total_admitted)
            << ", shed " << util::with_commas(report.total_shed)
            << ", misses " << util::with_commas(report.total_misses) << "\n"
            << "replans: " << report.controller.replans << " ("
            << report.controller.slack_forced << " slack-forced, "
            << report.controller.solve_failures << " solve failures) over "
            << report.controller.ticks << " ticks\n"
            << "final plan: epoch " << report.final_plan->epoch
            << ", planned tau0 " << fmt(report.final_plan->planned_tau0, 3)
            << (report.final_plan->shedding ? " (shedding)" : "") << "\n";

  // Offline oracle: solve directly at the final chunk's true rate.
  const auto config_b = enforced_config(pipeline, cli.get_string("b"));
  const core::EnforcedWaitsStrategy oracle(pipeline, config_b);
  const Cycles oracle_tau0 = cli.get_double("headroom") *
                             report.chunks.back().mean_gap_offered;
  if (auto solved = oracle.solve(oracle_tau0, config.deadline); solved.ok()) {
    double max_rel = 0.0;
    for (std::size_t i = 0; i < pipeline.size(); ++i) {
      const double rel =
          std::abs(report.final_plan->schedule.firing_intervals[i] -
                   solved.value().firing_intervals[i]) /
          solved.value().firing_intervals[i];
      max_rel = std::max(max_rel, rel);
    }
    std::cout << "oracle (tau0 " << fmt(oracle_tau0, 3)
              << "): max relative interval gap " << fmt(max_rel, 6) << "\n";
  }
  return 0;
}

/// The controller configuration `serve` runs under — and therefore the one
/// `recover` must rebuild with. Shared so the journal fingerprint derived
/// from it is identical on both sides.
control::ControllerConfig serve_controller_config(const util::CliParser& cli) {
  control::ControllerConfig controller;
  controller.estimator.alpha = cli.get_double("alpha");
  controller.replanner.headroom = cli.get_double("headroom");
  controller.replanner.drift_threshold = cli.get_double("drift");
  controller.replanner.cooldown_ticks = non_negative_count(cli, "cooldown");
  return controller;
}

int cmd_serve(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  service::ServiceConfig config;
  config.deadline = cli.get_double("deadline");
  config.initial_tau0 = cli.get_double("tau0");
  config.b = parse_b(cli.get_string("b"), pipeline.size());
  config.controller = serve_controller_config(cli);
  config.shards = positive_count(cli, "shards");
  config.pin_workers = cli.get_flag("pin");
  // 0 is legal (= hardware concurrency), so this is a non-negative count.
  config.exec_threads =
      static_cast<std::size_t>(non_negative_count(cli, "exec-threads"));

  const long long listen = cli.get_int("listen");
  if (listen > 65535) throw std::logic_error("--listen must be a port");
  const std::string journal_dir = cli.get_string("journal-dir");
  if (!journal_dir.empty() && config.shards != 1) {
    throw std::logic_error(
        "--journal-dir requires --shards 1 (drain records carry no shard "
        "identity, so a multi-shard journal would not replay "
        "deterministically)");
  }

  service::PipelineService svc(pipeline,
                               service::synthetic_stage_factory(pipeline),
                               config);

  std::unique_ptr<net::ArrivalJournal> journal;
  if (!journal_dir.empty()) {
    net::JournalConfig jconfig;
    jconfig.dir = journal_dir;
    jconfig.fingerprint = net::ControlFingerprint::from(
        config.deadline, config.initial_tau0, config.controller);
    journal = std::make_unique<net::ArrivalJournal>(jconfig, &svc.controller());
    svc.set_ingest_observer(journal.get());
  }
  svc.start();

  std::unique_ptr<net::IngestServer> server;
  if (listen >= 0) {
    net::ServerConfig sconfig;
    sconfig.port = static_cast<std::uint16_t>(listen);
    server = std::make_unique<net::IngestServer>(svc, sconfig);
    server->start();
    std::cout << "listening on " << sconfig.bind_address << ":"
              << server->port() << "\n";
  }

  const std::size_t producers = positive_count(cli, "producers");
  const auto duration = std::chrono::milliseconds(
      static_cast<long long>(positive_count(cli, "duration-ms")));
  const std::size_t batch = positive_count(cli, "submit-batch");
  const auto gap = std::chrono::microseconds(
      static_cast<long long>(non_negative_count(cli, "submit-gap-us")));

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const auto until = std::chrono::steady_clock::now() + duration;
      std::uint64_t counter = p << 32;
      if (server) {
        // Producers exercise the wire path: each is a loopback TCP client
        // streaming kItemBatch frames at the server.
        net::IngestClient client("127.0.0.1", server->port());
        const std::uint64_t wire_id = p + 1;
        client.open_session(wire_id);
        std::vector<std::uint64_t> items(batch);
        while (std::chrono::steady_clock::now() < until) {
          for (std::size_t k = 0; k < batch; ++k) items[k] = counter++;
          client.send_items(wire_id, items.data(), items.size());
          client.poll_notifications();
          if (gap.count() > 0) std::this_thread::sleep_for(gap);
        }
        client.close_session(wire_id);
        client.finish();
      } else {
        const service::SessionId session = svc.open_session();
        while (std::chrono::steady_clock::now() < until) {
          std::vector<runtime::Item> items;
          items.reserve(batch);
          for (std::size_t k = 0; k < batch; ++k) {
            items.emplace_back(std::any(counter++));
          }
          svc.submit(session, std::move(items));
          if (gap.count() > 0) std::this_thread::sleep_for(gap);
        }
        svc.close_session(session);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  if (server) server->stop();
  svc.stop();
  if (journal) {
    svc.set_ingest_observer(nullptr);
    journal->flush();
  }

  const service::ServiceStats stats = svc.stats();
  const control::ControllerStats loop = svc.controller().stats();
  std::cout << "submitted " << util::with_commas(stats.submitted)
            << ", accepted " << util::with_commas(stats.accepted)
            << ", backpressure "
            << util::with_commas(stats.rejected_backpressure) << ", shed "
            << util::with_commas(stats.shed) << "\n"
            << "batches " << util::with_commas(stats.batches) << ", executed "
            << util::with_commas(stats.executed_items) << ", sink outputs "
            << util::with_commas(stats.sink_outputs) << ", misses "
            << util::with_commas(stats.deadline_misses) << "\n"
            << "control: " << loop.replans << " replans over " << loop.ticks
            << " ticks, plan epoch " << stats.plan_epoch << ", tau0_est "
            << fmt(svc.controller().estimator().tau0(), 2) << "\n";
  if (svc.shards() > 1) {
    util::TextTable table({"shard", "sessions", "batches", "executed",
                           "epoch", "depth", "watermark"});
    for (std::size_t s = 0; s < svc.shards(); ++s) {
      const service::ShardStats shard = svc.shard_stats(s);
      table.add_row({std::to_string(s), std::to_string(shard.open_sessions),
                     util::with_commas(shard.batches),
                     util::with_commas(shard.executed_items),
                     std::to_string(shard.plan_epoch),
                     std::to_string(shard.queue_depth),
                     shard.admitted_watermark == UINT64_MAX
                         ? std::string("open")
                         : std::to_string(shard.admitted_watermark)});
    }
    table.print(std::cout);
  }
  if (server) {
    const net::ServerStats sstats = server->stats();
    std::cout << "net: " << sstats.connections_accepted << " connections, "
              << util::with_commas(sstats.frames_in) << " frames, "
              << util::with_commas(sstats.items_in) << " items in, "
              << util::with_commas(sstats.items_rejected) << " rejected, "
              << sstats.protocol_errors << " protocol errors\n";
  }
  if (journal) {
    const net::JournalStats jstats = journal->stats();
    std::cout << "journal: " << util::with_commas(jstats.records)
              << " records (" << util::with_commas(jstats.arrivals)
              << " arrivals over " << util::with_commas(jstats.drains)
              << " drains), " << jstats.commits << " commits, "
              << util::with_commas(jstats.bytes) << " bytes, "
              << jstats.snapshots << " snapshots\n";
  }
  return stats.executed_items == stats.accepted ? 0 : 1;
}

int cmd_recover(const sdf::PipelineSpec& pipeline, util::CliParser& cli) {
  const std::string journal_dir = cli.get_string("journal-dir");
  if (journal_dir.empty()) {
    throw std::logic_error("recover requires --journal-dir");
  }
  const double deadline = cli.get_double("deadline");
  const double tau0 = cli.get_double("tau0");
  const control::ControllerConfig controller_config =
      serve_controller_config(cli);

  // Rebuild the controller exactly as the journaled serve run built its
  // shard-0 controller; the snapshot fingerprint rejects any mismatch.
  control::Controller controller(
      pipeline, enforced_config(pipeline, cli.get_string("b")), deadline,
      tau0, controller_config);
  const net::ControlFingerprint fingerprint =
      net::ControlFingerprint::from(deadline, tau0, controller_config);
  const net::RecoveryReport report =
      net::recover_journal(journal_dir, fingerprint, controller);

  std::cout << "recovered from " << journal_dir << ": "
            << (report.snapshot_loaded
                    ? "snapshot (" +
                          util::with_commas(report.records_in_snapshot) +
                          " records) + "
                    : std::string())
            << util::with_commas(report.records_replayed)
            << " replayed records (" << util::with_commas(report.drains_replayed)
            << " drains, " << util::with_commas(report.arrivals_replayed)
            << " arrivals)";
  if (report.torn_bytes > 0) {
    std::cout << ", torn tail " << report.torn_bytes << " bytes discarded";
  }
  std::cout << "\nopen sessions: " << report.open_sessions.size()
            << ", last arrival " << fmt(report.last_arrival, 2) << "\n";
  const control::ControllerStats stats = controller.stats();
  const control::PlanPtr plan = controller.plan();
  std::cout << "controller: " << stats.ticks << " ticks, " << stats.replans
            << " replans, tau0_est " << fmt(controller.estimator().tau0(), 2)
            << "\nplan: epoch " << plan->epoch << ", planned tau0 "
            << fmt(plan->planned_tau0, 3)
            << (plan->shedding ? " (shedding)" : "") << "\n";
  return 0;
}


/// Register every subsystem's kernels with the process-wide registry and
/// apply the dispatch flags: --simd-level pins the global cap (clamped by
/// capability, like RIPPLE_SIMD_LEVEL), --simd-autotune runs the gated
/// deterministic microbench pass so resolution prefers measured winners.
device::AutotuneReport configure_dispatch(const util::CliParser& cli) {
  blast::simd::register_kernels();
  cascade::simd::register_kernels();
  const std::string& level_text = cli.get_string("simd-level");
  if (!level_text.empty()) {
    const std::optional<device::SimdLevel> level =
        device::parse_simd_level(level_text);
    if (!level.has_value()) {
      throw std::logic_error("--simd-level must be scalar|neon|avx2|avx512 (got " +
                             level_text + ")");
    }
    device::set_simd_override(level);
  }
  if (cli.get_flag("simd-autotune")) {
    return device::KernelRegistry::instance().autotune();
  }
  return {};
}

int cmd_kernels(const util::CliParser& cli) {
  const device::AutotuneReport report = configure_dispatch(cli);
  device::KernelRegistry& registry = device::KernelRegistry::instance();
  std::cout << "active level: "
            << device::to_string(device::active_simd_level()) << " (detected "
            << device::to_string(device::detected_simd_level()) << ")\n";
  util::TextTable table(
      {"kernel", "subsystem", "level", "lanes", "supported", "resolved"});
  for (const device::KernelCatalogRow& row : registry.dump()) {
    const bool resolved = registry.resolved_level(row.kernel) == row.level;
    table.add_row({row.kernel, row.subsystem, device::to_string(row.level),
                   std::to_string(row.lanes), row.supported ? "yes" : "no",
                   resolved ? "<-" : ""});
  }
  table.print(std::cout);
  if (!report.kernels.empty()) {
    std::cout << "\nautotune (" << fmt(report.wall_us, 1) << " us wall):\n";
    util::TextTable tuned({"kernel", "level", "lanes", "ns/item"});
    for (const device::AutotuneKernelReport& kernel : report.kernels) {
      for (const device::AutotuneMeasurement& m : kernel.measured) {
        tuned.add_row({kernel.kernel, device::to_string(m.level),
                       std::to_string(m.lanes),
                       fmt(m.ns_per_item, 2) +
                           (m.level == kernel.winner ? "  <- winner" : "")});
      }
    }
    tuned.print(std::cout);
  }
  return 0;
}

/// Graph sources: a builtin measured scenario (with stage code, runnable on
/// the DAG executor) or a ripple.graph.v1 JSON file (gain models only,
/// runnable on the stochastic DAG simulator).
util::Result<graph::GraphScenario> load_graph(const std::string& source) {
  using R = util::Result<graph::GraphScenario>;
  if (source == "branching-blast") return graph::branching_blast_scenario();
  if (source == "telemetry-fanin") return graph::telemetry_fanin_scenario();
  std::ifstream in(source);
  if (!in) return R::failure("io_error", "cannot open " + source);
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = graph::graph_from_json(text.str());
  if (!parsed.ok()) return R::failure(parsed.error().code,
                                      parsed.error().message);
  return graph::GraphScenario{std::move(parsed).take(), {}};
}

void print_graph_summary(const graph::GraphSpec& g) {
  const std::vector<Cycles> minimal = g.minimal_firing_intervals();
  std::cout << "graph '" << g.name() << "', v = " << g.simd_width()
            << ", N = " << g.size() << ", E = " << g.edge_count()
            << (g.is_linear() ? " (linear chain)" : "") << "\n";
  util::TextTable nodes({"node", "kind", "t_u", "in", "out", "flow", "L_u"});
  for (NodeIndex u = 0; u < g.size(); ++u) {
    nodes.add_row({g.node(u).name, graph::node_kind_name(g.node(u).kind),
                   fmt(g.service_time(u), 1),
                   std::to_string(g.in_edges(u).size()),
                   std::to_string(g.out_edges(u).size()),
                   fmt(g.node_flow(u)), fmt(minimal[u], 1)});
  }
  nodes.print(std::cout);
  util::TextTable edges({"edge", "mean gain", "gain model", "flow"});
  for (graph::EdgeIndex e = 0; e < g.edge_count(); ++e) {
    edges.add_row({g.node(g.edge(e).from).name + " -> " +
                       g.node(g.edge(e).to).name,
                   fmt(g.edge(e).mean_gain()),
                   g.edge(e).gain ? g.edge(e).gain->name() : "N/A",
                   fmt(g.edge_flow(e))});
  }
  edges.print(std::cout);
  if (auto paths = g.enumerate_paths(); paths.ok()) {
    std::cout << "source -> sink paths: " << paths.value().size() << "\n";
  } else {
    std::cout << "source -> sink paths: > 64 (" << paths.error().code
              << ")\n";
  }
}

void print_graph_metrics(const graph::GraphSpec& g,
                         const sim::TrialMetrics& m) {
  util::TextTable table({"node", "firings", "empty", "consumed", "produced",
                         "occupancy", "max queue"});
  for (NodeIndex u = 0; u < g.size(); ++u) {
    const sim::NodeMetrics& node = m.nodes[u];
    table.add_row({g.node(u).name, std::to_string(node.firings),
                   std::to_string(node.empty_firings),
                   std::to_string(node.items_consumed),
                   std::to_string(node.items_produced),
                   fmt(node.mean_occupancy(m.vector_width), 3),
                   std::to_string(node.max_queue_length)});
  }
  table.print(std::cout);
  std::cout << "inputs arrived = " << m.inputs_arrived
            << ", on time = " << m.inputs_on_time
            << ", missed = " << m.inputs_missed
            << "\nsink outputs = " << m.sink_outputs << "\n";
  if (m.output_latency.count() > 0) {
    std::cout << "output latency mean/min/max = "
              << fmt(m.output_latency.mean(), 1) << " / "
              << fmt(m.output_latency.min(), 1) << " / "
              << fmt(m.output_latency.max(), 1) << " cycles\n";
  }
  std::cout << "makespan = " << fmt(m.makespan, 1) << " cycles\n";
}

int cmd_graph(util::CliParser& cli) {
  if (cli.positional().empty()) {
    std::cerr << "missing graph source (a ripple.graph.v1 JSON file, "
                 "'branching-blast', or 'telemetry-fanin')\n";
    return usage(2);
  }
  auto loaded = load_graph(cli.positional()[0]);
  if (!loaded.ok()) {
    std::cerr << "cannot load graph (" << loaded.error().code
              << "): " << loaded.error().message << "\n";
    return 2;
  }
  const graph::GraphSpec& g = loaded.value().graph;
  const std::string mode = cli.get_string("mode");
  if (mode != "validate" && mode != "plan" && mode != "run") {
    std::cerr << "--mode must be validate|plan|run (got '" << mode << "')\n";
    return 2;
  }

  print_graph_summary(g);
  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << graph::graph_to_json(g);
    std::cout << "wrote " << json_path << "\n";
  }
  if (mode == "validate") return 0;

  const std::vector<double> b = parse_b(cli.get_string("b"), g.size());
  if (!b.empty() && b.size() != g.size()) {
    throw std::logic_error("--b must list one multiplier (>= 1) per node");
  }
  graph::GraphPlanner planner(
      g, b.empty() ? graph::GraphPlanConfig::optimistic(g)
                   : graph::GraphPlanConfig{b});
  const double tau0 = cli.get_double("tau0");
  const double deadline = cli.get_double("deadline");
  auto solved = planner.solve(tau0, deadline);
  if (!solved.ok()) {
    std::cerr << "infeasible (" << solved.error().code
              << "): " << solved.error().message
              << "\nmin feasible deadline at this tau0 = "
              << fmt(planner.min_feasible_deadline(tau0), 1) << "\n";
    return 1;
  }
  const graph::GraphSchedule& schedule = solved.value();
  std::cout << "\nplan at tau0 = " << fmt(tau0, 1) << ", D = "
            << fmt(deadline, 1)
            << (schedule.lowered_linear ? " (chain-solver delegation)"
                                        : " (per-path barrier, KKT "
                                          "certified)")
            << "\n";
  util::TextTable plan({"node", "t_u", "w_u", "x_u"});
  for (NodeIndex u = 0; u < g.size(); ++u) {
    plan.add_row({g.node(u).name, fmt(g.service_time(u), 1),
                  fmt(schedule.waits[u], 2),
                  fmt(schedule.firing_intervals[u], 2)});
  }
  plan.print(std::cout);
  std::cout << "predicted active fraction = "
            << fmt(schedule.predicted_active_fraction)
            << "\ndeadline budget used = "
            << fmt(schedule.deadline_budget_used, 1) << " of "
            << fmt(deadline, 1) << "\n";
  if (mode == "plan") return 0;

  const auto inputs = positive_count(cli, "inputs");
  const auto seed = non_negative_count(cli, "seed");
  if (!loaded.value().stages.empty()) {
    // Builtin scenario: real stage code through the vector-wide DAG engine.
    graph::GraphExecutorConfig config;
    config.firing_intervals = schedule.firing_intervals;
    config.input_gap = tau0;
    config.deadline = deadline;
    config.exec_threads = non_negative_count(cli, "exec-threads");
    const graph::GraphExecutor executor(g, loaded.value().stages);
    auto run = executor.run(graph::scenario_inputs(inputs, seed), config);
    if (!run.ok()) {
      std::cerr << "run failed (" << run.error().code
                << "): " << run.error().message << "\n";
      return 1;
    }
    std::cout << "\nvector-wide DAG executor, " << inputs << " inputs:\n";
    print_graph_metrics(g, run.value().base);
    return 0;
  }
  // JSON graph: no stage code — stochastic simulation of the gain models.
  arrivals::FixedRateArrivals arrival_process(tau0);
  graph::GraphSimConfig config;
  config.input_count = static_cast<ItemCount>(inputs);
  config.deadline = deadline;
  config.seed = seed;
  config.initial_offsets = graph::aligned_graph_phase_offsets(g);
  const sim::TrialMetrics metrics = graph::simulate_graph_enforced(
      g, schedule.firing_intervals, arrival_process, config);
  std::cout << "\nstochastic DAG simulation, " << inputs << " inputs:\n";
  print_graph_metrics(g, metrics);
  return 0;
}

}  // namespace

int main(int argc, const char** argv) {
  if (argc < 2) return usage(2);
  const std::string command = argv[1];

  util::CliParser cli;
  cli.add_double("tau0", 20.0, "inter-arrival time (cycles)");
  cli.add_double("deadline", 185000.0, "end-to-end deadline D (cycles)");
  cli.add_string("b", "", "enforced-waits multipliers, comma separated");
  cli.add_double("block-b", 1.0, "monolithic queue multiplier b");
  cli.add_double("S", 1.0, "monolithic worst-case scale S");
  cli.add_string("strategy", "enforced", "solve: enforced|monolithic");
  cli.add_string("csv", "", "write CSV output here");
  cli.add_string("json", "", "write JSON output here");
  cli.add_int("trials", 20, "simulate: seeded trials");
  cli.add_int("inputs", 20000, "simulate: inputs per trial");
  cli.add_int("seed", 2021, "base RNG seed");
  cli.add_double("tau0-lo", 1.0, "sweep: tau0 range start");
  cli.add_double("tau0-hi", 100.0, "sweep: tau0 range end");
  cli.add_int("tau0-points", 12, "sweep: tau0 grid points");
  cli.add_double("d-lo", 2e4, "sweep: deadline range start");
  cli.add_double("d-hi", 3.5e5, "sweep: deadline range end");
  cli.add_int("d-points", 8, "sweep: deadline grid points");
  cli.add_string("model", "batch", "predict-b: poisson|batch");
  cli.add_string("mode", "validate", "graph: validate|plan|run");
  cli.add_double("headroom", 0.9,
                 "predict-b: solve at (h*tau0, h*D); replay/serve: re-plan "
                 "at h*tau0_est");
  cli.add_double("epsilon", 1e-4, "predict-b: queue-quantile tail level");
  cli.add_double("tau1", 10.0, "replay: post-step/ramp inter-arrival time");
  cli.add_string("profile", "step", "replay: step|ramp|sine|fixed");
  cli.add_double("switch-t", 5e5,
                 "replay: step time / ramp duration / sine period (cycles)");
  cli.add_flag("stochastic", false,
               "replay: thinned Poisson arrivals instead of deterministic");
  cli.add_int("chunk-items", 256, "replay: arrivals per control interval");
  cli.add_int("chunks", 64, "replay: control intervals");
  cli.add_int("sessions", 4, "replay: symmetric producer sessions");
  cli.add_double("alpha", 0.05, "replay: rate-estimator EWMA weight");
  cli.add_double("drift", 0.05, "replay: re-plan drift threshold");
  cli.add_int("cooldown", 1, "replay: ticks between re-solves");
  cli.add_int("producers", 2, "serve: producer threads");
  cli.add_int("shards", 1, "serve: shard workers (sessions hash to a shard)");
  cli.add_flag("pin", false, "serve: pin each shard worker to a core");
  cli.add_int("exec-threads", 1,
              "serve: task-parallel executor threads per shard (1 = "
              "sequential engine, 0 = hardware concurrency; results are "
              "bit-identical across values)");
  cli.add_int("duration-ms", 200, "serve: wall-clock run time");
  cli.add_int("submit-batch", 8, "serve: items per submission");
  cli.add_int("submit-gap-us", 500, "serve: producer sleep between submissions");
  cli.add_int("listen", -1,
              "serve: accept ripple.frame.v1 ingest on this TCP port "
              "(0 picks an ephemeral port; producers become loopback clients)");
  cli.add_string("journal-dir", "",
                 "serve: journal every admitted arrival here for recovery; "
                 "recover: the directory to rebuild from");
  cli.add_string("trace-out", "",
                 "write a Chrome trace_event timeline here (RIPPLE_OBS builds)");
  cli.add_string("metrics-out", "",
                 "write the metrics registry as JSON here (RIPPLE_OBS builds)");
  cli.add_string("simd-level", "",
                 "pin kernel dispatch: scalar|neon|avx2|avx512 (clamped by "
                 "host capability; also settable via RIPPLE_SIMD_LEVEL)");
  cli.add_flag("simd-autotune", false,
               "run the deterministic kernel microbench pass at startup and "
               "dispatch to measured winners");

  auto parsed = cli.parse(argc - 1, argv + 1);
  if (!parsed.ok()) {
    std::cerr << parsed.error().message << "\n";
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("ripple_cli " + command) << std::endl;
    return 0;
  }
  try {
    if (command == "kernels") return cmd_kernels(cli);
    configure_dispatch(cli);
    if (command == "graph") {
      enable_observability(cli);
      return export_observability(cli, cmd_graph(cli));
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
  if (cli.positional().empty()) {
    std::cerr << "missing pipeline source (a JSON file, or 'blast')\n";
    return usage(2);
  }
  auto pipeline = load_pipeline(cli.positional()[0]);
  if (!pipeline.ok()) {
    std::cerr << "cannot load pipeline (" << pipeline.error().code
              << "): " << pipeline.error().message << "\n";
    return 2;
  }

  enable_observability(cli);

  try {
    if (command == "describe")
      return export_observability(cli, cmd_describe(pipeline.value(), cli));
    if (command == "solve")
      return export_observability(cli, cmd_solve(pipeline.value(), cli));
    if (command == "sweep")
      return export_observability(cli, cmd_sweep(pipeline.value(), cli));
    if (command == "simulate")
      return export_observability(cli, cmd_simulate(pipeline.value(), cli));
    if (command == "predict-b")
      return export_observability(cli, cmd_predict_b(pipeline.value(), cli));
    if (command == "sensitivity")
      return export_observability(cli, cmd_sensitivity(pipeline.value(), cli));
    if (command == "tradeoff")
      return export_observability(cli, cmd_tradeoff(pipeline.value(), cli));
    if (command == "replay")
      return export_observability(cli, cmd_replay(pipeline.value(), cli));
    if (command == "serve")
      return export_observability(cli, cmd_serve(pipeline.value(), cli));
    if (command == "recover")
      return export_observability(cli, cmd_recover(pipeline.value(), cli));
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
  std::cerr << "unknown command '" << command << "'\n";
  return usage(2);
}
