// trace_inspect — offline checker and summarizer for RIPPLE trace files.
//
//   trace_inspect <trace.json> [--top N] [--strict]
//
// Reads a Chrome trace_event document produced by --trace-out (schema
// "ripple.trace.v1", see docs/OBSERVABILITY.md), re-validates begin/end span
// nesting per (pid, tid) lane, and prints a per-name summary table: span
// counts, total/mean/max duration, plus instant and counter tallies. With
// --strict, any span/instant/counter name outside the catalog in
// src/obs/names.hpp is an error — a typo in new instrumentation (or a name
// added without updating the catalog) fails the CI trace check instead of
// sailing through. Exits nonzero on malformed input, broken nesting, or
// (strict) unknown names.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/names.hpp"
#include "util/cli.hpp"
#include "util/jsonv.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace {

using namespace ripple;

struct SpanStats {
  std::uint64_t count = 0;
  double total = 0.0;
  double max = 0.0;
};

struct InstantStats {
  std::uint64_t count = 0;
  double min_value = 0.0;
  double max_value = 0.0;
};

struct OpenSpan {
  std::string name;
  double ts = 0.0;
};

std::string fmt(double v, int p = 1) { return util::format_double(v, p); }

}  // namespace

int main(int argc, const char** argv) {
  util::CliParser cli;
  cli.add_int("top", 20, "show at most this many rows per section");
  cli.add_flag("strict", false,
               "fail on event names missing from the obs/names.hpp catalog");
  auto parsed = cli.parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().message << "\n";
    return 2;
  }
  if (cli.help_requested() || cli.positional().empty()) {
    std::cout << cli.usage("trace_inspect <trace.json>") << std::endl;
    return cli.help_requested() ? 0 : 2;
  }

  const std::string& path = cli.positional()[0];
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto document = util::parse_json(text.str());
  if (!document.ok()) {
    std::cerr << "malformed JSON (" << document.error().code
              << "): " << document.error().message << "\n";
    return 1;
  }

  const util::JsonValue* events = document.value().find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::cerr << "not a trace document: missing traceEvents array\n";
    return 1;
  }

  // Lane = one Perfetto timeline row. Nesting is checked per lane with the
  // same rule the exporter's validate_span_nesting enforces pre-export.
  std::map<std::pair<double, double>, std::vector<OpenSpan>> lanes;
  std::map<std::string, SpanStats> spans;
  // Per-lane span stats keyed by the lane's metadata label — this is how the
  // sharded service's one-track-per-worker "service.batch" spans stay
  // attributable to their shard ("service.shard0", "service.shard1", ...).
  std::map<std::pair<std::string, std::string>, SpanStats> lane_spans;
  std::map<std::pair<double, double>, std::string> lane_labels;
  std::map<std::string, InstantStats> instants;
  std::map<std::string, std::uint64_t> counters;
  std::uint64_t total_events = 0;
  std::uint64_t nesting_errors = 0;
  std::set<std::string> unknown_names;

  for (const util::JsonValue& event : events->as_array()) {
    const std::string ph = event.string_or("ph", "");
    if (ph == "M") {  // metadata carries no timing, only lane labels
      if (event.string_or("name", "") == "thread_name") {
        const util::JsonValue* args = event.find("args");
        const std::string label =
            args == nullptr ? "" : args->string_or("name", "");
        if (!label.empty()) {
          lane_labels[{event.number_or("pid", 0.0),
                       event.number_or("tid", 0.0)}] = label;
        }
      }
      continue;
    }
    ++total_events;
    const std::string name = event.string_or("name", "?");
    const double ts = event.number_or("ts", 0.0);
    const std::pair<double, double> lane_key = {event.number_or("pid", 0.0),
                                                event.number_or("tid", 0.0)};
    auto& lane = lanes[lane_key];
    if (ph == "B" || ph == "E") {
      if (!obs::names::is_known_span(name)) unknown_names.insert(name);
    } else if (ph == "i") {
      if (!obs::names::is_known_instant(name)) unknown_names.insert(name);
    } else if (ph == "C") {
      if (!obs::names::is_known_counter(name)) unknown_names.insert(name);
    }
    if (ph == "B") {
      lane.push_back({name, ts});
    } else if (ph == "E") {
      if (lane.empty() || lane.back().name != name) {
        std::cerr << "nesting error: end '" << name << "' at ts " << fmt(ts)
                  << (lane.empty()
                          ? " with no open span"
                          : " while '" + lane.back().name + "' is open")
                  << "\n";
        ++nesting_errors;
        if (!lane.empty()) lane.pop_back();
        continue;
      }
      SpanStats& stats = spans[name];
      const double duration = ts - lane.back().ts;
      ++stats.count;
      stats.total += duration;
      stats.max = std::max(stats.max, duration);
      auto label_it = lane_labels.find(lane_key);
      if (label_it != lane_labels.end()) {
        SpanStats& per_lane = lane_spans[{label_it->second, name}];
        ++per_lane.count;
        per_lane.total += duration;
        per_lane.max = std::max(per_lane.max, duration);
      }
      lane.pop_back();
    } else if (ph == "i") {
      const util::JsonValue* args = event.find("args");
      const double value =
          args == nullptr ? 0.0 : args->number_or("value", 0.0);
      InstantStats& stats = instants[name];
      if (stats.count == 0) {
        stats.min_value = stats.max_value = value;
      } else {
        stats.min_value = std::min(stats.min_value, value);
        stats.max_value = std::max(stats.max_value, value);
      }
      ++stats.count;
    } else if (ph == "C") {
      ++counters[name];
    }
  }
  for (const auto& [lane_key, open] : lanes) {
    for (const OpenSpan& span : open) {
      std::cerr << "nesting error: span '" << span.name << "' on lane ("
                << fmt(lane_key.first, 0) << ", " << fmt(lane_key.second, 0)
                << ") never closed\n";
      ++nesting_errors;
    }
  }

  std::cout << path << ": " << util::with_commas(total_events)
            << " events across " << lanes.size() << " lanes\n\n";
  const auto top =
      static_cast<std::size_t>(std::max<long long>(1, cli.get_int("top")));

  if (!spans.empty()) {
    util::TextTable table({"span", "count", "total", "mean", "max"});
    std::size_t shown = 0;
    for (const auto& [name, stats] : spans) {
      if (shown++ >= top) break;
      table.add_row({name, util::with_commas(stats.count), fmt(stats.total),
                     fmt(stats.total / static_cast<double>(stats.count)),
                     fmt(stats.max)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  if (!lane_spans.empty()) {
    util::TextTable table({"lane", "span", "count", "total", "mean", "max"});
    std::size_t shown = 0;
    for (const auto& [key, stats] : lane_spans) {
      if (shown++ >= top) break;
      table.add_row({key.first, key.second, util::with_commas(stats.count),
                     fmt(stats.total),
                     fmt(stats.total / static_cast<double>(stats.count)),
                     fmt(stats.max)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  if (!instants.empty()) {
    util::TextTable table({"instant", "count", "min value", "max value"});
    std::size_t shown = 0;
    for (const auto& [name, stats] : instants) {
      if (shown++ >= top) break;
      table.add_row({name, util::with_commas(stats.count),
                     fmt(stats.min_value), fmt(stats.max_value)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  if (!counters.empty()) {
    util::TextTable table({"counter", "samples"});
    std::size_t shown = 0;
    for (const auto& [name, count] : counters) {
      if (shown++ >= top) break;
      table.add_row({name, util::with_commas(count)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  if (!unknown_names.empty()) {
    std::ostream& out = cli.get_flag("strict") ? std::cerr : std::cout;
    out << (cli.get_flag("strict") ? "unknown names (not in obs/names.hpp):"
                                   : "names outside the obs/names.hpp catalog:");
    for (const std::string& name : unknown_names) out << " '" << name << "'";
    out << "\n";
  }
  if (nesting_errors > 0) {
    std::cerr << nesting_errors << " nesting error(s)\n";
    return 1;
  }
  if (cli.get_flag("strict") && !unknown_names.empty()) return 1;
  std::cout << "span nesting: OK\n";
  return 0;
}
