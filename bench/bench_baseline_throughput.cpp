// Extension: the prior-work throughput-oriented baseline (MERCATOR-style,
// paper refs [9, 21, 24]) against the paper's two deadline-aware strategies.
//
// The greedy scheduler always runs the node with the fullest queue and
// executes exclusively (t_i / N wall-clock per firing): it is excellent at
// throughput and processor efficiency — the paper's premise — but provides
// no latency control, so deadline misses are rampant wherever vectors take
// long to fill (the BLAST pipeline's heavily filtered final stage). This
// quantifies the gap the enforced-waits contribution closes.
#include "bench_common.hpp"

#include "arrivals/arrival_process.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/greedy_sim.hpp"
#include "sim/monolithic_sim.hpp"
#include "util/csv.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("inputs", 30000, "inputs per run");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_baseline_throughput — deadline-aware vs greedy");

  bench::print_banner(
      "Extension: throughput-oriented baseline vs the paper's strategies");
  const ItemCount inputs = cli.get_flag("full")
                               ? 50000
                               : static_cast<ItemCount>(cli.get_int("inputs"));
  const std::uint64_t base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy enforced(pipeline,
                                             bench::paper_enforced_config());
  const core::MonolithicStrategy monolithic(pipeline, {});

  util::TextTable table({"tau0", "D", "approach", "active frac", "occupancy",
                         "misses", "max latency"});
  std::ofstream csv_out = bench::open_csv(cli);
  util::CsvWriter csv(csv_out);
  if (csv_out.is_open()) {
    csv.header({"tau0", "deadline", "approach", "active_fraction", "occupancy",
                "inputs_missed", "max_latency"});
  }

  auto emit = [&](double tau0, double deadline, const std::string& label,
                  const sim::TrialMetrics& metrics) {
    table.add_row({bench::fmt(tau0, 0), bench::fmt(deadline, 0), label,
                   bench::fmt(metrics.active_fraction(), 4),
                   bench::fmt(metrics.overall_occupancy(), 3),
                   std::to_string(metrics.inputs_missed),
                   bench::fmt(metrics.output_latency.max(), 0)});
    if (csv_out.is_open()) {
      csv.row({bench::fmt(tau0, 1), bench::fmt(deadline, 0), label,
               bench::fmt(metrics.active_fraction(), 5),
               bench::fmt(metrics.overall_occupancy(), 5),
               std::to_string(metrics.inputs_missed),
               bench::fmt(metrics.output_latency.max(), 1)});
    }
  };

  std::uint64_t greedy_gated_misses = 0;
  std::uint64_t enforced_misses = 0;
  struct Point {
    double tau0, deadline;
  };
  for (const Point& point : {Point{10.0, 1.85e5}, Point{50.0, 1.85e5}}) {
    const auto seed = dist::derive_seed(
        {base_seed, 0xBA5E11AE, static_cast<std::uint64_t>(point.tau0)});

    if (auto solved = enforced.solve(point.tau0, point.deadline); solved.ok()) {
      arrivals::FixedRateArrivals arrival_process(point.tau0);
      sim::EnforcedSimConfig config;
      config.input_count = inputs;
      config.deadline = point.deadline;
      config.seed = seed;
      const auto metrics = sim::simulate_enforced_waits(
          pipeline, solved.value().firing_intervals, arrival_process, config);
      enforced_misses += metrics.inputs_missed;
      emit(point.tau0, point.deadline, "enforced-waits", metrics);
    }
    if (auto solved = monolithic.solve(point.tau0, point.deadline); solved.ok()) {
      arrivals::FixedRateArrivals arrival_process(point.tau0);
      sim::MonolithicSimConfig config;
      config.block_size = solved.value().block_size;
      config.input_count = inputs;
      config.deadline = point.deadline;
      config.seed = seed;
      const auto metrics =
          sim::simulate_monolithic(pipeline, arrival_process, config);
      emit(point.tau0, point.deadline, "monolithic", metrics);
    }
    for (std::uint32_t min_batch : {1u, 128u}) {
      arrivals::FixedRateArrivals arrival_process(point.tau0);
      sim::GreedySimConfig config;
      config.input_count = inputs;
      config.deadline = point.deadline;
      config.min_batch = min_batch;
      config.seed = seed;
      const auto metrics =
          sim::simulate_greedy_throughput(pipeline, arrival_process, config);
      emit(point.tau0, point.deadline,
           min_batch == 1 ? "greedy (eager)" : "greedy (full vectors)", metrics);
      if (min_batch == 128) greedy_gated_misses += metrics.inputs_missed;
    }
  }
  table.print(std::cout);
  std::cout << "\n(greedy firings execute exclusively at t_i / N wall-clock — "
               "how a throughput runtime actually runs — so its active "
               "fraction is not directly comparable to the strategies'; its "
               "latency column is the point)\n";

  const bool gap_shown = greedy_gated_misses > 0 && enforced_misses == 0;
  std::cout << "\nthroughput baseline misses deadlines the enforced-waits "
               "schedule honors: "
            << (gap_shown ? "yes" : "NO") << std::endl;
  return gap_shown ? 0 : 1;
}
