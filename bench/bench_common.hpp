// Shared scaffolding for the experiment harnesses in bench/.
//
// Every binary reproduces one table or figure of the paper. Binaries accept
// --full to run at the paper's exact scale (100 trials x 50,000 inputs,
// fine-grained grids); defaults are scaled down so the whole suite completes
// in a few minutes on one core. Outputs are printed as aligned tables and,
// where a figure is being regenerated, also written as CSV.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <tuple>

#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace ripple::bench {

/// Standard options shared by the harnesses.
inline void add_common_options(util::CliParser& cli) {
  cli.add_flag("full", false,
               "run at the paper's full scale (slower, finer grids)");
  cli.add_string("csv", "", "also write results to this CSV file");
  cli.add_string("json", "", "also write results to this JSON file");
  cli.add_int("seed", 2021, "base RNG seed (2021 = the paper's year)");
  cli.add_string("trace-out", "",
                 "write a Chrome trace_event timeline to this JSON file "
                 "(needs a build with -DRIPPLE_OBS=ON)");
  cli.add_string("metrics-out", "",
                 "write the observability metrics registry to this JSON file "
                 "(needs a build with -DRIPPLE_OBS=ON)");
}

namespace detail {
/// Paths captured at parse time so the atexit exporter can reach them.
inline std::string& trace_out_path() {
  static std::string path;
  return path;
}
inline std::string& metrics_out_path() {
  static std::string path;
  return path;
}

inline void export_observability_at_exit() {
  for (const auto& [option, path, exporter] :
       {std::tuple{"trace-out", &trace_out_path(),
                   &obs::export_chrome_trace_file},
        std::tuple{"metrics-out", &metrics_out_path(),
                   &obs::export_metrics_file}}) {
    if (path->empty()) continue;
    if (auto written = exporter(*path); !written.ok()) {
      std::cerr << "cannot write " << option << ": "
                << written.error().message << std::endl;
    } else {
      std::cout << option << ": wrote " << *path << "\n";
    }
  }
}
}  // namespace detail

/// Turn observability recording on when --trace-out/--metrics-out was given,
/// and export the artifacts at process exit (harness mains have many return
/// paths; atexit covers them all, after worker pools have joined). Warns —
/// but still runs — when the build lacks the instrumentation.
inline void enable_observability_if_requested(const util::CliParser& cli) {
  const std::string& trace_path = cli.get_string("trace-out");
  const std::string& metrics_path = cli.get_string("metrics-out");
  if (trace_path.empty() && metrics_path.empty()) return;
  detail::trace_out_path() = trace_path;
  detail::metrics_out_path() = metrics_path;
  // Touch the observability singletons before registering the exporter so
  // they are constructed first and therefore destroyed after it runs.
  obs::TraceSession::global();
  obs::Registry::global();
  obs::set_enabled(true);
  std::atexit(&detail::export_observability_at_exit);
  if (!obs::instrumentation_compiled()) {
    std::cerr << "warning: --trace-out/--metrics-out requested but this "
                 "build has RIPPLE_OBS=OFF; outputs will be empty\n";
  }
}

/// Parse argv; print usage and exit(0) on --help; exit(2) on bad flags.
/// Also arms observability recording when its output flags are present.
inline void parse_or_exit(util::CliParser& cli, int argc, const char** argv,
                          const std::string& description) {
  auto parsed = cli.parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().message << "\n\n"
              << cli.usage(description) << std::endl;
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(description) << std::endl;
    std::exit(0);
  }
  enable_observability_if_requested(cli);
}

inline void print_banner(const std::string& title) {
  std::cout << "=== " << title << " ===\n"
            << "pipeline: NCBI BLAST (paper Table 1), v = 128\n\n";
}

/// Open a named output sink if requested (returns an unopened stream
/// otherwise).
inline std::ofstream open_sink(const util::CliParser& cli,
                               const std::string& option) {
  std::ofstream out;
  const std::string& path = cli.get_string(option);
  if (!path.empty()) {
    out.open(path);
    if (!out) {
      std::cerr << "cannot open " << option << " output: " << path << std::endl;
      std::exit(2);
    }
  }
  return out;
}

/// Open the --csv sink if requested (returns an unopened stream otherwise).
inline std::ofstream open_csv(const util::CliParser& cli) {
  return open_sink(cli, "csv");
}

/// Open the --json sink if requested.
inline std::ofstream open_json(const util::CliParser& cli) {
  return open_sink(cli, "json");
}

inline core::EnforcedWaitsConfig paper_enforced_config() {
  return core::EnforcedWaitsConfig{blast::paper_calibrated_b()};
}

inline std::string fmt(double value, int precision = 4) {
  return util::format_double(value, precision);
}

}  // namespace ripple::bench
