// Shared scaffolding for the experiment harnesses in bench/.
//
// Every binary reproduces one table or figure of the paper. Binaries accept
// --full to run at the paper's exact scale (100 trials x 50,000 inputs,
// fine-grained grids); defaults are scaled down so the whole suite completes
// in a few minutes on one core. Outputs are printed as aligned tables and,
// where a figure is being regenerated, also written as CSV.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace ripple::bench {

/// Standard options shared by the harnesses.
inline void add_common_options(util::CliParser& cli) {
  cli.add_flag("full", false,
               "run at the paper's full scale (slower, finer grids)");
  cli.add_string("csv", "", "also write results to this CSV file");
  cli.add_string("json", "", "also write results to this JSON file");
  cli.add_int("seed", 2021, "base RNG seed (2021 = the paper's year)");
}

/// Parse argv; print usage and exit(0) on --help; exit(2) on bad flags.
inline void parse_or_exit(util::CliParser& cli, int argc, const char** argv,
                          const std::string& description) {
  auto parsed = cli.parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().message << "\n\n"
              << cli.usage(description) << std::endl;
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(description) << std::endl;
    std::exit(0);
  }
}

inline void print_banner(const std::string& title) {
  std::cout << "=== " << title << " ===\n"
            << "pipeline: NCBI BLAST (paper Table 1), v = 128\n\n";
}

/// Open a named output sink if requested (returns an unopened stream
/// otherwise).
inline std::ofstream open_sink(const util::CliParser& cli,
                               const std::string& option) {
  std::ofstream out;
  const std::string& path = cli.get_string(option);
  if (!path.empty()) {
    out.open(path);
    if (!out) {
      std::cerr << "cannot open " << option << " output: " << path << std::endl;
      std::exit(2);
    }
  }
  return out;
}

/// Open the --csv sink if requested (returns an unopened stream otherwise).
inline std::ofstream open_csv(const util::CliParser& cli) {
  return open_sink(cli, "csv");
}

/// Open the --json sink if requested.
inline std::ofstream open_json(const util::CliParser& cli) {
  return open_sink(cli, "json");
}

inline core::EnforcedWaitsConfig paper_enforced_config() {
  return core::EnforcedWaitsConfig{blast::paper_calibrated_b()};
}

inline std::string fmt(double value, int precision = 4) {
  return util::format_double(value, precision);
}

}  // namespace ripple::bench
