// Reproduces paper Table 1: properties of the NCBI BLAST streaming pipeline.
//
// Two views are printed:
//   1. The canonical constants the paper measured on a GTX 2080 under
//      MERCATOR (used verbatim by every other experiment).
//   2. The same table *measured* from this repo's mini-BLAST substrate
//      running real seed-match / expansion / extension computation over
//      synthetic DNA (per-item abstract-op costs in place of GPU cycles).
//      Absolute numbers differ from the paper's GPU measurements; the
//      structure — a moderate filter, a u-capped expander, a strong filter,
//      and an expensive final stage — must match.
#include "bench_common.hpp"

#include "blast/measure.hpp"
#include "blast/sequence.hpp"
#include "blast/stages.hpp"
#include "dist/rng.hpp"
#include "util/csv.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("windows", 200000, "subject windows to stream when measuring");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_table1 — reproduce paper Table 1");

  bench::print_banner("Table 1: properties of the NCBI BLAST pipeline");

  // ---- canonical table ----------------------------------------------------
  const auto pipeline = blast::canonical_blast_pipeline();
  util::TextTable canonical({"Node", "t_i (cycles)", "g_i", "gain model"});
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    const bool sink = (i + 1 == pipeline.size());
    canonical.add_row({std::to_string(i),
                       bench::fmt(pipeline.service_time(i), 0),
                       sink ? "N/A" : bench::fmt(pipeline.mean_gain(i), 4),
                       sink ? "N/A" : pipeline.node(i).gain->name()});
  }
  std::cout << "Canonical (paper values, v = 128, u = 16):\n";
  canonical.print(std::cout);

  // ---- measured from the mini-BLAST substrate -----------------------------
  const std::uint64_t windows =
      cli.get_flag("full") ? 4 * static_cast<std::uint64_t>(cli.get_int("windows"))
                           : static_cast<std::uint64_t>(cli.get_int("windows"));
  dist::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  blast::SequencePairConfig pair_config;  // 1 MiB subject, 64 KiB query
  const auto pair = blast::make_sequence_pair(pair_config, rng);
  blast::BlastStages::Config stage_config;
  const blast::BlastStages stages(pair, stage_config);
  blast::MeasureConfig measure_config;
  measure_config.window_count = windows;
  util::Stopwatch watch;
  const auto measurement = blast::measure_pipeline(stages, measure_config);

  util::TextTable measured(
      {"Node", "stage", "inputs", "outputs", "g_i (measured)", "mean ops/input"});
  static const char* kNames[4] = {"seed_filter", "seed_expand",
                                  "ungapped_extend", "gapped_extend"};
  for (std::size_t i = 0; i < blast::kStageCount; ++i) {
    const auto& stage = measurement.stages[i];
    measured.add_row({std::to_string(i), kNames[i],
                      util::with_commas(stage.inputs),
                      util::with_commas(stage.outputs),
                      i + 1 == blast::kStageCount ? "N/A"
                                                  : bench::fmt(stage.mean_gain(), 4),
                      bench::fmt(stage.mean_ops(), 1)});
  }
  std::cout << "\nMeasured from the mini-BLAST substrate ("
            << util::with_commas(windows) << " windows of a "
            << pair_config.subject_length << "-base subject vs a "
            << pair_config.query_length << "-base query, "
            << bench::fmt(watch.elapsed_seconds(), 2) << " s):\n";
  measured.print(std::cout);
  std::cout << "\nalignments reported: "
            << util::with_commas(measurement.alignments_reported) << "\n";

  if (auto csv_out = bench::open_csv(cli); csv_out.is_open()) {
    util::CsvWriter csv(csv_out);
    csv.header({"node", "stage", "t_canonical", "g_canonical", "g_measured",
                "ops_measured"});
    for (std::size_t i = 0; i < blast::kStageCount; ++i) {
      const bool sink = (i + 1 == blast::kStageCount);
      csv.row({std::to_string(i), kNames[i],
               bench::fmt(pipeline.service_time(i), 0),
               sink ? "" : bench::fmt(pipeline.mean_gain(i), 6),
               sink ? "" : bench::fmt(measurement.stages[i].mean_gain(), 6),
               bench::fmt(measurement.stages[i].mean_ops(), 3)});
    }
  }

  // Structural checks (exit nonzero if the substrate loses Table 1's shape).
  const auto& s = measurement.stages;
  const bool structure_ok =
      s[0].mean_gain() > 0.0 && s[0].mean_gain() < 1.0 &&  // filter
      s[1].mean_gain() >= 1.0 &&                            // expander
      s[2].mean_gain() < s[0].mean_gain() &&                // strong filter
      s[3].mean_ops() > s[0].mean_ops();                    // costly sink
  std::cout << "structure matches Table 1: " << (structure_ok ? "yes" : "NO")
            << std::endl;
  return structure_ok ? 0 : 1;
}
