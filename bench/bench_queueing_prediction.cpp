// Extension (paper Sections 3 and 7): predict the worst-case queue
// multipliers b_i from bulk-service queueing theory instead of calibrating
// them empirically, and check the predictions against simulation.
//
// For a schedule solved with ~10% operating headroom (stochastic queueing
// models diverge at the exactly-critical loads an optimal schedule sits on),
// we compute each node's stationary queue distribution under two arrival
// approximations — independent Poisson streams (Jackson-style, the paper's
// suggested route) and upstream-firing-sized batches — then compare:
//
//   * predicted b_i  vs  the empirically calibrated b = {1, 3, 9, 6},
//   * predicted (1 - eps) queue quantiles  vs  max queue depths observed in
//     simulation,
//   * the implied deadline budget  vs  what simulation actually needs.
//
// Expected finding (and the paper's own caution about network-of-bulk-queue
// theory): Poisson under-predicts because it ignores batch correlation;
// the batch model over-predicts because it ignores that consumption caps at
// v items per firing; the truth — and the paper's calibrated values — sit
// in between.
#include "bench_common.hpp"

#include <algorithm>

#include "arrivals/arrival_process.hpp"
#include "dist/rng.hpp"
#include "queueing/predict.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/trial_runner.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("trials", 20, "simulation trials per operating point");
  cli.add_int("inputs", 20000, "inputs per trial");
  cli.add_double("epsilon", 1e-4, "queue-quantile tail level");
  cli.add_double("headroom", 0.9, "solve at (h*tau0, h*D) to stay sub-critical");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_queueing_prediction — analytic b from bulk-queue theory");

  bench::print_banner("Extension: queueing-theoretic prediction of the b_i");
  const double epsilon = cli.get_double("epsilon");
  const double headroom = cli.get_double("headroom");
  const std::uint64_t trials =
      cli.get_flag("full") ? 100 : static_cast<std::uint64_t>(cli.get_int("trials"));
  const ItemCount inputs = cli.get_flag("full")
                               ? 50000
                               : static_cast<ItemCount>(cli.get_int("inputs"));
  const std::uint64_t base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(pipeline,
                                             bench::paper_enforced_config());
  util::ThreadPool pool;

  util::TextTable table({"tau0", "D", "model", "b0", "b1", "b2", "b3",
                         "pred budget", "sim max-queue/v", "sim misses"});
  std::ofstream csv_out = bench::open_csv(cli);
  util::CsvWriter csv(csv_out);
  if (csv_out.is_open()) {
    csv.header({"tau0", "deadline", "model", "b0", "b1", "b2", "b3",
                "predicted_budget", "observed_depths", "miss_free_fraction"});
  }

  struct Point {
    double tau0, deadline;
  };
  const Point points[] = {{20.0, 5e4}, {50.0, 1e5}, {100.0, 1e5}};

  bool poisson_under_batch = true;
  bool batch_covers_observed = true;
  util::Stopwatch watch;
  for (const Point& point : points) {
    auto solved = strategy.solve(headroom * point.tau0, headroom * point.deadline);
    if (!solved.ok()) continue;
    const auto intervals = solved.value().firing_intervals;

    // Simulated ground truth at the *actual* tau0 with the headroom schedule.
    auto trial_fn = [&](std::uint64_t trial) {
      arrivals::FixedRateArrivals arrival_process(point.tau0);
      sim::EnforcedSimConfig config;
      config.input_count = inputs;
      config.deadline = point.deadline;
      config.seed = dist::derive_seed(
          {base_seed, 0x9BED1C7, static_cast<std::uint64_t>(point.tau0),
           static_cast<std::uint64_t>(point.deadline), trial});
      return sim::simulate_enforced_waits(pipeline, intervals, arrival_process,
                                          config);
    };
    const auto summary = sim::run_trials(trial_fn, trials, &pool);
    std::string observed = "{";
    for (std::size_t i = 0; i < summary.max_queue_lengths.size(); ++i) {
      observed += (i ? "," : "");
      observed += util::format_double(
          static_cast<double>(summary.max_queue_lengths[i]) /
              pipeline.simd_width(),
          2);
    }
    observed += "}";

    std::vector<double> sums(2, 0.0);
    const queueing::ArrivalModel models[] = {queueing::ArrivalModel::kPoisson,
                                             queueing::ArrivalModel::kBatch};
    for (int m = 0; m < 2; ++m) {
      auto prediction =
          queueing::predict_b(pipeline, intervals, point.tau0, epsilon, models[m]);
      if (!prediction.ok()) {
        table.add_row({bench::fmt(point.tau0, 0), bench::fmt(point.deadline, 0),
                       to_string(models[m]), "-", "-", "-", "-",
                       prediction.error().code, observed,
                       std::to_string(summary.miss_free_trials) + "/" +
                           std::to_string(summary.trials)});
        continue;
      }
      const auto& b = prediction.value().b;
      for (double bi : b) sums[m] += bi;
      table.add_row({bench::fmt(point.tau0, 0), bench::fmt(point.deadline, 0),
                     to_string(models[m]), bench::fmt(b[0], 0),
                     bench::fmt(b[1], 0), bench::fmt(b[2], 0),
                     bench::fmt(b[3], 0),
                     bench::fmt(prediction.value().predicted_worst_latency, 0),
                     observed,
                     std::to_string(summary.miss_free_trials) + "/" +
                         std::to_string(summary.trials)});
      if (csv_out.is_open()) {
        csv.row({bench::fmt(point.tau0, 1), bench::fmt(point.deadline, 0),
                 to_string(models[m]), bench::fmt(b[0], 1), bench::fmt(b[1], 1),
                 bench::fmt(b[2], 1), bench::fmt(b[3], 1),
                 bench::fmt(prediction.value().predicted_worst_latency, 1),
                 observed, bench::fmt(summary.miss_free_fraction(), 4)});
      }
      // Does the batch model dominate the observed maxima? The maximum over
      // trials*inputs observations probes a tail of order 1/(trials*inputs),
      // so the coverage check uses a matched quantile level rather than the
      // display epsilon.
      if (models[m] == queueing::ArrivalModel::kBatch) {
        const double cover_epsilon = std::max(
            1e-8, 0.5 / (static_cast<double>(trials) *
                         static_cast<double>(inputs)));
        auto cover = queueing::predict_b(pipeline, intervals, point.tau0,
                                         cover_epsilon, models[m]);
        if (cover.ok()) {
          for (std::size_t i = 0; i < cover.value().b.size(); ++i) {
            const double observed_depth =
                static_cast<double>(summary.max_queue_lengths[i]) /
                pipeline.simd_width();
            if (cover.value().b[i] + 1e-9 < observed_depth) {
              batch_covers_observed = false;
            }
          }
        }
      }
    }
    if (sums[0] > sums[1]) poisson_under_batch = false;
  }
  table.print(std::cout);
  std::cout << "\n(epsilon = " << bench::fmt(epsilon, 6) << ", headroom = "
            << bench::fmt(headroom, 2) << "; schedules solved at ("
            << "headroom*tau0, headroom*D) so no queue is critically loaded)\n"
            << "elapsed: " << bench::fmt(watch.elapsed_seconds(), 1) << " s\n";

  std::cout << "\nPoisson model never exceeds the batch model: "
            << (poisson_under_batch ? "yes" : "NO")
            << "\nbatch model covers the simulated queue maxima: "
            << (batch_covers_observed ? "yes" : "NO") << std::endl;
  return (poisson_under_batch && batch_covers_observed) ? 0 : 1;
}
