// Ablation (extension): first-firing phase offsets.
//
// The paper's model leaves each node's firing *phase* unspecified; the
// analysis only uses the interval x_i. This harness quantifies the phase's
// effect on latency: aligning node i's first firing to just after node
// i-1's firing end lets an item traverse the pipeline in one cadence pass
// when intervals line up, instead of waiting up to a full interval per
// stage. With incommensurate intervals (the usual optimizer output) phases
// drift and the effect averages out — which the harness also shows, and is
// why the paper safely ignores phase.
#include "bench_common.hpp"

#include "arrivals/arrival_process.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "util/csv.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("inputs", 20000, "inputs per run");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_ablation_phase — first-firing phase alignment");

  bench::print_banner("Ablation: phase alignment of node firings");
  const ItemCount inputs = cli.get_flag("full")
                               ? 50000
                               : static_cast<ItemCount>(cli.get_int("inputs"));
  const std::uint64_t base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  util::TextTable table({"pipeline", "phases", "mean latency", "max latency",
                         "misses", "active frac"});
  std::ofstream csv_out = bench::open_csv(cli);
  util::CsvWriter csv(csv_out);
  if (csv_out.is_open()) {
    csv.header({"pipeline", "phases", "mean_latency", "max_latency",
                "inputs_missed", "active_fraction"});
  }

  auto run_pair = [&](const std::string& label, const sdf::PipelineSpec& pipeline,
                      const std::vector<Cycles>& intervals, double tau0,
                      double deadline, double& aligned_mean,
                      double& unaligned_mean) {
    for (const bool aligned : {false, true}) {
      arrivals::FixedRateArrivals arrival_process(tau0);
      sim::EnforcedSimConfig config;
      config.input_count = inputs;
      config.deadline = deadline;
      config.seed = dist::derive_seed({base_seed, 0x0FA5E, aligned});
      if (aligned) config.initial_offsets = sim::aligned_phase_offsets(pipeline);
      const auto metrics = sim::simulate_enforced_waits(
          pipeline, intervals, arrival_process, config);
      (aligned ? aligned_mean : unaligned_mean) = metrics.output_latency.mean();
      table.add_row({label, aligned ? "aligned" : "in-phase (t=0)",
                     bench::fmt(metrics.output_latency.mean(), 0),
                     bench::fmt(metrics.output_latency.max(), 0),
                     std::to_string(metrics.inputs_missed),
                     bench::fmt(metrics.active_fraction(), 4)});
      if (csv_out.is_open()) {
        csv.row({label, aligned ? "aligned" : "zero",
                 bench::fmt(metrics.output_latency.mean(), 2),
                 bench::fmt(metrics.output_latency.max(), 2),
                 std::to_string(metrics.inputs_missed),
                 bench::fmt(metrics.active_fraction(), 5)});
      }
    }
  };

  // Case 1: synchronous cadence (all x_i equal) — phases persist forever and
  // alignment shows its full effect.
  auto sync_spec = sdf::PipelineBuilder("synchronous")
                       .simd_width(16)
                       .add_node("a", 50.0, dist::make_deterministic(1))
                       .add_node("b", 60.0, dist::make_deterministic(1))
                       .add_node("c", 70.0, dist::make_deterministic(1))
                       .add_node("d", 80.0, dist::make_deterministic(1))
                       .build();
  const auto sync_pipeline = std::move(sync_spec).take();
  double sync_aligned = 0.0;
  double sync_unaligned = 0.0;
  run_pair("synchronous (x_i = 500)", sync_pipeline,
           {500.0, 500.0, 500.0, 500.0}, 40.0, 1e5, sync_aligned,
           sync_unaligned);

  // Case 2: the BLAST schedule — incommensurate intervals, phases drift.
  const auto blast = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(blast,
                                             bench::paper_enforced_config());
  auto solved = strategy.solve(20.0, 1.85e5);
  double blast_aligned = 0.0;
  double blast_unaligned = 0.0;
  if (solved.ok()) {
    run_pair("BLAST (optimized x)", blast, solved.value().firing_intervals,
             20.0, 1.85e5, blast_aligned, blast_unaligned);
  }
  table.print(std::cout);

  const bool sync_improves = sync_aligned < 0.7 * sync_unaligned;
  const double blast_shift =
      std::abs(blast_aligned - blast_unaligned) / blast_unaligned;
  std::cout << "\naligned phases cut latency on a synchronous cadence: "
            << (sync_improves ? "yes" : "NO")
            << "\nphase effect on the optimized BLAST schedule: "
            << bench::fmt(100.0 * blast_shift, 1)
            << "% (drifting phases average out; the paper can ignore phase)"
            << std::endl;
  return (sync_improves && blast_shift < 0.2) ? 0 : 1;
}
