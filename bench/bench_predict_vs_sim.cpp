// Reproduces the paper's Section 6.2 validation claim: "the active fractions
// measured in the simulator closely matched those predicted by the optimizer
// for each approach and set of parameters tested."
//
// For a sample of (tau0, D) cells, both strategies are optimized and then
// simulated; the relative error between predicted and measured active
// fraction is reported. For the monolithic strategy, streams are sized to
// cover many blocks (finite-horizon warm-up otherwise biases the measured
// fraction low).
#include "bench_common.hpp"

#include "arrivals/arrival_process.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/monolithic_sim.hpp"
#include "util/csv.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("inputs", 50000, "inputs per enforced-waits run");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_predict_vs_sim — optimizer vs simulator agreement");

  bench::print_banner("Section 6.2 validation: predicted vs measured active fraction");
  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy enforced(pipeline,
                                             bench::paper_enforced_config());
  const core::MonolithicStrategy monolithic(pipeline, {});
  const std::uint64_t base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const ItemCount enforced_inputs =
      static_cast<ItemCount>(cli.get_int("inputs")) * (cli.get_flag("full") ? 2 : 1);

  struct Sample {
    double tau0;
    double deadline;
  };
  const std::vector<Sample> samples = {
      {3.0, 1e5},   {5.0, 6e4},    {10.0, 5e4},   {10.0, 1.85e5},
      {20.0, 1e5},  {50.0, 5e4},   {50.0, 3.5e5}, {100.0, 2.4e4},
      {100.0, 1.85e5}, {100.0, 3.5e5}};

  util::TextTable table({"strategy", "tau0", "D", "predicted", "measured",
                         "rel err", "misses"});
  std::ofstream csv_out = bench::open_csv(cli);
  util::CsvWriter csv(csv_out);
  if (csv_out.is_open()) {
    csv.header({"strategy", "tau0", "deadline", "predicted", "measured",
                "relative_error", "inputs_missed"});
  }

  double worst_enforced = 0.0;
  double worst_monolithic = 0.0;
  util::Stopwatch watch;

  for (const auto& sample : samples) {
    if (auto solved = enforced.solve(sample.tau0, sample.deadline); solved.ok()) {
      arrivals::FixedRateArrivals arrival_process(sample.tau0);
      sim::EnforcedSimConfig config;
      config.input_count = enforced_inputs;
      config.deadline = sample.deadline;
      config.seed = dist::derive_seed(
          {base_seed, 1, static_cast<std::uint64_t>(sample.tau0 * 100),
           static_cast<std::uint64_t>(sample.deadline)});
      const auto metrics = sim::simulate_enforced_waits(
          pipeline, solved.value().firing_intervals, arrival_process, config);
      const double predicted = solved.value().predicted_active_fraction;
      const double measured = metrics.active_fraction();
      const double rel = std::abs(measured - predicted) / predicted;
      worst_enforced = std::max(worst_enforced, rel);
      table.add_row({"enforced", bench::fmt(sample.tau0, 1),
                     bench::fmt(sample.deadline, 0), bench::fmt(predicted, 4),
                     bench::fmt(measured, 4), bench::fmt(rel, 4),
                     std::to_string(metrics.inputs_missed)});
      if (csv_out.is_open()) {
        csv.row({"enforced", bench::fmt(sample.tau0, 3),
                 bench::fmt(sample.deadline, 0), bench::fmt(predicted, 6),
                 bench::fmt(measured, 6), bench::fmt(rel, 6),
                 std::to_string(metrics.inputs_missed)});
      }
    }
    if (auto solved = monolithic.solve(sample.tau0, sample.deadline); solved.ok()) {
      arrivals::FixedRateArrivals arrival_process(sample.tau0);
      sim::MonolithicSimConfig config;
      config.block_size = solved.value().block_size;
      // Cover >= 100 blocks so warm-up and drain are negligible.
      config.input_count = std::max<ItemCount>(
          enforced_inputs,
          static_cast<ItemCount>(solved.value().block_size) * 100);
      config.deadline = sample.deadline;
      config.seed = dist::derive_seed(
          {base_seed, 2, static_cast<std::uint64_t>(sample.tau0 * 100),
           static_cast<std::uint64_t>(sample.deadline)});
      const auto metrics =
          sim::simulate_monolithic(pipeline, arrival_process, config);
      const double predicted = solved.value().predicted_active_fraction;
      const double measured = metrics.active_fraction();
      const double rel = std::abs(measured - predicted) / predicted;
      worst_monolithic = std::max(worst_monolithic, rel);
      table.add_row({"monolithic", bench::fmt(sample.tau0, 1),
                     bench::fmt(sample.deadline, 0), bench::fmt(predicted, 4),
                     bench::fmt(measured, 4), bench::fmt(rel, 4),
                     std::to_string(metrics.inputs_missed)});
      if (csv_out.is_open()) {
        csv.row({"monolithic", bench::fmt(sample.tau0, 3),
                 bench::fmt(sample.deadline, 0), bench::fmt(predicted, 6),
                 bench::fmt(measured, 6), bench::fmt(rel, 6),
                 std::to_string(metrics.inputs_missed)});
      }
    }
  }

  table.print(std::cout);
  std::cout << "\nworst relative error — enforced: "
            << bench::fmt(worst_enforced, 4)
            << ", monolithic: " << bench::fmt(worst_monolithic, 4)
            << "  (elapsed " << bench::fmt(watch.elapsed_seconds(), 1) << " s)\n";
  const bool ok = worst_enforced < 0.05 && worst_monolithic < 0.10;
  std::cout << "optimizer and simulator closely match: " << (ok ? "yes" : "NO")
            << std::endl;
  return ok ? 0 : 1;
}
