// Warm-started sweep benchmark: times a cold (tau0, D) sweep against the
// warm-started snake traversal and verifies, cell by cell and bit by bit,
// that warm starting changed nothing but the time to compute the surface.
//
// Exit status is nonzero if any cell differs — this binary doubles as the
// golden-surface check wired into CI (scripts/run_bench_sweep.sh).
#include "bench_common.hpp"

#include <cstring>
#include <memory>

#include "core/sweep.hpp"
#include "util/thread_pool.hpp"

namespace {

/// Bitwise cell comparison; doubles are compared via memcmp so that even a
/// sign-of-zero or NaN-payload difference counts as a mismatch.
bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::size_t count_mismatches(const ripple::core::SweepSurface& cold,
                             const ripple::core::SweepSurface& warm) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < cold.cells().size(); ++i) {
    const auto& c = cold.cells()[i];
    const auto& w = warm.cells()[i];
    const bool same = bits_equal(c.tau0, w.tau0) &&
                      bits_equal(c.deadline, w.deadline) &&
                      c.enforced_feasible == w.enforced_feasible &&
                      bits_equal(c.enforced_active_fraction,
                                 w.enforced_active_fraction) &&
                      c.monolithic_feasible == w.monolithic_feasible &&
                      bits_equal(c.monolithic_active_fraction,
                                 w.monolithic_active_fraction) &&
                      c.monolithic_block == w.monolithic_block;
    if (!same) {
      ++mismatches;
      if (mismatches <= 8) {
        std::cerr.precision(17);
        std::cerr << "mismatch at cell " << i << " (tau0=" << c.tau0
                  << ", D=" << c.deadline << "):\n"
                  << "  enforced  cold " << c.enforced_feasible << "/"
                  << c.enforced_active_fraction << "  warm "
                  << w.enforced_feasible << "/" << w.enforced_active_fraction
                  << "\n"
                  << "  monolithic cold " << c.monolithic_feasible << "/"
                  << c.monolithic_active_fraction << "/M=" << c.monolithic_block
                  << "  warm " << w.monolithic_feasible << "/"
                  << w.monolithic_active_fraction << "/M=" << w.monolithic_block
                  << "\n";
      }
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("tau0-points", 64, "grid points on the tau0 axis");
  cli.add_int("d-points", 64, "grid points on the deadline axis");
  cli.add_int("threads", 0, "worker threads (0 = serial, the fair timing)");
  cli.add_int("tile-rows", 4, "tau0 rows per warm-start tile");
  bench::parse_or_exit(
      cli, argc, argv,
      "bench_sweep — warm-started sweep speedup + golden-surface check");

  const auto tau0_points = static_cast<std::size_t>(cli.get_int("tau0-points"));
  const auto d_points = static_cast<std::size_t>(cli.get_int("d-points"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const auto grid = core::SweepGrid::paper_ranges(tau0_points, d_points);
  const auto pipeline = blast::canonical_blast_pipeline();
  const auto enforced_config = bench::paper_enforced_config();

  bench::print_banner("Warm-started (tau0, D) sweep");
  std::cout << "grid: " << tau0_points << " x " << d_points << " = "
            << grid.cell_count() << " cells, "
            << (threads == 0 ? std::string("serial")
                             : std::to_string(threads) + " threads")
            << "\n\n";

  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);

  core::SweepOptions cold_options;
  cold_options.warm_start = false;
  cold_options.pool = pool.get();

  core::SweepOptions warm_options;
  warm_options.warm_start = true;
  warm_options.tile_rows = static_cast<std::size_t>(cli.get_int("tile-rows"));
  warm_options.pool = pool.get();

  util::Stopwatch watch;
  const auto cold =
      core::run_sweep(pipeline, enforced_config, {}, grid, cold_options);
  const double cold_seconds = watch.elapsed_seconds();

  watch.reset();
  const auto warm =
      core::run_sweep(pipeline, enforced_config, {}, grid, warm_options);
  const double warm_seconds = watch.elapsed_seconds();

  const std::size_t mismatches = count_mismatches(cold, warm);
  const double speedup = warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;

  util::TextTable table({"sweep", "seconds", "cells/s"});
  table.add_row({"cold", bench::fmt(cold_seconds, 3),
                 bench::fmt(grid.cell_count() / cold_seconds, 0)});
  table.add_row({"warm", bench::fmt(warm_seconds, 3),
                 bench::fmt(grid.cell_count() / warm_seconds, 0)});
  table.print(std::cout);
  std::cout << "\nspeedup (cold / warm):  " << bench::fmt(speedup, 2) << "x\n"
            << "bitwise mismatches:     " << mismatches << " of "
            << grid.cell_count() << " cells\n";

  if (auto json_out = bench::open_json(cli); json_out.is_open()) {
    json_out << "{\n"
             << "  \"benchmark\": \"sweep_warm_start\",\n"
             << "  \"tau0_points\": " << tau0_points << ",\n"
             << "  \"d_points\": " << d_points << ",\n"
             << "  \"cells\": " << grid.cell_count() << ",\n"
             << "  \"threads\": " << threads << ",\n"
             << "  \"tile_rows\": " << warm_options.tile_rows << ",\n"
             << "  \"cold_seconds\": " << bench::fmt(cold_seconds, 6) << ",\n"
             << "  \"warm_seconds\": " << bench::fmt(warm_seconds, 6) << ",\n"
             << "  \"speedup\": " << bench::fmt(speedup, 3) << ",\n"
             << "  \"bitwise_identical\": "
             << (mismatches == 0 ? "true" : "false") << "\n"
             << "}\n";
  }

  if (mismatches != 0) {
    std::cerr << "FAIL: warm surface differs from cold surface" << std::endl;
    return 1;
  }
  std::cout << "warm surface is bit-identical to cold surface" << std::endl;
  return 0;
}
