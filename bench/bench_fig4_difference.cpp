// Reproduces paper Figure 4: the difference between the monolithic and
// enforced-waits active fractions (monolithic minus enforced-waits) across
// the (tau0, D) space. Positive values mean enforced waits win.
//
// Expected shape (paper Section 6.3): enforced waits dominate over a large
// portion of the space, by at least 0.4 absolute in the fast-arrival /
// slack-deadline corner; the monolithic strategy dominates for slow arrivals
// with little deadline slack.
#include "bench_common.hpp"

#include "core/report.hpp"
#include "core/sweep.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("tau0-points", 12, "grid points on the tau0 axis");
  cli.add_int("d-points", 8, "grid points on the deadline axis");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_fig4_difference — Figure 4 (dominance regions)");

  const std::size_t tau0_points = cli.get_flag("full")
                                      ? 34
                                      : static_cast<std::size_t>(cli.get_int("tau0-points"));
  const std::size_t d_points = cli.get_flag("full")
                                   ? 12
                                   : static_cast<std::size_t>(cli.get_int("d-points"));

  bench::print_banner(
      "Figure 4: monolithic minus enforced-waits active fraction");
  util::ThreadPool pool;
  util::Stopwatch watch;
  const auto surface = core::run_sweep(
      blast::canonical_blast_pipeline(), bench::paper_enforced_config(), {},
      core::SweepGrid::paper_ranges(tau0_points, d_points), &pool);

  std::vector<std::string> headers{"tau0 \\ D"};
  for (Cycles d : surface.grid().deadline_values) {
    headers.push_back(bench::fmt(d, 0));
  }
  util::TextTable table(headers);
  for (std::size_t ti = 0; ti < surface.grid().tau0_values.size(); ++ti) {
    std::vector<std::string> row{bench::fmt(surface.grid().tau0_values[ti], 1)};
    for (std::size_t di = 0; di < surface.grid().deadline_values.size(); ++di) {
      const auto& cell = surface.cell(ti, di);
      if (!cell.enforced_feasible && !cell.monolithic_feasible) {
        row.push_back("..");  // nothing works here
      } else {
        row.push_back(bench::fmt(cell.difference(), 3));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(positive = enforced waits better; infeasible strategies "
               "are charged active fraction 1; '..' = both infeasible)\n";

  const auto summary = core::summarize_dominance(surface);
  std::cout << "\ncells: " << summary.cells_total
            << "  both feasible: " << summary.both_feasible
            << "  enforced-only: " << summary.enforced_only
            << "  monolithic-only: " << summary.monolithic_only
            << "  neither: " << summary.neither << "\n";
  std::cout << "enforced-waits wins:  " << summary.enforced_wins
            << " cells, max advantage " << bench::fmt(summary.max_enforced_advantage, 3)
            << " at (tau0=" << bench::fmt(summary.argmax_enforced_tau0, 1)
            << ", D=" << bench::fmt(summary.argmax_enforced_deadline, 0) << ")\n";
  std::cout << "monolithic wins:      " << summary.monolithic_wins
            << " cells, max advantage "
            << bench::fmt(summary.max_monolithic_advantage, 3) << " at (tau0="
            << bench::fmt(summary.argmax_monolithic_tau0, 1) << ", D="
            << bench::fmt(summary.argmax_monolithic_deadline, 0) << ")\n";
  std::cout << "elapsed: " << bench::fmt(watch.elapsed_seconds(), 2) << " s\n";

  // Paper-shape checks.
  const bool enforced_wins_big = summary.max_enforced_advantage >= 0.4;
  const bool enforced_corner = summary.argmax_enforced_tau0 < 40.0 &&
                               summary.argmax_enforced_deadline > 1e5;
  const bool mono_corner = summary.argmax_monolithic_deadline < 1.5e5;
  std::cout << "\nenforced advantage >= 0.4 somewhere:      "
            << (enforced_wins_big ? "yes" : "NO") << "\n"
            << "enforced peak at fast arrivals + slack:   "
            << (enforced_corner ? "yes" : "NO") << "\n"
            << "monolithic peak at tight deadlines:       "
            << (mono_corner ? "yes" : "NO") << std::endl;

  if (auto csv_out = bench::open_csv(cli); csv_out.is_open()) {
    surface.write_csv(csv_out);
  }
  if (auto json_out = bench::open_json(cli); json_out.is_open()) {
    core::write_surface_json(json_out, surface);
  }
  return (enforced_wins_big && enforced_corner && mono_corner) ? 0 : 1;
}
