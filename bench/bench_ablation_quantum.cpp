// Ablation (paper Section 7 future work): the paper's model assumes each
// node is dispatched with negligible delay on a fine-grained preemptive
// processor. Real devices dispense processor time in quanta (or, on GPUs,
// kernel launches). This harness runs the enforced-waits schedule on a
// stride-scheduled virtual processor and sweeps the quantum length:
//
//   * tiny quanta reproduce the fluid model (same misses, latency margins);
//   * service spans are *shorter* than the paper's assumed t_i whenever
//     fewer than N nodes compete (the 1/N assumption is conservative);
//   * coarse quanta add dispatch latency that eats the deadline margin —
//     quantifying how much scheduling granularity the model can tolerate.
#include "bench_common.hpp"

#include "arrivals/arrival_process.hpp"
#include "dist/rng.hpp"
#include "sched/quantum_sim.hpp"
#include "util/csv.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("inputs", 20000, "inputs per run");
  cli.add_double("tau0", 20.0, "inter-arrival time");
  cli.add_double("deadline", 26000.0,
                 "deadline D (default just above the 23,363 budget floor)");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_ablation_quantum — scheduling-granularity sweep");

  bench::print_banner("Ablation: processor scheduling granularity");
  const double tau0 = cli.get_double("tau0");
  const double deadline = cli.get_double("deadline");
  const ItemCount inputs = cli.get_flag("full")
                               ? 50000
                               : static_cast<ItemCount>(cli.get_int("inputs"));
  const std::uint64_t base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(pipeline,
                                             bench::paper_enforced_config());
  auto solved = strategy.solve(tau0, deadline);
  if (!solved.ok()) {
    std::cerr << "infeasible: " << solved.error().message << std::endl;
    return 2;
  }
  const auto& intervals = solved.value().firing_intervals;
  std::cout << "operating point: tau0 = " << bench::fmt(tau0, 1) << ", D = "
            << bench::fmt(deadline, 0) << " (deadline margin is tight on "
            << "purpose)\npredicted active fraction: "
            << bench::fmt(solved.value().predicted_active_fraction, 4)
            << "\n\n";

  util::TextTable table({"quantum", "misses", "max latency", "mean dispatch",
                         "span/t (n0)", "span/t (n3)", "busy frac"});
  std::ofstream csv_out = bench::open_csv(cli);
  util::CsvWriter csv(csv_out);
  if (csv_out.is_open()) {
    csv.header({"quantum", "inputs_missed", "max_latency",
                "mean_dispatch_delay", "span_ratio_node0", "span_ratio_node3",
                "busy_fraction"});
  }

  std::uint64_t fine_misses = 0;
  std::uint64_t coarse_misses = 0;
  bool first = true;
  for (double quantum : {1.0, 10.0, 50.0, 200.0, 1000.0, 4000.0}) {
    arrivals::FixedRateArrivals arrival_process(tau0);
    sched::QuantumSimConfig config;
    config.quantum = quantum;
    config.input_count = inputs;
    config.deadline = deadline;
    config.seed = dist::derive_seed({base_seed, 0x0A17,
                                     static_cast<std::uint64_t>(quantum)});
    const auto metrics = sched::simulate_quantum_scheduled(
        pipeline, intervals, arrival_process, config);
    const double span0 =
        metrics.service_span[0].mean() / pipeline.service_time(0);
    const double span3 =
        metrics.service_span[3].mean() / pipeline.service_time(3);
    table.add_row({bench::fmt(quantum, 0),
                   std::to_string(metrics.base.inputs_missed),
                   bench::fmt(metrics.base.output_latency.max(), 0),
                   bench::fmt(metrics.dispatch_delay.mean(), 1),
                   bench::fmt(span0, 3), bench::fmt(span3, 3),
                   bench::fmt(metrics.processor_busy_fraction(), 4)});
    if (csv_out.is_open()) {
      csv.row({bench::fmt(quantum, 1),
               std::to_string(metrics.base.inputs_missed),
               bench::fmt(metrics.base.output_latency.max(), 1),
               bench::fmt(metrics.dispatch_delay.mean(), 3),
               bench::fmt(span0, 5), bench::fmt(span3, 5),
               bench::fmt(metrics.processor_busy_fraction(), 5)});
    }
    if (first) {
      fine_misses = metrics.base.inputs_missed;
      first = false;
    }
    coarse_misses = metrics.base.inputs_missed;
  }
  table.print(std::cout);
  std::cout << "\n('span/t' = mean realized firing span over the paper's "
               "assumed t_i; < 1 means the 1/N-share assumption was "
               "conservative)\n";

  const bool fine_ok = fine_misses == 0;
  const bool coarse_hurts = coarse_misses > fine_misses;
  std::cout << "\nfine quanta reproduce the fluid model (no misses): "
            << (fine_ok ? "yes" : "NO")
            << "\ncoarse quanta break the deadline:                  "
            << (coarse_hurts ? "yes" : "NO") << std::endl;
  return (fine_ok && coarse_hurts) ? 0 : 1;
}
