// Reproduces the paper's Section 6.3 robustness claim: "enforced-waits is
// more sensitive to stochastic changes in gain at each stage than the
// monolithic approach, which tends to average together the behavior of many
// vectors of inputs. It therefore proved empirically more difficult to
// eliminate all misses with enforced-waits."
//
// Procedure (mirroring the paper's own calibration methodology): both
// strategies are calibrated at one nominal operating point to be *just*
// miss-free — enforced waits by the raise-and-retest loop from its
// optimistic start, monolithic likewise over (b, S). The resulting minimally
// protected schedules are then frozen and simulated against perturbed
// pipelines:
//   * mean shift — the expanding stage's mean gain scaled up;
//   * variance shift — the expanding stage's Poisson swapped for a
//     truncated-geometric with the same mean but a heavier tail.
// The enforced-waits schedule, whose per-node vectors are small, should
// crack earlier/harder than the block-averaged monolithic one.
#include "bench_common.hpp"

#include "arrivals/arrival_process.hpp"
#include "calib/calibrate.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/monolithic_sim.hpp"
#include "sim/trial_runner.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ripple;

/// Table 1 pipeline with stage 1's gain replaced.
sdf::PipelineSpec perturbed_pipeline(dist::GainPtr stage1_gain) {
  auto spec = sdf::PipelineBuilder("blast(perturbed)")
                  .simd_width(blast::Table1::kSimdWidth)
                  .add_node("seed_filter", blast::Table1::kServiceTimes[0],
                            dist::make_bernoulli(blast::Table1::kGains[0]))
                  .add_node("seed_expand", blast::Table1::kServiceTimes[1],
                            std::move(stage1_gain))
                  .add_node("ungapped_extend", blast::Table1::kServiceTimes[2],
                            dist::make_bernoulli(blast::Table1::kGains[2]))
                  .add_node("gapped_extend", blast::Table1::kServiceTimes[3],
                            dist::make_deterministic(1))
                  .build();
  return std::move(spec).take();
}

}  // namespace

int main(int argc, const char** argv) {
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("trials", 20, "trials per scenario");
  cli.add_int("inputs", 20000, "inputs per trial");
  cli.add_double("tau0", 10.0, "inter-arrival time");
  cli.add_double("deadline", 60000.0,
                 "deadline D (tight enough to stress, roomy enough that the "
                 "calibration loop can raise parameters)");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_gain_sensitivity — Section 6.3 robustness claim");

  bench::print_banner("Section 6.3: sensitivity to stochastic gain changes");
  const double tau0 = cli.get_double("tau0");
  const double deadline = cli.get_double("deadline");
  const std::uint64_t trials =
      cli.get_flag("full") ? 100 : static_cast<std::uint64_t>(cli.get_int("trials"));
  const ItemCount inputs = cli.get_flag("full")
                               ? 50000
                               : static_cast<ItemCount>(cli.get_int("inputs"));
  const std::uint64_t base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto nominal = blast::canonical_blast_pipeline();
  util::ThreadPool pool;

  // --- Calibrate both strategies minimally at the nominal point. ----------
  calib::CalibrationOptions calib_options;
  calib_options.trials = trials;
  calib_options.inputs_per_trial = inputs;
  calib_options.target_miss_free = 1.0;  // just-miss-free at nominal
  calib_options.base_seed = base_seed;
  calib_options.pool = &pool;
  const std::vector<calib::Probe> probe = {{tau0, deadline}};

  const auto ew_calibration = calib::calibrate_enforced_waits(
      nominal, core::EnforcedWaitsConfig::optimistic(nominal), probe,
      calib_options);
  const auto mono_calibration =
      calib::calibrate_monolithic(nominal, {}, probe, calib_options);
  if (!ew_calibration.success || !mono_calibration.success) {
    std::cerr << "calibration failed at the nominal point; pick a feasible "
                 "(tau0, D)\n";
    return 2;
  }

  const core::EnforcedWaitsStrategy enforced(nominal, ew_calibration.config);
  const core::MonolithicStrategy monolithic(nominal, mono_calibration.config);
  const auto intervals =
      enforced.solve(tau0, deadline).value().firing_intervals;
  const auto block = monolithic.solve(tau0, deadline).value().block_size;

  std::cout << "nominal point: tau0 = " << bench::fmt(tau0, 1) << ", D = "
            << bench::fmt(deadline, 0) << "\ncalibrated-at-nominal: EW b = {";
  for (std::size_t i = 0; i < ew_calibration.config.b.size(); ++i) {
    std::cout << (i ? ", " : "") << bench::fmt(ew_calibration.config.b[i], 0);
  }
  std::cout << "}, mono (b, S) = (" << bench::fmt(mono_calibration.config.b, 2)
            << ", " << bench::fmt(mono_calibration.config.S, 2)
            << "), M = " << block << "\n\n";

  struct Scenario {
    std::string label;
    dist::GainPtr stage1;
  };
  std::vector<Scenario> scenarios;
  for (double factor : {1.0, 1.05, 1.1, 1.2, 1.3}) {
    scenarios.push_back(
        {"mean x " + util::format_double(factor, 2),
         dist::make_censored_poisson(blast::Table1::kGains[1] * factor,
                                     blast::Table1::kMaxExpansion)});
  }
  scenarios.push_back(
      {"heavy tail (same mean)",
       dist::TruncatedGeometricGain::with_mean(blast::Table1::kGains[1],
                                               blast::Table1::kMaxExpansion)});

  util::TextTable table({"stage-1 gain", "EW miss-free", "EW mean miss",
                         "mono miss-free", "mono mean miss"});
  std::ofstream csv_out = bench::open_csv(cli);
  util::CsvWriter csv(csv_out);
  if (csv_out.is_open()) {
    csv.header({"scenario", "ew_miss_free", "ew_mean_miss", "mono_miss_free",
                "mono_mean_miss"});
  }

  std::vector<double> ew_miss;
  std::vector<double> mono_miss;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const auto pipeline = perturbed_pipeline(scenarios[s].stage1);

    auto ew_fn = [&, s](std::uint64_t trial) {
      arrivals::FixedRateArrivals arrival_process(tau0);
      sim::EnforcedSimConfig config;
      config.input_count = inputs;
      config.deadline = deadline;
      config.seed = dist::derive_seed({base_seed, 0x6A15, s, trial});
      return sim::simulate_enforced_waits(pipeline, intervals, arrival_process,
                                          config);
    };
    const auto ew_summary = sim::run_trials(ew_fn, trials, &pool);

    auto mono_fn = [&, s](std::uint64_t trial) {
      arrivals::FixedRateArrivals arrival_process(tau0);
      sim::MonolithicSimConfig config;
      config.block_size = block;
      config.input_count = inputs;
      config.deadline = deadline;
      config.seed = dist::derive_seed({base_seed, 0x6A16, s, trial});
      return sim::simulate_monolithic(pipeline, arrival_process, config);
    };
    const auto mono_summary = sim::run_trials(mono_fn, trials, &pool);

    ew_miss.push_back(ew_summary.miss_fraction.mean());
    mono_miss.push_back(mono_summary.miss_fraction.mean());
    table.add_row({scenarios[s].label,
                   bench::fmt(ew_summary.miss_free_fraction(), 3),
                   bench::fmt(ew_summary.miss_fraction.mean(), 5),
                   bench::fmt(mono_summary.miss_free_fraction(), 3),
                   bench::fmt(mono_summary.miss_fraction.mean(), 5)});
    if (csv_out.is_open()) {
      csv.row({scenarios[s].label,
               bench::fmt(ew_summary.miss_free_fraction(), 5),
               bench::fmt(ew_summary.miss_fraction.mean(), 6),
               bench::fmt(mono_summary.miss_free_fraction(), 5),
               bench::fmt(mono_summary.miss_fraction.mean(), 6)});
    }
  }
  table.print(std::cout);

  // The claim: with both strategies calibrated just-miss-free at nominal,
  // enforced waits degrade at least as fast under perturbation, strictly
  // worse somewhere.
  bool never_more_robust = true;
  bool strictly_worse_somewhere = false;
  for (std::size_t s = 0; s < ew_miss.size(); ++s) {
    if (ew_miss[s] + 1e-9 < mono_miss[s]) never_more_robust = false;
    if (ew_miss[s] > mono_miss[s] + 1e-9) strictly_worse_somewhere = true;
  }
  std::cout << "\nenforced waits never more robust than monolithic here: "
            << (never_more_robust ? "yes" : "NO")
            << "\nenforced waits strictly more sensitive somewhere:      "
            << (strictly_worse_somewhere ? "yes" : "NO") << std::endl;
  return (never_more_robust && strictly_worse_somewhere) ? 0 : 1;
}
