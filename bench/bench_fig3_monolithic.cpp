// Reproduces the monolithic half of paper Figure 3: optimized active
// fraction over the (tau0, D) space with b = 1, S = 1.
//
// Expected shape (paper Section 6.3): active fraction scales inversely with
// tau0 and is mostly insensitive to D (block size grows with D but the
// utilization tends to a constant, rho0 * sum G_i t_i / v).
#include "bench_common.hpp"

#include "core/report.hpp"
#include "core/sweep.hpp"
#include "sdf/analysis.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("tau0-points", 12, "grid points on the tau0 axis");
  cli.add_int("d-points", 8, "grid points on the deadline axis");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_fig3_monolithic — Figure 3 (monolithic)");

  const std::size_t tau0_points = cli.get_flag("full")
                                      ? 34
                                      : static_cast<std::size_t>(cli.get_int("tau0-points"));
  const std::size_t d_points = cli.get_flag("full")
                                   ? 12
                                   : static_cast<std::size_t>(cli.get_int("d-points"));

  bench::print_banner("Figure 3 (right): monolithic active fraction surface");
  const auto pipeline = blast::canonical_blast_pipeline();
  std::cout << "stability limit: tau0 >= "
            << bench::fmt(sdf::min_interarrival_monolithic(pipeline), 3)
            << " cycles (mean service per input)\n\n";

  util::ThreadPool pool;
  util::Stopwatch watch;
  const auto surface =
      core::run_sweep(pipeline, bench::paper_enforced_config(), {},
                      core::SweepGrid::paper_ranges(tau0_points, d_points), &pool);

  std::vector<std::string> headers{"tau0 \\ D"};
  for (Cycles d : surface.grid().deadline_values) {
    headers.push_back(bench::fmt(d, 0));
  }
  util::TextTable table(headers);
  util::TextTable blocks(headers);  // optimal block sizes M
  for (std::size_t ti = 0; ti < surface.grid().tau0_values.size(); ++ti) {
    std::vector<std::string> row{bench::fmt(surface.grid().tau0_values[ti], 1)};
    std::vector<std::string> block_row = row;
    for (std::size_t di = 0; di < surface.grid().deadline_values.size(); ++di) {
      const auto& cell = surface.cell(ti, di);
      row.push_back(cell.monolithic_feasible
                        ? bench::fmt(cell.monolithic_active_fraction, 4)
                        : "--");
      block_row.push_back(cell.monolithic_feasible
                              ? std::to_string(cell.monolithic_block)
                              : "--");
    }
    table.add_row(std::move(row));
    blocks.add_row(std::move(block_row));
  }
  std::cout << "Active fraction:\n";
  table.print(std::cout);
  std::cout << "\nOptimal block size M:\n";
  blocks.print(std::cout);
  std::cout << "\n(" << surface.grid().cell_count() << " cells in "
            << bench::fmt(watch.elapsed_seconds(), 2) << " s; '--' = infeasible)\n";

  // Shape assertions.
  const auto& grid = surface.grid();
  const std::size_t last_t = grid.tau0_values.size() - 1;
  const std::size_t last_d = grid.deadline_values.size() - 1;
  bool decreases_with_tau0 = true;
  for (std::size_t ti = 1; ti <= last_t; ++ti) {
    const auto& prev = surface.cell(ti - 1, last_d);
    const auto& cur = surface.cell(ti, last_d);
    if (prev.monolithic_feasible && cur.monolithic_feasible &&
        cur.monolithic_active_fraction >
            prev.monolithic_active_fraction + 1e-9) {
      decreases_with_tau0 = false;
    }
  }
  const auto& hi_t_mid_d = surface.cell(last_t, last_d / 2);
  const auto& hi_t_hi_d = surface.cell(last_t, last_d);
  const bool d_insensitive =
      hi_t_mid_d.monolithic_feasible && hi_t_hi_d.monolithic_feasible &&
      std::abs(hi_t_mid_d.monolithic_active_fraction -
               hi_t_hi_d.monolithic_active_fraction) < 0.05;
  std::cout << "active fraction decreases with tau0:  "
            << (decreases_with_tau0 ? "yes" : "NO") << "\n"
            << "insensitive to D once feasible:       "
            << (d_insensitive ? "yes" : "NO") << std::endl;

  if (auto csv_out = bench::open_csv(cli); csv_out.is_open()) {
    surface.write_csv(csv_out);
  }
  if (auto json_out = bench::open_json(cli); json_out.is_open()) {
    core::write_surface_json(json_out, surface);
  }
  return (decreases_with_tau0 && d_insensitive) ? 0 : 1;
}
