// Reproduces paper Section 6.2: empirical calibration of the worst-case
// parameters.
//
//   * Enforced waits: starting from the optimistic b_i = ceil(g_i), the
//     raise-and-retest loop should land on multipliers comparable to the
//     paper's b = {1, 3, 9, 6}, and the calibrated configuration should be
//     miss-free in >= 95% of seeded trials across the probe set.
//   * Monolithic: b = 1, S = 1 should pass immediately (the paper observed
//     no misses at all).
#include "bench_common.hpp"

#include "calib/calibrate.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("trials", 40, "seeded trials per probe (paper: 100)");
  cli.add_int("inputs", 20000, "inputs per trial (paper: 50000)");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_calibration — Section 6.2 parameter calibration");

  bench::print_banner("Section 6.2: worst-case parameter calibration");

  util::ThreadPool pool;
  calib::CalibrationOptions options;
  options.trials = cli.get_flag("full") ? 100 : cli.get_int("trials");
  options.inputs_per_trial =
      cli.get_flag("full") ? 50000 : static_cast<ItemCount>(cli.get_int("inputs"));
  options.target_miss_free = 0.95;
  options.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.pool = &pool;

  const auto pipeline = blast::canonical_blast_pipeline();
  const auto probes = calib::default_probes();
  std::cout << "probes: " << probes.size() << " (corners/edges/center of the "
            << "paper ranges)\ntrials per probe: " << options.trials
            << ", inputs per trial: " << options.inputs_per_trial << "\n\n";

  // ---- enforced waits ------------------------------------------------------
  util::Stopwatch watch;
  const auto enforced = calib::calibrate_enforced_waits(
      pipeline, core::EnforcedWaitsConfig::optimistic(pipeline), probes, options);
  std::cout << "Enforced waits (start b_i = ceil(g_i) = {1,2,1,1}):\n";
  for (const auto& line : enforced.log) std::cout << "  " << line << "\n";
  std::cout << "  rounds: " << enforced.rounds
            << ", success: " << (enforced.success ? "yes" : "NO")
            << ", worst miss-free fraction: "
            << bench::fmt(enforced.worst_miss_free, 4) << "\n";
  std::cout << "  calibrated b = {";
  for (std::size_t i = 0; i < enforced.config.b.size(); ++i) {
    std::cout << (i ? ", " : "") << bench::fmt(enforced.config.b[i], 0);
  }
  std::cout << "}   (paper: {1, 3, 9, 6})\n\n";

  util::TextTable probe_table({"tau0", "D", "feasible", "miss-free frac",
                               "mean miss frac", "mean active frac"});
  for (const auto& outcome : enforced.final_outcomes) {
    probe_table.add_row(
        {bench::fmt(outcome.probe.tau0, 1), bench::fmt(outcome.probe.deadline, 0),
         outcome.feasible ? "yes" : "no",
         outcome.feasible ? bench::fmt(outcome.miss_free_fraction, 3) : "-",
         outcome.feasible ? bench::fmt(outcome.mean_miss_fraction, 5) : "-",
         outcome.feasible ? bench::fmt(outcome.mean_active_fraction, 4) : "-"});
  }
  probe_table.print(std::cout);

  // ---- validate the paper's published b on the same probes ----------------
  std::cout << "\nValidating the paper's published b = {1, 3, 9, 6}:\n";
  const auto paper_check = calib::calibrate_enforced_waits(
      pipeline, bench::paper_enforced_config(), probes, options);
  std::cout << "  accepted in round " << paper_check.rounds
            << " (success: " << (paper_check.success ? "yes" : "NO")
            << "), worst miss-free fraction "
            << bench::fmt(paper_check.worst_miss_free, 4) << "\n";

  // ---- monolithic ----------------------------------------------------------
  std::cout << "\nMonolithic (start b = 1, S = 1):\n";
  const auto monolithic = calib::calibrate_monolithic(pipeline, {}, probes, options);
  for (const auto& line : monolithic.log) std::cout << "  " << line << "\n";
  std::cout << "  rounds: " << monolithic.rounds
            << ", success: " << (monolithic.success ? "yes" : "NO")
            << ", final (b, S) = (" << bench::fmt(monolithic.config.b, 2) << ", "
            << bench::fmt(monolithic.config.S, 2) << ")   (paper: (1, 1))\n";

  std::cout << "\nelapsed: " << bench::fmt(watch.elapsed_seconds(), 1) << " s\n";

  if (auto csv_out = bench::open_csv(cli); csv_out.is_open()) {
    util::CsvWriter csv(csv_out);
    csv.header({"strategy", "tau0", "deadline", "feasible", "miss_free_fraction",
                "mean_miss_fraction", "mean_active_fraction"});
    for (const auto& outcome : enforced.final_outcomes) {
      csv.row({"enforced", bench::fmt(outcome.probe.tau0, 3),
               bench::fmt(outcome.probe.deadline, 0),
               outcome.feasible ? "1" : "0",
               bench::fmt(outcome.miss_free_fraction, 5),
               bench::fmt(outcome.mean_miss_fraction, 6),
               bench::fmt(outcome.mean_active_fraction, 5)});
    }
    for (const auto& outcome : monolithic.final_outcomes) {
      csv.row({"monolithic", bench::fmt(outcome.probe.tau0, 3),
               bench::fmt(outcome.probe.deadline, 0),
               outcome.feasible ? "1" : "0",
               bench::fmt(outcome.miss_free_fraction, 5),
               bench::fmt(outcome.mean_miss_fraction, 6),
               bench::fmt(outcome.mean_active_fraction, 5)});
    }
  }

  // Acceptance: the raise-and-retest loop converges from the optimistic
  // start; the paper's published b = {1,3,9,6} is accepted as-is; and the
  // monolithic strategy needs at most a small worst-case allowance. (The
  // paper reports zero monolithic misses with b = 1, S = 1; our optimizer
  // pushes M exactly to the deadline boundary, so probes near the stability
  // limit can show rare misses until S is nudged — see EXPERIMENTS.md.)
  const bool ok = enforced.success && paper_check.success &&
                  paper_check.rounds == 1 && monolithic.success &&
                  monolithic.rounds <= 3 && monolithic.config.b <= 2.0 &&
                  monolithic.config.S <= 1.5;
  std::cout << "\nSection 6.2 claims reproduced (see EXPERIMENTS.md for the "
               "monolithic S caveat): "
            << (ok ? "yes" : "NO") << std::endl;
  return ok ? 0 : 1;
}
