// Google-benchmark suite for the online control loop (src/control +
// src/service): warm- vs cold-started re-plan latency, the steady-state cost
// of a control tick, and the closed-loop overhead of running the replay
// drain cycle (estimator feed + tick + chunk execution) against executing
// the same chunks under a static plan. scripts/run_bench_service.sh runs
// this suite and writes BENCH_service.json at the repo root; the acceptance
// bar is steady-state overhead under 2%.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "control/controller.hpp"
#include "core/enforced_waits.hpp"
#include "core/warm_start.hpp"
#include "dist/gain.hpp"
#include "runtime/pipeline_executor.hpp"
#include "sdf/pipeline.hpp"
#include "service/service.hpp"
#include "sim/enforced_sim.hpp"

namespace {

using namespace ripple;

/// A deeper pipeline than the unit tests use, so the solver's active-set
/// iteration cost is representative: six nodes, mixed gains.
sdf::PipelineSpec make_solver_spec() {
  auto spec = sdf::PipelineBuilder("svc_bench_deep")
                  .simd_width(16)
                  .add_node("seed", 40.0, dist::make_deterministic(3))
                  .add_node("expand", 55.0, dist::make_bernoulli(0.6))
                  .add_node("extend", 90.0, dist::make_deterministic(2))
                  .add_node("score", 35.0, dist::make_bernoulli(0.4))
                  .add_node("rank", 25.0, dist::make_deterministic(1))
                  .add_node("emit", 20.0, nullptr)
                  .build()
                  .value();
  return spec;
}

/// The control-loop pipeline shared with the service tests (floor tau0 = 5).
sdf::PipelineSpec make_loop_spec() {
  auto spec = sdf::PipelineBuilder("svc_bench_loop")
                  .simd_width(4)
                  .add_node("expand", 8.0, dist::make_deterministic(2))
                  .add_node("filter", 6.0, dist::make_deterministic(1))
                  .add_node("sink", 10.0, nullptr)
                  .build()
                  .value();
  return spec;
}

constexpr Cycles kDeadline = 40000.0;
constexpr Cycles kLoopDeadline = 600.0;
constexpr std::size_t kChunk = 256;

/// Re-plan latency, cold: every solve starts from scratch. The targets
/// alternate +/-5% around a base operating point, the drift that actually
/// triggers re-plans in the hysteresis loop.
void BM_ReplanColdSolve(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_solver_spec();
  const core::EnforcedWaitsStrategy strategy(
      spec, core::EnforcedWaitsConfig::optimistic(spec));
  const Cycles base = 2.0 * strategy.min_feasible_tau0(kDeadline);
  std::size_t flip = 0;
  for (auto _ : state) {
    const Cycles target = base * (flip++ % 2 == 0 ? 1.05 : 0.95);
    auto solved = strategy.solve(target, kDeadline);
    benchmark::DoNotOptimize(solved);
  }
}
BENCHMARK(BM_ReplanColdSolve);

/// Re-plan latency, warm: each solve is seeded with the previous solution,
/// exactly what Replanner::solve_and_publish does between drifting targets.
void BM_ReplanWarmSolve(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_solver_spec();
  const core::EnforcedWaitsStrategy strategy(
      spec, core::EnforcedWaitsConfig::optimistic(spec));
  const Cycles base = 2.0 * strategy.min_feasible_tau0(kDeadline);
  auto previous = strategy.solve(base, kDeadline).value();
  std::size_t flip = 0;
  for (auto _ : state) {
    const Cycles target = base * (flip++ % 2 == 0 ? 1.05 : 0.95);
    const core::WarmStart warm =
        core::WarmStart::from_intervals(previous.firing_intervals);
    auto solved = strategy.solve(target, kDeadline, &warm);
    benchmark::DoNotOptimize(solved);
    previous = std::move(solved.value());
  }
}
BENCHMARK(BM_ReplanWarmSolve);

/// The hysteresis fast path: one observed gap plus a tick that keeps the
/// plan. This is the per-control-interval cost the service pays in steady
/// state on top of executing the batch.
void BM_ControllerTickSteady(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  control::Controller controller(
      spec, core::EnforcedWaitsConfig::optimistic(spec), kLoopDeadline, 20.0);
  for (int i = 0; i < 2000; ++i) controller.observe_gap(20.0);
  for (auto _ : state) {
    controller.observe_gap(20.0);
    auto decision = controller.tick();
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_ControllerTickSteady);

/// The per-arrival cost the closed loop adds on the ingest side: one EWMA
/// update plus a quantile-window push. Together with the tick, this is the
/// entire steady-state control overhead per chunk (kChunk gaps + one tick),
/// which scripts/run_bench_service.sh relates to the static-plan chunk time.
void BM_ObserveGapSteady(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  control::Controller controller(
      spec, core::EnforcedWaitsConfig::optimistic(spec), kLoopDeadline, 20.0);
  for (int i = 0; i < 2000; ++i) controller.observe_gap(20.0);
  for (auto _ : state) {
    controller.observe_gap(20.0);
  }
  benchmark::DoNotOptimize(controller);
}
BENCHMARK(BM_ObserveGapSteady);

/// One batch through the service's executor path (the batch the worker runs
/// per drain), shared by the closed-loop and static-plan chunk benchmarks.
void run_executor_chunk(runtime::PipelineExecutor& executor,
                        const std::vector<Cycles>& intervals, Cycles first_gap,
                        benchmark::State& state) {
  runtime::ExecutorConfig config;
  config.firing_intervals = intervals;
  config.deadline = kLoopDeadline;
  config.max_collected_results = 0;
  config.input_gaps.assign(kChunk, 20.0);
  config.input_gaps.front() = first_gap;
  std::vector<runtime::Item> inputs;
  inputs.reserve(kChunk);
  for (std::uint64_t i = 0; i < kChunk; ++i) inputs.emplace_back(i);
  auto result = executor.run(std::move(inputs), config);
  if (!result.ok()) state.SkipWithError("executor chunk failed");
  benchmark::DoNotOptimize(result);
}

/// One steady-state drain cycle of the closed loop: feed a chunk of offered
/// gaps to the estimator, tick the controller (kept plan), and execute the
/// chunk through the service's executor under the current plan — the same
/// per-batch work PipelineService::drain_pending does.
void BM_ClosedLoopChunkSteady(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  control::Controller controller(
      spec, core::EnforcedWaitsConfig::optimistic(spec), kLoopDeadline, 20.0);
  for (int i = 0; i < 2000; ++i) controller.observe_gap(20.0);
  runtime::PipelineExecutor executor(spec, service::synthetic_stages(spec));

  for (auto _ : state) {
    for (std::size_t i = 0; i < kChunk; ++i) controller.observe_gap(20.0);
    auto decision = controller.tick();
    benchmark::DoNotOptimize(decision);
    const control::PlanPtr plan = controller.plan();
    run_executor_chunk(executor, plan->schedule.firing_intervals,
                       plan->planned_tau0, state);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
}
BENCHMARK(BM_ClosedLoopChunkSteady);

/// The same chunk executed under a fixed offline plan with no control loop:
/// the baseline the closed loop's steady-state overhead is measured against.
void BM_StaticPlanChunk(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  const core::EnforcedWaitsStrategy strategy(
      spec, core::EnforcedWaitsConfig::optimistic(spec));
  const auto schedule = strategy.solve(20.0, kLoopDeadline).value();
  runtime::PipelineExecutor executor(spec, service::synthetic_stages(spec));

  for (auto _ : state) {
    run_executor_chunk(executor, schedule.firing_intervals, 20.0, state);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
}
BENCHMARK(BM_StaticPlanChunk);

}  // namespace

BENCHMARK_MAIN();
