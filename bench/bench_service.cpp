// Google-benchmark suite for the online control loop (src/control +
// src/service): warm- vs cold-started re-plan latency, the steady-state cost
// of a control tick, and the closed-loop overhead of running the replay
// drain cycle (estimator feed + tick + chunk execution) against executing
// the same chunks under a static plan. scripts/run_bench_service.sh runs
// this suite and writes BENCH_service.json at the repo root; the acceptance
// bar is steady-state overhead under 2%.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "control/controller.hpp"
#include "core/enforced_waits.hpp"
#include "core/warm_start.hpp"
#include "dist/gain.hpp"
#include "net/server.hpp"
#include "runtime/pipeline_executor.hpp"
#include "sdf/pipeline.hpp"
#include "service/service.hpp"
#include "sim/enforced_sim.hpp"
#include "util/mpsc_queue.hpp"

namespace {

using namespace ripple;

/// A deeper pipeline than the unit tests use, so the solver's active-set
/// iteration cost is representative: six nodes, mixed gains.
sdf::PipelineSpec make_solver_spec() {
  auto spec = sdf::PipelineBuilder("svc_bench_deep")
                  .simd_width(16)
                  .add_node("seed", 40.0, dist::make_deterministic(3))
                  .add_node("expand", 55.0, dist::make_bernoulli(0.6))
                  .add_node("extend", 90.0, dist::make_deterministic(2))
                  .add_node("score", 35.0, dist::make_bernoulli(0.4))
                  .add_node("rank", 25.0, dist::make_deterministic(1))
                  .add_node("emit", 20.0, nullptr)
                  .build()
                  .value();
  return spec;
}

/// The control-loop pipeline shared with the service tests (floor tau0 = 5).
sdf::PipelineSpec make_loop_spec() {
  auto spec = sdf::PipelineBuilder("svc_bench_loop")
                  .simd_width(4)
                  .add_node("expand", 8.0, dist::make_deterministic(2))
                  .add_node("filter", 6.0, dist::make_deterministic(1))
                  .add_node("sink", 10.0, nullptr)
                  .build()
                  .value();
  return spec;
}

constexpr Cycles kDeadline = 40000.0;
constexpr Cycles kLoopDeadline = 600.0;
constexpr std::size_t kChunk = 256;

/// Re-plan latency, cold: every solve starts from scratch. The targets
/// alternate +/-5% around a base operating point, the drift that actually
/// triggers re-plans in the hysteresis loop.
void BM_ReplanColdSolve(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_solver_spec();
  const core::EnforcedWaitsStrategy strategy(
      spec, core::EnforcedWaitsConfig::optimistic(spec));
  const Cycles base = 2.0 * strategy.min_feasible_tau0(kDeadline);
  std::size_t flip = 0;
  for (auto _ : state) {
    const Cycles target = base * (flip++ % 2 == 0 ? 1.05 : 0.95);
    auto solved = strategy.solve(target, kDeadline);
    benchmark::DoNotOptimize(solved);
  }
}
BENCHMARK(BM_ReplanColdSolve);

/// Re-plan latency, warm: each solve is seeded with the previous solution,
/// exactly what Replanner::solve_and_publish does between drifting targets.
void BM_ReplanWarmSolve(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_solver_spec();
  const core::EnforcedWaitsStrategy strategy(
      spec, core::EnforcedWaitsConfig::optimistic(spec));
  const Cycles base = 2.0 * strategy.min_feasible_tau0(kDeadline);
  auto previous = strategy.solve(base, kDeadline).value();
  std::size_t flip = 0;
  for (auto _ : state) {
    const Cycles target = base * (flip++ % 2 == 0 ? 1.05 : 0.95);
    const core::WarmStart warm =
        core::WarmStart::from_intervals(previous.firing_intervals);
    auto solved = strategy.solve(target, kDeadline, &warm);
    benchmark::DoNotOptimize(solved);
    previous = std::move(solved.value());
  }
}
BENCHMARK(BM_ReplanWarmSolve);

/// The hysteresis fast path: one observed gap plus a tick that keeps the
/// plan. This is the per-control-interval cost the service pays in steady
/// state on top of executing the batch.
void BM_ControllerTickSteady(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  control::Controller controller(
      spec, core::EnforcedWaitsConfig::optimistic(spec), kLoopDeadline, 20.0);
  for (int i = 0; i < 2000; ++i) controller.observe_gap(20.0);
  for (auto _ : state) {
    controller.observe_gap(20.0);
    auto decision = controller.tick();
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_ControllerTickSteady);

/// The per-arrival cost the closed loop adds on the ingest side: one EWMA
/// update plus a quantile-window push. Together with the tick, this is the
/// entire steady-state control overhead per chunk (kChunk gaps + one tick),
/// which scripts/run_bench_service.sh relates to the static-plan chunk time.
void BM_ObserveGapSteady(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  control::Controller controller(
      spec, core::EnforcedWaitsConfig::optimistic(spec), kLoopDeadline, 20.0);
  for (int i = 0; i < 2000; ++i) controller.observe_gap(20.0);
  for (auto _ : state) {
    controller.observe_gap(20.0);
  }
  benchmark::DoNotOptimize(controller);
}
BENCHMARK(BM_ObserveGapSteady);

/// One batch through the service's executor path (the batch the worker runs
/// per drain), shared by the closed-loop and static-plan chunk benchmarks.
void run_executor_chunk(runtime::PipelineExecutor& executor,
                        const std::vector<Cycles>& intervals, Cycles first_gap,
                        benchmark::State& state) {
  runtime::ExecutorConfig config;
  config.firing_intervals = intervals;
  config.deadline = kLoopDeadline;
  config.max_collected_results = 0;
  config.input_gaps.assign(kChunk, 20.0);
  config.input_gaps.front() = first_gap;
  std::vector<runtime::Item> inputs;
  inputs.reserve(kChunk);
  for (std::uint64_t i = 0; i < kChunk; ++i) inputs.emplace_back(i);
  auto result = executor.run(std::move(inputs), config);
  if (!result.ok()) state.SkipWithError("executor chunk failed");
  benchmark::DoNotOptimize(result);
}

/// One steady-state drain cycle of the closed loop: feed a chunk of offered
/// gaps to the estimator, tick the controller (kept plan), and execute the
/// chunk through the service's executor under the current plan — the same
/// per-batch work PipelineService::drain_pending does.
void BM_ClosedLoopChunkSteady(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  control::Controller controller(
      spec, core::EnforcedWaitsConfig::optimistic(spec), kLoopDeadline, 20.0);
  for (int i = 0; i < 2000; ++i) controller.observe_gap(20.0);
  runtime::PipelineExecutor executor(spec, service::synthetic_stages(spec));

  for (auto _ : state) {
    for (std::size_t i = 0; i < kChunk; ++i) controller.observe_gap(20.0);
    auto decision = controller.tick();
    benchmark::DoNotOptimize(decision);
    const control::PlanPtr plan = controller.plan();
    run_executor_chunk(executor, plan->schedule.firing_intervals,
                       plan->planned_tau0, state);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
}
BENCHMARK(BM_ClosedLoopChunkSteady);

/// The same chunk executed under a fixed offline plan with no control loop:
/// the baseline the closed loop's steady-state overhead is measured against.
void BM_StaticPlanChunk(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  const core::EnforcedWaitsStrategy strategy(
      spec, core::EnforcedWaitsConfig::optimistic(spec));
  const auto schedule = strategy.solve(20.0, kLoopDeadline).value();
  runtime::PipelineExecutor executor(spec, service::synthetic_stages(spec));

  for (auto _ : state) {
    run_executor_chunk(executor, schedule.firing_intervals, 20.0, state);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
}
BENCHMARK(BM_StaticPlanChunk);

// ---------------------------------------------------------------------------
// Sharded ingest: the drain-side data-structure swap and the shard sweep.
//
// The pre-PR service kept one mutex-guarded pending vector per session and
// every drain scanned ALL open sessions to collect the batch — O(open
// sessions) per drain even when almost every session is idle, which is the
// realistic shape (many long-lived sessions, few active per interval). The
// sharded service replaced that with one bounded MPSC ring per shard, so a
// drain costs O(items popped). BM_IngestLegacyScanMerge reimplements the old
// collect phase faithfully (lock each session, steal its pending vector,
// merge, sort); BM_IngestMpscDrain runs the same offered load through the
// new rings at 1/2/4/8 shards. scripts/run_bench_service.sh publishes the
// ratio as the drain-throughput scaling curve in BENCH_service.json.
// ---------------------------------------------------------------------------

constexpr std::size_t kIngestSessions = 16384;  // mostly idle, like production
constexpr std::size_t kActiveSessions = 64;     // submit per drain interval
constexpr std::size_t kItemsPerActive = 8;      // 512 items per drain

struct BenchPending {
  std::uint64_t value = 0;
  Cycles arrival = 0.0;
  std::uint64_t seq = 0;
};

/// The old per-session ingest state: mutex + growable pending vector.
struct LegacySession {
  std::mutex mutex;
  std::vector<BenchPending> pending;
};

void BM_IngestLegacyScanMerge(benchmark::State& state) {
  std::vector<std::unique_ptr<LegacySession>> sessions;
  sessions.reserve(kIngestSessions);
  for (std::size_t i = 0; i < kIngestSessions; ++i) {
    sessions.push_back(std::make_unique<LegacySession>());
  }
  std::vector<BenchPending> batch;
  batch.reserve(kActiveSessions * kItemsPerActive);
  std::uint64_t seq = 0;

  for (auto _ : state) {
    state.PauseTiming();
    // Refill: a few active sessions spread across the table, everyone else
    // idle — exactly the case the scan pays for.
    for (std::size_t a = 0; a < kActiveSessions; ++a) {
      LegacySession& session =
          *sessions[(a * (kIngestSessions / kActiveSessions)) %
                    kIngestSessions];
      for (std::size_t k = 0; k < kItemsPerActive; ++k) {
        session.pending.push_back(
            {seq, static_cast<Cycles>(seq % 97), seq});
        ++seq;
      }
    }
    state.ResumeTiming();

    // The old drain's collect phase: scan every session under its lock.
    batch.clear();
    for (auto& session : sessions) {
      std::lock_guard<std::mutex> lock(session->mutex);
      if (session->pending.empty()) continue;
      for (BenchPending& pending : session->pending) {
        batch.push_back(pending);
      }
      session->pending.clear();
    }
    std::sort(batch.begin(), batch.end(),
              [](const BenchPending& a, const BenchPending& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                return a.seq < b.seq;
              });
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kActiveSessions * kItemsPerActive));
}
BENCHMARK(BM_IngestLegacyScanMerge);

void BM_IngestMpscDrain(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<util::MpscQueue<BenchPending>>> queues;
  for (std::size_t s = 0; s < shards; ++s) {
    queues.push_back(
        std::make_unique<util::MpscQueue<BenchPending>>(65536));
  }
  std::vector<BenchPending> batch;
  batch.reserve(kActiveSessions * kItemsPerActive);
  std::uint64_t seq = 0;

  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t a = 0; a < kActiveSessions; ++a) {
      util::MpscQueue<BenchPending>& queue = *queues[a % shards];
      for (std::size_t k = 0; k < kItemsPerActive; ++k) {
        queue.try_push({seq, static_cast<Cycles>(seq % 97), seq});
        ++seq;
      }
    }
    state.ResumeTiming();

    // The new drain's collect phase: pop what is there, no session scan.
    for (auto& queue : queues) {
      batch.clear();
      queue->drain(batch);
      std::sort(batch.begin(), batch.end(),
                [](const BenchPending& a, const BenchPending& b) {
                  if (a.arrival != b.arrival) return a.arrival < b.arrival;
                  return a.seq < b.seq;
                });
      benchmark::DoNotOptimize(batch.data());
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kActiveSessions * kItemsPerActive));
}
BENCHMARK(BM_IngestMpscDrain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// End-to-end service drain at each shard count: open sessions, submit one
/// interval's load, drain_once (pop + sort + tick + execute). Complements
/// the ingest-only pair above with the full-path numbers the scaling curve
/// reports alongside.
void BM_ServiceDrainSharded(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const sdf::PipelineSpec spec = make_loop_spec();
  service::ServiceConfig config;
  config.deadline = kLoopDeadline;
  config.initial_tau0 = 20.0;
  config.shards = shards;
  config.session_capacity = 4096;
  service::PipelineService service(
      spec, service::synthetic_stage_factory(spec), config);

  std::vector<service::SessionId> sessions;
  for (std::size_t i = 0; i < kActiveSessions; ++i) {
    sessions.push_back(service.open_session());
  }

  std::uint64_t counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (const service::SessionId id : sessions) {
      std::vector<runtime::Item> items;
      items.reserve(kItemsPerActive);
      for (std::size_t k = 0; k < kItemsPerActive; ++k) {
        items.emplace_back(counter++);
      }
      service.submit(id, std::move(items));
    }
    state.ResumeTiming();
    const std::size_t executed = service.drain_once();
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kActiveSessions * kItemsPerActive));
}
BENCHMARK(BM_ServiceDrainSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The two scaling axes composed: shards × exec_threads. Same drain loop as
/// BM_ServiceDrainSharded, but each shard's batch runs through the
/// task-parallel executor at the given thread count — one row per point of
/// the small cross grid, so the scaling table shows whether intra-shard
/// parallelism stacks on top of sharding or fights it for cores on this
/// host. exec_threads = 1 rows are the sequential-engine baselines.
void BM_ServiceShardsTimesExecThreads(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto exec_threads = static_cast<std::size_t>(state.range(1));
  const sdf::PipelineSpec spec = make_loop_spec();
  service::ServiceConfig config;
  config.deadline = kLoopDeadline;
  config.initial_tau0 = 20.0;
  config.shards = shards;
  config.exec_threads = exec_threads;
  config.session_capacity = 4096;
  service::PipelineService service(
      spec, service::synthetic_stage_factory(spec), config);

  std::vector<service::SessionId> sessions;
  for (std::size_t i = 0; i < kActiveSessions; ++i) {
    sessions.push_back(service.open_session());
  }

  std::uint64_t counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (const service::SessionId id : sessions) {
      std::vector<runtime::Item> items;
      items.reserve(kItemsPerActive);
      for (std::size_t k = 0; k < kItemsPerActive; ++k) {
        items.emplace_back(counter++);
      }
      service.submit(id, std::move(items));
    }
    state.ResumeTiming();
    const std::size_t executed = service.drain_once();
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kActiveSessions * kItemsPerActive));
}
BENCHMARK(BM_ServiceShardsTimesExecThreads)
    ->ArgNames({"shards", "exec"})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({4, 2})
    ->UseRealTime();

/// The submit fast path with coalesced wakeups: per-item cost of the
/// admission check + backpressure reservation + MPSC push. The worker is
/// deliberately not running — this isolates the producer-side cost the
/// coalescing optimization targets (no syscall per submit once the shard is
/// already signalled).
void BM_SubmitSteady(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  service::ServiceConfig config;
  config.deadline = kLoopDeadline;
  config.initial_tau0 = 20.0;
  config.session_capacity = 1u << 20;
  config.shard_queue_capacity = 1u << 20;
  service::PipelineService service(
      spec, service::synthetic_stage_factory(spec), config);
  const service::SessionId id = service.open_session();

  constexpr std::size_t kBatch = 8;
  std::uint64_t counter = 0;
  std::size_t in_queue = 0;
  for (auto _ : state) {
    if (in_queue + kBatch > (1u << 20)) {
      state.PauseTiming();
      service.drain_once();
      in_queue = 0;
      state.ResumeTiming();
    }
    std::vector<runtime::Item> items;
    items.reserve(kBatch);
    for (std::size_t k = 0; k < kBatch; ++k) items.emplace_back(counter++);
    const service::SubmitOutcome outcome =
        service.submit(id, std::move(items));
    benchmark::DoNotOptimize(outcome);
    in_queue += outcome.accepted;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_SubmitSteady);

/// The network front door end to end: one loopback TCP client streaming
/// kChunk-item ripple.frame.v1 batches through the epoll server into the
/// running service (worker live, controller ticking on every drain). Items
/// processed counts what the service ACCEPTED, not what the client wrote —
/// socket buffering and backpressure rejections must not inflate the
/// number. scripts/run_bench_service.sh gates the >= 1M items/s acceptance
/// bar on this throughput.
void BM_LoopbackIngest(benchmark::State& state) {
  const sdf::PipelineSpec spec = make_loop_spec();
  service::ServiceConfig config;
  config.deadline = kLoopDeadline;
  config.initial_tau0 = 20.0;
  // Huge virtual gaps per wall microsecond keep the estimator far above the
  // feasibility floor: the controller is live but never sheds, and the big
  // capacities keep backpressure rejections out of the throughput number.
  config.cycles_per_us = 1e6;
  config.session_capacity = 1u << 20;
  config.shard_queue_capacity = 1u << 20;
  service::PipelineService service(
      spec, service::synthetic_stage_factory(spec), config);
  service.start();
  net::IngestServer server(service, net::ServerConfig{});
  server.start();
  net::IngestClient client("127.0.0.1", server.port());
  client.open_session(1);

  std::vector<std::uint64_t> items(kChunk);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < items.size(); ++i) items[i] = counter++;
    client.send_items(1, items.data(), items.size());
    client.poll_notifications();  // drain any shed/backpressure frames
  }
  client.close_session(1);
  client.finish();
  server.stop();
  service.stop();

  const service::ServiceStats stats = service.stats();
  state.counters["rejected"] = static_cast<double>(
      stats.rejected_backpressure + stats.shed);
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.accepted));
}
BENCHMARK(BM_LoopbackIngest);

}  // namespace

BENCHMARK_MAIN();
