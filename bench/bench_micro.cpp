// Google-benchmark micro suite: engine performance of the substrates the
// experiments are built on (event queue, solvers, simulators, distributions).
// These are performance regressions guards, not paper figures.
#include <benchmark/benchmark.h>

#include "arrivals/arrival_process.hpp"
#include "blast/canonical.hpp"
#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "dist/gain.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/event_queue.hpp"
#include "sim/event_sources.hpp"
#include "core/waterfill.hpp"
#include "obs/obs.hpp"
#include "queueing/bulk_queue.hpp"
#include "sched/quantum_sim.hpp"
#include "sim/greedy_sim.hpp"
#include "sim/monolithic_sim.hpp"
#include "util/ring_buffer.hpp"

namespace {

using namespace ripple;

/// Attach an events/sec rate counter fed by TrialMetrics::events_processed.
void report_event_rate(benchmark::State& state, std::uint64_t total_events) {
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
}

void BM_EventQueuePushPop(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  dist::Xoshiro256 rng(1);
  for (auto _ : state) {
    sim::EventQueue<int> queue;
    for (std::size_t i = 0; i < depth; ++i) {
      queue.push(rng.uniform01() * 1e6, 0, static_cast<int>(i));
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_XoshiroUniform(benchmark::State& state) {
  dist::Xoshiro256 rng(2);
  double acc = 0.0;
  for (auto _ : state) acc += rng.uniform01();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XoshiroUniform);

void BM_CensoredPoissonSample(benchmark::State& state) {
  const dist::CensoredPoissonGain gain(1.92, 16);
  dist::Xoshiro256 rng(3);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += gain.sample(rng);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CensoredPoissonSample);

void BM_EnforcedWaitsSolve(benchmark::State& state) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  for (auto _ : state) {
    auto solved = strategy.solve(20.0, 1.85e5);
    benchmark::DoNotOptimize(solved.ok());
  }
}
BENCHMARK(BM_EnforcedWaitsSolve);

void BM_MonolithicSolve(benchmark::State& state) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const core::MonolithicStrategy strategy(pipeline, {});
  const double tau0 = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto solved = strategy.solve(tau0, 3.5e5);
    benchmark::DoNotOptimize(solved.ok());
  }
}
BENCHMARK(BM_MonolithicSolve)->Arg(10)->Arg(100);

void BM_EnforcedSimulation(benchmark::State& state) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  const auto solved = strategy.solve(20.0, 1.85e5);
  const ItemCount inputs = static_cast<ItemCount>(state.range(0));
  std::uint64_t seed = 0;
  std::uint64_t total_events = 0;
  for (auto _ : state) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    sim::EnforcedSimConfig config;
    config.input_count = inputs;
    config.deadline = 1.85e5;
    config.seed = ++seed;
    const auto metrics = sim::simulate_enforced_waits(
        pipeline, solved.value().firing_intervals, arrival_process, config);
    benchmark::DoNotOptimize(metrics.sink_outputs);
    total_events += metrics.events_processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs));
  report_event_rate(state, total_events);
}
BENCHMARK(BM_EnforcedSimulation)->Arg(10000)->Arg(50000);

#if RIPPLE_OBS
void BM_EnforcedSimulationObsEnabled(benchmark::State& state) {
  // Same workload as BM_EnforcedSimulation but with observability recording
  // switched on, to price the enabled path (spans + counters into the ring).
  // The disabled-path overhead gate compares BM_EnforcedSimulation between
  // RIPPLE_OBS=OFF and =ON builds instead (scripts/run_bench_obs.sh).
  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  const auto solved = strategy.solve(20.0, 1.85e5);
  const ItemCount inputs = static_cast<ItemCount>(state.range(0));
  obs::set_enabled(true);
  std::uint64_t seed = 0;
  std::uint64_t total_events = 0;
  for (auto _ : state) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    sim::EnforcedSimConfig config;
    config.input_count = inputs;
    config.deadline = 1.85e5;
    config.seed = ++seed;
    const auto metrics = sim::simulate_enforced_waits(
        pipeline, solved.value().firing_intervals, arrival_process, config);
    benchmark::DoNotOptimize(metrics.sink_outputs);
    total_events += metrics.events_processed;
  }
  obs::set_enabled(false);
  obs::TraceSession::global().clear();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs));
  report_event_rate(state, total_events);
}
BENCHMARK(BM_EnforcedSimulationObsEnabled)->Arg(10000);
#endif  // RIPPLE_OBS

void BM_MonolithicSimulation(benchmark::State& state) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const ItemCount inputs = static_cast<ItemCount>(state.range(0));
  std::uint64_t seed = 0;
  std::uint64_t total_events = 0;
  for (auto _ : state) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    sim::MonolithicSimConfig config;
    config.block_size = 2000;
    config.input_count = inputs;
    config.deadline = 1.85e5;
    config.seed = ++seed;
    const auto metrics =
        sim::simulate_monolithic(pipeline, arrival_process, config);
    benchmark::DoNotOptimize(metrics.sink_outputs);
    total_events += metrics.events_processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs));
  report_event_rate(state, total_events);
}
BENCHMARK(BM_MonolithicSimulation)->Arg(10000)->Arg(50000);


void BM_GreedySimulation(benchmark::State& state) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const ItemCount inputs = static_cast<ItemCount>(state.range(0));
  std::uint64_t seed = 0;
  std::uint64_t total_events = 0;
  for (auto _ : state) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    sim::GreedySimConfig config;
    config.input_count = inputs;
    config.seed = ++seed;
    const auto metrics =
        sim::simulate_greedy_throughput(pipeline, arrival_process, config);
    benchmark::DoNotOptimize(metrics.sink_outputs);
    total_events += metrics.events_processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs));
  report_event_rate(state, total_events);
}
BENCHMARK(BM_GreedySimulation)->Arg(20000);

void BM_QuantumSimulation(benchmark::State& state) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  const auto solved = strategy.solve(20.0, 1.85e5);
  const Cycles quantum = static_cast<Cycles>(state.range(0));
  std::uint64_t seed = 0;
  std::uint64_t total_events = 0;
  for (auto _ : state) {
    arrivals::FixedRateArrivals arrival_process(20.0);
    sched::QuantumSimConfig config;
    config.quantum = quantum;
    config.input_count = 10000;
    config.seed = ++seed;
    const auto metrics = sched::simulate_quantum_scheduled(
        pipeline, solved.value().firing_intervals, arrival_process, config);
    benchmark::DoNotOptimize(metrics.base.sink_outputs);
    total_events += metrics.base.events_processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
  report_event_rate(state, total_events);
}
BENCHMARK(BM_QuantumSimulation)->Arg(10)->Arg(200);

void BM_BulkQueueAnalysis(benchmark::State& state) {
  queueing::BulkQueueConfig config;
  config.batch_size = 128;
  config.arrivals_per_interval =
      queueing::poisson_pmf(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    auto analysis = queueing::analyze_bulk_queue(config);
    benchmark::DoNotOptimize(analysis.ok());
  }
}
BENCHMARK(BM_BulkQueueAnalysis)->Arg(64)->Arg(115);

void BM_IndexedSchedulerCycle(benchmark::State& state) {
  // The enforced simulator's event machinery in isolation: pop the winning
  // source and immediately re-arm it, over the canonical 2N+1 = 9 sources.
  const std::size_t sources = static_cast<std::size_t>(state.range(0));
  sim::IndexedScheduler sched(sources);
  dist::Xoshiro256 rng(5);
  for (std::size_t s = 0; s < sources; ++s) {
    sched.schedule(s, rng.uniform01() * 100.0, static_cast<int>(s % 3));
  }
  for (auto _ : state) {
    const auto next = sched.pop();
    sched.schedule(next.source, next.time + 1.0 + rng.uniform01() * 10.0,
                   static_cast<int>(next.source % 3));
    benchmark::DoNotOptimize(next.time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedSchedulerCycle)->Arg(9)->Arg(33);

void BM_RingBufferPushPop(benchmark::State& state) {
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  util::RingBuffer<std::uint32_t> buffer;
  buffer.reserve(burst);
  std::uint32_t value = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < burst; ++i) buffer.push_back(value++);
    while (!buffer.empty()) benchmark::DoNotOptimize(buffer.pop_front());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_RingBufferPushPop)->Arg(128)->Arg(4096);

void BM_CensoredPoissonSampleN(benchmark::State& state) {
  // Batched counterpart of BM_CensoredPoissonSample: one virtual call per
  // SIMD-width block instead of one per item.
  const dist::CensoredPoissonGain gain(1.92, 16);
  dist::Xoshiro256 rng(3);
  dist::OutputCount draws[128];
  for (auto _ : state) {
    gain.sample_n(rng, draws, 128);
    benchmark::DoNotOptimize(draws[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_CensoredPoissonSampleN);

void BM_BernoulliSampleN(benchmark::State& state) {
  const dist::BernoulliGain gain(0.379);
  dist::Xoshiro256 rng(4);
  dist::OutputCount draws[128];
  for (auto _ : state) {
    gain.sample_n(rng, draws, 128);
    benchmark::DoNotOptimize(draws[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_BernoulliSampleN);

void BM_WaterfillSolve(benchmark::State& state) {
  const auto pipeline = blast::canonical_blast_pipeline();
  const auto b = blast::paper_calibrated_b();
  for (auto _ : state) {
    auto solved = core::waterfill_solve(pipeline, b, 100.0, 3.5e5);
    benchmark::DoNotOptimize(solved.ok());
  }
}
BENCHMARK(BM_WaterfillSolve);

}  // namespace

BENCHMARK_MAIN();
