// Ablation (paper Section 7 future work): how does the enforced-waits
// schedule — calibrated under the paper's fixed-rate arrival model — behave
// when arrivals are Poisson or bursty (MMPP) at the same mean rate?
//
// Expectation: the analytic active fraction is rate-driven and barely moves,
// but deadline misses grow with arrival burstiness because the b_i were
// calibrated against fixed-rate transients only.
#include "bench_common.hpp"

#include "arrivals/arrival_process.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/trial_runner.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("trials", 30, "trials per arrival model");
  cli.add_int("inputs", 20000, "inputs per trial");
  cli.add_double("tau0", 20.0, "mean inter-arrival time");
  cli.add_double("deadline", 185000.0, "deadline D");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_ablation_arrivals — arrival-model robustness");

  bench::print_banner("Ablation: arrival-process robustness of enforced waits");
  const double tau0 = cli.get_double("tau0");
  const double deadline = cli.get_double("deadline");
  const std::uint64_t trials =
      cli.get_flag("full") ? 100 : static_cast<std::uint64_t>(cli.get_int("trials"));
  const ItemCount inputs = cli.get_flag("full")
                               ? 50000
                               : static_cast<ItemCount>(cli.get_int("inputs"));
  const std::uint64_t base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(pipeline,
                                             bench::paper_enforced_config());
  auto solved = strategy.solve(tau0, deadline);
  if (!solved.ok()) {
    std::cerr << "configuration infeasible: " << solved.error().message
              << std::endl;
    return 2;
  }
  const auto intervals = solved.value().firing_intervals;
  std::cout << "schedule optimized for fixed-rate arrivals at tau0 = "
            << bench::fmt(tau0, 1) << ", D = " << bench::fmt(deadline, 0)
            << " (predicted active fraction "
            << bench::fmt(solved.value().predicted_active_fraction, 4) << ")\n\n";

  util::ThreadPool pool;

  struct Model {
    std::string label;
    arrivals::ArrivalFactory factory;
  };
  // Rescale a bursty configuration so its long-run mean gap is exactly tau0,
  // keeping the comparison rate-for-rate fair.
  auto normalized = [tau0](arrivals::BurstyArrivals::Config config) {
    const double mean = arrivals::BurstyArrivals(config).mean_interarrival();
    config.tau_quiet *= tau0 / mean;
    config.tau_burst *= tau0 / mean;
    return config;
  };
  arrivals::BurstyArrivals::Config mild_bursts;
  mild_bursts.tau_quiet = tau0 * 1.3;
  mild_bursts.tau_burst = tau0 * 0.4;
  mild_bursts.mean_quiet_dwell = 40.0 * tau0;
  mild_bursts.mean_burst_dwell = 12.0 * tau0;
  mild_bursts = normalized(mild_bursts);
  arrivals::BurstyArrivals::Config hard_bursts;
  hard_bursts.tau_quiet = tau0 * 2.0;
  hard_bursts.tau_burst = tau0 * 0.2;
  hard_bursts.mean_quiet_dwell = 200.0 * tau0;
  hard_bursts.mean_burst_dwell = 40.0 * tau0;
  hard_bursts = normalized(hard_bursts);

  const std::vector<Model> models = {
      {"fixed-rate (paper)", arrivals::fixed_rate_factory(tau0)},
      {"poisson", arrivals::poisson_factory(tau0)},
      {"bursty (mild)", arrivals::bursty_factory(mild_bursts)},
      {"bursty (hard)", arrivals::bursty_factory(hard_bursts)},
  };

  util::TextTable table({"arrival model", "mean gap", "miss-free trials",
                         "mean miss frac", "mean active frac", "p99 latency",
                         "max latency (worst trial)"});
  std::ofstream csv_out = bench::open_csv(cli);
  util::CsvWriter csv(csv_out);
  if (csv_out.is_open()) {
    csv.header({"model", "mean_gap", "miss_free_fraction", "mean_miss_fraction",
                "mean_active_fraction", "p99_latency", "max_latency"});
  }

  std::vector<double> miss_fracs;
  for (std::size_t m = 0; m < models.size(); ++m) {
    const Model& model = models[m];
    auto trial_fn = [&, m](std::uint64_t trial) {
      auto arrival_process = model.factory();
      sim::EnforcedSimConfig config;
      config.input_count = inputs;
      config.deadline = deadline;
      config.seed = dist::derive_seed({base_seed, 0xAB1A7E, m, trial});
      return sim::simulate_enforced_waits(pipeline, intervals, *arrival_process,
                                          config);
    };
    const auto summary = sim::run_trials(trial_fn, trials, &pool);
    miss_fracs.push_back(summary.miss_fraction.mean());
    const double mean_gap = model.factory()->mean_interarrival();
    table.add_row({model.label, bench::fmt(mean_gap, 2),
                   bench::fmt(summary.miss_free_fraction(), 3),
                   bench::fmt(summary.miss_fraction.mean(), 5),
                   bench::fmt(summary.active_fraction.mean(), 4),
                   bench::fmt(summary.latency_p99.mean(), 0),
                   bench::fmt(summary.latency_max.max(), 0)});
    if (csv_out.is_open()) {
      csv.row({model.label, bench::fmt(mean_gap, 4),
               bench::fmt(summary.miss_free_fraction(), 5),
               bench::fmt(summary.miss_fraction.mean(), 6),
               bench::fmt(summary.active_fraction.mean(), 5),
               bench::fmt(summary.latency_p99.mean(), 1),
               bench::fmt(summary.latency_max.max(), 1)});
    }
  }
  table.print(std::cout);

  const bool monotone_degradation = miss_fracs.back() >= miss_fracs.front();
  std::cout << "\nburstier arrivals never reduce misses: "
            << (monotone_degradation ? "yes" : "NO") << std::endl;
  return monotone_degradation ? 0 : 1;
}
