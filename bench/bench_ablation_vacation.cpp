// Ablation (paper Section 4 parenthetical): the paper charges firings with
// empty input vectors as active time "for ease of analysis, though in
// practice they could be treated as a vacation for the node". This harness
// quantifies what the alternative accounting would save, across arrival
// rates: the saving is largest where queues are often empty (slow arrivals /
// strongly filtering downstream stages) and vanishes when every firing has
// work.
#include "bench_common.hpp"

#include "arrivals/arrival_process.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "util/csv.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("inputs", 30000, "inputs per run");
  cli.add_double("deadline", 185000.0, "deadline D");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_ablation_vacation — empty-firing accounting");

  bench::print_banner("Ablation: charging vs skipping empty firings");
  const double deadline = cli.get_double("deadline");
  const ItemCount inputs = cli.get_flag("full")
                               ? 50000
                               : static_cast<ItemCount>(cli.get_int("inputs"));
  const std::uint64_t base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(pipeline,
                                             bench::paper_enforced_config());

  util::TextTable table({"tau0", "predicted AF", "measured AF (charged)",
                         "measured AF (vacation)", "saving", "empty firings %"});
  std::ofstream csv_out = bench::open_csv(cli);
  util::CsvWriter csv(csv_out);
  if (csv_out.is_open()) {
    csv.header({"tau0", "predicted", "charged", "vacation", "saving",
                "empty_firing_fraction"});
  }

  bool savings_nonnegative = true;
  for (double tau0 : {3.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    auto solved = strategy.solve(tau0, deadline);
    if (!solved.ok()) continue;
    const auto& intervals = solved.value().firing_intervals;

    auto run = [&](bool charge) {
      arrivals::FixedRateArrivals arrival_process(tau0);
      sim::EnforcedSimConfig config;
      config.input_count = inputs;
      config.deadline = deadline;
      config.charge_empty_firings = charge;
      config.seed = dist::derive_seed(
          {base_seed, 0xFACA7105, static_cast<std::uint64_t>(tau0 * 100)});
      return sim::simulate_enforced_waits(pipeline, intervals, arrival_process,
                                          config);
    };
    const auto charged = run(true);
    const auto vacation = run(false);

    std::uint64_t firings = 0;
    std::uint64_t empty = 0;
    for (const auto& node : charged.nodes) {
      firings += node.firings;
      empty += node.empty_firings;
    }
    const double saving =
        charged.active_fraction() - vacation.active_fraction();
    savings_nonnegative &= saving >= -1e-9;
    table.add_row({bench::fmt(tau0, 1),
                   bench::fmt(solved.value().predicted_active_fraction, 4),
                   bench::fmt(charged.active_fraction(), 4),
                   bench::fmt(vacation.active_fraction(), 4),
                   bench::fmt(saving, 4),
                   bench::fmt(100.0 * static_cast<double>(empty) /
                                  static_cast<double>(firings),
                              1)});
    if (csv_out.is_open()) {
      csv.row({bench::fmt(tau0, 3),
               bench::fmt(solved.value().predicted_active_fraction, 6),
               bench::fmt(charged.active_fraction(), 6),
               bench::fmt(vacation.active_fraction(), 6),
               bench::fmt(saving, 6),
               bench::fmt(static_cast<double>(empty) /
                              static_cast<double>(firings),
                          6)});
    }
  }
  table.print(std::cout);
  std::cout << "\nvacation accounting never increases active fraction: "
            << (savings_nonnegative ? "yes" : "NO") << std::endl;
  return savings_nonnegative ? 0 : 1;
}
