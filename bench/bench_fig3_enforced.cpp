// Reproduces the enforced-waits half of paper Figure 3: optimized active
// fraction over the (tau0, D) parameter space, tau0 in [1, 100] cycles and
// D in [2e4, 3.5e5] cycles, with the calibrated b = {1, 3, 9, 6}.
//
// Expected shape (paper Section 6.3): active fraction scales inversely with
// D ("deadline slack" is converted into waits) and is insensitive to tau0
// except at the smallest values, where the arrival-rate constraint binds or
// the pipeline is infeasible outright.
#include "bench_common.hpp"

#include "core/report.hpp"
#include "core/sweep.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  cli.add_int("tau0-points", 12, "grid points on the tau0 axis");
  cli.add_int("d-points", 8, "grid points on the deadline axis");
  bench::parse_or_exit(cli, argc, argv,
                       "bench_fig3_enforced — Figure 3 (enforced waits)");

  const std::size_t tau0_points = cli.get_flag("full")
                                      ? 34
                                      : static_cast<std::size_t>(cli.get_int("tau0-points"));
  const std::size_t d_points = cli.get_flag("full")
                                   ? 12
                                   : static_cast<std::size_t>(cli.get_int("d-points"));

  bench::print_banner("Figure 3 (left): enforced-waits active fraction surface");
  const auto pipeline = blast::canonical_blast_pipeline();
  util::ThreadPool pool;
  util::Stopwatch watch;
  const auto surface =
      core::run_sweep(pipeline, bench::paper_enforced_config(), {},
                      core::SweepGrid::paper_ranges(tau0_points, d_points), &pool);

  // Table: rows = tau0, columns = D; "--" marks infeasible cells.
  std::vector<std::string> headers{"tau0 \\ D"};
  for (Cycles d : surface.grid().deadline_values) {
    headers.push_back(bench::fmt(d, 0));
  }
  util::TextTable table(headers);
  for (std::size_t ti = 0; ti < surface.grid().tau0_values.size(); ++ti) {
    std::vector<std::string> row{bench::fmt(surface.grid().tau0_values[ti], 1)};
    for (std::size_t di = 0; di < surface.grid().deadline_values.size(); ++di) {
      const auto& cell = surface.cell(ti, di);
      row.push_back(cell.enforced_feasible
                        ? bench::fmt(cell.enforced_active_fraction, 4)
                        : "--");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(" << surface.grid().cell_count() << " cells in "
            << bench::fmt(watch.elapsed_seconds(), 2) << " s; '--' = infeasible)\n";

  // Shape assertions matching the paper's qualitative claims.
  const auto& grid = surface.grid();
  const std::size_t last_t = grid.tau0_values.size() - 1;
  const std::size_t last_d = grid.deadline_values.size() - 1;
  bool decreases_with_d = true;
  for (std::size_t di = 1; di <= last_d; ++di) {
    const auto& prev = surface.cell(last_t, di - 1);
    const auto& cur = surface.cell(last_t, di);
    if (prev.enforced_feasible && cur.enforced_feasible &&
        cur.enforced_active_fraction > prev.enforced_active_fraction + 1e-9) {
      decreases_with_d = false;
    }
  }
  const auto& mid_d_lo_t = surface.cell(last_t / 2, last_d);
  const auto& mid_d_hi_t = surface.cell(last_t, last_d);
  const bool tau0_insensitive =
      mid_d_lo_t.enforced_feasible && mid_d_hi_t.enforced_feasible &&
      std::abs(mid_d_lo_t.enforced_active_fraction -
               mid_d_hi_t.enforced_active_fraction) < 0.1;
  std::cout << "active fraction decreases with D:            "
            << (decreases_with_d ? "yes" : "NO") << "\n"
            << "insensitive to tau0 away from the frontier:  "
            << (tau0_insensitive ? "yes" : "NO") << std::endl;

  if (auto csv_out = bench::open_csv(cli); csv_out.is_open()) {
    surface.write_csv(csv_out);
  }
  if (auto json_out = bench::open_json(cli); json_out.is_open()) {
    core::write_surface_json(json_out, surface);
  }
  return (decreases_with_d && tau0_insensitive) ? 0 : 1;
}
