// Google-benchmark suite for the vector-wide pipeline executor
// (runtime/pipeline_executor.hpp): end-to-end mini-BLAST runs comparing the
// seed per-item engine (ReferenceExecutor), the adapter path, and the typed
// batch path; the task-parallel engine's thread-scaling curve
// (BM_ExecutorParallel) and the counter false-sharing micro
// (BM_MetricsContention); plus per-ISA kernel microbenchmarks for the
// vectorized BLAST and cascade stage bodies: each micro emits one row per
// SimdLevel (scalar, neon, avx2, avx512), skipping levels this binary/host
// cannot run.
// scripts/run_bench_runtime.sh runs this suite, writes BENCH_runtime.json at
// the repo root, and prints the per-ISA speedup table.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "blast/batch_stages.hpp"
#include "blast/measure.hpp"
#include "blast/sequence.hpp"
#include "blast/simd_kernels.hpp"
#include "blast/stages.hpp"
#include "cascade/detector.hpp"
#include "cascade/features.hpp"
#include "cascade/image.hpp"
#include "cascade/simd_kernels.hpp"
#include "core/enforced_waits.hpp"
#include "device/dispatch.hpp"
#include "dist/rng.hpp"
#include "runtime/pipeline_executor.hpp"
#include "runtime/reference_executor.hpp"
#include "sdf/pipeline.hpp"

namespace {

using namespace ripple;
using device::SimdLevel;

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    device::set_simd_override(level);
  }
  ~ScopedSimdLevel() { device::set_simd_override(std::nullopt); }
};

/// Shared mini-BLAST workload, built once: the same sequences, measured
/// pipeline spec, and enforced-waits schedule the golden tests use
/// (tests/test_runtime_batch.cpp), at a bench-sized window count.
struct BlastWorkload {
  blast::SequencePair pair;
  blast::BlastStages::Config stage_config;
  blast::BlastStages stages;
  sdf::PipelineSpec spec;
  runtime::ExecutorConfig config;
  std::size_t windows = 12000;
  std::vector<runtime::Item> item_inputs;
  runtime::BatchInputs batch_inputs;

  static const BlastWorkload& instance() {
    static BlastWorkload workload;
    return workload;
  }

 private:
  BlastWorkload()
      : pair(make_pair()), stages(pair, stage_config), spec(make_spec()),
        batch_inputs(blast::make_batch_inputs(stages, windows)) {
    core::EnforcedWaitsStrategy strategy(
        spec, core::EnforcedWaitsConfig{{2.0, 4.0, 9.0, 6.0}});
    const double tau0 = spec.mean_service_per_input() * 4.0;
    const double deadline = 600.0 * spec.service_time(3);
    auto schedule = strategy.solve(tau0, deadline);
    config.firing_intervals = schedule.value().firing_intervals;
    config.input_gap = tau0;
    config.deadline = deadline;
    config.max_collected_results = 256;
    item_inputs.reserve(windows);
    for (std::size_t w = 0; w < windows; ++w) {
      item_inputs.emplace_back(
          static_cast<std::uint32_t>(w % stages.input_count()));
    }
  }

  static blast::SequencePair make_pair() {
    dist::Xoshiro256 rng(404);
    blast::SequencePairConfig pair_config;
    pair_config.subject_length = 1 << 15;
    pair_config.query_length = 1 << 13;
    return blast::make_sequence_pair(pair_config, rng);
  }

  sdf::PipelineSpec make_spec() {
    blast::MeasureConfig measure_config;
    measure_config.window_count = 12000;
    const auto measurement = blast::measure_pipeline(stages, measure_config);
    return measurement.to_pipeline_spec(128).take();
  }
};

void report_window_rate(benchmark::State& state, std::size_t windows) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(windows));
  state.counters["windows_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(windows),
      benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------------------------
// End-to-end mini-BLAST: one run = 12000 windows through all four stages
// under the virtual-time executor.
// ---------------------------------------------------------------------------

/// Seed per-item engine: one std::any at a time through std::function stages.
void BM_MiniBlastEndToEnd_Reference(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  const runtime::ReferenceExecutor engine(w.spec,
                                          blast::make_item_stages(w.stages));
  for (auto _ : state) {
    auto result = engine.run(w.item_inputs, w.config);
    benchmark::DoNotOptimize(result.ok());
  }
  report_window_rate(state, w.windows);
}
BENCHMARK(BM_MiniBlastEndToEnd_Reference)->Unit(benchmark::kMillisecond);

/// Vector engine fed per-item StageFns through the adapter (std::any lanes).
void BM_MiniBlastEndToEnd_Adapter(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  const runtime::PipelineExecutor engine(w.spec,
                                         blast::make_item_stages(w.stages));
  for (auto _ : state) {
    auto result = engine.run(w.item_inputs, w.config);
    benchmark::DoNotOptimize(result.ok());
  }
  report_window_rate(state, w.windows);
}
BENCHMARK(BM_MiniBlastEndToEnd_Adapter)->Unit(benchmark::kMillisecond);

/// Typed batch path with dispatch pinned to the scalar kernel bodies:
/// isolates the SoA-batching win from the instruction-set win.
void BM_MiniBlastEndToEnd_BatchScalar(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  const runtime::PipelineExecutor engine(w.spec,
                                         blast::make_batch_stages(w.stages));
  ScopedSimdLevel pin(SimdLevel::kScalar);
  for (auto _ : state) {
    auto result = engine.run_batch(w.batch_inputs, w.config);
    benchmark::DoNotOptimize(result.ok());
  }
  report_window_rate(state, w.windows);
}
BENCHMARK(BM_MiniBlastEndToEnd_BatchScalar)->Unit(benchmark::kMillisecond);

/// Typed batch path at the host's best dispatch level (AVX-512 or AVX2 where
/// the build and CPU allow; identical to BatchScalar on forced-scalar
/// builds). The label records which level the registry resolved.
void BM_MiniBlastEndToEnd_BatchSimd(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  const runtime::PipelineExecutor engine(w.spec,
                                         blast::make_batch_stages(w.stages));
  state.SetLabel(device::to_string(device::active_simd_level()));
  for (auto _ : state) {
    auto result = engine.run_batch(w.batch_inputs, w.config);
    benchmark::DoNotOptimize(result.ok());
  }
  report_window_rate(state, w.windows);
}
BENCHMARK(BM_MiniBlastEndToEnd_BatchSimd)->Unit(benchmark::kMillisecond);

/// Task-parallel engine over the same typed mini-BLAST workload, one row per
/// thread count. /1 is the sequential engine (the dispatch short-circuit), so
/// the /N vs /1 ratio is the intra-shard scaling curve
/// scripts/run_bench_runtime.sh prints and gates on. The engine object
/// persists across iterations, so the pool is warm after the first run —
/// exactly the shard-worker steady state.
void BM_ExecutorParallel(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  const runtime::PipelineExecutor engine(w.spec,
                                         blast::make_batch_stages(w.stages));
  runtime::ExecutorConfig config = w.config;
  config.exec_threads = static_cast<std::size_t>(state.range(0));
  state.SetLabel("threads=" + std::to_string(config.exec_threads));
  for (auto _ : state) {
    auto result = engine.run_batch(w.batch_inputs, config);
    benchmark::DoNotOptimize(result.ok());
  }
  report_window_rate(state, w.windows);
}
BENCHMARK(BM_ExecutorParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Counter false sharing: why sim::NodeMetrics and AdmissionLedger::Slot are
// alignas(64).
// ---------------------------------------------------------------------------

/// Packed layout: adjacent threads' counter blocks share cache lines, the
/// exact layout NodeMetrics had before the alignment fix.
struct PackedCounters {
  std::uint64_t firings = 0;
  std::uint64_t items = 0;
};
struct alignas(64) AlignedCounters {
  std::uint64_t firings = 0;
  std::uint64_t items = 0;
};

/// Each benchmark thread hammers its own slot of a shared contiguous array —
/// the access pattern of per-node metrics under shard workers (and the
/// admission ledger's per-shard slots). arg 0 = packed, arg 1 = cache-line
/// aligned; the gap between the two rows is the cross-core line bouncing the
/// alignas(64) on sim::NodeMetrics / AdmissionLedger::Slot removes.
template <typename Counters>
void hammer_counters(benchmark::State& state, Counters* slots) {
  Counters& mine = slots[state.thread_index()];
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      mine.firings += 1;
      mine.items += static_cast<std::uint64_t>(i);
      benchmark::DoNotOptimize(mine);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_MetricsContention(benchmark::State& state) {
  static PackedCounters packed[16];
  static AlignedCounters aligned[16];
  state.SetLabel(state.range(0) == 0 ? "packed" : "alignas64");
  if (state.range(0) == 0) {
    hammer_counters(state, packed);
  } else {
    hammer_counters(state, aligned);
  }
}
BENCHMARK(BM_MetricsContention)
    ->Arg(0)
    ->Arg(1)
    ->Threads(4)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Stage-kernel micros: one call = one dense batch, no executor around it.
// DenseRange(0, 3) pins one row per ISA: 0 scalar, 1 neon, 2 avx2, 3 avx512.
// ---------------------------------------------------------------------------

/// Pins dispatch to the exact SimdLevel named by Arg (0..3) and labels the
/// row with it. Returns false after flagging the run skipped when this
/// binary/host cannot execute that level: the registry's min-clamp would
/// otherwise silently re-measure a lower ISA under the wrong row name.
/// scripts/run_bench_runtime.sh drops skipped rows from the summary, so a
/// host missing an ISA simply shows '-' for that column.
bool pin_exact_level(benchmark::State& state,
                     std::optional<ScopedSimdLevel>& pin) {
  const auto want = static_cast<SimdLevel>(state.range(0));
  if (!device::level_supported(want)) {
    state.SkipWithError(
        (device::to_string(want) + std::string(" not supported here")).c_str());
    return false;
  }
  pin.emplace(want);
  state.SetLabel(device::to_string(want));
  return true;
}

/// Pure executor machinery: the same spec, schedule, and 12000 inputs, but
/// four pass-through typed stages with zero compute — isolates the
/// virtual-time engine (event loop, queues, compaction, accounting) from the
/// stage kernels.
void BM_ExecutorMachinery_Batch(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  std::vector<runtime::BatchStage> stages(4);
  const std::uint8_t arity[4][2] = {{1, 1}, {1, 2}, {2, 3}, {3, 3}};
  for (std::size_t s = 0; s < 4; ++s) {
    stages[s].input_fields = arity[s][0];
    stages[s].output_fields = arity[s][1];
    stages[s].fn = [](const runtime::LaneView& in,
                      runtime::BatchEmitter& out) {
      for (std::size_t lane = 0; lane < in.lanes; ++lane) {
        out.emit(lane, in.field[0] != nullptr ? in.field[0][lane] : 0,
                 in.field[1] != nullptr ? in.field[1][lane] : 0,
                 in.field[2] != nullptr ? in.field[2][lane] : 0);
      }
    };
  }
  const runtime::PipelineExecutor engine(w.spec, std::move(stages));
  for (auto _ : state) {
    auto result = engine.run_batch(w.batch_inputs, w.config);
    benchmark::DoNotOptimize(result.ok());
  }
  report_window_rate(state, w.windows);
}
BENCHMARK(BM_ExecutorMachinery_Batch)->Unit(benchmark::kMillisecond);

/// Same machinery probe through the seed per-item engine, for the overhead
/// ratio the SoA path is buying back.
void BM_ExecutorMachinery_Reference(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  std::vector<runtime::StageFn> fns;
  for (std::size_t s = 0; s < 4; ++s) {
    fns.push_back([](runtime::Item&& input,
                     std::vector<runtime::Item>& outputs) {
      outputs.push_back(std::move(input));
    });
  }
  const runtime::ReferenceExecutor engine(w.spec, std::move(fns));
  for (auto _ : state) {
    auto result = engine.run(w.item_inputs, w.config);
    benchmark::DoNotOptimize(result.ok());
  }
  report_window_rate(state, w.windows);
}
BENCHMARK(BM_ExecutorMachinery_Reference)->Unit(benchmark::kMillisecond);

void BM_SeedFilterKernel(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  std::optional<ScopedSimdLevel> pin;
  if (!pin_exact_level(state, pin)) return;
  std::vector<std::uint32_t> pos(w.windows);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = static_cast<std::uint32_t>(i % w.stages.input_count());
  }
  runtime::BatchEmitter out;
  for (auto _ : state) {
    out.reset(pos.size(), 1, false);
    blast::simd::seed_filter_batch(w.stages, pos.data(), pos.size(), out);
    benchmark::DoNotOptimize(out.total());
  }
  report_window_rate(state, pos.size());
}
BENCHMARK(BM_SeedFilterKernel)->DenseRange(0, 3);

/// Upstream products shared by the extension micros: seed-filter survivors
/// and their expanded (subject, query) hit pairs for the bench workload.
struct ExtensionInputs {
  std::vector<std::uint32_t> sp;
  std::vector<std::uint32_t> qp;

  static const ExtensionInputs& instance() {
    static ExtensionInputs inputs;
    return inputs;
  }

 private:
  ExtensionInputs() {
    const BlastWorkload& w = BlastWorkload::instance();
    std::vector<std::uint32_t> pos(w.windows);
    for (std::size_t i = 0; i < pos.size(); ++i) {
      pos[i] = static_cast<std::uint32_t>(i % w.stages.input_count());
    }
    runtime::BatchEmitter seeds;
    seeds.reset(pos.size(), 1, false);
    blast::simd::seed_filter_batch(w.stages, pos.data(), pos.size(), seeds);
    runtime::BatchEmitter hits;
    hits.reset(seeds.total(), 2, false);
    blast::simd::expand_seed_batch(w.stages, seeds.column(0), seeds.total(),
                                   hits);
    sp.assign(hits.column(0), hits.column(0) + hits.total());
    qp.assign(hits.column(1), hits.column(1) + hits.total());
  }
};

void BM_ExpandSeedKernel(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  std::vector<std::uint32_t> pos(w.windows);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = static_cast<std::uint32_t>(i % w.stages.input_count());
  }
  runtime::BatchEmitter seeds;
  seeds.reset(pos.size(), 1, false);
  blast::simd::seed_filter_batch(w.stages, pos.data(), pos.size(), seeds);
  const std::vector<std::uint32_t> survivors(
      seeds.column(0), seeds.column(0) + seeds.total());

  std::optional<ScopedSimdLevel> pin;
  if (!pin_exact_level(state, pin)) return;
  runtime::BatchEmitter out;
  for (auto _ : state) {
    out.reset(survivors.size(), 2, false);
    blast::simd::expand_seed_batch(w.stages, survivors.data(),
                                   survivors.size(), out);
    benchmark::DoNotOptimize(out.total());
  }
  report_window_rate(state, survivors.size());
}
BENCHMARK(BM_ExpandSeedKernel)->DenseRange(0, 3);

void BM_UngappedExtendKernel(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  const std::vector<std::uint32_t>& sp = ExtensionInputs::instance().sp;
  const std::vector<std::uint32_t>& qp = ExtensionInputs::instance().qp;

  std::optional<ScopedSimdLevel> pin;
  if (!pin_exact_level(state, pin)) return;
  runtime::BatchEmitter out;
  for (auto _ : state) {
    out.reset(sp.size(), 3, false);
    blast::simd::ungapped_extend_batch(w.stages, sp.data(), qp.data(),
                                       sp.size(), out);
    benchmark::DoNotOptimize(out.total());
  }
  report_window_rate(state, sp.size());
}
BENCHMARK(BM_UngappedExtendKernel)->DenseRange(0, 3);

/// Sink stage: banded gapped alignment of the ungapped survivors — the
/// dominant kernel of the end-to-end time budget. The AVX2 path runs 8
/// alignments lane-parallel over band-relative SoA rows.
void BM_GappedExtendKernel(benchmark::State& state) {
  const BlastWorkload& w = BlastWorkload::instance();
  const ExtensionInputs& hits = ExtensionInputs::instance();
  runtime::BatchEmitter extended;
  extended.reset(hits.sp.size(), 3, false);
  blast::simd::ungapped_extend_batch(w.stages, hits.sp.data(), hits.qp.data(),
                                     hits.sp.size(), extended);
  const std::vector<std::uint32_t> sp(extended.column(0),
                                      extended.column(0) + extended.total());
  const std::vector<std::uint32_t> qp(extended.column(1),
                                      extended.column(1) + extended.total());
  const std::vector<std::uint32_t> score(extended.column(2),
                                         extended.column(2) + extended.total());

  std::optional<ScopedSimdLevel> pin;
  if (!pin_exact_level(state, pin)) return;
  runtime::BatchEmitter out;
  for (auto _ : state) {
    out.reset(sp.size(), 3, false);
    blast::simd::gapped_extend_batch(w.stages, sp.data(), qp.data(),
                                     score.data(), sp.size(), out);
    benchmark::DoNotOptimize(out.total());
  }
  report_window_rate(state, sp.size());
}
BENCHMARK(BM_GappedExtendKernel)->DenseRange(0, 3);

void BM_HaarResponseKernel(benchmark::State& state) {
  static const cascade::Scene scene = [] {
    dist::Xoshiro256 rng(11);
    cascade::SceneConfig config;
    config.width = 512;
    config.height = 512;
    config.object_count = 8;
    return cascade::make_scene(config, rng);
  }();
  static const cascade::IntegralImage integral(scene.image);

  dist::Xoshiro256 rng(12);
  const std::size_t n = 8192;
  std::vector<std::uint32_t> wx(n), wy(n);
  for (std::size_t i = 0; i < n; ++i) {
    wx[i] = static_cast<std::uint32_t>(rng.uniform_below(512 - 24 + 1));
    wy[i] = static_cast<std::uint32_t>(rng.uniform_below(512 - 24 + 1));
  }
  const cascade::HaarFeature feature = cascade::random_feature(24, rng);
  std::vector<std::int64_t> responses(n);

  std::optional<ScopedSimdLevel> pin;
  if (!pin_exact_level(state, pin)) return;
  for (auto _ : state) {
    cascade::simd::haar_response_batch(feature, integral, wx.data(), wy.data(),
                                       n, responses.data());
    benchmark::DoNotOptimize(responses.data());
  }
  report_window_rate(state, n);
}
BENCHMARK(BM_HaarResponseKernel)->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();
