// Google-benchmark suite for the DAG executor (src/graph): the branching
// mini-BLAST scenario against its duplicated-linear-chains workaround (the
// headline gate scripts/run_bench_graph.sh enforces: the DAG runs the shared
// seed-probe prefix once, the chains run it once per branch, so the DAG must
// win by >= 1.3x), the telemetry fan-in scenario exercising tee +
// synchronizer + merge, per-item reference-engine rows for context, and the
// DAG engine's thread-scaling curve on the branching workload.
// scripts/run_bench_graph.sh runs this suite, writes BENCH_graph.json at the
// repo root, and prints the gate verdict.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "graph/graph_executor.hpp"
#include "graph/scenarios.hpp"
#include "util/assert.hpp"

namespace {

using namespace ripple;
using graph::GraphExecutor;
using graph::GraphExecutorConfig;
using graph::GraphScenario;

constexpr std::size_t kInputs = 4000;

/// Self-timed schedule: every node fires at 1.25x its minimal interval and
/// inputs arrive at the source's own cadence, so virtual time never throttles
/// the host-time stage work being measured.
GraphExecutorConfig config_for(const graph::GraphSpec& spec) {
  GraphExecutorConfig config;
  config.firing_intervals = spec.minimal_firing_intervals();
  for (Cycles& x : config.firing_intervals) {
    x *= 1.25;
  }
  config.input_gap = config.firing_intervals.front();
  config.max_collected_results = 256;
  return config;
}

void report_input_rate(benchmark::State& state, std::size_t inputs) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs));
  state.counters["inputs_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(inputs),
      benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------------------------
// Branching mini-BLAST: DAG vs the duplicated-chain workaround.
// ---------------------------------------------------------------------------

/// The DAG: seed_probe + branch run once, the tee replicates survivors into
/// both extension variants, rescore merges elementwise.
void BM_GraphBranchingBlast(benchmark::State& state) {
  const GraphScenario scenario = graph::branching_blast_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  const GraphExecutorConfig config = config_for(scenario.graph);
  const std::vector<graph::Item> inputs = graph::scenario_inputs(kInputs);
  for (auto _ : state) {
    auto run = executor.run(inputs, config);
    RIPPLE_REQUIRE(run.ok(), "branching blast run must succeed");
    benchmark::DoNotOptimize(run.value().base.sink_outputs);
  }
  report_input_rate(state, kInputs);
}
BENCHMARK(BM_GraphBranchingBlast)->Unit(benchmark::kMillisecond);

/// The linear workaround the DAG replaces: one chain per extension variant,
/// each re-running the seed_probe + branch prefix. One iteration = both
/// chains over the same inputs (their combined cost is what a linear-only
/// runtime would pay).
void BM_DuplicatedChains(benchmark::State& state) {
  const std::vector<GraphScenario> chains = graph::duplicated_chain_baseline();
  std::vector<std::unique_ptr<GraphExecutor>> executors;
  std::vector<GraphExecutorConfig> configs;
  executors.reserve(chains.size());
  for (const GraphScenario& chain : chains) {
    executors.push_back(
        std::make_unique<GraphExecutor>(chain.graph, chain.stages));
    configs.push_back(config_for(chain.graph));
  }
  const std::vector<graph::Item> inputs = graph::scenario_inputs(kInputs);
  for (auto _ : state) {
    for (std::size_t c = 0; c < executors.size(); ++c) {
      auto run = executors[c]->run(inputs, configs[c]);
      RIPPLE_REQUIRE(run.ok(), "duplicated chain run must succeed");
      benchmark::DoNotOptimize(run.value().base.sink_outputs);
    }
  }
  report_input_rate(state, kInputs);
}
BENCHMARK(BM_DuplicatedChains)->Unit(benchmark::kMillisecond);

/// Per-item oracle on the DAG, for context: the vector-wide engine's win
/// over one-item-at-a-time execution composes with the topology win.
void BM_GraphBranchingBlast_Reference(benchmark::State& state) {
  const GraphScenario scenario = graph::branching_blast_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  const GraphExecutorConfig config = config_for(scenario.graph);
  const std::vector<graph::Item> inputs = graph::scenario_inputs(kInputs);
  for (auto _ : state) {
    auto run = executor.run_reference(inputs, config);
    RIPPLE_REQUIRE(run.ok(), "branching blast reference must succeed");
    benchmark::DoNotOptimize(run.value().base.sink_outputs);
  }
  report_input_rate(state, kInputs);
}
BENCHMARK(BM_GraphBranchingBlast_Reference)->Unit(benchmark::kMillisecond);

/// DAG engine thread scaling on the branching workload (same-timestamp
/// firing waves execute on a pool; results stay bit-identical).
void BM_GraphParallel(benchmark::State& state) {
  const GraphScenario scenario = graph::branching_blast_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  GraphExecutorConfig config = config_for(scenario.graph);
  config.exec_threads = static_cast<std::size_t>(state.range(0));
  const std::vector<graph::Item> inputs = graph::scenario_inputs(kInputs);
  for (auto _ : state) {
    auto run = executor.run(inputs, config);
    RIPPLE_REQUIRE(run.ok(), "parallel branching blast run must succeed");
    benchmark::DoNotOptimize(run.value().base.sink_outputs);
  }
  report_input_rate(state, kInputs);
}
BENCHMARK(BM_GraphParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Telemetry fan-in: tee x3 -> parsers -> synchronizer -> merge.
// ---------------------------------------------------------------------------

void BM_TelemetryFanin(benchmark::State& state) {
  const GraphScenario scenario = graph::telemetry_fanin_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  const GraphExecutorConfig config = config_for(scenario.graph);
  const std::vector<graph::Item> inputs = graph::scenario_inputs(kInputs, 7);
  for (auto _ : state) {
    auto run = executor.run(inputs, config);
    RIPPLE_REQUIRE(run.ok(), "telemetry fan-in run must succeed");
    benchmark::DoNotOptimize(run.value().base.sink_outputs);
  }
  report_input_rate(state, kInputs);
}
BENCHMARK(BM_TelemetryFanin)->Unit(benchmark::kMillisecond);

void BM_TelemetryFanin_Reference(benchmark::State& state) {
  const GraphScenario scenario = graph::telemetry_fanin_scenario();
  const GraphExecutor executor(scenario.graph, scenario.stages);
  const GraphExecutorConfig config = config_for(scenario.graph);
  const std::vector<graph::Item> inputs = graph::scenario_inputs(kInputs, 7);
  for (auto _ : state) {
    auto run = executor.run_reference(inputs, config);
    RIPPLE_REQUIRE(run.ok(), "telemetry fan-in reference must succeed");
    benchmark::DoNotOptimize(run.value().base.sink_outputs);
  }
  report_input_rate(state, kInputs);
}
BENCHMARK(BM_TelemetryFanin_Reference)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
