// Reproduces the paper's feasibility observation (Section 6.1): "Values of D
// below 2e4 cycles resulted in no feasible (that is, substantially miss-free)
// realizations of the pipeline by either approach tested."
//
// Prints, as a function of tau0, the smallest deadline each strategy can
// realize, plus a deadline sweep at representative arrival rates showing
// where each strategy switches from infeasible to feasible.
#include "bench_common.hpp"

#include "sdf/analysis.hpp"
#include "util/csv.hpp"

int main(int argc, const char** argv) {
  using namespace ripple;
  util::CliParser cli;
  bench::add_common_options(cli);
  bench::parse_or_exit(cli, argc, argv,
                       "bench_feasibility_frontier — minimum feasible deadlines");

  bench::print_banner("Feasibility frontier: minimum realizable deadline");
  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy enforced(pipeline,
                                             bench::paper_enforced_config());
  const core::MonolithicStrategy monolithic(pipeline, {});

  std::cout << "hard limits:\n"
            << "  enforced waits:  tau0 >= "
            << bench::fmt(sdf::min_interarrival_enforced(pipeline), 3)
            << " (arrival-rate constraint), D >= "
            << bench::fmt(sdf::minimal_deadline_budget(
                              pipeline, blast::paper_calibrated_b()),
                          0)
            << " (budget with b = {1,3,9,6})\n"
            << "  monolithic:      tau0 >= "
            << bench::fmt(sdf::min_interarrival_monolithic(pipeline), 3)
            << " (stability)\n\n";

  // Minimum feasible D per tau0: enforced waits analytically; monolithic by
  // bisection over D (feasibility is monotone in D).
  auto monolithic_min_deadline = [&](double tau0) -> double {
    double lo = 1.0;
    double hi = 1e7;
    if (!monolithic.is_feasible(tau0, hi)) return -1.0;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (monolithic.is_feasible(tau0, mid)) hi = mid;
      else lo = mid;
    }
    return hi;
  };

  util::TextTable table({"tau0", "min D (enforced)", "min D (monolithic)"});
  std::ofstream csv_out = bench::open_csv(cli);
  util::CsvWriter csv(csv_out);
  if (csv_out.is_open()) {
    csv.header({"tau0", "min_deadline_enforced", "min_deadline_monolithic"});
  }
  const std::vector<double> tau0_values = {1.0, 2.0,  2.5,  3.0,  5.0, 7.0,
                                           8.0, 10.0, 20.0, 50.0, 100.0};
  for (double tau0 : tau0_values) {
    const double enforced_min = enforced.min_feasible_deadline(tau0);
    const double mono_min = monolithic_min_deadline(tau0);
    table.add_row({bench::fmt(tau0, 1),
                   std::isinf(enforced_min) ? "infeasible (rate)"
                                            : bench::fmt(enforced_min, 0),
                   mono_min < 0 ? "infeasible (stability)"
                                : bench::fmt(mono_min, 0)});
    if (csv_out.is_open()) {
      csv.row({bench::fmt(tau0, 3),
               std::isinf(enforced_min) ? "" : bench::fmt(enforced_min, 1),
               mono_min < 0 ? "" : bench::fmt(mono_min, 1)});
    }
  }
  table.print(std::cout);

  // Cross-check against the solvers at the frontier's two sides.
  bool consistent = true;
  for (double tau0 : {5.0, 20.0, 100.0}) {
    const double d_min = enforced.min_feasible_deadline(tau0);
    consistent &= !enforced.solve(tau0, d_min * 0.999).ok();
    consistent &= enforced.solve(tau0, d_min * 1.001).ok();
  }
  for (double tau0 : {10.0, 50.0}) {
    const double d_min = monolithic_min_deadline(tau0);
    consistent &= !monolithic.solve(tau0, d_min * 0.99).ok();
    consistent &= monolithic.solve(tau0, d_min * 1.01).ok();
  }

  // The paper's claim, in our terms: at (and below) D = 2e4 neither strategy
  // is feasible for fast arrivals, and the enforced-waits budget frontier
  // sits just above 2e4.
  const double budget =
      sdf::minimal_deadline_budget(pipeline, blast::paper_calibrated_b());
  const bool paper_claim = budget > 2e4 && budget < 3e4;
  std::cout << "\nsolver/frontier consistency: " << (consistent ? "yes" : "NO")
            << "\nenforced frontier just above the paper's 2e4 floor: "
            << (paper_claim ? "yes" : "NO") << " (budget = "
            << bench::fmt(budget, 0) << ")" << std::endl;
  return (consistent && paper_claim) ? 0 : 1;
}
