// Gamma-ray-burst detection (paper Sections 1 and 7): an orbiting telescope
// processes a photon stream and must alert ground instruments within a
// bounded delay of a burst's photons arriving.
//
// Pipeline (modeled after the APT trigger chain the paper cites):
//   stage 0 "hit_filter"  — reject detector noise (keeps ~30% of hits)
//   stage 1 "cluster"     — group hits into track candidates, 0..8 per hit
//   stage 2 "track_fit"   — fit candidates, keep plausible photons (~20%)
//   stage 3 "burst_test"  — sliding significance test (sink)
//
// The twist relative to the paper's evaluation: photon arrivals are *bursty*
// (quiet sky, then a burst). The enforced-waits schedule is chosen for the
// long-run mean rate; the example shows it still bounds latency through
// moderate bursts, and quantifies what happens in a hard burst.
#include <iostream>

#include "arrivals/arrival_process.hpp"
#include "core/enforced_waits.hpp"
#include "dist/rng.hpp"
#include "sdf/pipeline.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/trial_runner.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace ripple;
  auto fmt = [](double v, int p = 4) { return util::format_double(v, p); };

  auto built = sdf::PipelineBuilder("apt-burst-trigger")
                   .simd_width(64)
                   .add_node("hit_filter", 150.0, dist::make_bernoulli(0.3))
                   .add_node("cluster", 420.0, dist::make_censored_poisson(2.2, 8))
                   .add_node("track_fit", 640.0, dist::make_bernoulli(0.2))
                   .add_node("burst_test", 900.0, dist::make_deterministic(1))
                   .build();
  const sdf::PipelineSpec pipeline = std::move(built).take();

  // Long-run mean photon gap and the alert deadline.
  const Cycles mean_gap = 40.0;
  const Cycles deadline = 6e4;

  const core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{{1.0, 3.0, 6.0, 4.0}});
  auto solved = strategy.solve(mean_gap, deadline);
  if (!solved.ok()) {
    std::cerr << "infeasible: " << solved.error().message << "\n";
    return 1;
  }
  std::cout << "schedule for mean gap " << fmt(mean_gap, 0) << " cycles, alert "
            << "deadline " << fmt(deadline, 0) << " cycles\n"
            << "predicted active fraction: "
            << fmt(solved.value().predicted_active_fraction) << "\n\n";

  // Three sky models at the same long-run mean rate.
  arrivals::BurstyArrivals::Config moderate;
  moderate.tau_quiet = 45.0;
  moderate.tau_burst = 25.0;
  moderate.mean_quiet_dwell = 3e4;
  moderate.mean_burst_dwell = 6e3;
  arrivals::BurstyArrivals::Config grb;  // a hard gamma-ray burst
  grb.tau_quiet = 60.0;
  grb.tau_burst = 4.0;
  grb.mean_quiet_dwell = 1.2e5;
  grb.mean_burst_dwell = 8e3;

  struct Sky {
    std::string label;
    arrivals::ArrivalFactory factory;
  };
  const Sky skies[] = {
      {"steady sky (fixed rate)", arrivals::fixed_rate_factory(mean_gap)},
      {"moderate variability", arrivals::bursty_factory(moderate)},
      {"hard burst (GRB)", arrivals::bursty_factory(grb)},
  };

  util::TextTable table({"sky model", "mean gap", "miss-free trials",
                         "mean miss frac", "active frac", "max latency"});
  for (std::size_t s = 0; s < 3; ++s) {
    const Sky& sky = skies[s];
    auto trial_fn = [&, s](std::uint64_t trial) {
      auto arrival_process = sky.factory();
      sim::EnforcedSimConfig config;
      config.input_count = 20000;
      config.deadline = deadline;
      config.seed = dist::derive_seed({0x6BB, s, trial});
      return sim::simulate_enforced_waits(
          pipeline, solved.value().firing_intervals, *arrival_process, config);
    };
    const auto summary = sim::run_trials(trial_fn, 15);
    table.add_row({sky.label, fmt(sky.factory()->mean_interarrival(), 1),
                   fmt(summary.miss_free_fraction(), 3),
                   fmt(summary.miss_fraction.mean(), 5),
                   fmt(summary.active_fraction.mean(), 4),
                   fmt(summary.latency_max.max(), 0)});
  }
  table.print(std::cout);
  std::cout << "\nMisses grow with sky burstiness: the schedule's b_i were "
               "calibrated for the fixed-rate model, so a hard GRB overruns "
               "the transient-queue allowance — exactly why the paper's "
               "future work calls for arrival models beyond fixed rate. "
               "Re-calibrating the b_i against the bursty model (see "
               "examples/calibrate_pipeline.cpp) restores the bound at the "
               "cost of a larger deadline budget.\n";
  return 0;
}
