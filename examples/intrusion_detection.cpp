// Network intrusion detection (paper Section 1 cites Snort as a motivating
// irregular streaming application): packets flow through a filter/expand
// pipeline and every alert must be raised within a bounded delay.
//
// Pipeline:
//   stage 0 "proto_filter"   — keep packets of interesting protocols (~45%)
//   stage 1 "pattern_match"  — multi-pattern scan emits 0..12 rule hits
//   stage 2 "rule_eval"      — full rule evaluation passes ~8% of hits
//   stage 3 "alert"          — alert formatting and dispatch (sink)
//
// The example sweeps line rates (inter-arrival times) and shows the
// crossover the paper's Figure 4 predicts: enforced waits win while traffic
// is fast relative to the deadline, the monolithic batcher wins once traffic
// slows down.
#include <iostream>

#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "sdf/analysis.hpp"
#include "sdf/pipeline.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace ripple;
  auto fmt = [](double v, int p = 4) { return util::format_double(v, p); };

  auto built =
      sdf::PipelineBuilder("nids")
          .simd_width(128)
          .add_node("proto_filter", 90.0, dist::make_bernoulli(0.45))
          .add_node("pattern_match", 700.0, dist::make_censored_poisson(1.6, 12))
          .add_node("rule_eval", 350.0, dist::make_bernoulli(0.08))
          .add_node("alert", 1200.0, dist::make_deterministic(1))
          .build();
  const sdf::PipelineSpec pipeline = std::move(built).take();

  const Cycles deadline = 1e5;  // alert within 100k cycles of packet arrival
  const core::EnforcedWaitsStrategy enforced(
      pipeline, core::EnforcedWaitsConfig{{1.0, 3.0, 8.0, 5.0}});
  const core::MonolithicStrategy monolithic(pipeline, {});

  std::cout << "alert deadline: " << fmt(deadline, 0) << " cycles\n"
            << "enforced-waits rate floor:  tau0 >= "
            << fmt(sdf::min_interarrival_enforced(pipeline), 2) << " cycles\n"
            << "monolithic stability floor: tau0 >= "
            << fmt(sdf::min_interarrival_monolithic(pipeline), 2)
            << " cycles\n\n";

  util::TextTable table({"tau0 (cycles/pkt)", "enforced AF", "monolithic AF",
                         "winner", "margin"});
  const double rates[] = {3.0, 5.0, 8.0, 12.0, 20.0, 40.0, 80.0, 160.0};
  std::string previous_winner;
  bool crossover_seen = false;
  for (double tau0 : rates) {
    auto ew = enforced.solve(tau0, deadline);
    auto mono = monolithic.solve(tau0, deadline);
    const double ew_af = ew.ok() ? ew.value().predicted_active_fraction : 1.0;
    const double mono_af =
        mono.ok() ? mono.value().predicted_active_fraction : 1.0;
    std::string winner = "tie";
    if (ew_af < mono_af) winner = "enforced";
    else if (mono_af < ew_af) winner = "monolithic";
    if (!previous_winner.empty() && winner != "tie" &&
        previous_winner != "tie" && winner != previous_winner) {
      crossover_seen = true;
    }
    if (winner != "tie") previous_winner = winner;
    table.add_row({fmt(tau0, 1), ew.ok() ? fmt(ew_af) : "infeasible",
                   mono.ok() ? fmt(mono_af) : "infeasible", winner,
                   fmt(std::abs(mono_af - ew_af), 3)});
  }
  table.print(std::cout);
  std::cout << "\ncrossover between strategies observed: "
            << (crossover_seen ? "yes" : "no")
            << "\nFast line rates favor enforced waits (batching would blow "
               "the deadline); slow traffic favors the monolithic batcher.\n";
  return crossover_seen ? 0 : 1;
}
