// Worst-case parameter calibration walkthrough (paper Section 6.2 as a
// library API): given a new pipeline, find queue-depth multipliers b_i that
// make the enforced-waits schedule substantially miss-free, starting from
// the optimistic b_i = ceil(g_i).
#include <iostream>

#include "calib/calibrate.hpp"
#include "sdf/pipeline.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace ripple;
  auto fmt = [](double v, int p = 4) { return util::format_double(v, p); };

  // A machine-learning decision cascade (paper Section 1 cites Viola-Jones):
  // cheap early rejection, expensive late stages.
  auto built = sdf::PipelineBuilder("decision-cascade")
                   .simd_width(64)
                   .add_node("stage_a", 60.0, dist::make_bernoulli(0.5))
                   .add_node("stage_b", 200.0, dist::make_censored_poisson(1.8, 8))
                   .add_node("stage_c", 500.0, dist::make_bernoulli(0.1))
                   .add_node("stage_d", 1500.0, dist::make_deterministic(1))
                   .build();
  const sdf::PipelineSpec pipeline = std::move(built).take();

  // Calibrate against the operating region this deployment cares about.
  const std::vector<calib::Probe> probes = {
      {10.0, 4e4}, {10.0, 1e5}, {30.0, 4e4}, {30.0, 1e5}};

  util::ThreadPool pool;
  calib::CalibrationOptions options;
  options.trials = 25;
  options.inputs_per_trial = 10000;
  options.target_miss_free = 0.95;
  options.base_seed = 99;
  options.pool = &pool;

  const auto initial = core::EnforcedWaitsConfig::optimistic(pipeline);
  std::cout << "optimistic start: b = {";
  for (std::size_t i = 0; i < initial.b.size(); ++i) {
    std::cout << (i ? ", " : "") << fmt(initial.b[i], 0);
  }
  std::cout << "}\n\ncalibrating...\n";

  const auto result =
      calib::calibrate_enforced_waits(pipeline, initial, probes, options);
  for (const auto& line : result.log) std::cout << "  " << line << "\n";

  std::cout << "\ncalibration " << (result.success ? "succeeded" : "FAILED")
            << " after " << result.rounds << " round(s); final b = {";
  for (std::size_t i = 0; i < result.config.b.size(); ++i) {
    std::cout << (i ? ", " : "") << fmt(result.config.b[i], 0);
  }
  std::cout << "}\nworst miss-free fraction across probes: "
            << fmt(result.worst_miss_free, 3) << "\n\n";

  util::TextTable table({"tau0", "D", "feasible", "miss-free frac",
                         "active frac"});
  for (const auto& outcome : result.final_outcomes) {
    table.add_row({fmt(outcome.probe.tau0, 1), fmt(outcome.probe.deadline, 0),
                   outcome.feasible ? "yes" : "no",
                   outcome.feasible ? fmt(outcome.miss_free_fraction, 3) : "-",
                   outcome.feasible ? fmt(outcome.mean_active_fraction, 4) : "-"});
  }
  table.print(std::cout);
  std::cout << "\nThe calibrated b_i trade a larger deadline budget for "
               "predictable latency: larger multipliers shrink the feasible "
               "region but absorb transient queue growth.\n";
  return result.success ? 0 : 1;
}
