// The paper's test application end to end: build the BLAST pipeline from the
// mini-BLAST substrate (real computation over synthetic DNA), compare its
// measured stage properties with the paper's Table 1, then schedule the
// canonical Table 1 pipeline under both strategies at a few representative
// operating points.
#include <iostream>

#include "arrivals/arrival_process.hpp"
#include "blast/canonical.hpp"
#include "blast/measure.hpp"
#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/monolithic_sim.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace ripple;
  auto fmt = [](double v, int p = 4) { return util::format_double(v, p); };

  // ---- 1. measure the mini-BLAST substrate --------------------------------
  std::cout << "Measuring the mini-BLAST pipeline on synthetic DNA...\n";
  dist::Xoshiro256 rng(7);
  blast::SequencePairConfig pair_config;  // ~1 MiB subject vs 64 KiB query
  const auto pair = blast::make_sequence_pair(pair_config, rng);
  const blast::BlastStages stages(pair, {});
  blast::MeasureConfig measure_config;
  measure_config.window_count = 100000;
  const auto measurement = blast::measure_pipeline(stages, measure_config);

  const auto canonical = blast::canonical_blast_pipeline();
  util::TextTable table({"stage", "g_i (paper)", "g_i (measured)",
                         "t_i (paper, GPU cycles)", "ops/input (measured)"});
  static const char* kNames[4] = {"seed_filter", "seed_expand",
                                  "ungapped_extend", "gapped_extend"};
  for (std::size_t i = 0; i < 4; ++i) {
    const bool sink = i == 3;
    table.add_row({kNames[i], sink ? "N/A" : fmt(canonical.mean_gain(i)),
                   sink ? "N/A" : fmt(measurement.stages[i].mean_gain()),
                   fmt(canonical.service_time(i), 0),
                   fmt(measurement.stages[i].mean_ops(), 1)});
  }
  table.print(std::cout);

  // ---- 2. schedule the canonical pipeline ----------------------------------
  const core::EnforcedWaitsStrategy enforced(
      canonical, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});
  const core::MonolithicStrategy monolithic(canonical, {});

  std::cout << "\nScheduling the canonical (Table 1) pipeline:\n";
  util::TextTable sched({"tau0", "D", "EW active frac", "EW sim misses",
                         "mono active frac", "mono block M"});
  struct Point {
    double tau0, deadline;
    const char* note;
  };
  const Point points[] = {
      {5.0, 3.5e5, "fast arrivals, slack deadline (EW territory)"},
      {20.0, 1.85e5, "middle of the parameter space"},
      {100.0, 5e4, "slow arrivals, tight deadline (monolithic territory)"},
  };
  for (const Point& point : points) {
    std::string ew_af = "--";
    std::string ew_miss = "--";
    if (auto ew = enforced.solve(point.tau0, point.deadline); ew.ok()) {
      ew_af = fmt(ew.value().predicted_active_fraction);
      arrivals::FixedRateArrivals arrival_process(point.tau0);
      sim::EnforcedSimConfig config;
      config.input_count = 20000;
      config.deadline = point.deadline;
      config.seed = 2021;
      const auto metrics = sim::simulate_enforced_waits(
          canonical, ew.value().firing_intervals, arrival_process, config);
      ew_miss = std::to_string(metrics.inputs_missed) + "/" +
                std::to_string(metrics.inputs_arrived);
    }
    std::string mono_af = "--";
    std::string mono_block = "--";
    if (auto mono = monolithic.solve(point.tau0, point.deadline); mono.ok()) {
      mono_af = fmt(mono.value().predicted_active_fraction);
      mono_block = std::to_string(mono.value().block_size);
    }
    sched.add_row({fmt(point.tau0, 1), fmt(point.deadline, 0), ew_af, ew_miss,
                   mono_af, mono_block});
    std::cout << "  (" << fmt(point.tau0, 1) << ", " << fmt(point.deadline, 0)
              << "): " << point.note << "\n";
  }
  std::cout << "\n";
  sched.print(std::cout);
  std::cout << "\nEnforced waits convert deadline slack into SIMD occupancy; "
               "the monolithic baseline needs slow arrivals instead.\n";
  return 0;
}
