// Object detection cascade (paper Section 1 cites Viola-Jones decision
// cascades as a motivating irregular application): train a Haar-feature
// cascade on a synthetic scene, measure it as a streaming pipeline, then
// schedule the window stream under a real-time deadline with enforced waits
// and validate in simulation.
//
// The cascade is the mirror image of the BLAST pipeline: a pure filter chain
// (every gain < 1, no expansion) where cost per stage grows as the stream
// thins — showing the scheduling framework on a second, structurally
// different application.
#include <iostream>

#include "arrivals/arrival_process.hpp"
#include "cascade/measure.hpp"
#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "sim/enforced_sim.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace ripple;
  auto fmt = [](double v, int p = 4) { return util::format_double(v, p); };

  // 1. Synthesize a scene and train the cascade on it.
  dist::Xoshiro256 rng(2021);
  cascade::SceneConfig scene_config;  // 1024x1024, 24 planted objects
  const auto scene = cascade::make_scene(scene_config, rng);
  auto trained = cascade::Detector::train(scene, {}, rng);
  if (!trained.ok()) {
    std::cerr << "training failed: " << trained.error().message << "\n";
    return 1;
  }
  const auto& detector = trained.value();

  // 2. Measure it as a streaming pipeline.
  cascade::CascadeMeasureConfig measure_config;
  measure_config.window_count = 200000;
  const auto measurement =
      cascade::measure_cascade(detector, scene, measure_config);

  util::TextTable table({"stage", "features", "inputs", "pass rate",
                         "ops/input"});
  for (std::size_t s = 0; s < measurement.stages.size(); ++s) {
    const auto& stage = measurement.stages[s];
    table.add_row({std::to_string(s),
                   std::to_string(detector.stage(s).stumps.size()),
                   util::with_commas(stage.inputs), fmt(stage.pass_rate(), 4),
                   fmt(stage.mean_ops(), 1)});
  }
  std::cout << "Measured cascade over "
            << util::with_commas(measurement.windows_streamed)
            << " windows (" << measurement.detections << " detections):\n";
  table.print(std::cout);

  // 3. Schedule the stream: windows arrive every tau0 "op-cycles"; every
  //    detection must be reported within D of its window's arrival.
  auto spec = measurement.to_pipeline_spec(/*simd_width=*/64);
  if (!spec.ok()) {
    std::cerr << "spec failed: " << spec.error().message << "\n";
    return 1;
  }
  const auto& pipeline = spec.value();
  const double tau0 = pipeline.mean_service_per_input() * 8.0;
  const double deadline = 300.0 * pipeline.service_time(3);
  std::cout << "\nscheduling at tau0 = " << fmt(tau0, 2) << " op-cycles/window, "
            << "deadline D = " << fmt(deadline, 0) << " op-cycles\n";

  const core::EnforcedWaitsStrategy enforced(
      pipeline, core::EnforcedWaitsConfig{{1.0, 2.0, 3.0, 3.0}});
  auto schedule = enforced.solve(tau0, deadline);
  if (!schedule.ok()) {
    std::cerr << "enforced waits infeasible: " << schedule.error().message << "\n";
    return 1;
  }
  std::cout << "enforced waits: predicted active fraction "
            << fmt(schedule.value().predicted_active_fraction) << "\n";
  const core::MonolithicStrategy monolithic(pipeline, {});
  if (auto mono = monolithic.solve(tau0, deadline); mono.ok()) {
    std::cout << "monolithic:     predicted active fraction "
              << fmt(mono.value().predicted_active_fraction) << " (M = "
              << mono.value().block_size << ")\n";
  }

  // 4. Validate the enforced-waits schedule in simulation.
  arrivals::FixedRateArrivals arrival_process(tau0);
  sim::EnforcedSimConfig sim_config;
  sim_config.input_count = 30000;
  sim_config.deadline = deadline;
  sim_config.seed = 99;
  const auto metrics = sim::simulate_enforced_waits(
      pipeline, schedule.value().firing_intervals, arrival_process, sim_config);
  std::cout << "\nsimulated 30,000 windows: active fraction "
            << fmt(metrics.active_fraction()) << ", misses "
            << metrics.inputs_missed << "/" << metrics.inputs_arrived
            << ", SIMD occupancy " << fmt(metrics.overall_occupancy(), 3)
            << "\n";
  return metrics.inputs_missed == 0 ? 0 : 1;
}
