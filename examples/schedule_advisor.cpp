// Schedule advisor: given an operating point, explain what limits the
// schedule and what a designer would gain from relaxing it — then export the
// machine-readable schedule for downstream tooling.
//
// Demonstrates the sensitivity API (core/robustness.hpp): the deadline
// multiplier lambda = -dT*/dD prices deadline slack in active-fraction per
// cycle, and the per-constraint slacks identify the bottleneck (arrival
// rate, a chain coupling, or the deadline itself).
#include <iostream>
#include <sstream>

#include "blast/canonical.hpp"
#include "core/report.hpp"
#include "core/robustness.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace ripple;
  auto fmt = [](double v, int p = 4) { return util::format_double(v, p); };

  const auto pipeline = blast::canonical_blast_pipeline();
  const core::EnforcedWaitsStrategy strategy(
      pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()});

  util::TextTable table({"tau0", "D", "active frac", "bottleneck",
                         "dAF per +1k cycles of D", "advice"});
  struct Point {
    double tau0, deadline;
  };
  for (const Point& point : {Point{3.0, 3.5e5}, Point{20.0, 6e4},
                             Point{100.0, 1e5}, Point{100.0, 3.5e5}}) {
    auto analysis =
        core::analyze_sensitivity(strategy, point.tau0, point.deadline);
    if (!analysis.ok()) {
      table.add_row({fmt(point.tau0, 1), fmt(point.deadline, 0), "--",
                     "infeasible", "--", analysis.error().message.substr(0, 40)});
      continue;
    }
    const auto& s = analysis.value();
    auto solved = strategy.solve(point.tau0, point.deadline);
    std::string advice;
    const bool deadline_valuable = s.deadline_multiplier * 1000.0 > 1e-3;
    if (s.bottleneck == "rate" && !deadline_valuable) {
      advice = "rate-capped and deadline saturated: buy SIMD width or shed load";
    } else if (s.bottleneck == "rate") {
      advice = "node 0 is rate-capped but later stages still convert D into idleness";
    } else if (s.bottleneck == "chain") {
      advice = "an expanding stage gates its neighbor; rebalance stage costs";
    } else if (deadline_valuable) {
      advice = "deadline slack is valuable here; negotiate a looser D";
    } else {
      advice = "deep in diminishing returns; schedule is near its floor";
    }
    table.add_row({fmt(point.tau0, 1), fmt(point.deadline, 0),
                   fmt(solved.value().predicted_active_fraction),
                   s.bottleneck, fmt(s.deadline_multiplier * 1000.0, 5),
                   advice});
  }
  table.print(std::cout);

  // Machine-readable export of one schedule (the JSON schema is documented
  // in core/report.hpp).
  auto solved = strategy.solve(20.0, 1.85e5);
  std::ostringstream json;
  core::write_enforced_schedule_json(
      json, pipeline, core::EnforcedWaitsConfig{blast::paper_calibrated_b()},
      solved.value(), 20.0, 1.85e5);
  std::cout << "\nexported schedule JSON (tau0 = 20, D = 185000):\n"
            << json.str();
  return 0;
}
