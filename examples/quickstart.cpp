// Quickstart: define an irregular streaming pipeline, schedule it two ways,
// and verify the schedule in simulation.
//
// Scenario: a 3-stage sensor pipeline on a SIMD device with 32 lanes.
//   stage 0 "denoise"  — drops ~60% of readings (Bernoulli gain 0.4)
//   stage 1 "detect"   — emits 0..4 candidate events per reading (Poisson)
//   stage 2 "classify" — final, expensive stage
// Readings arrive every 50 cycles and every derived event must leave the
// pipeline within 20,000 cycles of its reading's arrival.
#include <iostream>

#include "arrivals/arrival_process.hpp"
#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "sdf/pipeline.hpp"
#include "sim/enforced_sim.hpp"
#include "util/string_utils.hpp"

int main() {
  using namespace ripple;

  // 1. Describe the application (paper Section 2.1).
  auto built = sdf::PipelineBuilder("sensor-pipeline")
                   .simd_width(32)
                   .add_node("denoise", /*t=*/120.0, dist::make_bernoulli(0.4))
                   .add_node("detect", /*t=*/300.0,
                             dist::make_censored_poisson(1.5, 4))
                   .add_node("classify", /*t=*/800.0, dist::make_deterministic(1))
                   .build();
  if (!built.ok()) {
    std::cerr << "pipeline invalid: " << built.error().message << "\n";
    return 1;
  }
  const sdf::PipelineSpec pipeline = std::move(built).take();

  const Cycles tau0 = 50.0;     // one reading per 50 cycles
  const Cycles deadline = 2e4;  // end-to-end latency bound

  // 2. Enforced waits (the paper's contribution): pick per-node waits w_i
  //    minimizing processor utilization subject to rate/chain/deadline
  //    constraints. The b_i bound each node's transient queue depth; these
  //    values were calibrated with calib::calibrate_enforced_waits (see
  //    examples/calibrate_pipeline.cpp for the workflow).
  const core::EnforcedWaitsStrategy enforced(
      pipeline, core::EnforcedWaitsConfig{{1.0, 3.0, 4.0}});
  auto ew = enforced.solve(tau0, deadline);
  if (!ew.ok()) {
    std::cerr << "enforced waits infeasible: " << ew.error().message << "\n";
    return 1;
  }
  std::cout << "enforced waits:\n";
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    std::cout << "  " << pipeline.node(i).name << ": t = "
              << pipeline.service_time(i) << ", wait w = "
              << util::format_double(ew.value().waits[i], 1)
              << " -> fires every "
              << util::format_double(ew.value().firing_intervals[i], 1)
              << " cycles\n";
  }
  std::cout << "  predicted active fraction: "
            << util::format_double(ew.value().predicted_active_fraction, 4)
            << "\n\n";

  // 3. The monolithic baseline (paper Section 5): batch M inputs and run the
  //    whole pipeline per batch.
  const core::MonolithicStrategy monolithic(pipeline, {});
  if (auto mono = monolithic.solve(tau0, deadline); mono.ok()) {
    std::cout << "monolithic baseline: block size M = "
              << mono.value().block_size << ", predicted active fraction "
              << util::format_double(mono.value().predicted_active_fraction, 4)
              << "\n\n";
  } else {
    std::cout << "monolithic baseline infeasible here: "
              << mono.error().message << "\n\n";
  }

  // 4. Verify the enforced-waits schedule against the discrete-event
  //    simulator: measure the real active fraction and deadline misses.
  arrivals::FixedRateArrivals arrival_process(tau0);
  sim::EnforcedSimConfig config;
  config.input_count = 20000;
  config.deadline = deadline;
  config.seed = 42;
  const auto metrics = sim::simulate_enforced_waits(
      pipeline, ew.value().firing_intervals, arrival_process, config);
  std::cout << "simulation of 20,000 readings:\n"
            << "  measured active fraction: "
            << util::format_double(metrics.active_fraction(), 4) << "\n"
            << "  deadline misses: " << metrics.inputs_missed << " / "
            << metrics.inputs_arrived << " inputs\n"
            << "  mean SIMD occupancy: "
            << util::format_double(metrics.overall_occupancy(), 3) << "\n"
            << "  max latency: "
            << util::format_double(metrics.output_latency.max(), 0)
            << " cycles (deadline " << util::format_double(deadline, 0)
            << ")\n";
  return metrics.inputs_missed == 0 ? 0 : 1;
}
