#!/usr/bin/env bash
# Run the online-control-loop benchmarks and write BENCH_service.json at the
# repo root: warm- vs cold-started re-plan latency, the steady-state
# controller tick, the closed-loop drain cycle against the static-plan
# baseline, and the sharded-ingest drain sweep (legacy per-session scan-merge
# vs the MPSC ring at 1/2/4/8 shards). Prints the warm-start speedup, the
# closed-loop steady-state overhead (bar: < 2%), the drain-throughput
# scaling curve (bar: >= 4x over the legacy single-worker drain at 8 shards),
# the shards x exec_threads composition grid (intra-shard task-parallel
# executor vs the sequential baseline at each shard count), and the loopback
# TCP ingest throughput through src/net's epoll front door (bar: >= 1M
# items/s with the controller live).
#
# Usage: scripts/run_bench_service.sh [build-dir] [min-time]
#   build-dir  defaults to ./build-bench (configured Release if missing —
#              benchmarks from a Debug tree are meaningless)
#   min-time   defaults to 0.5 (seconds per benchmark, forwarded to
#              --benchmark_min_time)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-bench}"
MIN_TIME="${2:-0.5}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
fi
if ! grep -q "CMAKE_BUILD_TYPE:STRING=Release" "${BUILD_DIR}/CMakeCache.txt"; then
  echo "warning: ${BUILD_DIR} is not a Release build; timings will be skewed" >&2
fi
cmake --build "${BUILD_DIR}" --target bench_service -j"$(nproc)"

"${BUILD_DIR}/bench/bench_service" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions=1 \
  --benchmark_out="${REPO_ROOT}/BENCH_service.json" \
  --benchmark_out_format=json

python3 - "${REPO_ROOT}/BENCH_service.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
times = {b["name"]: b["real_time"] for b in doc["benchmarks"]}

cold = times.get("BM_ReplanColdSolve")
warm = times.get("BM_ReplanWarmSolve")
if cold and warm:
    print(f"re-plan latency: cold = {cold / 1e3:.2f} us, "
          f"warm = {warm / 1e3:.2f} us ({cold / warm:.2f}x speedup)")

tick = times.get("BM_ControllerTickSteady")
gap = times.get("BM_ObserveGapSteady")
if tick:
    print(f"steady-state controller tick: {tick:.0f} ns")
if gap:
    print(f"per-arrival observe_gap: {gap:.1f} ns")

loop = times.get("BM_ClosedLoopChunkSteady")
static = times.get("BM_StaticPlanChunk")
CHUNK = 256  # kChunk in bench_service.cpp
if tick and gap and static:
    # The control loop adds exactly CHUNK observe_gap calls plus one tick per
    # chunk. Summing the independently measured components is far better
    # conditioned than subtracting two ~60 us chunk timings on a noisy host.
    overhead = (tick + CHUNK * gap) / static * 100.0
    print(f"closed-loop steady-state overhead vs static plan: "
          f"{overhead:.2f}% (bar: < 2%)")
if loop and static:
    print(f"  (subtractive cross-check: {(loop - static) / static * 100.0:.2f}%"
          f" — noisier)")

# Drain-throughput scaling curve: items/sec of the ingest collect phase,
# legacy O(open-sessions) scan-merge vs the O(items) MPSC drain per shard
# count. The 16384-session table is mostly idle, the realistic shape the
# old scan paid for on every drain.
rates = {b["name"]: b.get("items_per_second") for b in doc["benchmarks"]}
legacy = rates.get("BM_IngestLegacyScanMerge")
if legacy:
    print(f"\ndrain throughput (ingest collect, 16384 sessions, 512 items):")
    print(f"  legacy scan-merge: {legacy / 1e6:.2f} M items/s")
    worst = None
    for shards in (1, 2, 4, 8):
        rate = rates.get(f"BM_IngestMpscDrain/{shards}")
        if not rate:
            continue
        speedup = rate / legacy
        worst = speedup if worst is None else min(worst, speedup)
        print(f"  mpsc {shards} shard(s):   {rate / 1e6:.2f} M items/s "
              f"({speedup:.1f}x vs legacy)")
    eight = rates.get("BM_IngestMpscDrain/8")
    if eight:
        ratio = eight / legacy
        bar = "PASS" if ratio >= 4.0 else "FAIL"
        print(f"  8-shard drain vs legacy single-worker: {ratio:.1f}x "
              f"(bar: >= 4x) [{bar}]")

svc = {s: rates.get(f"BM_ServiceDrainSharded/{s}") for s in (1, 2, 4, 8)}
if any(svc.values()):
    print("end-to-end service drain_once (pop + sort + tick + execute):")
    for shards, rate in svc.items():
        if rate:
            print(f"  {shards} shard(s): {rate / 1e6:.2f} M items/s")

# The two scaling axes composed: shards × intra-shard executor threads.
# exec:1 rows are the sequential-engine baselines; whether the exec:N rows
# stack on top of sharding depends on how many cores this host can actually
# give shards × exec threads at once.
import os
grid = {}
for b in doc["benchmarks"]:
    name = b["name"]
    if name.startswith("BM_ServiceShardsTimesExecThreads/"):
        parts = dict(p.split(":") for p in name.split("/")[1:] if ":" in p)
        rate = b.get("items_per_second")
        if rate and "shards" in parts and "exec" in parts:
            grid[(int(parts["shards"]), int(parts["exec"]))] = rate
if grid:
    print(f"shards x exec_threads composition ({os.cpu_count()} host cores):")
    for (shards, exec_threads), rate in sorted(grid.items()):
        base = grid.get((shards, 1))
        note = f" ({rate / base:.2f}x vs exec:1)" if base else ""
        print(f"  shards={shards} exec={exec_threads}: "
              f"{rate / 1e6:.2f} M items/s{note}")

submit = rates.get("BM_SubmitSteady")
if submit:
    print(f"submit fast path (coalesced wakeups): {submit / 1e6:.2f} M items/s")

loopback = rates.get("BM_LoopbackIngest")
if loopback:
    bar = "PASS" if loopback >= 1e6 else "FAIL"
    print(f"loopback TCP ingest (epoll front door, controller live): "
          f"{loopback / 1e6:.2f} M items/s (bar: >= 1M items/s) [{bar}]")
PY

echo "Wrote ${REPO_ROOT}/BENCH_service.json"
