#!/usr/bin/env bash
# Regenerate every paper table/figure plus the ablations, at the paper's full
# scale, collecting console output, CSV series and rendered SVG figures into
# results/. Run from the repository root after building.
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-results}"
SCALE_FLAG="${SCALE_FLAG:---full}"

mkdir -p "$OUT_DIR"

run() {
  local name="$1"; shift
  echo "== $name $*"
  "$BUILD_DIR/bench/$name" "$@" | tee "$OUT_DIR/$name.txt"
}

run bench_table1 "$SCALE_FLAG" --csv "$OUT_DIR/table1.csv"
run bench_fig3_enforced "$SCALE_FLAG" --csv "$OUT_DIR/fig3_enforced.csv"
run bench_fig3_monolithic "$SCALE_FLAG" --csv "$OUT_DIR/fig3_monolithic.csv"
run bench_fig4_difference "$SCALE_FLAG" --csv "$OUT_DIR/fig4_surface.csv" \
    --json "$OUT_DIR/fig4_surface.json"
run bench_calibration "$SCALE_FLAG" --csv "$OUT_DIR/calibration.csv"
run bench_predict_vs_sim "$SCALE_FLAG" --csv "$OUT_DIR/predict_vs_sim.csv"
run bench_feasibility_frontier --csv "$OUT_DIR/feasibility.csv"
run bench_gain_sensitivity "$SCALE_FLAG" --csv "$OUT_DIR/gain_sensitivity.csv"
run bench_ablation_arrivals "$SCALE_FLAG" --csv "$OUT_DIR/ablation_arrivals.csv"
run bench_ablation_vacation "$SCALE_FLAG" --csv "$OUT_DIR/ablation_vacation.csv"
run bench_ablation_quantum "$SCALE_FLAG" --csv "$OUT_DIR/ablation_quantum.csv"
run bench_ablation_phase "$SCALE_FLAG" --csv "$OUT_DIR/ablation_phase.csv"
run bench_queueing_prediction "$SCALE_FLAG" --csv "$OUT_DIR/queueing_prediction.csv"
run bench_baseline_throughput "$SCALE_FLAG" --csv "$OUT_DIR/baseline_throughput.csv"
"$BUILD_DIR/bench/bench_micro" | tee "$OUT_DIR/bench_micro.txt"

python3 scripts/plot_surfaces.py "$OUT_DIR/fig4_surface.csv" \
    --out-dir "$OUT_DIR/figures"

echo
echo "all experiments done; outputs in $OUT_DIR/"
