#!/usr/bin/env bash
# Run the vector-wide executor benchmarks and write BENCH_runtime.json at the
# repo root: end-to-end mini-BLAST through the per-item reference engine, the
# adapter path, the batched-scalar path, and the SIMD path, plus stage-kernel
# micros with one row per ISA (scalar, neon, avx2, avx512). Rows for ISAs
# this host/build cannot run are recorded as skipped in the JSON and shown as
# '-' in the summary table, so results from different machines stay
# comparable. Prints the end-to-end speedup of the SIMD batch path over the
# per-item reference, the task-parallel engine's thread-scaling curve with a
# >= 2.5x @ 4-thread bar (reported only on hosts with >= 4 cores — anything
# measured below that is contention), and the per-kernel speedups versus
# scalar.
#
# Usage: scripts/run_bench_runtime.sh [build-dir] [min-time]
#   build-dir  defaults to ./build-bench (configured Release if missing —
#              benchmarks from a Debug tree are meaningless)
#   min-time   defaults to 0.5 (seconds per benchmark, forwarded to
#              --benchmark_min_time)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-bench}"
MIN_TIME="${2:-0.5}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
fi
if ! grep -q "CMAKE_BUILD_TYPE:STRING=Release" "${BUILD_DIR}/CMakeCache.txt"; then
  echo "warning: ${BUILD_DIR} is not a Release build; timings will be skewed" >&2
fi
cmake --build "${BUILD_DIR}" --target bench_runtime -j"$(nproc)"

"${BUILD_DIR}/bench/bench_runtime" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions=1 \
  --benchmark_out="${REPO_ROOT}/BENCH_runtime.json" \
  --benchmark_out_format=json

python3 - "${REPO_ROOT}/BENCH_runtime.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
times = {b["name"]: b["real_time"] for b in doc["benchmarks"]}

reference = times.get("BM_MiniBlastEndToEnd_Reference")
simd = times.get("BM_MiniBlastEndToEnd_BatchSimd")
scalar = times.get("BM_MiniBlastEndToEnd_BatchScalar")
if reference and simd:
    print(f"end-to-end mini-BLAST: reference / batch+SIMD = "
          f"{reference / simd:.2f}x")
if reference and scalar:
    print(f"end-to-end mini-BLAST: reference / batch+scalar = "
          f"{reference / scalar:.2f}x")

# Intra-shard thread-scaling curve: BM_ExecutorParallel/<N>/real_time rows,
# speedup vs the /1 row (the sequential engine). The >= 2.5x @ 4 threads gate
# only applies where 4 worker threads can actually run in parallel; on
# smaller hosts the curve is printed for the record and the gate is skipped.
import os
parallel = {}
for b in doc["benchmarks"]:
    name = b["name"]
    if name.startswith("BM_ExecutorParallel/") and not b.get("error_occurred"):
        parallel[int(name.split("/")[1])] = b["real_time"]
if parallel and 1 in parallel:
    base = parallel[1]
    curve = "  ".join(f"{n}t={base / t:.2f}x"
                      for n, t in sorted(parallel.items()))
    print(f"task-parallel executor scaling (vs 1 thread): {curve}")
    cores = os.cpu_count() or 1
    if 4 in parallel and cores >= 4:
        speedup = base / parallel[4]
        bar = "PASS" if speedup >= 2.5 else "FAIL"
        print(f"  4-thread speedup: {speedup:.2f}x (bar: >= 2.5x, "
              f"{cores} host cores) [{bar}]")
    else:
        print(f"  4-thread bar skipped: host has {cores} core(s); the curve "
              f"above measures contention, not scaling")

# Per-ISA kernel micros: rows are BM_<Kernel>/<level-arg> with the resolved
# ISA in the label; skipped rows (ISA unavailable here) carry error_occurred.
kernels = {}
for b in doc["benchmarks"]:
    name = b["name"]
    if "Kernel/" not in name or b.get("error_occurred"):
        continue
    kernels.setdefault(name.split("/")[0], {})[b.get("label", "?")] = \
        b["real_time"]
if kernels:
    print("per-ISA kernel micros (speedup vs scalar; '-' = unavailable "
          "on this host/build):")
best = (0.0, None)
for base, t in sorted(kernels.items()):
    cells = []
    for isa in ("neon", "avx2", "avx512"):
        if "scalar" in t and isa in t:
            cells.append(f"{isa}={t['scalar'] / t[isa]:6.2f}x")
        else:
            cells.append(f"{isa}=     -")
    print(f"  {base:24s} {'  '.join(cells)}")
    if "avx2" in t and "avx512" in t:
        best = max(best, (t["avx2"] / t["avx512"], base))
if best[1] is not None:
    print(f"best avx512-over-avx2 kernel: {best[1]} at {best[0]:.2f}x")
PY

echo "Wrote ${REPO_ROOT}/BENCH_runtime.json"
