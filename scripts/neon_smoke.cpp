// Standalone AArch64 smoke for the lanes4 vector layer (device/lanes4.hpp):
// cross-compiled by scripts/neon_smoke.sh and run under qemu-user when the
// toolchain is available. The x86 CI legs already prove the lanes4 kernel
// *bodies* bit-identical to scalar through the portable backend; this
// harness closes the remaining gap — the NEON intrinsic wrappers themselves
// — by checking every x4_* op against a scalar model on deterministic
// pseudo-random inputs. Exits nonzero on the first mismatch.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "device/lanes4.hpp"

namespace {

using namespace ripple::device;

std::uint64_t rng_state = 0x9e3779b97f4a7c15ull;

std::int32_t next_i32() {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 7;
  rng_state ^= rng_state << 17;
  return static_cast<std::int32_t>(rng_state >> 32);
}

int failures = 0;

void expect_lanes(const char* what, int round, I32x4 got,
                  const std::int32_t (&want)[4]) {
  std::int32_t g[4];
  x4_store(g, got);
  for (int l = 0; l < 4; ++l) {
    if (g[l] != want[l]) {
      std::fprintf(stderr, "FAIL %s round %d lane %d: got %d want %d\n", what,
                   round, l, g[l], want[l]);
      ++failures;
    }
  }
}

std::int32_t wrap_add(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}

std::int32_t wrap_sub(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}

}  // namespace

int main() {
  constexpr int kRounds = 4096;
  constexpr std::int32_t kTableSize = 256;
  std::uint8_t bytes[kTableSize];
  std::int32_t words[kTableSize];
  for (std::int32_t i = 0; i < kTableSize; ++i) {
    bytes[i] = static_cast<std::uint8_t>(next_i32());
    words[i] = next_i32();
  }

  for (int round = 0; round < kRounds; ++round) {
    std::int32_t a[4];
    std::int32_t b[4];
    for (int l = 0; l < 4; ++l) {
      // Mix full-range values with small ones so cmp/min/max see ties and
      // both comparison outcomes often.
      a[l] = (round & 1) ? next_i32() : next_i32() % 5;
      b[l] = (round & 2) ? next_i32() : next_i32() % 5;
    }
    const I32x4 va = x4_load(a);
    const I32x4 vb = x4_load(b);

    std::int32_t want[4];
    for (int l = 0; l < 4; ++l) want[l] = wrap_add(a[l], b[l]);
    expect_lanes("x4_add", round, x4_add(va, vb), want);
    for (int l = 0; l < 4; ++l) want[l] = wrap_sub(a[l], b[l]);
    expect_lanes("x4_sub", round, x4_sub(va, vb), want);
    for (int l = 0; l < 4; ++l) want[l] = a[l] < b[l] ? a[l] : b[l];
    expect_lanes("x4_min", round, x4_min(va, vb), want);
    for (int l = 0; l < 4; ++l) want[l] = a[l] > b[l] ? a[l] : b[l];
    expect_lanes("x4_max", round, x4_max(va, vb), want);
    for (int l = 0; l < 4; ++l) want[l] = a[l] & b[l];
    expect_lanes("x4_and", round, x4_and(va, vb), want);
    for (int l = 0; l < 4; ++l) want[l] = a[l] | b[l];
    expect_lanes("x4_or", round, x4_or(va, vb), want);
    for (int l = 0; l < 4; ++l) want[l] = a[l] & ~b[l];
    expect_lanes("x4_andnot", round, x4_andnot(va, vb), want);
    for (int l = 0; l < 4; ++l) want[l] = a[l] == b[l] ? -1 : 0;
    expect_lanes("x4_cmpeq", round, x4_cmpeq(va, vb), want);
    for (int l = 0; l < 4; ++l) want[l] = a[l] > b[l] ? -1 : 0;
    expect_lanes("x4_cmpgt", round, x4_cmpgt(va, vb), want);
    for (int l = 0; l < 4; ++l) want[l] = a[0];
    expect_lanes("x4_dup", round, x4_dup(a[0]), want);

    const I32x4 mask = x4_cmpgt(va, vb);
    std::int32_t m[4];
    x4_store(m, mask);
    for (int l = 0; l < 4; ++l) want[l] = m[l] ? b[l] : a[l];
    expect_lanes("x4_blend", round, x4_blend(mask, va, vb), want);

    const bool any = (m[0] | m[1] | m[2] | m[3]) != 0;
    if (x4_any(mask) != any) {
      std::fprintf(stderr, "FAIL x4_any round %d\n", round);
      ++failures;
    }
    const int bits = (m[0] < 0 ? 1 : 0) | (m[1] < 0 ? 2 : 0) |
                     (m[2] < 0 ? 4 : 0) | (m[3] < 0 ? 8 : 0);
    if (x4_mask_bits(mask) != bits) {
      std::fprintf(stderr, "FAIL x4_mask_bits round %d\n", round);
      ++failures;
    }

    std::int32_t idx[4];
    for (int l = 0; l < 4; ++l) {
      // Inactive x4_bytes_at lanes may hold wild (even negative) indices —
      // the contract says they never touch memory.
      idx[l] = m[l] ? (next_i32() & (kTableSize - 1)) : next_i32();
    }
    const I32x4 vidx = x4_load(idx);
    for (int l = 0; l < 4; ++l) {
      want[l] = m[l] ? static_cast<std::int32_t>(bytes[idx[l]]) : 0;
    }
    expect_lanes("x4_bytes_at", round, x4_bytes_at(bytes, vidx, mask), want);

    for (int l = 0; l < 4; ++l) idx[l] = next_i32() % (2 * kTableSize);
    const I32x4 vclamp = x4_load(idx);
    const I32x4 all = x4_dup(-1);
    for (int l = 0; l < 4; ++l) {
      std::int32_t c = idx[l] < 0 ? 0 : idx[l];
      c = c > kTableSize - 1 ? kTableSize - 1 : c;
      want[l] = static_cast<std::int32_t>(bytes[c]);
    }
    expect_lanes("x4_bytes_clamped", round,
                 x4_bytes_clamped(bytes, vclamp, kTableSize - 1, all), want);

    for (int l = 0; l < 4; ++l) idx[l] = next_i32() & (kTableSize - 1);
    for (int l = 0; l < 4; ++l) want[l] = words[idx[l]];
    expect_lanes("x4_gather_i32", round, x4_gather_i32(words, x4_load(idx)),
                 want);
  }

  if (failures != 0) {
    std::fprintf(stderr, "neon_smoke: %d lane mismatches\n", failures);
    return EXIT_FAILURE;
  }
#if RIPPLE_SIMD_NEON_ARM
  std::printf("neon_smoke: all lanes4 ops match scalar (NEON backend)\n");
#else
  std::printf("neon_smoke: all lanes4 ops match scalar (portable backend)\n");
#endif
  return EXIT_SUCCESS;
}
