#!/usr/bin/env bash
# Run the DAG executor benchmarks and write BENCH_graph.json at the repo
# root: the branching mini-BLAST scenario through the DAG engine versus the
# duplicated-linear-chains workaround (one chain per extension variant, each
# re-running the shared seed-probe prefix), per-item reference rows for both
# measured scenarios, the telemetry fan-in scenario (tee x3 -> synchronizer
# -> merge), and the DAG engine's thread-scaling curve.
#
# Prints the headline gate: duplicated-chains / DAG must be >= 1.3x — the
# topology win from running the shared prefix once. Service-time accounting
# predicts ~1.38x (2860 vs 2080 cycles of stage work per input), so 1.3x
# leaves margin for scheduling overhead while still failing if the DAG path
# ever regresses to re-running shared work.
#
# Usage: scripts/run_bench_graph.sh [build-dir] [min-time]
#   build-dir  defaults to ./build-bench (configured Release if missing —
#              benchmarks from a Debug tree are meaningless)
#   min-time   defaults to 0.5 (seconds per benchmark, forwarded to
#              --benchmark_min_time)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-bench}"
MIN_TIME="${2:-0.5}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
fi
if ! grep -q "CMAKE_BUILD_TYPE:STRING=Release" "${BUILD_DIR}/CMakeCache.txt"; then
  echo "warning: ${BUILD_DIR} is not a Release build; timings will be skewed" >&2
fi
cmake --build "${BUILD_DIR}" --target bench_graph -j"$(nproc)"

"${BUILD_DIR}/bench/bench_graph" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions=1 \
  --benchmark_out="${REPO_ROOT}/BENCH_graph.json" \
  --benchmark_out_format=json

python3 - "${REPO_ROOT}/BENCH_graph.json" <<'PY'
import json, os, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
times = {b["name"]: b["real_time"] for b in doc["benchmarks"]
         if not b.get("error_occurred")}

dag = times.get("BM_GraphBranchingBlast")
chains = times.get("BM_DuplicatedChains")
reference = times.get("BM_GraphBranchingBlast_Reference")
if dag and reference:
    print(f"branching mini-BLAST: per-item reference / DAG vector engine = "
          f"{reference / dag:.2f}x")

fanin = times.get("BM_TelemetryFanin")
fanin_ref = times.get("BM_TelemetryFanin_Reference")
if fanin and fanin_ref:
    print(f"telemetry fan-in: per-item reference / DAG vector engine = "
          f"{fanin_ref / fanin:.2f}x")

parallel = {}
for b in doc["benchmarks"]:
    name = b["name"]
    if name.startswith("BM_GraphParallel/") and not b.get("error_occurred"):
        parallel[int(name.split("/")[1])] = b["real_time"]
if parallel and 1 in parallel:
    base = parallel[1]
    curve = "  ".join(f"{n}t={base / t:.2f}x"
                      for n, t in sorted(parallel.items()))
    cores = os.cpu_count() or 1
    print(f"DAG engine wave scaling (vs 1 thread, {cores} host cores): "
          f"{curve}")

# Headline gate: the DAG must beat the duplicated-chain workaround by the
# shared-prefix margin. Hard failure — CI and local runs treat a miss as a
# regression in the DAG execution path.
if not (dag and chains):
    print("gate: missing BM_GraphBranchingBlast / BM_DuplicatedChains rows "
          "[FAIL]")
    sys.exit(1)
speedup = chains / dag
bar = speedup >= 1.3
print(f"gate: duplicated chains / DAG = {speedup:.2f}x "
      f"(bar: >= 1.3x) [{'PASS' if bar else 'FAIL'}]")
sys.exit(0 if bar else 1)
PY

echo "Wrote ${REPO_ROOT}/BENCH_graph.json"
