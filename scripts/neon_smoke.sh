#!/usr/bin/env bash
# QEMU-or-skip NEON smoke: cross-compile scripts/neon_smoke.cpp for AArch64
# and run it under qemu-user, proving the NEON intrinsic wrappers in
# device/lanes4.hpp lane-exact against the scalar model. The x86 CI legs
# already golden-test the lanes4 kernel *bodies* through the portable
# backend; this is the only place the ARM backend itself executes.
#
# Exits 0 with a "skipped" note when the cross toolchain or qemu is absent —
# the smoke is additive coverage, not a gate on hosts that cannot run it.
# On a native AArch64 host the harness runs directly, no qemu needed.
#
# Usage: scripts/neon_smoke.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT="$(mktemp -t neon_smoke.XXXXXX)"
trap 'rm -f "${OUT}"' EXIT

if [[ "$(uname -m)" == "aarch64" ]]; then
  c++ -std=c++20 -O2 -I "${REPO_ROOT}/src" \
    "${REPO_ROOT}/scripts/neon_smoke.cpp" -o "${OUT}"
  "${OUT}"
  exit 0
fi

CROSS=""
for candidate in aarch64-linux-gnu-g++ aarch64-linux-gnu-g++-12; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    CROSS="${candidate}"
    break
  fi
done
if [[ -z "${CROSS}" ]]; then
  echo "neon_smoke: skipped (no aarch64 cross compiler on this host)"
  exit 0
fi
if ! command -v qemu-aarch64 >/dev/null 2>&1; then
  echo "neon_smoke: skipped (no qemu-aarch64 on this host)"
  exit 0
fi

# -static so qemu-user needs no AArch64 sysroot at run time.
"${CROSS}" -std=c++20 -O2 -static -I "${REPO_ROOT}/src" \
  "${REPO_ROOT}/scripts/neon_smoke.cpp" -o "${OUT}"
qemu-aarch64 "${OUT}"
