#!/usr/bin/env bash
# Run the simulator throughput benchmarks and write BENCH_sim.json at the
# repo root. This is the perf artifact for the simulation-engine hot path:
# items/sec and events/sec for the enforced-waits, monolithic, greedy, and
# quantum-scheduled simulators plus the supporting engine microbenchmarks
# (indexed scheduler, ring buffer, batched gain sampling).
#
# Usage: scripts/run_bench_sim.sh [build-dir] [min-time]
#   build-dir  defaults to ./build (configured if missing)
#   min-time   defaults to 0.2 (seconds per benchmark, forwarded to
#              --benchmark_min_time)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
MIN_TIME="${2:-0.2}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${BUILD_DIR}" --target bench_micro -j"$(nproc)"

FILTER='BM_EnforcedSimulation|BM_MonolithicSimulation|BM_GreedySimulation'
FILTER+='|BM_QuantumSimulation|BM_IndexedSchedulerCycle|BM_RingBufferPushPop'
FILTER+='|BM_CensoredPoissonSampleN|BM_BernoulliSampleN|BM_EventQueuePushPop'

"${BUILD_DIR}/bench/bench_micro" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions=1 \
  --benchmark_out="${REPO_ROOT}/BENCH_sim.json" \
  --benchmark_out_format=json

echo "Wrote ${REPO_ROOT}/BENCH_sim.json"
