#!/usr/bin/env bash
# Run the warm-started sweep benchmark and write BENCH_sweep.json at the
# repo root. This is the perf artifact for the warm-started (tau0, D) sweep
# solver: cold vs warm wall time over the paper grid plus a cell-by-cell
# bitwise identity check (the binary exits nonzero on any mismatch, so this
# script doubles as the golden-surface gate in CI).
#
# Usage: scripts/run_bench_sweep.sh [build-dir] [tau0-points] [d-points]
#   build-dir    defaults to ./build (configured if missing)
#   tau0-points  defaults to 64
#   d-points     defaults to 64
#
# Pass a small grid (e.g. 8 8) for a quick smoke run.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
TAU0_POINTS="${2:-64}"
D_POINTS="${3:-64}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${BUILD_DIR}" --target bench_sweep -j"$(nproc)"

"${BUILD_DIR}/bench/bench_sweep" \
  --tau0-points "${TAU0_POINTS}" \
  --d-points "${D_POINTS}" \
  --json "${REPO_ROOT}/BENCH_sweep.json"

echo "Wrote ${REPO_ROOT}/BENCH_sweep.json"
