#!/usr/bin/env python3
"""Render Figure 3 / Figure 4 style heatmaps from a sweep surface CSV.

Dependency-free (stdlib only): reads the CSV written by the bench harnesses
(`bench_fig*  --csv FILE` or `ripple_cli sweep --csv FILE`) and emits SVG
heatmaps of the enforced-waits surface, the monolithic surface, and their
difference (the paper's Figures 3 and 4).

Usage:
    bench_fig4_difference --csv surface.csv
    python3 scripts/plot_surfaces.py surface.csv --out-dir figures/
"""

import argparse
import csv
import os
import sys


def read_surface(path):
    """Return (tau0s, deadlines, cells) with cells[(tau0, D)] = row dict."""
    cells = {}
    tau0s, deadlines = [], []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            tau0 = float(row["tau0"])
            deadline = float(row["deadline"])
            if tau0 not in tau0s:
                tau0s.append(tau0)
            if deadline not in deadlines:
                deadlines.append(deadline)
            cells[(tau0, deadline)] = {
                "enforced": float(row["enforced_active_fraction"]),
                "enforced_ok": row["enforced_feasible"] == "1",
                "monolithic": float(row["monolithic_active_fraction"]),
                "monolithic_ok": row["monolithic_feasible"] == "1",
                "difference": float(row["difference"]),
            }
    return sorted(tau0s), sorted(deadlines), cells


def lerp(a, b, t):
    return a + (b - a) * t


def sequential_color(t):
    """0 -> near-white, 1 -> deep blue (active fraction)."""
    t = max(0.0, min(1.0, t))
    r = int(lerp(247, 8, t))
    g = int(lerp(251, 48, t))
    b = int(lerp(255, 107, t))
    return f"#{r:02x}{g:02x}{b:02x}"


def diverging_color(t):
    """-1 -> red (monolithic wins), 0 -> white, +1 -> green (enforced wins)."""
    t = max(-1.0, min(1.0, t))
    if t >= 0:
        r = int(lerp(255, 0, t))
        g = int(lerp(255, 128, t))
        b = int(lerp(255, 64, t))
    else:
        r = int(lerp(255, 178, -t))
        g = int(lerp(255, 24, -t))
        b = int(lerp(255, 43, -t))
    return f"#{r:02x}{g:02x}{b:02x}"


def render_heatmap(tau0s, deadlines, value_of, color_of, title, path,
                   cell_w=42, cell_h=22, margin=90):
    width = margin + cell_w * len(deadlines) + 20
    height = margin + cell_h * len(tau0s) + 60
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<text x="{margin}" y="20" font-size="14">{title}</text>',
        f'<text x="{margin}" y="38" fill="#555">rows: tau0 (cycles); '
        f"columns: deadline D (cycles)</text>",
    ]
    for col, deadline in enumerate(deadlines):
        x = margin + col * cell_w
        parts.append(
            f'<text x="{x + 2}" y="{margin - 8}" fill="#333" '
            f'transform="rotate(-35 {x + 2} {margin - 8})">{deadline:g}</text>'
        )
    for row, tau0 in enumerate(tau0s):
        y = margin + row * cell_h
        parts.append(
            f'<text x="{margin - 8}" y="{y + cell_h * 0.7}" fill="#333" '
            f'text-anchor="end">{tau0:g}</text>'
        )
        for col, deadline in enumerate(deadlines):
            x = margin + col * cell_w
            value = value_of(tau0, deadline)
            if value is None:
                parts.append(
                    f'<rect x="{x}" y="{y}" width="{cell_w - 1}" '
                    f'height="{cell_h - 1}" fill="#ddd"/>'
                )
                parts.append(
                    f'<text x="{x + 4}" y="{y + cell_h * 0.7}" '
                    f'fill="#888">--</text>'
                )
            else:
                parts.append(
                    f'<rect x="{x}" y="{y}" width="{cell_w - 1}" '
                    f'height="{cell_h - 1}" fill="{color_of(value)}"/>'
                )
                luminous = abs(value) < 0.45
                fill = "#222" if luminous else "#fff"
                parts.append(
                    f'<text x="{x + 3}" y="{y + cell_h * 0.7}" '
                    f'fill="{fill}">{value:.2f}</text>'
                )
    parts.append("</svg>")
    with open(path, "w") as handle:
        handle.write("\n".join(parts) + "\n")
    print(f"wrote {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv", help="surface CSV from a bench or ripple_cli sweep")
    parser.add_argument("--out-dir", default=".", help="output directory")
    args = parser.parse_args()

    tau0s, deadlines, cells = read_surface(args.csv)
    if not cells:
        print("no cells in input", file=sys.stderr)
        return 2
    os.makedirs(args.out_dir, exist_ok=True)

    def enforced(tau0, deadline):
        cell = cells[(tau0, deadline)]
        return cell["enforced"] if cell["enforced_ok"] else None

    def monolithic(tau0, deadline):
        cell = cells[(tau0, deadline)]
        return cell["monolithic"] if cell["monolithic_ok"] else None

    def difference(tau0, deadline):
        cell = cells[(tau0, deadline)]
        if not cell["enforced_ok"] and not cell["monolithic_ok"]:
            return None
        return cell["difference"]

    render_heatmap(
        tau0s, deadlines, enforced, sequential_color,
        "Figure 3 (left): enforced-waits active fraction",
        os.path.join(args.out_dir, "fig3_enforced.svg"))
    render_heatmap(
        tau0s, deadlines, monolithic, sequential_color,
        "Figure 3 (right): monolithic active fraction",
        os.path.join(args.out_dir, "fig3_monolithic.svg"))
    render_heatmap(
        tau0s, deadlines, difference, diverging_color,
        "Figure 4: monolithic minus enforced-waits (green = enforced wins)",
        os.path.join(args.out_dir, "fig4_difference.svg"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
