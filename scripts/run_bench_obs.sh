#!/usr/bin/env bash
# Observability overhead gate: prove that compiling the RIPPLE_OBS
# instrumentation in — with recording left OFF — costs less than 2% of
# enforced-simulator throughput. Writes BENCH_obs.json at the repo root
# (alongside BENCH_sim.json) and exits nonzero when the gate fails.
#
# Method: build the benchmark twice (RIPPLE_OBS=OFF and =ON, both Release),
# then run BM_EnforcedSimulation/10000 alternating OFF/ON for several
# repetitions and compare the *medians* of events_per_second. Interleaving
# matters: VM clocks drift by tens of percent over minutes, so back-to-back
# whole-suite runs would measure the machine, not the code.
#
# Usage: scripts/run_bench_obs.sh [reps] [min-time]
#   reps      interleaved repetitions per build (default 7)
#   min-time  seconds per benchmark invocation (default 0.2)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
REPS="${1:-7}"
MIN_TIME="${2:-0.2}"
BUILD_OFF="${REPO_ROOT}/build-obs-off"
BUILD_ON="${REPO_ROOT}/build-obs-on"
BENCH_ARGS=(--benchmark_filter='BM_EnforcedSimulation/10000$'
            --benchmark_min_time="${MIN_TIME}"
            --benchmark_format=json)

for dir_flag in "${BUILD_OFF}:OFF" "${BUILD_ON}:ON"; do
  dir="${dir_flag%%:*}"
  flag="${dir_flag##*:}"
  if [[ ! -f "${dir}/CMakeCache.txt" ]]; then
    cmake -B "${dir}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release \
      -DRIPPLE_OBS="${flag}"
  fi
  cmake --build "${dir}" --target bench_micro -j"$(nproc)"
done

OFF_RUNS="$(mktemp)"
ON_RUNS="$(mktemp)"
trap 'rm -f "${OFF_RUNS}" "${ON_RUNS}"' EXIT

for ((rep = 0; rep < REPS; ++rep)); do
  echo "rep $((rep + 1))/${REPS}: RIPPLE_OBS=OFF then =ON" >&2
  "${BUILD_OFF}/bench/bench_micro" "${BENCH_ARGS[@]}" >> "${OFF_RUNS}"
  "${BUILD_ON}/bench/bench_micro" "${BENCH_ARGS[@]}" >> "${ON_RUNS}"
done

status=0
python3 - "${OFF_RUNS}" "${ON_RUNS}" "${REPO_ROOT}/BENCH_obs.json" <<'EOF' || status=$?
import json
import statistics
import sys

def rates(path):
    # Each run appended one complete JSON document; split on the closing
    # brace at column 0 that google-benchmark emits.
    text = open(path).read()
    values = []
    for chunk in text.split("\n}\n"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if not chunk.endswith("}"):
            chunk += "\n}"
        doc = json.loads(chunk)
        for bench in doc.get("benchmarks", []):
            values.append(bench["events_per_second"])
    return values

off = rates(sys.argv[1])
on = rates(sys.argv[2])
off_median = statistics.median(off)
on_median = statistics.median(on)
slowdown = (off_median - on_median) / off_median
report = {
    "schema": "ripple.bench_obs.v1",
    "benchmark": "BM_EnforcedSimulation/10000",
    "metric": "events_per_second",
    "repetitions": len(off),
    "obs_off_median": off_median,
    "obs_on_median": on_median,
    "obs_off_runs": off,
    "obs_on_runs": on,
    "disabled_overhead_fraction": slowdown,
    "gate_threshold": 0.02,
    "gate_passed": slowdown < 0.02,
}
with open(sys.argv[3], "w") as out:
    json.dump(report, out, indent=2)
    out.write("\n")
print(f"RIPPLE_OBS=OFF median: {off_median:.0f} events/s")
print(f"RIPPLE_OBS=ON  median: {on_median:.0f} events/s (recording disabled)")
print(f"disabled-path overhead: {slowdown * 100:+.2f}% (gate: < 2%)")
sys.exit(0 if report["gate_passed"] else 1)
EOF
echo "Wrote ${REPO_ROOT}/BENCH_obs.json"
exit "${status}"
