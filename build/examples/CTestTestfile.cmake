# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_blast_scheduling]=] "/root/repo/build/examples/blast_scheduling")
set_tests_properties([=[example_blast_scheduling]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_gamma_ray_burst]=] "/root/repo/build/examples/gamma_ray_burst")
set_tests_properties([=[example_gamma_ray_burst]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_intrusion_detection]=] "/root/repo/build/examples/intrusion_detection")
set_tests_properties([=[example_intrusion_detection]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_calibrate_pipeline]=] "/root/repo/build/examples/calibrate_pipeline")
set_tests_properties([=[example_calibrate_pipeline]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_schedule_advisor]=] "/root/repo/build/examples/schedule_advisor")
set_tests_properties([=[example_schedule_advisor]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_object_detection]=] "/root/repo/build/examples/object_detection")
set_tests_properties([=[example_object_detection]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
