file(REMOVE_RECURSE
  "CMakeFiles/gamma_ray_burst.dir/gamma_ray_burst.cpp.o"
  "CMakeFiles/gamma_ray_burst.dir/gamma_ray_burst.cpp.o.d"
  "gamma_ray_burst"
  "gamma_ray_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_ray_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
