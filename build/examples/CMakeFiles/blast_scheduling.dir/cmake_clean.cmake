file(REMOVE_RECURSE
  "CMakeFiles/blast_scheduling.dir/blast_scheduling.cpp.o"
  "CMakeFiles/blast_scheduling.dir/blast_scheduling.cpp.o.d"
  "blast_scheduling"
  "blast_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
