# Empty compiler generated dependencies file for blast_scheduling.
# This may be replaced when dependencies are built.
