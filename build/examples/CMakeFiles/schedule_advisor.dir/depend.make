# Empty dependencies file for schedule_advisor.
# This may be replaced when dependencies are built.
