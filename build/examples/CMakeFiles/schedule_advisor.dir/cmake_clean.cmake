file(REMOVE_RECURSE
  "CMakeFiles/schedule_advisor.dir/schedule_advisor.cpp.o"
  "CMakeFiles/schedule_advisor.dir/schedule_advisor.cpp.o.d"
  "schedule_advisor"
  "schedule_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
