# Empty dependencies file for object_detection.
# This may be replaced when dependencies are built.
