# Empty dependencies file for calibrate_pipeline.
# This may be replaced when dependencies are built.
