file(REMOVE_RECURSE
  "CMakeFiles/calibrate_pipeline.dir/calibrate_pipeline.cpp.o"
  "CMakeFiles/calibrate_pipeline.dir/calibrate_pipeline.cpp.o.d"
  "calibrate_pipeline"
  "calibrate_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
