# Empty dependencies file for bench_ablation_vacation.
# This may be replaced when dependencies are built.
