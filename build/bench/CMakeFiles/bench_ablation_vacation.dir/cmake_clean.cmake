file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vacation.dir/bench_ablation_vacation.cpp.o"
  "CMakeFiles/bench_ablation_vacation.dir/bench_ablation_vacation.cpp.o.d"
  "bench_ablation_vacation"
  "bench_ablation_vacation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vacation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
