# Empty dependencies file for bench_gain_sensitivity.
# This may be replaced when dependencies are built.
