file(REMOVE_RECURSE
  "CMakeFiles/bench_gain_sensitivity.dir/bench_gain_sensitivity.cpp.o"
  "CMakeFiles/bench_gain_sensitivity.dir/bench_gain_sensitivity.cpp.o.d"
  "bench_gain_sensitivity"
  "bench_gain_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gain_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
