
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_gain_sensitivity.cpp" "bench/CMakeFiles/bench_gain_sensitivity.dir/bench_gain_sensitivity.cpp.o" "gcc" "bench/CMakeFiles/bench_gain_sensitivity.dir/bench_gain_sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ripple_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ripple_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ripple_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sdf/CMakeFiles/ripple_sdf.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ripple_device.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ripple_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/arrivals/CMakeFiles/ripple_arrivals.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ripple_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ripple_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/ripple_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/blast/CMakeFiles/ripple_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ripple_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/ripple_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/cascade/CMakeFiles/ripple_cascade.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ripple_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
