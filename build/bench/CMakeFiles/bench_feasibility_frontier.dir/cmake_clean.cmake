file(REMOVE_RECURSE
  "CMakeFiles/bench_feasibility_frontier.dir/bench_feasibility_frontier.cpp.o"
  "CMakeFiles/bench_feasibility_frontier.dir/bench_feasibility_frontier.cpp.o.d"
  "bench_feasibility_frontier"
  "bench_feasibility_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feasibility_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
