# Empty dependencies file for bench_ablation_quantum.
# This may be replaced when dependencies are built.
