file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_arrivals.dir/bench_ablation_arrivals.cpp.o"
  "CMakeFiles/bench_ablation_arrivals.dir/bench_ablation_arrivals.cpp.o.d"
  "bench_ablation_arrivals"
  "bench_ablation_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
