# Empty dependencies file for bench_queueing_prediction.
# This may be replaced when dependencies are built.
