file(REMOVE_RECURSE
  "CMakeFiles/bench_queueing_prediction.dir/bench_queueing_prediction.cpp.o"
  "CMakeFiles/bench_queueing_prediction.dir/bench_queueing_prediction.cpp.o.d"
  "bench_queueing_prediction"
  "bench_queueing_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queueing_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
