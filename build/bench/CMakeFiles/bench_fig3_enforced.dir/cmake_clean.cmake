file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_enforced.dir/bench_fig3_enforced.cpp.o"
  "CMakeFiles/bench_fig3_enforced.dir/bench_fig3_enforced.cpp.o.d"
  "bench_fig3_enforced"
  "bench_fig3_enforced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_enforced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
