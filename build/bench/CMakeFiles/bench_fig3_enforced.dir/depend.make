# Empty dependencies file for bench_fig3_enforced.
# This may be replaced when dependencies are built.
