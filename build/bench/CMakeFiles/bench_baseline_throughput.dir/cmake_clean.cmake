file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_throughput.dir/bench_baseline_throughput.cpp.o"
  "CMakeFiles/bench_baseline_throughput.dir/bench_baseline_throughput.cpp.o.d"
  "bench_baseline_throughput"
  "bench_baseline_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
