file(REMOVE_RECURSE
  "CMakeFiles/ripple_cli.dir/ripple_cli.cpp.o"
  "CMakeFiles/ripple_cli.dir/ripple_cli.cpp.o.d"
  "ripple_cli"
  "ripple_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
