# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_describe_builtin]=] "/root/repo/build/tools/ripple_cli" "describe" "blast")
set_tests_properties([=[cli_describe_builtin]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_describe_json]=] "/root/repo/build/tools/ripple_cli" "describe" "/root/repo/tools/pipelines/blast_table1.json")
set_tests_properties([=[cli_describe_json]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_solve_enforced]=] "/root/repo/build/tools/ripple_cli" "solve" "blast" "--tau0" "20" "--deadline" "185000" "--b" "1,3,9,6")
set_tests_properties([=[cli_solve_enforced]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_solve_monolithic]=] "/root/repo/build/tools/ripple_cli" "solve" "blast" "--strategy" "monolithic" "--tau0" "50" "--deadline" "100000")
set_tests_properties([=[cli_solve_monolithic]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_solve_infeasible]=] "/root/repo/build/tools/ripple_cli" "solve" "blast" "--tau0" "1" "--deadline" "185000")
set_tests_properties([=[cli_solve_infeasible]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_simulate]=] "/root/repo/build/tools/ripple_cli" "simulate" "blast" "--tau0" "20" "--deadline" "185000" "--b" "1,3,9,6" "--trials" "5" "--inputs" "5000")
set_tests_properties([=[cli_simulate]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_predict_b]=] "/root/repo/build/tools/ripple_cli" "predict-b" "blast" "--tau0" "20" "--deadline" "50000" "--b" "1,3,9,6")
set_tests_properties([=[cli_predict_b]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_sensitivity]=] "/root/repo/build/tools/ripple_cli" "sensitivity" "blast" "--tau0" "100" "--deadline" "100000" "--b" "1,3,9,6")
set_tests_properties([=[cli_sensitivity]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_sweep]=] "/root/repo/build/tools/ripple_cli" "sweep" "blast" "--tau0-points" "4" "--d-points" "3")
set_tests_properties([=[cli_sweep]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_usage_error]=] "/root/repo/build/tools/ripple_cli")
set_tests_properties([=[cli_usage_error]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_tradeoff]=] "/root/repo/build/tools/ripple_cli" "tradeoff" "blast" "--tau0" "50" "--b" "1,3,9,6" "--tau0-points" "6")
set_tests_properties([=[cli_tradeoff]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;38;add_test;/root/repo/tools/CMakeLists.txt;0;")
