file(REMOVE_RECURSE
  "CMakeFiles/test_sim_monolithic.dir/test_sim_monolithic.cpp.o"
  "CMakeFiles/test_sim_monolithic.dir/test_sim_monolithic.cpp.o.d"
  "test_sim_monolithic"
  "test_sim_monolithic.pdb"
  "test_sim_monolithic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_monolithic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
