# Empty compiler generated dependencies file for test_sim_monolithic.
# This may be replaced when dependencies are built.
