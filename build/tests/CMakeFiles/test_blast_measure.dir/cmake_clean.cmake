file(REMOVE_RECURSE
  "CMakeFiles/test_blast_measure.dir/test_blast_measure.cpp.o"
  "CMakeFiles/test_blast_measure.dir/test_blast_measure.cpp.o.d"
  "test_blast_measure"
  "test_blast_measure.pdb"
  "test_blast_measure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blast_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
