# Empty dependencies file for test_blast_index.
# This may be replaced when dependencies are built.
