file(REMOVE_RECURSE
  "CMakeFiles/test_blast_index.dir/test_blast_index.cpp.o"
  "CMakeFiles/test_blast_index.dir/test_blast_index.cpp.o.d"
  "test_blast_index"
  "test_blast_index.pdb"
  "test_blast_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blast_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
