file(REMOVE_RECURSE
  "CMakeFiles/test_sim_trials.dir/test_sim_trials.cpp.o"
  "CMakeFiles/test_sim_trials.dir/test_sim_trials.cpp.o.d"
  "test_sim_trials"
  "test_sim_trials.pdb"
  "test_sim_trials[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_trials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
