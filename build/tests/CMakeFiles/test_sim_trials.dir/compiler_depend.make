# Empty compiler generated dependencies file for test_sim_trials.
# This may be replaced when dependencies are built.
