# Empty dependencies file for test_util_jsonv.
# This may be replaced when dependencies are built.
