file(REMOVE_RECURSE
  "CMakeFiles/test_util_jsonv.dir/test_util_jsonv.cpp.o"
  "CMakeFiles/test_util_jsonv.dir/test_util_jsonv.cpp.o.d"
  "test_util_jsonv"
  "test_util_jsonv.pdb"
  "test_util_jsonv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_jsonv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
