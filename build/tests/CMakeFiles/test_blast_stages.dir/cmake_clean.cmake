file(REMOVE_RECURSE
  "CMakeFiles/test_blast_stages.dir/test_blast_stages.cpp.o"
  "CMakeFiles/test_blast_stages.dir/test_blast_stages.cpp.o.d"
  "test_blast_stages"
  "test_blast_stages.pdb"
  "test_blast_stages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blast_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
