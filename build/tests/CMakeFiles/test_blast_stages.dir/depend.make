# Empty dependencies file for test_blast_stages.
# This may be replaced when dependencies are built.
