# Empty dependencies file for test_dist_stats.
# This may be replaced when dependencies are built.
