file(REMOVE_RECURSE
  "CMakeFiles/test_dist_stats.dir/test_dist_stats.cpp.o"
  "CMakeFiles/test_dist_stats.dir/test_dist_stats.cpp.o.d"
  "test_dist_stats"
  "test_dist_stats.pdb"
  "test_dist_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
