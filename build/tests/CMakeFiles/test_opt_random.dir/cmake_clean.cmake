file(REMOVE_RECURSE
  "CMakeFiles/test_opt_random.dir/test_opt_random.cpp.o"
  "CMakeFiles/test_opt_random.dir/test_opt_random.cpp.o.d"
  "test_opt_random"
  "test_opt_random.pdb"
  "test_opt_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
