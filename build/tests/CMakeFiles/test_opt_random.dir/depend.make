# Empty dependencies file for test_opt_random.
# This may be replaced when dependencies are built.
