file(REMOVE_RECURSE
  "CMakeFiles/test_opt_barrier.dir/test_opt_barrier.cpp.o"
  "CMakeFiles/test_opt_barrier.dir/test_opt_barrier.cpp.o.d"
  "test_opt_barrier"
  "test_opt_barrier.pdb"
  "test_opt_barrier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
