# Empty compiler generated dependencies file for test_opt_barrier.
# This may be replaced when dependencies are built.
