file(REMOVE_RECURSE
  "CMakeFiles/test_sim_greedy.dir/test_sim_greedy.cpp.o"
  "CMakeFiles/test_sim_greedy.dir/test_sim_greedy.cpp.o.d"
  "test_sim_greedy"
  "test_sim_greedy.pdb"
  "test_sim_greedy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
