# Empty dependencies file for test_sim_greedy.
# This may be replaced when dependencies are built.
