# Empty dependencies file for test_core_monolithic.
# This may be replaced when dependencies are built.
