file(REMOVE_RECURSE
  "CMakeFiles/test_core_monolithic.dir/test_core_monolithic.cpp.o"
  "CMakeFiles/test_core_monolithic.dir/test_core_monolithic.cpp.o.d"
  "test_core_monolithic"
  "test_core_monolithic.pdb"
  "test_core_monolithic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_monolithic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
