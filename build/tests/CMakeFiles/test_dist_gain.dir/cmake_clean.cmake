file(REMOVE_RECURSE
  "CMakeFiles/test_dist_gain.dir/test_dist_gain.cpp.o"
  "CMakeFiles/test_dist_gain.dir/test_dist_gain.cpp.o.d"
  "test_dist_gain"
  "test_dist_gain.pdb"
  "test_dist_gain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
