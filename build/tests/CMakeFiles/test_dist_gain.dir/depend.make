# Empty dependencies file for test_dist_gain.
# This may be replaced when dependencies are built.
