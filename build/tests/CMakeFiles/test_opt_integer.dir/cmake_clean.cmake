file(REMOVE_RECURSE
  "CMakeFiles/test_opt_integer.dir/test_opt_integer.cpp.o"
  "CMakeFiles/test_opt_integer.dir/test_opt_integer.cpp.o.d"
  "test_opt_integer"
  "test_opt_integer.pdb"
  "test_opt_integer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_integer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
