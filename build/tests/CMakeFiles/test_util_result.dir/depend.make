# Empty dependencies file for test_util_result.
# This may be replaced when dependencies are built.
