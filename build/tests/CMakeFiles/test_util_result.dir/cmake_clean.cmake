file(REMOVE_RECURSE
  "CMakeFiles/test_util_result.dir/test_util_result.cpp.o"
  "CMakeFiles/test_util_result.dir/test_util_result.cpp.o.d"
  "test_util_result"
  "test_util_result.pdb"
  "test_util_result[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_result.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
