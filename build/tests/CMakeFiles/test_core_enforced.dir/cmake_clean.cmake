file(REMOVE_RECURSE
  "CMakeFiles/test_core_enforced.dir/test_core_enforced.cpp.o"
  "CMakeFiles/test_core_enforced.dir/test_core_enforced.cpp.o.d"
  "test_core_enforced"
  "test_core_enforced.pdb"
  "test_core_enforced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_enforced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
