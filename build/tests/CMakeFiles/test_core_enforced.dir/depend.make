# Empty dependencies file for test_core_enforced.
# This may be replaced when dependencies are built.
