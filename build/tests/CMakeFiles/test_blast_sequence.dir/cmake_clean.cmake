file(REMOVE_RECURSE
  "CMakeFiles/test_blast_sequence.dir/test_blast_sequence.cpp.o"
  "CMakeFiles/test_blast_sequence.dir/test_blast_sequence.cpp.o.d"
  "test_blast_sequence"
  "test_blast_sequence.pdb"
  "test_blast_sequence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blast_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
