file(REMOVE_RECURSE
  "CMakeFiles/test_dist_rng.dir/test_dist_rng.cpp.o"
  "CMakeFiles/test_dist_rng.dir/test_dist_rng.cpp.o.d"
  "test_dist_rng"
  "test_dist_rng.pdb"
  "test_dist_rng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
