# Empty dependencies file for test_dist_rng.
# This may be replaced when dependencies are built.
