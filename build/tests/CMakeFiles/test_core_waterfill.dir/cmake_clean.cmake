file(REMOVE_RECURSE
  "CMakeFiles/test_core_waterfill.dir/test_core_waterfill.cpp.o"
  "CMakeFiles/test_core_waterfill.dir/test_core_waterfill.cpp.o.d"
  "test_core_waterfill"
  "test_core_waterfill.pdb"
  "test_core_waterfill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_waterfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
