file(REMOVE_RECURSE
  "CMakeFiles/test_opt_kkt.dir/test_opt_kkt.cpp.o"
  "CMakeFiles/test_opt_kkt.dir/test_opt_kkt.cpp.o.d"
  "test_opt_kkt"
  "test_opt_kkt.pdb"
  "test_opt_kkt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_kkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
