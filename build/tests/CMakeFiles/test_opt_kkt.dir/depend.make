# Empty dependencies file for test_opt_kkt.
# This may be replaced when dependencies are built.
