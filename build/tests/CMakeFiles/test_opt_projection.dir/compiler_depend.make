# Empty compiler generated dependencies file for test_opt_projection.
# This may be replaced when dependencies are built.
