file(REMOVE_RECURSE
  "CMakeFiles/test_opt_projection.dir/test_opt_projection.cpp.o"
  "CMakeFiles/test_opt_projection.dir/test_opt_projection.cpp.o.d"
  "test_opt_projection"
  "test_opt_projection.pdb"
  "test_opt_projection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
