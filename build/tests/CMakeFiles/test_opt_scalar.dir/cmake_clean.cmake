file(REMOVE_RECURSE
  "CMakeFiles/test_opt_scalar.dir/test_opt_scalar.cpp.o"
  "CMakeFiles/test_opt_scalar.dir/test_opt_scalar.cpp.o.d"
  "test_opt_scalar"
  "test_opt_scalar.pdb"
  "test_opt_scalar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
