# Empty dependencies file for test_opt_scalar.
# This may be replaced when dependencies are built.
