file(REMOVE_RECURSE
  "CMakeFiles/test_sdf_pipeline_io.dir/test_sdf_pipeline_io.cpp.o"
  "CMakeFiles/test_sdf_pipeline_io.dir/test_sdf_pipeline_io.cpp.o.d"
  "test_sdf_pipeline_io"
  "test_sdf_pipeline_io.pdb"
  "test_sdf_pipeline_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdf_pipeline_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
