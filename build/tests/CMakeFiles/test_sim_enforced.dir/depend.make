# Empty dependencies file for test_sim_enforced.
# This may be replaced when dependencies are built.
