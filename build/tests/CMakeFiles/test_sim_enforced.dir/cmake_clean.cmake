file(REMOVE_RECURSE
  "CMakeFiles/test_sim_enforced.dir/test_sim_enforced.cpp.o"
  "CMakeFiles/test_sim_enforced.dir/test_sim_enforced.cpp.o.d"
  "test_sim_enforced"
  "test_sim_enforced.pdb"
  "test_sim_enforced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_enforced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
