file(REMOVE_RECURSE
  "CMakeFiles/ripple_dist.dir/gain.cpp.o"
  "CMakeFiles/ripple_dist.dir/gain.cpp.o.d"
  "CMakeFiles/ripple_dist.dir/rng.cpp.o"
  "CMakeFiles/ripple_dist.dir/rng.cpp.o.d"
  "CMakeFiles/ripple_dist.dir/stats.cpp.o"
  "CMakeFiles/ripple_dist.dir/stats.cpp.o.d"
  "libripple_dist.a"
  "libripple_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
