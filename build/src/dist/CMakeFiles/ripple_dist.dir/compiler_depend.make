# Empty compiler generated dependencies file for ripple_dist.
# This may be replaced when dependencies are built.
