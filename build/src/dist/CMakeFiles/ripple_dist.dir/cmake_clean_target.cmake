file(REMOVE_RECURSE
  "libripple_dist.a"
)
