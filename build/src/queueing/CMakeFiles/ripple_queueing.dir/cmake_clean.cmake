file(REMOVE_RECURSE
  "CMakeFiles/ripple_queueing.dir/bulk_queue.cpp.o"
  "CMakeFiles/ripple_queueing.dir/bulk_queue.cpp.o.d"
  "CMakeFiles/ripple_queueing.dir/pmf.cpp.o"
  "CMakeFiles/ripple_queueing.dir/pmf.cpp.o.d"
  "CMakeFiles/ripple_queueing.dir/predict.cpp.o"
  "CMakeFiles/ripple_queueing.dir/predict.cpp.o.d"
  "libripple_queueing.a"
  "libripple_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
