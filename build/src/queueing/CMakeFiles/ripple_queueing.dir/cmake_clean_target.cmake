file(REMOVE_RECURSE
  "libripple_queueing.a"
)
