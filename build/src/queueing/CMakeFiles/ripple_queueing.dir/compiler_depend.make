# Empty compiler generated dependencies file for ripple_queueing.
# This may be replaced when dependencies are built.
