file(REMOVE_RECURSE
  "libripple_linalg.a"
)
