# Empty dependencies file for ripple_linalg.
# This may be replaced when dependencies are built.
