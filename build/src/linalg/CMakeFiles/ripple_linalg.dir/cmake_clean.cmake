file(REMOVE_RECURSE
  "CMakeFiles/ripple_linalg.dir/matrix.cpp.o"
  "CMakeFiles/ripple_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/ripple_linalg.dir/solve.cpp.o"
  "CMakeFiles/ripple_linalg.dir/solve.cpp.o.d"
  "libripple_linalg.a"
  "libripple_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
