# Empty dependencies file for ripple_core.
# This may be replaced when dependencies are built.
