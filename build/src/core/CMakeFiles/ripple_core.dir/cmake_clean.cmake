file(REMOVE_RECURSE
  "CMakeFiles/ripple_core.dir/enforced_waits.cpp.o"
  "CMakeFiles/ripple_core.dir/enforced_waits.cpp.o.d"
  "CMakeFiles/ripple_core.dir/monolithic.cpp.o"
  "CMakeFiles/ripple_core.dir/monolithic.cpp.o.d"
  "CMakeFiles/ripple_core.dir/report.cpp.o"
  "CMakeFiles/ripple_core.dir/report.cpp.o.d"
  "CMakeFiles/ripple_core.dir/robustness.cpp.o"
  "CMakeFiles/ripple_core.dir/robustness.cpp.o.d"
  "CMakeFiles/ripple_core.dir/sweep.cpp.o"
  "CMakeFiles/ripple_core.dir/sweep.cpp.o.d"
  "CMakeFiles/ripple_core.dir/tradeoff.cpp.o"
  "CMakeFiles/ripple_core.dir/tradeoff.cpp.o.d"
  "CMakeFiles/ripple_core.dir/waterfill.cpp.o"
  "CMakeFiles/ripple_core.dir/waterfill.cpp.o.d"
  "libripple_core.a"
  "libripple_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
