
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/enforced_waits.cpp" "src/core/CMakeFiles/ripple_core.dir/enforced_waits.cpp.o" "gcc" "src/core/CMakeFiles/ripple_core.dir/enforced_waits.cpp.o.d"
  "/root/repo/src/core/monolithic.cpp" "src/core/CMakeFiles/ripple_core.dir/monolithic.cpp.o" "gcc" "src/core/CMakeFiles/ripple_core.dir/monolithic.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ripple_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ripple_core.dir/report.cpp.o.d"
  "/root/repo/src/core/robustness.cpp" "src/core/CMakeFiles/ripple_core.dir/robustness.cpp.o" "gcc" "src/core/CMakeFiles/ripple_core.dir/robustness.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/ripple_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/ripple_core.dir/sweep.cpp.o.d"
  "/root/repo/src/core/tradeoff.cpp" "src/core/CMakeFiles/ripple_core.dir/tradeoff.cpp.o" "gcc" "src/core/CMakeFiles/ripple_core.dir/tradeoff.cpp.o.d"
  "/root/repo/src/core/waterfill.cpp" "src/core/CMakeFiles/ripple_core.dir/waterfill.cpp.o" "gcc" "src/core/CMakeFiles/ripple_core.dir/waterfill.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ripple_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ripple_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sdf/CMakeFiles/ripple_sdf.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ripple_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ripple_device.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ripple_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
