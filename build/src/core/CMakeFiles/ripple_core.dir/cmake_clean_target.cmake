file(REMOVE_RECURSE
  "libripple_core.a"
)
