file(REMOVE_RECURSE
  "libripple_cascade.a"
)
