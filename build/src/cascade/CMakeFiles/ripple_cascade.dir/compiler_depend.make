# Empty compiler generated dependencies file for ripple_cascade.
# This may be replaced when dependencies are built.
