file(REMOVE_RECURSE
  "CMakeFiles/ripple_cascade.dir/detector.cpp.o"
  "CMakeFiles/ripple_cascade.dir/detector.cpp.o.d"
  "CMakeFiles/ripple_cascade.dir/features.cpp.o"
  "CMakeFiles/ripple_cascade.dir/features.cpp.o.d"
  "CMakeFiles/ripple_cascade.dir/image.cpp.o"
  "CMakeFiles/ripple_cascade.dir/image.cpp.o.d"
  "CMakeFiles/ripple_cascade.dir/measure.cpp.o"
  "CMakeFiles/ripple_cascade.dir/measure.cpp.o.d"
  "libripple_cascade.a"
  "libripple_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
