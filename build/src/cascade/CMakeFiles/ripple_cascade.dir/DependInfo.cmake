
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cascade/detector.cpp" "src/cascade/CMakeFiles/ripple_cascade.dir/detector.cpp.o" "gcc" "src/cascade/CMakeFiles/ripple_cascade.dir/detector.cpp.o.d"
  "/root/repo/src/cascade/features.cpp" "src/cascade/CMakeFiles/ripple_cascade.dir/features.cpp.o" "gcc" "src/cascade/CMakeFiles/ripple_cascade.dir/features.cpp.o.d"
  "/root/repo/src/cascade/image.cpp" "src/cascade/CMakeFiles/ripple_cascade.dir/image.cpp.o" "gcc" "src/cascade/CMakeFiles/ripple_cascade.dir/image.cpp.o.d"
  "/root/repo/src/cascade/measure.cpp" "src/cascade/CMakeFiles/ripple_cascade.dir/measure.cpp.o" "gcc" "src/cascade/CMakeFiles/ripple_cascade.dir/measure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ripple_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ripple_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sdf/CMakeFiles/ripple_sdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
