# Empty dependencies file for ripple_sdf.
# This may be replaced when dependencies are built.
