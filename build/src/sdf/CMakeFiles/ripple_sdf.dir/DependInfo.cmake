
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdf/analysis.cpp" "src/sdf/CMakeFiles/ripple_sdf.dir/analysis.cpp.o" "gcc" "src/sdf/CMakeFiles/ripple_sdf.dir/analysis.cpp.o.d"
  "/root/repo/src/sdf/pipeline.cpp" "src/sdf/CMakeFiles/ripple_sdf.dir/pipeline.cpp.o" "gcc" "src/sdf/CMakeFiles/ripple_sdf.dir/pipeline.cpp.o.d"
  "/root/repo/src/sdf/pipeline_io.cpp" "src/sdf/CMakeFiles/ripple_sdf.dir/pipeline_io.cpp.o" "gcc" "src/sdf/CMakeFiles/ripple_sdf.dir/pipeline_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ripple_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ripple_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
