file(REMOVE_RECURSE
  "CMakeFiles/ripple_sdf.dir/analysis.cpp.o"
  "CMakeFiles/ripple_sdf.dir/analysis.cpp.o.d"
  "CMakeFiles/ripple_sdf.dir/pipeline.cpp.o"
  "CMakeFiles/ripple_sdf.dir/pipeline.cpp.o.d"
  "CMakeFiles/ripple_sdf.dir/pipeline_io.cpp.o"
  "CMakeFiles/ripple_sdf.dir/pipeline_io.cpp.o.d"
  "libripple_sdf.a"
  "libripple_sdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_sdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
