file(REMOVE_RECURSE
  "libripple_sdf.a"
)
