# Empty dependencies file for ripple_sim.
# This may be replaced when dependencies are built.
