
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/enforced_sim.cpp" "src/sim/CMakeFiles/ripple_sim.dir/enforced_sim.cpp.o" "gcc" "src/sim/CMakeFiles/ripple_sim.dir/enforced_sim.cpp.o.d"
  "/root/repo/src/sim/greedy_sim.cpp" "src/sim/CMakeFiles/ripple_sim.dir/greedy_sim.cpp.o" "gcc" "src/sim/CMakeFiles/ripple_sim.dir/greedy_sim.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/ripple_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/ripple_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/monolithic_sim.cpp" "src/sim/CMakeFiles/ripple_sim.dir/monolithic_sim.cpp.o" "gcc" "src/sim/CMakeFiles/ripple_sim.dir/monolithic_sim.cpp.o.d"
  "/root/repo/src/sim/trial_runner.cpp" "src/sim/CMakeFiles/ripple_sim.dir/trial_runner.cpp.o" "gcc" "src/sim/CMakeFiles/ripple_sim.dir/trial_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ripple_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ripple_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sdf/CMakeFiles/ripple_sdf.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ripple_device.dir/DependInfo.cmake"
  "/root/repo/build/src/arrivals/CMakeFiles/ripple_arrivals.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ripple_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ripple_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ripple_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
