file(REMOVE_RECURSE
  "libripple_sim.a"
)
