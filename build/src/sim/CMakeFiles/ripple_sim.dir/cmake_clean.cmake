file(REMOVE_RECURSE
  "CMakeFiles/ripple_sim.dir/enforced_sim.cpp.o"
  "CMakeFiles/ripple_sim.dir/enforced_sim.cpp.o.d"
  "CMakeFiles/ripple_sim.dir/greedy_sim.cpp.o"
  "CMakeFiles/ripple_sim.dir/greedy_sim.cpp.o.d"
  "CMakeFiles/ripple_sim.dir/metrics.cpp.o"
  "CMakeFiles/ripple_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/ripple_sim.dir/monolithic_sim.cpp.o"
  "CMakeFiles/ripple_sim.dir/monolithic_sim.cpp.o.d"
  "CMakeFiles/ripple_sim.dir/trial_runner.cpp.o"
  "CMakeFiles/ripple_sim.dir/trial_runner.cpp.o.d"
  "libripple_sim.a"
  "libripple_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
