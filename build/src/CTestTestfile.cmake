# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("linalg")
subdirs("dist")
subdirs("sdf")
subdirs("device")
subdirs("opt")
subdirs("arrivals")
subdirs("core")
subdirs("sim")
subdirs("calib")
subdirs("blast")
subdirs("sched")
subdirs("queueing")
subdirs("cascade")
subdirs("runtime")
