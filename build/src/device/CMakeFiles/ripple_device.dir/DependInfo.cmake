
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/occupancy.cpp" "src/device/CMakeFiles/ripple_device.dir/occupancy.cpp.o" "gcc" "src/device/CMakeFiles/ripple_device.dir/occupancy.cpp.o.d"
  "/root/repo/src/device/simd_device.cpp" "src/device/CMakeFiles/ripple_device.dir/simd_device.cpp.o" "gcc" "src/device/CMakeFiles/ripple_device.dir/simd_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ripple_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sdf/CMakeFiles/ripple_sdf.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ripple_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
