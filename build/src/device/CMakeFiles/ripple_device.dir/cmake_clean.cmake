file(REMOVE_RECURSE
  "CMakeFiles/ripple_device.dir/occupancy.cpp.o"
  "CMakeFiles/ripple_device.dir/occupancy.cpp.o.d"
  "CMakeFiles/ripple_device.dir/simd_device.cpp.o"
  "CMakeFiles/ripple_device.dir/simd_device.cpp.o.d"
  "libripple_device.a"
  "libripple_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
