file(REMOVE_RECURSE
  "libripple_device.a"
)
