# Empty compiler generated dependencies file for ripple_device.
# This may be replaced when dependencies are built.
