# Empty dependencies file for ripple_arrivals.
# This may be replaced when dependencies are built.
