
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arrivals/arrival_process.cpp" "src/arrivals/CMakeFiles/ripple_arrivals.dir/arrival_process.cpp.o" "gcc" "src/arrivals/CMakeFiles/ripple_arrivals.dir/arrival_process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ripple_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ripple_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
