file(REMOVE_RECURSE
  "libripple_arrivals.a"
)
