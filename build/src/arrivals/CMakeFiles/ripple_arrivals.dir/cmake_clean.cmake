file(REMOVE_RECURSE
  "CMakeFiles/ripple_arrivals.dir/arrival_process.cpp.o"
  "CMakeFiles/ripple_arrivals.dir/arrival_process.cpp.o.d"
  "libripple_arrivals.a"
  "libripple_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
