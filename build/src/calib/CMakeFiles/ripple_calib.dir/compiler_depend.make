# Empty compiler generated dependencies file for ripple_calib.
# This may be replaced when dependencies are built.
