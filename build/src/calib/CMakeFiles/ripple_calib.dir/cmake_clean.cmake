file(REMOVE_RECURSE
  "CMakeFiles/ripple_calib.dir/calibrate.cpp.o"
  "CMakeFiles/ripple_calib.dir/calibrate.cpp.o.d"
  "libripple_calib.a"
  "libripple_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
