file(REMOVE_RECURSE
  "libripple_calib.a"
)
