# Empty compiler generated dependencies file for ripple_blast.
# This may be replaced when dependencies are built.
