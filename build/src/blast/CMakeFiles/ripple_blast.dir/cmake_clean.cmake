file(REMOVE_RECURSE
  "CMakeFiles/ripple_blast.dir/canonical.cpp.o"
  "CMakeFiles/ripple_blast.dir/canonical.cpp.o.d"
  "CMakeFiles/ripple_blast.dir/index.cpp.o"
  "CMakeFiles/ripple_blast.dir/index.cpp.o.d"
  "CMakeFiles/ripple_blast.dir/measure.cpp.o"
  "CMakeFiles/ripple_blast.dir/measure.cpp.o.d"
  "CMakeFiles/ripple_blast.dir/sequence.cpp.o"
  "CMakeFiles/ripple_blast.dir/sequence.cpp.o.d"
  "CMakeFiles/ripple_blast.dir/stages.cpp.o"
  "CMakeFiles/ripple_blast.dir/stages.cpp.o.d"
  "libripple_blast.a"
  "libripple_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
