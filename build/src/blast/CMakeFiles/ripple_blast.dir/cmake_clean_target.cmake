file(REMOVE_RECURSE
  "libripple_blast.a"
)
