
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blast/canonical.cpp" "src/blast/CMakeFiles/ripple_blast.dir/canonical.cpp.o" "gcc" "src/blast/CMakeFiles/ripple_blast.dir/canonical.cpp.o.d"
  "/root/repo/src/blast/index.cpp" "src/blast/CMakeFiles/ripple_blast.dir/index.cpp.o" "gcc" "src/blast/CMakeFiles/ripple_blast.dir/index.cpp.o.d"
  "/root/repo/src/blast/measure.cpp" "src/blast/CMakeFiles/ripple_blast.dir/measure.cpp.o" "gcc" "src/blast/CMakeFiles/ripple_blast.dir/measure.cpp.o.d"
  "/root/repo/src/blast/sequence.cpp" "src/blast/CMakeFiles/ripple_blast.dir/sequence.cpp.o" "gcc" "src/blast/CMakeFiles/ripple_blast.dir/sequence.cpp.o.d"
  "/root/repo/src/blast/stages.cpp" "src/blast/CMakeFiles/ripple_blast.dir/stages.cpp.o" "gcc" "src/blast/CMakeFiles/ripple_blast.dir/stages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ripple_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ripple_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sdf/CMakeFiles/ripple_sdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
