file(REMOVE_RECURSE
  "libripple_runtime.a"
)
