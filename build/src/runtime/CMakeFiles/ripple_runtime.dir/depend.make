# Empty dependencies file for ripple_runtime.
# This may be replaced when dependencies are built.
