file(REMOVE_RECURSE
  "CMakeFiles/ripple_runtime.dir/pipeline_executor.cpp.o"
  "CMakeFiles/ripple_runtime.dir/pipeline_executor.cpp.o.d"
  "libripple_runtime.a"
  "libripple_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
