file(REMOVE_RECURSE
  "libripple_util.a"
)
