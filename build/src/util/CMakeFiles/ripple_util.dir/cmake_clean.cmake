file(REMOVE_RECURSE
  "CMakeFiles/ripple_util.dir/cli.cpp.o"
  "CMakeFiles/ripple_util.dir/cli.cpp.o.d"
  "CMakeFiles/ripple_util.dir/csv.cpp.o"
  "CMakeFiles/ripple_util.dir/csv.cpp.o.d"
  "CMakeFiles/ripple_util.dir/json.cpp.o"
  "CMakeFiles/ripple_util.dir/json.cpp.o.d"
  "CMakeFiles/ripple_util.dir/jsonv.cpp.o"
  "CMakeFiles/ripple_util.dir/jsonv.cpp.o.d"
  "CMakeFiles/ripple_util.dir/log.cpp.o"
  "CMakeFiles/ripple_util.dir/log.cpp.o.d"
  "CMakeFiles/ripple_util.dir/string_utils.cpp.o"
  "CMakeFiles/ripple_util.dir/string_utils.cpp.o.d"
  "CMakeFiles/ripple_util.dir/table.cpp.o"
  "CMakeFiles/ripple_util.dir/table.cpp.o.d"
  "CMakeFiles/ripple_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ripple_util.dir/thread_pool.cpp.o.d"
  "libripple_util.a"
  "libripple_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
