# Empty compiler generated dependencies file for ripple_util.
# This may be replaced when dependencies are built.
