file(REMOVE_RECURSE
  "libripple_opt.a"
)
