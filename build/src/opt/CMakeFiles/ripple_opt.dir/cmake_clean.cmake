file(REMOVE_RECURSE
  "CMakeFiles/ripple_opt.dir/barrier.cpp.o"
  "CMakeFiles/ripple_opt.dir/barrier.cpp.o.d"
  "CMakeFiles/ripple_opt.dir/integer.cpp.o"
  "CMakeFiles/ripple_opt.dir/integer.cpp.o.d"
  "CMakeFiles/ripple_opt.dir/kkt.cpp.o"
  "CMakeFiles/ripple_opt.dir/kkt.cpp.o.d"
  "CMakeFiles/ripple_opt.dir/problem.cpp.o"
  "CMakeFiles/ripple_opt.dir/problem.cpp.o.d"
  "CMakeFiles/ripple_opt.dir/projected_gradient.cpp.o"
  "CMakeFiles/ripple_opt.dir/projected_gradient.cpp.o.d"
  "CMakeFiles/ripple_opt.dir/projection.cpp.o"
  "CMakeFiles/ripple_opt.dir/projection.cpp.o.d"
  "CMakeFiles/ripple_opt.dir/scalar.cpp.o"
  "CMakeFiles/ripple_opt.dir/scalar.cpp.o.d"
  "libripple_opt.a"
  "libripple_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
