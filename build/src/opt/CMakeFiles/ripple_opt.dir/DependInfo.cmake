
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/barrier.cpp" "src/opt/CMakeFiles/ripple_opt.dir/barrier.cpp.o" "gcc" "src/opt/CMakeFiles/ripple_opt.dir/barrier.cpp.o.d"
  "/root/repo/src/opt/integer.cpp" "src/opt/CMakeFiles/ripple_opt.dir/integer.cpp.o" "gcc" "src/opt/CMakeFiles/ripple_opt.dir/integer.cpp.o.d"
  "/root/repo/src/opt/kkt.cpp" "src/opt/CMakeFiles/ripple_opt.dir/kkt.cpp.o" "gcc" "src/opt/CMakeFiles/ripple_opt.dir/kkt.cpp.o.d"
  "/root/repo/src/opt/problem.cpp" "src/opt/CMakeFiles/ripple_opt.dir/problem.cpp.o" "gcc" "src/opt/CMakeFiles/ripple_opt.dir/problem.cpp.o.d"
  "/root/repo/src/opt/projected_gradient.cpp" "src/opt/CMakeFiles/ripple_opt.dir/projected_gradient.cpp.o" "gcc" "src/opt/CMakeFiles/ripple_opt.dir/projected_gradient.cpp.o.d"
  "/root/repo/src/opt/projection.cpp" "src/opt/CMakeFiles/ripple_opt.dir/projection.cpp.o" "gcc" "src/opt/CMakeFiles/ripple_opt.dir/projection.cpp.o.d"
  "/root/repo/src/opt/scalar.cpp" "src/opt/CMakeFiles/ripple_opt.dir/scalar.cpp.o" "gcc" "src/opt/CMakeFiles/ripple_opt.dir/scalar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ripple_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ripple_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
