# Empty dependencies file for ripple_opt.
# This may be replaced when dependencies are built.
