# Empty compiler generated dependencies file for ripple_sched.
# This may be replaced when dependencies are built.
