file(REMOVE_RECURSE
  "CMakeFiles/ripple_sched.dir/quantum_sim.cpp.o"
  "CMakeFiles/ripple_sched.dir/quantum_sim.cpp.o.d"
  "CMakeFiles/ripple_sched.dir/stride_scheduler.cpp.o"
  "CMakeFiles/ripple_sched.dir/stride_scheduler.cpp.o.d"
  "libripple_sched.a"
  "libripple_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
