file(REMOVE_RECURSE
  "libripple_sched.a"
)
